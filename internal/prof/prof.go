// Package prof wires the standard runtime/pprof profiles into the
// command-line tools: both binaries accept -cpuprofile and -memprofile
// flags whose outputs feed `go tool pprof` directly.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profiles selected by the (possibly empty) file paths
// and returns a stop function that must run before the process exits:
// it flushes the CPU profile and writes the heap profile. Call stop via
// defer on the happy path and explicitly before os.Exit.
func Start(cpuFile, memFile string) (stop func() error, err error) {
	var cpu *os.File
	if cpuFile != "" {
		cpu, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpu); err != nil {
			cpu.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	done := false
	return func() error {
		if done {
			return nil
		}
		done = true
		if cpu != nil {
			pprof.StopCPUProfile()
			if err := cpu.Close(); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		if memFile != "" {
			f, err := os.Create(memFile)
			if err != nil {
				return fmt.Errorf("prof: %w", err)
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("prof: %w", err)
			}
		}
		return nil
	}, nil
}
