// Package geo provides the geographic primitives of the evaluation setup:
// latitude/longitude points, great-circle (haversine) distance, and
// nearest-site search. The paper measures all network delays by the
// geographic distance between GPS locations (§V-A), which this package
// reproduces.
package geo

import "math"

// EarthRadiusKm is the mean Earth radius used by the haversine formula.
const EarthRadiusKm = 6371.0

// Point is a WGS84 latitude/longitude pair in degrees.
type Point struct {
	Lat, Lon float64
}

// DistanceKm returns the great-circle distance between two points in
// kilometres.
func DistanceKm(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

// Nearest returns the index of the site closest to p and the distance to
// it in kilometres. It returns (-1, +Inf) for an empty site list.
func Nearest(p Point, sites []Point) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for i, s := range sites {
		if d := DistanceKm(p, s); d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// DistanceMatrixKm returns the symmetric pairwise distance matrix of the
// sites with a zero diagonal.
func DistanceMatrixKm(sites []Point) [][]float64 {
	m := make([][]float64, len(sites))
	for i := range m {
		m[i] = make([]float64, len(sites))
	}
	for i := range sites {
		for k := i + 1; k < len(sites); k++ {
			d := DistanceKm(sites[i], sites[k])
			m[i][k] = d
			m[k][i] = d
		}
	}
	return m
}

// Interpolate returns the point a fraction f of the way from a to b along
// the straight chord in lat/lon space, which is accurate at city scale.
// f is clamped to [0, 1].
func Interpolate(a, b Point, f float64) Point {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return Point{
		Lat: a.Lat + f*(b.Lat-a.Lat),
		Lon: a.Lon + f*(b.Lon-a.Lon),
	}
}
