package geo

import (
	"math"
	"testing"
	"testing/quick"
)

var (
	romeTermini  = Point{Lat: 41.9009, Lon: 12.5012}
	romePiramide = Point{Lat: 41.8765, Lon: 12.4814}
	paris        = Point{Lat: 48.8566, Lon: 2.3522}
)

func TestDistanceKmKnownPairs(t *testing.T) {
	// Rome Termini to Paris is about 1105-1110 km great-circle.
	if d := DistanceKm(romeTermini, paris); d < 1080 || d > 1140 {
		t.Errorf("Rome-Paris = %g km, want ~1110", d)
	}
	// Termini to Piramide is roughly 3 km.
	if d := DistanceKm(romeTermini, romePiramide); d < 2 || d > 4.5 {
		t.Errorf("Termini-Piramide = %g km, want ~3", d)
	}
}

func TestDistanceKmProperties(t *testing.T) {
	property := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{Lat: math.Mod(lat1, 90), Lon: math.Mod(lon1, 180)}
		b := Point{Lat: math.Mod(lat2, 90), Lon: math.Mod(lon2, 180)}
		dab := DistanceKm(a, b)
		dba := DistanceKm(b, a)
		if math.IsNaN(dab) || dab < 0 {
			return false
		}
		if math.Abs(dab-dba) > 1e-9 {
			return false // symmetry
		}
		return DistanceKm(a, a) == 0
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNearest(t *testing.T) {
	sites := []Point{paris, romeTermini, romePiramide}
	idx, d := Nearest(Point{Lat: 41.9, Lon: 12.5}, sites)
	if idx != 1 {
		t.Errorf("Nearest = %d, want 1 (Termini)", idx)
	}
	if d > 1 {
		t.Errorf("distance %g km too large", d)
	}
	if idx, d := Nearest(paris, nil); idx != -1 || !math.IsInf(d, 1) {
		t.Errorf("empty sites: got (%d, %g), want (-1, +Inf)", idx, d)
	}
}

func TestDistanceMatrixKm(t *testing.T) {
	sites := []Point{paris, romeTermini, romePiramide}
	m := DistanceMatrixKm(sites)
	for i := range sites {
		if m[i][i] != 0 {
			t.Errorf("diagonal [%d] = %g, want 0", i, m[i][i])
		}
		for k := range sites {
			if m[i][k] != m[k][i] {
				t.Errorf("asymmetric at (%d,%d)", i, k)
			}
			if want := DistanceKm(sites[i], sites[k]); math.Abs(m[i][k]-want) > 1e-12 {
				t.Errorf("m[%d][%d] = %g, want %g", i, k, m[i][k], want)
			}
		}
	}
}

func TestInterpolate(t *testing.T) {
	a, b := Point{Lat: 0, Lon: 0}, Point{Lat: 2, Lon: 4}
	mid := Interpolate(a, b, 0.5)
	if mid.Lat != 1 || mid.Lon != 2 {
		t.Errorf("midpoint = %+v, want (1,2)", mid)
	}
	if p := Interpolate(a, b, -3); p != a {
		t.Errorf("clamped low = %+v, want a", p)
	}
	if p := Interpolate(a, b, 9); p != b {
		t.Errorf("clamped high = %+v, want b", p)
	}
}
