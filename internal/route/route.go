// Package route implements the edgerouter tier: a thin, stateless HTTP
// router that places allocation sessions across N edged replicas by
// rendezvous (highest-random-weight) hashing of the session id and
// forwards every session request to its owner.
//
// Rendezvous hashing keeps placement stable under membership change:
// when a replica joins, the only sessions whose owner changes are the
// ones the new replica now wins (an expected 1/(n+1) fraction); when a
// replica leaves, only its own sessions move. Rebalance migrates the
// misplaced sessions through the edged snapshot/restore endpoints, so a
// session's warm iterate, dual record, and cost bookkeeping travel with
// it and the online algorithm continues as if it had never moved.
//
// The router holds no session state of its own: every routing decision
// is a pure function of (membership, session id), so any number of
// stateless router processes can front the same replica set.
package route

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxBodyBytes bounds forwarded request bodies (mirrors internal/serve).
const maxBodyBytes = 256 << 20

// score is the rendezvous weight of placing id on replica: FNV-1a over
// the pair pushed through a splitmix64-style finalizer. Raw FNV of
// near-identical keys (sequential session ids, replicas differing in
// one port digit) is highly correlated, which skews placement badly;
// the avalanche mixer restores a uniform spread. Pure and stateless,
// so every router instance agrees on the owner.
func score(replica, id string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, replica)
	_, _ = h.Write([]byte{0})
	_, _ = io.WriteString(h, id)
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Owner returns the replica that owns the session under rendezvous
// hashing, or "" when the membership is empty. Ties break toward the
// lexicographically smaller replica so the choice stays deterministic.
func Owner(replicas []string, id string) string {
	best, bestScore := "", uint64(0)
	for _, r := range replicas {
		s := score(r, id)
		if best == "" || s > bestScore || (s == bestScore && r < best) {
			best, bestScore = r, s
		}
	}
	return best
}

// Config tunes the router.
type Config struct {
	// Replicas is the initial membership: edged base URLs
	// (e.g. "http://127.0.0.1:8081"). Normalized via NormalizeReplica.
	Replicas []string
	// Client performs the forwarded requests (default: 2-minute timeout,
	// matching edged's default StepTimeout).
	Client *http.Client
	// Logger receives structured routing/migration logs (nil = silent).
	Logger *slog.Logger
}

// Router fronts a set of edged replicas.
type Router struct {
	mu       sync.RWMutex
	replicas []string

	client *http.Client
	log    *slog.Logger
	nextID atomic.Uint64

	mux *http.ServeMux
}

// normalizeSet canonicalizes, dedups, and sorts a membership list.
func normalizeSet(replicas []string) ([]string, error) {
	if len(replicas) == 0 {
		return nil, errors.New("route: at least one replica required")
	}
	normalized := make([]string, 0, len(replicas))
	seen := map[string]bool{}
	for _, r := range replicas {
		n, err := NormalizeReplica(r)
		if err != nil {
			return nil, err
		}
		if !seen[n] {
			seen[n] = true
			normalized = append(normalized, n)
		}
	}
	sort.Strings(normalized)
	return normalized, nil
}

// NormalizeReplica canonicalizes a replica address to a base URL.
func NormalizeReplica(addr string) (string, error) {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return "", errors.New("empty replica address")
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	if !strings.HasPrefix(addr, "http://") && !strings.HasPrefix(addr, "https://") {
		return "", fmt.Errorf("replica %q: only http/https supported", addr)
	}
	return addr, nil
}

// New builds a router over the given replicas.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("route: at least one replica required")
	}
	normalized, err := normalizeSet(cfg.Replicas)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 2 * time.Minute}
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	rt := &Router{replicas: normalized, client: client, log: log, mux: http.NewServeMux()}
	rt.routes()
	return rt, nil
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	rt.mux.HandleFunc("GET /v1/sessions", rt.handleList)
	rt.mux.HandleFunc("POST /v1/sessions/restore", rt.handleRestore)
	rt.mux.HandleFunc("/v1/sessions/{id}", rt.handleSession)
	rt.mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.handleSession)
	rt.mux.HandleFunc("GET /admin/replicas", rt.handleGetReplicas)
	rt.mux.HandleFunc("PUT /admin/replicas", rt.handleSetReplicas)
	rt.mux.HandleFunc("GET /admin/owner", rt.handleOwner)
	rt.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Replicas returns the current membership.
func (rt *Router) Replicas() []string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return append([]string(nil), rt.replicas...)
}

// OwnerOf returns the replica owning the session id under the current
// membership.
func (rt *Router) OwnerOf(id string) string {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return Owner(rt.replicas, id)
}

// --- request forwarding -------------------------------------------------

// forward replays the request (with the given body) to the replica and
// copies the response through.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, replica string, body []byte) {
	url := replica + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.log.Warn("forwarding failed", "replica", replica, "path", r.URL.Path, "err", err)
		writeError(w, http.StatusBadGateway,
			fmt.Sprintf("replica %s unreachable: %v", replica, err))
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return nil, false
	}
	return body, true
}

// handleCreate places a new session: the id (client-supplied, or minted
// here so placement stays deterministic) picks the owner, and the
// create request — with the id filled in — goes there.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	if probe.ID == "" {
		// Mint a router-scoped id and inject it, keeping every other
		// field untouched.
		var fields map[string]json.RawMessage
		if err := json.Unmarshal(body, &fields); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
			return
		}
		probe.ID = fmt.Sprintf("r-%d", rt.nextID.Add(1))
		fields["id"], _ = json.Marshal(probe.ID)
		body, _ = json.Marshal(fields)
	}
	owner := rt.OwnerOf(probe.ID)
	if owner == "" {
		writeError(w, http.StatusServiceUnavailable, "no replicas")
		return
	}
	rt.log.Info("session placed", "session", probe.ID, "replica", owner)
	rt.forward(w, r, owner, body)
}

// handleRestore routes an explicit snapshot restore to the snapshot's
// owner under the current membership.
func (rt *Router) handleRestore(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var probe struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &probe); err != nil || probe.ID == "" {
		writeError(w, http.StatusBadRequest, "snapshot missing id")
		return
	}
	owner := rt.OwnerOf(probe.ID)
	if owner == "" {
		writeError(w, http.StatusServiceUnavailable, "no replicas")
		return
	}
	rt.forward(w, r, owner, body)
}

// handleSession forwards {id}-scoped requests to the session's owner.
func (rt *Router) handleSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	owner := rt.OwnerOf(id)
	if owner == "" {
		writeError(w, http.StatusServiceUnavailable, "no replicas")
		return
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	rt.forward(w, r, owner, body)
}

// handleList merges the session lists of every replica.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	all := []string{}
	for _, replica := range rt.Replicas() {
		ids, err := rt.listSessions(r.Context(), replica)
		if err != nil {
			writeError(w, http.StatusBadGateway,
				fmt.Sprintf("replica %s: %v", replica, err))
			return
		}
		all = append(all, ids...)
	}
	sort.Strings(all)
	writeJSON(w, http.StatusOK, map[string]any{"sessions": all})
}

// --- membership + rebalancing -------------------------------------------

func (rt *Router) handleGetReplicas(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"replicas": rt.Replicas()})
}

// handleOwner resolves ?session=<id> to its owning replica without
// forwarding anything. Load generators (internal/loadgen, cmd/edgeload)
// use it to dial session owners directly, taking the router's forwarding
// copy off the hot path while keeping placement decisions in one place.
func (rt *Router) handleOwner(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	if id == "" {
		writeError(w, http.StatusBadRequest, "session query parameter required")
		return
	}
	owner := rt.OwnerOf(id)
	if owner == "" {
		writeError(w, http.StatusServiceUnavailable, "no replicas")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"session": id, "owner": owner})
}

// handleSetReplicas replaces the membership and migrates every session
// whose owner changed (snapshot on the old replica, restore on the new
// one, delete the original). Replicas leaving the set must stay
// reachable until the call returns; sessions they host are drained to
// their new owners.
func (rt *Router) handleSetReplicas(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Replicas []string `json:"replicas"`
	}
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	// Reject malformed memberships up front (400); once the set is
	// valid, any remaining failure is a migration problem (502).
	if _, err := normalizeSet(req.Replicas); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	moved, err := rt.SetReplicas(r.Context(), req.Replicas)
	if err != nil {
		writeError(w, http.StatusBadGateway, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"replicas": rt.Replicas(), "migrated": moved,
	})
}

// SetReplicas swaps the membership and rebalances. It returns the
// number of sessions migrated. Sessions are migrated from the union of
// the old and new sets, so a departing replica is drained.
func (rt *Router) SetReplicas(ctx context.Context, replicas []string) (int, error) {
	normalized, err := normalizeSet(replicas)
	if err != nil {
		return 0, err
	}
	seen := map[string]bool{}
	for _, r := range normalized {
		seen[r] = true
	}

	rt.mu.Lock()
	old := rt.replicas
	rt.replicas = normalized
	rt.mu.Unlock()

	for _, r := range old {
		seen[r] = true
	}
	hosts := make([]string, 0, len(seen))
	for r := range seen {
		hosts = append(hosts, r)
	}
	sort.Strings(hosts)
	moved, err := rt.rebalance(ctx, hosts, normalized)
	if err != nil {
		return moved, err
	}
	rt.log.Info("membership updated", "replicas", normalized, "migrated", moved)
	return moved, nil
}

// Rebalance migrates every session not hosted on its owner under the
// current membership. Useful after a replica restart re-homed sessions.
func (rt *Router) Rebalance(ctx context.Context) (int, error) {
	members := rt.Replicas()
	return rt.rebalance(ctx, members, members)
}

// rebalance walks hosts, finds sessions whose rendezvous owner under
// members differs from where they live, and moves them via
// snapshot → restore → delete. A departing host (not in members) that
// is unreachable is skipped with a warning rather than failing the
// call: after a crash its sessions come back from persisted snapshots
// on a restarted replica, not from a drain.
func (rt *Router) rebalance(ctx context.Context, hosts, members []string) (int, error) {
	inMembers := map[string]bool{}
	for _, m := range members {
		inMembers[m] = true
	}
	moved := 0
	var errs []error
	for _, host := range hosts {
		ids, err := rt.listSessions(ctx, host)
		if err != nil {
			if !inMembers[host] {
				rt.log.Warn("departing replica unreachable; skipping drain", "replica", host, "err", err)
				continue
			}
			errs = append(errs, fmt.Errorf("listing %s: %w", host, err))
			continue
		}
		for _, id := range ids {
			owner := Owner(members, id)
			if owner == host {
				continue
			}
			if err := rt.migrate(ctx, host, owner, id); err != nil {
				errs = append(errs, fmt.Errorf("migrating %s from %s to %s: %w", id, host, owner, err))
				continue
			}
			moved++
			rt.log.Info("session migrated", "session", id, "from", host, "to", owner)
		}
	}
	return moved, errors.Join(errs...)
}

// migrate moves one session: snapshot at src, restore at dst, delete at
// src. The snapshot endpoint serializes with in-flight solves, so the
// state moves between slots; a request racing the migration gets 410
// from src and is retried by the client against the router, which now
// forwards it to dst.
func (rt *Router) migrate(ctx context.Context, src, dst, id string) error {
	snap, err := rt.do(ctx, http.MethodPost, src+"/v1/sessions/"+id+"/snapshot", nil)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := rt.do(ctx, http.MethodPost, dst+"/v1/sessions/restore", snap); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	if _, err := rt.do(ctx, http.MethodDelete, src+"/v1/sessions/"+id, nil); err != nil {
		return fmt.Errorf("delete: %w", err)
	}
	return nil
}

// listSessions asks one replica for its session ids.
func (rt *Router) listSessions(ctx context.Context, replica string) ([]string, error) {
	raw, err := rt.do(ctx, http.MethodGet, replica+"/v1/sessions", nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Sessions []string `json:"sessions"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		return nil, err
	}
	return resp.Sessions, nil
}

// do performs one JSON request against a replica and returns the body,
// failing on non-2xx statuses.
func (rt *Router) do(ctx context.Context, method, url string, body []byte) ([]byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return nil, fmt.Errorf("%s %s: status %d: %s", method, url, resp.StatusCode, bytes.TrimSpace(raw))
	}
	return raw, nil
}

// --- small helpers ------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, detail string) {
	writeJSON(w, status, map[string]string{"error": detail})
}

type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
