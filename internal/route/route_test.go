package route

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/serve"
	"edgealloc/internal/sim"
)

// --- helpers (mirror internal/serve's test harness over the wire) -------

func testInstance(t *testing.T, users, horizon int, seed int64) *model.Instance {
	t.Helper()
	in, _, err := scenario.Rome(scenario.Config{Users: users, Horizon: horizon, Seed: seed})
	if err != nil {
		t.Fatalf("building instance: %v", err)
	}
	return in
}

func doJSON(t *testing.T, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

// wire mirrors of internal/serve's (unexported) response documents.
type createResp struct {
	ID string `json:"id"`
}

type slotResp struct {
	Slot int  `json:"slot"`
	Done bool `json:"done"`
	Cost struct {
		SlotTotal float64 `json:"slotTotal"`
		RunTotal  float64 `json:"runTotal"`
	} `json:"cost"`
	Conformance *struct {
		OK         bool           `json:"ok"`
		Violations map[string]int `json:"violations"`
	} `json:"conformance"`
}

type listResp struct {
	Sessions []string `json:"sessions"`
}

// newReplica starts one edged-equivalent server.
func newReplica(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

// newCluster starts n replicas plus a router fronting them.
func newCluster(t *testing.T, n int, cfg serve.Config) (*Router, *httptest.Server, []*httptest.Server) {
	t.Helper()
	replicas := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range replicas {
		_, ts := newReplica(t, cfg)
		replicas[i] = ts
		urls[i] = ts.URL
	}
	rt, err := New(Config{Replicas: urls})
	if err != nil {
		t.Fatalf("building router: %v", err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return rt, front, replicas
}

// createVia creates a session (replay mode) through base, with the
// given client id ("" = let the router mint one).
func createVia(t *testing.T, base, id string, in *model.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}
	body := map[string]any{"instance": json.RawMessage(buf.Bytes())}
	if id != "" {
		body["id"] = id
	}
	var resp createResp
	code, raw := doJSON(t, http.MethodPost, base+"/v1/sessions", body, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", code, raw)
	}
	return resp.ID
}

// driveVia posts slots [from, to) and returns the last response.
func driveVia(t *testing.T, base, id string, from, to int) slotResp {
	t.Helper()
	var last slotResp
	for slot := from; slot < to; slot++ {
		code, raw := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", base, id),
			map[string]any{"slot": slot}, &last)
		if code != http.StatusOK {
			t.Fatalf("session %s slot %d: status %d: %s", id, slot, code, raw)
		}
	}
	return last
}

func fetchScheduleVia(t *testing.T, base, id string) model.Schedule {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/schedule")
	if err != nil {
		t.Fatalf("get schedule: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get schedule %s: status %d", id, resp.StatusCode)
	}
	sched, err := model.ReadSchedule(resp.Body)
	if err != nil {
		t.Fatalf("decoding schedule: %v", err)
	}
	return sched
}

func listOn(t *testing.T, base string) []string {
	t.Helper()
	var resp listResp
	code, raw := doJSON(t, http.MethodGet, base+"/v1/sessions", nil, &resp)
	if code != http.StatusOK {
		t.Fatalf("list sessions: status %d: %s", code, raw)
	}
	return resp.Sessions
}

func reference(t *testing.T, in *model.Instance) *sim.Run {
	t.Helper()
	run, err := sim.Execute(in, core.NewOnlineApprox(nil, core.Options{}))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return run
}

// totalsMatch compares a session's running total against the batch
// reference. The server accumulates slot by slot while sim.Execute
// totals the breakdown at the end, so the two differ by summation
// order in the last ulp; anything beyond 1e-12 relative is a real gap.
func totalsMatch(got, want float64) bool {
	return math.Abs(got-want) <= 1e-12*(1+math.Abs(want))
}

func schedulesEqual(a, b model.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if a[t].I != b[t].I || a[t].J != b[t].J || len(a[t].X) != len(b[t].X) {
			return false
		}
		for k := range a[t].X {
			if a[t].X[k] != b[t].X[k] {
				return false
			}
		}
	}
	return true
}

// --- placement properties ------------------------------------------------

func TestOwnerDeterministicAndBalanced(t *testing.T) {
	replicas := []string{"http://a:1", "http://b:1", "http://c:1"}
	counts := map[string]int{}
	const n = 3000
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("session-%d", k)
		o := Owner(replicas, id)
		if o2 := Owner(replicas, id); o2 != o {
			t.Fatalf("owner of %s not deterministic: %s vs %s", id, o, o2)
		}
		// Membership order must not matter.
		if o3 := Owner([]string{replicas[2], replicas[0], replicas[1]}, id); o3 != o {
			t.Fatalf("owner of %s depends on membership order: %s vs %s", id, o, o3)
		}
		counts[o]++
	}
	for _, r := range replicas {
		frac := float64(counts[r]) / n
		if frac < 1.0/6 || frac > 1.0/2 {
			t.Fatalf("replica %s owns %.1f%% of ids; want roughly a third", r, 100*frac)
		}
	}
	if Owner(nil, "x") != "" {
		t.Fatalf("empty membership should own nothing")
	}
}

func TestOwnerRendezvousStability(t *testing.T) {
	old := []string{"http://a:1", "http://b:1", "http://c:1"}
	grown := append(append([]string(nil), old...), "http://d:1")
	moved := 0
	const n = 3000
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("session-%d", k)
		was, now := Owner(old, id), Owner(grown, id)
		if was != now {
			moved++
			// The defining rendezvous property: a session only ever moves
			// TO a joining replica, never between surviving ones.
			if now != "http://d:1" {
				t.Fatalf("id %s moved %s -> %s on join of d", id, was, now)
			}
		}
	}
	// Expected fraction is 1/4; allow a generous band.
	if frac := float64(moved) / n; frac < 0.15 || frac > 0.35 {
		t.Fatalf("join moved %.1f%% of ids; want ~25%%", 100*frac)
	}
	// Symmetric property on leave: only the departing replica's sessions move.
	for k := 0; k < n; k++ {
		id := fmt.Sprintf("session-%d", k)
		was := Owner(grown, id)
		now := Owner(old, id)
		if was != "http://d:1" && was != now {
			t.Fatalf("id %s moved %s -> %s on leave of d", id, was, now)
		}
	}
}

func TestNormalizeReplica(t *testing.T) {
	for _, tc := range []struct {
		in, want string
		ok       bool
	}{
		{"http://x:1/", "http://x:1", true},
		{" 127.0.0.1:8081 ", "http://127.0.0.1:8081", true},
		{"https://edge.example", "https://edge.example", true},
		{"", "", false},
		{"ftp://x", "", false},
	} {
		got, err := NormalizeReplica(tc.in)
		if tc.ok != (err == nil) || got != tc.want {
			t.Fatalf("NormalizeReplica(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

// TestAdminOwnerResolvesPlacement covers the ownership-lookup endpoint
// load generators use to dial session owners directly.
func TestAdminOwnerResolvesPlacement(t *testing.T) {
	rt, front, _ := newCluster(t, 3, serve.Config{})

	for k := 0; k < 20; k++ {
		id := fmt.Sprintf("probe-%d", k)
		var resp struct {
			Session string `json:"session"`
			Owner   string `json:"owner"`
		}
		code, raw := doJSON(t, http.MethodGet,
			front.URL+"/admin/owner?session="+id, nil, &resp)
		if code != http.StatusOK {
			t.Fatalf("owner of %s: status %d: %s", id, code, raw)
		}
		if resp.Session != id {
			t.Fatalf("owner of %s echoed session %q", id, resp.Session)
		}
		if want := rt.OwnerOf(id); resp.Owner != want {
			t.Fatalf("owner of %s = %s, want %s", id, resp.Owner, want)
		}
	}

	// Missing session parameter is rejected.
	code, raw := doJSON(t, http.MethodGet, front.URL+"/admin/owner", nil, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("owner without session: status %d: %s", code, raw)
	}
}

// --- forwarding ----------------------------------------------------------

// TestRouterPlacesAndForwards drives sessions end to end through the
// router over two replicas: every session must live only on its
// rendezvous owner, and the routed runs must match the single-process
// reference bitwise.
func TestRouterPlacesAndForwards(t *testing.T) {
	in := testInstance(t, 10, 4, 1)
	rt, front, replicas := newCluster(t, 2, serve.Config{})

	ids := []string{}
	for k := 0; k < 4; k++ {
		ids = append(ids, createVia(t, front.URL, fmt.Sprintf("user-%d", k), in))
	}
	// A create without a client id gets a router-minted one.
	minted := createVia(t, front.URL, "", in)
	if minted == "" {
		t.Fatalf("router did not mint an id")
	}
	ids = append(ids, minted)

	// Placement: each session registered only on its owner.
	onReplica := map[string]string{}
	for _, ts := range replicas {
		for _, id := range listOn(t, ts.URL) {
			if prev, dup := onReplica[id]; dup {
				t.Fatalf("session %s on both %s and %s", id, prev, ts.URL)
			}
			onReplica[id] = ts.URL
		}
	}
	for _, id := range ids {
		if got, want := onReplica[id], rt.OwnerOf(id); got != want {
			t.Fatalf("session %s on %s; rendezvous owner is %s", id, got, want)
		}
	}

	// The merged router-level list sees every session.
	all := listOn(t, front.URL)
	if len(all) != len(ids) {
		t.Fatalf("router lists %d sessions, want %d", len(all), len(ids))
	}

	// Drive through the router and compare against the reference run.
	ref := reference(t, in)
	for _, id := range ids {
		last := driveVia(t, front.URL, id, 0, in.T)
		if !last.Done {
			t.Fatalf("session %s not done after horizon", id)
		}
		if last.Conformance == nil || !last.Conformance.OK {
			t.Fatalf("session %s conformance: %+v", id, last.Conformance)
		}
		if !totalsMatch(last.Cost.RunTotal, ref.Total) {
			t.Fatalf("session %s total %v, reference %v", id, last.Cost.RunTotal, ref.Total)
		}
		if sched := fetchScheduleVia(t, front.URL, id); !schedulesEqual(sched, ref.Schedule) {
			t.Fatalf("session %s schedule diverged from reference", id)
		}
	}

	// Status for an id owned by either replica resolves through the router.
	for _, id := range ids {
		code, raw := doJSON(t, http.MethodGet, front.URL+"/v1/sessions/"+id, nil, nil)
		if code != http.StatusOK {
			t.Fatalf("status %s: %d: %s", id, code, raw)
		}
	}
}

// --- membership change ---------------------------------------------------

// TestMembershipChangeMigratesOnlyMoved grows the cluster mid-run and
// checks that exactly the re-homed sessions migrate (warm state
// travelling via snapshot/restore) and that every run still finishes
// bitwise-identical to the uninterrupted reference.
func TestMembershipChangeMigratesOnlyMoved(t *testing.T) {
	in := testInstance(t, 10, 5, 2)
	rt, front, replicas := newCluster(t, 2, serve.Config{})

	const sessions = 6
	ids := make([]string, sessions)
	for k := range ids {
		ids[k] = createVia(t, front.URL, fmt.Sprintf("mob-%d", k), in)
		driveVia(t, front.URL, ids[k], 0, 2)
	}

	// Third replica joins.
	_, ts3 := newReplica(t, serve.Config{})
	oldURLs := rt.Replicas()
	newURLs := append(append([]string(nil), oldURLs...), ts3.URL)

	wantMoved := 0
	for _, id := range ids {
		was, now := Owner(oldURLs, id), Owner(newURLs, id)
		if was != now {
			wantMoved++
			if now != ts3.URL {
				t.Fatalf("id %s re-homed %s -> %s; must only move to the joiner", id, was, now)
			}
		}
	}

	var resp struct {
		Replicas []string `json:"replicas"`
		Migrated int      `json:"migrated"`
	}
	code, raw := doJSON(t, http.MethodPut, front.URL+"/admin/replicas",
		map[string]any{"replicas": newURLs}, &resp)
	if code != http.StatusOK {
		t.Fatalf("set replicas: status %d: %s", code, raw)
	}
	if resp.Migrated != wantMoved {
		t.Fatalf("migrated %d sessions, want %d", resp.Migrated, wantMoved)
	}
	if len(resp.Replicas) != 3 {
		t.Fatalf("membership %v, want 3 replicas", resp.Replicas)
	}

	// Every session now lives exactly on its owner under the new set.
	located := map[string]string{}
	for _, ts := range append(replicas, ts3) {
		for _, id := range listOn(t, ts.URL) {
			located[id] = ts.URL
		}
	}
	for _, id := range ids {
		if got, want := located[id], rt.OwnerOf(id); got != want {
			t.Fatalf("after rebalance session %s on %s, owner %s", id, got, want)
		}
	}

	// Finish every run through the router; migration must be invisible.
	ref := reference(t, in)
	for _, id := range ids {
		last := driveVia(t, front.URL, id, 2, in.T)
		if last.Conformance == nil || !last.Conformance.OK {
			t.Fatalf("session %s conformance after migration: %+v", id, last.Conformance)
		}
		if !totalsMatch(last.Cost.RunTotal, ref.Total) {
			t.Fatalf("session %s total %v, reference %v", id, last.Cost.RunTotal, ref.Total)
		}
		if sched := fetchScheduleVia(t, front.URL, id); !schedulesEqual(sched, ref.Schedule) {
			t.Fatalf("session %s schedule diverged after migration", id)
		}
	}
}

// --- chaos: replica crash + snapshot recovery ----------------------------

// TestChaosReplicaCrashRestore kills a replica mid-stream under the
// router, restarts it from its persisted snapshots, swaps the
// membership to the reborn replica, and checks every resumed run
// against the uninterrupted single-process reference: schedules must
// match bitwise and the slot-coupled total cost to 1e-8, with the
// conformance oracle clean.
func TestChaosReplicaCrashRestore(t *testing.T) {
	in := testInstance(t, 10, 6, 3)
	dirA, dirB := t.TempDir(), t.TempDir()

	_, tsA := newReplica(t, serve.Config{SnapshotDir: dirA, Autosnapshot: true})
	// Replica B is closed mid-test, so it is managed by hand.
	srvB := serve.New(serve.Config{SnapshotDir: dirB, Autosnapshot: true})
	tsB := httptest.NewServer(srvB.Handler())

	rt, err := New(Config{Replicas: []string{tsA.URL, tsB.URL}})
	if err != nil {
		t.Fatalf("building router: %v", err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	// Pick ids that land on both replicas (ownership depends on the
	// ephemeral test ports, so probe instead of hardcoding names).
	var ids []string
	perReplica := map[string]int{}
	for k := 0; len(ids) < 6 && k < 10000; k++ {
		id := fmt.Sprintf("chaos-%d", k)
		owner := rt.OwnerOf(id)
		if perReplica[owner] >= 3 {
			continue
		}
		perReplica[owner]++
		ids = append(ids, id)
	}
	if perReplica[tsA.URL] != 3 || perReplica[tsB.URL] != 3 {
		t.Fatalf("could not spread sessions over both replicas: %v", perReplica)
	}
	for _, id := range ids {
		createVia(t, front.URL, id, in)
		driveVia(t, front.URL, id, 0, 3)
	}

	// Crash replica B: the process dies with sessions mid-horizon. Every
	// committed slot was autosnapshotted, so at most the (not in-flight
	// here) current solve would be lost.
	tsB.Close()
	_ = srvB.Close()

	// A request for a session owned by the dead replica fails loudly at
	// the router rather than hanging.
	for _, id := range ids {
		if rt.OwnerOf(id) == tsB.URL {
			code, _ := doJSON(t, http.MethodPost,
				fmt.Sprintf("%s/v1/sessions/%s/slots", front.URL, id),
				map[string]any{"slot": 3}, nil)
			if code != http.StatusBadGateway {
				t.Fatalf("slot on crashed replica: status %d, want 502", code)
			}
			break
		}
	}

	// Rebirth: a fresh daemon over B's snapshot dir recovers its
	// sessions, and the membership swap re-homes everything.
	srvB2 := serve.New(serve.Config{SnapshotDir: dirB, Autosnapshot: true})
	tsB2 := httptest.NewServer(srvB2.Handler())
	t.Cleanup(tsB2.Close)
	t.Cleanup(func() { _ = srvB2.Close() })

	recoveredOnB2 := listOn(t, tsB2.URL)
	if len(recoveredOnB2) == 0 {
		t.Fatalf("reborn replica recovered no sessions from %s", dirB)
	}

	if _, err := rt.SetReplicas(context.Background(), []string{tsA.URL, tsB2.URL}); err != nil {
		t.Fatalf("membership swap after crash: %v", err)
	}

	// Resume every run through the router and pin it to the
	// uninterrupted reference.
	ref := reference(t, in)
	for _, id := range ids {
		last := driveVia(t, front.URL, id, 3, in.T)
		if !last.Done {
			t.Fatalf("session %s not done after resume", id)
		}
		if last.Conformance == nil || !last.Conformance.OK {
			t.Fatalf("session %s conformance after crash recovery: %+v", id, last.Conformance)
		}
		gap := math.Abs(last.Cost.RunTotal-ref.Total) / (1 + math.Abs(ref.Total))
		if gap > 1e-8 {
			t.Fatalf("session %s resumed cost %v vs uninterrupted %v (gap %.3e > 1e-8)",
				id, last.Cost.RunTotal, ref.Total, gap)
		}
		if sched := fetchScheduleVia(t, front.URL, id); !schedulesEqual(sched, ref.Schedule) {
			t.Fatalf("session %s schedule diverged after crash recovery", id)
		}
	}
}

// TestRouterErrors covers the router's own failure modes.
func TestRouterErrors(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatalf("router with no replicas must fail")
	}
	_, front, _ := newCluster(t, 1, serve.Config{})

	// Unknown session id forwards and yields the replica's 404.
	code, _ := doJSON(t, http.MethodGet, front.URL+"/v1/sessions/nope", nil, nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", code)
	}
	// Restore without an id is rejected at the router.
	code, _ = doJSON(t, http.MethodPost, front.URL+"/v1/sessions/restore",
		map[string]any{"version": 1}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("restore without id: status %d, want 400", code)
	}
	// Emptying the membership is rejected.
	code, _ = doJSON(t, http.MethodPut, front.URL+"/admin/replicas",
		map[string]any{"replicas": []string{}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("empty membership: status %d, want 400", code)
	}
	// Health endpoint answers locally.
	code, _ = doJSON(t, http.MethodGet, front.URL+"/healthz", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
}
