// Package loadgen is the sustained-load harness for the serving tier:
// an open-loop generator that drives many concurrent allocation
// sessions against an edged daemon (or an edgerouter front) at a fixed
// offered rate of slot-advances per second, measuring the round-trip
// latency of every advance into SLO histograms (p50/p99/p999) and
// sweeping the rate to find the saturation knee. Reports serialize to
// BENCH_serve.json and diff against a committed baseline so serve-tier
// latency regressions fail the bench gate like solver kernels do.
//
// Open loop means arrivals do not wait for completions: ticks fire on
// the offered-rate clock and a tick that finds every session busy is
// counted as starvation instead of slowing down — so queueing delay
// shows up in the latency tail, not in a silently reduced rate.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"edgealloc/internal/model"
)

// Runner drives one target with a fixed session population. Sessions
// are created with client-supplied ids (so placement through a router
// is deterministic) and replay the same instance template; a session
// that finishes its horizon is replaced by a fresh one, keeping the
// population constant for the whole run.
type Runner struct {
	// Base is the target base URL (edged or edgerouter).
	Base string
	// Client performs the requests (default: 2-minute timeout).
	Client *http.Client
	// Sessions is the concurrent session population.
	Sessions int
	// Instance is the per-session replay template.
	Instance *model.Instance
	// IDPrefix namespaces the session ids (default "load").
	IDPrefix string
	// Resolve treats Base as an edgerouter front: each session's owning
	// replica is looked up once via GET Base/admin/owner?session=<id>
	// and all traffic for that session dials the owner directly, taking
	// the router's forwarding copy off the hot path while leaving
	// placement decisions with the router. Rebirths re-resolve, since a
	// fresh id may hash to a different owner.
	Resolve bool

	instRaw json.RawMessage
	ids     []string
	next    []int    // next slot per population index
	gen     []int    // rebirth count per population index
	targets []string // direct-dial base per population index (Resolve mode)
}

// Step is one rate point of a sweep: offered load, what the target
// actually absorbed, and the latency distribution of the absorbed
// slot-advances.
type Step struct {
	// Rate is the offered load, slot-advances per second.
	Rate float64 `json:"rate"`
	// Seconds is the measured wall-clock of the step.
	Seconds float64 `json:"seconds"`
	// Completed counts successful slot-advances.
	Completed uint64 `json:"completed"`
	// Achieved is Completed/Seconds.
	Achieved float64 `json:"achieved"`
	// Shed counts 429 responses (admission control shedding load).
	Shed uint64 `json:"shed"`
	// Errors counts non-200, non-429 outcomes.
	Errors uint64 `json:"errors"`
	// Starved counts ticks that found every session busy: offered
	// arrivals the open loop could not issue. Starved > 0 at a rate
	// point means the target is past saturation there.
	Starved uint64 `json:"starved"`
	// P50Ns, P99Ns, P999Ns, MaxNs are latency quantiles of one
	// slot-advance round trip, in nanoseconds.
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MaxNs  float64 `json:"max_ns"`
}

// Report is a full sweep, serialized as BENCH_serve.json.
type Report struct {
	Target   string `json:"target"` // "self" or the external base URL
	Sessions int    `json:"sessions"`
	Users    int    `json:"users"`
	Horizon  int    `json:"horizon"`
	Seed     int64  `json:"seed"`
	Steps    []Step `json:"steps"`
}

func (r *Runner) client() *http.Client {
	if r.Client != nil {
		return r.Client
	}
	return &http.Client{Timeout: 2 * time.Minute}
}

func (r *Runner) prefix() string {
	if r.IDPrefix != "" {
		return r.IDPrefix
	}
	return "load"
}

// baseFor is the base URL session traffic for population index k uses:
// the resolved owner in Resolve mode, the configured target otherwise.
func (r *Runner) baseFor(k int) string {
	if r.targets != nil && r.targets[k] != "" {
		return r.targets[k]
	}
	return r.Base
}

// resolveOwner asks the router which replica owns id.
func (r *Runner) resolveOwner(ctx context.Context, id string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		r.Base+"/admin/owner?session="+url.QueryEscape(id), nil)
	if err != nil {
		return "", err
	}
	resp, err := r.client().Do(req)
	if err != nil {
		return "", fmt.Errorf("loadgen: resolving owner of %s: %w", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("loadgen: resolving owner of %s: status %d: %s",
			id, resp.StatusCode, bytes.TrimSpace(raw))
	}
	var doc struct {
		Owner string `json:"owner"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return "", fmt.Errorf("loadgen: decoding owner of %s: %w", id, err)
	}
	if doc.Owner == "" {
		return "", fmt.Errorf("loadgen: router reported no owner for %s", id)
	}
	return doc.Owner, nil
}

// Setup encodes the instance template and creates the session
// population.
func (r *Runner) Setup(ctx context.Context) error {
	if r.Sessions <= 0 {
		return fmt.Errorf("loadgen: Sessions must be positive")
	}
	if r.Instance == nil {
		return fmt.Errorf("loadgen: Instance required")
	}
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, r.Instance); err != nil {
		return fmt.Errorf("loadgen: encoding instance: %w", err)
	}
	r.instRaw = json.RawMessage(buf.Bytes())
	r.ids = make([]string, r.Sessions)
	r.next = make([]int, r.Sessions)
	r.gen = make([]int, r.Sessions)
	if r.Resolve {
		r.targets = make([]string, r.Sessions)
	}
	for k := 0; k < r.Sessions; k++ {
		if err := r.createSession(ctx, k); err != nil {
			return err
		}
	}
	return nil
}

// Teardown deletes the current session population (best effort).
func (r *Runner) Teardown(ctx context.Context) {
	for k, id := range r.ids {
		req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
			r.baseFor(k)+"/v1/sessions/"+id, nil)
		if err != nil {
			continue
		}
		if resp, err := r.client().Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// createSession registers population slot k under a fresh id.
func (r *Runner) createSession(ctx context.Context, k int) error {
	id := fmt.Sprintf("%s-%d-g%d", r.prefix(), k, r.gen[k])
	if r.Resolve {
		owner, err := r.resolveOwner(ctx, id)
		if err != nil {
			return err
		}
		r.targets[k] = owner
	}
	body, err := json.Marshal(map[string]any{"id": id, "instance": r.instRaw})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.baseFor(k)+"/v1/sessions", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client().Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: creating session %s: %w", id, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("loadgen: creating session %s: status %d: %s",
			id, resp.StatusCode, bytes.TrimSpace(raw))
	}
	r.ids[k] = id
	r.next[k] = 0
	return nil
}

// advance posts the next slot of population index k, recording the
// outcome. Only one goroutine holds an index at a time, so next/gen
// need no locking.
func (r *Runner) advance(ctx context.Context, k int, hist *Histogram, completed, shed, errs *atomic.Uint64) {
	if r.next[k] >= r.Instance.T {
		// Horizon done: replace with a fresh session (rebirth is part of
		// the offered work but not a slot-advance latency sample).
		r.gen[k]++
		if err := r.createSession(ctx, k); err != nil {
			errs.Add(1)
			r.gen[k]-- // retry the rebirth on the next dispatch
			return
		}
	}
	body, _ := json.Marshal(map[string]any{"slot": r.next[k]})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		r.baseFor(k)+"/v1/sessions/"+r.ids[k]+"/slots", bytes.NewReader(body))
	if err != nil {
		errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := r.client().Do(req)
	if err != nil {
		errs.Add(1)
		return
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		hist.Record(time.Since(t0))
		r.next[k]++
		completed.Add(1)
	case resp.StatusCode == http.StatusTooManyRequests:
		shed.Add(1) // open loop: shedding is the signal, not an error
	default:
		errs.Add(1)
	}
}

// RunStep offers `rate` slot-advances per second for `dur` and returns
// the measured step.
func (r *Runner) RunStep(ctx context.Context, rate float64, dur time.Duration) (Step, error) {
	if rate <= 0 {
		return Step{}, fmt.Errorf("loadgen: rate must be positive")
	}
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Nanosecond
	}

	hist := &Histogram{}
	var completed, shed, errs, starved atomic.Uint64
	ready := make(chan int, r.Sessions)
	for k := 0; k < r.Sessions; k++ {
		ready <- k
	}

	var wg sync.WaitGroup
	start := time.Now()
	ticker := time.NewTicker(interval)
	timer := time.NewTimer(dur)
	defer ticker.Stop()
	defer timer.Stop()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-timer.C:
			break loop
		case <-ticker.C:
			select {
			case k := <-ready:
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					r.advance(ctx, k, hist, &completed, &shed, &errs)
					ready <- k
				}(k)
			default:
				// Every session busy: an offered arrival the target could
				// not absorb. The open loop keeps its clock instead of
				// stalling.
				starved.Add(1)
			}
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	step := Step{
		Rate:      rate,
		Seconds:   elapsed.Seconds(),
		Completed: completed.Load(),
		Shed:      shed.Load(),
		Errors:    errs.Load(),
		Starved:   starved.Load(),
		P50Ns:     float64(hist.Quantile(0.50)),
		P99Ns:     float64(hist.Quantile(0.99)),
		P999Ns:    float64(hist.Quantile(0.999)),
		MaxNs:     float64(hist.Max()),
	}
	if step.Seconds > 0 {
		step.Achieved = float64(step.Completed) / step.Seconds
	}
	return step, ctx.Err()
}

// Sweep runs one step per rate, in order, over the same session
// population (warm sessions carry across steps, like a long-lived
// deployment).
func (r *Runner) Sweep(ctx context.Context, rates []float64, dur time.Duration) ([]Step, error) {
	steps := make([]Step, 0, len(rates))
	for _, rate := range rates {
		s, err := r.RunStep(ctx, rate, dur)
		if err != nil {
			return steps, err
		}
		steps = append(steps, s)
	}
	return steps, nil
}

// --- report IO + regression gate ----------------------------------------

// WriteReport serializes the report (indented, trailing newline).
func WriteReport(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadReport parses a report written by WriteReport.
func ReadReport(rd io.Reader) (*Report, error) {
	var rep Report
	if err := json.NewDecoder(rd).Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadgen: parse report: %w", err)
	}
	return &rep, nil
}

// Regression is one failed latency gate.
type Regression struct {
	Rate     float64
	Quantile string
	BaseNs   float64
	CurNs    float64
	Delta    float64 // (cur-base)/base
}

func (r Regression) String() string {
	return fmt.Sprintf("rate %g: %s %.2fms -> %.2fms (%+.0f%%)",
		r.Rate, r.Quantile, r.BaseNs/1e6, r.CurNs/1e6, 100*r.Delta)
}

// DiffReports gates the current sweep against a baseline: for every
// rate point present in both, each latency percentile may grow at most
// `threshold` (0.5 = +50%; serve round trips are noisier than solver
// microbenchmarks, so the gate is looser than the kernel one). Rate
// points only in one report are ignored — resizing the sweep must not
// fail the gate.
func DiffReports(base, cur *Report, threshold float64) []Regression {
	byRate := map[float64]Step{}
	for _, s := range base.Steps {
		byRate[s.Rate] = s
	}
	var out []Regression
	for _, s := range cur.Steps {
		b, ok := byRate[s.Rate]
		if !ok {
			continue
		}
		for _, q := range []struct {
			name      string
			base, cur float64
		}{
			{"p50", b.P50Ns, s.P50Ns},
			{"p99", b.P99Ns, s.P99Ns},
			{"p999", b.P999Ns, s.P999Ns},
		} {
			if q.base <= 0 || q.cur <= q.base*(1+threshold) {
				continue
			}
			out = append(out, Regression{
				Rate: s.Rate, Quantile: q.name,
				BaseNs: q.base, CurNs: q.cur,
				Delta: (q.cur - q.base) / q.base,
			})
		}
	}
	return out
}

// WriteStepTable renders steps as a human-readable table.
func WriteStepTable(w io.Writer, steps []Step) {
	fmt.Fprintf(w, "%8s %9s %10s %6s %6s %8s %9s %9s %9s %9s\n",
		"rate", "achieved", "completed", "shed", "errs", "starved", "p50", "p99", "p999", "max")
	for _, s := range steps {
		fmt.Fprintf(w, "%8.1f %9.1f %10d %6d %6d %8d %9s %9s %9s %9s\n",
			s.Rate, s.Achieved, s.Completed, s.Shed, s.Errors, s.Starved,
			fmtNs(s.P50Ns), fmtNs(s.P99Ns), fmtNs(s.P999Ns), fmtNs(s.MaxNs))
	}
}

func fmtNs(ns float64) string {
	return time.Duration(ns).Round(10 * time.Microsecond).String()
}
