package loadgen

import (
	"math"
	"sync"
	"time"
)

// histBase is the lower edge of the first latency bucket.
const histBase = time.Microsecond

// histBucketsPerOctave sets the bucket resolution: 8 buckets per
// doubling keeps quantile error under ~9%, plenty for SLO percentiles.
const histBucketsPerOctave = 8

// histOctaves spans 1µs .. ~2m17s (2^27 µs).
const histOctaves = 27

const histBuckets = histOctaves * histBucketsPerOctave

// Histogram is a concurrency-safe log-bucketed latency histogram tuned
// for slot-advance round trips: fixed memory, ~9% relative resolution,
// exact count/min/max.
type Histogram struct {
	mu      sync.Mutex
	buckets [histBuckets + 1]uint64 // last bucket catches overflow
	count   uint64
	min     time.Duration
	max     time.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	if d < histBase {
		return 0
	}
	idx := int(math.Floor(histBucketsPerOctave * math.Log2(float64(d)/float64(histBase))))
	if idx < 0 {
		return 0
	}
	if idx > histBuckets {
		return histBuckets
	}
	return idx
}

// bucketUpper is the inclusive upper edge of bucket idx.
func bucketUpper(idx int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(2, float64(idx+1)/histBucketsPerOctave))
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets[bucketOf(d)]++
	h.count++
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Max returns the largest observation (0 when empty).
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the q-quantile (0 < q <= 1) as the upper edge of the
// bucket holding the target rank — a conservative (never optimistic)
// latency estimate. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.buckets {
		seen += c
		if seen >= rank {
			if i == histBuckets {
				return h.max
			}
			u := bucketUpper(i)
			if u > h.max {
				u = h.max
			}
			if u < h.min {
				u = h.min
			}
			return u
		}
	}
	return h.max
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.buckets = [histBuckets + 1]uint64{}
	h.count, h.min, h.max = 0, 0, 0
}
