package loadgen

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"edgealloc/internal/route"
	"edgealloc/internal/scenario"
	"edgealloc/internal/serve"
)

// --- histogram -----------------------------------------------------------

func TestHistogramQuantiles(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatalf("empty histogram should report zero")
	}
	// 1..1000 ms: quantiles are known up to bucket resolution (~9%).
	for ms := 1; ms <= 1000; ms++ {
		h.Record(time.Duration(ms) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d, want 1000", h.Count())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		lo := time.Duration(float64(tc.want) * 0.90)
		hi := time.Duration(float64(tc.want) * 1.12)
		if got < lo || got > hi {
			t.Fatalf("q%.3f = %v, want within [%v, %v]", tc.q, got, lo, hi)
		}
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max %v, want 1s", h.Max())
	}
	// The top quantile never exceeds the true max.
	if h.Quantile(1) > h.Max() {
		t.Fatalf("q1 %v exceeds max %v", h.Quantile(1), h.Max())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatalf("reset did not clear the histogram")
	}
}

func TestHistogramEdges(t *testing.T) {
	h := &Histogram{}
	h.Record(0)                // below the first bucket
	h.Record(10 * time.Minute) // beyond the last bucket
	if h.Count() != 2 {
		t.Fatalf("count %d, want 2", h.Count())
	}
	if got := h.Quantile(1); got != 10*time.Minute {
		t.Fatalf("overflow quantile %v, want the recorded max", got)
	}
}

func TestBucketMonotone(t *testing.T) {
	prev := -1
	for d := time.Microsecond; d < time.Minute; d = d * 5 / 4 {
		b := bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %v: %d < %d", d, b, prev)
		}
		prev = b
		if up := bucketUpper(b); up < d {
			t.Fatalf("bucketUpper(%d)=%v below sample %v", b, up, d)
		}
	}
}

// --- regression gate -----------------------------------------------------

func TestDiffReports(t *testing.T) {
	base := &Report{Steps: []Step{
		{Rate: 10, P50Ns: 1e6, P99Ns: 5e6, P999Ns: 9e6},
		{Rate: 20, P50Ns: 2e6, P99Ns: 8e6, P999Ns: 2e7},
	}}
	// Within the gate: +40% on one percentile.
	cur := &Report{Steps: []Step{
		{Rate: 10, P50Ns: 1.4e6, P99Ns: 5e6, P999Ns: 9e6},
		{Rate: 20, P50Ns: 2e6, P99Ns: 8e6, P999Ns: 2e7},
	}}
	if regs := DiffReports(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("within-gate sweep flagged: %v", regs)
	}
	// Past the gate: p99 at rate 20 triples.
	cur.Steps[1].P99Ns = 24e6
	regs := DiffReports(base, cur, 0.5)
	if len(regs) != 1 {
		t.Fatalf("want exactly one regression, got %v", regs)
	}
	if regs[0].Rate != 20 || regs[0].Quantile != "p99" {
		t.Fatalf("wrong regression identified: %+v", regs[0])
	}
	if !strings.Contains(regs[0].String(), "p99") {
		t.Fatalf("regression string %q should name the percentile", regs[0])
	}
	// A rate point absent from the baseline is not gated.
	cur.Steps[1].Rate = 40
	if regs := DiffReports(base, cur, 0.5); len(regs) != 0 {
		t.Fatalf("unmatched rate point gated: %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := &Report{Target: "self", Sessions: 8, Users: 4, Horizon: 3, Seed: 7,
		Steps: []Step{{Rate: 5, Completed: 40, P50Ns: 1.5e6}}}
	var buf strings.Builder
	if err := WriteReport(&buf, rep); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Target != rep.Target || len(got.Steps) != 1 || got.Steps[0].Completed != 40 {
		t.Fatalf("round trip mangled the report: %+v", got)
	}
}

// --- end-to-end open loop ------------------------------------------------

// TestRunnerOpenLoop drives a real in-process edged briefly and checks
// the bookkeeping: slot-advances complete, latencies land in the
// histogram-backed percentiles, sessions are reborn past the horizon,
// and teardown empties the daemon.
func TestRunnerOpenLoop(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 1})
	if err != nil {
		t.Fatalf("building instance: %v", err)
	}
	s := serve.New(serve.Config{})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })

	r := &Runner{Base: ts.URL, Sessions: 4, Instance: in, IDPrefix: "t"}
	ctx := context.Background()
	if err := r.Setup(ctx); err != nil {
		t.Fatalf("setup: %v", err)
	}
	step, err := r.RunStep(ctx, 200, 2*time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if step.Completed == 0 {
		t.Fatalf("no slot-advances completed: %+v", step)
	}
	if step.Errors != 0 {
		t.Fatalf("%d errors during open loop: %+v", step.Errors, step)
	}
	if step.P50Ns <= 0 || step.P99Ns < step.P50Ns || step.P999Ns < step.P99Ns {
		t.Fatalf("percentiles not ordered: %+v", step)
	}
	if step.Achieved <= 0 {
		t.Fatalf("achieved rate not measured: %+v", step)
	}
	// 4 sessions x 3 slots = 12 advances; more completions than that
	// proves sessions were reborn to sustain the population.
	if step.Completed > 12 {
		reborn := false
		for _, g := range r.gen {
			if g > 0 {
				reborn = true
			}
		}
		if !reborn {
			t.Fatalf("%d completions but no session rebirth", step.Completed)
		}
	}
	r.Teardown(ctx)
}

// TestRunnerResolveDirectDial puts a router in front of two replicas
// and checks that Resolve mode looks placement up once per session and
// then bypasses the router entirely: every session is created on its
// rendezvous owner, slot-advances dial the owner, and teardown cleans
// the owners out.
func TestRunnerResolveDirectDial(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 1})
	if err != nil {
		t.Fatalf("building instance: %v", err)
	}
	replicas := make([]*httptest.Server, 2)
	urls := make([]string, 2)
	for i := range replicas {
		s := serve.New(serve.Config{})
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { _ = s.Close() })
		replicas[i] = ts
		urls[i] = ts.URL
	}
	rt, err := route.New(route.Config{Replicas: urls})
	if err != nil {
		t.Fatalf("building router: %v", err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)

	r := &Runner{Base: front.URL, Sessions: 4, Instance: in, IDPrefix: "rv", Resolve: true}
	ctx := context.Background()
	if err := r.Setup(ctx); err != nil {
		t.Fatalf("setup: %v", err)
	}
	for k, id := range r.ids {
		if want := rt.OwnerOf(id); r.targets[k] != want {
			t.Fatalf("session %s resolved to %s, owner is %s", id, r.targets[k], want)
		}
	}
	// Each session must be registered on its owner replica, reachable
	// without the router.
	found := 0
	for _, ts := range replicas {
		var resp struct {
			Sessions []string `json:"sessions"`
		}
		res, err := http.Get(ts.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		for _, id := range resp.Sessions {
			if rt.OwnerOf(id) != ts.URL {
				t.Fatalf("session %s lives on %s, owner is %s", id, ts.URL, rt.OwnerOf(id))
			}
			found++
		}
	}
	if found != 4 {
		t.Fatalf("found %d sessions on the replicas, want 4", found)
	}

	step, err := r.RunStep(ctx, 100, time.Second)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if step.Completed == 0 || step.Errors != 0 {
		t.Fatalf("direct-dial open loop: %+v", step)
	}
	// Teardown deletes the live population (finished generations stay
	// behind, as in forwarding mode) — the current ids must be gone.
	r.Teardown(ctx)
	live := map[string]bool{}
	for _, id := range r.ids {
		live[id] = true
	}
	for _, ts := range replicas {
		var resp struct {
			Sessions []string `json:"sessions"`
		}
		res, err := http.Get(ts.URL + "/v1/sessions")
		if err != nil {
			t.Fatal(err)
		}
		if err := json.NewDecoder(res.Body).Decode(&resp); err != nil {
			t.Fatal(err)
		}
		res.Body.Close()
		for _, id := range resp.Sessions {
			if live[id] {
				t.Fatalf("teardown left live session %s on %s", id, ts.URL)
			}
		}
	}

	// Resolve against a bare replica (no /admin/owner) fails setup loudly.
	bad := &Runner{Base: urls[0], Sessions: 1, Instance: in, Resolve: true}
	if err := bad.Setup(ctx); err == nil {
		t.Fatalf("resolve against a non-router target must fail setup")
	}
}

func TestRunnerValidation(t *testing.T) {
	if err := (&Runner{Sessions: 0}).Setup(context.Background()); err == nil {
		t.Fatalf("zero sessions must fail setup")
	}
	if err := (&Runner{Sessions: 1}).Setup(context.Background()); err == nil {
		t.Fatalf("nil instance must fail setup")
	}
	r := &Runner{Sessions: 1}
	if _, err := r.RunStep(context.Background(), 0, time.Second); err == nil {
		t.Fatalf("zero rate must fail")
	}
}
