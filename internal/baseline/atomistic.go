// Package baseline implements the comparison algorithms of the paper's
// evaluation (§V-B):
//
//   - the atomistic group — perf-opt, oper-opt, stat-opt — which minimize
//     only (parts of) the static cost independently in each slot;
//   - static, which computes one allocation up front and never adapts
//     (the "static approaches typically employed in edge clouds" of §I);
//   - online-greedy, which minimizes the true P0 slot cost given the
//     previous slot's outcome but looks no further ahead;
//   - offline-opt, which minimizes P0 with the whole future known — the
//     impractical baseline every empirical competitive ratio is
//     normalized by.
package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/transport"
)

// AtomisticKind selects which part of the static cost an atomistic
// algorithm minimizes.
type AtomisticKind int

// The three atomistic objectives of §V-B.
const (
	// PerfOpt minimizes only the service-quality cost each slot.
	PerfOpt AtomisticKind = iota + 1
	// OperOpt minimizes only the operation cost each slot.
	OperOpt
	// StatOpt minimizes the total static cost each slot.
	StatOpt
)

func (k AtomisticKind) String() string {
	switch k {
	case PerfOpt:
		return "perf-opt"
	case OperOpt:
		return "oper-opt"
	case StatOpt:
		return "stat-opt"
	default:
		return fmt.Sprintf("AtomisticKind(%d)", int(k))
	}
}

// Atomistic is a per-slot static-cost minimizer. Each slot reduces to a
// transportation problem solved exactly (internal/solver/transport).
type Atomistic struct {
	Kind AtomisticKind
}

// Name identifies the algorithm in experiment output.
func (a *Atomistic) Name() string { return a.Kind.String() }

// Solve computes the per-slot optimal allocations for its static objective.
func (a *Atomistic) Solve(in *model.Instance) (model.Schedule, error) {
	sched := make(model.Schedule, in.T)
	for t := 0; t < in.T; t++ {
		x, err := solveSlotTransport(in, a.slotCost(in, t))
		if err != nil {
			return nil, fmt.Errorf("baseline: %s slot %d: %w", a.Name(), t, err)
		}
		sched[t] = x
	}
	return sched, nil
}

// slotCost builds the I×J unit-cost matrix of the slot's objective.
func (a *Atomistic) slotCost(in *model.Instance, t int) [][]float64 {
	cost := make([][]float64, in.I)
	for i := range cost {
		cost[i] = make([]float64, in.J)
		for j := range cost[i] {
			switch a.Kind {
			case PerfOpt:
				cost[i][j] = in.WSq * in.InterDelay[in.Attach[t][j]][i] / in.Workload[j]
			case OperOpt:
				cost[i][j] = in.WOp * in.OpPrice[t][i]
			default: // StatOpt
				cost[i][j] = in.WOp*in.OpPrice[t][i] +
					in.WSq*in.InterDelay[in.Attach[t][j]][i]/in.Workload[j]
			}
		}
	}
	return cost
}

// Static computes the stat-opt allocation for the first slot and keeps it
// unchanged for the whole horizon.
type Static struct{}

// Name identifies the algorithm in experiment output.
func (s *Static) Name() string { return "static" }

// Solve implements the never-adapt policy.
func (s *Static) Solve(in *model.Instance) (model.Schedule, error) {
	at := &Atomistic{Kind: StatOpt}
	x, err := solveSlotTransport(in, at.slotCost(in, 0))
	if err != nil {
		return nil, fmt.Errorf("baseline: static: %w", err)
	}
	sched := make(model.Schedule, in.T)
	for t := range sched {
		sched[t] = x.Clone()
	}
	return sched, nil
}

// solveSlotTransport runs the exact transportation solver for one slot.
func solveSlotTransport(in *model.Instance, cost [][]float64) (model.Alloc, error) {
	sol, err := transport.Solve(&transport.Problem{
		Cost:   cost,
		Supply: in.Capacity,
		Demand: in.Workload,
	})
	if err != nil {
		return model.Alloc{}, err
	}
	x := model.NewAlloc(in.I, in.J)
	for i := 0; i < in.I; i++ {
		copy(x.X[i*in.J:(i+1)*in.J], sol.Flow[i])
	}
	return x, nil
}
