package baseline

import (
	"math"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

const feasTol = 1e-5

// totalOf evaluates a schedule's weighted P0 cost, failing the test on error.
func totalOf(t *testing.T, in *model.Instance, s model.Schedule) float64 {
	t.Helper()
	b, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return in.Total(b)
}

func smallRome(t *testing.T, users, horizon int, seed int64) *model.Instance {
	t.Helper()
	in, _, err := scenario.Rome(scenario.Config{Users: users, Horizon: horizon, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestExactOfflineReproducesFig1Optima(t *testing.T) {
	a := model.ToyExampleA()
	_, objA, err := ExactOffline(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(objA-9.6) > 1e-6 {
		t.Errorf("example (a) offline optimum = %g, want 9.6", objA)
	}
	b := model.ToyExampleB()
	_, objB, err := ExactOffline(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(objB-9.5) > 1e-6 {
		t.Errorf("example (b) offline optimum = %g, want 9.5", objB)
	}
}

func TestGreedyReproducesFig1Traps(t *testing.T) {
	// Example (a): greedy is too aggressive and pays 11.5.
	a := model.ToyExampleA()
	g := &Greedy{}
	sa, err := g.Solve(a)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckFeasible(sa, feasTol); err != nil {
		t.Fatal(err)
	}
	if got := totalOf(t, a, sa); math.Abs(got-11.5) > 0.05 {
		t.Errorf("greedy on (a) = %g, want ≈11.5", got)
	}
	// Example (b): greedy is too conservative and pays 11.3.
	b := model.ToyExampleB()
	sb, err := g.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := totalOf(t, b, sb); math.Abs(got-11.3) > 0.05 {
		t.Errorf("greedy on (b) = %g, want ≈11.3", got)
	}
}

func TestOfflineSmoothedMatchesExactOnToys(t *testing.T) {
	for name, in := range map[string]*model.Instance{
		"a": model.ToyExampleA(), "b": model.ToyExampleB(),
	} {
		off := &Offline{}
		s, err := off.Solve(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := in.CheckFeasible(s, feasTol); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		_, exact, err := ExactOffline(in)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := totalOf(t, in, s)
		if got < exact-1e-6 {
			t.Errorf("%s: smoothed offline %g beat the exact optimum %g", name, got, exact)
		}
		if got > exact*1.02 {
			t.Errorf("%s: smoothed offline %g more than 2%% above exact %g", name, got, exact)
		}
	}
}

func TestOfflineSmoothedMatchesExactOnRandomSmall(t *testing.T) {
	in := smallRome(t, 3, 4, 11)
	off := &Offline{}
	s, err := off.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, feasTol); err != nil {
		t.Fatal(err)
	}
	_, exact, err := ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	got := totalOf(t, in, s)
	if got < exact-1e-6 {
		t.Errorf("smoothed offline %g beat the exact optimum %g", got, exact)
	}
	if got > exact*1.03 {
		t.Errorf("smoothed offline %g more than 3%% above exact %g", got, exact)
	}
}

func TestGreedyEqualsExactOnSingleSlot(t *testing.T) {
	// With T = 1 greedy IS the offline optimum; the smoothed solve must
	// land on the LP value.
	in := smallRome(t, 4, 1, 13)
	g := &Greedy{}
	s, err := g.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	_, exact, err := ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	got := totalOf(t, in, s)
	if got < exact-1e-6 || got > exact*1.02 {
		t.Errorf("greedy single-slot %g, exact %g", got, exact)
	}
}

func TestAtomisticFeasibleAndOrdered(t *testing.T) {
	in := smallRome(t, 12, 8, 17)
	schedules := map[string]model.Schedule{}
	for _, kind := range []AtomisticKind{PerfOpt, OperOpt, StatOpt} {
		a := &Atomistic{Kind: kind}
		s, err := a.Solve(in)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if err := in.CheckFeasible(s, feasTol); err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		schedules[kind.String()] = s
	}
	// stat-opt minimizes the weighted static cost; the others cannot do
	// better on that metric.
	staticCost := func(s model.Schedule) float64 {
		b, err := in.Evaluate(s)
		if err != nil {
			t.Fatal(err)
		}
		return in.WOp*b.Op + in.WSq*b.Sq
	}
	statC := staticCost(schedules["stat-opt"])
	if perfC := staticCost(schedules["perf-opt"]); statC > perfC+1e-6 {
		t.Errorf("stat-opt static cost %g > perf-opt %g", statC, perfC)
	}
	if operC := staticCost(schedules["oper-opt"]); statC > operC+1e-6 {
		t.Errorf("stat-opt static cost %g > oper-opt %g", statC, operC)
	}
}

func TestAtomisticObjectivesDiffer(t *testing.T) {
	in := smallRome(t, 10, 6, 19)
	perf, err := (&Atomistic{Kind: PerfOpt}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	oper, err := (&Atomistic{Kind: OperOpt}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	bPerf, err := in.Evaluate(perf)
	if err != nil {
		t.Fatal(err)
	}
	bOper, err := in.Evaluate(oper)
	if err != nil {
		t.Fatal(err)
	}
	if bPerf.Sq > bOper.Sq+1e-9 {
		t.Errorf("perf-opt sq %g worse than oper-opt sq %g", bPerf.Sq, bOper.Sq)
	}
	if bOper.Op > bPerf.Op+1e-9 {
		t.Errorf("oper-opt op %g worse than perf-opt op %g", bOper.Op, bPerf.Op)
	}
}

func TestStaticNeverAdapts(t *testing.T) {
	in := smallRome(t, 10, 6, 23)
	s, err := (&Static{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, feasTol); err != nil {
		t.Fatal(err)
	}
	for t2 := 1; t2 < in.T; t2++ {
		for k := range s[t2].X {
			if s[t2].X[k] != s[0].X[k] {
				t.Fatalf("static changed allocation at slot %d", t2)
			}
		}
	}
	// All dynamic cost comes from the initial ramp-up; transitions after
	// slot 0 are free.
	b, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	first := model.NewAlloc(in.I, in.J)
	rc0, mg0 := in.SlotDynamic(first, s[0])
	if math.Abs(b.Rc-rc0) > 1e-9 || math.Abs(b.Mg-mg0) > 1e-9 {
		t.Errorf("static dynamic cost rc=%g mg=%g, want only the ramp-up rc=%g mg=%g",
			b.Rc, b.Mg, rc0, mg0)
	}
}

func TestGreedyFeasibleOnScenario(t *testing.T) {
	in := smallRome(t, 15, 10, 29)
	s, err := (&Greedy{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, feasTol); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineBeatsGreedyAndAtomistic(t *testing.T) {
	in := smallRome(t, 8, 6, 31)
	off, err := (&Offline{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	offC := totalOf(t, in, off)
	gr, err := (&Greedy{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if grC := totalOf(t, in, gr); offC > grC*1.01 {
		t.Errorf("offline %g worse than greedy %g", offC, grC)
	}
	st, err := (&Atomistic{Kind: StatOpt}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if stC := totalOf(t, in, st); offC > stC*1.01 {
		t.Errorf("offline %g worse than stat-opt %g", offC, stC)
	}
}

func TestNames(t *testing.T) {
	names := map[string]interface{ Name() string }{
		"perf-opt":      &Atomistic{Kind: PerfOpt},
		"oper-opt":      &Atomistic{Kind: OperOpt},
		"stat-opt":      &Atomistic{Kind: StatOpt},
		"static":        &Static{},
		"online-greedy": &Greedy{},
		"offline-opt":   &Offline{},
	}
	for want, alg := range names {
		if got := alg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}
