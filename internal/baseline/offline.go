package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/smooth"
)

// Offline minimizes P0 over the whole horizon with full knowledge of the
// future — the impractical baseline used to normalize every empirical
// competitive ratio (the paper's offline-opt, solved there by an LP
// solver). The hinge costs are smoothed by softplus with continuation and
// the single program over all T·I·J variables is solved by the augmented
// Lagrangian; on tiny instances ExactOffline (exact.go) gives the LP
// optimum for cross-validation.
type Offline struct {
	// Solver overrides the per-stage ALM options (zero = defaults).
	Solver alm.Options
	// MuSchedule overrides the smoothing continuation (nil =
	// smooth.Schedule(0.25, 1e-3, 0.1)).
	MuSchedule []float64
}

// Name identifies the algorithm in experiment output.
func (o *Offline) Name() string { return "offline-opt" }

// Solve minimizes the full-horizon smoothed P0 objective.
func (o *Offline) Solve(in *model.Instance) (model.Schedule, error) {
	mus := o.MuSchedule
	if mus == nil {
		mus = smooth.Schedule(0.25, 1e-3, 0.1)
	}
	sopts := o.Solver
	if sopts.MaxOuter == 0 {
		sopts.MaxOuter = 60
	}
	if sopts.InnerIters == 0 {
		sopts.InnerIters = 2500
	}
	if sopts.FeasTol == 0 {
		sopts.FeasTol = 1e-7
	}
	if sopts.Penalty == 0 {
		sopts.Penalty = 2
	}

	nIJ := in.I * in.J
	obj := &offlineObjective{
		in:    in,
		nIJ:   nIJ,
		init:  in.InitialAlloc(),
		coefs: make([][]float64, in.T),
		tot:   make([]float64, in.I*(in.T+1)),
	}
	for t := 0; t < in.T; t++ {
		obj.coefs[t] = in.StaticCoeff(t)
	}

	// Constraints: the per-slot rows shifted to each slot's variable block.
	base := slotConstraints(in)
	cons := make([]alm.Constraint, 0, in.T*len(base))
	for t := 0; t < in.T; t++ {
		for _, c := range base {
			idx := make([]int, len(c.Idx))
			for k, v := range c.Idx {
				idx[k] = t*nIJ + v
			}
			cons = append(cons, alm.Constraint{Idx: idx, Coeffs: c.Coeffs, RHS: c.RHS})
		}
	}

	// Warm start: every slot at the stat-opt transportation solution,
	// which is feasible and usually close in shape.
	warm := make([]float64, in.T*nIJ)
	at := &Atomistic{Kind: StatOpt}
	for t := 0; t < in.T; t++ {
		x, err := solveSlotTransport(in, at.slotCost(in, t))
		if err != nil {
			return nil, fmt.Errorf("baseline: offline warm start slot %d: %w", t, err)
		}
		copy(warm[t*nIJ:(t+1)*nIJ], x.X)
	}

	// One workspace shared across the continuation stages: each stage
	// warm-starts from the previous one's (aliased) iterate and duals.
	lower := make([]float64, in.T*nIJ)
	var ws alm.Workspace
	var res *alm.Result
	var warmDuals []float64
	for _, mu := range mus {
		obj.mu = mu
		opts := sopts
		opts.Workspace = &ws
		opts.WarmX = warm
		opts.WarmDuals = warmDuals
		var err error
		res, err = alm.Solve(&alm.Problem{
			Obj:   obj,
			N:     in.T * nIJ,
			Lower: lower,
			Cons:  cons,
		}, opts)
		if err != nil {
			return nil, fmt.Errorf("baseline: offline: %w", err)
		}
		warm = res.X
		warmDuals = res.Duals
	}

	sched := make(model.Schedule, in.T)
	for t := 0; t < in.T; t++ {
		x := model.Alloc{I: in.I, J: in.J,
			X: append([]float64(nil), res.X[t*nIJ:(t+1)*nIJ]...)}
		repairAlloc(in, x)
		sched[t] = x
	}
	return sched, nil
}

// offlineObjective is the smoothed P0 objective over the whole horizon.
// Variables are laid out slot-major: x[t*I*J + i*J + j].
type offlineObjective struct {
	in    *model.Instance
	nIJ   int
	init  model.Alloc
	coefs [][]float64
	mu    float64

	tot []float64 // scratch: (T+1)×I cloud totals, slot 0 = init
}

var _ fista.Objective = (*offlineObjective)(nil)

// Eval implements fista.Objective.
func (o *offlineObjective) Eval(x, grad []float64) float64 {
	in := o.in
	nI, nJ := in.I, in.J
	if grad != nil {
		// Cross-slot terms accumulate into grad, so it must start clean.
		for k := range grad {
			grad[k] = 0
		}
	}

	// Cloud totals for init and every slot.
	initTot := o.init.CloudTotals()
	copy(o.tot[:nI], initTot)
	for t := 0; t < in.T; t++ {
		for i := 0; i < nI; i++ {
			s := 0.0
			row := x[t*o.nIJ+i*nJ : t*o.nIJ+(i+1)*nJ]
			for _, v := range row {
				s += v
			}
			o.tot[(t+1)*nI+i] = s
		}
	}

	f := 0.0
	for t := 0; t < in.T; t++ {
		coef := o.coefs[t]
		for i := 0; i < nI; i++ {
			// Reconfiguration hinge on the cloud-total change.
			d := o.tot[(t+1)*nI+i] - o.tot[t*nI+i]
			rc := in.WRc * in.ReconfPrice[i]
			f += rc * smooth.Softplus(d, o.mu)
			rcGrad := rc * smooth.SoftplusGrad(d, o.mu)
			bOut := in.WMg * in.MigOutPrice[i]
			bIn := in.WMg * in.MigInPrice[i]
			for j := 0; j < nJ; j++ {
				k := t*o.nIJ + i*nJ + j
				v := x[k]
				f += coef[i*nJ+j] * v
				var prev float64
				if t == 0 {
					prev = o.init.At(i, j)
				} else {
					prev = x[k-o.nIJ]
				}
				dv := v - prev
				f += bOut*smooth.Softplus(-dv, o.mu) + bIn*smooth.Softplus(dv, o.mu)
				if grad != nil {
					gOut := bOut * smooth.SoftplusGrad(-dv, o.mu)
					gIn := bIn * smooth.SoftplusGrad(dv, o.mu)
					grad[k] += coef[i*nJ+j] + rcGrad + gIn - gOut
					if t > 0 {
						grad[k-o.nIJ] += gOut - gIn - rcGrad
					}
				}
			}
		}
	}
	return f
}
