package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/smooth"
)

// Offline minimizes P0 over the whole horizon with full knowledge of the
// future — the impractical baseline used to normalize every empirical
// competitive ratio (the paper's offline-opt, solved there by an LP
// solver). The hinge costs are smoothed by softplus with continuation and
// the single program over all T·I·J variables is solved by the augmented
// Lagrangian; on tiny instances ExactOffline (exact.go) gives the LP
// optimum for cross-validation.
//
// An Offline caches its constraint rows, objective buffers, and solver
// workspace per instance shape and reuses them across Solve calls —
// the receding-horizon Lookahead solves one same-shaped window per slot,
// which previously rebuilt every row slice each time. Instance-dependent
// values (right-hand sides, prices, the initial allocation) are refreshed
// on every call. An Offline must not be shared between goroutines.
type Offline struct {
	// Solver overrides the per-stage ALM options (zero = defaults).
	Solver alm.Options
	// MuSchedule overrides the smoothing continuation (nil =
	// smooth.Schedule(0.25, 1e-3, 0.1)).
	MuSchedule []float64

	states map[shapeKey]*offlineState
}

// shapeKey identifies a cached solver state by problem dimensions.
type shapeKey struct{ i, j, t int }

// offlineState is the reusable per-shape machinery of one offline solve.
type offlineState struct {
	obj     *offlineObjective
	groups  *alm.Groups
	lower   []float64
	warm    []float64
	coefBuf []float64 // backing array for obj.coefs
	ws      alm.Workspace
}

// Name identifies the algorithm in experiment output.
func (o *Offline) Name() string { return "offline-opt" }

// state returns the cached machinery for in's shape, building it on
// first use and refreshing every instance-dependent value.
func (o *Offline) state(in *model.Instance) *offlineState {
	key := shapeKey{in.I, in.J, in.T}
	st := o.states[key]
	if st == nil {
		nIJ := in.I * in.J
		st = &offlineState{
			obj: &offlineObjective{
				nIJ:   nIJ,
				coefs: make([][]float64, in.T),
				tot:   make([]float64, in.I*(in.T+1)),
			},
			groups:  slotGroups(in, in.T),
			lower:   make([]float64, in.T*nIJ),
			warm:    make([]float64, in.T*nIJ),
			coefBuf: make([]float64, in.T*nIJ),
		}
		for t := 0; t < in.T; t++ {
			st.obj.coefs[t] = st.coefBuf[t*nIJ : (t+1)*nIJ]
		}
		if o.states == nil {
			o.states = make(map[shapeKey]*offlineState)
		}
		o.states[key] = st
	}
	st.obj.in = in
	st.obj.init = in.InitialAlloc()
	for t := 0; t < in.T; t++ {
		in.StaticCoeffInto(t, st.obj.coefs[t])
	}
	refreshSlotGroupsRHS(st.groups, in)
	return st
}

// Solve minimizes the full-horizon smoothed P0 objective.
func (o *Offline) Solve(in *model.Instance) (model.Schedule, error) {
	mus := o.MuSchedule
	if mus == nil {
		mus = smooth.Schedule(0.25, 1e-3, 0.1)
	}
	sopts := o.Solver
	if sopts.MaxOuter == 0 {
		sopts.MaxOuter = 60
	}
	if sopts.InnerIters == 0 {
		sopts.InnerIters = 2500
	}
	if sopts.FeasTol == 0 {
		sopts.FeasTol = 1e-7
	}
	if sopts.Penalty == 0 {
		sopts.Penalty = 2
	}

	nIJ := in.I * in.J
	st := o.state(in)

	// Warm start: every slot at the stat-opt transportation solution,
	// which is feasible and usually close in shape.
	warm := st.warm
	at := &Atomistic{Kind: StatOpt}
	for t := 0; t < in.T; t++ {
		x, err := solveSlotTransport(in, at.slotCost(in, t))
		if err != nil {
			return nil, fmt.Errorf("baseline: offline warm start slot %d: %w", t, err)
		}
		copy(warm[t*nIJ:(t+1)*nIJ], x.X)
	}

	// One workspace shared across the continuation stages: each stage
	// warm-starts from the previous one's (aliased) iterate and duals.
	var res *alm.Result
	var warmDuals []float64
	for _, mu := range mus {
		st.obj.mu = mu
		opts := sopts
		opts.Workspace = &st.ws
		opts.WarmX = warm
		opts.WarmDuals = warmDuals
		var err error
		res, err = alm.Solve(&alm.Problem{
			Obj:    st.obj,
			N:      in.T * nIJ,
			Lower:  st.lower,
			Groups: st.groups,
		}, opts)
		if err != nil {
			return nil, fmt.Errorf("baseline: offline: %w", err)
		}
		warm = res.X
		warmDuals = res.Duals
	}

	sched := make(model.Schedule, in.T)
	for t := 0; t < in.T; t++ {
		x := model.Alloc{I: in.I, J: in.J,
			X: append([]float64(nil), res.X[t*nIJ:(t+1)*nIJ]...)}
		repairAlloc(in, x)
		sched[t] = x
	}
	return sched, nil
}

// offlineObjective is the smoothed P0 objective over the whole horizon.
// Variables are laid out slot-major: x[t*I*J + i*J + j].
type offlineObjective struct {
	in    *model.Instance
	nIJ   int
	init  model.Alloc
	coefs [][]float64
	mu    float64

	tot []float64 // scratch: (T+1)×I cloud totals, slot 0 = init
}

var _ fista.Objective = (*offlineObjective)(nil)

// Eval implements fista.Objective.
func (o *offlineObjective) Eval(x, grad []float64) float64 {
	in := o.in
	nI, nJ := in.I, in.J
	if grad != nil {
		// Cross-slot terms accumulate into grad, so it must start clean.
		for k := range grad {
			grad[k] = 0
		}
	}

	// Cloud totals for init and every slot.
	o.init.CloudTotalsInto(o.tot[:nI])
	for t := 0; t < in.T; t++ {
		for i := 0; i < nI; i++ {
			s := 0.0
			row := x[t*o.nIJ+i*nJ : t*o.nIJ+(i+1)*nJ]
			for _, v := range row {
				s += v
			}
			o.tot[(t+1)*nI+i] = s
		}
	}

	f := 0.0
	for t := 0; t < in.T; t++ {
		coef := o.coefs[t]
		for i := 0; i < nI; i++ {
			// Reconfiguration hinge on the cloud-total change.
			d := o.tot[(t+1)*nI+i] - o.tot[t*nI+i]
			rc := in.WRc * in.ReconfPrice[i]
			f += rc * smooth.Softplus(d, o.mu)
			rcGrad := rc * smooth.SoftplusGrad(d, o.mu)
			bOut := in.WMg * in.MigOutPrice[i]
			bIn := in.WMg * in.MigInPrice[i]
			for j := 0; j < nJ; j++ {
				k := t*o.nIJ + i*nJ + j
				v := x[k]
				f += coef[i*nJ+j] * v
				var prev float64
				if t == 0 {
					prev = o.init.At(i, j)
				} else {
					prev = x[k-o.nIJ]
				}
				dv := v - prev
				f += bOut*smooth.Softplus(-dv, o.mu) + bIn*smooth.Softplus(dv, o.mu)
				if grad != nil {
					gOut := bOut * smooth.SoftplusGrad(-dv, o.mu)
					gIn := bIn * smooth.SoftplusGrad(dv, o.mu)
					grad[k] += coef[i*nJ+j] + rcGrad + gIn - gOut
					if t > 0 {
						grad[k-o.nIJ] += gOut - gIn - rcGrad
					}
				}
			}
		}
	}
	return f
}
