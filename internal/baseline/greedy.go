package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/smooth"
)

// Greedy is the online one-shot optimizer of §V-B: in every slot it
// minimizes the true P0 cost of that slot — static cost plus the
// reconfiguration and bidirectional migration hinges measured against the
// previous slot's decision — with no regard for the future. The hinges
// are smoothed by softplus with continuation (internal/solver/smooth) so
// the slot problem is solvable by the first-order machinery at any scale.
type Greedy struct {
	// Solver overrides the per-stage ALM options (zero = defaults).
	Solver alm.Options
	// MuSchedule overrides the smoothing continuation schedule (nil =
	// smooth.Schedule(0.25, 1e-3, 0.1)).
	MuSchedule []float64
}

// Name identifies the algorithm in experiment output.
func (g *Greedy) Name() string { return "online-greedy" }

// Solve runs the greedy policy over the horizon.
func (g *Greedy) Solve(in *model.Instance) (model.Schedule, error) {
	mus := g.MuSchedule
	if mus == nil {
		mus = smooth.Schedule(0.25, 1e-3, 0.1)
	}
	sopts := g.Solver
	if sopts.MaxOuter == 0 {
		sopts.MaxOuter = 50
	}
	if sopts.InnerIters == 0 {
		sopts.InnerIters = 700
	}
	if sopts.FeasTol == 0 {
		sopts.FeasTol = 1e-7
	}
	if sopts.Penalty == 0 {
		sopts.Penalty = 2
	}

	// The price factors are slot-independent; build the objective once and
	// rebind per slot, sharing one solver workspace across the horizon so
	// repeated slots allocate nothing in the hot path.
	cons := slotGroups(in, 1)
	obj := &greedySlotObjective{
		nI:      in.I,
		nJ:      in.J,
		coef:    make([]float64, in.I*in.J),
		rc:      make([]float64, in.I),
		bOut:    make([]float64, in.I),
		bIn:     make([]float64, in.I),
		tot:     make([]float64, in.I),
		prevTot: make([]float64, in.I),
	}
	for i := 0; i < in.I; i++ {
		obj.rc[i] = in.WRc * in.ReconfPrice[i]
		obj.bOut[i] = in.WMg * in.MigOutPrice[i]
		obj.bIn[i] = in.WMg * in.MigInPrice[i]
	}
	lower := make([]float64, in.I*in.J)
	var ws alm.Workspace

	prev := in.InitialAlloc()
	sched := make(model.Schedule, 0, in.T)
	var warmX, warmDuals []float64
	for t := 0; t < in.T; t++ {
		in.StaticCoeffInto(t, obj.coef)
		obj.prev = prev.X
		prev.CloudTotalsInto(obj.prevTot)

		if warmX == nil {
			warmX = append([]float64(nil), prev.X...)
		}
		var res *alm.Result
		for _, mu := range mus {
			obj.mu = mu
			opts := sopts
			opts.Workspace = &ws
			opts.WarmX = warmX
			opts.WarmDuals = warmDuals
			var err error
			res, err = alm.Solve(&alm.Problem{
				Obj:    obj,
				N:      in.I * in.J,
				Lower:  lower,
				Groups: cons,
			}, opts)
			if err != nil {
				return nil, fmt.Errorf("baseline: greedy slot %d: %w", t, err)
			}
			warmX = res.X
			warmDuals = res.Duals
		}
		x := model.Alloc{I: in.I, J: in.J, X: append([]float64(nil), res.X...)}
		repairAlloc(in, x)
		sched = append(sched, x)
		prev = x
		warmX = append(warmX[:0], x.X...)
	}
	return sched, nil
}

// slotGroups builds the structured per-slot rows shared by greedy, the
// proximal ablation, and the offline program — demand Σ_i x_ij ≥ λ_j and
// capacity Σ_j x_ij ≤ C_i (as −Σ_j x_ij ≥ −C_i for the GE-only ALM
// interface) — repeated over `blocks` consecutive slot blocks. Row order
// within a block is demand then capacity, matching slotConstraints.
func slotGroups(in *model.Instance, blocks int) *alm.Groups {
	rows := make([]alm.GroupRow, 0, blocks*(in.J+in.I))
	for b := 0; b < blocks; b++ {
		for j := 0; j < in.J; j++ {
			rows = append(rows, alm.GroupRow{
				Block: b, Kind: alm.GroupUserSum, Index: j, RHS: in.Workload[j]})
		}
		for i := 0; i < in.I; i++ {
			rows = append(rows, alm.GroupRow{
				Block: b, Kind: alm.GroupCloudSumNeg, Index: i, RHS: -in.Capacity[i]})
		}
	}
	return &alm.Groups{I: in.I, J: in.J, Blocks: blocks, Rows: rows}
}

// refreshSlotGroupsRHS rewrites the right-hand sides of rows built by
// slotGroups for the given instance (same shape assumed).
func refreshSlotGroupsRHS(g *alm.Groups, in *model.Instance) {
	per := in.J + in.I
	for b := 0; b < g.Blocks; b++ {
		base := b * per
		for j := 0; j < in.J; j++ {
			g.Rows[base+j].RHS = in.Workload[j]
		}
		for i := 0; i < in.I; i++ {
			g.Rows[base+in.J+i].RHS = -in.Capacity[i]
		}
	}
}

// slotConstraints is the generic sparse-row reference form of one slot
// block of slotGroups, kept for the structured-vs-dense comparisons.
func slotConstraints(in *model.Instance) []alm.Constraint {
	cons := make([]alm.Constraint, 0, in.J+in.I)
	for j := 0; j < in.J; j++ {
		idx := make([]int, in.I)
		coef := make([]float64, in.I)
		for i := 0; i < in.I; i++ {
			idx[i] = i*in.J + j
			coef[i] = 1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: in.Workload[j]})
	}
	for i := 0; i < in.I; i++ {
		idx := make([]int, in.J)
		coef := make([]float64, in.J)
		for j := 0; j < in.J; j++ {
			idx[j] = i*in.J + j
			coef[j] = -1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: -in.Capacity[i]})
	}
	return cons
}

// greedySlotObjective is the smoothed P0 slot cost
//
//	coef·x + Σ_i w_rc·c_i·sp_μ(X_i − X'_i)
//	       + Σ_ij (w_mg·b_i^out·sp_μ(x'_ij − x_ij) + w_mg·b_i^in·sp_μ(x_ij − x'_ij)).
type greedySlotObjective struct {
	nI, nJ  int
	coef    []float64
	prev    []float64
	prevTot []float64
	rc      []float64
	bOut    []float64
	bIn     []float64
	mu      float64

	tot []float64 // scratch
}

var _ fista.Objective = (*greedySlotObjective)(nil)

// Eval implements fista.Objective.
func (o *greedySlotObjective) Eval(x, grad []float64) float64 {
	f := 0.0
	for i := 0; i < o.nI; i++ {
		s := 0.0
		row := x[i*o.nJ : (i+1)*o.nJ]
		for _, v := range row {
			s += v
		}
		o.tot[i] = s
	}
	for i := 0; i < o.nI; i++ {
		d := o.tot[i] - o.prevTot[i]
		f += o.rc[i] * smooth.Softplus(d, o.mu)
		rcGrad := o.rc[i] * smooth.SoftplusGrad(d, o.mu)
		base := i * o.nJ
		for j := 0; j < o.nJ; j++ {
			k := base + j
			v := x[k]
			f += o.coef[k] * v
			dv := v - o.prev[k]
			f += o.bOut[i]*smooth.Softplus(-dv, o.mu) + o.bIn[i]*smooth.Softplus(dv, o.mu)
			if grad != nil {
				grad[k] = o.coef[k] + rcGrad +
					o.bIn[i]*smooth.SoftplusGrad(dv, o.mu) -
					o.bOut[i]*smooth.SoftplusGrad(-dv, o.mu)
			}
		}
	}
	return f
}

// repairAlloc clips round-off negatives and tops up marginally
// under-served users, mirroring the repair in the core package.
func repairAlloc(in *model.Instance, x model.Alloc) {
	for k, v := range x.X {
		if v < 0 {
			x.X[k] = 0
		}
	}
	served := x.UserTotals()
	for j := 0; j < in.J; j++ {
		if deficit := in.Workload[j] - served[j]; deficit > 0 {
			if served[j] > 0 {
				f := in.Workload[j] / served[j]
				for i := 0; i < in.I; i++ {
					x.Set(i, j, x.At(i, j)*f)
				}
			} else {
				x.Set(0, j, in.Workload[j])
			}
		}
	}
}
