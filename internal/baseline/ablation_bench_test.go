package baseline

// Ablation benchmarks for the baseline machinery: the smoothing
// continuation schedule of the offline program (accuracy vs effort) and
// the specialized transportation solver against the general first-order
// path on the same atomistic slot.

import (
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/smooth"
)

func benchInstance(b *testing.B) *model.Instance {
	b.Helper()
	in, _, err := scenario.Rome(scenario.Config{Users: 12, Horizon: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkOfflineMuSchedule compares continuation schedules: each run
// reports the achieved true-P0 objective so accuracy loss is visible next
// to the time saved.
func BenchmarkOfflineMuSchedule(b *testing.B) {
	in := benchInstance(b)
	for _, tc := range []struct {
		name string
		mus  []float64
	}{
		{"one-stage", []float64{2e-3}},
		{"two-stage", []float64{0.05, 2e-3}},
		{"three-stage", smooth.Schedule(0.25, 1e-3, 0.1)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				off := &Offline{MuSchedule: tc.mus, Solver: alm.Options{
					MaxOuter: 25, InnerIters: 800, FeasTol: 1e-6,
					DualTol: 1e-3, ObjTol: 1e-7, Penalty: 4,
				}}
				s, err := off.Solve(in)
				if err != nil {
					b.Fatal(err)
				}
				bd, err := in.Evaluate(s)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(in.Total(bd), "true-objective")
			}
		})
	}
}

// BenchmarkAtomisticTransportVsALM pits the exact transportation solver
// against the generic smoothed first-order path on one stat-opt slot —
// the justification for building the specialized solver at all.
func BenchmarkAtomisticTransportVsALM(b *testing.B) {
	in := benchInstance(b)
	at := &Atomistic{Kind: StatOpt}
	b.Run("transport", func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			if _, err := solveSlotTransport(in, at.slotCost(in, 0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("alm", func(b *testing.B) {
		coef := in.StaticCoeff(0)
		obj := fista.Func(func(x, grad []float64) float64 {
			f := 0.0
			for k, v := range x {
				f += coef[k] * v
				if grad != nil {
					grad[k] = coef[k]
				}
			}
			return f
		})
		cons := slotConstraints(in)
		for n := 0; n < b.N; n++ {
			_, err := alm.Solve(&alm.Problem{
				Obj: obj, N: in.I * in.J,
				Lower: make([]float64, in.I*in.J),
				Cons:  cons,
			}, alm.Options{MaxOuter: 60, InnerIters: 600, FeasTol: 1e-6, Penalty: 2})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGreedySlot measures one production greedy decision.
func BenchmarkGreedySlot(b *testing.B) {
	in := benchInstance(b)
	single := *in
	single.T = 1
	single.OpPrice = in.OpPrice[:1]
	single.Attach = in.Attach[:1]
	single.AccessDelay = in.AccessDelay[:1]
	g := &Greedy{}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := g.Solve(&single); err != nil {
			b.Fatal(err)
		}
	}
}
