package baseline

import (
	"math"
	"testing"

	"edgealloc/internal/model"
)

func TestLookaheadName(t *testing.T) {
	if got := (&Lookahead{}).Name(); got != "lookahead-3" {
		t.Errorf("Name() = %q, want lookahead-3", got)
	}
	if got := (&Lookahead{Window: 7}).Name(); got != "lookahead-7" {
		t.Errorf("Name() = %q, want lookahead-7", got)
	}
}

func TestLookaheadFullWindowMatchesOffline(t *testing.T) {
	// With the window covering the whole horizon, the first solve IS the
	// offline plan... but re-solved per slot; totals must land within the
	// smoothing tolerance of the exact optimum.
	in := model.ToyExampleA()
	la := &Lookahead{Window: in.T}
	s, err := la.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, 1e-5); err != nil {
		t.Fatal(err)
	}
	_, opt, err := ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	got := totalOf(t, in, s)
	if got > opt*1.03 || got < opt-1e-6 {
		t.Errorf("full-window lookahead %g, exact offline %g", got, opt)
	}
}

func TestLookaheadEscapesFig1bTrap(t *testing.T) {
	// Example (b) traps greedy at 11.3 because one slot's saving doesn't
	// cover the migration. A 2-slot window sees the saving repeat and
	// migrates, recovering the optimum 9.5.
	in := model.ToyExampleB()
	la := &Lookahead{Window: 2}
	s, err := la.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	got := totalOf(t, in, s)
	if math.Abs(got-9.5) > 0.1 {
		t.Errorf("lookahead-2 on (b) = %g, want ≈9.5 (escaping the 11.3 trap)", got)
	}
}

func TestLookaheadWindowOrdering(t *testing.T) {
	// Longer windows can only help (up to solver noise) on the toys.
	in := model.ToyExampleA()
	prev := math.Inf(1)
	for _, w := range []int{1, 2, 3} {
		s, err := (&Lookahead{Window: w}).Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		got := totalOf(t, in, s)
		if got > prev*1.02 {
			t.Errorf("window %d total %g worse than shorter window %g", w, got, prev)
		}
		prev = got
	}
}

func TestWindowSubInstance(t *testing.T) {
	in := model.ToyExampleA()
	init := model.NewAlloc(in.I, in.J)
	init.Set(1, 0, 1)
	w, err := in.Window(1, 2, init)
	if err != nil {
		t.Fatal(err)
	}
	if w.T != 2 {
		t.Fatalf("window T = %d, want 2", w.T)
	}
	if w.OpPrice[0][0] != in.OpPrice[1][0] {
		t.Error("window did not slice OpPrice at the offset")
	}
	if w.InitialAlloc().At(1, 0) != 1 {
		t.Error("window lost its init allocation")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][2]int{{-1, 2}, {0, 0}, {2, 2}} {
		if _, err := in.Window(bad[0], bad[1], init); err == nil {
			t.Errorf("Window(%d,%d) accepted out-of-range", bad[0], bad[1])
		}
	}
}
