package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/simplex"
)

// ExactOffline solves the full-horizon problem P0 exactly as a linear
// program with the dense simplex solver. The LP linearizes the hinges with
// auxiliary variables:
//
//	u_{i,t}     ≥ Σ_j x_{i,j,t} − Σ_j x_{i,j,t-1}   (reconfiguration)
//	vout_{ijt}  ≥ x_{i,j,t-1} − x_{i,j,t}           (outgoing migration)
//	vin_{ijt}   ≥ x_{i,j,t} − x_{i,j,t-1}           (incoming migration)
//
// all nonnegative and priced in the objective, so each sits exactly at its
// hinge value at the optimum. The tableau is dense: use this only on
// small instances (T·I·J up to a few hundred); it exists to pin the
// large-scale smoothed Offline solver and the toy examples to ground
// truth.
func ExactOffline(in *model.Instance) (model.Schedule, float64, error) {
	nIJ := in.I * in.J
	nX := in.T * nIJ
	nU := in.T * in.I
	// Layout: [x (T·I·J) | u (T·I) | vout (T·I·J) | vin (T·I·J)].
	offU := nX
	offOut := nX + nU
	offIn := offOut + nX
	nVar := offIn + nX

	xIdx := func(t, i, j int) int { return t*nIJ + i*in.J + j }
	uIdx := func(t, i int) int { return offU + t*in.I + i }
	outIdx := func(t, i, j int) int { return offOut + xIdx(t, i, j) }
	inIdx := func(t, i, j int) int { return offIn + xIdx(t, i, j) }

	p := &simplex.Problem{C: make([]float64, nVar)}
	for t := 0; t < in.T; t++ {
		coef := in.StaticCoeff(t)
		for i := 0; i < in.I; i++ {
			p.C[uIdx(t, i)] = in.WRc * in.ReconfPrice[i]
			for j := 0; j < in.J; j++ {
				p.C[xIdx(t, i, j)] = coef[i*in.J+j]
				p.C[outIdx(t, i, j)] = in.WMg * in.MigOutPrice[i]
				p.C[inIdx(t, i, j)] = in.WMg * in.MigInPrice[i]
			}
		}
	}

	init := in.InitialAlloc()
	row := func() []float64 { return make([]float64, nVar) }
	for t := 0; t < in.T; t++ {
		// Demand.
		for j := 0; j < in.J; j++ {
			r := row()
			for i := 0; i < in.I; i++ {
				r[xIdx(t, i, j)] = 1
			}
			p.Cons = append(p.Cons, simplex.Constraint{Coeffs: r, Sense: simplex.GE, RHS: in.Workload[j]})
		}
		// Capacity.
		for i := 0; i < in.I; i++ {
			r := row()
			for j := 0; j < in.J; j++ {
				r[xIdx(t, i, j)] = 1
			}
			p.Cons = append(p.Cons, simplex.Constraint{Coeffs: r, Sense: simplex.LE, RHS: in.Capacity[i]})
		}
		// Hinge linearizations.
		for i := 0; i < in.I; i++ {
			r := row()
			r[uIdx(t, i)] = 1
			rhs := 0.0
			for j := 0; j < in.J; j++ {
				r[xIdx(t, i, j)] = -1
				if t == 0 {
					rhs -= init.At(i, j)
				} else {
					r[xIdx(t-1, i, j)] = 1
				}
			}
			p.Cons = append(p.Cons, simplex.Constraint{Coeffs: r, Sense: simplex.GE, RHS: rhs})
			for j := 0; j < in.J; j++ {
				rOut := row()
				rOut[outIdx(t, i, j)] = 1
				rOut[xIdx(t, i, j)] = 1
				rhsOut := 0.0
				rIn := row()
				rIn[inIdx(t, i, j)] = 1
				rIn[xIdx(t, i, j)] = -1
				rhsIn := 0.0
				if t == 0 {
					rhsOut = init.At(i, j)
					rhsIn = -init.At(i, j)
				} else {
					rOut[xIdx(t-1, i, j)] = -1
					rIn[xIdx(t-1, i, j)] = 1
				}
				p.Cons = append(p.Cons,
					simplex.Constraint{Coeffs: rOut, Sense: simplex.GE, RHS: rhsOut},
					simplex.Constraint{Coeffs: rIn, Sense: simplex.GE, RHS: rhsIn})
			}
		}
	}

	sol, err := simplex.Solve(p)
	if err != nil {
		return nil, 0, fmt.Errorf("baseline: exact offline: %w", err)
	}
	if sol.Status != simplex.Optimal {
		return nil, 0, fmt.Errorf("baseline: exact offline: LP %v", sol.Status)
	}
	sched := make(model.Schedule, in.T)
	for t := 0; t < in.T; t++ {
		x := model.NewAlloc(in.I, in.J)
		copy(x.X, sol.X[t*nIJ:(t+1)*nIJ])
		sched[t] = x
	}
	// The LP objective omits the access-delay constant; add it so the
	// returned value matches in.Total(in.Evaluate(sched)).
	objective := sol.Objective
	for t := 0; t < in.T; t++ {
		for j := 0; j < in.J; j++ {
			objective += in.WSq * in.AccessDelay[t][j]
		}
	}
	return sched, objective, nil
}
