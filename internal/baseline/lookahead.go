package baseline

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
)

// Lookahead is a model-predictive baseline bridging online-greedy and
// offline-opt: at every slot it assumes the next Window slots of prices
// and locations are known (the "predicted future costs" setting of the
// related work the paper contrasts itself with, e.g. Wang et al. [15]),
// solves the windowed problem exactly like the offline program, commits
// only the first slot's allocation, and rolls forward.
//
// Window = 1 coincides with online-greedy; Window = T is offline-opt.
// Intermediate values quantify how much of the paper's gap between the
// two a perfect k-step oracle closes — context for how strong the
// regularization algorithm is *without* any prediction at all.
type Lookahead struct {
	// Window is the number of future slots assumed known (default 3).
	Window int
	// Solver overrides the per-window ALM options (zero = defaults).
	Solver alm.Options
	// MuSchedule overrides the smoothing continuation (nil = default).
	MuSchedule []float64
}

// Name identifies the algorithm in experiment output.
func (l *Lookahead) Name() string {
	w := l.Window
	if w <= 0 {
		w = 3
	}
	return fmt.Sprintf("lookahead-%d", w)
}

// Solve runs the receding-horizon policy over the instance.
func (l *Lookahead) Solve(in *model.Instance) (model.Schedule, error) {
	window := l.Window
	if window <= 0 {
		window = 3
	}
	// One Offline across all slots: its per-shape cache means the
	// windowed program's constraint rows, objective buffers, and solver
	// workspace are built once per distinct window length (the full
	// window plus the shrinking tails at the end of the horizon) instead
	// of once per slot.
	off := &Offline{Solver: l.Solver, MuSchedule: l.MuSchedule}
	prev := in.InitialAlloc()
	sched := make(model.Schedule, 0, in.T)
	for t := 0; t < in.T; t++ {
		n := window
		if t+n > in.T {
			n = in.T - t
		}
		sub, err := in.Window(t, n, prev)
		if err != nil {
			return nil, fmt.Errorf("baseline: lookahead slot %d: %w", t, err)
		}
		plan, err := off.Solve(sub)
		if err != nil {
			return nil, fmt.Errorf("baseline: lookahead slot %d: %w", t, err)
		}
		x := plan[0].Clone()
		repairAlloc(in, x)
		sched = append(sched, x)
		prev = x
	}
	return sched, nil
}
