package baseline

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

// fdCheck compares an analytic gradient with central finite differences
// at a random interior point.
func fdCheck(t *testing.T, eval func(x, grad []float64) float64, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for k := range x {
		x[k] = 0.05 + rng.Float64()
	}
	grad := make([]float64, n)
	eval(x, grad)
	const h = 1e-6
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(n)
		orig := x[k]
		x[k] = orig + h
		fp := eval(x, nil)
		x[k] = orig - h
		fm := eval(x, nil)
		x[k] = orig
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-grad[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("grad[%d] = %g, finite difference %g", k, grad[k], fd)
		}
	}
}

func TestGreedySlotObjectiveGradient(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	prev := model.NewAlloc(in.I, in.J)
	rng := rand.New(rand.NewSource(32))
	for k := range prev.X {
		prev.X[k] = rng.Float64()
	}
	obj := &greedySlotObjective{
		nI:      in.I,
		nJ:      in.J,
		coef:    in.StaticCoeff(1),
		prev:    prev.X,
		prevTot: prev.CloudTotals(),
		rc:      in.ReconfPrice,
		bOut:    in.MigOutPrice,
		bIn:     in.MigInPrice,
		tot:     make([]float64, in.I),
		mu:      0.05,
	}
	fdCheck(t, obj.Eval, in.I*in.J, 33)
}

// TestOfflineObjectiveGradient covers the cross-slot coupling terms: each
// transition's hinge contributes to the gradients of two adjacent slots.
func TestOfflineObjectiveGradient(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 4, Seed: 34})
	if err != nil {
		t.Fatal(err)
	}
	nIJ := in.I * in.J
	obj := &offlineObjective{
		in:    in,
		nIJ:   nIJ,
		init:  in.InitialAlloc(),
		coefs: make([][]float64, in.T),
		tot:   make([]float64, in.I*(in.T+1)),
		mu:    0.07,
	}
	for t2 := 0; t2 < in.T; t2++ {
		obj.coefs[t2] = in.StaticCoeff(t2)
	}
	fdCheck(t, obj.Eval, in.T*nIJ, 35)
}

// TestOfflineObjectiveGradientWithWarmInit repeats the check with a
// nonzero pre-horizon allocation, covering the t == 0 branches.
func TestOfflineObjectiveGradientWithWarmInit(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 3, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(37))
	init := model.NewAlloc(in.I, in.J)
	for k := range init.X {
		init.X[k] = rng.Float64()
	}
	in.Init = &init
	nIJ := in.I * in.J
	obj := &offlineObjective{
		in:    in,
		nIJ:   nIJ,
		init:  in.InitialAlloc(),
		coefs: make([][]float64, in.T),
		tot:   make([]float64, in.I*(in.T+1)),
		mu:    0.04,
	}
	for t2 := 0; t2 < in.T; t2++ {
		obj.coefs[t2] = in.StaticCoeff(t2)
	}
	fdCheck(t, obj.Eval, in.T*nIJ, 38)
}

// TestOfflineSmoothedObjectiveUpperBoundsTrue verifies the softplus
// construction: the smoothed objective evaluated at any point dominates
// the true P0 objective (minus the constant access term).
func TestOfflineSmoothedObjectiveUpperBoundsTrue(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	nIJ := in.I * in.J
	obj := &offlineObjective{
		in:    in,
		nIJ:   nIJ,
		init:  in.InitialAlloc(),
		coefs: make([][]float64, in.T),
		tot:   make([]float64, in.I*(in.T+1)),
		mu:    0.1,
	}
	for t2 := 0; t2 < in.T; t2++ {
		obj.coefs[t2] = in.StaticCoeff(t2)
	}
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, in.T*nIJ)
		sched := make(model.Schedule, in.T)
		for t2 := 0; t2 < in.T; t2++ {
			a := model.NewAlloc(in.I, in.J)
			for k := range a.X {
				a.X[k] = rng.Float64()
				x[t2*nIJ+k] = a.X[k]
			}
			sched[t2] = a
		}
		b, err := in.Evaluate(sched)
		if err != nil {
			t.Fatal(err)
		}
		access := 0.0
		for t2 := 0; t2 < in.T; t2++ {
			for j := 0; j < in.J; j++ {
				access += in.WSq * in.AccessDelay[t2][j]
			}
		}
		trueObj := in.Total(b) - access
		if sm := obj.Eval(x, nil); sm < trueObj-1e-9 {
			t.Fatalf("smoothed %g below true %g — softplus is an upper bound", sm, trueObj)
		}
	}
}
