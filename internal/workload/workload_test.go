package workload

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestAllGeneratorsProducePositiveIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gens := []Generator{
		Power{Xm: 1, Alpha: 1.5},
		Power{}, // defaults kick in
		Uniform{Lo: 1, Hi: 8},
		Uniform{}, // degenerate bounds clamp to 1
		Normal{Mean: 4, Std: 1.5},
		Normal{}, // defaults kick in
	}
	for _, g := range gens {
		for n := 0; n < 2000; n++ {
			v := g.Sample(rng)
			if v < 1 {
				t.Fatalf("%s produced %g < 1", g.Name(), v)
			}
			if v != math.Trunc(v) {
				t.Fatalf("%s produced non-integer %g", g.Name(), v)
			}
		}
	}
}

func TestPowerIsSkewed(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vals := Sample(Power{Xm: 1, Alpha: 1.2}, 4000, rng)
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	p99 := vals[len(vals)*99/100]
	// A power law has a much heavier tail than its median.
	if p99 < 5*median {
		t.Errorf("p99 %g not much larger than median %g — not heavy-tailed", p99, median)
	}
	if max := vals[len(vals)-1]; max > 50 {
		t.Errorf("cap violated: %g > default cap 50", max)
	}
}

func TestUniformRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	seen := map[float64]bool{}
	for n := 0; n < 5000; n++ {
		v := Uniform{Lo: 2, Hi: 5}.Sample(rng)
		if v < 2 || v > 5 {
			t.Fatalf("out of range: %g", v)
		}
		seen[v] = true
	}
	if len(seen) != 4 {
		t.Errorf("saw %d distinct values, want 4", len(seen))
	}
}

func TestNormalCentersOnMean(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vals := Sample(Normal{Mean: 10, Std: 2}, 8000, rng)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if mean := sum / float64(len(vals)); math.Abs(mean-10) > 0.2 {
		t.Errorf("sample mean %g, want ≈10", mean)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"power", "uniform", "normal"} {
		g, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if g.Name() != name {
			t.Errorf("Name() = %q, want %q", g.Name(), name)
		}
	}
	if _, err := ByName("zipfian"); err == nil {
		t.Error("ByName accepted unknown distribution")
	}
}

func TestSampleDeterministicWithSeed(t *testing.T) {
	a := Sample(Power{Xm: 1, Alpha: 1.5}, 50, rand.New(rand.NewSource(7)))
	b := Sample(Power{Xm: 1, Alpha: 1.5}, 50, rand.New(rand.NewSource(7)))
	for k := range a {
		if a[k] != b[k] {
			t.Fatal("same seed produced different samples")
		}
	}
}
