// Package workload generates user workloads λ_j under the three
// distributions of the paper's evaluation (§V-A): power-law (the highly
// skewed case motivated by online social networks), uniform, and normal.
// All generators produce positive integer workloads, matching the paper's
// assumption λ_j ∈ ℤ⁺ (used by Lemma 6).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// Generator draws one workload value. Implementations must return values
// ≥ 1.
type Generator interface {
	// Sample draws a workload using the supplied source.
	Sample(rng *rand.Rand) float64
	// Name identifies the distribution in experiment output.
	Name() string
}

// Power is a Pareto (power-law) workload: λ = ⌈Xm · U^(-1/Alpha)⌉ capped
// at Cap to keep single users from dwarfing the system.
type Power struct {
	// Xm is the scale (minimum) parameter; values below 1 are treated as 1.
	Xm float64
	// Alpha is the tail exponent; the paper's "highly skewed" regime
	// corresponds to small Alpha (default 1.5).
	Alpha float64
	// Cap truncates the tail (default 50·Xm).
	Cap float64
}

// Name implements Generator.
func (p Power) Name() string { return "power" }

// Sample implements Generator.
func (p Power) Sample(rng *rand.Rand) float64 {
	xm := math.Max(p.Xm, 1)
	alpha := p.Alpha
	if alpha <= 0 {
		alpha = 1.5
	}
	cp := p.Cap
	if cp <= 0 {
		cp = 50 * xm
	}
	u := rng.Float64()
	if u < 1e-12 {
		u = 1e-12
	}
	v := math.Ceil(xm * math.Pow(u, -1/alpha))
	return math.Min(v, math.Max(cp, 1))
}

// Uniform draws integer workloads uniformly from [Lo, Hi].
type Uniform struct {
	Lo, Hi int
}

// Name implements Generator.
func (u Uniform) Name() string { return "uniform" }

// Sample implements Generator.
func (u Uniform) Sample(rng *rand.Rand) float64 {
	lo, hi := u.Lo, u.Hi
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	return float64(lo + rng.Intn(hi-lo+1))
}

// Normal draws workloads from a rounded Gaussian truncated below at 1.
type Normal struct {
	Mean, Std float64
}

// Name implements Generator.
func (n Normal) Name() string { return "normal" }

// Sample implements Generator.
func (n Normal) Sample(rng *rand.Rand) float64 {
	mean := n.Mean
	if mean <= 0 {
		mean = 4
	}
	std := n.Std
	if std <= 0 {
		std = mean / 3
	}
	v := math.Round(mean + std*rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	return v
}

// ByName returns the generator for one of the paper's three distribution
// names ("power", "uniform", "normal") with the defaults used throughout
// the experiments.
func ByName(name string) (Generator, error) {
	switch name {
	case "power":
		return Power{Xm: 1, Alpha: 1.5}, nil
	case "uniform":
		return Uniform{Lo: 1, Hi: 8}, nil
	case "normal":
		return Normal{Mean: 4, Std: 1.5}, nil
	default:
		return nil, fmt.Errorf("workload: unknown distribution %q", name)
	}
}

// Sample draws J workloads from gen.
func Sample(gen Generator, j int, rng *rand.Rand) []float64 {
	out := make([]float64, j)
	for k := range out {
		out[k] = gen.Sample(rng)
	}
	return out
}
