package sim

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"edgealloc/internal/conform"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
)

// fixedAlg returns a canned schedule (or error) for testing the harness.
type fixedAlg struct {
	name  string
	sched model.Schedule
	err   error
}

func (f *fixedAlg) Name() string { return f.name }

func (f *fixedAlg) Solve(*model.Instance) (model.Schedule, error) {
	return f.sched, f.err
}

var _ Algorithm = (*fixedAlg)(nil)

func feasibleSchedule(in *model.Instance) model.Schedule {
	s := make(model.Schedule, in.T)
	for t := range s {
		x := model.NewAlloc(in.I, in.J)
		x.Set(0, 0, 1)
		s[t] = x
	}
	return s
}

func TestExecuteHappyPath(t *testing.T) {
	in := model.ToyExampleA()
	run, err := Execute(in, &fixedAlg{name: "canned", sched: feasibleSchedule(in)})
	if err != nil {
		t.Fatal(err)
	}
	if run.Algorithm != "canned" {
		t.Errorf("Algorithm = %q", run.Algorithm)
	}
	if run.Total <= 0 {
		t.Errorf("Total = %g", run.Total)
	}
	want, err := in.Evaluate(run.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Total(want); math.Abs(got-run.Total) > 1e-12 {
		t.Errorf("Total %g != evaluated %g", run.Total, got)
	}
}

func TestExecutePropagatesAlgorithmError(t *testing.T) {
	in := model.ToyExampleA()
	sentinel := errors.New("boom")
	_, err := Execute(in, &fixedAlg{name: "failing", err: sentinel})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "failing") {
		t.Errorf("error %q does not name the algorithm", err)
	}
}

func TestExecuteRejectsInfeasibleSchedule(t *testing.T) {
	in := model.ToyExampleA()
	// Under-serve the single user.
	bad := make(model.Schedule, in.T)
	for t2 := range bad {
		bad[t2] = model.NewAlloc(in.I, in.J)
	}
	_, err := Execute(in, &fixedAlg{name: "cheater", sched: bad})
	if err == nil {
		t.Fatal("Execute accepted an infeasible schedule")
	}
	if !errors.Is(err, conform.ErrNonConformant) {
		t.Fatalf("error %v does not wrap conform.ErrNonConformant", err)
	}
	// The error must name the algorithm and the violated guarantee.
	for _, want := range []string{"cheater", string(conform.KindDemand)} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// TestExecuteSkipConformance pins the escape hatch: with SkipConformance
// the cheap legacy feasibility check still rejects the schedule, but the
// structured conformance report is absent from passing runs.
func TestExecuteSkipConformance(t *testing.T) {
	in := model.ToyExampleA()
	bad := make(model.Schedule, in.T)
	for t2 := range bad {
		bad[t2] = model.NewAlloc(in.I, in.J)
	}
	opts := Options{SkipConformance: true}
	if _, err := ExecuteOpts(in, &fixedAlg{name: "cheater", sched: bad}, opts); err == nil {
		t.Fatal("ExecuteOpts(SkipConformance) accepted an infeasible schedule")
	}
	run, err := ExecuteOpts(in, &fixedAlg{name: "ok", sched: feasibleSchedule(in)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if run.Conformance != nil {
		t.Error("SkipConformance run still carries a conformance report")
	}
}

// TestExecuteAttachesConformanceReport: the default path keeps the clean
// report on the Run so experiment code can inspect breakdowns.
func TestExecuteAttachesConformanceReport(t *testing.T) {
	in := model.ToyExampleA()
	run, err := Execute(in, &fixedAlg{name: "ok", sched: feasibleSchedule(in)})
	if err != nil {
		t.Fatal(err)
	}
	if run.Conformance == nil || !run.Conformance.OK() {
		t.Fatalf("Conformance = %+v, want clean report", run.Conformance)
	}
	if got := in.Total(run.Conformance.BreakdownP0); math.Abs(got-run.Total) > 1e-12 {
		t.Errorf("report P0 total %g != run total %g", got, run.Total)
	}
}

// lyingAlg returns a feasible schedule but certifies an impossible lower
// bound, so only the certificate cross-check can catch it.
type lyingAlg struct {
	fixedAlg
	cert core.Certificate
}

func (l *lyingAlg) Certificate() (*core.Certificate, error) {
	return &l.cert, nil
}

func TestExecuteRejectsLyingCertificate(t *testing.T) {
	in := model.ToyExampleA()
	sched := feasibleSchedule(in)
	b, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	alg := &lyingAlg{
		fixedAlg: fixedAlg{name: "liar", sched: sched},
		cert: core.Certificate{
			// Claims OPT(P1) is 10x the achieved cost; SigmaWeighted is kept
			// honest so the violation is isolated to weak duality.
			D:             10 * in.Total(b),
			SigmaWeighted: in.WMg * in.Sigma(),
		},
	}
	_, err = Execute(in, alg)
	if err == nil {
		t.Fatal("Execute accepted a certificate whose bound exceeds the cost")
	}
	if !strings.Contains(err.Error(), string(conform.KindLowerBound)) {
		t.Errorf("error %q does not mention the lower-bound violation", err)
	}
}

func TestExecuteRejectsWrongLengthSchedule(t *testing.T) {
	in := model.ToyExampleA()
	short := feasibleSchedule(in)[:1]
	if _, err := Execute(in, &fixedAlg{name: "short", sched: short}); err == nil {
		t.Fatal("Execute accepted a short schedule")
	}
}

// sleepAlg pauses in Solve before returning a canned schedule, so the
// solve phase has a known minimum duration.
type sleepAlg struct {
	d     time.Duration
	sched model.Schedule
}

func (s *sleepAlg) Name() string { return "sleeper" }

func (s *sleepAlg) Solve(*model.Instance) (model.Schedule, error) {
	time.Sleep(s.d)
	return s.sched, nil
}

// TestElapsedMeasuresSolveOnly pins down the timing contract: Elapsed
// covers exactly the algorithm's Solve call, and the harness's
// feasibility verification plus cost evaluation land in EvalElapsed —
// not in Elapsed — so per-algorithm timings stay meaningful when many
// runs execute concurrently.
func TestElapsedMeasuresSolveOnly(t *testing.T) {
	in := model.ToyExampleA()
	const pause = 20 * time.Millisecond
	run, err := Execute(in, &sleepAlg{d: pause, sched: feasibleSchedule(in)})
	if err != nil {
		t.Fatal(err)
	}
	if run.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0", run.Elapsed)
	}
	if run.Elapsed < pause {
		t.Errorf("Elapsed = %v, want ≥ the %v spent in Solve", run.Elapsed, pause)
	}
	// The toy evaluation takes microseconds; if Solve's pause leaked into
	// the evaluation timer the two phases were not measured disjointly.
	if run.EvalElapsed >= pause {
		t.Errorf("EvalElapsed = %v absorbed the Solve pause %v — phases not disjoint",
			run.EvalElapsed, pause)
	}
	if run.EvalElapsed < 0 {
		t.Errorf("EvalElapsed = %v, want ≥ 0", run.EvalElapsed)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("stats = %+v", s)
	}
	// Sample std of {1,2,3,4} is sqrt(5/3).
	if want := math.Sqrt(5.0 / 3.0); math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", s.Std, want)
	}
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 || z.Std != 0 {
		t.Errorf("empty stats = %+v, want zero value", z)
	}
	one := Summarize([]float64{7})
	if one.Mean != 7 || one.Std != 0 || one.Min != 7 || one.Max != 7 {
		t.Errorf("single stats = %+v", one)
	}
}
