// Package sim is the discrete-time simulation harness: it runs an
// allocation algorithm over an instance, evaluates the resulting schedule
// under the true objective P0, verifies feasibility, and aggregates
// statistics across repetitions — the role played by the authors' Python
// simulator in §V.
package sim

import (
	"fmt"
	"math"
	"time"

	"edgealloc/internal/model"
)

// Algorithm is any allocation policy: given a validated instance it
// produces one allocation per slot. Online algorithms must only use
// information revealed up to each slot; that discipline is enforced by
// their own constructions (see internal/core and internal/baseline), not
// by the harness.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Solve produces a full schedule for the instance.
	Solve(in *model.Instance) (model.Schedule, error)
}

// Run is the outcome of one algorithm execution on one instance.
type Run struct {
	Algorithm string
	Schedule  model.Schedule
	Breakdown model.Breakdown
	// Total is the weighted P0 objective of the schedule.
	Total float64
	// Elapsed is the wall-clock time of the algorithm's Solve call alone.
	// Feasibility verification and cost evaluation are excluded (they are
	// harness overhead, tracked by EvalElapsed), so per-algorithm timings
	// stay meaningful when many runs execute concurrently.
	Elapsed time.Duration
	// EvalElapsed is the time the harness spent verifying feasibility and
	// evaluating the schedule's true cost after Solve returned.
	EvalElapsed time.Duration
}

// feasTol is the feasibility tolerance applied to every produced
// schedule; the first-order solvers meet it with two orders of margin.
const feasTol = 1e-4

// Execute runs the algorithm, checks feasibility of its schedule, and
// evaluates the true weighted cost.
func Execute(in *model.Instance, alg Algorithm) (*Run, error) {
	start := time.Now()
	sched, err := alg.Solve(in)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", alg.Name(), err)
	}
	// Elapsed covers Solve only; verification and evaluation below are
	// timed separately into EvalElapsed.
	elapsed := time.Since(start)
	evalStart := time.Now()
	if err := in.CheckFeasible(sched, feasTol); err != nil {
		return nil, fmt.Errorf("sim: %s produced infeasible schedule: %w", alg.Name(), err)
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", alg.Name(), err)
	}
	return &Run{
		Algorithm:   alg.Name(),
		Schedule:    sched,
		Breakdown:   b,
		Total:       in.Total(b),
		Elapsed:     elapsed,
		EvalElapsed: time.Since(evalStart),
	}, nil
}

// Stats summarizes a sample of values.
type Stats struct {
	Mean, Std float64
	Min, Max  float64
	N         int
}

// Summarize computes mean, sample standard deviation, and range.
func Summarize(vals []float64) Stats {
	s := Stats{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Stats{}
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
