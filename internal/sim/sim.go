// Package sim is the discrete-time simulation harness: it runs an
// allocation algorithm over an instance, evaluates the resulting schedule
// under the true objective P0, verifies feasibility, and aggregates
// statistics across repetitions — the role played by the authors' Python
// simulator in §V.
package sim

import (
	"fmt"
	"log/slog"
	"math"
	"time"

	"edgealloc/internal/conform"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/telemetry"
)

// Algorithm is any allocation policy: given a validated instance it
// produces one allocation per slot. Online algorithms must only use
// information revealed up to each slot; that discipline is enforced by
// their own constructions (see internal/core and internal/baseline), not
// by the harness.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Solve produces a full schedule for the instance.
	Solve(in *model.Instance) (model.Schedule, error)
}

// Certifier is implemented by algorithms (notably *core.OnlineApprox)
// that can certify a dual lower bound on the offline optimum for their
// most recent Solve. The harness consults it to cross-check the
// certificate against the realized cost in the conformance oracle.
type Certifier interface {
	Certificate() (*core.Certificate, error)
}

// RatioBounder is implemented by algorithms carrying a provable
// competitive-ratio bound (Theorem 2's r = 1 + γ|I|) for their most
// recent Solve; 0 means no bound is claimed.
type RatioBounder interface {
	CompetitiveRatioBound() float64
}

// Run is the outcome of one algorithm execution on one instance.
type Run struct {
	Algorithm string
	Schedule  model.Schedule
	Breakdown model.Breakdown
	// Total is the weighted P0 objective of the schedule.
	Total float64
	// Conformance is the paper-conformance oracle's report for the run
	// (nil when the check was skipped). A run with violations is never
	// returned — Execute surfaces it as an error instead — so a non-nil
	// report here is always clean.
	Conformance *conform.Report
	// Elapsed is the wall-clock time of the algorithm's Solve call alone.
	// Feasibility verification and cost evaluation are excluded (they are
	// harness overhead, tracked by EvalElapsed), so per-algorithm timings
	// stay meaningful when many runs execute concurrently.
	Elapsed time.Duration
	// EvalElapsed is the time the harness spent verifying feasibility and
	// evaluating the schedule's true cost after Solve returned.
	EvalElapsed time.Duration
}

// feasTol is the feasibility tolerance applied to every produced
// schedule; the first-order solvers meet it with two orders of margin.
const feasTol = 1e-4

// Options tunes the harness around one algorithm execution. The zero
// value is the default configuration: the conformance oracle runs on
// every produced schedule.
type Options struct {
	// SkipConformance disables the paper-conformance oracle and falls back
	// to the seed harness's basic feasibility check alone. The oracle is
	// on by default because its cost — a few cost evaluations — is
	// negligible next to any Solve.
	SkipConformance bool
	// Conform tunes the oracle's tolerances; zero values take the
	// conform package defaults.
	Conform conform.Options
	// Metrics optionally records run-level telemetry — completed runs,
	// Solve latency, and conformance-oracle findings by kind — into the
	// same instrument bundle the per-slot solver hooks use, so batch CLIs
	// and the serving daemon expose one metric namespace. Nil records
	// nothing.
	Metrics *telemetry.SolverMetrics
	// Logger optionally receives one structured warning line per
	// conformance violation (the findings are also returned as the
	// wrapped error). Nil logs nothing.
	Logger *slog.Logger
}

// Execute runs the algorithm with default options: the schedule is
// verified by the conformance oracle and evaluated under the true
// weighted cost.
func Execute(in *model.Instance, alg Algorithm) (*Run, error) {
	return ExecuteOpts(in, alg, Options{})
}

// ExecuteOpts runs the algorithm, verifies its schedule — through the
// paper-conformance oracle unless opts.SkipConformance — and evaluates
// the true weighted cost. Conformance violations are returned as errors
// wrapping conform.ErrNonConformant.
func ExecuteOpts(in *model.Instance, alg Algorithm, opts Options) (*Run, error) {
	start := time.Now()
	sched, err := alg.Solve(in)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", alg.Name(), err)
	}
	// Elapsed covers Solve only; verification and evaluation below are
	// timed separately into EvalElapsed.
	elapsed := time.Since(start)
	opts.Metrics.ObserveRun(elapsed.Seconds())
	evalStart := time.Now()
	var report *conform.Report
	if opts.SkipConformance {
		if err := in.CheckFeasible(sched, feasTol); err != nil {
			return nil, fmt.Errorf("sim: %s produced infeasible schedule: %w", alg.Name(), err)
		}
	} else {
		report = conform.Check(in, sched, diagnose(alg), opts.Conform)
		if err := report.Err(); err != nil {
			// Surface the findings through telemetry and structured logs
			// before failing the run: a scrape shows which guarantee broke
			// even when the caller only sees the wrapped error.
			for kind, n := range report.Counts() {
				for k := 0; k < n; k++ {
					opts.Metrics.CountViolation(string(kind))
				}
			}
			report.Log(opts.Logger, alg.Name())
			return nil, fmt.Errorf("sim: %s failed conformance: %w", alg.Name(), err)
		}
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		return nil, fmt.Errorf("sim: %s: %w", alg.Name(), err)
	}
	return &Run{
		Algorithm:   alg.Name(),
		Schedule:    sched,
		Breakdown:   b,
		Total:       in.Total(b),
		Conformance: report,
		Elapsed:     elapsed,
		EvalElapsed: time.Since(evalStart),
	}, nil
}

// diagnose collects the solver-side evidence the conformance oracle can
// cross-check: the dual certificate and the Theorem-2 ratio, for
// algorithms that expose them.
func diagnose(alg Algorithm) *conform.Diagnostics {
	var d conform.Diagnostics
	if rb, ok := alg.(RatioBounder); ok {
		d.RatioBound = rb.CompetitiveRatioBound()
	}
	if c, ok := alg.(Certifier); ok {
		if cert, err := c.Certificate(); err == nil {
			d.HasCertificate = true
			d.LowerBoundP0 = cert.LowerBoundP0()
			d.LowerBoundP1 = cert.LowerBoundP1()
			d.DualResidual = cert.Feasibility.Max()
			d.NuCharge = cert.NuCharge
		}
	}
	if !d.HasCertificate && d.RatioBound == 0 {
		return nil
	}
	return &d
}

// Stats summarizes a sample of values.
type Stats struct {
	Mean, Std float64
	Min, Max  float64
	N         int
}

// Summarize computes mean, sample standard deviation, and range.
func Summarize(vals []float64) Stats {
	s := Stats{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Stats{}
	}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		ss := 0.0
		for _, v := range vals {
			d := v - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}
