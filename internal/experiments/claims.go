package experiments

import "fmt"

// Claims aggregates the paper's headline claims (§I / abstract) from
// reproduced figure results:
//
//   - "achieves near-optimal results with an empirical competitive ratio
//     of about 1.1",
//   - "reduces the total cost by up to 4× compared to static approaches"
//     (the atomistic per-slot optimizers),
//   - "outperforms the online greedy one-shot optimizations by up to 70%".
type Claims struct {
	// ApproxMeanRatio is the mean online-approx competitive ratio across
	// all rows (paper: ≈1.1).
	ApproxMeanRatio float64
	// MaxReductionVsAtomistic is the largest factor by which online-approx
	// cost undercuts the worst atomistic algorithm on any row
	// (paper: up to 4×).
	MaxReductionVsAtomistic float64
	// MaxImprovementOverGreedy is the largest relative cost reduction of
	// online-approx vs online-greedy on any row (paper: up to 60–70 %).
	MaxImprovementOverGreedy float64
	// Rows is the number of (case, distribution, …) rows aggregated.
	Rows int
}

// String renders the claims next to the paper's numbers.
func (c Claims) String() string {
	return fmt.Sprintf(
		"approx mean ratio %.3f (paper ≈1.1); up to %.2fx cheaper than the worst "+
			"atomistic (paper ≤4x); up to %.0f%% better than greedy (paper ≤60-70%%) "+
			"[%d rows]",
		c.ApproxMeanRatio, c.MaxReductionVsAtomistic,
		100*c.MaxImprovementOverGreedy, c.Rows)
}

// SummarizeClaims extracts the headline quantities from any number of
// figure results (typically Fig 2 and Fig 3). Rows lacking an
// online-approx cell are skipped.
func SummarizeClaims(results ...*Result) Claims {
	var c Claims
	sum := 0.0
	for _, res := range results {
		if res == nil {
			continue
		}
		for _, row := range res.Rows {
			var approx, greedy, worstAtomistic float64
			for _, cell := range row.Cells {
				switch cell.Name {
				case "online-approx":
					approx = cell.Stats.Mean
				case "online-greedy":
					greedy = cell.Stats.Mean
				case "perf-opt", "oper-opt", "stat-opt", "static":
					if cell.Stats.Mean > worstAtomistic {
						worstAtomistic = cell.Stats.Mean
					}
				}
			}
			if approx <= 0 {
				continue
			}
			c.Rows++
			sum += approx
			if worstAtomistic > 0 {
				if f := worstAtomistic / approx; f > c.MaxReductionVsAtomistic {
					c.MaxReductionVsAtomistic = f
				}
			}
			if greedy > 0 {
				if imp := 1 - approx/greedy; imp > c.MaxImprovementOverGreedy {
					c.MaxImprovementOverGreedy = imp
				}
			}
		}
	}
	if c.Rows > 0 {
		c.ApproxMeanRatio = sum / float64(c.Rows)
	}
	return c
}
