package experiments

// This file is the parallel experiment engine. Every independent unit of
// work — one (figure-row, repetition, algorithm) execution — becomes a
// task on a bounded worker pool. Tasks share nothing: each rebuilds its
// instance from the deterministic per-(row, rep) seed and constructs
// fresh algorithm state, so the aggregated output is bit-identical for
// any worker count (including 1, the sequential order of the original
// engine). The offline-opt denominator of the competitive ratios is one
// more unit per (row, rep).

import (
	"runtime"
	"sync"
	"sync/atomic"

	"edgealloc/internal/model"
	"edgealloc/internal/sim"
)

// rowSpec describes one labeled row of a figure for the grid engine.
type rowSpec struct {
	// Label is the row's table label.
	Label string
	// Build constructs the instance of repetition rep. It must be
	// deterministic in rep alone (seeded from Params.Seed) because every
	// unit of the row rebuilds it independently.
	Build func(rep int) (*model.Instance, error)
	// Algs returns fresh algorithm instances for one unit of work. The
	// roster (length and order) must be identical across calls; state must
	// not be shared between calls, since units run concurrently.
	Algs func() []sim.Algorithm
}

// forEachIndex runs fn(0..n-1) across min(workers, n) goroutines pulling
// indices from a shared counter. fn must write its result to a disjoint,
// pre-sized slot. The first error stops the remaining work and is
// returned. workers ≤ 1 runs inline, preserving strict sequential order.
func forEachIndex(workers, n int, fn func(int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		failed   atomic.Bool
		once     sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					once.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// runRows executes the full (row, rep, algorithm) grid on the worker pool
// and aggregates competitive ratios — each algorithm's total cost divided
// by the offline optimum of the same (row, rep) — exactly like the
// sequential engine did.
func runRows(p Params, rows []rowSpec) ([]Row, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	// Unit layout, fixed up front so results land in deterministic slots:
	// for each row r and rep, one denominator unit followed by one unit
	// per algorithm of the row's roster.
	algCount := make([]int, len(rows))
	for r := range rows {
		algCount[r] = len(rows[r].Algs())
	}
	type unit struct {
		row, rep, alg int // alg == -1 is the offline-opt denominator
	}
	var units []unit
	for r := range rows {
		for rep := 0; rep < p.Reps; rep++ {
			units = append(units, unit{r, rep, -1})
			for a := 0; a < algCount[r]; a++ {
				units = append(units, unit{r, rep, a})
			}
		}
	}

	type outcome struct {
		name  string
		total float64
	}
	results := make([]outcome, len(units))
	err := forEachIndex(p.workers(), len(units), func(k int) error {
		u := units[k]
		in, err := rows[u.row].Build(u.rep)
		if err != nil {
			return err
		}
		var alg sim.Algorithm
		if u.alg < 0 {
			alg = fastOffline()
		} else {
			alg = rows[u.row].Algs()[u.alg]
		}
		run, err := sim.ExecuteOpts(in, alg, p.simOptions())
		if err != nil {
			return err
		}
		results[k] = outcome{name: run.Algorithm, total: run.Total}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Assemble ratios in (row, rep) order — the same order the sequential
	// engine appended samples, so aggregation is bit-identical.
	out := make([]Row, 0, len(rows))
	k := 0
	for r := range rows {
		samples := make([]map[string]float64, 0, p.Reps)
		for rep := 0; rep < p.Reps; rep++ {
			denom := results[k].total
			k++
			ratios := make(map[string]float64, algCount[r])
			for a := 0; a < algCount[r]; a++ {
				ratios[results[k].name] = results[k].total / denom
				k++
			}
			samples = append(samples, ratios)
		}
		out = append(out, Row{Label: rows[r].Label, Cells: aggregate(samples)})
	}
	return out, nil
}

// workers resolves the configured pool size (0 = one worker per
// available CPU).
func (p Params) workers() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// simOptions maps the experiment parameters onto the per-run harness
// options: the conformance oracle is consulted on every unit of work
// unless explicitly disabled, and run-level telemetry flows into the
// shared instrument bundle when one is configured.
func (p Params) simOptions() sim.Options {
	return sim.Options{SkipConformance: p.SkipConformance, Metrics: p.Metrics}
}
