package experiments

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// TestWorkersDeterminism is the regression guard for the parallel engine:
// the reproduced rows must be bit-identical whether the grid runs on one
// worker (the original sequential order) or many.
func TestWorkersDeterminism(t *testing.T) {
	base := Params{Users: 4, Horizon: 3, Reps: 2, Cases: 2, Seed: 91}

	seq := base
	seq.Workers = 1
	want, err := ByName("2", seq)
	if err != nil {
		t.Fatal(err)
	}

	par := base
	par.Workers = 4
	got, err := ByName("2", par)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(want.Rows, got.Rows) {
		t.Errorf("Workers:1 and Workers:4 disagree\nseq: %+v\npar: %+v", want.Rows, got.Rows)
	}
}

func TestForEachIndexCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var hits [37]atomic.Int32
		if err := forEachIndex(workers, len(hits), func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range hits {
			if n := hits[i].Load(); n != 1 {
				t.Errorf("workers=%d: index %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestForEachIndexPropagatesFirstError(t *testing.T) {
	sentinel := errors.New("boom")
	err := forEachIndex(4, 100, func(i int) error {
		if i == 17 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestWorkersDefaultsToCPUs(t *testing.T) {
	if got := (Params{}).workers(); got < 1 {
		t.Errorf("default workers = %d, want ≥ 1", got)
	}
	if got := (Params{Workers: 7}).workers(); got != 7 {
		t.Errorf("explicit workers = %d, want 7", got)
	}
}
