package experiments

import (
	"fmt"

	"edgealloc/internal/baseline"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/sim"
	"edgealloc/internal/solver/alm"
)

// This file defines the ablation studies that go beyond the paper's
// figures: they interrogate the design choices DESIGN.md calls out
// (entropy vs quadratic regularization, the value of prediction, and the
// adversarial lower-bound family of §IV's future-work remark). They are
// driven by cmd/edgebench.

// AblationLookahead sweeps the prediction window of the model-predictive
// baseline on the Rome scenario, bracketing online-greedy (window 1) and
// offline-opt (window T), with the paper's prediction-free algorithm as
// the reference line.
func AblationLookahead(p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{
		Figure: "Ablation A",
		Title:  "value of prediction: lookahead window vs competitive ratio",
		Notes: trimNotes(p,
			"window 1 ≈ online-greedy; window T = offline-opt; online-approx uses no prediction"),
	}
	windows := []int{1, 2, 3, 5}
	var specs []rowSpec
	for _, w := range windows {
		if w > p.Horizon {
			continue
		}
		w := w
		specs = append(specs, rowSpec{
			Label: fmt.Sprintf("window=%d", w),
			Build: func(rep int) (*model.Instance, error) {
				return buildRome(p.scenarioConfig(p.Seed + int64(rep)))
			},
			Algs: func() []sim.Algorithm {
				return []sim.Algorithm{
					&baseline.Lookahead{Window: w,
						MuSchedule: []float64{0.05, 2e-3},
						Solver: alm.Options{MaxOuter: 25, InnerIters: 600,
							FeasTol: 1e-6, DualTol: 1e-3, ObjTol: 1e-7, Penalty: 4}},
					p.approx(),
				}
			},
		})
	}
	rows, err := runRows(p, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation lookahead: %w", err)
	}
	for _, row := range rows {
		// Normalize the lookahead cell name across windows so rows align.
		for i := range row.Cells {
			if row.Cells[i].Name != "online-approx" {
				row.Cells[i].Name = "lookahead"
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationRegularizer compares the paper's relative-entropy regularizer
// against the quadratic (proximal) variant across the dynamic-cost weight
// μ — the axis along which the two designs differ most.
func AblationRegularizer(p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{
		Figure: "Ablation B",
		Title:  "entropy vs quadratic movement regularization",
		Notes: trimNotes(p,
			"the entropy form admits the Theorem-2 analysis; the quadratic form is the smoothed-OCO alternative"),
	}
	var specs []rowSpec
	for _, mu := range []float64{0.1, 1, 10} {
		mu := mu
		specs = append(specs, rowSpec{
			Label: fmt.Sprintf("mu=%g", mu),
			Build: func(rep int) (*model.Instance, error) {
				cfg := p.scenarioConfig(p.Seed + int64(rep))
				cfg.Mu = mu
				return buildRome(cfg)
			},
			Algs: func() []sim.Algorithm {
				return []sim.Algorithm{
					p.approx(),
					&core.Proximal{Solver: alm.Options{MaxOuter: 40, InnerIters: 600,
						FeasTol: 1e-7, DualTol: 1e-3, ObjTol: 1e-8, Penalty: 2}},
				}
			},
		})
	}
	rows, err := runRows(p, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: ablation regularizer: %w", err)
	}
	res.Rows = rows
	return res, nil
}

// AblationAdversarial sweeps the spike factor of the ping-pong family,
// reporting exact competitive ratios (the offline denominator is the LP
// optimum here, not the smoothed program — the instances are tiny).
func AblationAdversarial() (*Result, error) {
	res := &Result{
		Figure: "Ablation C",
		Title:  "adversarial price alternation: empirical lower-bound probe",
		Notes: []string{
			"two clouds, one user, prices alternate every slot (§IV Remark future work)",
			"ratios are exact: offline denominators come from the LP solver",
		},
	}
	// The spike values are independent probes with exact LP denominators;
	// run them on the pool (one task per spike — the instances are tiny).
	spikes := []float64{1.5, 2, 3, 5, 8}
	rows := make([]Row, len(spikes))
	err := forEachIndex(Params{}.workers(), len(spikes), func(k int) error {
		spike := spikes[k]
		in, err := scenario.PingPong(scenario.AdversarialConfig{
			Horizon: 12, Spike: spike, Dynamic: spike - 1,
		})
		if err != nil {
			return fmt.Errorf("experiments: ablation adversarial: %w", err)
		}
		_, opt, err := baseline.ExactOffline(in)
		if err != nil {
			return fmt.Errorf("experiments: ablation adversarial: %w", err)
		}
		ratioOf := func(alg sim.Algorithm) (float64, error) {
			run, err := sim.Execute(in, alg)
			if err != nil {
				return 0, err
			}
			return run.Total / opt, nil
		}
		ap, err := ratioOf(approxAlg{})
		if err != nil {
			return fmt.Errorf("experiments: ablation adversarial spike=%g: %w", spike, err)
		}
		gr, err := ratioOf(fastGreedy())
		if err != nil {
			return fmt.Errorf("experiments: ablation adversarial spike=%g: %w", spike, err)
		}
		one := func(v float64) sim.Stats { return sim.Summarize([]float64{v}) }
		rows[k] = Row{
			Label: fmt.Sprintf("spike=%.1f", spike),
			Cells: []Cell{
				{Name: "online-approx", Stats: one(ap)},
				{Name: "online-greedy", Stats: one(gr)},
				{Name: "theorem-2-bound", Stats: one(core.RatioBound(in, 1, 1))},
			},
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Rows = rows
	return res, nil
}

// AblationByName dispatches the ablation studies for cmd/edgebench.
func AblationByName(name string, p Params) (*Result, error) {
	switch name {
	case "lookahead", "a":
		return AblationLookahead(p)
	case "regularizer", "b":
		return AblationRegularizer(p)
	case "adversarial", "c":
		return AblationAdversarial()
	default:
		return nil, fmt.Errorf("experiments: unknown ablation %q (want lookahead, regularizer, adversarial)", name)
	}
}
