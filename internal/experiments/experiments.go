// Package experiments defines one reproduction harness per figure of the
// paper's evaluation (§V). Each harness builds the scenario of the figure,
// runs the algorithm groups, normalizes total costs by the offline
// optimum (the empirical competitive ratio the paper plots), aggregates
// mean and standard deviation over repetitions, and renders the rows as a
// text table.
//
// Default parameters are laptop-scale (the authors used a 512 GB Xeon
// server); Params lets the caller restore the paper's full scale
// (J≈300 users, T=60 slots, 5 repetitions). EXPERIMENTS.md records the
// exact parameters behind every published run of this repository.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"edgealloc/internal/baseline"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/sim"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/telemetry"
)

// Params scales an experiment. Zero fields take the figure's defaults.
type Params struct {
	// Users is the number of mobile users per case (paper: ~300).
	Users int
	// Horizon is the number of time slots per case (paper: 60).
	Horizon int
	// Reps is the number of independent repetitions (paper: 5).
	Reps int
	// Cases is the number of test cases (hours) for Fig 2/3 (paper: 6).
	Cases int
	// Seed is the base random seed; case c, repetition r runs with seed
	// Seed + 1000·c + r.
	Seed int64
	// Workers bounds the number of concurrent (case, rep, algorithm) runs
	// (0 = one worker per available CPU). Results are bit-identical for
	// every worker count: each unit of work derives its RNG seed from
	// (Seed, case, rep) alone and owns all of its state.
	Workers int
	// SkipConformance disables the paper-conformance oracle that the
	// engine otherwise runs on every produced schedule (Theorem-1
	// feasibility, Lemma-1 gap, certificate validity; see
	// internal/conform). Only the seed harness's basic feasibility check
	// runs then.
	SkipConformance bool
	// Candidates restricts the paper's algorithm to dual-certified
	// per-user candidate sets of this size (core.Options.Candidates):
	// each slot solves over the Candidates clouds nearest each user's
	// attachment plus the clouds its flow already occupies, expanding on
	// pricing violations until the reduced solution is certified optimal
	// for the full problem. 0 solves the full I·J variable space.
	Candidates int
	// FastMath routes the paper algorithm's entropy hot loop through the
	// batch kernels of internal/numkernel (core.Options.FastMath):
	// per-operation accuracy ≤1e-12 relative, schedule costs within 1e-8
	// of the exact path, not bitwise-reproducible against it. FastMathF32
	// additionally selects the float32 ratio-scratch storage tier
	// (core.Options.FastMathF32) and implies FastMath.
	FastMath    bool
	FastMathF32 bool
	// Shards splits each slot's program across this many user shards
	// coordinated by the sharing-ADMM loop (core.Options.Shards): shards
	// solve concurrently under the run's worker budget and the assembled
	// schedule is certified against the same conformance oracle. 0 keeps
	// the single-program path, bitwise-unchanged. Composes with
	// Candidates and FastMath.
	Shards int
	// ShardWorkers lists shard-worker base URLs (cmd/edgeshard) to place
	// the shard blocks on over RPC (core.Options.ShardWorkers); empty
	// solves every shard in-process. Only meaningful with Shards > 0.
	ShardWorkers []string
	// Incremental turns on event-driven incremental slot solving
	// (core.Options.Incremental): each slot re-solves only the users
	// whose attachment changed, holding everyone else at their warm
	// iterates behind a dual-feasibility gate that re-admits any user it
	// cannot certify. IncrementalTol overrides the gate tolerance (0 =
	// package default). Composes with Candidates, FastMath, and Shards.
	Incremental    bool
	IncrementalTol float64
	// Scenario overrides the default §V-A price/weight knobs (fields at
	// their zero values keep the scenario defaults).
	Scenario scenario.Config
	// Metrics optionally records run- and slot-level solver telemetry
	// (the same instrument bundle the serving daemon scrapes) across every
	// unit of work. Nil records nothing; recording never changes results.
	Metrics *telemetry.SolverMetrics
}

func (p Params) withDefaults() Params {
	if p.Users == 0 {
		p.Users = 15
	}
	if p.Horizon == 0 {
		p.Horizon = 12
	}
	if p.Reps == 0 {
		p.Reps = 3
	}
	if p.Cases == 0 {
		p.Cases = 6
	}
	if p.Seed == 0 {
		p.Seed = 20140212 // the date of the paper's taxi-trace day
	}
	return p
}

func (p Params) scenarioConfig(seed int64) scenario.Config {
	cfg := p.Scenario
	cfg.Users = p.Users
	cfg.Horizon = p.Horizon
	cfg.Seed = seed
	return cfg
}

// Cell is one aggregated measurement.
type Cell struct {
	Name  string
	Stats sim.Stats
}

// Row is one labeled line of a figure (a test case, a parameter value, …).
type Row struct {
	Label string
	Cells []Cell
}

// Result is a reproduced figure.
type Result struct {
	Figure string
	Title  string
	Notes  []string
	Rows   []Row
}

// Cell returns the named cell of the labeled row, or false.
func (r *Result) Cell(label, name string) (Cell, bool) {
	for _, row := range r.Rows {
		if row.Label != label {
			continue
		}
		for _, c := range row.Cells {
			if c.Name == name {
				return c, true
			}
		}
	}
	return Cell{}, false
}

// WriteTable renders the result in the row/series layout of the paper's
// figures.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.Figure, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(w, "   %s\n", n)
	}
	if len(r.Rows) == 0 {
		return
	}
	names := make([]string, 0, len(r.Rows[0].Cells))
	for _, c := range r.Rows[0].Cells {
		names = append(names, c.Name)
	}
	fmt.Fprintf(w, "%-16s", "")
	for _, n := range names {
		fmt.Fprintf(w, " %16s", n)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s", row.Label)
		for _, n := range names {
			found := false
			for _, c := range row.Cells {
				if c.Name == n {
					if c.Stats.N > 1 {
						fmt.Fprintf(w, " %9.3f ±%5.3f", c.Stats.Mean, c.Stats.Std)
					} else {
						fmt.Fprintf(w, " %16.3f", c.Stats.Mean)
					}
					found = true
					break
				}
			}
			if !found {
				fmt.Fprintf(w, " %16s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// fastOffline is the offline-opt profile used as the normalization
// denominator: two-stage smoothing continuation with tolerances chosen so
// the objective is within a fraction of a percent of the exact optimum
// (validated against the simplex LP in internal/baseline tests) at a
// fraction of the default profile's cost.
func fastOffline() *baseline.Offline {
	return &baseline.Offline{
		MuSchedule: []float64{0.05, 2e-3},
		Solver: alm.Options{MaxOuter: 25, InnerIters: 800,
			FeasTol: 1e-6, DualTol: 1e-3, ObjTol: 1e-7, Penalty: 4},
	}
}

// fastGreedy mirrors the tuning for the per-slot greedy solves.
func fastGreedy() *baseline.Greedy {
	return &baseline.Greedy{
		MuSchedule: []float64{0.05, 2e-3},
		Solver: alm.Options{MaxOuter: 30, InnerIters: 500,
			FeasTol: 1e-7, DualTol: 1e-3, ObjTol: 1e-8, Penalty: 2},
	}
}

// approxAlg adapts the paper's algorithm to the sim.Algorithm interface
// with a fresh state and the experiment solver profile per Solve.
type approxAlg struct {
	eps1, eps2     float64
	candidates     int
	shards         int
	shardWorkers   []string
	fastMath       bool
	fastMathF32    bool
	incremental    bool
	incrementalTol float64
	metrics        *telemetry.SolverMetrics
}

func (a approxAlg) Name() string { return "online-approx" }

func (a approxAlg) Solve(in *model.Instance) (model.Schedule, error) {
	alg := core.NewOnlineApprox(in, core.Options{
		Epsilon1:       a.eps1,
		Epsilon2:       a.eps2,
		Candidates:     a.candidates,
		Shards:         a.shards,
		ShardWorkers:   a.shardWorkers,
		FastMath:       a.fastMath,
		FastMathF32:    a.fastMathF32,
		Incremental:    a.incremental,
		IncrementalTol: a.incrementalTol,
		Solver: alm.Options{MaxOuter: 40, InnerIters: 600,
			FeasTol: 1e-7, DualTol: 1e-3, ObjTol: 1e-8, Penalty: 2},
		Metrics: a.metrics,
	})
	return alg.Run()
}

var _ sim.Algorithm = approxAlg{}

// approx builds the paper's algorithm adapter under p's knobs.
func (p Params) approx() approxAlg {
	return approxAlg{candidates: p.Candidates, shards: p.Shards,
		shardWorkers: p.ShardWorkers,
		fastMath:     p.FastMath, fastMathF32: p.FastMathF32,
		incremental: p.Incremental, incrementalTol: p.IncrementalTol,
		metrics: p.Metrics}
}

// aggregate converts per-rep ratio maps into sorted cells.
func aggregate(samples []map[string]float64) []Cell {
	byName := map[string][]float64{}
	for _, s := range samples {
		for name, v := range s {
			byName[name] = append(byName[name], v)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	cells := make([]Cell, 0, len(names))
	for _, n := range names {
		cells = append(cells, Cell{Name: n, Stats: sim.Summarize(byName[n])})
	}
	return cells
}

// holisticAndAtomistic is the §V-B algorithm roster (excluding offline-opt
// which is the denominator), fresh per call for the pooled engine.
func holisticAndAtomistic(p Params) func() []sim.Algorithm {
	return func() []sim.Algorithm {
		return []sim.Algorithm{
			&baseline.Atomistic{Kind: baseline.PerfOpt},
			&baseline.Atomistic{Kind: baseline.OperOpt},
			&baseline.Atomistic{Kind: baseline.StatOpt},
			fastGreedy(),
			p.approx(),
		}
	}
}

func caseLabel(c int) string { return fmt.Sprintf("case-%d (%dpm)", c+1, 3+c) }

// caseRows builds the shared Fig-2/Fig-3 grid: one row per test case,
// seeded Seed + 1000·c + rep, all executed by the pooled engine.
func caseRows(p Params, build func(scenario.Config) (*model.Instance, error),
	algs func() []sim.Algorithm) []rowSpec {
	rows := make([]rowSpec, p.Cases)
	for c := 0; c < p.Cases; c++ {
		c := c
		rows[c] = rowSpec{
			Label: caseLabel(c),
			Build: func(rep int) (*model.Instance, error) {
				return build(p.scenarioConfig(p.Seed + int64(1000*c+rep)))
			},
			Algs: algs,
		}
	}
	return rows
}

func buildRome(cfg scenario.Config) (*model.Instance, error) {
	in, _, err := scenario.Rome(cfg)
	return in, err
}

func buildRandomWalk(cfg scenario.Config) (*model.Instance, error) {
	in, _, err := scenario.RandomWalkRome(cfg)
	return in, err
}

// trimNotes formats parameter provenance for the table header.
func trimNotes(p Params, extra ...string) []string {
	n := []string{fmt.Sprintf("J=%d users, T=%d slots, %d reps, seed=%d (paper: J≈300, T=60, 5 reps)",
		p.Users, p.Horizon, p.Reps, p.Seed)}
	return append(n, extra...)
}

// Fig1 reproduces the two toy examples of Figure 1 with exact numbers:
// online-greedy against the exact offline optimum and the paper's
// algorithm. Cells are absolute total costs, not ratios. Only the
// telemetry and conformance knobs of p apply; the toy instances fix the
// scale.
func Fig1(p Params) (*Result, error) {
	res := &Result{
		Figure: "Fig 1",
		Title:  "toy examples: greedy too aggressive (a) / too conservative (b)",
		Notes: []string{
			"paper: (a) greedy 11.5 vs optimal 9.6; (b) greedy 11.3 vs optimal 9.5",
			"cells are absolute total costs",
		},
	}
	for _, tc := range []struct {
		label string
		inst  *model.Instance
	}{
		{"example-a", model.ToyExampleA()},
		{"example-b", model.ToyExampleB()},
	} {
		_, opt, err := baseline.ExactOffline(tc.inst)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 %s: %w", tc.label, err)
		}
		greedyRun, err := sim.ExecuteOpts(tc.inst, fastGreedy(), p.simOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 %s: %w", tc.label, err)
		}
		apRun, err := sim.ExecuteOpts(tc.inst, approxAlg{
			shards: p.Shards, shardWorkers: p.ShardWorkers,
			fastMath: p.FastMath, fastMathF32: p.FastMathF32,
			incremental: p.Incremental, incrementalTol: p.IncrementalTol,
			metrics: p.Metrics}, p.simOptions())
		if err != nil {
			return nil, fmt.Errorf("experiments: fig1 %s: %w", tc.label, err)
		}
		one := func(v float64) sim.Stats { return sim.Summarize([]float64{v}) }
		res.Rows = append(res.Rows, Row{
			Label: tc.label,
			Cells: []Cell{
				{Name: "offline-opt", Stats: one(opt)},
				{Name: "online-greedy", Stats: one(greedyRun.Total)},
				{Name: "online-approx", Stats: one(apRun.Total)},
			},
		})
	}
	return res, nil
}

// Fig2 reproduces Figure 2: empirical competitive ratios of the atomistic
// and holistic groups on the Rome taxi scenario with power-law workloads,
// one row per hour-long test case.
func Fig2(p Params) (*Result, error) {
	p = p.withDefaults()
	if p.Scenario.WorkloadDist == "" {
		p.Scenario.WorkloadDist = "power"
	}
	rows, err := runRows(p, caseRows(p, buildRome, holisticAndAtomistic(p)))
	if err != nil {
		return nil, fmt.Errorf("experiments: fig2: %w", err)
	}
	return &Result{
		Figure: "Fig 2",
		Title:  "empirical competitive ratio, Rome taxis, power workloads",
		Notes: trimNotes(p,
			"paper shape: atomistic worst, greedy middle, online-approx ≈1.1"),
		Rows: rows,
	}, nil
}

// Fig3 reproduces Figure 3: the same comparison under uniform and normal
// workload distributions.
func Fig3(p Params) (*Result, error) {
	p = p.withDefaults()
	if p.Cases > 3 {
		p.Cases = 3 // the paper's Fig 3 shows three cases per distribution
	}
	res := &Result{
		Figure: "Fig 3",
		Title:  "empirical competitive ratio under uniform / normal workloads",
		Notes: trimNotes(p,
			"paper shape: online-approx near-optimal, up to 70% better than greedy"),
	}
	// Both distributions go into a single grid so the pool drains one flat
	// task list instead of hitting a barrier between the two sweeps.
	var specs []rowSpec
	for _, dist := range []string{"uniform", "normal"} {
		pd := p
		pd.Scenario.WorkloadDist = dist
		for _, rs := range caseRows(pd, buildRome, holisticAndAtomistic(pd)) {
			rs.Label = dist + " " + rs.Label
			specs = append(specs, rs)
		}
	}
	rows, err := runRows(p, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig3: %w", err)
	}
	res.Rows = rows
	return res, nil
}

// Fig4 reproduces Figure 4: the sensitivity of the empirical competitive
// ratio to ε = ε₁ = ε₂ and to the dynamic/static weight ratio μ.
func Fig4(p Params) (*Result, error) {
	p = p.withDefaults()
	res := &Result{
		Figure: "Fig 4",
		Title:  "impact of ε and μ on the empirical competitive ratio",
		Notes: trimNotes(p,
			"paper shape: slight dip then stable in ε; ≈optimal for small μ, stable for large μ"),
	}
	// One flat grid over both sweeps; every (row, rep, algorithm) unit is
	// an independent pool task.
	var specs []rowSpec
	epsValues := []float64{1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3}
	for _, eps := range epsValues {
		eps := eps
		specs = append(specs, rowSpec{
			Label: fmt.Sprintf("eps=%.0e", eps),
			Build: func(rep int) (*model.Instance, error) {
				return buildRome(p.scenarioConfig(p.Seed + int64(rep)))
			},
			Algs: func() []sim.Algorithm {
				return []sim.Algorithm{approxAlg{
					eps1: eps, eps2: eps, candidates: p.Candidates, shards: p.Shards,
					shardWorkers: p.ShardWorkers,
					fastMath:     p.FastMath, fastMathF32: p.FastMathF32,
					incremental: p.Incremental, incrementalTol: p.IncrementalTol,
					metrics: p.Metrics}}
			},
		})
	}
	muValues := []float64{1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3}
	for _, mu := range muValues {
		mu := mu
		specs = append(specs, rowSpec{
			Label: fmt.Sprintf("mu=%.0e", mu),
			Build: func(rep int) (*model.Instance, error) {
				cfg := p.scenarioConfig(p.Seed + int64(rep))
				cfg.Mu = mu
				return buildRome(cfg)
			},
			Algs: func() []sim.Algorithm { return []sim.Algorithm{p.approx()} },
		})
	}
	rows, err := runRows(p, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig4: %w", err)
	}
	res.Rows = rows
	return res, nil
}

// Fig5 reproduces Figure 5: random-walk mobility on the metro graph with
// a growing user population; online-approx stays ≈1.1 while greedy climbs.
func Fig5(p Params) (*Result, error) {
	p = p.withDefaults()
	userCounts := fig5UserCounts(p.Users)
	res := &Result{
		Figure: "Fig 5",
		Title:  "random-walk mobility: ratio vs number of users",
		Notes: trimNotes(p,
			"paper: users 40..1000, approx ≈1.1 flat, greedy up to 1.8"),
	}
	specs := make([]rowSpec, 0, len(userCounts))
	for _, users := range userCounts {
		users := users
		pu := p
		pu.Users = users
		specs = append(specs, rowSpec{
			Label: fmt.Sprintf("users=%d", users),
			Build: func(rep int) (*model.Instance, error) {
				return buildRandomWalk(pu.scenarioConfig(p.Seed + int64(100*users+rep)))
			},
			Algs: func() []sim.Algorithm {
				return []sim.Algorithm{fastGreedy(), p.approx()}
			},
		})
	}
	rows, err := runRows(p, specs)
	if err != nil {
		return nil, fmt.Errorf("experiments: fig5: %w", err)
	}
	res.Rows = rows
	return res, nil
}

// fig5UserCounts scales the paper's 40..1000 sweep to the configured base
// population.
func fig5UserCounts(base int) []int {
	if base >= 40 {
		return []int{40, 100, 200, 400, 700, 1000}
	}
	return []int{base / 2, base, 2 * base, 4 * base}
}

// ByName returns the named figure's harness.
func ByName(name string, p Params) (*Result, error) {
	switch strings.ToLower(strings.TrimPrefix(name, "fig")) {
	case "1":
		return Fig1(p)
	case "2":
		return Fig2(p)
	case "3":
		return Fig3(p)
	case "4":
		return Fig4(p)
	case "5":
		return Fig5(p)
	default:
		return nil, fmt.Errorf("experiments: unknown figure %q (want 1..5)", name)
	}
}
