package experiments

import (
	"math"
	"strings"
	"testing"
)

// tiny keeps the harness tests fast: the full-scale behaviour is recorded
// in EXPERIMENTS.md from cmd/edgesim runs.
func tiny() Params {
	return Params{Users: 5, Horizon: 4, Reps: 1, Cases: 2, Seed: 77}
}

func TestFig1MatchesPaperNumbers(t *testing.T) {
	res, err := Fig1(Params{})
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		label, name string
		want        float64
		tol         float64
	}{
		{"example-a", "offline-opt", 9.6, 1e-6},
		{"example-a", "online-greedy", 11.5, 0.05},
		{"example-b", "offline-opt", 9.5, 1e-6},
		{"example-b", "online-greedy", 11.3, 0.05},
	}
	for _, c := range checks {
		cell, ok := res.Cell(c.label, c.name)
		if !ok {
			t.Fatalf("missing cell %s/%s", c.label, c.name)
		}
		if math.Abs(cell.Stats.Mean-c.want) > c.tol {
			t.Errorf("%s/%s = %g, want %g±%g", c.label, c.name, cell.Stats.Mean, c.want, c.tol)
		}
	}
	// The paper's algorithm must beat greedy on example (a).
	ap, _ := res.Cell("example-a", "online-approx")
	gr, _ := res.Cell("example-a", "online-greedy")
	if ap.Stats.Mean >= gr.Stats.Mean {
		t.Errorf("approx %g not better than greedy %g on example (a)", ap.Stats.Mean, gr.Stats.Mean)
	}
}

func TestFig2SmokeAndOrdering(t *testing.T) {
	res, err := Fig2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	for _, row := range res.Rows {
		if len(row.Cells) != 5 {
			t.Fatalf("row %s has %d cells, want 5", row.Label, len(row.Cells))
		}
		for _, c := range row.Cells {
			// Ratios are normalized by a near-optimal denominator; allow a
			// small undercut from the denominator's smoothing slack.
			if c.Stats.Mean < 0.98 {
				t.Errorf("%s/%s ratio %g < 0.98 — offline denominator broken",
					row.Label, c.Name, c.Stats.Mean)
			}
			if c.Stats.Mean > 50 {
				t.Errorf("%s/%s ratio %g implausibly large", row.Label, c.Name, c.Stats.Mean)
			}
		}
		// stat-opt optimizes the whole static cost; the paper's ordering
		// within the atomistic group puts it at or below oper-opt on total
		// cost in nearly every case — here we only require online-approx
		// to be no worse than the worst atomistic algorithm.
		ap, _ := res.Cell(row.Label, "online-approx")
		worst := 0.0
		for _, n := range []string{"perf-opt", "oper-opt", "stat-opt"} {
			if c, ok := res.Cell(row.Label, n); ok && c.Stats.Mean > worst {
				worst = c.Stats.Mean
			}
		}
		if ap.Stats.Mean > worst+1e-9 {
			t.Errorf("%s: online-approx %g worse than the worst atomistic %g",
				row.Label, ap.Stats.Mean, worst)
		}
	}
}

func TestFig4EpsilonRows(t *testing.T) {
	p := tiny()
	p.Reps = 1
	res, err := Fig4(p)
	if err != nil {
		t.Fatal(err)
	}
	var epsRows, muRows int
	for _, row := range res.Rows {
		switch {
		case strings.HasPrefix(row.Label, "eps="):
			epsRows++
		case strings.HasPrefix(row.Label, "mu="):
			muRows++
		}
	}
	if epsRows != 7 || muRows != 7 {
		t.Errorf("eps rows %d, mu rows %d; want 7 and 7", epsRows, muRows)
	}
}

func TestFig5UserSweep(t *testing.T) {
	p := tiny()
	res, err := Fig5(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 scaled user counts", len(res.Rows))
	}
	for _, row := range res.Rows {
		if _, ok := res.Cell(row.Label, "online-approx"); !ok {
			t.Errorf("row %s missing online-approx", row.Label)
		}
		if _, ok := res.Cell(row.Label, "online-greedy"); !ok {
			t.Errorf("row %s missing online-greedy", row.Label)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("fig1", Params{}); err != nil {
		t.Errorf("ByName(fig1): %v", err)
	}
	if _, err := ByName("9", Params{}); err == nil {
		t.Error("ByName accepted unknown figure")
	}
}

func TestWriteTableRendering(t *testing.T) {
	res, err := Fig1(Params{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.WriteTable(&sb)
	out := sb.String()
	for _, want := range []string{"Fig 1", "example-a", "example-b", "online-greedy", "9.6"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
