package experiments

import (
	"math"
	"strings"
	"testing"

	"edgealloc/internal/sim"
)

func fakeResult() *Result {
	one := func(v float64) sim.Stats { return sim.Summarize([]float64{v}) }
	return &Result{
		Figure: "Fig X",
		Rows: []Row{
			{Label: "case-1", Cells: []Cell{
				{Name: "online-approx", Stats: one(1.1)},
				{Name: "online-greedy", Stats: one(1.5)},
				{Name: "oper-opt", Stats: one(3.0)},
				{Name: "stat-opt", Stats: one(2.0)},
			}},
			{Label: "case-2", Cells: []Cell{
				{Name: "online-approx", Stats: one(1.2)},
				{Name: "online-greedy", Stats: one(2.4)},
				{Name: "perf-opt", Stats: one(4.8)},
			}},
			{Label: "no-approx-row", Cells: []Cell{
				{Name: "online-greedy", Stats: one(1.3)},
			}},
		},
	}
}

func TestSummarizeClaims(t *testing.T) {
	c := SummarizeClaims(fakeResult(), nil)
	if c.Rows != 2 {
		t.Fatalf("Rows = %d, want 2 (row without approx skipped)", c.Rows)
	}
	if math.Abs(c.ApproxMeanRatio-1.15) > 1e-12 {
		t.Errorf("ApproxMeanRatio = %g, want 1.15", c.ApproxMeanRatio)
	}
	if math.Abs(c.MaxReductionVsAtomistic-4.0) > 1e-12 {
		t.Errorf("MaxReductionVsAtomistic = %g, want 4 (4.8/1.2)", c.MaxReductionVsAtomistic)
	}
	if math.Abs(c.MaxImprovementOverGreedy-0.5) > 1e-12 {
		t.Errorf("MaxImprovementOverGreedy = %g, want 0.5 (1-1.2/2.4)", c.MaxImprovementOverGreedy)
	}
	s := c.String()
	for _, want := range []string{"1.150", "4.00x", "50%", "2 rows"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSummarizeClaimsEmpty(t *testing.T) {
	c := SummarizeClaims()
	if c.Rows != 0 || c.ApproxMeanRatio != 0 {
		t.Errorf("empty claims = %+v", c)
	}
}
