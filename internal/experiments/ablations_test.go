package experiments

import (
	"strings"
	"testing"
)

func TestAblationAdversarialShape(t *testing.T) {
	res, err := AblationAdversarial()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 spike values", len(res.Rows))
	}
	prev := 0.0
	for _, row := range res.Rows {
		ap, ok := res.Cell(row.Label, "online-approx")
		if !ok {
			t.Fatalf("row %s missing online-approx", row.Label)
		}
		bound, ok := res.Cell(row.Label, "theorem-2-bound")
		if !ok {
			t.Fatalf("row %s missing theorem-2-bound", row.Label)
		}
		if ap.Stats.Mean < 1-1e-9 || ap.Stats.Mean > bound.Stats.Mean {
			t.Errorf("%s: ratio %g outside [1, bound %g]", row.Label, ap.Stats.Mean, bound.Stats.Mean)
		}
		// The family is calibrated so stress grows with the spike.
		if ap.Stats.Mean < prev-0.05 {
			t.Errorf("%s: ratio %g fell sharply from %g — family not monotone in stress",
				row.Label, ap.Stats.Mean, prev)
		}
		prev = ap.Stats.Mean
	}
}

func TestAblationLookaheadTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solve ablation")
	}
	p := Params{Users: 4, Horizon: 3, Reps: 1, Seed: 61}
	res, err := AblationLookahead(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // windows 1, 2, 3 fit a 3-slot horizon
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
	for _, row := range res.Rows {
		la, ok := res.Cell(row.Label, "lookahead")
		if !ok {
			t.Fatalf("row %s missing lookahead cell", row.Label)
		}
		if la.Stats.Mean < 0.97 || la.Stats.Mean > 3 {
			t.Errorf("%s: implausible ratio %g", row.Label, la.Stats.Mean)
		}
	}
}

func TestAblationRegularizerTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solve ablation")
	}
	p := Params{Users: 4, Horizon: 3, Reps: 1, Seed: 62}
	res, err := AblationRegularizer(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 mu values", len(res.Rows))
	}
	for _, row := range res.Rows {
		for _, name := range []string{"online-approx", "online-proximal"} {
			if _, ok := res.Cell(row.Label, name); !ok {
				t.Errorf("row %s missing %s", row.Label, name)
			}
		}
	}
}

func TestAblationByName(t *testing.T) {
	if _, err := AblationByName("bogus", Params{}); err == nil ||
		!strings.Contains(err.Error(), "unknown ablation") {
		t.Errorf("AblationByName accepted bogus study (err=%v)", err)
	}
}
