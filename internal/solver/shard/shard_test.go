package shard

import "testing"

func TestRangeLen(t *testing.T) {
	if got := (Range{Lo: 3, Hi: 9}).Len(); got != 6 {
		t.Fatalf("Len = %d, want 6", got)
	}
	if got := (Range{Lo: 4, Hi: 4}).Len(); got != 0 {
		t.Fatalf("empty Len = %d, want 0", got)
	}
}

// TestPartitionEdgeCases pins the clamping and balance rules: contiguous
// cover, sizes differing by at most one, S clamped into [1, J] (with the
// J = 0 degenerate case yielding one empty shard).
func TestPartitionEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		J, S      int
		wantLen   int
		wantSizes []int // nil = check balance generically
	}{
		{"S=1 takes everything", 7, 1, 1, []int{7}},
		{"even split", 8, 4, 4, []int{2, 2, 2, 2}},
		{"uneven split", 10, 3, 3, []int{3, 3, 4}},
		{"uneven split small", 5, 2, 2, []int{2, 3}},
		{"S=J singleton shards", 4, 4, 4, []int{1, 1, 1, 1}},
		{"S>J clamps to J", 3, 64, 3, []int{1, 1, 1}},
		{"S=0 clamps to 1", 5, 0, 1, []int{5}},
		{"S negative clamps to 1", 5, -2, 1, []int{5}},
		{"J=0 single empty shard", 0, 3, 1, []int{0}},
		{"J=0 S=0", 0, 0, 1, []int{0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Partition(tc.J, tc.S)
			if len(got) != tc.wantLen {
				t.Fatalf("Partition(%d, %d) = %v: %d shards, want %d",
					tc.J, tc.S, got, len(got), tc.wantLen)
			}
			// Contiguous cover of [0, J).
			if got[0].Lo != 0 || got[len(got)-1].Hi != tc.J {
				t.Fatalf("Partition(%d, %d) = %v does not cover [0, %d)",
					tc.J, tc.S, got, tc.J)
			}
			for s := 1; s < len(got); s++ {
				if got[s].Lo != got[s-1].Hi {
					t.Fatalf("Partition(%d, %d) = %v has a gap before shard %d",
						tc.J, tc.S, got, s)
				}
			}
			for s, r := range got {
				if r.Len() != tc.wantSizes[s] {
					t.Fatalf("Partition(%d, %d) = %v: shard %d has %d users, want %d",
						tc.J, tc.S, got, s, r.Len(), tc.wantSizes[s])
				}
			}
		})
	}
}

// TestPartitionBalancedAndReproducible sweeps (J, S) combinations for the
// generic invariants: cover, monotone bounds, |size_a − size_b| ≤ 1, and
// value-identity across calls (the cross-process placement contract).
func TestPartitionBalancedAndReproducible(t *testing.T) {
	for J := 0; J <= 40; J++ {
		for S := 1; S <= 12; S++ {
			a := Partition(J, S)
			minLen, maxLen := J, 0
			total := 0
			for _, r := range a {
				if r.Lo < 0 || r.Hi > J || r.Lo > r.Hi {
					t.Fatalf("Partition(%d, %d): bad range %+v", J, S, r)
				}
				total += r.Len()
				if r.Len() < minLen {
					minLen = r.Len()
				}
				if r.Len() > maxLen {
					maxLen = r.Len()
				}
			}
			if total != J {
				t.Fatalf("Partition(%d, %d) covers %d users", J, S, total)
			}
			if len(a) > 0 && maxLen-minLen > 1 {
				t.Fatalf("Partition(%d, %d) = %v: sizes differ by %d", J, S, a, maxLen-minLen)
			}
			b := Partition(J, S)
			for s := range a {
				if a[s] != b[s] {
					t.Fatalf("Partition(%d, %d) not reproducible: %v vs %v", J, S, a, b)
				}
			}
		}
	}
}
