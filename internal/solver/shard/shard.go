// Package shard implements the user-sharded dual-decomposition layer of
// the per-slot program P2 (DESIGN.md §7e). P2's objective and constraints
// couple users only through the I-dimensional vector of per-cloud totals
// X_i = Σ_j x_ij: the static and migration terms and the demand rows are
// separable per user, while the reconfiguration regularizer φ_i(X_i), the
// complement rows Σ_{k≠i} X_k ≥ (Λ−C_i)⁺, and the capacity rows
// X_i ≤ C_i read only the totals. Splitting the J users into S shards
// therefore splits P2 into S independent subproblems tied together by one
// small consensus program:
//
//	minimize   Σ_s f_s(x^s) + g(Σ_s T^s(x^s))
//	subject to demand rows and x ≥ 0 inside each shard,
//
// where T^s(x^s) ∈ R^I are shard s's cloud totals, f_s collects its
// users' static and migration-entropy terms, and g(Z) = Σ_i φ_i(Z_i) plus
// the indicator of the complement/capacity rows on Z.
//
// The Coordinator runs the scaled sharing-ADMM of Boyd et al. (§7.3) on
// this split. Each outer iteration:
//
//  1. x-step: every shard minimizes f_s(x^s) + (ρ/2)·Σ_i (T_i^s(x^s) −
//     c_i^s)² over its demand rows, in parallel, warm-started from its
//     previous iterate; the targets c^s = T^s + (Z − X̂)/S − u differ
//     across shards only by their own previous totals.
//  2. z-step: one I-dimensional solve of g(Z) + (ρ/2S)·‖Z − (X̂+S·u)‖²
//     under the complement/capacity rows, using the same structured
//     group kernels (an I×1 grid) and a warm ALM workspace. Its row
//     multipliers converge to the complement (ρ'_i) and capacity (ν'_i)
//     duals of the full program.
//  3. price update: u ← u + (X̂ − Z)/S. The per-cloud capacity price
//     every shard trades against is π = ρ·u; at a fixed point each
//     shard's penalty gradient equals π, which together with the z-step's
//     stationarity reproduces the full problem's KKT system (the same
//     identity the candidate-set pricing pass of internal/core consumes).
//
// Termination is dual-certified: the loop stops when the consensus
// residual max_i |X̂_i − Z_i|/(1+|X̂_i|) — which bounds the assembled
// schedule's capacity violation, because Z is feasible for the capacity
// rows by construction — and the z-iterate movement (the ADMM dual
// residual) both fall under their tolerances.
//
// Determinism: shard solves within an iteration are independent and
// their totals reduce in shard index order, so results are byte-identical
// for any Options.Workers value; the whole loop is a pure function of its
// inputs, so repeated runs are bitwise reproducible for any shard count.
package shard

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/par"
)

// Range is one shard's contiguous user interval [Lo, Hi).
type Range struct{ Lo, Hi int }

// Len returns the number of users in the shard.
func (r Range) Len() int { return r.Hi - r.Lo }

// Partition splits J users into min(S, J) contiguous shards whose sizes
// differ by at most one, in ascending user order. The split is a pure
// function of (J, S), so a partition is reproducible across processes —
// the property that lets shards later live on separate edged replicas.
func Partition(J, S int) []Range {
	if S > J {
		S = J
	}
	if S < 1 {
		S = 1
	}
	out := make([]Range, S)
	for s := 0; s < S; s++ {
		out[s] = Range{Lo: s * J / S, Hi: (s + 1) * J / S}
	}
	return out
}

// Block is one shard's local subproblem, implemented by the caller. A
// Block owns its packed variables, demand rows, objective state, and warm
// iterate; the Coordinator only ever talks to it through per-cloud
// totals and the consensus penalty.
type Block interface {
	// Solve minimizes the block's local objective plus the consensus
	// penalty (rho/2)·Σ_i (T_i(x) − target_i)² from the block's retained
	// warm state, retains the solution as the next warm state, and writes
	// the solution's per-cloud totals into totals (length I). It reports
	// the ALM outer and FISTA inner iteration counts of the solve.
	Solve(rho float64, target, totals []float64) (outer, inner int, err error)

	// WarmTotalsInto writes the per-cloud totals of the block's current
	// warm point — the state a Solve would start from.
	WarmTotalsInto(totals []float64)
}

// Coupling is the data of the coordination (cloud-total) problem: the
// reconfiguration regularizer φ_i(Z_i) = RcFac_i·((Z_i+ε₁)·ln((Z_i+ε₁)/
// (PrevTot_i+ε₁)) − Z_i) and the complement/capacity row geometry. The
// slices are retained, not copied: callers rebind PrevTot's contents at
// every slot (the previous decision's totals change) without rebuilding
// the coordinator.
type Coupling struct {
	RcFac    []float64 // per-cloud wRc·c_i/η_i
	PrevTot  []float64 // X'_i, rebound per slot by the caller
	Eps1     float64
	Capacity []float64 // C_i: capacity rows Z_i ≤ C_i
	ComplRHS []float64 // (Λ−C_i)⁺: complement rows Σ_{k≠i} Z_k ≥ RHS_i
}

// Options tunes the coordination loop. Zero values select defaults.
type Options struct {
	// Rho is the ADMM consensus penalty (default 4). Larger values pin
	// shards to their targets and slow consensus movement; smaller values
	// enforce the coupling weakly. The price each shard trades against is
	// ρ·u, so ρ also scales how fast prices move per iteration.
	Rho float64
	// MaxIters bounds coordination iterations per Solve (default 60).
	MaxIters int
	// PrimalTol is the consensus-residual tolerance max_i |X̂_i − Z_i| /
	// (1+|X̂_i|) (default 1e-8). Because Z satisfies the capacity rows by
	// construction, the primal residual bounds the assembled schedule's
	// relative capacity violation.
	PrimalTol float64
	// DualTol is the tolerance on the ADMM dual residual
	// (ρ/S)·max_i |Z_i − Z_i^prev| / (1+|Z_i|) (default 1e-6). The
	// normalization is by the consensus variable's own scale: totals are
	// O(capacity) while prices are O(gradient), so a price-relative
	// measure would read block-budget jitter as permanent non-convergence
	// under throughput-tuned (inexact) block solves.
	DualTol float64
	// Workers bounds concurrently solving blocks (<= 1 solves serially).
	// Totals reduce in shard index order, so results are byte-identical
	// for any value.
	Workers int
	// Solver is the ALM budget of the I-dimensional z-step. Zero fields
	// take defaults sized for the tiny program (MaxOuter 40, InnerIters
	// 300, FeasTol 1e-9, DualTol 1e-7).
	Solver alm.Options
	// Ctx optionally cancels the loop between iterations and inside the
	// block/z solves; Solve then returns an error wrapping ctx.Err().
	Ctx context.Context
}

func (o Options) withDefaults() Options {
	if o.Rho <= 0 {
		o.Rho = 4
	}
	if o.MaxIters <= 0 {
		o.MaxIters = 60
	}
	if o.PrimalTol <= 0 {
		o.PrimalTol = 1e-8
	}
	if o.DualTol <= 0 {
		o.DualTol = 1e-6
	}
	if o.Solver.MaxOuter == 0 {
		o.Solver.MaxOuter = 40
	}
	if o.Solver.InnerIters == 0 {
		o.Solver.InnerIters = 300
	}
	if o.Solver.FeasTol == 0 {
		o.Solver.FeasTol = 1e-9
	}
	if o.Solver.DualTol == 0 {
		o.Solver.DualTol = 1e-7
	}
	return o
}

// Result reports one slot's coordination outcome. The slices alias
// coordinator scratch and are only valid until the next Solve.
type Result struct {
	// Iters is the number of coordination (outer dual-ascent) iterations.
	Iters int
	// Converged reports whether both residual tolerances were met.
	Converged bool
	// MaxResidual is the final consensus residual — the bound on the
	// assembled schedule's relative capacity violation.
	MaxResidual float64
	// Totals are the assembled per-cloud totals X̂ = Σ_s T^s.
	Totals []float64
	// RhoDuals and NuDuals are the converged multipliers of the
	// complement and capacity rows, in the same per-cloud order the
	// unsharded solve records them.
	RhoDuals, NuDuals []float64
	// Prices are the per-cloud coordination prices π = ρ·u at exit.
	Prices []float64
	// BlockSeconds is each block's cumulative solve wall-time.
	BlockSeconds []float64
	// BlockOuter and BlockInner sum the shards' ALM outer and FISTA
	// inner iterations; ZOuter and ZInner count the z-step's.
	BlockOuter, BlockInner int
	ZOuter, ZInner         int
}

// Coordinator runs the sharing-ADMM loop over a fixed set of blocks.
// Warm state (prices, z-iterate, z duals) persists across slots through
// the BeginSlot/Solve/CommitSlot protocol: BeginSlot copies the warm
// state into working buffers, Solve (possibly several rounds, when the
// caller's pricing pass expands candidate sets between rounds) advances
// the working state, and CommitSlot promotes it. A slot aborted before
// CommitSlot — a cancelled context — leaves the warm state exactly as
// the last committed slot wrote it, mirroring the unsharded solver's
// cancellation contract. A Coordinator must not be shared between
// goroutines.
type Coordinator struct {
	nI     int
	blocks []Block
	cpl    Coupling
	opts   Options

	// Committed warm state (promoted by CommitSlot).
	uWarm     []float64
	zWarm     []float64
	zDualWarm []float64
	hasWarm   bool

	// Working state (seeded by BeginSlot).
	u, z, zPrev []float64
	zDuals      []float64

	totals  []float64 // S×I per-block totals
	xbar    []float64 // assembled totals X̂
	target  []float64 // S×I x-step targets
	v       []float64 // z-step prox center X̂ + S·u
	secs    []float64 // per-block cumulative solve seconds
	outerS  []int     // per-block ALM outers (reduced in index order)
	innerS  []int
	errS    []error
	prices  []float64
	zobj    zObjective
	zgroups alm.Groups
	zlower  []float64
	zws     alm.Workspace
	res     Result
}

// NewCoordinator builds a coordinator over the blocks. The Coupling
// slices are retained (see Coupling); opts.Ctx may be replaced per slot
// via Solve's context parameter.
func NewCoordinator(nI int, blocks []Block, cpl Coupling, opts Options) *Coordinator {
	opts = opts.withDefaults()
	S := len(blocks)
	c := &Coordinator{
		nI:        nI,
		blocks:    blocks,
		cpl:       cpl,
		opts:      opts,
		uWarm:     make([]float64, nI),
		zWarm:     make([]float64, nI),
		zDualWarm: make([]float64, 2*nI),
		u:         make([]float64, nI),
		z:         make([]float64, nI),
		zPrev:     make([]float64, nI),
		zDuals:    make([]float64, 2*nI),
		totals:    make([]float64, S*nI),
		xbar:      make([]float64, nI),
		target:    make([]float64, S*nI),
		v:         make([]float64, nI),
		secs:      make([]float64, S),
		outerS:    make([]int, S),
		innerS:    make([]int, S),
		errS:      make([]error, S),
		prices:    make([]float64, nI),
		zlower:    make([]float64, nI),
	}
	// The z program is an I×1 grid, so the complement and capacity rows
	// reuse the structured group kernels: row i of the grid is Z_i.
	rows := make([]alm.GroupRow, 0, 2*nI)
	for i := 0; i < nI; i++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupComplement, Index: i, RHS: cpl.ComplRHS[i]})
	}
	for i := 0; i < nI; i++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupCloudSumNeg, Index: i, RHS: -cpl.Capacity[i]})
	}
	c.zgroups = alm.Groups{I: nI, J: 1, Blocks: 1, Rows: rows}
	c.zobj = zObjective{cpl: &c.cpl, v: c.v}
	return c
}

// BeginSlot seeds the working price/consensus state from the committed
// warm state (zeros before the first committed slot).
func (c *Coordinator) BeginSlot() {
	copy(c.u, c.uWarm)
	copy(c.zDuals, c.zDualWarm)
	copy(c.z, c.zWarm)
}

// CommitSlot promotes the working state to the committed warm state; the
// next BeginSlot starts from it.
func (c *Coordinator) CommitSlot() {
	copy(c.uWarm, c.u)
	copy(c.zDualWarm, c.zDuals)
	copy(c.zWarm, c.z)
	c.hasWarm = true
}

// Solve runs the coordination loop between BeginSlot and CommitSlot. The
// ctx parameter overrides Options.Ctx for this call (nil keeps it).
// Repeated Solve calls within one slot (the caller's candidate-expansion
// rounds) resume from the working state.
func (c *Coordinator) Solve(ctx context.Context) (*Result, error) {
	if ctx == nil {
		ctx = c.opts.Ctx
	}
	S := len(c.blocks)
	nI := c.nI
	fS := float64(S)
	rho := c.opts.Rho

	res := &c.res
	*res = Result{
		Totals:       c.xbar,
		RhoDuals:     c.zDuals[:nI],
		NuDuals:      c.zDuals[nI : 2*nI],
		Prices:       c.prices,
		BlockSeconds: c.secs,
	}
	for s := range c.secs {
		c.secs[s] = 0
	}

	// Warm totals and an initial feasible z-iterate: the z-step before
	// the first x-step projects the warm totals onto the capacity/
	// complement-feasible set under the current prices, so iteration 1's
	// targets already point every shard at a feasible consensus.
	for s, b := range c.blocks {
		b.WarmTotalsInto(c.totals[s*nI : (s+1)*nI])
	}
	c.assemble()
	if err := c.zStep(ctx, fS, res); err != nil {
		return nil, err
	}

	maxRes := math.Inf(1)
	for iter := 0; iter < c.opts.MaxIters; iter++ {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("shard: aborted at coordination iteration %d: %w", iter, err)
			}
		}
		res.Iters++

		// x-step: targets c^s = T^s + (Z − X̂)/S − u, shards in parallel.
		for s := 0; s < S; s++ {
			tg := c.target[s*nI : (s+1)*nI]
			tt := c.totals[s*nI : (s+1)*nI]
			for i := 0; i < nI; i++ {
				tg[i] = tt[i] + (c.z[i]-c.xbar[i])/fS - c.u[i]
			}
		}
		w := c.opts.Workers
		if w > S {
			w = S
		}
		if w < 1 {
			w = 1
		}
		par.Ranges(w, S, func(lo, hi int) {
			for s := lo; s < hi; s++ {
				start := time.Now()
				outer, inner, err := c.blocks[s].Solve(rho,
					c.target[s*nI:(s+1)*nI], c.totals[s*nI:(s+1)*nI])
				c.secs[s] += time.Since(start).Seconds()
				c.outerS[s], c.innerS[s], c.errS[s] = outer, inner, err
			}
		})
		for s := 0; s < S; s++ {
			if err := c.errS[s]; err != nil {
				return nil, fmt.Errorf("shard %d: %w", s, err)
			}
			res.BlockOuter += c.outerS[s]
			res.BlockInner += c.innerS[s]
		}
		c.assemble()

		// z-step on the assembled totals, then the price update.
		copy(c.zPrev, c.z)
		if err := c.zStep(ctx, fS, res); err != nil {
			return nil, err
		}
		primal, dual := 0.0, 0.0
		for i := 0; i < nI; i++ {
			c.u[i] += (c.xbar[i] - c.z[i]) / fS
			c.prices[i] = rho * c.u[i]
			if r := math.Abs(c.xbar[i]-c.z[i]) / (1 + math.Abs(c.xbar[i])); r > primal {
				primal = r
			}
			if d := rho / fS * math.Abs(c.z[i]-c.zPrev[i]) / (1 + math.Abs(c.z[i])); d > dual {
				dual = d
			}
		}
		maxRes = primal
		if primal <= c.opts.PrimalTol && dual <= c.opts.DualTol {
			res.Converged = true
			break
		}
	}
	res.MaxResidual = maxRes
	return res, nil
}

// assemble reduces the per-block totals into X̂ in shard index order.
func (c *Coordinator) assemble() {
	nI := c.nI
	for i := 0; i < nI; i++ {
		c.xbar[i] = 0
	}
	for s := range c.blocks {
		tt := c.totals[s*nI : (s+1)*nI]
		for i := 0; i < nI; i++ {
			c.xbar[i] += tt[i]
		}
	}
}

// zStep solves the I-dimensional consensus program
// min Σ_i φ_i(Z_i) + (ρ/2S)·‖Z − (X̂ + S·u)‖² under the complement and
// capacity rows, warm from the working z-iterate and duals.
func (c *Coordinator) zStep(ctx context.Context, fS float64, res *Result) error {
	nI := c.nI
	for i := 0; i < nI; i++ {
		c.v[i] = c.xbar[i] + fS*c.u[i]
	}
	c.zobj.rhoOverS = c.opts.Rho / fS
	prob := alm.Problem{Obj: &c.zobj, N: nI, Lower: c.zlower, Groups: &c.zgroups}
	sopts := c.opts.Solver
	sopts.Workspace = &c.zws
	sopts.Ctx = ctx
	sopts.WarmX = c.z
	sopts.WarmDuals = c.zDuals
	r, err := alm.Solve(&prob, sopts)
	if err != nil {
		return fmt.Errorf("shard: consensus z-step: %w", err)
	}
	copy(c.z, r.X)
	copy(c.zDuals, r.Duals)
	res.ZOuter += r.Outer
	res.ZInner += r.InnerIters
	return nil
}

// zObjective is the smooth part of the z-step: the reconfiguration
// regularizer on the per-cloud totals plus the ADMM proximal term.
type zObjective struct {
	cpl      *Coupling
	v        []float64 // prox center, rewritten by zStep per call
	rhoOverS float64
}

// Eval implements fista.Objective.
func (o *zObjective) Eval(x, grad []float64) float64 {
	cpl := o.cpl
	f := 0.0
	for i, z := range x {
		lg := math.Log((z + cpl.Eps1) / (cpl.PrevTot[i] + cpl.Eps1))
		d := z - o.v[i]
		f += cpl.RcFac[i]*((z+cpl.Eps1)*lg-z) + 0.5*o.rhoOverS*d*d
		if grad != nil {
			grad[i] = cpl.RcFac[i]*lg + o.rhoOverS*d
		}
	}
	return f
}
