package transport

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgealloc/internal/solver/simplex"
)

func TestSolveTextbookInstance(t *testing.T) {
	// Same instance as the simplex package's transportation test.
	p := &Problem{
		Cost:   [][]float64{{2, 3, 1}, {5, 4, 8}},
		Supply: []float64{20, 30},
		Demand: []float64{10, 25, 15},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	// Optimal plan: s1 ships 5 to d1 and 15 to d3, s2 ships 5 to d1 and
	// 25 to d2: cost 2*5+1*15+5*5+4*25 = 150.
	if math.Abs(sol.Objective-150) > 1e-9 {
		t.Errorf("objective = %g, want 150", sol.Objective)
	}
}

func TestSolveZeroDemand(t *testing.T) {
	p := &Problem{
		Cost:   [][]float64{{1, 2}},
		Supply: []float64{5},
		Demand: []float64{0, 0},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 0 || sol.Augmentations != 0 {
		t.Errorf("objective = %g, augment = %d, want 0, 0", sol.Objective, sol.Augmentations)
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		Cost:   [][]float64{{1}},
		Supply: []float64{2},
		Demand: []float64{3},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveMalformed(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{"row count", Problem{Cost: [][]float64{{1}}, Supply: []float64{1, 2}, Demand: []float64{1}}},
		{"row width", Problem{Cost: [][]float64{{1, 2}}, Supply: []float64{1}, Demand: []float64{1}}},
		{"negative cost", Problem{Cost: [][]float64{{-1}}, Supply: []float64{1}, Demand: []float64{1}}},
		{"NaN cost", Problem{Cost: [][]float64{{math.NaN()}}, Supply: []float64{1}, Demand: []float64{1}}},
		{"negative supply", Problem{Cost: [][]float64{{1}}, Supply: []float64{-1}, Demand: []float64{1}}},
		{"negative demand", Problem{Cost: [][]float64{{1}}, Supply: []float64{1}, Demand: []float64{-1}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(&tt.p); !errors.Is(err, ErrBadProblem) {
				t.Errorf("err = %v, want ErrBadProblem", err)
			}
		})
	}
}

func TestSolveSingleSourcePicksCheapest(t *testing.T) {
	// One demand, several sources with spare capacity: all flow goes to
	// the cheapest source.
	p := &Problem{
		Cost:   [][]float64{{4}, {1}, {7}},
		Supply: []float64{10, 10, 10},
		Demand: []float64{6},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Flow[1][0] != 6 || sol.Objective != 6 {
		t.Errorf("flow = %v, objective = %g; want all 6 units on source 1", sol.Flow, sol.Objective)
	}
}

func TestSolveForcedSplit(t *testing.T) {
	// Cheapest source cannot carry the whole demand: flow must split.
	p := &Problem{
		Cost:   [][]float64{{1}, {5}},
		Supply: []float64{4, 10},
		Demand: []float64{9},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	want := 1*4.0 + 5*5.0
	if math.Abs(sol.Objective-want) > 1e-9 {
		t.Errorf("objective = %g, want %g", sol.Objective, want)
	}
}

func checkFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	for i := range p.Supply {
		used := 0.0
		for j := range p.Demand {
			if sol.Flow[i][j] < 0 {
				t.Errorf("flow[%d][%d] = %g negative", i, j, sol.Flow[i][j])
			}
			used += sol.Flow[i][j]
		}
		if used > p.Supply[i]+1e-9 {
			t.Errorf("supply %d overused: %g > %g", i, used, p.Supply[i])
		}
	}
	for j := range p.Demand {
		served := 0.0
		for i := range p.Supply {
			served += sol.Flow[i][j]
		}
		if served < p.Demand[j]-1e-9 {
			t.Errorf("demand %d unserved: %g < %g", j, served, p.Demand[j])
		}
	}
}

// TestSolveAgreesWithSimplex is the main correctness property: on random
// feasible instances the flow solver must match the exact LP optimum.
func TestSolveAgreesWithSimplex(t *testing.T) {
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(5))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nI := 1 + rng.Intn(5)
		nJ := 1 + rng.Intn(6)
		p := &Problem{
			Cost:   make([][]float64, nI),
			Supply: make([]float64, nI),
			Demand: make([]float64, nJ),
		}
		totalDemand := 0.0
		for j := range p.Demand {
			p.Demand[j] = 4 * rng.Float64()
			totalDemand += p.Demand[j]
		}
		// Guarantee feasibility: total supply = 1.25 × total demand.
		share := make([]float64, nI)
		sum := 0.0
		for i := range share {
			share[i] = 0.1 + rng.Float64()
			sum += share[i]
		}
		for i := range p.Supply {
			p.Supply[i] = 1.25 * totalDemand * share[i] / sum
		}
		for i := range p.Cost {
			p.Cost[i] = make([]float64, nJ)
			for j := range p.Cost[i] {
				p.Cost[i][j] = 10 * rng.Float64()
			}
		}
		sol, err := Solve(p)
		if err != nil {
			return false
		}

		// Exact LP: variables x_ij row-major.
		lp := &simplex.Problem{C: make([]float64, nI*nJ)}
		for i := 0; i < nI; i++ {
			for j := 0; j < nJ; j++ {
				lp.C[i*nJ+j] = p.Cost[i][j]
			}
		}
		for i := 0; i < nI; i++ {
			row := make([]float64, nI*nJ)
			for j := 0; j < nJ; j++ {
				row[i*nJ+j] = 1
			}
			lp.Cons = append(lp.Cons, simplex.Constraint{Coeffs: row, Sense: simplex.LE, RHS: p.Supply[i]})
		}
		for j := 0; j < nJ; j++ {
			row := make([]float64, nI*nJ)
			for i := 0; i < nI; i++ {
				row[i*nJ+j] = 1
			}
			lp.Cons = append(lp.Cons, simplex.Constraint{Coeffs: row, Sense: simplex.GE, RHS: p.Demand[j]})
		}
		exact, err := simplex.Solve(lp)
		if err != nil || exact.Status != simplex.Optimal {
			return false
		}
		return math.Abs(sol.Objective-exact.Objective) <= 1e-6*(1+math.Abs(exact.Objective))
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSolveMedium(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const nI, nJ = 15, 120
	p := &Problem{
		Cost:   make([][]float64, nI),
		Supply: make([]float64, nI),
		Demand: make([]float64, nJ),
	}
	total := 0.0
	for j := range p.Demand {
		p.Demand[j] = 1 + rng.Float64()
		total += p.Demand[j]
	}
	for i := range p.Supply {
		p.Supply[i] = 1.25 * total / nI
		p.Cost[i] = make([]float64, nJ)
		for j := range p.Cost[i] {
			p.Cost[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}
