package transport

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/solver/simplex"
)

// TestSolvePotentialMaintenance forces many augmentation rounds through
// residual back-arcs: a chain where early cheap choices must be partially
// undone. Classic regression for Johnson-potential bookkeeping.
func TestSolvePotentialMaintenance(t *testing.T) {
	// Source 0 is cheap for both sinks but can only cover one; the
	// optimum must split against the initial greedy shortest path.
	p := &Problem{
		Cost: [][]float64{
			{1, 1},
			{2, 10},
		},
		Supply: []float64{1, 2},
		Demand: []float64{1, 1},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	// Optimal: s0 covers d1 (cost 1), s1 covers d0 (cost 2): total 3.
	if math.Abs(sol.Objective-3) > 1e-9 {
		t.Errorf("objective = %g, want 3", sol.Objective)
	}
}

func TestSolveTinyDemandsManySources(t *testing.T) {
	// Fractional demands far below unit scale.
	p := &Problem{
		Cost:   [][]float64{{5}, {4}, {3}, {2}, {1}},
		Supply: []float64{1e-3, 1e-3, 1e-3, 1e-3, 1e-3},
		Demand: []float64{3.5e-3},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	// Fill cheapest first: 1,2,3 full + half of 4.
	want := 1e-3*(1+2+3) + 0.5e-3*4
	if math.Abs(sol.Objective-want) > 1e-12 {
		t.Errorf("objective = %g, want %g", sol.Objective, want)
	}
}

func TestSolveZeroCostTies(t *testing.T) {
	// All-zero costs: any feasible plan is optimal; must terminate.
	p := &Problem{
		Cost:   [][]float64{{0, 0}, {0, 0}},
		Supply: []float64{2, 2},
		Demand: []float64{1.5, 1.5},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
}

// TestSolveLargeRandomAgainstSimplex is a heavier single cross-check at
// the scale the atomistic algorithms actually use per slot.
func TestSolveLargeRandomAgainstSimplex(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const nI, nJ = 8, 15
	p := &Problem{
		Cost:   make([][]float64, nI),
		Supply: make([]float64, nI),
		Demand: make([]float64, nJ),
	}
	total := 0.0
	for j := range p.Demand {
		p.Demand[j] = 1 + float64(rng.Intn(5))
		total += p.Demand[j]
	}
	for i := range p.Supply {
		p.Supply[i] = 1.25 * total / nI
		p.Cost[i] = make([]float64, nJ)
		for j := range p.Cost[i] {
			p.Cost[i][j] = rng.Float64() * 3
		}
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	checkFeasible(t, p, sol)

	lp := &simplex.Problem{C: make([]float64, nI*nJ)}
	for i := 0; i < nI; i++ {
		for j := 0; j < nJ; j++ {
			lp.C[i*nJ+j] = p.Cost[i][j]
		}
	}
	for i := 0; i < nI; i++ {
		row := make([]float64, nI*nJ)
		for j := 0; j < nJ; j++ {
			row[i*nJ+j] = 1
		}
		lp.Cons = append(lp.Cons, simplex.Constraint{Coeffs: row, Sense: simplex.LE, RHS: p.Supply[i]})
	}
	for j := 0; j < nJ; j++ {
		row := make([]float64, nI*nJ)
		for i := 0; i < nI; i++ {
			row[i*nJ+j] = 1
		}
		lp.Cons = append(lp.Cons, simplex.Constraint{Coeffs: row, Sense: simplex.GE, RHS: p.Demand[j]})
	}
	exact, err := simplex.Solve(lp)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Status != simplex.Optimal {
		t.Fatalf("LP status %v", exact.Status)
	}
	if math.Abs(sol.Objective-exact.Objective) > 1e-8*(1+exact.Objective) {
		t.Errorf("flow %g != LP %g", sol.Objective, exact.Objective)
	}
}
