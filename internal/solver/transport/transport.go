// Package transport solves the bipartite transportation problem
//
//	minimize    Σ_ij cost[i][j]·x[i][j]
//	subject to  Σ_j x[i][j] ≤ supply[i]   for every source i
//	            Σ_i x[i][j] ≥ demand[j]   for every sink j
//	            x ≥ 0,
//
// exactly, via successive shortest augmenting paths with Johnson potentials
// on the residual network. All costs must be nonnegative, which holds for
// every use in this repository (operation prices and delays).
//
// The per-slot subproblems of the paper's "atomistic" baselines
// (perf-opt, oper-opt, stat-opt — §V-B) are exactly transportation
// problems, so this solver gives them exact vertex solutions much faster
// than a general LP solve.
package transport

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a transportation instance.
type Problem struct {
	// Cost is the I×J matrix of unit shipping costs, all ≥ 0.
	Cost [][]float64
	// Supply is the capacity of each of the I sources.
	Supply []float64
	// Demand is the requirement of each of the J sinks.
	Demand []float64
}

// Solution is an optimal flow.
type Solution struct {
	// Flow is the I×J optimal shipment matrix.
	Flow [][]float64
	// Objective is Σ cost·flow.
	Objective float64
	// Augmentations counts shortest-path rounds used.
	Augmentations int
}

// Errors returned by Solve.
var (
	ErrInfeasible = errors.New("transport: total demand exceeds reachable supply")
	ErrBadProblem = errors.New("transport: malformed problem")
)

const eps = 1e-12

// Solve computes an exact optimal transportation plan.
func Solve(p *Problem) (*Solution, error) {
	nI := len(p.Supply)
	nJ := len(p.Demand)
	if len(p.Cost) != nI {
		return nil, fmt.Errorf("%w: %d cost rows for %d supplies", ErrBadProblem, len(p.Cost), nI)
	}
	for i, row := range p.Cost {
		if len(row) != nJ {
			return nil, fmt.Errorf("%w: cost row %d has %d entries for %d demands",
				ErrBadProblem, i, len(row), nJ)
		}
		for j, c := range row {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return nil, fmt.Errorf("%w: cost[%d][%d] = %g", ErrBadProblem, i, j, c)
			}
		}
	}
	for i, s := range p.Supply {
		if s < 0 {
			return nil, fmt.Errorf("%w: supply[%d] = %g", ErrBadProblem, i, s)
		}
	}
	for j, d := range p.Demand {
		if d < 0 {
			return nil, fmt.Errorf("%w: demand[%d] = %g", ErrBadProblem, j, d)
		}
	}

	// Node layout: 0 = source, 1..nI = supplies, nI+1..nI+nJ = demands,
	// n-1 = sink.
	n := nI + nJ + 2
	src, snk := 0, n-1
	supNode := func(i int) int { return 1 + i }
	demNode := func(j int) int { return 1 + nI + j }

	flow := make([][]float64, nI) // flow on supply->demand arcs
	for i := range flow {
		flow[i] = make([]float64, nJ)
	}
	supUsed := make([]float64, nI)
	demServed := make([]float64, nJ)

	remaining := 0.0
	for _, d := range p.Demand {
		remaining += d
	}

	pi := make([]float64, n)   // Johnson potentials
	dist := make([]float64, n) // Dijkstra labels
	prev := make([]int, n)     // predecessor node (-1 = none)
	done := make([]bool, n)

	sol := &Solution{Flow: flow}
	for remaining > eps {
		// Dijkstra on the residual network with reduced costs.
		for v := range dist {
			dist[v] = math.Inf(1)
			prev[v] = -1
			done[v] = false
		}
		dist[src] = 0
		for {
			u, best := -1, math.Inf(1)
			for v := 0; v < n; v++ {
				if !done[v] && dist[v] < best {
					u, best = v, dist[v]
				}
			}
			if u < 0 {
				break
			}
			done[u] = true
			switch {
			case u == src:
				for i := 0; i < nI; i++ {
					if p.Supply[i]-supUsed[i] > eps {
						relax(dist, prev, pi, u, supNode(i), 0)
					}
				}
			case u <= nI: // supply node
				i := u - 1
				for j := 0; j < nJ; j++ {
					relax(dist, prev, pi, u, demNode(j), p.Cost[i][j])
				}
			case u < snk: // demand node
				j := u - nI - 1
				if p.Demand[j]-demServed[j] > eps {
					relax(dist, prev, pi, u, snk, 0)
				}
				for i := 0; i < nI; i++ {
					if flow[i][j] > eps { // residual back-arc demand->supply
						relax(dist, prev, pi, u, supNode(i), -p.Cost[i][j])
					}
				}
			}
		}
		if math.IsInf(dist[snk], 1) {
			return nil, fmt.Errorf("%w: %g units unserved", ErrInfeasible, remaining)
		}

		// Bottleneck along the path.
		amt := remaining
		for v := snk; v != src; v = prev[v] {
			u := prev[v]
			var cap float64
			switch {
			case u == src:
				cap = p.Supply[v-1] - supUsed[v-1]
			case v == snk:
				cap = p.Demand[u-nI-1] - demServed[u-nI-1]
			case u <= nI: // forward supply->demand arc, uncapacitated
				cap = math.Inf(1)
			default: // back arc demand->supply: limited by current flow
				cap = flow[v-1][u-nI-1]
			}
			if cap < amt {
				amt = cap
			}
		}
		if amt <= eps {
			return nil, errors.New("transport: degenerate zero augmentation (numerical failure)")
		}

		// Apply the augmentation.
		for v := snk; v != src; v = prev[v] {
			u := prev[v]
			switch {
			case u == src:
				supUsed[v-1] += amt
			case v == snk:
				demServed[u-nI-1] += amt
			case u <= nI:
				flow[u-1][v-nI-1] += amt
			default:
				flow[v-1][u-nI-1] -= amt
			}
		}
		remaining -= amt
		sol.Augmentations++

		// Update potentials for the next round.
		for v := 0; v < n; v++ {
			if !math.IsInf(dist[v], 1) {
				pi[v] += dist[v]
			}
		}
	}

	for i := 0; i < nI; i++ {
		for j := 0; j < nJ; j++ {
			if flow[i][j] < eps {
				flow[i][j] = 0
				continue
			}
			sol.Objective += p.Cost[i][j] * flow[i][j]
		}
	}
	return sol, nil
}

// relax performs one Dijkstra edge relaxation with Johnson-reduced cost
// cost + pi[u] − pi[v], which is nonnegative once potentials are valid.
func relax(dist []float64, prev []int, pi []float64, u, v int, cost float64) {
	rc := cost + pi[u] - pi[v]
	if rc < 0 {
		// Tiny negatives from float round-off are clamped; large ones
		// would indicate a potential-maintenance bug and are clamped too,
		// which only costs optimality by the clamped amount (covered by
		// the cross-check tests against the simplex solver).
		rc = 0
	}
	if d := dist[u] + rc; d < dist[v] {
		dist[v] = d
		prev[v] = u
	}
}
