package alm

import (
	"math"
	"math/rand"
	"testing"
)

// denseFromGroups materializes the generic sparse-row form of a
// structured row set — the reference semantics the kernel must match.
func denseFromGroups(g *Groups) []Constraint {
	nI, nJ := g.I, g.J
	nIJ := nI * nJ
	cons := make([]Constraint, 0, len(g.Rows))
	for _, r := range g.Rows {
		off := r.Block * nIJ
		var idx []int
		var coef []float64
		switch r.Kind {
		case GroupUserSum:
			for i := 0; i < nI; i++ {
				idx = append(idx, off+i*nJ+r.Index)
				coef = append(coef, 1)
			}
		case GroupCloudSumNeg:
			for j := 0; j < nJ; j++ {
				idx = append(idx, off+r.Index*nJ+j)
				coef = append(coef, -1)
			}
		case GroupComplement:
			for k := 0; k < nI; k++ {
				if k == r.Index {
					continue
				}
				for j := 0; j < nJ; j++ {
					idx = append(idx, off+k*nJ+j)
					coef = append(coef, 1)
				}
			}
		}
		cons = append(cons, Constraint{Idx: idx, Coeffs: coef, RHS: r.RHS})
	}
	return cons
}

// randomGroups builds a random P2-shaped structured row set: per block,
// a demand row per user plus a random subset of complement and capacity
// rows, in that order.
func randomGroups(rng *rand.Rand) *Groups {
	g := &Groups{
		I:      2 + rng.Intn(5),
		J:      2 + rng.Intn(7),
		Blocks: 1 + rng.Intn(3),
	}
	for b := 0; b < g.Blocks; b++ {
		for j := 0; j < g.J; j++ {
			g.Rows = append(g.Rows, GroupRow{
				Block: b, Kind: GroupUserSum, Index: j, RHS: 0.2 + rng.Float64()})
		}
		for i := 0; i < g.I; i++ {
			if rng.Intn(2) == 0 {
				g.Rows = append(g.Rows, GroupRow{
					Block: b, Kind: GroupComplement, Index: i, RHS: rng.Float64()})
			}
		}
		for i := 0; i < g.I; i++ {
			g.Rows = append(g.Rows, GroupRow{
				Block: b, Kind: GroupCloudSumNeg, Index: i,
				RHS: -(float64(g.J)*0.6 + 2*rng.Float64())})
		}
	}
	return g
}

// quad returns a strongly convex separable quadratic Σ c_k (x_k − a_k)²
// with deterministic pseudo-random curvature.
func quadObj(n int, rng *rand.Rand) *struct {
	c, a []float64
} {
	q := &struct{ c, a []float64 }{make([]float64, n), make([]float64, n)}
	for k := 0; k < n; k++ {
		q.c[k] = 0.5 + rng.Float64()
		q.a[k] = 2 * rng.Float64()
	}
	return q
}

// TestGroupsLagrangianMatchesDense is the kernel property test: on
// randomized P2-shaped row sets and random primal/dual points, the
// structured Lagrangian must agree with the dense-row reference on the
// objective value, the full gradient, and every row activity (slack) to
// 1e-10.
func TestGroupsLagrangianMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		g := randomGroups(rng)
		n := g.Blocks * g.I * g.J
		if err := g.validate(n); err != nil {
			t.Fatal(err)
		}
		cons := denseFromGroups(g)
		q := quadObj(n, rng)
		obj := func(x, grad []float64) float64 {
			f := 0.0
			for k := range x {
				d := x[k] - q.a[k]
				f += q.c[k] * d * d
				if grad != nil {
					grad[k] = 2 * q.c[k] * d
				}
			}
			return f
		}

		x := make([]float64, n)
		for k := range x {
			x[k] = 3 * rng.Float64()
		}
		m := len(g.Rows)
		y := make([]float64, m)
		for k := range y {
			y[k] = 2 * rng.Float64()
		}
		rho := 0.5 + 4*rng.Float64()

		pg := &Problem{Obj: objFunc(obj), N: n, Groups: g}
		pd := &Problem{Obj: objFunc(obj), N: n, Cons: cons}
		var wsg, wsd Workspace
		wsg.ensure(n, m)
		wsg.gs.ensure(g)
		wsd.ensure(n, m)

		// Row activities (slacks are RHS − ax; ax agreement implies both).
		pg.axInto(x, wsg.ax, &wsg.gs, 1)
		pd.axInto(x, wsd.ax, &wsd.gs, 1)
		for k := range wsg.ax {
			if d := math.Abs(wsg.ax[k] - wsd.ax[k]); d > 1e-10 {
				t.Fatalf("trial %d row %d (%+v): ax %g vs dense %g (diff %g)",
					trial, k, g.Rows[k], wsg.ax[k], wsd.ax[k], d)
			}
		}

		lg := &lagrangian{p: pg, y: y, rho: rho, ws: &wsg, workers: 1}
		ld := &lagrangian{p: pd, y: y, rho: rho, ws: &wsd, workers: 1}
		gradG := make([]float64, n)
		gradD := make([]float64, n)
		fg := lg.Eval(x, gradG)
		fd := ld.Eval(x, gradD)
		if d := math.Abs(fg-fd) / (1 + math.Abs(fd)); d > 1e-10 {
			t.Fatalf("trial %d: Lagrangian value %g vs dense %g (rel diff %g)", trial, fg, fd, d)
		}
		for k := range gradG {
			if d := math.Abs(gradG[k] - gradD[k]); d > 1e-10*(1+math.Abs(gradD[k])) {
				t.Fatalf("trial %d: grad[%d] = %g vs dense %g", trial, k, gradG[k], gradD[k])
			}
		}
	}
}

// objFunc adapts a closure to fista.Objective without importing fista in
// the test body.
type objFunc func(x, grad []float64) float64

func (f objFunc) Eval(x, grad []float64) float64 { return f(x, grad) }

// TestGroupsSolveDualsMatchDense runs the full augmented-Lagrangian loop
// on randomized strongly convex programs with both row representations
// and requires the converged primal points and dual multipliers to agree.
func TestGroupsSolveDualsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomGroups(rng)
		n := g.Blocks * g.I * g.J
		cons := denseFromGroups(g)
		q := quadObj(n, rng)
		obj := objFunc(func(x, grad []float64) float64 {
			f := 0.0
			for k := range x {
				d := x[k] - q.a[k]
				f += q.c[k] * d * d
				if grad != nil {
					grad[k] = 2 * q.c[k] * d
				}
			}
			return f
		})
		lower := make([]float64, n)
		opts := Options{MaxOuter: 200}

		rg, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Groups: g}, opts)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Cons: cons}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.Converged || !rd.Converged {
			t.Fatalf("trial %d: converged structured=%v dense=%v (viol %g / %g)",
				trial, rg.Converged, rd.Converged, rg.MaxViolation, rd.MaxViolation)
		}
		if d := math.Abs(rg.Objective-rd.Objective) / (1 + math.Abs(rd.Objective)); d > 1e-6 {
			t.Errorf("trial %d: objective %g vs dense %g", trial, rg.Objective, rd.Objective)
		}
		for k := range rg.X {
			if d := math.Abs(rg.X[k] - rd.X[k]); d > 1e-5 {
				t.Errorf("trial %d: x[%d] = %g vs dense %g", trial, k, rg.X[k], rd.X[k])
			}
		}
		for k := range rg.Duals {
			if d := math.Abs(rg.Duals[k] - rd.Duals[k]); d > 1e-4*(1+math.Abs(rd.Duals[k])) {
				t.Errorf("trial %d: dual[%d] = %g vs dense %g", trial, k, rg.Duals[k], rd.Duals[k])
			}
		}
	}
}

// TestGroupsParallelByteIdentical pins the determinism contract of the
// structured kernels: with the parallel grain forced down so every pass
// actually fans out, Solve must produce bitwise-identical primal and dual
// vectors for any worker count.
func TestGroupsParallelByteIdentical(t *testing.T) {
	old := parGrain
	parGrain = 1
	defer func() { parGrain = old }()

	rng := rand.New(rand.NewSource(11))
	g := randomGroups(rng)
	n := g.Blocks * g.I * g.J
	q := quadObj(n, rng)
	obj := objFunc(func(x, grad []float64) float64 {
		f := 0.0
		for k := range x {
			d := x[k] - q.a[k]
			f += q.c[k] * d * d
			if grad != nil {
				grad[k] = 2 * q.c[k] * d
			}
		}
		return f
	})
	lower := make([]float64, n)
	solve := func(workers int) *Result {
		res, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Groups: g},
			Options{MaxOuter: 60, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := *res
		out.X = append([]float64(nil), res.X...)
		out.Duals = append([]float64(nil), res.Duals...)
		return &out
	}
	base := solve(1)
	for _, w := range []int{2, 3, 8} {
		got := solve(w)
		for k := range base.X {
			if got.X[k] != base.X[k] {
				t.Fatalf("workers=%d: X[%d] = %v != serial %v", w, k, got.X[k], base.X[k])
			}
		}
		for k := range base.Duals {
			if got.Duals[k] != base.Duals[k] {
				t.Fatalf("workers=%d: dual[%d] = %v != serial %v", w, k, got.Duals[k], base.Duals[k])
			}
		}
	}
}
