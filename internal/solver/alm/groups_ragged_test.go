package alm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomRagged builds a random ragged CSR layout over an I×J grid with a
// P2-shaped row set (demand per user, a random subset of complement rows,
// capacity per cloud). Every user gets at least one candidate cloud so
// demand rows are satisfiable.
func randomRagged(rng *rand.Rand) *Groups {
	g := &Groups{
		I:      2 + rng.Intn(5),
		J:      2 + rng.Intn(7),
		Blocks: 1,
	}
	member := make([][]bool, g.I)
	for i := range member {
		member[i] = make([]bool, g.J)
	}
	for j := 0; j < g.J; j++ {
		member[rng.Intn(g.I)][j] = true // cover every user
		for i := 0; i < g.I; i++ {
			if rng.Float64() < 0.4 {
				member[i][j] = true
			}
		}
	}
	for i := 0; i < g.I; i++ {
		member[i][rng.Intn(g.J)] = true // cover every cloud: complement
		// rows over a grid with empty cloud rows are near-infeasible
	}
	g.RowPtr = make([]int, g.I+1)
	for i := 0; i < g.I; i++ {
		g.RowPtr[i+1] = g.RowPtr[i]
		for j := 0; j < g.J; j++ {
			if member[i][j] {
				g.Cols = append(g.Cols, j)
				g.RowPtr[i+1]++
			}
		}
	}
	for j := 0; j < g.J; j++ {
		g.Rows = append(g.Rows, GroupRow{Kind: GroupUserSum, Index: j, RHS: 0.2 + rng.Float64()})
	}
	for i := 0; i < g.I; i++ {
		if rng.Intn(2) == 0 {
			g.Rows = append(g.Rows, GroupRow{Kind: GroupComplement, Index: i, RHS: rng.Float64()})
		}
	}
	for i := 0; i < g.I; i++ {
		g.Rows = append(g.Rows, GroupRow{Kind: GroupCloudSumNeg, Index: i,
			RHS: -(float64(g.J)*0.6 + 2*rng.Float64())})
	}
	return g
}

// consFromRagged materializes the generic sparse-row reference of a
// ragged row set over the packed variable space.
func consFromRagged(g *Groups) []Constraint {
	n := g.RowPtr[g.I]
	cons := make([]Constraint, 0, len(g.Rows))
	for _, r := range g.Rows {
		var idx []int
		var coef []float64
		switch r.Kind {
		case GroupUserSum:
			for k, j := range g.Cols {
				if j == r.Index {
					idx = append(idx, k)
					coef = append(coef, 1)
				}
			}
		case GroupCloudSumNeg:
			for k := g.RowPtr[r.Index]; k < g.RowPtr[r.Index+1]; k++ {
				idx = append(idx, k)
				coef = append(coef, -1)
			}
		case GroupComplement:
			for k := 0; k < n; k++ {
				if k >= g.RowPtr[r.Index] && k < g.RowPtr[r.Index+1] {
					continue
				}
				idx = append(idx, k)
				coef = append(coef, 1)
			}
		}
		cons = append(cons, Constraint{Idx: idx, Coeffs: coef, RHS: r.RHS})
	}
	return cons
}

// TestRaggedLagrangianMatchesCons is the ragged-kernel property test: on
// random CSR layouts and random primal/dual points, the structured
// Lagrangian must agree with the sparse-row reference on the value, the
// gradient, and every row activity to 1e-10.
func TestRaggedLagrangianMatchesCons(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 200; trial++ {
		g := randomRagged(rng)
		n := g.RowPtr[g.I]
		if err := g.validate(n); err != nil {
			t.Fatal(err)
		}
		cons := consFromRagged(g)
		q := quadObj(n, rng)
		obj := objFunc(func(x, grad []float64) float64 {
			f := 0.0
			for k := range x {
				d := x[k] - q.a[k]
				f += q.c[k] * d * d
				if grad != nil {
					grad[k] = 2 * q.c[k] * d
				}
			}
			return f
		})

		x := make([]float64, n)
		for k := range x {
			x[k] = 3 * rng.Float64()
		}
		m := len(g.Rows)
		y := make([]float64, m)
		for k := range y {
			y[k] = 2 * rng.Float64()
		}
		rho := 0.5 + 4*rng.Float64()

		pg := &Problem{Obj: obj, N: n, Groups: g}
		pd := &Problem{Obj: obj, N: n, Cons: cons}
		var wsg, wsd Workspace
		wsg.ensure(n, m)
		wsg.gs.ensure(g)
		wsd.ensure(n, m)

		pg.axInto(x, wsg.ax, &wsg.gs, 1)
		pd.axInto(x, wsd.ax, &wsd.gs, 1)
		for k := range wsg.ax {
			if d := math.Abs(wsg.ax[k] - wsd.ax[k]); d > 1e-10 {
				t.Fatalf("trial %d row %d (%+v): ax %g vs cons %g",
					trial, k, g.Rows[k], wsg.ax[k], wsd.ax[k])
			}
		}

		lg := &lagrangian{p: pg, y: y, rho: rho, ws: &wsg, workers: 1}
		ld := &lagrangian{p: pd, y: y, rho: rho, ws: &wsd, workers: 1}
		gradG := make([]float64, n)
		gradD := make([]float64, n)
		fg := lg.Eval(x, gradG)
		fd := ld.Eval(x, gradD)
		if d := math.Abs(fg-fd) / (1 + math.Abs(fd)); d > 1e-10 {
			t.Fatalf("trial %d: Lagrangian %g vs cons %g", trial, fg, fd)
		}
		for k := range gradG {
			if d := math.Abs(gradG[k] - gradD[k]); d > 1e-10*(1+math.Abs(gradD[k])) {
				t.Fatalf("trial %d: grad[%d] = %g vs cons %g", trial, k, gradG[k], gradD[k])
			}
		}
	}
}

// TestRaggedSolveMatchesCons runs the full loop on random ragged programs
// with both row representations and requires the converged primal points
// and duals to agree.
func TestRaggedSolveMatchesCons(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		g := randomRagged(rng)
		n := g.RowPtr[g.I]
		cons := consFromRagged(g)
		q := quadObj(n, rng)
		obj := objFunc(func(x, grad []float64) float64 {
			f := 0.0
			for k := range x {
				d := x[k] - q.a[k]
				f += q.c[k] * d * d
				if grad != nil {
					grad[k] = 2 * q.c[k] * d
				}
			}
			return f
		})
		lower := make([]float64, n)
		opts := Options{MaxOuter: 200}

		rg, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Groups: g}, opts)
		if err != nil {
			t.Fatal(err)
		}
		rd, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Cons: cons}, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.Converged || !rd.Converged {
			t.Fatalf("trial %d: converged ragged=%v cons=%v", trial, rg.Converged, rd.Converged)
		}
		if d := math.Abs(rg.Objective-rd.Objective) / (1 + math.Abs(rd.Objective)); d > 1e-6 {
			t.Errorf("trial %d: objective %g vs cons %g", trial, rg.Objective, rd.Objective)
		}
		for k := range rg.X {
			if d := math.Abs(rg.X[k] - rd.X[k]); d > 1e-5 {
				t.Errorf("trial %d: x[%d] = %g vs cons %g", trial, k, rg.X[k], rd.X[k])
			}
		}
		for k := range rg.Duals {
			if d := math.Abs(rg.Duals[k] - rd.Duals[k]); d > 1e-4*(1+math.Abs(rd.Duals[k])) {
				t.Errorf("trial %d: dual[%d] = %g vs cons %g", trial, k, rg.Duals[k], rd.Duals[k])
			}
		}
	}
}

// TestRaggedParallelByteIdentical pins the determinism contract on the
// ragged kernels: with the gating grain forced down, Solve must produce
// bitwise-identical primal and dual vectors for any worker count.
func TestRaggedParallelByteIdentical(t *testing.T) {
	old := parGrain
	parGrain = 1
	defer func() { parGrain = old }()

	rng := rand.New(rand.NewSource(29))
	g := randomRagged(rng)
	n := g.RowPtr[g.I]
	q := quadObj(n, rng)
	obj := objFunc(func(x, grad []float64) float64 {
		f := 0.0
		for k := range x {
			d := x[k] - q.a[k]
			f += q.c[k] * d * d
			if grad != nil {
				grad[k] = 2 * q.c[k] * d
			}
		}
		return f
	})
	lower := make([]float64, n)
	solve := func(workers int) *Result {
		res, err := Solve(&Problem{Obj: obj, N: n, Lower: lower, Groups: g},
			Options{MaxOuter: 60, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		out := *res
		out.X = append([]float64(nil), res.X...)
		out.Duals = append([]float64(nil), res.Duals...)
		return &out
	}
	base := solve(1)
	for _, w := range []int{2, 3, 8} {
		got := solve(w)
		for k := range base.X {
			if got.X[k] != base.X[k] {
				t.Fatalf("workers=%d: X[%d] = %v != serial %v", w, k, got.X[k], base.X[k])
			}
		}
		for k := range base.Duals {
			if got.Duals[k] != base.Duals[k] {
				t.Fatalf("workers=%d: dual[%d] = %v != serial %v", w, k, got.Duals[k], base.Duals[k])
			}
		}
	}
}

// TestRaggedValidateRejectsBadLayouts exercises the CSR geometry checks.
func TestRaggedValidateRejectsBadLayouts(t *testing.T) {
	base := func() *Groups {
		return &Groups{I: 2, J: 3, Blocks: 1,
			RowPtr: []int{0, 2, 4}, Cols: []int{0, 1, 1, 2},
			Rows: []GroupRow{{Kind: GroupUserSum, Index: 0, RHS: 1}}}
	}
	if err := base().validate(4); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Groups)
		n    int
	}{
		{"blocks", func(g *Groups) { g.Blocks = 2 }, 4},
		{"rowptr-len", func(g *Groups) { g.RowPtr = []int{0, 4} }, 4},
		{"rowptr-first", func(g *Groups) { g.RowPtr[0] = 1 }, 4},
		{"rowptr-decreasing", func(g *Groups) { g.RowPtr[1] = 3; g.RowPtr[2] = 2 }, 4},
		{"n-mismatch", func(g *Groups) {}, 5},
		{"cols-range", func(g *Groups) { g.Cols[3] = 3 }, 4},
	}
	for _, tc := range cases {
		g := base()
		tc.mut(g)
		if err := g.validate(tc.n); !errors.Is(err, ErrBadProblem) {
			t.Errorf("%s: validate = %v, want ErrBadProblem", tc.name, err)
		}
	}
}
