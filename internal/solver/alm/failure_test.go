package alm

import (
	"math"
	"testing"
)

// TestSolveInfeasibleReportsViolation injects contradictory constraints:
// the solver must not report convergence and must surface the residual
// violation instead of silently returning a bogus "solution".
func TestSolveInfeasibleReportsViolation(t *testing.T) {
	// x <= 1 (as -x >= -1) and x >= 3 cannot both hold.
	p := &Problem{
		Obj: linear([]float64{1}),
		N:   1,
		Cons: []Constraint{
			{Idx: []int{0}, Coeffs: []float64{-1}, RHS: -1},
			{Idx: []int{0}, Coeffs: []float64{1}, RHS: 3},
		},
		Lower: []float64{0},
	}
	res, err := Solve(p, Options{MaxOuter: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("reported convergence on an infeasible problem")
	}
	if res.MaxViolation < 0.1 {
		t.Errorf("MaxViolation = %g, want a substantial residual", res.MaxViolation)
	}
}

// TestSolveTightEqualityViaOpposedRows encodes x0 + x1 == 2 as a pair of
// opposing inequalities — the pattern the offline program uses for its
// hinge linearizations — and checks both multipliers settle.
func TestSolveTightEqualityViaOpposedRows(t *testing.T) {
	p := &Problem{
		Obj: linear([]float64{3, 1}),
		N:   2,
		Cons: []Constraint{
			{Idx: []int{0, 1}, Coeffs: []float64{1, 1}, RHS: 2},
			{Idx: []int{0, 1}, Coeffs: []float64{-1, -1}, RHS: -2},
		},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{MaxOuter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: violation %g", res.MaxViolation)
	}
	if math.Abs(res.X[0]) > 1e-4 || math.Abs(res.X[1]-2) > 1e-4 {
		t.Errorf("x = %v, want (0, 2)", res.X)
	}
	if math.Abs(res.Objective-2) > 1e-4 {
		t.Errorf("objective = %g, want 2", res.Objective)
	}
}

// TestSolveHugeScaleDifference mixes rows whose right-hand sides differ by
// four orders of magnitude, as the demand (λ≈1) and complement-capacity
// (Λ−C≈10³) rows of P2 do at full scale.
func TestSolveHugeScaleDifference(t *testing.T) {
	p := &Problem{
		Obj: linear([]float64{1, 1}),
		N:   2,
		Cons: []Constraint{
			{Idx: []int{0}, Coeffs: []float64{1}, RHS: 0.5},
			{Idx: []int{1}, Coeffs: []float64{1}, RHS: 5000},
		},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{MaxOuter: 150})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: violation %g", res.MaxViolation)
	}
	if math.Abs(res.X[0]-0.5) > 1e-3 || math.Abs(res.X[1]-5000) > 0.5 {
		t.Errorf("x = %v, want (0.5, 5000)", res.X)
	}
}

// TestSolveZeroObjective exercises the pure-feasibility case.
func TestSolveZeroObjective(t *testing.T) {
	p := &Problem{
		Obj:   linear([]float64{0, 0}),
		N:     2,
		Cons:  []Constraint{{Idx: []int{0, 1}, Coeffs: []float64{1, 1}, RHS: 1}},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.X[0]+res.X[1] < 1-1e-6 {
		t.Errorf("constraint unmet: %v", res.X)
	}
}
