package alm

import "edgealloc/internal/solver/par"

// This file implements the structured group-sum constraint kernel. Every
// constraint row of the paper's programs P0–P3 is a *group sum* over an
// I×J allocation grid (possibly repeated over T slot blocks):
//
//   - demand rows sum a user's column:        Σ_i x_{ij} ≥ λ_j
//   - capacity rows sum a cloud's row:       −Σ_j x_{ij} ≥ −C_i
//   - complement rows sum everything but one
//     cloud's row:                    Σ_{k≠i} Σ_j x_{kj} ≥ (Λ−C_i)⁺
//
// Materialized as generic sparse rows (Constraint) the complement rows
// alone carry I·(I−1)·J nonzeros, so each augmented-Lagrangian evaluation
// costs O(I²·J). The structured form computes per-block cloud totals,
// user totals, and the block grand total once per evaluation — O(I·J) —
// and derives every row activity from them in O(1); the transpose-
// gradient contribution of all rows is fused into a single O(I·J) pass
// using per-cloud and per-user multiplier aggregates (a variable in cloud
// row i receives Σ_{i'≠i} m_{i'} = M − m_i from the complement rows).
//
// The heavy passes are threshold-gated parallel (see internal/solver/par)
// with per-slot result buffers reduced in index order, so results are
// byte-identical for any Options.Workers value.

// GroupKind enumerates the structured row shapes over one I×J block.
type GroupKind uint8

const (
	// GroupUserSum is a demand-style column sum: Σ_i x[off+i·J+Index] with
	// coefficient +1 (Index is a user j).
	GroupUserSum GroupKind = iota
	// GroupCloudSumNeg is a capacity-style negated row sum:
	// −Σ_j x[off+Index·J+j] (Index is a cloud i).
	GroupCloudSumNeg
	// GroupComplement is the paper's complement row: the block total minus
	// cloud Index's row sum, Σ_{k≠Index} Σ_j x[off+k·J+j], coefficient +1.
	GroupComplement
)

// GroupRow is one structured inequality row A_k·x ≥ RHS, where A_k is
// determined by (Block, Kind, Index). Rows carry no index or coefficient
// slices: their geometry is implicit, so a full constraint set is O(I+J)
// words per block instead of O(I²·J).
type GroupRow struct {
	// Block selects the slot block the row sums over (0 for single-slot
	// programs; the offline program has one block per slot).
	Block int
	// Kind selects the group shape.
	Kind GroupKind
	// Index is the user j (GroupUserSum) or cloud i (other kinds).
	Index int
	// RHS is the row's right-hand side b_k.
	RHS float64
}

// Groups is a structured constraint set over Blocks consecutive I×J
// variable blocks laid out x[b·I·J + i·J + j]. The k-th row of Rows owns
// the k-th dual multiplier in Result.Duals, exactly like Cons rows do.
// Rows must not be mutated during a Solve.
//
// Setting RowPtr/Cols switches the single-block grid to a ragged
// cloud-major subset (the candidate-set solving layer of the online
// algorithm): the variable vector then holds only the kept (i, j) pairs,
// cloud i's variables occupying x[RowPtr[i]:RowPtr[i+1]] with users
// Cols[k]. Row semantics are unchanged — a pruned pair simply contributes
// nothing to any sum — so the dual layout is identical to the dense
// grid's and multipliers warm-start across layouts.
type Groups struct {
	// I and J are the per-block grid dimensions (clouds × users).
	I, J int
	// Blocks is the number of consecutive blocks; Blocks·I·J must equal
	// Problem.N (dense layout only).
	Blocks int
	// Rows are the structured rows in dual order.
	Rows []GroupRow

	// RowPtr and Cols optionally restrict the grid to a ragged cloud-major
	// subset (CSR): len(RowPtr) = I+1, nondecreasing, and Cols[k] in
	// [0, J) is the user of packed variable k. Requires Blocks == 1 and
	// Problem.N = RowPtr[I] = len(Cols). Within each cloud row the users
	// must be in the storage order the caller packs x in; ascending order
	// makes the user-total accumulation order match the dense kernel's.
	RowPtr []int
	Cols   []int

	// hasUser/hasCompl are set during validation and skip the user-total
	// and complement passes when the corresponding kinds are absent.
	hasUser, hasCompl bool
}

// ragged reports whether the grid uses the CSR layout.
func (g *Groups) ragged() bool { return g.RowPtr != nil }

// NumRows returns the number of structured rows (the dual dimension).
func (g *Groups) NumRows() int { return len(g.Rows) }

// validate checks the geometry against n variables and caches the
// kind-presence flags.
func (g *Groups) validate(n int) error {
	if g.I <= 0 || g.J <= 0 || g.Blocks <= 0 {
		return errf("groups shape I=%d J=%d Blocks=%d must be positive", g.I, g.J, g.Blocks)
	}
	if g.ragged() {
		if g.Blocks != 1 {
			return errf("ragged groups require Blocks=1, have %d", g.Blocks)
		}
		if len(g.RowPtr) != g.I+1 || g.RowPtr[0] != 0 {
			return errf("ragged groups RowPtr len=%d first=%d, want len %d first 0",
				len(g.RowPtr), g.RowPtr[0], g.I+1)
		}
		for i := 0; i < g.I; i++ {
			if g.RowPtr[i+1] < g.RowPtr[i] {
				return errf("ragged groups RowPtr decreases at cloud %d", i)
			}
		}
		if g.RowPtr[g.I] != n || len(g.Cols) != n {
			return errf("ragged groups cover %d variables (len(Cols)=%d), problem has %d",
				g.RowPtr[g.I], len(g.Cols), n)
		}
		for k, j := range g.Cols {
			if j < 0 || j >= g.J {
				return errf("ragged groups Cols[%d]=%d out of [0,%d)", k, j, g.J)
			}
		}
	} else if g.Blocks*g.I*g.J != n {
		return errf("groups cover %d variables, problem has %d", g.Blocks*g.I*g.J, n)
	}
	g.hasUser, g.hasCompl = false, false
	for k, r := range g.Rows {
		if r.Block < 0 || r.Block >= g.Blocks {
			return errf("groups row %d references block %d of %d", k, r.Block, g.Blocks)
		}
		switch r.Kind {
		case GroupUserSum:
			if r.Index < 0 || r.Index >= g.J {
				return errf("groups row %d references user %d of %d", k, r.Index, g.J)
			}
			g.hasUser = true
		case GroupCloudSumNeg, GroupComplement:
			if r.Index < 0 || r.Index >= g.I {
				return errf("groups row %d references cloud %d of %d", k, r.Index, g.I)
			}
			if r.Kind == GroupComplement {
				g.hasCompl = true
			}
		default:
			return errf("groups row %d has unknown kind %d", k, r.Kind)
		}
	}
	return nil
}

// parGrain is the minimum number of grid variables per worker before the
// structured kernels go parallel; below it goroutine startup dominates.
// Overridable by tests to exercise the parallel paths on small problems.
var parGrain = 16384

// groupScratch holds the per-evaluation aggregates of the structured
// kernel, sized once per workspace.
type groupScratch struct {
	cloudTot []float64 // Blocks×I row sums
	userTot  []float64 // Blocks×J column sums
	blockTot []float64 // Blocks grand totals
	du       []float64 // Blocks×J summed demand multipliers
	dcap     []float64 // Blocks×I summed capacity multipliers
	dcomp    []float64 // Blocks×I summed complement multipliers
	complSum []float64 // Blocks complement multiplier totals
}

func (sc *groupScratch) ensure(g *Groups) {
	bi, bj, b := g.Blocks*g.I, g.Blocks*g.J, g.Blocks
	if cap(sc.cloudTot) < bi {
		sc.cloudTot = make([]float64, bi)
		sc.dcap = make([]float64, bi)
		sc.dcomp = make([]float64, bi)
	}
	sc.cloudTot, sc.dcap, sc.dcomp = sc.cloudTot[:bi], sc.dcap[:bi], sc.dcomp[:bi]
	if cap(sc.userTot) < bj {
		sc.userTot = make([]float64, bj)
		sc.du = make([]float64, bj)
	}
	sc.userTot, sc.du = sc.userTot[:bj], sc.du[:bj]
	if cap(sc.blockTot) < b {
		sc.blockTot = make([]float64, b)
		sc.complSum = make([]float64, b)
	}
	sc.blockTot, sc.complSum = sc.blockTot[:b], sc.complSum[:b]
}

// cloudTotRange fills sc.cloudTot for grid rows [lo, hi). Named (not a
// closure) so the serial path allocates nothing; the parallel path wraps
// it in a closure whose one allocation is amortized by the fan-out.
func (g *Groups) cloudTotRange(x []float64, sc *groupScratch, lo, hi int) {
	nJ := g.J
	for r := lo; r < hi; r++ {
		row := x[r*nJ : (r+1)*nJ]
		s := 0.0
		for _, v := range row {
			s += v
		}
		sc.cloudTot[r] = s
	}
}

// userTotRange fills sc.userTot for columns [lo, hi) of the Blocks×J
// column index space, summing each user's strided column in cloud order.
func (g *Groups) userTotRange(x []float64, sc *groupScratch, lo, hi int) {
	nJ := g.J
	nIJ := g.I * nJ
	for c := lo; c < hi; c++ {
		b, j := c/nJ, c%nJ
		s := 0.0
		for k := b*nIJ + j; k < (b+1)*nIJ; k += nJ {
			s += x[k]
		}
		sc.userTot[c] = s
	}
}

// cloudTotRaggedRange fills sc.cloudTot for ragged cloud rows [lo, hi).
func (g *Groups) cloudTotRaggedRange(x []float64, sc *groupScratch, lo, hi int) {
	for r := lo; r < hi; r++ {
		s := 0.0
		for _, v := range x[g.RowPtr[r]:g.RowPtr[r+1]] {
			s += v
		}
		sc.cloudTot[r] = s
	}
}

// axIntoRagged is the CSR-layout activity kernel: O(nnz) per call. The
// user-total scatter stays serial — columns of different cloud rows
// collide — but it accumulates each column in ascending cloud order, the
// same order as the dense kernels, and cloud rows still fan out.
func (g *Groups) axIntoRagged(x, ax []float64, sc *groupScratch, workers int) {
	nI := g.I
	if w := par.Bound(workers, len(x), parGrain); w <= 1 {
		g.cloudTotRaggedRange(x, sc, 0, nI)
	} else {
		par.Ranges(w, nI, func(lo, hi int) { g.cloudTotRaggedRange(x, sc, lo, hi) })
	}
	if g.hasUser {
		ut := sc.userTot[:g.J]
		for j := range ut {
			ut[j] = 0
		}
		for k, j := range g.Cols {
			ut[j] += x[k]
		}
	}
	if g.hasCompl {
		s := 0.0
		for _, v := range sc.cloudTot[:nI] {
			s += v
		}
		sc.blockTot[0] = s
	}
	for k, r := range g.Rows {
		switch r.Kind {
		case GroupUserSum:
			ax[k] = sc.userTot[r.Index]
		case GroupCloudSumNeg:
			ax[k] = -sc.cloudTot[r.Index]
		default: // GroupComplement
			ax[k] = sc.blockTot[0] - sc.cloudTot[r.Index]
		}
	}
}

// axInto writes every row activity A_k·x into ax from once-per-call
// totals: O(I·J) per block plus O(1) per row.
func (g *Groups) axInto(x, ax []float64, sc *groupScratch, workers int) {
	if g.ragged() {
		g.axIntoRagged(x, ax, sc, workers)
		return
	}
	nI, nJ := g.I, g.J
	rows := g.Blocks * nI
	if w := par.Bound(workers, rows*nJ, parGrain); w <= 1 {
		if g.hasUser {
			// Serial fused pass: the cloud and user totals read the same
			// grid, so one sweep fills both. Each userTot[j] accumulates
			// its column in ascending cloud order — the same order the
			// strided userTotRange sums — so the bits match the parallel
			// branch exactly.
			for c := range sc.userTot {
				sc.userTot[c] = 0
			}
			for r := 0; r < rows; r++ {
				row := x[r*nJ : (r+1)*nJ]
				ut := sc.userTot[(r/nI)*nJ : (r/nI+1)*nJ]
				s := 0.0
				for j, v := range row {
					s += v
					ut[j] += v
				}
				sc.cloudTot[r] = s
			}
		} else {
			g.cloudTotRange(x, sc, 0, rows)
		}
	} else {
		par.Ranges(w, rows, func(lo, hi int) { g.cloudTotRange(x, sc, lo, hi) })
		if g.hasUser {
			cols := g.Blocks * nJ
			par.Ranges(par.Bound(workers, g.Blocks*nI*nJ, parGrain), cols,
				func(lo, hi int) { g.userTotRange(x, sc, lo, hi) })
		}
	}
	if g.hasCompl {
		for b := 0; b < g.Blocks; b++ {
			s := 0.0
			for _, v := range sc.cloudTot[b*nI : (b+1)*nI] {
				s += v
			}
			sc.blockTot[b] = s
		}
	}
	for k, r := range g.Rows {
		switch r.Kind {
		case GroupUserSum:
			ax[k] = sc.userTot[r.Block*nJ+r.Index]
		case GroupCloudSumNeg:
			ax[k] = -sc.cloudTot[r.Block*nI+r.Index]
		default: // GroupComplement
			ax[k] = sc.blockTot[r.Block] - sc.cloudTot[r.Block*nI+r.Index]
		}
	}
}

// addGrad accumulates grad −= Σ_k mult[k]·A_k in one fused O(I·J) pass:
// the variable at (block b, cloud i, user j) receives
// dcap[b,i] − du[b,j] − (complSum[b] − dcomp[b,i]).
func (g *Groups) addGrad(mult, grad []float64, sc *groupScratch, workers int) {
	nI, nJ := g.I, g.J
	for k := range sc.du {
		sc.du[k] = 0
	}
	for k := range sc.dcap {
		sc.dcap[k] = 0
		sc.dcomp[k] = 0
	}
	for b := range sc.complSum {
		sc.complSum[b] = 0
	}
	for k, r := range g.Rows {
		m := mult[k]
		if m == 0 {
			continue
		}
		switch r.Kind {
		case GroupUserSum:
			sc.du[r.Block*nJ+r.Index] += m
		case GroupCloudSumNeg:
			sc.dcap[r.Block*nI+r.Index] += m
		default: // GroupComplement
			sc.dcomp[r.Block*nI+r.Index] += m
			sc.complSum[r.Block] += m
		}
	}
	if g.ragged() {
		if w := par.Bound(workers, len(grad), parGrain); w <= 1 {
			g.gradRaggedRange(grad, sc, 0, nI)
		} else {
			par.Ranges(w, nI, func(lo, hi int) { g.gradRaggedRange(grad, sc, lo, hi) })
		}
		return
	}
	rows := g.Blocks * nI
	if w := par.Bound(workers, rows*nJ, parGrain); w <= 1 {
		g.gradRange(grad, sc, 0, rows)
	} else {
		par.Ranges(w, rows, func(lo, hi int) { g.gradRange(grad, sc, lo, hi) })
	}
}

// gradRaggedRange applies the fused gradient pass to ragged cloud rows
// [lo, hi): packed variable k of cloud r receives
// dcap[r] − du[Cols[k]] − (complSum − dcomp[r]).
func (g *Groups) gradRaggedRange(grad []float64, sc *groupScratch, lo, hi int) {
	for r := lo; r < hi; r++ {
		rowAdd := sc.dcap[r] - (sc.complSum[0] - sc.dcomp[r])
		gi := grad[g.RowPtr[r]:g.RowPtr[r+1]]
		cols := g.Cols[g.RowPtr[r]:g.RowPtr[r+1]]
		if g.hasUser {
			if rowAdd == 0 {
				for k, j := range cols {
					gi[k] -= sc.du[j]
				}
			} else {
				for k, j := range cols {
					gi[k] += rowAdd - sc.du[j]
				}
			}
		} else if rowAdd != 0 {
			for k := range gi {
				gi[k] += rowAdd
			}
		}
	}
}

// gradRange applies the fused per-cloud-row gradient pass to grid rows
// [lo, hi); named so the serial path allocates nothing.
func (g *Groups) gradRange(grad []float64, sc *groupScratch, lo, hi int) {
	nI, nJ := g.I, g.J
	for r := lo; r < hi; r++ {
		b, i := r/nI, r%nI
		rowAdd := sc.dcap[b*nI+i] - (sc.complSum[b] - sc.dcomp[b*nI+i])
		gi := grad[r*nJ : (r+1)*nJ]
		if g.hasUser {
			du := sc.du[b*nJ : (b+1)*nJ]
			if rowAdd == 0 {
				for j := range gi {
					gi[j] -= du[j]
				}
			} else {
				for j := range gi {
					gi[j] += rowAdd - du[j]
				}
			}
		} else if rowAdd != 0 {
			for j := range gi {
				gi[j] += rowAdd
			}
		}
	}
}
