package alm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/simplex"
)

// linear builds a linear objective c·x.
func linear(c []float64) fista.Func {
	return func(x, grad []float64) float64 {
		f := 0.0
		for j := range x {
			f += c[j] * x[j]
			if grad != nil {
				grad[j] = c[j]
			}
		}
		return f
	}
}

func denseRow(coeffs []float64, rhs float64) Constraint {
	idx := make([]int, len(coeffs))
	for j := range idx {
		idx[j] = j
	}
	return Constraint{Idx: idx, Coeffs: coeffs, RHS: rhs}
}

func TestSolveSimpleLP(t *testing.T) {
	// min 2x + y s.t. x + y >= 3, x,y >= 0 → (0,3), objective 3.
	p := &Problem{
		Obj:   linear([]float64{2, 1}),
		N:     2,
		Cons:  []Constraint{denseRow([]float64{1, 1}, 3)},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Errorf("not converged, violation %g", res.MaxViolation)
	}
	if math.Abs(res.Objective-3) > 1e-5 {
		t.Errorf("objective = %g, want 3", res.Objective)
	}
	if math.Abs(res.X[0]) > 1e-4 || math.Abs(res.X[1]-3) > 1e-4 {
		t.Errorf("x = %v, want (0,3)", res.X)
	}
	// Dual of the single row is min(c) = 1 by LP duality.
	if math.Abs(res.Duals[0]-1) > 1e-4 {
		t.Errorf("dual = %g, want 1", res.Duals[0])
	}
}

func TestSolveProjectionQP(t *testing.T) {
	// min Σ (x_j - d_j)^2 s.t. Σ x_j >= b, x >= 0.
	// With d=(1,2) and b=5: ν solves Σ max(0, d_j + ν/2) = 5 → ν = 2,
	// x = (2,3).
	d := []float64{1, 2}
	obj := fista.Func(func(x, grad []float64) float64 {
		f := 0.0
		for j := range x {
			f += (x[j] - d[j]) * (x[j] - d[j])
			if grad != nil {
				grad[j] = 2 * (x[j] - d[j])
			}
		}
		return f
	})
	p := &Problem{
		Obj:   obj,
		N:     2,
		Cons:  []Constraint{denseRow([]float64{1, 1}, 5)},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-5 || math.Abs(res.X[1]-3) > 1e-5 {
		t.Errorf("x = %v, want (2,3)", res.X)
	}
	if math.Abs(res.Duals[0]-2) > 1e-4 {
		t.Errorf("dual = %g, want ν = 2", res.Duals[0])
	}
}

func TestSolveNoConstraints(t *testing.T) {
	obj := fista.Func(func(x, grad []float64) float64 {
		if grad != nil {
			grad[0] = 2*x[0] - 4
		}
		return x[0]*x[0] - 4*x[0]
	})
	res, err := Solve(&Problem{Obj: obj, N: 1, Lower: []float64{0}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-6 {
		t.Errorf("x = %g, want 2", res.X[0])
	}
}

func TestSolveWarmStartConsistency(t *testing.T) {
	p := &Problem{
		Obj:   linear([]float64{1, 3}),
		N:     2,
		Cons:  []Constraint{denseRow([]float64{1, 1}, 2)},
		Lower: []float64{0, 0},
	}
	cold, err := Solve(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(p, Options{WarmX: cold.X, WarmDuals: cold.Duals})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-6 {
		t.Errorf("warm objective %g != cold %g", warm.Objective, cold.Objective)
	}
	if warm.InnerIters > cold.InnerIters {
		t.Logf("warm start used more inner iterations (%d > %d) — acceptable but unusual",
			warm.InnerIters, cold.InnerIters)
	}
}

func TestSolveInputValidation(t *testing.T) {
	obj := linear([]float64{1})
	tests := []struct {
		name string
		p    *Problem
		opts Options
	}{
		{"zero N", &Problem{Obj: obj, N: 0}, Options{}},
		{"bad index", &Problem{Obj: obj, N: 1,
			Cons: []Constraint{{Idx: []int{5}, Coeffs: []float64{1}, RHS: 0}}}, Options{}},
		{"len mismatch", &Problem{Obj: obj, N: 1,
			Cons: []Constraint{{Idx: []int{0}, Coeffs: []float64{1, 2}, RHS: 0}}}, Options{}},
		{"bad warm x", &Problem{Obj: obj, N: 1}, Options{WarmX: []float64{1, 2}}},
		{"bad warm duals", &Problem{Obj: obj, N: 1,
			Cons: []Constraint{{Idx: []int{0}, Coeffs: []float64{1}, RHS: 0}}},
			Options{WarmDuals: []float64{1, 2}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(tt.p, tt.opts); err == nil {
				t.Error("Solve accepted malformed input")
			}
		})
	}
}

// TestSolveAgreesWithSimplex cross-checks the first-order solver against the
// exact simplex LP solver on random feasible bounded LPs with GE rows.
func TestSolveAgreesWithSimplex(t *testing.T) {
	cfg := &quick.Config{MaxCount: 30, Rand: rand.New(rand.NewSource(3))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := 1 + rng.Intn(4)
		c := make([]float64, n)
		for j := range c {
			c[j] = 0.05 + rng.Float64()
		}
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = 3 * rng.Float64()
		}
		lp := &simplex.Problem{C: c}
		ap := &Problem{Obj: linear(c), N: n, Lower: make([]float64, n)}
		for k := 0; k < m; k++ {
			row := make([]float64, n)
			lhs := 0.0
			for j := range row {
				row[j] = rng.Float64() // nonnegative rows keep the LP bounded+feasible
				lhs += row[j] * x0[j]
			}
			rhs := lhs * (0.5 + 0.5*rng.Float64())
			lp.Cons = append(lp.Cons, simplex.Constraint{Coeffs: row, Sense: simplex.GE, RHS: rhs})
			ap.Cons = append(ap.Cons, denseRow(row, rhs))
		}
		exact, err := simplex.Solve(lp)
		if err != nil || exact.Status != simplex.Optimal {
			return false
		}
		res, err := Solve(ap, Options{MaxOuter: 120})
		if err != nil {
			return false
		}
		if res.MaxViolation > 1e-5 {
			return false
		}
		return math.Abs(res.Objective-exact.Objective) <= 2e-4*(1+math.Abs(exact.Objective))
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestSolveDualObjectiveMatches checks strong duality y·b == c·x on a
// nondegenerate LP, validating that Duals really are the LP duals.
func TestSolveDualObjectiveMatches(t *testing.T) {
	// min x + 2y s.t. x + y >= 4, x + 3y >= 6, x,y >= 0.
	p := &Problem{
		Obj: linear([]float64{1, 2}),
		N:   2,
		Cons: []Constraint{
			denseRow([]float64{1, 1}, 4),
			denseRow([]float64{1, 3}, 6),
		},
		Lower: []float64{0, 0},
	}
	res, err := Solve(p, Options{MaxOuter: 150})
	if err != nil {
		t.Fatal(err)
	}
	dualObj := 4*res.Duals[0] + 6*res.Duals[1]
	if math.Abs(dualObj-res.Objective) > 1e-4*(1+math.Abs(res.Objective)) {
		t.Errorf("dual objective %g != primal %g (duals %v)", dualObj, res.Objective, res.Duals)
	}
}
