// Package alm implements an augmented-Lagrangian method for smooth convex
// minimization under sparse linear inequality constraints and box bounds:
//
//	minimize    f(x)
//	subject to  A_k·x ≥ b_k   for every row k
//	            lower ≤ x ≤ upper.
//
// Each outer iteration minimizes the augmented Lagrangian over the box with
// FISTA (internal/solver/fista) and then updates the multiplier estimates;
// the converged multipliers are the dual variables of the constraints, which
// the competitive analysis of the paper's algorithm consumes directly
// (the θ'_{j,t} and ρ'_{i,t} of its KKT system). This package replaces the
// role of IPOPT in the paper's evaluation pipeline.
package alm

import (
	"context"
	"errors"
	"fmt"
	"math"

	"edgealloc/internal/solver/fista"
)

// Constraint is one sparse inequality row Σ_k Coeffs[k]·x[Idx[k]] ≥ RHS.
type Constraint struct {
	Idx    []int
	Coeffs []float64
	RHS    float64
}

// Problem is a smooth convex program over a box with GE rows. Rows are
// given either as generic sparse Cons or as structured group-sum Groups
// (see groups.go) — never both. The structured form is the production
// path for the paper's programs; the sparse form is the reference
// implementation the property tests compare against.
type Problem struct {
	// Obj is the smooth convex objective (gradient oracle).
	Obj fista.Objective
	// N is the number of variables.
	N int
	// Cons are the inequality rows, all in A·x ≥ b form.
	Cons []Constraint
	// Groups optionally supplies the rows in structured group-sum form,
	// dropping the per-evaluation constraint cost from O(nnz) to
	// O(N + rows). Mutually exclusive with Cons. Groups.Rows[k] owns
	// Result.Duals[k], exactly like Cons[k] would.
	Groups *Groups
	// Lower and Upper are optional box bounds passed through to the inner
	// solver; nil means unbounded on that side.
	Lower, Upper []float64
}

// numRows returns the dual dimension of the constraint set.
func (p *Problem) numRows() int {
	if p.Groups != nil {
		return p.Groups.NumRows()
	}
	return len(p.Cons)
}

// rowRHS returns b_k for row k.
func (p *Problem) rowRHS(k int) float64 {
	if p.Groups != nil {
		return p.Groups.Rows[k].RHS
	}
	return p.Cons[k].RHS
}

// axInto writes every row activity A_k·x into ax. The sparse path
// iterates nonzeros row by row (the reference semantics); the structured
// path derives activities from once-per-call group totals.
func (p *Problem) axInto(x, ax []float64, sc *groupScratch, workers int) {
	if p.Groups != nil {
		p.Groups.axInto(x, ax, sc, workers)
		return
	}
	for k, c := range p.Cons {
		s := 0.0
		for t, j := range c.Idx {
			s += c.Coeffs[t] * x[j]
		}
		ax[k] = s
	}
}

// addGrad accumulates grad −= Σ_k mult[k]·A_k, skipping zero multipliers.
func (p *Problem) addGrad(mult, grad []float64, sc *groupScratch, workers int) {
	if p.Groups != nil {
		p.Groups.addGrad(mult, grad, sc, workers)
		return
	}
	for k, c := range p.Cons {
		m := mult[k]
		if m == 0 {
			continue
		}
		for t, j := range c.Idx {
			grad[j] -= m * c.Coeffs[t]
		}
	}
}

// Options tunes the outer loop. Zero values select defaults.
type Options struct {
	// MaxOuter bounds multiplier updates (default 80).
	MaxOuter int
	// InnerIters bounds FISTA iterations per subproblem (default 1500).
	InnerIters int
	// Penalty is the initial quadratic penalty ρ (default 1).
	Penalty float64
	// PenaltyGrowth multiplies ρ when feasibility stalls (default 4).
	PenaltyGrowth float64
	// FeasTol is the absolute constraint-violation tolerance, scaled by
	// 1+|RHS| per row (default 1e-7).
	FeasTol float64
	// ObjTol is the relative objective-change tolerance across outer
	// iterations (default 1e-9).
	ObjTol float64
	// DualTol is the relative multiplier-movement tolerance across outer
	// iterations (default 1e-6); tighter values yield more accurate dual
	// variables at the cost of extra outer iterations.
	DualTol float64
	// WarmX optionally seeds the primal point (copied, not retained).
	WarmX []float64
	// WarmDuals optionally seeds the multipliers (copied, not retained).
	WarmDuals []float64
	// Workers bounds the goroutines used inside a single Lagrangian
	// evaluation when the problem supplies structured Groups rows (0 or 1
	// = serial). Parallelism is threshold-gated on problem size, chunks
	// are a pure function of the inputs, and partial results reduce in
	// index order, so results are byte-identical for any value.
	Workers int
	// Workspace optionally supplies reusable scratch buffers so repeated
	// solves of same-shaped problems (the per-slot P2 programs of a
	// horizon, the continuation stages of the smoothed baselines) allocate
	// nothing per call. When set, Result.X and Result.Duals alias
	// workspace memory and are only valid until the next Solve with the
	// same workspace; callers that retain them must copy. WarmX/WarmDuals
	// may alias the previous Result's slices. A workspace must not be
	// shared between concurrent solves.
	Workspace *Workspace
	// Ctx optionally makes the solve cancellable. It is polled between
	// FISTA sweeps (once per inner iteration and once per outer multiplier
	// update); when it fires, Solve returns an error wrapping ctx.Err().
	// The workspace buffers may hold a partial iterate afterwards, but the
	// caller-supplied WarmX/WarmDuals slices are never written, so warm
	// state owned by the caller survives a cancelled solve intact. Nil
	// means never cancelled. Polling does not perturb the math: results
	// are bitwise identical to an uncancelled run.
	Ctx context.Context
}

// Workspace holds the primal iterate, multiplier, and row-activity
// buffers of a solve plus the inner FISTA workspace and the structured-
// kernel scratch. The zero value is ready to use.
type Workspace struct {
	x, y     []float64
	ax, mult []float64
	gs       groupScratch
	inner    fista.Workspace
	lag      lagrangian
	res      Result
}

// ensure sizes the buffers for n variables and m constraint rows.
func (ws *Workspace) ensure(n, m int) {
	if cap(ws.x) < n {
		ws.x = make([]float64, n)
	}
	ws.x = ws.x[:n]
	if cap(ws.y) < m {
		ws.y = make([]float64, m)
		ws.ax = make([]float64, m)
		ws.mult = make([]float64, m)
	}
	ws.y = ws.y[:m]
	ws.ax = ws.ax[:m]
	ws.mult = ws.mult[:m]
}

// Result reports the outcome of a solve.
type Result struct {
	X []float64
	// Objective is f(X) — the original objective without penalty terms.
	Objective float64
	// Duals are the nonnegative multipliers of the GE rows.
	Duals []float64
	// MaxViolation is max_k (b_k − A_k·X)⁺ scaled by 1+|b_k|.
	MaxViolation float64
	Outer        int
	InnerIters   int
	Converged    bool
}

// ErrBadProblem reports malformed input.
var ErrBadProblem = errors.New("alm: malformed problem")

// errf wraps ErrBadProblem with a formatted detail message.
func errf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadProblem, fmt.Sprintf(format, args...))
}

const maxPenalty = 1e9

// Solve runs the augmented-Lagrangian loop. The error is non-nil only for
// malformed input; lack of convergence is reported via Result.Converged.
func Solve(p *Problem, opts Options) (*Result, error) {
	if p.N <= 0 {
		return nil, fmt.Errorf("%w: N=%d", ErrBadProblem, p.N)
	}
	if p.Groups != nil {
		if len(p.Cons) > 0 {
			return nil, errf("both Cons (%d rows) and Groups (%d rows) set",
				len(p.Cons), p.Groups.NumRows())
		}
		if err := p.Groups.validate(p.N); err != nil {
			return nil, err
		}
	}
	for k, c := range p.Cons {
		if len(c.Idx) != len(c.Coeffs) {
			return nil, fmt.Errorf("%w: row %d has %d indices, %d coefficients",
				ErrBadProblem, k, len(c.Idx), len(c.Coeffs))
		}
		for _, j := range c.Idx {
			if j < 0 || j >= p.N {
				return nil, fmt.Errorf("%w: row %d references variable %d of %d",
					ErrBadProblem, k, j, p.N)
			}
		}
	}
	if opts.WarmX != nil && len(opts.WarmX) != p.N {
		return nil, fmt.Errorf("%w: len(WarmX)=%d, want %d", ErrBadProblem, len(opts.WarmX), p.N)
	}
	if opts.WarmDuals != nil && len(opts.WarmDuals) != p.numRows() {
		return nil, fmt.Errorf("%w: len(WarmDuals)=%d, want %d",
			ErrBadProblem, len(opts.WarmDuals), p.numRows())
	}

	maxOuter := opts.MaxOuter
	if maxOuter <= 0 {
		maxOuter = 80
	}
	innerIters := opts.InnerIters
	if innerIters <= 0 {
		innerIters = 1500
	}
	rho := opts.Penalty
	if rho <= 0 {
		rho = 1
	}
	growth := opts.PenaltyGrowth
	if growth <= 1 {
		growth = 4
	}
	feasTol := opts.FeasTol
	if feasTol <= 0 {
		feasTol = 1e-7
	}
	objTol := opts.ObjTol
	if objTol <= 0 {
		objTol = 1e-9
	}
	dualTol := opts.DualTol
	if dualTol <= 0 {
		dualTol = 1e-6
	}

	ws := opts.Workspace
	if ws == nil {
		// A zero-value local workspace reproduces the allocate-per-call
		// behaviour for one-shot callers; the result then owns its slices.
		ws = &Workspace{}
	}
	ws.ensure(p.N, p.numRows())
	if p.Groups != nil {
		ws.gs.ensure(p.Groups)
	}
	x := ws.x
	if opts.WarmX != nil {
		copy(x, opts.WarmX) // no-op when WarmX aliases the workspace
	} else {
		for k := range x {
			x[k] = 0
		}
	}
	y := ws.y
	if opts.WarmDuals != nil {
		copy(y, opts.WarmDuals)
		for k := range y {
			if y[k] < 0 {
				y[k] = 0
			}
		}
	} else {
		for k := range y {
			y[k] = 0
		}
	}

	res := &ws.res
	*res = Result{}
	if p.numRows() == 0 {
		inner, err := fista.Minimize(p.Obj, x, fista.Options{
			MaxIters: innerIters, Tol: objTol, Lower: p.Lower, Upper: p.Upper,
			Workspace: &ws.inner, Ctx: opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		res.X, res.Objective, res.Converged = inner.X, inner.F, inner.Converged
		res.InnerIters = inner.Iters
		res.Duals = y
		return res, nil
	}

	ws.lag = lagrangian{p: p, y: y, rho: rho, ws: ws, workers: opts.Workers}
	lag := &ws.lag

	prevObj := math.Inf(1)
	prevViol := math.Inf(1)
	innerTol := 1e-5
	for outer := 0; outer < maxOuter; outer++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("alm: aborted at outer iteration %d: %w", outer, err)
			}
		}
		res.Outer = outer + 1
		lag.rho = rho
		inner, err := fista.Minimize(lag, x, fista.Options{
			MaxIters: innerIters, Tol: innerTol, Lower: p.Lower, Upper: p.Upper,
			Workspace: &ws.inner, Ctx: opts.Ctx,
		})
		if err != nil {
			return nil, err
		}
		res.InnerIters += inner.Iters
		x = inner.X

		// Multiplier update, violation and dual-movement measurement.
		viol, dualMove := 0.0, 0.0
		p.axInto(x, ws.ax, &ws.gs, opts.Workers)
		for k := range ws.ax {
			rhs := p.rowRHS(k)
			s := rhs - ws.ax[k]
			yNew := math.Max(0, y[k]+rho*s)
			if d := math.Abs(yNew-y[k]) / (1 + yNew); d > dualMove {
				dualMove = d
			}
			y[k] = yNew
			if v := s / (1 + math.Abs(rhs)); v > viol {
				viol = v
			}
		}

		obj := p.Obj.Eval(x, nil)
		relObjChange := math.Abs(obj-prevObj) / (1 + math.Abs(obj))
		if viol <= feasTol && relObjChange <= objTol && dualMove <= dualTol {
			res.Converged = true
			prevObj = obj
			break
		}
		prevObj = obj

		// Grow the penalty when feasibility is not improving fast enough.
		// Once feasible, keep ρ fixed: the multiplier update is then a
		// proximal-point step on the dual and larger ρ only amplifies the
		// inner solver's noise in the duals.
		if viol > feasTol && viol > 0.25*prevViol && rho < maxPenalty {
			rho *= growth
		}
		prevViol = viol
		if innerTol > 1e-10 {
			innerTol *= 0.2
		}
	}

	res.X = x
	res.Objective = p.Obj.Eval(x, nil)
	res.Duals = y
	p.axInto(x, ws.ax, &ws.gs, opts.Workers)
	for k := range ws.ax {
		rhs := p.rowRHS(k)
		if v := (rhs - ws.ax[k]) / (1 + math.Abs(rhs)); v > res.MaxViolation {
			res.MaxViolation = v
		}
	}
	return res, nil
}

// lagrangian evaluates the augmented Lagrangian
// f(x) + Σ_k h_ρ(y_k, s_k) with s_k = b_k − A_k·x and
// h_ρ(y, s) = (max(0, y+ρs)² − y²) / (2ρ),
// whose x-gradient is ∇f(x) − Σ_k max(0, y_k+ρ s_k)·A_k.
//
// Row activities come from Problem.axInto and the gradient scatter from
// Problem.addGrad, so the per-evaluation constraint cost is O(nnz) on the
// sparse reference path and O(N + rows) on the structured Groups path.
type lagrangian struct {
	p       *Problem
	y       []float64
	rho     float64
	ws      *Workspace
	workers int
}

var _ fista.Objective = (*lagrangian)(nil)

// Eval implements fista.Objective.
func (l *lagrangian) Eval(x, grad []float64) float64 {
	f := l.p.Obj.Eval(x, grad)
	ax, mult := l.ws.ax, l.ws.mult
	l.p.axInto(x, ax, &l.ws.gs, l.workers)
	for k := range ax {
		s := l.p.rowRHS(k) - ax[k]
		m := l.y[k] + l.rho*s
		if m > 0 {
			f += (m*m - l.y[k]*l.y[k]) / (2 * l.rho)
			mult[k] = m
		} else {
			f -= l.y[k] * l.y[k] / (2 * l.rho)
			mult[k] = 0
		}
	}
	if grad != nil {
		l.p.addGrad(mult, grad, &l.ws.gs, l.workers)
	}
	return f
}
