// Package smooth provides the softplus smoothing of the hinge (x)⁺ used to
// make the piecewise-linear reconfiguration and migration costs
// differentiable, so that the first-order solvers (internal/solver/fista,
// internal/solver/alm) apply to the online-greedy and offline-opt
// objectives.
//
// The smoothing is
//
//	softplus_μ(x) = μ·ln(1 + e^{x/μ}),
//
// a convex upper bound of max(x, 0) with maximum error μ·ln2 (attained at
// x = 0) and derivative sigmoid(x/μ) ∈ (0,1). Solvers anneal μ toward zero
// (continuation), so the smoothing error is driven below the effects being
// measured; EXPERIMENTS.md records the schedules used.
package smooth

import "math"

// Hinge returns (x)⁺ = max(x, 0), the exact function being smoothed.
func Hinge(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// Softplus evaluates softplus_μ(x) in a numerically stable way. mu must be
// positive.
func Softplus(x, mu float64) float64 {
	z := x / mu
	switch {
	case z > 30:
		// e^{-z} underflows the correction; softplus(x) ≈ x exactly.
		return x
	case z < -30:
		return mu * math.Exp(z) // ln(1+e^z) ≈ e^z
	case z > 0:
		// ln(1+e^z) = z + ln(1+e^{-z}) avoids overflow for moderate z.
		return x + mu*math.Log1p(math.Exp(-z))
	default:
		return mu * math.Log1p(math.Exp(z))
	}
}

// SoftplusGrad returns d/dx softplus_μ(x) = sigmoid(x/μ).
func SoftplusGrad(x, mu float64) float64 {
	z := x / mu
	switch {
	case z > 30:
		return 1
	case z < -30:
		return math.Exp(z)
	default:
		return 1 / (1 + math.Exp(-z))
	}
}

// MaxError returns the worst-case gap softplus_μ(x) − (x)⁺ over all x,
// which is μ·ln2.
func MaxError(mu float64) float64 { return mu * math.Ln2 }

// Schedule produces a continuation schedule of smoothing parameters from
// start down to floor, shrinking by factor each step (factor in (0,1)).
// It always includes floor as the last element. Schedule panics only on
// programmer error (non-positive inputs), matching its use as a
// package-internal configuration helper.
func Schedule(start, floor, factor float64) []float64 {
	if start <= 0 || floor <= 0 || factor <= 0 || factor >= 1 {
		panic("smooth: Schedule requires start, floor > 0 and factor in (0,1)")
	}
	var mus []float64
	// The 1e-9 slack keeps float round-off (e.g. 1×0.1³ = 0.001000…2) from
	// emitting a step indistinguishable from the floor itself.
	for mu := start; mu > floor*(1+1e-9); mu *= factor {
		mus = append(mus, mu)
	}
	return append(mus, floor)
}
