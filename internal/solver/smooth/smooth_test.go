package smooth

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSoftplusKnownValues(t *testing.T) {
	tests := []struct {
		x, mu, want float64
	}{
		{0, 1, math.Ln2},
		{0, 0.1, 0.1 * math.Ln2},
		{100, 1, 100}, // deep linear regime
		{-100, 1, 0},  // deep flat regime (≈ e^-100)
		{1, 1, math.Log1p(math.E)},
	}
	for _, tt := range tests {
		if got := Softplus(tt.x, tt.mu); math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Softplus(%g, %g) = %g, want %g", tt.x, tt.mu, got, tt.want)
		}
	}
}

func TestSoftplusUpperBoundsHinge(t *testing.T) {
	property := func(x float64, muRaw float64) bool {
		mu := 1e-4 + math.Abs(muRaw)
		if math.IsInf(x, 0) || math.IsNaN(x) || math.IsInf(mu, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		sp := Softplus(x, mu)
		h := Hinge(x)
		return sp >= h-1e-12 && sp-h <= MaxError(mu)+1e-12
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftplusGradMatchesFiniteDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for n := 0; n < 200; n++ {
		x := 20 * (rng.Float64() - 0.5)
		mu := 0.05 + rng.Float64()
		const h = 1e-6
		fd := (Softplus(x+h, mu) - Softplus(x-h, mu)) / (2 * h)
		if g := SoftplusGrad(x, mu); math.Abs(g-fd) > 1e-5 {
			t.Fatalf("grad(%g, %g) = %g, finite diff %g", x, mu, g, fd)
		}
	}
}

func TestSoftplusGradMonotoneAndBounded(t *testing.T) {
	prev := -1.0
	for x := -50.0; x <= 50; x += 0.25 {
		g := SoftplusGrad(x, 0.7)
		if g < 0 || g > 1 {
			t.Fatalf("grad out of [0,1]: %g at x=%g", g, x)
		}
		if g < prev-1e-12 {
			t.Fatalf("grad not monotone at x=%g", x)
		}
		prev = g
	}
}

func TestSoftplusConvex(t *testing.T) {
	// Midpoint convexity on a grid.
	for _, mu := range []float64{0.01, 0.5, 3} {
		for a := -10.0; a <= 10; a += 0.7 {
			for b := a + 0.3; b <= 10; b += 1.3 {
				mid := Softplus((a+b)/2, mu)
				avg := (Softplus(a, mu) + Softplus(b, mu)) / 2
				if mid > avg+1e-12 {
					t.Fatalf("not convex: mu=%g a=%g b=%g", mu, a, b)
				}
			}
		}
	}
}

func TestScheduleShape(t *testing.T) {
	s := Schedule(1, 1e-3, 0.1)
	if len(s) != 4 {
		t.Fatalf("len = %d, want 4 (1, .1, .01, .001)", len(s))
	}
	if s[0] != 1 || s[len(s)-1] != 1e-3 {
		t.Errorf("endpoints = %g, %g; want 1, 1e-3", s[0], s[len(s)-1])
	}
	for i := 1; i < len(s); i++ {
		if s[i] >= s[i-1] {
			t.Errorf("schedule not decreasing at %d: %v", i, s)
		}
	}
}

func TestSchedulePanicsOnBadInput(t *testing.T) {
	for _, args := range [][3]float64{{0, 1, 0.5}, {1, 0, 0.5}, {1, 1e-3, 1.5}, {1, 1e-3, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Schedule(%v) did not panic", args)
				}
			}()
			Schedule(args[0], args[1], args[2])
		}()
	}
}

// TestSoftplusExtremeArguments pins the branch ladder on the operands the
// fast-math tier leans on: infinities, huge finite x (the z > 30 branch
// must return x without ever forming e^z), subnormal x, and subnormal mu
// (which drives z to ±Inf for any ordinary x).
func TestSoftplusExtremeArguments(t *testing.T) {
	inf := math.Inf(1)
	tests := []struct {
		name, kind string
		x, mu      float64
		want       float64
	}{
		{"+Inf", "exact", inf, 1, inf},
		{"-Inf", "exact", -inf, 1, 0},
		{"huge x avoids overflow", "exact", math.MaxFloat64, 1, math.MaxFloat64},
		{"huge negative underflows to 0", "exact", -math.MaxFloat64, 1, 0},
		{"large z branch is identity", "exact", 1e9, 1, 1e9},
		{"subnormal mu, positive x", "exact", 2.5, math.SmallestNonzeroFloat64, 2.5},
		{"subnormal mu, negative x", "exact", -2.5, math.SmallestNonzeroFloat64, 0},
		{"subnormal x", "approx", math.SmallestNonzeroFloat64, 1, math.Ln2},
		{"negative subnormal x", "approx", -math.SmallestNonzeroFloat64, 1, math.Ln2},
		{"subnormal x and mu", "approx", math.SmallestNonzeroFloat64, math.SmallestNonzeroFloat64,
			math.Ln2 * math.SmallestNonzeroFloat64},
	}
	for _, tt := range tests {
		got := Softplus(tt.x, tt.mu)
		switch tt.kind {
		case "exact":
			if got != tt.want {
				t.Errorf("%s: Softplus(%g, %g) = %g, want exactly %g", tt.name, tt.x, tt.mu, got, tt.want)
			}
		case "approx":
			if math.Abs(got-tt.want) > 1e-12*math.Max(1, math.Abs(tt.want)) {
				t.Errorf("%s: Softplus(%g, %g) = %g, want %g", tt.name, tt.x, tt.mu, got, tt.want)
			}
		}
	}
	if got := Softplus(math.NaN(), 1); !math.IsNaN(got) {
		t.Errorf("Softplus(NaN, 1) = %g, want NaN", got)
	}
}

// TestSoftplusGradExtremeArguments mirrors the branch checks for the
// derivative: the saturated branches must return exactly 1 and exactly
// e^z, and infinities must not produce NaN.
func TestSoftplusGradExtremeArguments(t *testing.T) {
	inf := math.Inf(1)
	if g := SoftplusGrad(inf, 1); g != 1 {
		t.Errorf("grad(+Inf) = %g, want 1", g)
	}
	if g := SoftplusGrad(-inf, 1); g != 0 {
		t.Errorf("grad(-Inf) = %g, want 0", g)
	}
	if g := SoftplusGrad(math.MaxFloat64, 1); g != 1 {
		t.Errorf("grad(MaxFloat64) = %g, want exactly 1 (z > 30 branch)", g)
	}
	if g := SoftplusGrad(-800, 1); g != math.Exp(-800) {
		t.Errorf("grad(-800) = %g, want e^-800 (underflows to 0 without NaN)", g)
	}
	if g := SoftplusGrad(math.SmallestNonzeroFloat64, 1); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("grad(subnormal) = %g, want 0.5", g)
	}
	if g := SoftplusGrad(3, math.SmallestNonzeroFloat64); g != 1 {
		t.Errorf("grad with subnormal mu = %g, want 1", g)
	}
}

// TestSoftplusBranchContinuity walks operand pairs across the z = ±30
// and z = 0 branch boundaries: adjacent branches must agree to ~e^-30
// (the magnitude of the term each saturated branch drops).
func TestSoftplusBranchContinuity(t *testing.T) {
	for _, mu := range []float64{0.05, 1, 7} {
		for _, z := range []float64{-30, 0, 30} {
			lo := mu * (z - 1e-9)
			hi := mu * (z + 1e-9)
			a, b := Softplus(lo, mu), Softplus(hi, mu)
			if math.Abs(a-b) > mu*1e-8+1e-12 {
				t.Errorf("mu=%g: Softplus jumps across z=%g: %g vs %g", mu, z, a, b)
			}
			ga, gb := SoftplusGrad(lo, mu), SoftplusGrad(hi, mu)
			if math.Abs(ga-gb) > 1e-8 {
				t.Errorf("mu=%g: grad jumps across z=%g: %g vs %g", mu, z, ga, gb)
			}
		}
	}
}
