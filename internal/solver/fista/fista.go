// Package fista implements the fast iterative shrinkage-thresholding
// algorithm (FISTA, Beck & Teboulle 2009) for minimizing a smooth convex
// function over a box, with backtracking line search and adaptive restart.
//
// It is the inner workhorse of the augmented-Lagrangian solver
// (internal/solver/alm): every subproblem there is a smooth convex
// objective over the nonnegative orthant, which is exactly the shape this
// package handles. Together they replace the interior-point solver (IPOPT)
// used in the paper's evaluation.
package fista

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// Objective is a smooth convex function with a gradient oracle.
type Objective interface {
	// Eval returns f(x) and, when grad is non-nil, writes ∇f(x) into grad.
	// Implementations must not retain x or grad.
	Eval(x, grad []float64) float64
}

// Func adapts a plain function to the Objective interface.
type Func func(x, grad []float64) float64

// Eval implements Objective.
func (f Func) Eval(x, grad []float64) float64 { return f(x, grad) }

var _ Objective = Func(nil)

// Options configures a minimization run. The zero value picks sensible
// defaults (see Minimize).
type Options struct {
	// MaxIters bounds the number of accelerated iterations (default 2000).
	MaxIters int
	// Tol is the convergence tolerance on the scaled projected-gradient
	// norm and relative objective change (default 1e-8).
	Tol float64
	// InitStep is the initial step size tried by the backtracking search
	// (default 1). The search also re-grows the step between iterations,
	// so a bad guess costs only a few extra function evaluations.
	InitStep float64
	// Lower and Upper are optional elementwise bounds. A nil slice means
	// unbounded on that side. Most callers pass Lower = zeros for x ≥ 0.
	Lower, Upper []float64
	// Workspace optionally supplies reusable scratch buffers so repeated
	// solves of same-sized problems allocate nothing per call. When set,
	// Result.X (and the Result itself) alias workspace memory and are
	// only valid until the next Minimize call with the same workspace.
	// A workspace must not be shared between concurrent solves.
	Workspace *Workspace
	// Ctx optionally makes the iteration cancellable: it is polled once
	// per accelerated iteration (between objective sweeps, never inside
	// one) and Minimize returns an error wrapping ctx.Err() when it fires.
	// The workspace is left in a consistent-but-partial state; warm state
	// retained by callers (their own copies of iterates and multipliers)
	// is untouched because Minimize never writes through x0. Nil means
	// never cancelled. Polling does not perturb the math: results are
	// bitwise identical to an uncancelled run.
	Ctx context.Context
}

// Workspace holds the iterate, momentum, trial, and gradient buffers of a
// minimization run. The zero value is ready to use; buffers grow on
// demand and are reused across calls.
type Workspace struct {
	x, y, xNew, grad []float64
	res              Result
}

// ensure sizes every buffer to n, reusing capacity where possible.
func (ws *Workspace) ensure(n int) {
	if cap(ws.x) < n {
		ws.x = make([]float64, n)
		ws.y = make([]float64, n)
		ws.xNew = make([]float64, n)
		ws.grad = make([]float64, n)
	}
	ws.x = ws.x[:n]
	ws.y = ws.y[:n]
	ws.xNew = ws.xNew[:n]
	ws.grad = ws.grad[:n]
}

// Result reports the outcome of a minimization.
type Result struct {
	X         []float64
	F         float64
	Iters     int
	Converged bool
	// FuncEvals counts objective evaluations including line-search trials.
	FuncEvals int
}

// ErrDimension reports mismatched slice lengths in the inputs.
var ErrDimension = errors.New("fista: dimension mismatch")

const (
	backtrackShrink = 0.5
	// stepGrow re-expands the step after every accepted iteration so the
	// search tracks the local curvature from below. 1.3 spends roughly one
	// failed trial evaluation every other iteration; gentler factors waste
	// fewer trials per iteration but recover so slowly after a restart
	// shrink that convergence needs measurably more iterations overall.
	stepGrow = 1.3
	minStep  = 1e-18
	// stagnantLimit is the number of consecutive iterations with relative
	// objective change below Tol required to declare convergence; a single
	// flat step is not trusted because accelerated methods are
	// non-monotone between restarts.
	stagnantLimit = 5
)

// Minimize runs FISTA from x0 and returns the best point found. x0 is not
// modified (it may alias Options.Workspace memory from a previous call;
// the copy into the workspace handles that overlap). The error is non-nil
// only for malformed input.
func Minimize(obj Objective, x0 []float64, opts Options) (*Result, error) {
	n := len(x0)
	if opts.Lower != nil && len(opts.Lower) != n {
		return nil, fmt.Errorf("%w: len(Lower)=%d, len(x0)=%d", ErrDimension, len(opts.Lower), n)
	}
	if opts.Upper != nil && len(opts.Upper) != n {
		return nil, fmt.Errorf("%w: len(Upper)=%d, len(x0)=%d", ErrDimension, len(opts.Upper), n)
	}
	maxIters := opts.MaxIters
	if maxIters <= 0 {
		maxIters = 2000
	}
	tol := opts.Tol
	if tol <= 0 {
		tol = 1e-8
	}
	lower, upper := opts.Lower, opts.Upper
	// lowerOnly marks the dominant caller shape (x ≥ lower, no upper
	// bound): the hot loops below take fused single-pass branches for it,
	// with the nil checks hoisted out of the element loops.
	lowerOnly := lower != nil && upper == nil
	clip := func(x []float64) {
		for j := range x {
			if lower != nil && x[j] < lower[j] {
				x[j] = lower[j]
			}
			if upper != nil && x[j] > upper[j] {
				x[j] = upper[j]
			}
		}
	}

	ws := opts.Workspace
	if ws == nil {
		// Per-call buffers: the result may outlive the call, so x must be
		// freshly owned. A zero-value local workspace gives exactly that.
		ws = &Workspace{}
	}
	ws.ensure(n)
	step := opts.InitStep
	if step <= 0 {
		step = 1
	}
	x := ws.x
	copy(x, x0) // no-op when x0 already aliases ws.x (warm restart)
	clip(x)
	y := ws.y
	copy(y, x)
	xNew := ws.xNew
	grad := ws.grad

	res := &ws.res
	*res = Result{}
	fx := obj.Eval(x, nil)
	res.FuncEvals++
	tMom := 1.0
	stagnant := 0 // consecutive iterations with negligible objective change

	for it := 0; it < maxIters; it++ {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("fista: aborted after %d iterations: %w", it, err)
			}
		}
		res.Iters = it + 1
		fy := obj.Eval(y, grad)
		res.FuncEvals++

		// Backtracking: find step s with sufficient decrease from y. The
		// quadratic upper-bound terms of the FISTA condition are
		// accumulated in the same pass that writes the projected trial
		// point (they depend only on y, grad, and xNew, not on fNew), so a
		// trial costs one fused O(n) sweep plus the objective evaluation;
		// the element operations and their order match the generic branch
		// exactly, so both produce identical bits.
		var fNew float64
		for {
			q := fy
			dd := 0.0
			if lowerOnly {
				lo := lower
				for j, yj := range y {
					v := yj - step*grad[j]
					if v < lo[j] {
						v = lo[j]
					}
					xNew[j] = v
					d := v - yj
					q += grad[j] * d
					dd += d * d
				}
			} else {
				for j := range xNew {
					xNew[j] = y[j] - step*grad[j]
				}
				clip(xNew)
				for j := range xNew {
					d := xNew[j] - y[j]
					q += grad[j] * d
					dd += d * d
				}
			}
			q += dd / (2 * step)
			fNew = obj.Eval(xNew, nil)
			res.FuncEvals++
			if fNew <= q+1e-12*(1+math.Abs(q)) {
				break
			}
			step *= backtrackShrink
			if step < minStep {
				// Gradient is numerically zero or the objective is not
				// smooth here; accept the current point.
				copy(xNew, y)
				fNew = fy
				break
			}
		}

		relDrop := math.Abs(fx-fNew) / (1 + math.Abs(fx))
		if relDrop <= tol {
			stagnant++
		} else {
			stagnant = 0
		}

		// Adaptive restart on objective increase (O'Donoghue & Candès):
		// discard the non-monotone step and retry plain gradient from x.
		if fNew > fx {
			tMom = 1
			copy(y, x)
			step *= backtrackShrink
			if stagnant >= stagnantLimit || step < minStep {
				res.Converged = true
				break
			}
			continue
		}

		tNext := (1 + math.Sqrt(1+4*tMom*tMom)) / 2
		beta := (tMom - 1) / tNext
		if lowerOnly {
			lo := lower
			for j, v := range xNew {
				m := v + beta*(v-x[j])
				if m < lo[j] {
					m = lo[j]
				}
				y[j] = m
			}
		} else {
			for j := range y {
				y[j] = xNew[j] + beta*(xNew[j]-x[j])
			}
			clip(y)
		}
		tMom = tNext
		copy(x, xNew)
		fx = fNew
		step *= stepGrow

		if stagnant >= stagnantLimit {
			res.Converged = true
			break
		}
	}

	res.X = x
	res.F = fx
	return res, nil
}
