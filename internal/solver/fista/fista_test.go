package fista

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// quadratic returns f(x) = 0.5 x'Qx - b'x for a diagonal Q.
func quadratic(q, b []float64) Func {
	return func(x, grad []float64) float64 {
		f := 0.0
		for j := range x {
			f += 0.5*q[j]*x[j]*x[j] - b[j]*x[j]
			if grad != nil {
				grad[j] = q[j]*x[j] - b[j]
			}
		}
		return f
	}
}

func TestMinimizeUnconstrainedQuadratic(t *testing.T) {
	q := []float64{1, 4, 9}
	b := []float64{1, 2, 3}
	res, err := Minimize(quadratic(q, b), []float64{10, -10, 5}, Options{Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	for j := range q {
		want := b[j] / q[j]
		if math.Abs(res.X[j]-want) > 1e-5 {
			t.Errorf("x[%d] = %g, want %g", j, res.X[j], want)
		}
	}
	if !res.Converged {
		t.Error("did not report convergence")
	}
}

func TestMinimizeBoxBindsAtBound(t *testing.T) {
	// Minimize (x-5)^2 subject to 0 <= x <= 2: optimum at x = 2.
	obj := Func(func(x, grad []float64) float64 {
		d := x[0] - 5
		if grad != nil {
			grad[0] = 2 * d
		}
		return d * d
	})
	res, err := Minimize(obj, []float64{0}, Options{
		Lower: []float64{0}, Upper: []float64{2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-8 {
		t.Errorf("x = %g, want 2", res.X[0])
	}
}

func TestMinimizeNonnegativeOrthant(t *testing.T) {
	// min (x+3)^2 + (y-1)^2 over x,y >= 0: optimum (0, 1).
	obj := Func(func(x, grad []float64) float64 {
		if grad != nil {
			grad[0] = 2 * (x[0] + 3)
			grad[1] = 2 * (x[1] - 1)
		}
		return (x[0]+3)*(x[0]+3) + (x[1]-1)*(x[1]-1)
	})
	res, err := Minimize(obj, []float64{4, 4}, Options{Lower: []float64{0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]) > 1e-7 || math.Abs(res.X[1]-1) > 1e-7 {
		t.Errorf("x = %v, want (0, 1)", res.X)
	}
}

func TestMinimizeEntropyTerm(t *testing.T) {
	// The P2 regularizer shape: min a*x + (x+e)ln((x+e)/(p+e)) - x over x>=0.
	// Stationarity: a + ln((x+e)/(p+e)) = 0 => x = (p+e)exp(-a) - e.
	const a, e, p = 0.3, 0.5, 2.0
	obj := Func(func(x, grad []float64) float64 {
		v := x[0] + e
		if grad != nil {
			grad[0] = a + math.Log(v/(p+e))
		}
		return a*x[0] + v*math.Log(v/(p+e)) - x[0]
	})
	res, err := Minimize(obj, []float64{p}, Options{Lower: []float64{0}, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	want := (p+e)*math.Exp(-a) - e
	if math.Abs(res.X[0]-want) > 1e-6 {
		t.Errorf("x = %g, want %g", res.X[0], want)
	}
}

func TestMinimizeDimensionMismatch(t *testing.T) {
	obj := quadratic([]float64{1}, []float64{1})
	if _, err := Minimize(obj, []float64{0}, Options{Lower: []float64{0, 0}}); err == nil {
		t.Error("accepted mismatched Lower")
	}
	if _, err := Minimize(obj, []float64{0}, Options{Upper: []float64{1, 2}}); err == nil {
		t.Error("accepted mismatched Upper")
	}
}

func TestMinimizeStartOutsideBox(t *testing.T) {
	obj := quadratic([]float64{2}, []float64{0})
	res, err := Minimize(obj, []float64{-7}, Options{Lower: []float64{1}, Upper: []float64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-8 {
		t.Errorf("x = %g, want clipped optimum 1", res.X[0])
	}
}

func TestMinimizeRandomQuadraticProperty(t *testing.T) {
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		q := make([]float64, n)
		b := make([]float64, n)
		x0 := make([]float64, n)
		lo := make([]float64, n)
		for j := range q {
			q[j] = 0.1 + 3*rng.Float64()
			b[j] = rng.NormFloat64()
			x0[j] = 5 * rng.Float64()
		}
		res, err := Minimize(quadratic(q, b), x0, Options{Lower: lo, Tol: 1e-11, MaxIters: 5000})
		if err != nil {
			return false
		}
		// Optimum of the box-constrained diagonal quadratic is max(0, b/q).
		for j := range q {
			want := b[j] / q[j]
			if want < 0 {
				want = 0
			}
			if math.Abs(res.X[j]-want) > 1e-4*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMinimizeIllConditioned(t *testing.T) {
	// Condition number 1e4 quadratic still converges to modest accuracy.
	q := []float64{1e-2, 1e2}
	b := []float64{1, 1}
	res, err := Minimize(quadratic(q, b), []float64{0, 0}, Options{MaxIters: 20000, Tol: 1e-13})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-100) > 1e-2 || math.Abs(res.X[1]-0.01) > 1e-6 {
		t.Errorf("x = %v, want (100, 0.01)", res.X)
	}
}
