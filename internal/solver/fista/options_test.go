package fista

import (
	"math"
	"testing"
)

func TestFuncAdapterSatisfiesInterface(t *testing.T) {
	var obj Objective = Func(func(x, grad []float64) float64 {
		if grad != nil {
			grad[0] = 1
		}
		return x[0]
	})
	g := make([]float64, 1)
	if f := obj.Eval([]float64{3}, g); f != 3 || g[0] != 1 {
		t.Errorf("adapter eval = %g, grad = %g", f, g[0])
	}
}

func TestMinimizeUpperBoundOnly(t *testing.T) {
	// min -(x) with x <= 2 and no lower bound: optimum at the upper bound.
	obj := Func(func(x, grad []float64) float64 {
		if grad != nil {
			grad[0] = -1
		}
		return -x[0]
	})
	res, err := Minimize(obj, []float64{-5}, Options{Upper: []float64{2}, MaxIters: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-2) > 1e-9 {
		t.Errorf("x = %g, want 2", res.X[0])
	}
}

func TestMinimizeRespectsInitStep(t *testing.T) {
	// A pathologically large initial step must be healed by backtracking.
	obj := quadratic([]float64{100}, []float64{100})
	res, err := Minimize(obj, []float64{0}, Options{InitStep: 1e6, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 {
		t.Errorf("x = %g, want 1", res.X[0])
	}
	// And a tiny one must be re-grown rather than crawling forever.
	res2, err := Minimize(obj, []float64{0}, Options{InitStep: 1e-9, Tol: 1e-12, MaxIters: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.X[0]-1) > 1e-5 {
		t.Errorf("tiny step: x = %g, want 1", res2.X[0])
	}
}

func TestMinimizeDoesNotMutateX0(t *testing.T) {
	obj := quadratic([]float64{1, 1}, []float64{0, 0})
	x0 := []float64{3, -4}
	want := append([]float64(nil), x0...)
	if _, err := Minimize(obj, x0, Options{}); err != nil {
		t.Fatal(err)
	}
	for k := range x0 {
		if x0[k] != want[k] {
			t.Fatalf("x0 mutated: %v", x0)
		}
	}
}

func TestMinimizeZeroIterationBudgetDefaulted(t *testing.T) {
	obj := quadratic([]float64{2}, []float64{2})
	res, err := Minimize(obj, []float64{0}, Options{MaxIters: -1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-1) > 1e-5 {
		t.Errorf("x = %g, want 1 (defaults should kick in)", res.X[0])
	}
}
