// Package par provides the deterministic fork-join primitive shared by
// the solver hot paths: a fixed, worker-count-independent partition of an
// index range into contiguous chunks, executed concurrently. Callers
// store per-chunk (or per-index) partial results into disjoint slots and
// reduce them sequentially in index order afterwards, so the floating-
// point result is byte-identical for any worker count — the same
// discipline the experiment engine (internal/experiments) established for
// whole runs, applied inside a single objective evaluation.
package par

import "sync"

// Bound returns the effective worker count for a job of `work` abstract
// cost units given a requested worker budget and a minimum grain per
// worker. It returns 1 (serial) whenever the job is too small to amortize
// goroutine startup: parallelism is threshold-gated, never forced.
// workers <= 0 is treated as 1 (parallelism is strictly opt-in).
func Bound(workers, work, grain int) int {
	if workers <= 1 || grain <= 0 {
		return 1
	}
	if max := work / grain; workers > max {
		workers = max
	}
	if workers < 1 {
		return 1
	}
	return workers
}

// Ranges splits [0, n) into exactly `workers` contiguous chunks whose
// sizes depend only on (n, workers) — never on scheduling — and runs
// fn(lo, hi) for each chunk on its own goroutine, returning when all
// chunks finish. fn must write only to slots indexed by its own range so
// chunks race on nothing. With workers <= 1 the single chunk runs inline
// on the caller's goroutine.
//
// Determinism contract: because the per-index computation and the chunk
// boundaries are functions of the inputs alone, and reductions are done
// by the caller in index order, results are byte-identical for any
// worker count.
func Ranges(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
