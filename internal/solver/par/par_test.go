package par

import (
	"sync/atomic"
	"testing"
)

func TestBound(t *testing.T) {
	tests := []struct {
		workers, work, grain, want int
	}{
		{0, 1 << 20, 1024, 1}, // workers 0 = serial (opt-in only)
		{1, 1 << 20, 1024, 1}, // explicit serial
		{8, 100, 1024, 1},     // job below one grain
		{8, 2048, 1024, 2},    // two grains → two workers
		{8, 1 << 20, 1024, 8}, // plenty of work → full budget
		{4, 1 << 20, 0, 1},    // degenerate grain → serial
		{16, 10240, 1024, 10}, // capped by work/grain
	}
	for _, tt := range tests {
		if got := Bound(tt.workers, tt.work, tt.grain); got != tt.want {
			t.Errorf("Bound(%d, %d, %d) = %d, want %d",
				tt.workers, tt.work, tt.grain, got, tt.want)
		}
	}
}

// TestRangesCoversDisjointly checks that every index is visited exactly
// once for a spread of (workers, n) shapes, including workers > n.
func TestRangesCoversDisjointly(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 5, 64, 1000} {
			visits := make([]int32, n)
			Ranges(workers, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&visits[i], 1)
				}
			})
			for i, v := range visits {
				if v != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, v)
				}
			}
		}
	}
}

// TestRangesChunksDeterministic pins the chunk boundaries to a pure
// function of (workers, n): per-chunk partial sums reduced in order must
// be bitwise identical across repeated runs and equal to the serial sum.
func TestRangesChunksDeterministic(t *testing.T) {
	const n = 1003
	x := make([]float64, n)
	for i := range x {
		x[i] = 1.0 / float64(i+3)
	}
	sum := func(workers int) float64 {
		// One slot per index: reduction order is index order regardless
		// of which goroutine filled the slot.
		part := make([]float64, n)
		Ranges(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				part[i] = x[i] * x[i]
			}
		})
		s := 0.0
		for _, v := range part {
			s += v
		}
		return s
	}
	want := sum(1)
	for _, w := range []int{2, 3, 8, 32} {
		if got := sum(w); got != want {
			t.Errorf("workers=%d: sum %g != serial %g", w, got, want)
		}
	}
}
