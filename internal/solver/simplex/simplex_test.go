package simplex

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const testTol = 1e-7

func solveOK(t *testing.T, p *Problem) *Solution {
	t.Helper()
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Optimal {
		t.Fatalf("Solve status = %v, want optimal", sol.Status)
	}
	return sol
}

func TestSolveClassicExamples(t *testing.T) {
	tests := []struct {
		name    string
		p       Problem
		wantObj float64
		wantX   []float64 // nil to skip (degenerate optima)
	}{
		{
			name: "maximize 3x+5y as min",
			// max 3x+5y s.t. x<=4, 2y<=12, 3x+2y<=18 (Hillier-Lieberman).
			p: Problem{
				C: []float64{-3, -5},
				Cons: []Constraint{
					{Coeffs: []float64{1, 0}, Sense: LE, RHS: 4},
					{Coeffs: []float64{0, 2}, Sense: LE, RHS: 12},
					{Coeffs: []float64{3, 2}, Sense: LE, RHS: 18},
				},
			},
			wantObj: -36,
			wantX:   []float64{2, 6},
		},
		{
			name: "diet problem with GE rows",
			// min 0.6x+y s.t. 10x+4y>=20, 5x+5y>=20, 2x+6y>=12, x,y>=0.
			p: Problem{
				C: []float64{0.6, 1},
				Cons: []Constraint{
					{Coeffs: []float64{10, 4}, Sense: GE, RHS: 20},
					{Coeffs: []float64{5, 5}, Sense: GE, RHS: 20},
					{Coeffs: []float64{2, 6}, Sense: GE, RHS: 12},
				},
			},
			wantObj: 2.8,
			wantX:   []float64{3, 1},
		},
		{
			name: "equality constraints",
			// min x+2y+3z s.t. x+y+z=10, x-y=2.
			p: Problem{
				C: []float64{1, 2, 3},
				Cons: []Constraint{
					{Coeffs: []float64{1, 1, 1}, Sense: EQ, RHS: 10},
					{Coeffs: []float64{1, -1, 0}, Sense: EQ, RHS: 2},
				},
			},
			wantObj: 14,
			wantX:   []float64{6, 4, 0},
		},
		{
			name: "negative RHS normalization",
			// min x+y s.t. -x-y <= -3  (i.e. x+y >= 3).
			p: Problem{
				C: []float64{1, 1},
				Cons: []Constraint{
					{Coeffs: []float64{-1, -1}, Sense: LE, RHS: -3},
				},
			},
			wantObj: 3,
		},
		{
			name: "degenerate Beale-style cycling guard",
			p: Problem{
				C: []float64{-0.75, 150, -0.02, 6},
				Cons: []Constraint{
					{Coeffs: []float64{0.25, -60, -1.0 / 25, 9}, Sense: LE, RHS: 0},
					{Coeffs: []float64{0.5, -90, -1.0 / 50, 3}, Sense: LE, RHS: 0},
					{Coeffs: []float64{0, 0, 1, 0}, Sense: LE, RHS: 1},
				},
			},
			wantObj: -0.05,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol := solveOK(t, &tt.p)
			if math.Abs(sol.Objective-tt.wantObj) > testTol {
				t.Errorf("objective = %g, want %g", sol.Objective, tt.wantObj)
			}
			if tt.wantX != nil {
				for j := range tt.wantX {
					if math.Abs(sol.X[j]-tt.wantX[j]) > testTol {
						t.Errorf("x[%d] = %g, want %g", j, sol.X[j], tt.wantX[j])
					}
				}
			}
			checkPrimalFeasible(t, &tt.p, sol)
			checkDuality(t, &tt.p, sol)
		})
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := &Problem{
		C: []float64{1, 1},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: LE, RHS: 1},
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 5},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	p := &Problem{
		C: []float64{-1, 0},
		Cons: []Constraint{
			{Coeffs: []float64{0, 1}, Sense: LE, RHS: 4},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	p := &Problem{
		C:    []float64{1, 1},
		Cons: []Constraint{{Coeffs: []float64{1}, Sense: LE, RHS: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("Solve accepted mismatched constraint length")
	}
}

func TestSolveBadSense(t *testing.T) {
	p := &Problem{
		C:    []float64{1},
		Cons: []Constraint{{Coeffs: []float64{1}, Sense: Sense(0), RHS: 1}},
	}
	if _, err := Solve(p); err == nil {
		t.Fatal("Solve accepted invalid sense")
	}
}

func TestSolveEmptyConstraints(t *testing.T) {
	// min x over x >= 0 with no rows: optimum 0 at the origin.
	sol := solveOK(t, &Problem{C: []float64{1, 2, 3}})
	if sol.Objective != 0 {
		t.Fatalf("objective = %g, want 0", sol.Objective)
	}
}

// checkPrimalFeasible asserts the solution satisfies every constraint.
func checkPrimalFeasible(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	for j, x := range sol.X {
		if x < -testTol {
			t.Errorf("x[%d] = %g negative", j, x)
		}
	}
	for k, con := range p.Cons {
		lhs := 0.0
		for j, a := range con.Coeffs {
			lhs += a * sol.X[j]
		}
		switch con.Sense {
		case LE:
			if lhs > con.RHS+testTol {
				t.Errorf("constraint %d: %g !<= %g", k, lhs, con.RHS)
			}
		case GE:
			if lhs < con.RHS-testTol {
				t.Errorf("constraint %d: %g !>= %g", k, lhs, con.RHS)
			}
		case EQ:
			if math.Abs(lhs-con.RHS) > testTol {
				t.Errorf("constraint %d: %g != %g", k, lhs, con.RHS)
			}
		}
	}
}

// checkDuality asserts sign conventions, dual feasibility A'y <= c, strong
// duality y·b == c·x, and complementary slackness.
func checkDuality(t *testing.T, p *Problem, sol *Solution) {
	t.Helper()
	dualObj := 0.0
	for k, con := range p.Cons {
		y := sol.Duals[k]
		switch con.Sense {
		case GE:
			if y < -testTol {
				t.Errorf("dual[%d] = %g, want >= 0 for GE row", k, y)
			}
		case LE:
			if y > testTol {
				t.Errorf("dual[%d] = %g, want <= 0 for LE row", k, y)
			}
		}
		dualObj += y * con.RHS
	}
	if math.Abs(dualObj-sol.Objective) > 1e-6*(1+math.Abs(sol.Objective)) {
		t.Errorf("strong duality: dual obj %g != primal obj %g", dualObj, sol.Objective)
	}
	for j := range p.C {
		ay := 0.0
		for k, con := range p.Cons {
			ay += sol.Duals[k] * con.Coeffs[j]
		}
		if ay > p.C[j]+1e-6 {
			t.Errorf("dual infeasible at column %d: A'y = %g > c = %g", j, ay, p.C[j])
		}
		if sol.X[j] > testTol && math.Abs(ay-p.C[j]) > 1e-6 {
			t.Errorf("complementary slackness violated at column %d: x=%g, c-A'y=%g",
				j, sol.X[j], p.C[j]-ay)
		}
	}
}

// randomBoundedLP builds a random LP that is guaranteed feasible (x0 is
// feasible by construction) and bounded (costs are nonnegative).
func randomBoundedLP(rng *rand.Rand, n, m int) *Problem {
	x0 := make([]float64, n)
	for j := range x0 {
		x0[j] = 5 * rng.Float64()
	}
	p := &Problem{C: make([]float64, n)}
	for j := range p.C {
		p.C[j] = rng.Float64() + 0.01
	}
	for k := 0; k < m; k++ {
		row := make([]float64, n)
		lhs := 0.0
		for j := range row {
			row[j] = rng.NormFloat64()
			lhs += row[j] * x0[j]
		}
		var con Constraint
		switch rng.Intn(3) {
		case 0:
			con = Constraint{Coeffs: row, Sense: LE, RHS: lhs + rng.Float64()}
		case 1:
			con = Constraint{Coeffs: row, Sense: GE, RHS: lhs - rng.Float64()}
		default:
			con = Constraint{Coeffs: row, Sense: EQ, RHS: lhs}
		}
		p.Cons = append(p.Cons, con)
	}
	return p
}

func TestSolveRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	property := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(6)
		m := 1 + r.Intn(6)
		p := randomBoundedLP(r, n, m)
		sol, err := Solve(p)
		if err != nil || sol.Status == Unbounded {
			return false
		}
		if sol.Status == Infeasible {
			// Construction guarantees feasibility; EQ rows built from x0
			// are consistent, so infeasible means a solver bug.
			return false
		}
		// Feasibility of the returned point.
		for j, x := range sol.X {
			if x < -testTol {
				return false
			}
			_ = j
		}
		for _, con := range p.Cons {
			lhs := 0.0
			for j, a := range con.Coeffs {
				lhs += a * sol.X[j]
			}
			switch con.Sense {
			case LE:
				if lhs > con.RHS+1e-6 {
					return false
				}
			case GE:
				if lhs < con.RHS-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(lhs-con.RHS) > 1e-6 {
					return false
				}
			}
		}
		// Strong duality.
		dualObj := 0.0
		for k, con := range p.Cons {
			dualObj += sol.Duals[k] * con.RHS
		}
		return math.Abs(dualObj-sol.Objective) <= 1e-5*(1+math.Abs(sol.Objective))
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSolveTransportationLP(t *testing.T) {
	// 2 supplies x 3 demands classic transportation instance; optimum known.
	// Supplies 20, 30; demands 10, 25, 15. Costs:
	//   [2 3 1]
	//   [5 4 8]
	// Optimal cost: route d1<-s1? Solve and verify against hand optimum 125.
	// x11=5,x12=0,x13=15 / x21=5,x22=25,x23=0 => 2*5+1*15+5*5+4*25=150. Try
	// x11=10,x13=10,x22=25,x23=5 => 20+10+100+40=170. LP solver finds the
	// true optimum; we assert feasibility + duality and record the value
	// for the transport-package cross-check.
	p := &Problem{
		C: []float64{2, 3, 1, 5, 4, 8},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1, 1, 0, 0, 0}, Sense: LE, RHS: 20},
			{Coeffs: []float64{0, 0, 0, 1, 1, 1}, Sense: LE, RHS: 30},
			{Coeffs: []float64{1, 0, 0, 1, 0, 0}, Sense: GE, RHS: 10},
			{Coeffs: []float64{0, 1, 0, 0, 1, 0}, Sense: GE, RHS: 25},
			{Coeffs: []float64{0, 0, 1, 0, 0, 1}, Sense: GE, RHS: 15},
		},
	}
	sol := solveOK(t, p)
	checkPrimalFeasible(t, p, sol)
	checkDuality(t, p, sol)
	if sol.Objective > 150+testTol {
		t.Errorf("objective %g worse than a known feasible plan (150)", sol.Objective)
	}
}
