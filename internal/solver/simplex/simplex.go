// Package simplex implements a dense two-phase primal simplex solver for
// linear programs in the form
//
//	minimize    c·x
//	subject to  A_k x  {≤, ≥, =}  b_k   for every constraint k
//	            x ≥ 0,
//
// returning both the optimal primal point and the dual multipliers. It is
// the exact ground-truth solver used throughout the repository to validate
// the large-scale first-order solvers (see internal/solver/alm) on small
// instances, playing the role GLPK played in the paper's evaluation.
//
// The implementation keeps a dense tableau, uses Dantzig pricing with an
// automatic switch to Bland's rule to guarantee termination, and recovers
// dual values from the reduced costs of slack and artificial columns.
package simplex

import (
	"errors"
	"fmt"
	"math"
)

// Sense is the relation of a constraint row to its right-hand side.
type Sense int

// Constraint senses. LE is A·x ≤ b, GE is A·x ≥ b, EQ is A·x = b.
const (
	LE Sense = iota + 1
	GE
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "=="
	default:
		return fmt.Sprintf("Sense(%d)", int(s))
	}
}

// Constraint is one linear row A·x (sense) b.
type Constraint struct {
	// Coeffs holds the row of A. Its length must equal the number of
	// structural variables of the problem.
	Coeffs []float64
	Sense  Sense
	RHS    float64
}

// Problem is a linear program over nonnegative variables.
type Problem struct {
	// C is the cost vector of the minimization objective.
	C []float64
	// Cons are the linear constraints.
	Cons []Constraint
}

// Status reports how a solve terminated.
type Status int

// Solve outcomes.
const (
	Optimal Status = iota + 1
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Solution is the result of a successful solve.
type Solution struct {
	Status    Status
	X         []float64 // optimal structural variables (len == len(C))
	Objective float64   // c·x at the optimum
	// Duals holds one multiplier per constraint, with the sign convention
	// that strong duality reads Objective == Σ_k Duals[k]·RHS[k] whenever
	// every RHS-independent term is zero. GE rows have Duals ≥ 0, LE rows
	// have Duals ≤ 0, EQ rows are free.
	Duals      []float64
	Iterations int
}

// ErrDimension reports inconsistent problem dimensions.
var ErrDimension = errors.New("simplex: constraint length does not match objective length")

const (
	tol          = 1e-9
	ratioTol     = 1e-11
	blandTrigger = 8 // switch to Bland's rule after m*n*blandTrigger pivots
)

// tableau is the dense working state of the solver.
type tableau struct {
	m, n     int // constraint rows, structural variables
	cols     int // structural + slack/surplus + artificial
	nSlack   int
	nArt     int
	rows     [][]float64 // m rows, each cols+1 wide (last entry RHS)
	basis    []int       // basic variable of each row
	slackOf  []int       // constraint index -> slack column (-1 if none)
	artOf    []int       // constraint index -> artificial column (-1 if none)
	slackDir []float64   // +1 for LE slack, -1 for GE surplus
	rowSign  []float64   // +1 if the row kept its sign, -1 if negated
}

// Solve optimizes the problem and returns the solution. The returned error
// is non-nil only for malformed input; infeasibility and unboundedness are
// reported through Solution.Status with a nil error.
func Solve(p *Problem) (*Solution, error) {
	n := len(p.C)
	for k, con := range p.Cons {
		if len(con.Coeffs) != n {
			return nil, fmt.Errorf("%w: constraint %d has %d coefficients, want %d",
				ErrDimension, k, len(con.Coeffs), n)
		}
		switch con.Sense {
		case LE, GE, EQ:
		default:
			return nil, fmt.Errorf("simplex: constraint %d has invalid sense %d", k, int(con.Sense))
		}
	}

	t := newTableau(p)
	iters := 0

	// Phase 1: minimize the sum of artificial variables.
	if t.nArt > 0 {
		phase1 := make([]float64, t.cols)
		for _, c := range t.artOf {
			if c >= 0 {
				phase1[c] = 1
			}
		}
		obj, it, unbounded := t.optimize(phase1, nil)
		iters += it
		if unbounded {
			// The phase-1 objective is bounded below by 0; this cannot
			// happen with exact arithmetic and signals numerical failure.
			return nil, errors.New("simplex: phase 1 reported unbounded (numerical failure)")
		}
		if obj > 1e-7 {
			return &Solution{Status: Infeasible, Iterations: iters}, nil
		}
		t.evictArtificials()
	}

	// Phase 2: minimize the true objective, artificials barred from entering.
	cost := make([]float64, t.cols)
	copy(cost, p.C)
	barred := make([]bool, t.cols)
	for _, c := range t.artOf {
		if c >= 0 {
			barred[c] = true
		}
	}
	_, it, unbounded := t.optimize(cost, barred)
	iters += it
	if unbounded {
		return &Solution{Status: Unbounded, Iterations: iters}, nil
	}

	sol := &Solution{
		Status:     Optimal,
		X:          make([]float64, n),
		Duals:      make([]float64, t.m),
		Iterations: iters,
	}
	for r, bv := range t.basis {
		if bv < n {
			sol.X[bv] = t.rows[r][t.cols]
		}
	}
	for j := range sol.X {
		if sol.X[j] < 0 && sol.X[j] > -tol {
			sol.X[j] = 0
		}
	}
	for j, cj := range p.C {
		sol.Objective += cj * sol.X[j]
	}
	t.extractDuals(cost, sol.Duals)
	return sol, nil
}

func newTableau(p *Problem) *tableau {
	m, n := len(p.Cons), len(p.C)
	t := &tableau{
		m:        m,
		n:        n,
		slackOf:  make([]int, m),
		artOf:    make([]int, m),
		slackDir: make([]float64, m),
		rowSign:  make([]float64, m),
	}
	// Count columns: every LE/GE row gets a slack/surplus; a row needs an
	// artificial unless it is an LE row with nonnegative RHS (after sign
	// normalization), whose slack can start basic.
	nSlack, nArt := 0, 0
	type rowPlan struct {
		sign       float64
		sense      Sense // sense after sign normalization
		slack, art bool
	}
	plans := make([]rowPlan, m)
	for k, con := range p.Cons {
		pl := rowPlan{sign: 1, sense: con.Sense}
		if con.RHS < 0 {
			pl.sign = -1
			switch con.Sense {
			case LE:
				pl.sense = GE
			case GE:
				pl.sense = LE
			}
		}
		switch pl.sense {
		case LE:
			pl.slack = true
		case GE:
			pl.slack = true
			pl.art = true
		case EQ:
			pl.art = true
		}
		if pl.slack {
			nSlack++
		}
		if pl.art {
			nArt++
		}
		plans[k] = pl
	}
	t.nSlack, t.nArt = nSlack, nArt
	t.cols = n + nSlack + nArt
	t.rows = make([][]float64, m)
	t.basis = make([]int, m)

	slackCol := n
	artCol := n + nSlack
	for k, con := range p.Cons {
		pl := plans[k]
		row := make([]float64, t.cols+1)
		for j, a := range con.Coeffs {
			row[j] = pl.sign * a
		}
		row[t.cols] = pl.sign * con.RHS
		t.rowSign[k] = pl.sign
		t.slackOf[k], t.artOf[k] = -1, -1
		if pl.slack {
			dir := 1.0
			if pl.sense == GE {
				dir = -1
			}
			row[slackCol] = dir
			t.slackOf[k] = slackCol
			t.slackDir[k] = dir
			slackCol++
		}
		if pl.art {
			row[artCol] = 1
			t.artOf[k] = artCol
			t.basis[k] = artCol
			artCol++
		} else {
			t.basis[k] = t.slackOf[k]
		}
		t.rows[k] = row
	}
	return t
}

// optimize runs primal simplex pivots for the given cost vector until
// optimality or unboundedness. barred marks columns that may not enter.
// It returns the final objective value of the working cost vector.
func (t *tableau) optimize(cost []float64, barred []bool) (obj float64, iters int, unbounded bool) {
	// Reduced-cost row maintained incrementally: r = cost - cB·rows.
	red := make([]float64, t.cols+1)
	copy(red, cost)
	for r, bv := range t.basis {
		cb := cost[bv]
		if cb == 0 {
			continue
		}
		for j := 0; j <= t.cols; j++ {
			red[j] -= cb * t.rows[r][j]
		}
	}

	maxIters := 200 + 40*(t.m+t.cols)*blandTrigger
	bland := false
	for ; iters < maxIters; iters++ {
		if iters > (t.m+1)*(t.cols+1)*blandTrigger/2 {
			bland = true
		}
		enter := -1
		if bland {
			for j := 0; j < t.cols; j++ {
				if (barred == nil || !barred[j]) && red[j] < -tol {
					enter = j
					break
				}
			}
		} else {
			best := -tol
			for j := 0; j < t.cols; j++ {
				if (barred == nil || !barred[j]) && red[j] < best {
					best, enter = red[j], j
				}
			}
		}
		if enter < 0 {
			return -red[t.cols], iters, false
		}

		// Ratio test.
		leave := -1
		bestRatio := math.Inf(1)
		for r := 0; r < t.m; r++ {
			a := t.rows[r][enter]
			if a <= ratioTol {
				continue
			}
			ratio := t.rows[r][t.cols] / a
			if ratio < bestRatio-tol || (ratio < bestRatio+tol && (leave < 0 || t.basis[r] < t.basis[leave])) {
				bestRatio, leave = ratio, r
			}
		}
		if leave < 0 {
			return 0, iters, true
		}
		t.pivot(leave, enter, red)
	}
	// Iteration limit: with Bland's rule active this is unreachable for
	// consistent data; treat as converged-at-current-point.
	return -red[t.cols], iters, false
}

// pivot makes column enter basic in row leave, updating the reduced costs.
func (t *tableau) pivot(leave, enter int, red []float64) {
	prow := t.rows[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := 0; j <= t.cols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // kill round-off
	for r := 0; r < t.m; r++ {
		if r == leave {
			continue
		}
		f := t.rows[r][enter]
		if f == 0 {
			continue
		}
		row := t.rows[r]
		for j := 0; j <= t.cols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0
	}
	if f := red[enter]; f != 0 {
		for j := 0; j <= t.cols; j++ {
			red[j] -= f * prow[j]
		}
		red[enter] = 0
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables out of the basis after
// phase 1, or drops redundant rows that cannot be pivoted.
func (t *tableau) evictArtificials() {
	isArt := func(col int) bool { return col >= t.n+t.nSlack }
	for r := 0; r < t.m; r++ {
		if !isArt(t.basis[r]) {
			continue
		}
		// The artificial is basic at value ~0. Pivot in any usable column.
		enter := -1
		for j := 0; j < t.n+t.nSlack; j++ {
			if math.Abs(t.rows[r][j]) > 1e-7 {
				enter = j
				break
			}
		}
		if enter < 0 {
			continue // redundant row; harmless to keep with artificial at 0
		}
		dummy := make([]float64, t.cols+1)
		t.pivot(r, enter, dummy)
	}
}

// extractDuals recovers constraint multipliers from the reduced costs of
// the slack (or artificial) column of each row under the phase-2 cost.
func (t *tableau) extractDuals(cost []float64, duals []float64) {
	red := make([]float64, t.cols)
	copy(red, cost[:t.cols])
	for r, bv := range t.basis {
		cb := cost[bv]
		if cb == 0 {
			continue
		}
		for j := 0; j < t.cols; j++ {
			red[j] -= cb * t.rows[r][j]
		}
	}
	for k := 0; k < t.m; k++ {
		var y float64
		if sc := t.slackOf[k]; sc >= 0 {
			// Column is slackDir*e_k (in the sign-normalized system):
			// red = 0 - y'·(dir·e_k) => y'_k = -red/dir.
			y = -red[sc] / t.slackDir[k]
		} else if ac := t.artOf[k]; ac >= 0 {
			// Artificial column is e_k with zero phase-2 cost.
			y = -red[ac]
		}
		// Undo the row sign normalization: row was multiplied by rowSign.
		duals[k] = y * t.rowSign[k]
	}
}
