package simplex

import (
	"math"
	"testing"
)

// Additional stress cases: degeneracy, redundancy, and scaling — the
// regimes where naive simplex implementations stall or cycle.

func TestSolveRedundantRows(t *testing.T) {
	// The same constraint repeated three times plus its doubled form.
	p := &Problem{
		C: []float64{1, 2},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 2},
			{Coeffs: []float64{2, 2}, Sense: GE, RHS: 4},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-2) > testTol {
		t.Errorf("objective = %g, want 2 (all mass on x0)", sol.Objective)
	}
	checkPrimalFeasible(t, p, sol)
	checkDuality(t, p, sol)
}

func TestSolveRedundantEqualities(t *testing.T) {
	// Equality system with a dependent row: phase 1 must drive or drop
	// the redundant artificial without failing.
	p := &Problem{
		C: []float64{1, 1, 1},
		Cons: []Constraint{
			{Coeffs: []float64{1, 1, 0}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{0, 1, 1}, Sense: EQ, RHS: 2},
			{Coeffs: []float64{1, 2, 1}, Sense: EQ, RHS: 4}, // sum of the two
		},
	}
	sol := solveOK(t, p)
	checkPrimalFeasible(t, p, sol)
	if math.Abs(sol.Objective-2) > testTol { // x = (2,0,2)? cost 4; better x=(0,2,0) cost 2
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
}

func TestSolveWidelyScaledCoefficients(t *testing.T) {
	// Mix 1e-4 and 1e4 magnitudes; optimum known analytically:
	// min 1e4·x0 + 1e-4·x1 with 1e-4·x0 + 1e4·x1 >= 1 → all on x1:
	// x1 = 1e-4, cost 1e-8.
	p := &Problem{
		C: []float64{1e4, 1e-4},
		Cons: []Constraint{
			{Coeffs: []float64{1e-4, 1e4}, Sense: GE, RHS: 1},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-1e-8) > 1e-12 {
		t.Errorf("objective = %g, want 1e-8", sol.Objective)
	}
}

func TestSolveAllSensesMixed(t *testing.T) {
	// One of each sense with a unique optimum at the 3-constraint vertex.
	p := &Problem{
		C: []float64{-1, -1, 0},
		Cons: []Constraint{
			{Coeffs: []float64{1, 0, 0}, Sense: LE, RHS: 3},
			{Coeffs: []float64{0, 1, 0}, Sense: LE, RHS: 4},
			{Coeffs: []float64{0, 0, 1}, Sense: EQ, RHS: 5},
			{Coeffs: []float64{1, 1, 1}, Sense: GE, RHS: 6},
		},
	}
	sol := solveOK(t, p)
	if math.Abs(sol.Objective-(-7)) > testTol {
		t.Errorf("objective = %g, want -7 (x=(3,4,5))", sol.Objective)
	}
	if math.Abs(sol.X[2]-5) > testTol {
		t.Errorf("x2 = %g, want the equality value 5", sol.X[2])
	}
}

func TestSolveZeroRHSDegenerate(t *testing.T) {
	// Degenerate vertex at the origin: several tight rows with rhs 0.
	p := &Problem{
		C: []float64{1, 1},
		Cons: []Constraint{
			{Coeffs: []float64{1, -1}, Sense: GE, RHS: 0},
			{Coeffs: []float64{-1, 1}, Sense: GE, RHS: 0},
			{Coeffs: []float64{1, 1}, Sense: GE, RHS: 0},
		},
	}
	sol := solveOK(t, p)
	if sol.Objective != 0 {
		t.Errorf("objective = %g, want 0", sol.Objective)
	}
}
