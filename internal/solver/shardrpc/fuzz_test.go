package shardrpc

import (
	"bytes"
	"testing"
)

// FuzzShardRPCCodec pins the codec's byte-stability property: for any
// input that one of the wire decoders accepts, re-encoding the decoded
// value and decoding again must succeed and reproduce the same bytes —
// Encode(Decode(x)) is a fixed point of Decode∘Encode. This is what
// makes a spec replay after a worker restart land the worker on exactly
// the state the coordinator's mirror holds.
func FuzzShardRPCCodec(f *testing.F) {
	f.Add(EncodeBlockSpec(validSpec()))
	f.Add(EncodeSolveRequest(&SolveRequest{ID: "b", Slot: 2, Gen: 1, Rho: 4, Target: []float64{0.1 + 0.2, 3}}))
	f.Add(EncodeSolveResponse(&SolveResponse{Totals: []float64{1e-300, 2}, Outer: 3, Inner: 9}))
	f.Add(EncodeStateResponse(&StateResponse{X: []float64{0, 1.5}, Theta: []float64{-0.25}}))
	f.Add([]byte(`{"id":"x","ni":1,"nj":0,"eps2":0.01,"rowPtr":[0,0],"solver":{}}`))
	f.Add([]byte(`{"id":"","rho":-1}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeBlockSpec(data); err == nil {
			enc := EncodeBlockSpec(s)
			s2, err := DecodeBlockSpec(enc)
			if err != nil {
				t.Fatalf("spec re-decode failed: %v\nenc: %s", err, enc)
			}
			if re := EncodeBlockSpec(s2); !bytes.Equal(re, enc) {
				t.Fatalf("spec codec not byte-stable:\n 1st %s\n 2nd %s", enc, re)
			}
		}
		if r, err := DecodeSolveRequest(data); err == nil {
			enc := EncodeSolveRequest(r)
			r2, err := DecodeSolveRequest(enc)
			if err != nil {
				t.Fatalf("solve request re-decode failed: %v\nenc: %s", err, enc)
			}
			if re := EncodeSolveRequest(r2); !bytes.Equal(re, enc) {
				t.Fatalf("solve request codec not byte-stable:\n 1st %s\n 2nd %s", enc, re)
			}
		}
		if r, err := DecodeSolveResponse(data); err == nil {
			enc := EncodeSolveResponse(r)
			r2, err := DecodeSolveResponse(enc)
			if err != nil {
				t.Fatalf("solve response re-decode failed: %v\nenc: %s", err, enc)
			}
			if re := EncodeSolveResponse(r2); !bytes.Equal(re, enc) {
				t.Fatalf("solve response codec not byte-stable:\n 1st %s\n 2nd %s", enc, re)
			}
		}
		if r, err := DecodeStateResponse(data); err == nil {
			enc := EncodeStateResponse(r)
			r2, err := DecodeStateResponse(enc)
			if err != nil {
				t.Fatalf("state response re-decode failed: %v\nenc: %s", err, enc)
			}
			if re := EncodeStateResponse(r2); !bytes.Equal(re, enc) {
				t.Fatalf("state response codec not byte-stable:\n 1st %s\n 2nd %s", enc, re)
			}
		}
	})
}
