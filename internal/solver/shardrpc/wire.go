// Package shardrpc moves the shard blocks of the sharing-ADMM
// coordination loop (internal/solver/shard) behind a compact HTTP/JSON
// RPC boundary, so the S block solves of a slot can run on separate
// worker processes (cmd/edgeshard) while the coordinator — z-step,
// projection, capacity restoration — stays exactly where it is.
//
// The protocol is four POST endpoints under /v1/shard/:
//
//	begin-slot   push a BlockSpec: the complete packed state of one
//	             block at a slot boundary (coefficients, previous
//	             decision, warm iterate, demand duals, solver budget).
//	solve        one consensus x-step: the coordinator's (rho, target)
//	             in, the block's per-cloud totals out.
//	state        fetch the block's warm iterate and demand duals back
//	             to the coordinator (round-boundary state sync).
//	commit-slot  slot boundary marker; lets a worker retire per-slot
//	             state. Correctness never depends on it: the
//	             coordinator re-pushes a full BlockSpec every slot.
//
// Everything on the wire is encoding/json, which round-trips float64
// exactly (Go prints the shortest representation that re-parses to the
// same bits), so a remote block solve is bitwise identical to the same
// solve in process. The failure model rides on that: a worker that
// restarts lost nothing the coordinator cannot re-push, because the
// coordinator's in-process mirror of every block (shardrpc.Mirror) holds
// the authoritative state as of the last coordination round.
package shardrpc

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
)

// SolverOptions is the serializable subset of alm.Options a worker needs
// to reproduce a block solve bit-for-bit: the scalar budget and
// tolerances. Warm state travels separately (BlockSpec.Warm/Theta), and
// Workers stays 0 on both sides — shard blocks always solve serially
// inside, parallelism is across shards.
type SolverOptions struct {
	MaxOuter      int     `json:"maxOuter"`
	InnerIters    int     `json:"innerIters"`
	Penalty       float64 `json:"penalty"`
	PenaltyGrowth float64 `json:"penaltyGrowth"`
	FeasTol       float64 `json:"feasTol"`
	ObjTol        float64 `json:"objTol"`
	DualTol       float64 `json:"dualTol"`
}

// BlockSpec is the complete state of one shard block at a slot (or
// candidate-relayout) boundary: everything a worker needs to host the
// block's consensus x-steps. Slices are in the packed cloud-major CSR
// layout of model.CandidateSet; the receiver retains them.
type BlockSpec struct {
	// ID names the block; the coordinator picks a process-unique ID so
	// several coordinators can share one worker pool.
	ID string `json:"id"`
	// Slot and Gen version the spec: Gen increments on every candidate
	// relayout within a slot. A solve or state call carrying a stale
	// (Slot, Gen) is answered with ErrUnknownBlock so the caller
	// re-pushes.
	Slot int `json:"slot"`
	Gen  int `json:"gen"`
	// NI and NJ are the cloud count and the block's local user count.
	NI int `json:"ni"`
	NJ int `json:"nj"`
	// Eps2 is the migration-entropy regularization parameter ε₂.
	Eps2 float64 `json:"eps2"`
	// FastMath/FastMath32 select the batch-kernel entropy tier.
	FastMath   bool `json:"fastMath,omitempty"`
	FastMath32 bool `json:"fastMath32,omitempty"`
	// RowPtr/Cols are the candidate CSR: cloud i's variables occupy
	// [RowPtr[i], RowPtr[i+1]) with local user indices Cols[k] in [0,NJ).
	RowPtr []int `json:"rowPtr"`
	Cols   []int `json:"cols"`
	// Coef, Prev, and MgFac are the packed weighted static coefficients,
	// previous decision x'_{ij}, and migration factors wMg·b_i/τ_ij.
	Coef  []float64 `json:"coef"`
	Prev  []float64 `json:"prev"`
	MgFac []float64 `json:"mgFac"`
	// Warm is the packed warm iterate and Theta the per-user demand
	// duals — the ExportState-style warm state that makes a remote solve
	// resume exactly where the coordinator's mirror stands.
	Warm  []float64 `json:"warm"`
	Theta []float64 `json:"theta"`
	// Demand is the block users' workload λ_j (the demand-row RHS).
	Demand []float64 `json:"demand"`
	// Solver is the block's ALM budget.
	Solver SolverOptions `json:"solver"`
}

// SolveRequest asks for one consensus x-step of a hosted block.
type SolveRequest struct {
	ID   string `json:"id"`
	Slot int    `json:"slot"`
	Gen  int    `json:"gen"`
	// Rho is the ADMM consensus penalty and Target the per-cloud targets
	// c^s of this iteration (length NI).
	Rho    float64   `json:"rho"`
	Target []float64 `json:"target"`
}

// SolveResponse carries the block's post-solve per-cloud totals and the
// solve's iteration counts.
type SolveResponse struct {
	Totals []float64 `json:"totals"`
	Outer  int       `json:"outer"`
	Inner  int       `json:"inner"`
}

// StateRequest fetches a hosted block's warm state back to the
// coordinator's mirror.
type StateRequest struct {
	ID   string `json:"id"`
	Slot int    `json:"slot"`
	Gen  int    `json:"gen"`
}

// StateResponse is the block's packed warm iterate and demand duals.
type StateResponse struct {
	X     []float64 `json:"x"`
	Theta []float64 `json:"theta"`
}

// CommitRequest marks the slot committed on the worker.
type CommitRequest struct {
	ID   string `json:"id"`
	Slot int    `json:"slot"`
}

// Error codes carried in the wire error envelope.
const (
	// CodeUnknownBlock: the worker does not host this (ID, Slot, Gen) —
	// it restarted, was never pushed, or the spec is stale. The caller
	// recovers by re-pushing the BlockSpec from its mirror.
	CodeUnknownBlock = "unknown_block"
	// CodeBadRequest: the request failed validation; not retryable.
	CodeBadRequest = "bad_request"
	// CodeInternal: the solve itself failed.
	CodeInternal = "internal"
)

// Error is the structured RPC error both sides exchange.
type Error struct {
	Code string `json:"code"`
	Msg  string `json:"error"`
}

func (e *Error) Error() string { return fmt.Sprintf("shardrpc: %s (%s)", e.Msg, e.Code) }

// ErrUnknownBlock is the sentinel the client surfaces for
// CodeUnknownBlock responses; test with errors.Is.
var ErrUnknownBlock = errors.New("shardrpc: unknown block")

// Is lets errors.Is(err, ErrUnknownBlock) match a decoded *Error.
func (e *Error) Is(target error) bool {
	return target == ErrUnknownBlock && e.Code == CodeUnknownBlock
}

// errf builds a bad-request error.
func errf(format string, args ...any) error {
	return &Error{Code: CodeBadRequest, Msg: fmt.Sprintf(format, args...)}
}

// finite reports whether every element of v is a finite float64.
func finite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// nonneg reports whether every element of v is finite and >= 0.
func nonneg(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 {
			return false
		}
	}
	return true
}

// Validate checks the spec's structural invariants — the same conditions
// the solver layer would otherwise trip over: a consistent CSR, matching
// slice lengths, finite data, and nonnegative iterate/decision/demand.
func (s *BlockSpec) Validate() error {
	if s.ID == "" {
		return errf("spec: empty block ID")
	}
	if s.NI < 1 {
		return errf("spec %s: NI=%d, want >= 1", s.ID, s.NI)
	}
	if s.NJ < 0 {
		return errf("spec %s: NJ=%d, want >= 0", s.ID, s.NJ)
	}
	if len(s.RowPtr) != s.NI+1 || s.RowPtr[0] != 0 {
		return errf("spec %s: RowPtr len=%d first=%v, want len %d first 0",
			s.ID, len(s.RowPtr), s.RowPtr, s.NI+1)
	}
	for i := 0; i < s.NI; i++ {
		if s.RowPtr[i+1] < s.RowPtr[i] {
			return errf("spec %s: RowPtr decreases at cloud %d", s.ID, i)
		}
	}
	nnz := s.RowPtr[s.NI]
	if len(s.Cols) != nnz {
		return errf("spec %s: len(Cols)=%d, RowPtr covers %d", s.ID, len(s.Cols), nnz)
	}
	for k, j := range s.Cols {
		if j < 0 || j >= s.NJ {
			return errf("spec %s: Cols[%d]=%d out of [0,%d)", s.ID, k, j, s.NJ)
		}
	}
	if len(s.Coef) != nnz || len(s.Prev) != nnz || len(s.MgFac) != nnz || len(s.Warm) != nnz {
		return errf("spec %s: packed lengths coef=%d prev=%d mgFac=%d warm=%d, want %d",
			s.ID, len(s.Coef), len(s.Prev), len(s.MgFac), len(s.Warm), nnz)
	}
	if len(s.Theta) != s.NJ || len(s.Demand) != s.NJ {
		return errf("spec %s: theta=%d demand=%d, want %d", s.ID, len(s.Theta), len(s.Demand), s.NJ)
	}
	if !(s.Eps2 > 0) || math.IsInf(s.Eps2, 0) {
		return errf("spec %s: eps2=%v, want finite > 0", s.ID, s.Eps2)
	}
	if !finite(s.Coef) || !finite(s.MgFac) || !finite(s.Theta) {
		return errf("spec %s: non-finite coefficient data", s.ID)
	}
	if !nonneg(s.Prev) || !nonneg(s.Warm) || !nonneg(s.Demand) {
		return errf("spec %s: prev/warm/demand must be finite and >= 0", s.ID)
	}
	so := []float64{s.Solver.Penalty, s.Solver.PenaltyGrowth, s.Solver.FeasTol, s.Solver.ObjTol, s.Solver.DualTol}
	if !finite(so) {
		return errf("spec %s: non-finite solver options", s.ID)
	}
	return nil
}

// Validate checks a solve request's coordinator-side fields; the target
// length is checked by the host against the block's NI.
func (r *SolveRequest) Validate() error {
	if r.ID == "" {
		return errf("solve: empty block ID")
	}
	if math.IsNaN(r.Rho) || math.IsInf(r.Rho, 0) || r.Rho <= 0 {
		return errf("solve %s: rho=%v, want finite > 0", r.ID, r.Rho)
	}
	if !finite(r.Target) {
		return errf("solve %s: non-finite target", r.ID)
	}
	return nil
}

// Validate checks a solve response.
func (r *SolveResponse) Validate() error {
	if !finite(r.Totals) {
		return errf("solve response: non-finite totals")
	}
	return nil
}

// Validate checks a state response.
func (r *StateResponse) Validate() error {
	if !nonneg(r.X) {
		return errf("state response: x must be finite and >= 0")
	}
	if !finite(r.Theta) {
		return errf("state response: non-finite theta")
	}
	return nil
}

// The Encode/Decode pairs below are the canonical codec: Encode is plain
// encoding/json over the struct (deterministic field order, shortest
// float representation), and Decode is Unmarshal followed by Validate.
// The pair is byte-stable — Encode(Decode(Encode(v))) == Encode(v) — the
// property FuzzShardRPCCodec pins.

// EncodeBlockSpec marshals a spec to its canonical wire form.
func EncodeBlockSpec(s *BlockSpec) []byte { return mustJSON(s) }

// DecodeBlockSpec parses and validates a wire spec.
func DecodeBlockSpec(data []byte) (*BlockSpec, error) {
	var s BlockSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, errf("spec: %v", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// EncodeSolveRequest marshals a solve request.
func EncodeSolveRequest(r *SolveRequest) []byte { return mustJSON(r) }

// DecodeSolveRequest parses and validates a wire solve request.
func DecodeSolveRequest(data []byte) (*SolveRequest, error) {
	var r SolveRequest
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, errf("solve: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// EncodeSolveResponse marshals a solve response.
func EncodeSolveResponse(r *SolveResponse) []byte { return mustJSON(r) }

// DecodeSolveResponse parses and validates a wire solve response.
func DecodeSolveResponse(data []byte) (*SolveResponse, error) {
	var r SolveResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, errf("solve response: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// EncodeStateResponse marshals a state response.
func EncodeStateResponse(r *StateResponse) []byte { return mustJSON(r) }

// DecodeStateResponse parses and validates a wire state response.
func DecodeStateResponse(data []byte) (*StateResponse, error) {
	var r StateResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, errf("state response: %v", err)
	}
	if err := r.Validate(); err != nil {
		return nil, err
	}
	return &r, nil
}

// mustJSON marshals a wire struct; the types above contain nothing
// json.Marshal can reject (Validate has excluded NaN/Inf).
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("shardrpc: marshal %T: %v", v, err))
	}
	return b
}
