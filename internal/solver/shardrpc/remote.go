package shardrpc

import (
	"context"
	"errors"
	"fmt"

	"edgealloc/internal/solver/shard"
)

// foldProbeSlots is how many consecutive slots a folded (dead) remote
// block re-probes its worker at the slot boundary before the fold
// becomes permanent. A worker that restarts within a few slots rejoins
// via the spec re-push; one that stays dark stops costing timeouts.
const foldProbeSlots = 3

// Mirror is the coordinator-side in-process image of a remotely hosted
// block: the same shard.Block the coordinator would use without workers,
// plus the hooks the transport needs. The mirror is authoritative — it
// is the fallback solver when the worker dies, and the source of the
// BlockSpec replayed when a worker restarts. core's shardBlock
// implements it.
type Mirror interface {
	shard.Block
	// Frozen reports whether the block skips its solves this slot
	// (incremental tier); frozen solves never leave the process.
	Frozen() bool
	// Spec serializes the mirror's current bound state under the given
	// identity — the warm state as of the last coordination round.
	Spec(id string, slot, gen int) *BlockSpec
	// SetState overwrites the mirror's warm iterate and demand duals
	// with remote state (lengths must match the current bind).
	SetState(x, theta []float64) error
}

// RemoteBlock places one shard block on a worker: it implements
// shard.Block by translating Solve calls into RPCs, keeping the local
// mirror as warm fallback. Used by exactly one goroutine at a time (the
// coordinator solves each block on a single goroutine per iteration);
// the Client underneath may be shared.
//
// Failure handling, in escalation order:
//
//  1. Transient failures (timeout, transport error, 5xx) are retried
//     with exponential backoff inside the Client.
//  2. An unknown-block response — the worker restarted, or holds a
//     stale generation — triggers one spec re-push from the mirror
//     (the warm state of the last coordination round) and a retry.
//  3. Exhausted retries fold the block back into local solving via the
//     mirror. The fold is re-probed at the next foldProbeSlots slot
//     boundaries, then becomes permanent.
//
// A folded or restarted block costs at most one coordination round of
// block progress: the mirror is synced from the worker at every round
// boundary (SyncState), so its state is never older than the current
// round's start, and the sharing-ADMM loop re-derives the lost round
// under its usual convergence gates.
type RemoteBlock struct {
	mirror Mirror
	client *Client
	id     string

	ctx       context.Context
	slot, gen int
	synced    bool // worker holds the current (slot, gen) spec
	stale     bool // worker state is ahead of the mirror
	dead      bool
	deadSlots int // consecutive slots entered dead (fold probing)
	syncFails int // consecutive SyncState failures this slot
	foldErr   error
}

var _ shard.Block = (*RemoteBlock)(nil)

// NewRemoteBlock wires a mirror to a worker under the given block ID.
func NewRemoteBlock(client *Client, id string, mirror Mirror) *RemoteBlock {
	return &RemoteBlock{mirror: mirror, client: client, id: id}
}

// BeginSlot enters slot; ctx bounds every RPC of the slot (nil means
// background). The spec push is lazy — it happens at the first remote
// Solve — so frozen blocks never touch the network.
func (rb *RemoteBlock) BeginSlot(slot int, ctx context.Context) {
	rb.slot = slot
	rb.ctx = ctx
	rb.synced = false
	rb.stale = false
	rb.syncFails = 0
	if rb.dead {
		if rb.deadSlots < foldProbeSlots {
			rb.deadSlots++
			rb.dead = false // re-probe: the worker may be back
		}
	} else {
		rb.deadSlots = 0
	}
}

// Invalidate marks the pushed spec stale after a candidate relayout; the
// next remote Solve re-pushes.
func (rb *RemoteBlock) Invalidate() {
	rb.gen++
	rb.synced = false
	rb.stale = false
}

// Dead reports whether the block has folded back to local solving.
func (rb *RemoteBlock) Dead() bool { return rb.dead }

// FoldErr returns the error that caused the current fold (nil if live).
func (rb *RemoteBlock) FoldErr() error {
	if !rb.dead {
		return nil
	}
	return rb.foldErr
}

// Solve implements shard.Block.
func (rb *RemoteBlock) Solve(rho float64, target, totals []float64) (int, int, error) {
	if rb.dead || rb.mirror.Frozen() {
		return rb.mirror.Solve(rho, target, totals)
	}
	resp, err := rb.solveRemote(rho, target)
	if err != nil {
		rb.fold(err)
		return rb.mirror.Solve(rho, target, totals)
	}
	if len(resp.Totals) != len(totals) {
		rb.fold(fmt.Errorf("shardrpc: block %s: worker returned %d totals, want %d",
			rb.id, len(resp.Totals), len(totals)))
		return rb.mirror.Solve(rho, target, totals)
	}
	copy(totals, resp.Totals)
	rb.stale = true
	rb.deadSlots = 0
	return resp.Outer, resp.Inner, nil
}

// solveRemote pushes the spec if needed, runs the solve, and replays the
// spec once on an unknown-block response (worker restart).
func (rb *RemoteBlock) solveRemote(rho float64, target []float64) (*SolveResponse, error) {
	pushed := false
	if !rb.synced {
		if err := rb.push(); err != nil {
			return nil, err
		}
		pushed = true
	}
	resp, err := rb.client.Solve(rb.ctx, rb.id, rb.slot, rb.gen, rho, target)
	if err != nil && errors.Is(err, ErrUnknownBlock) && !pushed {
		if perr := rb.push(); perr != nil {
			return nil, perr
		}
		resp, err = rb.client.Solve(rb.ctx, rb.id, rb.slot, rb.gen, rho, target)
	}
	return resp, err
}

// push replays the mirror's warm state to the worker.
func (rb *RemoteBlock) push() error {
	if err := rb.client.BeginSlot(rb.ctx, rb.mirror.Spec(rb.id, rb.slot, rb.gen)); err != nil {
		return err
	}
	rb.synced = true
	rb.stale = false
	return nil
}

// WarmTotalsInto implements shard.Block. The mirror is synced at every
// round boundary, and the coordinator reads warm totals only at round
// starts, so delegating locally is exact.
func (rb *RemoteBlock) WarmTotalsInto(totals []float64) { rb.mirror.WarmTotalsInto(totals) }

// SyncState pulls the worker's post-round state into the mirror. The
// caller (core's solveShard) invokes it after every coordination round,
// before anything reads the mirror's iterate or duals. An error means
// the mirror still holds round-start state: the caller must run another
// coordination round so the assembled result and the block states agree.
// An unknown-block failure (the worker restarted after solving) keeps
// the block remote — the next round re-pushes; other failures fold after
// two consecutive misses.
func (rb *RemoteBlock) SyncState() error {
	if rb.dead || !rb.stale {
		return nil
	}
	st, err := rb.client.State(rb.ctx, rb.id, rb.slot, rb.gen)
	if err == nil {
		err = rb.mirror.SetState(st.X, st.Theta)
		if err == nil {
			rb.stale = false
			rb.syncFails = 0
			return nil
		}
	}
	rb.syncFails++
	rb.stale = false // the mirror's round-start state becomes authoritative
	if errors.Is(err, ErrUnknownBlock) && rb.syncFails < 2 {
		rb.synced = false // restarted worker: re-push next round
	} else {
		rb.fold(err)
	}
	return err
}

// Commit marks the slot committed on the worker, best-effort.
func (rb *RemoteBlock) Commit() {
	if rb.dead {
		return
	}
	_ = rb.client.Commit(rb.ctx, rb.id, rb.slot)
}

// fold sends the block back to local solving.
func (rb *RemoteBlock) fold(err error) {
	if rb.dead {
		return
	}
	rb.dead = true
	rb.foldErr = err
	rb.client.Metrics().CountShardRPCFallback()
}
