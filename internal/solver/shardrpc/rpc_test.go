package shardrpc

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgealloc/internal/telemetry"
)

// fastClient returns client options that keep retry backoff out of the
// test clock.
func fastClient() ClientOptions {
	return ClientOptions{Timeout: 5 * time.Second, Backoff: time.Millisecond}
}

func TestClientRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	c := NewClient(srv.URL, fastClient())
	if err := c.Commit(context.Background(), "b0", 1); err != nil {
		t.Fatalf("Commit after two 500s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two retries)", got)
	}
}

func TestClientRetriesExhausted(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := NewClient(srv.URL, fastClient()) // Retries=0 → default 2
	err := c.Commit(context.Background(), "b0", 1)
	if err == nil {
		t.Fatal("Commit succeeded against an always-503 worker")
	}
	if !strings.Contains(err.Error(), "retries exhausted") {
		t.Fatalf("error %q does not mention exhausted retries", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
}

func TestClientNegativeRetriesDisables(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	opts := fastClient()
	opts.Retries = -1
	c := NewClient(srv.URL, opts)
	if err := c.Commit(context.Background(), "b0", 1); err == nil {
		t.Fatal("Commit succeeded against an always-500 worker")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (retries disabled)", got)
	}
}

func TestClientDoesNotRetryStructuredErrors(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		body       string
		wantCode   string
		unknownBlk bool
	}{
		{"unknown block", http.StatusNotFound, `{"code":"unknown_block","error":"not hosted"}`, CodeUnknownBlock, true},
		{"bad request", http.StatusBadRequest, `{"code":"bad_request","error":"broken spec"}`, CodeBadRequest, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var calls atomic.Int64
			srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				calls.Add(1)
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(tc.status)
				w.Write([]byte(tc.body))
			}))
			defer srv.Close()

			c := NewClient(srv.URL, fastClient())
			_, err := c.Solve(context.Background(), "b0", 1, 0, 4, []float64{1})
			if err == nil {
				t.Fatal("Solve succeeded against an erroring worker")
			}
			if got := calls.Load(); got != 1 {
				t.Fatalf("attempts = %d, want 1 (structured errors are not retried)", got)
			}
			var e *Error
			if !errors.As(err, &e) || e.Code != tc.wantCode {
				t.Fatalf("error = %v, want *Error code %s", err, tc.wantCode)
			}
			if errors.Is(err, ErrUnknownBlock) != tc.unknownBlk {
				t.Fatalf("errors.Is(err, ErrUnknownBlock) = %v, want %v", !tc.unknownBlk, tc.unknownBlk)
			}
		})
	}
}

func TestClientMapsOpaqueErrorBodies(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "panic: worker exploded", http.StatusBadGateway)
	}))
	defer srv.Close()

	opts := fastClient()
	opts.Retries = -1
	c := NewClient(srv.URL, opts)
	err := c.Commit(context.Background(), "b0", 1)
	if err == nil {
		t.Fatal("Commit succeeded against a 502 worker")
	}
	var e *Error
	if !errors.As(err, &e) || e.Code != CodeInternal {
		t.Fatalf("error = %v, want internal *Error", err)
	}
	if !strings.Contains(e.Msg, "HTTP 502") {
		t.Fatalf("error %q does not carry the HTTP status", e.Msg)
	}
}

func TestClientAttemptTimeout(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release)

	opts := fastClient()
	opts.Timeout = 20 * time.Millisecond
	opts.Retries = -1
	c := NewClient(srv.URL, opts)
	if err := c.Commit(context.Background(), "b0", 1); err == nil {
		t.Fatal("Commit succeeded against a hung worker")
	}
}

func TestClientRecordsAttemptTelemetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("{}"))
	}))
	defer srv.Close()

	reg := telemetry.NewRegistry()
	m := telemetry.NewSolverMetrics(reg)
	opts := fastClient()
	opts.Metrics = m
	c := NewClient(srv.URL, opts)
	if err := c.Commit(context.Background(), "b0", 1); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got := m.RPCCalls.Value(); got != 2 {
		t.Fatalf("calls counter = %v, want 2", got)
	}
	if got := m.RPCRetries.Value(); got != 1 {
		t.Fatalf("retries counter = %v, want 1", got)
	}
	if m.RPCBytes.Value() <= 0 {
		t.Fatal("bytes counter did not advance")
	}
}

// hookHost is a scriptable in-memory Host: it stores pushed specs keyed
// by ID, echoes the solve target back as the totals (so tests can tell a
// remote solve from a mirror fallback), and returns spec-derived state
// with a +1 offset (so tests can tell synced state from the push).
type hookHost struct {
	mu       sync.Mutex
	specs    map[string]*BlockSpec
	begins   int
	solves   int
	states   int
	preSolve func(h *hookHost, req *SolveRequest) error
	preState func(h *hookHost, req *StateRequest) error
	mangle   func(resp *SolveResponse)
}

func newHookHost() *hookHost { return &hookHost{specs: map[string]*BlockSpec{}} }

func (h *hookHost) forget(id string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.specs, id)
}

func (h *hookHost) lookup(id string, slot, gen int) (*BlockSpec, error) {
	s, ok := h.specs[id]
	if !ok || s.Slot != slot || s.Gen != gen {
		return nil, &Error{Code: CodeUnknownBlock, Msg: "not hosted"}
	}
	return s, nil
}

func (h *hookHost) BeginSlot(spec *BlockSpec) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.begins++
	h.specs[spec.ID] = spec
	return nil
}

func (h *hookHost) Solve(req *SolveRequest) (*SolveResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.solves++
	if h.preSolve != nil {
		if err := h.preSolve(h, req); err != nil {
			return nil, err
		}
	}
	s, err := h.lookup(req.ID, req.Slot, req.Gen)
	if err != nil {
		return nil, err
	}
	resp := &SolveResponse{Totals: append([]float64(nil), req.Target[:s.NI]...), Outer: 7, Inner: 42}
	if h.mangle != nil {
		h.mangle(resp)
	}
	return resp, nil
}

func (h *hookHost) State(req *StateRequest) (*StateResponse, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.states++
	if h.preState != nil {
		if err := h.preState(h, req); err != nil {
			return nil, err
		}
	}
	s, err := h.lookup(req.ID, req.Slot, req.Gen)
	if err != nil {
		return nil, err
	}
	resp := &StateResponse{X: make([]float64, len(s.Warm)), Theta: make([]float64, len(s.Theta))}
	for i, v := range s.Warm {
		resp.X[i] = v + 1
	}
	for j, v := range s.Theta {
		resp.Theta[j] = v + 1
	}
	return resp, nil
}

func (h *hookHost) Commit(req *CommitRequest) error { return nil }

func (h *hookHost) counts() (begins, solves, states int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.begins, h.solves, h.states
}

// fakeMirror is a scriptable Mirror: its local Solve writes the sentinel
// -1 into every total, so a test can tell whether a RemoteBlock solved
// remotely (target echo) or fell back.
type fakeMirror struct {
	frozen      bool
	solveCalls  int
	specCalls   int
	x, theta    []float64
	setStateErr error
}

func newFakeMirror() *fakeMirror { return &fakeMirror{} }

func (m *fakeMirror) Solve(rho float64, target, totals []float64) (int, int, error) {
	m.solveCalls++
	for i := range totals {
		totals[i] = -1
	}
	return 1, 1, nil
}

func (m *fakeMirror) WarmTotalsInto(totals []float64) {
	for i := range totals {
		totals[i] = 0.25
	}
}

func (m *fakeMirror) Frozen() bool { return m.frozen }

func (m *fakeMirror) Spec(id string, slot, gen int) *BlockSpec {
	m.specCalls++
	s := validSpec()
	s.ID, s.Slot, s.Gen = id, slot, gen
	return s
}

func (m *fakeMirror) SetState(x, theta []float64) error {
	if m.setStateErr != nil {
		return m.setStateErr
	}
	m.x = append(m.x[:0], x...)
	m.theta = append(m.theta[:0], theta...)
	return nil
}

// remoteFixture wires a RemoteBlock to a hookHost behind a real HTTP
// server.
func remoteFixture(t *testing.T, opts ClientOptions) (*RemoteBlock, *hookHost, *fakeMirror, *telemetry.SolverMetrics, *httptest.Server) {
	t.Helper()
	host := newHookHost()
	srv := httptest.NewServer(NewServer(host))
	t.Cleanup(srv.Close)
	m := telemetry.NewSolverMetrics(telemetry.NewRegistry())
	opts.Metrics = m
	mirror := newFakeMirror()
	rb := NewRemoteBlock(NewClient(srv.URL, opts), "blk", mirror)
	return rb, host, mirror, m, srv
}

func TestRemoteBlockSolvesRemotely(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	target := []float64{1.5, 2.5}
	totals := make([]float64, 2)
	outer, inner, err := rb.Solve(4, target, totals)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if outer != 7 || inner != 42 {
		t.Fatalf("iteration counts = (%d, %d), want worker's (7, 42)", outer, inner)
	}
	if totals[0] != 1.5 || totals[1] != 2.5 {
		t.Fatalf("totals = %v, want the remote echo of the target", totals)
	}
	if mirror.solveCalls != 0 {
		t.Fatalf("mirror solved %d times, want 0", mirror.solveCalls)
	}
	begins, solves, _ := host.counts()
	if begins != 1 || solves != 1 {
		t.Fatalf("worker saw begins=%d solves=%d, want 1/1 (lazy push then solve)", begins, solves)
	}

	// A second solve in the same (slot, gen) reuses the pushed spec.
	if _, _, err := rb.Solve(4, target, totals); err != nil {
		t.Fatalf("second Solve: %v", err)
	}
	if begins, solves, _ = host.counts(); begins != 1 || solves != 2 {
		t.Fatalf("worker saw begins=%d solves=%d, want 1/2 (no re-push)", begins, solves)
	}
}

func TestRemoteBlockFrozenStaysLocal(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	mirror.frozen = true
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if mirror.solveCalls != 1 || totals[0] != -1 {
		t.Fatal("frozen block did not delegate to the mirror")
	}
	if begins, solves, states := host.counts(); begins+solves+states != 0 {
		t.Fatalf("frozen block touched the network: begins=%d solves=%d states=%d", begins, solves, states)
	}
}

func TestRemoteBlockRepushesOnUnknownBlock(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("first Solve: %v", err)
	}

	// Worker "restarts": it forgets the block between solves.
	host.forget("blk")
	if _, _, err := rb.Solve(4, []float64{3, 4}, totals); err != nil {
		t.Fatalf("Solve after worker restart: %v", err)
	}
	if totals[0] != 3 || totals[1] != 4 {
		t.Fatalf("totals = %v, want the remote echo after re-push", totals)
	}
	if mirror.solveCalls != 0 {
		t.Fatal("recoverable restart fell back to the mirror")
	}
	if rb.Dead() {
		t.Fatal("recoverable restart folded the block")
	}
	begins, solves, _ := host.counts()
	if begins != 2 || solves != 3 {
		t.Fatalf("worker saw begins=%d solves=%d, want 2/3 (push, solve, failed solve, re-push, solve)", begins, solves)
	}
}

func TestRemoteBlockFoldsWhenWorkerDies(t *testing.T) {
	opts := fastClient()
	opts.Retries = -1
	rb, _, mirror, metrics, srv := remoteFixture(t, opts)
	rb.BeginSlot(1, context.Background())
	srv.Close() // worker gone before the first solve

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve must fall back, not fail: %v", err)
	}
	if totals[0] != -1 {
		t.Fatalf("totals = %v, want the mirror sentinel", totals)
	}
	if !rb.Dead() || rb.FoldErr() == nil {
		t.Fatal("block did not fold after a dead worker")
	}
	if got := metrics.RPCFallbacks.Value(); got != 1 {
		t.Fatalf("fallback counter = %v, want 1", got)
	}

	// Subsequent solves in the slot stay local without touching the net.
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("folded Solve: %v", err)
	}
	if mirror.solveCalls != 2 {
		t.Fatalf("mirror solves = %d, want 2", mirror.solveCalls)
	}
	if got := metrics.RPCFallbacks.Value(); got != 1 {
		t.Fatalf("fold counted more than once: %v", got)
	}
	// SyncState on a folded block is a no-op.
	if err := rb.SyncState(); err != nil {
		t.Fatalf("SyncState on a folded block: %v", err)
	}
}

func TestRemoteBlockFoldsOnShortTotals(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	host.mangle = func(resp *SolveResponse) { resp.Totals = resp.Totals[:1] }
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve must fall back, not fail: %v", err)
	}
	if !rb.Dead() {
		t.Fatal("block did not fold on a totals length mismatch")
	}
	if mirror.solveCalls != 1 || totals[0] != -1 {
		t.Fatal("mismatched response was not discarded in favor of the mirror")
	}
}

func TestRemoteBlockFoldProbing(t *testing.T) {
	opts := fastClient()
	opts.Retries = -1
	rb, _, mirror, _, srv := remoteFixture(t, opts)
	srv.Close()

	totals := make([]float64, 2)
	slot := 1
	rb.BeginSlot(slot, context.Background())
	rb.Solve(4, []float64{1, 2}, totals) // folds
	if !rb.Dead() {
		t.Fatal("block did not fold")
	}

	// The next foldProbeSlots slot boundaries re-probe (and re-fold,
	// since the worker stays dark)...
	for probe := 0; probe < foldProbeSlots; probe++ {
		slot++
		rb.BeginSlot(slot, context.Background())
		if rb.Dead() {
			t.Fatalf("probe %d: BeginSlot did not re-probe", probe)
		}
		rb.Solve(4, []float64{1, 2}, totals)
		if !rb.Dead() {
			t.Fatalf("probe %d: block did not re-fold", probe)
		}
	}

	// ...after which the fold is permanent.
	slot++
	rb.BeginSlot(slot, context.Background())
	if !rb.Dead() {
		t.Fatal("fold did not become permanent after the probe budget")
	}
	before := mirror.solveCalls
	rb.Solve(4, []float64{1, 2}, totals)
	if mirror.solveCalls != before+1 {
		t.Fatal("permanently folded block did not solve locally")
	}
}

func TestRemoteBlockRecoversDuringProbe(t *testing.T) {
	opts := fastClient()
	opts.Retries = -1
	host := newHookHost()
	var down atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		NewServer(host).ServeHTTP(w, r)
	}))
	defer srv.Close()
	mirror := newFakeMirror()
	rb := NewRemoteBlock(NewClient(srv.URL, opts), "blk", mirror)

	totals := make([]float64, 2)
	down.Store(true)
	rb.BeginSlot(1, context.Background())
	rb.Solve(4, []float64{1, 2}, totals) // folds
	if !rb.Dead() {
		t.Fatal("block did not fold")
	}

	down.Store(false) // worker restarts before the next slot
	rb.BeginSlot(2, context.Background())
	if _, _, err := rb.Solve(4, []float64{5, 6}, totals); err != nil {
		t.Fatalf("probe Solve: %v", err)
	}
	if rb.Dead() || totals[0] != 5 {
		t.Fatalf("probe did not rejoin the worker: dead=%v totals=%v", rb.Dead(), totals)
	}

	// Rejoining resets the probe budget: a later outage gets fresh probes.
	down.Store(true)
	rb.BeginSlot(3, context.Background())
	rb.Solve(4, []float64{1, 2}, totals)
	if !rb.Dead() {
		t.Fatal("block did not re-fold in the later outage")
	}
	rb.BeginSlot(4, context.Background())
	if rb.Dead() {
		t.Fatal("probe budget was not reset by the successful rejoin")
	}
}

func TestRemoteBlockSyncState(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	// Nothing solved remotely yet: SyncState is a no-op.
	if err := rb.SyncState(); err != nil {
		t.Fatalf("idle SyncState: %v", err)
	}

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if err := rb.SyncState(); err != nil {
		t.Fatalf("SyncState: %v", err)
	}
	// hookHost serves warm+1 / theta+1 of the pushed spec.
	want := validSpec()
	for i, v := range want.Warm {
		if mirror.x[i] != v+1 {
			t.Fatalf("mirror.x = %v, want warm+1", mirror.x)
		}
	}
	for j, v := range want.Theta {
		if mirror.theta[j] != v+1 {
			t.Fatalf("mirror.theta = %v, want theta+1", mirror.theta)
		}
	}

	// Synced: a second SyncState without a new solve is a no-op.
	_, _, statesBefore := host.counts()
	if err := rb.SyncState(); err != nil {
		t.Fatalf("repeat SyncState: %v", err)
	}
	if _, _, states := host.counts(); states != statesBefore {
		t.Fatal("SyncState hit the network without a new remote solve")
	}
}

func TestRemoteBlockSyncStateUnknownBlockTwoStrikes(t *testing.T) {
	rb, host, mirror, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	// Strike one: the worker restarts after solving; the mirror keeps its
	// round-start state and the block stays remote for a re-push.
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	host.forget("blk")
	if err := rb.SyncState(); err == nil {
		t.Fatal("SyncState succeeded against a restarted worker")
	}
	if rb.Dead() {
		t.Fatal("one unknown-block sync failure folded the block")
	}

	// The next round re-pushes and solves remotely again.
	if _, _, err := rb.Solve(4, []float64{3, 4}, totals); err != nil {
		t.Fatalf("re-push Solve: %v", err)
	}
	if totals[0] != 3 {
		t.Fatalf("totals = %v, want remote echo", totals)
	}

	// Strike two: a second consecutive unknown-block sync failure folds.
	host.forget("blk")
	if err := rb.SyncState(); err == nil {
		t.Fatal("SyncState succeeded against a restarted worker")
	}
	if !rb.Dead() {
		t.Fatal("two consecutive unknown-block sync failures did not fold the block")
	}
	if mirror.solveCalls != 0 {
		t.Fatal("remote rounds leaked into the mirror solver")
	}
}

func TestRemoteBlockSyncStateTransportFailureFolds(t *testing.T) {
	opts := fastClient()
	opts.Retries = -1
	rb, _, _, metrics, srv := remoteFixture(t, opts)
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	if _, _, err := rb.Solve(4, []float64{1, 2}, totals); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	srv.Close() // worker dies between the solve and the state sync
	if err := rb.SyncState(); err == nil {
		t.Fatal("SyncState succeeded against a dead worker")
	}
	if !rb.Dead() {
		t.Fatal("a non-recoverable sync failure did not fold the block")
	}
	if got := metrics.RPCFallbacks.Value(); got != 1 {
		t.Fatalf("fallback counter = %v, want 1", got)
	}
}

func TestRemoteBlockSyncStateResetAfterSuccess(t *testing.T) {
	// An unknown-block miss followed by a successful sync resets the
	// strike counter: a later single miss must not fold.
	rb, host, _, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	rb.Solve(4, []float64{1, 2}, totals)
	host.forget("blk")
	rb.SyncState() // strike one

	rb.Solve(4, []float64{1, 2}, totals)
	if err := rb.SyncState(); err != nil { // success resets the counter
		t.Fatalf("SyncState: %v", err)
	}

	rb.Solve(4, []float64{1, 2}, totals)
	host.forget("blk")
	if err := rb.SyncState(); err == nil {
		t.Fatal("SyncState succeeded against a restarted worker")
	}
	if rb.Dead() {
		t.Fatal("strike counter was not reset by the successful sync")
	}
}

func TestRemoteBlockInvalidateRepushes(t *testing.T) {
	rb, host, _, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())

	totals := make([]float64, 2)
	rb.Solve(4, []float64{1, 2}, totals)
	rb.Invalidate() // candidate relayout: the pushed spec is stale
	if _, _, err := rb.Solve(4, []float64{3, 4}, totals); err != nil {
		t.Fatalf("Solve after Invalidate: %v", err)
	}
	begins, _, _ := host.counts()
	if begins != 2 {
		t.Fatalf("worker saw %d pushes, want 2 (Invalidate forces a re-push)", begins)
	}
	if totals[0] != 3 {
		t.Fatalf("totals = %v, want remote echo under the new generation", totals)
	}
}

func TestRemoteBlockWarmTotalsDelegates(t *testing.T) {
	rb, host, _, _, _ := remoteFixture(t, fastClient())
	rb.BeginSlot(1, context.Background())
	totals := make([]float64, 2)
	rb.WarmTotalsInto(totals)
	if totals[0] != 0.25 || totals[1] != 0.25 {
		t.Fatalf("warm totals = %v, want the mirror's", totals)
	}
	if begins, solves, states := host.counts(); begins+solves+states != 0 {
		t.Fatal("WarmTotalsInto touched the network")
	}
}

func TestServerRejectsWrongMethodAndPath(t *testing.T) {
	srv := httptest.NewServer(NewServer(newHookHost()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/v1/shard/solve")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET solve = %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/shard/nope", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST nope = %d, want 404", resp.StatusCode)
	}
}

func TestServerValidatesSpecs(t *testing.T) {
	srv := httptest.NewServer(NewServer(newHookHost()))
	defer srv.Close()
	c := NewClient(srv.URL, fastClient())

	bad := validSpec()
	bad.Cols[0] = 99 // out of range
	err := c.BeginSlot(context.Background(), bad)
	var e *Error
	if err == nil || !errors.As(err, &e) || e.Code != CodeBadRequest {
		t.Fatalf("begin-slot with a broken spec: err = %v, want bad_request", err)
	}
}
