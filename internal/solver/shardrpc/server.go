package shardrpc

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
)

// maxBodyBytes bounds a request body. Specs scale with the block's
// packed size (~20 bytes per nonzero per array); 256 MiB covers blocks
// three orders of magnitude past the largest benchmarked tier while
// keeping a hostile peer from exhausting worker memory.
const maxBodyBytes = 256 << 20

// Host is the worker-side implementation of the shard RPC: it owns the
// hosted blocks and runs their solves. core.ShardHost is the production
// implementation. A Host must be safe for concurrent calls — the
// coordinator solves its blocks on parallel goroutines.
type Host interface {
	// BeginSlot installs (or replaces) the block described by the spec.
	// The host retains the spec's slices.
	BeginSlot(spec *BlockSpec) error
	// Solve runs one consensus x-step of a hosted block. A request whose
	// (ID, Slot, Gen) is not hosted fails with CodeUnknownBlock.
	Solve(req *SolveRequest) (*SolveResponse, error)
	// State returns a hosted block's warm iterate and demand duals.
	State(req *StateRequest) (*StateResponse, error)
	// Commit marks the slot committed on the block.
	Commit(req *CommitRequest) error
}

// Server is the HTTP face of a Host: the four /v1/shard/ endpoints,
// JSON envelopes on both success and failure. Mount it on a mux (or use
// it as the root handler) in cmd/edgeshard.
type Server struct {
	host Host
	mux  *http.ServeMux
}

// NewServer wraps a host.
func NewServer(h Host) *Server {
	s := &Server{host: h, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/shard/begin-slot", s.handleBeginSlot)
	s.mux.HandleFunc("POST /v1/shard/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/shard/state", s.handleState)
	s.mux.HandleFunc("POST /v1/shard/commit-slot", s.handleCommit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleBeginSlot(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := DecodeBlockSpec(body)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := s.host.BeginSlot(spec); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	req, err := DecodeSolveRequest(body)
	if err != nil {
		writeError(w, err)
		return
	}
	resp, err := s.host.Solve(req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeRaw(w, EncodeSolveResponse(resp))
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req StateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, errf("state: %v", err))
		return
	}
	resp, err := s.host.State(&req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeRaw(w, EncodeStateResponse(resp))
}

func (s *Server) handleCommit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var req CommitRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, errf("commit: %v", err))
		return
	}
	if err := s.host.Commit(&req); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, struct{}{})
}

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, errf("reading request: %v", err)
	}
	return body, nil
}

// writeError maps structured errors onto HTTP statuses: unknown block →
// 404 (the client re-pushes), bad request → 400 (permanent), anything
// else → 500 (retryable).
func writeError(w http.ResponseWriter, err error) {
	e := &Error{}
	if !errors.As(err, &e) {
		e = &Error{Code: CodeInternal, Msg: err.Error()}
	}
	status := http.StatusInternalServerError
	switch e.Code {
	case CodeUnknownBlock:
		status = http.StatusNotFound
	case CodeBadRequest:
		status = http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(e)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func writeRaw(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(body)
}
