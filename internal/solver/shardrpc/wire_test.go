package shardrpc

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"
)

// validSpec builds a small structurally consistent BlockSpec: two clouds,
// three local users, four candidate nonzeros.
func validSpec() *BlockSpec {
	return &BlockSpec{
		ID: "b0", Slot: 3, Gen: 1,
		NI: 2, NJ: 3, Eps2: 1e-6,
		RowPtr: []int{0, 2, 4},
		Cols:   []int{0, 1, 1, 2},
		Coef:   []float64{0.5, 1.25, -0.75, 2},
		Prev:   []float64{0, 0.5, 1, 0.25},
		MgFac:  []float64{1, 2, 3, 4},
		Warm:   []float64{0.1, 0.2, 0.3, 0.4},
		Theta:  []float64{0.5, -0.25, 0},
		Demand: []float64{1, 2, 3},
		Solver: SolverOptions{
			MaxOuter: 4, InnerIters: 50, Penalty: 8, PenaltyGrowth: 5,
			FeasTol: 1e-7, ObjTol: 1e-9, DualTol: 1e-6,
		},
	}
}

func TestBlockSpecRoundTrip(t *testing.T) {
	s := validSpec()
	// Exercise awkward float64s: JSON must round-trip them exactly.
	s.Coef[0] = 0.1 + 0.2 // 0.30000000000000004
	s.Warm[1] = math.Nextafter(1, 2)
	s.Theta[0] = -math.SmallestNonzeroFloat64
	enc := EncodeBlockSpec(s)
	got, err := DecodeBlockSpec(enc)
	if err != nil {
		t.Fatalf("DecodeBlockSpec: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", got, s)
	}
	if re := EncodeBlockSpec(got); !bytes.Equal(re, enc) {
		t.Fatalf("re-encode not byte-stable:\n got %s\nwant %s", re, enc)
	}
}

func TestRequestResponseRoundTrips(t *testing.T) {
	sreq := &SolveRequest{ID: "b1", Slot: 7, Gen: 2, Rho: 4, Target: []float64{1.5, 0.25}}
	if got, err := DecodeSolveRequest(EncodeSolveRequest(sreq)); err != nil || !reflect.DeepEqual(got, sreq) {
		t.Fatalf("solve request round trip: got %+v err %v", got, err)
	}
	sresp := &SolveResponse{Totals: []float64{0.1 + 0.2, 3}, Outer: 5, Inner: 91}
	if got, err := DecodeSolveResponse(EncodeSolveResponse(sresp)); err != nil || !reflect.DeepEqual(got, sresp) {
		t.Fatalf("solve response round trip: got %+v err %v", got, err)
	}
	stresp := &StateResponse{X: []float64{0, 1, 2, 3}, Theta: []float64{-1, 0.5, 0}}
	if got, err := DecodeStateResponse(EncodeStateResponse(stresp)); err != nil || !reflect.DeepEqual(got, stresp) {
		t.Fatalf("state response round trip: got %+v err %v", got, err)
	}
}

func TestBlockSpecValidateRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s *BlockSpec)
		wantSub string
	}{
		{"empty ID", func(s *BlockSpec) { s.ID = "" }, "empty block ID"},
		{"NI zero", func(s *BlockSpec) { s.NI = 0 }, "NI=0"},
		{"NJ negative", func(s *BlockSpec) { s.NJ = -1 }, "NJ=-1"},
		{"RowPtr wrong length", func(s *BlockSpec) { s.RowPtr = []int{0, 4} }, "RowPtr"},
		{"RowPtr nonzero start", func(s *BlockSpec) { s.RowPtr = []int{1, 2, 4} }, "RowPtr"},
		{"RowPtr decreasing", func(s *BlockSpec) { s.RowPtr = []int{0, 3, 2} }, "decreases"},
		{"Cols length mismatch", func(s *BlockSpec) { s.Cols = s.Cols[:3] }, "len(Cols)"},
		{"Cols out of range", func(s *BlockSpec) { s.Cols[2] = 3 }, "out of"},
		{"Cols negative", func(s *BlockSpec) { s.Cols[0] = -1 }, "out of"},
		{"packed length mismatch", func(s *BlockSpec) { s.Coef = s.Coef[:2] }, "packed lengths"},
		{"warm length mismatch", func(s *BlockSpec) { s.Warm = append(s.Warm, 0) }, "packed lengths"},
		{"theta length mismatch", func(s *BlockSpec) { s.Theta = s.Theta[:2] }, "theta"},
		{"demand length mismatch", func(s *BlockSpec) { s.Demand = append(s.Demand, 1) }, "demand"},
		{"eps2 zero", func(s *BlockSpec) { s.Eps2 = 0 }, "eps2"},
		{"eps2 NaN", func(s *BlockSpec) { s.Eps2 = math.NaN() }, "eps2"},
		{"eps2 Inf", func(s *BlockSpec) { s.Eps2 = math.Inf(1) }, "eps2"},
		{"coef NaN", func(s *BlockSpec) { s.Coef[1] = math.NaN() }, "non-finite"},
		{"mgFac Inf", func(s *BlockSpec) { s.MgFac[0] = math.Inf(-1) }, "non-finite"},
		{"theta NaN", func(s *BlockSpec) { s.Theta[0] = math.NaN() }, "non-finite"},
		{"prev negative", func(s *BlockSpec) { s.Prev[0] = -0.5 }, ">= 0"},
		{"warm negative", func(s *BlockSpec) { s.Warm[3] = -1 }, ">= 0"},
		{"demand NaN", func(s *BlockSpec) { s.Demand[1] = math.NaN() }, ">= 0"},
		{"solver NaN", func(s *BlockSpec) { s.Solver.FeasTol = math.NaN() }, "solver options"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := validSpec()
			tc.mutate(s)
			err := s.Validate()
			if err == nil {
				t.Fatalf("Validate accepted a broken spec")
			}
			var e *Error
			if !errors.As(err, &e) || e.Code != CodeBadRequest {
				t.Fatalf("want bad_request *Error, got %v", err)
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func TestBlockSpecValidateAcceptsEmptyBlock(t *testing.T) {
	// A shard with zero local users is legal: NJ=0, all-zero CSR.
	s := &BlockSpec{
		ID: "empty", NI: 2, NJ: 0, Eps2: 0.01,
		RowPtr: []int{0, 0, 0},
		Solver: SolverOptions{Penalty: 8},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate rejected an empty block: %v", err)
	}
	// And it round-trips.
	got, err := DecodeBlockSpec(EncodeBlockSpec(s))
	if err != nil || !reflect.DeepEqual(got, s) {
		t.Fatalf("empty block round trip: got %+v err %v", got, err)
	}
}

func TestSolveRequestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(r *SolveRequest)
	}{
		{"empty ID", func(r *SolveRequest) { r.ID = "" }},
		{"rho zero", func(r *SolveRequest) { r.Rho = 0 }},
		{"rho negative", func(r *SolveRequest) { r.Rho = -1 }},
		{"rho NaN", func(r *SolveRequest) { r.Rho = math.NaN() }},
		{"rho Inf", func(r *SolveRequest) { r.Rho = math.Inf(1) }},
		{"target NaN", func(r *SolveRequest) { r.Target[0] = math.NaN() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := &SolveRequest{ID: "b", Slot: 1, Gen: 0, Rho: 2, Target: []float64{1, 2}}
			tc.mutate(r)
			if err := r.Validate(); err == nil {
				t.Fatal("Validate accepted a broken solve request")
			}
		})
	}
}

func TestResponseValidateRejects(t *testing.T) {
	if err := (&SolveResponse{Totals: []float64{math.Inf(1)}}).Validate(); err == nil {
		t.Fatal("SolveResponse.Validate accepted Inf totals")
	}
	if err := (&StateResponse{X: []float64{-1}}).Validate(); err == nil {
		t.Fatal("StateResponse.Validate accepted negative x")
	}
	if err := (&StateResponse{X: []float64{1}, Theta: []float64{math.NaN()}}).Validate(); err == nil {
		t.Fatal("StateResponse.Validate accepted NaN theta")
	}
}

func TestDecodeRejectsMalformedJSON(t *testing.T) {
	for _, data := range [][]byte{[]byte("{"), []byte("[]"), []byte(`{"ni":"two"}`)} {
		if _, err := DecodeBlockSpec(data); err == nil {
			t.Fatalf("DecodeBlockSpec accepted %q", data)
		}
		if _, err := DecodeSolveRequest(data); err == nil {
			t.Fatalf("DecodeSolveRequest accepted %q", data)
		}
	}
}

func TestErrorIsUnknownBlock(t *testing.T) {
	e := &Error{Code: CodeUnknownBlock, Msg: "gone"}
	if !errors.Is(e, ErrUnknownBlock) {
		t.Fatal("errors.Is(unknown_block *Error, ErrUnknownBlock) = false")
	}
	if errors.Is(&Error{Code: CodeBadRequest, Msg: "bad"}, ErrUnknownBlock) {
		t.Fatal("errors.Is(bad_request *Error, ErrUnknownBlock) = true")
	}
}
