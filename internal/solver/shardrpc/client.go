package shardrpc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"edgealloc/internal/telemetry"
)

// Default client robustness knobs (ClientOptions zero values).
const (
	// DefaultTimeout bounds one HTTP attempt end to end. Block solves at
	// the throughput budgets take tens of milliseconds; the default
	// leaves two orders of magnitude of headroom before a hung worker
	// stalls the coordination loop.
	DefaultTimeout = 30 * time.Second
	// DefaultRetries is the number of re-attempts after the first try.
	DefaultRetries = 2
	// DefaultBackoff is the first retry's sleep; it doubles per retry.
	DefaultBackoff = 50 * time.Millisecond
)

// ClientOptions tunes a worker client. Zero values select the defaults
// above.
type ClientOptions struct {
	// Timeout is the per-attempt deadline (context.WithTimeout around
	// each HTTP round trip).
	Timeout time.Duration
	// Retries is the number of re-attempts after a retryable failure:
	// transport errors, deadline expiry, and 5xx responses. Structured
	// errors (unknown block, bad request) are never retried here — the
	// unknown-block recovery is the caller's spec re-push.
	Retries int
	// Backoff is the exponential backoff base: attempt k (1-based retry)
	// sleeps Backoff·2^(k−1) first.
	Backoff time.Duration
	// HTTPClient overrides the transport (nil uses http.DefaultClient,
	// whose shared connection pool keeps per-call dials off the hot
	// path).
	HTTPClient *http.Client
	// Metrics optionally records per-attempt telemetry; nil records
	// nothing.
	Metrics *telemetry.SolverMetrics
}

// Client speaks the shard RPC to one worker. A Client is safe for
// concurrent use — the coordinator solves blocks on parallel goroutines,
// and blocks placed on the same worker share one Client.
type Client struct {
	base string
	opts ClientOptions
}

// NewClient builds a client for the worker at base (for example
// "http://127.0.0.1:9711"). Zero option fields take the package
// defaults.
func NewClient(base string, opts ClientOptions) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = DefaultTimeout
	}
	if opts.Retries < 0 {
		opts.Retries = 0
	} else if opts.Retries == 0 {
		opts.Retries = DefaultRetries
	}
	if opts.Backoff <= 0 {
		opts.Backoff = DefaultBackoff
	}
	if opts.HTTPClient == nil {
		opts.HTTPClient = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), opts: opts}
}

// Base returns the worker base URL the client targets.
func (c *Client) Base() string { return c.base }

// Metrics returns the client's instrument bundle (possibly nil).
func (c *Client) Metrics() *telemetry.SolverMetrics { return c.opts.Metrics }

// BeginSlot pushes a block spec to the worker.
func (c *Client) BeginSlot(ctx context.Context, spec *BlockSpec) error {
	_, err := c.do(ctx, "begin-slot", EncodeBlockSpec(spec))
	return err
}

// Solve runs one consensus x-step of a hosted block.
func (c *Client) Solve(ctx context.Context, id string, slot, gen int, rho float64, target []float64) (*SolveResponse, error) {
	body, err := c.do(ctx, "solve", EncodeSolveRequest(&SolveRequest{
		ID: id, Slot: slot, Gen: gen, Rho: rho, Target: target,
	}))
	if err != nil {
		return nil, err
	}
	return DecodeSolveResponse(body)
}

// State fetches a hosted block's warm state.
func (c *Client) State(ctx context.Context, id string, slot, gen int) (*StateResponse, error) {
	body, err := c.do(ctx, "state", mustJSON(&StateRequest{ID: id, Slot: slot, Gen: gen}))
	if err != nil {
		return nil, err
	}
	return DecodeStateResponse(body)
}

// Commit marks the slot committed on the worker. Best-effort by design:
// the coordinator's state is authoritative and the next begin-slot
// replaces the worker's copy regardless.
func (c *Client) Commit(ctx context.Context, id string, slot int) error {
	_, err := c.do(ctx, "commit-slot", mustJSON(&CommitRequest{ID: id, Slot: slot}))
	return err
}

// do POSTs one RPC with the client's deadline/backoff/retry policy and
// returns the response body of the first 200.
func (c *Client) do(ctx context.Context, method string, reqBody []byte) ([]byte, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	url := c.base + "/v1/shard/" + method
	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			d := c.opts.Backoff << (attempt - 1)
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("shardrpc: %s %s: %w (after %v)", method, c.base, ctx.Err(), lastErr)
			case <-t.C:
			}
		}
		body, retryable, err := c.attempt(ctx, url, reqBody, attempt > 0)
		if err == nil {
			return body, nil
		}
		lastErr = err
		if !retryable {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("shardrpc: %s %s: %w (after %v)", method, c.base, ctx.Err(), lastErr)
		}
	}
	return nil, fmt.Errorf("shardrpc: %s %s: retries exhausted: %w", method, c.base, lastErr)
}

// attempt runs one HTTP round trip, reporting whether a failure is worth
// retrying.
func (c *Client) attempt(ctx context.Context, url string, reqBody []byte, isRetry bool) (body []byte, retryable bool, err error) {
	start := time.Now()
	moved := int64(len(reqBody))
	defer func() {
		c.opts.Metrics.ObserveShardRPCAttempt(time.Since(start).Seconds(), moved, isRetry)
	}()

	actx, cancel := context.WithTimeout(ctx, c.opts.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, url, bytes.NewReader(reqBody))
	if err != nil {
		return nil, false, fmt.Errorf("shardrpc: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		// Transport failure or deadline: the worker may be restarting.
		return nil, true, fmt.Errorf("shardrpc: %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	moved += int64(len(body))
	if err != nil {
		return nil, true, fmt.Errorf("shardrpc: %s: reading response: %w", url, err)
	}
	if resp.StatusCode == http.StatusOK {
		return body, false, nil
	}
	werr := decodeError(body, resp.StatusCode)
	if errors.Is(werr, ErrUnknownBlock) {
		// Structural, not transient: the caller re-pushes the spec.
		return nil, false, werr
	}
	return nil, resp.StatusCode >= 500, werr
}

// decodeError maps a non-200 body to a structured *Error where possible.
func decodeError(body []byte, status int) error {
	var e Error
	if err := json.Unmarshal(body, &e); err == nil && e.Msg != "" {
		if e.Code == "" {
			e.Code = CodeInternal
		}
		return &e
	}
	return &Error{Code: CodeInternal, Msg: fmt.Sprintf("HTTP %d: %s", status, truncate(body, 200))}
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}
