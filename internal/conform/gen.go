package conform

import (
	"math/rand"

	"edgealloc/internal/model"
)

// This file provides the deterministic small-instance generator shared by
// the fuzz targets and the metamorphic suite. Fuzzers mutate the scalar
// knobs of GenConfig (a seed plus clamped dimensions and a couple of
// regime bits) rather than raw instance bytes: every generated instance
// is valid by construction, so the search spends its budget exploring
// price/mobility/capacity regimes instead of rediscovering Validate.

// GenConfig are the scalar knobs of the generator. Dimensions are clamped
// into small ranges that the solver stack handles at fuzz throughput.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64
	// I, J, T are clamped to [2,6], [1,8], [1,6] respectively.
	I, J, T int
	// Tight shrinks spare capacity to 2% of the total workload, putting
	// every slot near the capacity boundary Theorem 1 must respect.
	Tight bool
	// ZeroSq sets WSq = 0, making the total cost linear in the allocation;
	// the load-scaling metamorphic transform needs this regime for its
	// exact prediction.
	ZeroSq bool
}

// clamp maps an arbitrary fuzzed int into [lo, hi], acting as the
// identity on values already in range so callers can pre-shape the
// dimension distribution.
func clamp(v, lo, hi int) int {
	span := hi - lo + 1
	m := (v - lo) % span
	if m < 0 {
		m += span
	}
	return lo + m
}

// GenInstance builds a valid random instance from the scalar knobs. The
// result always passes model.Validate; the generator panics otherwise
// (a generator bug, which fuzzing should surface loudly).
func GenInstance(cfg GenConfig) *model.Instance {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nI := clamp(cfg.I, 2, 6)
	nJ := clamp(cfg.J, 1, 8)
	nT := clamp(cfg.T, 1, 6)

	in := &model.Instance{
		I: nI, J: nJ, T: nT,
		WOp: 0.5 + rng.Float64(), WSq: 0.5 + rng.Float64(),
		WRc: 0.5 + rng.Float64(), WMg: 0.5 + rng.Float64(),
	}
	if cfg.ZeroSq {
		in.WSq = 0
	}
	total := 0.0
	for j := 0; j < nJ; j++ {
		l := 0.2 + 1.5*rng.Float64()
		in.Workload = append(in.Workload, l)
		total += l
	}
	// Random capacity shares, then scale so spare capacity is 30% of the
	// workload (or 2% under Tight).
	shares := make([]float64, nI)
	shareSum := 0.0
	for i := range shares {
		shares[i] = 0.2 + rng.Float64()
		shareSum += shares[i]
	}
	slack := 1.3
	if cfg.Tight {
		slack = 1.02
	}
	for i := 0; i < nI; i++ {
		in.Capacity = append(in.Capacity, total*slack*shares[i]/shareSum)
		in.ReconfPrice = append(in.ReconfPrice, 2*rng.Float64())
		in.MigOutPrice = append(in.MigOutPrice, rng.Float64())
		in.MigInPrice = append(in.MigInPrice, rng.Float64())
	}
	in.InterDelay = make([][]float64, nI)
	for i := range in.InterDelay {
		in.InterDelay[i] = make([]float64, nI)
	}
	for i := 0; i < nI; i++ {
		for k := i + 1; k < nI; k++ {
			d := 0.2 + 4*rng.Float64()
			in.InterDelay[i][k] = d
			in.InterDelay[k][i] = d
		}
	}
	for t := 0; t < nT; t++ {
		op := make([]float64, nI)
		for i := range op {
			op[i] = 0.2 + 4*rng.Float64()
		}
		attach := make([]int, nJ)
		acc := make([]float64, nJ)
		for j := range attach {
			attach[j] = rng.Intn(nI)
			acc[j] = rng.Float64()
		}
		in.OpPrice = append(in.OpPrice, op)
		in.Attach = append(in.Attach, attach)
		in.AccessDelay = append(in.AccessDelay, acc)
	}
	if err := in.Validate(); err != nil {
		panic("conform: generator produced invalid instance: " + err.Error())
	}
	return in
}
