package conform_test

import (
	"math"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
)

// These tests pin the transforms at the cost level, solver-free: each
// metamorphic rewrite must change the cost of a *fixed* schedule exactly
// as the catalogue claims, which is the pointwise identity the OPT-level
// predictions (internal/core/metamorphic_test.go) rest on.

func totalCost(t *testing.T, in *model.Instance, s model.Schedule) float64 {
	t.Helper()
	b, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return in.Total(b)
}

func TestScalePricesScalesAnySchedulesCost(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	base := totalCost(t, in, s)
	const alpha = 3.25
	scaled := conform.ScalePrices(in, alpha)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	got := totalCost(t, scaled, s)
	if rel := math.Abs(got-alpha*base) / (1 + alpha*base); rel > 1e-12 {
		t.Errorf("cost(α·prices) = %g, want α·cost = %g", got, alpha*base)
	}
}

func TestScaleLoadScalesMappedSchedulesCost(t *testing.T) {
	in := conform.GenInstance(conform.GenConfig{Seed: 7, I: 3, J: 4, T: 3, ZeroSq: true})
	s := feasibleSchedule(in)
	base := totalCost(t, in, s)
	const alpha = 0.375
	scaled := conform.ScaleLoad(in, alpha)
	if err := scaled.Validate(); err != nil {
		t.Fatal(err)
	}
	mapped := make(model.Schedule, len(s))
	for tt, x := range s {
		y := x.Clone()
		for k := range y.X {
			y.X[k] *= alpha
		}
		mapped[tt] = y
	}
	got := totalCost(t, scaled, mapped)
	if rel := math.Abs(got-alpha*base) / (1 + alpha*base); rel > 1e-12 {
		t.Errorf("cost(α·load, α·x) = %g, want α·cost = %g", got, alpha*base)
	}
}

func TestPermutationsPreserveMappedSchedulesCost(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	base := totalCost(t, in, s)

	cperm := []int{2, 0, 1}
	pc := conform.PermuteClouds(in, cperm)
	if err := pc.Validate(); err != nil {
		t.Fatal(err)
	}
	mapped := make(model.Schedule, len(s))
	for tt, x := range s {
		y := model.NewAlloc(in.I, in.J)
		for i := 0; i < in.I; i++ {
			for j := 0; j < in.J; j++ {
				y.Set(cperm[i], j, x.At(i, j))
			}
		}
		mapped[tt] = y
	}
	if got := totalCost(t, pc, mapped); math.Abs(got-base) > 1e-12*(1+base) {
		t.Errorf("cloud-permuted cost %g != %g", got, base)
	}

	uperm := []int{3, 1, 0, 2}
	pu := conform.PermuteUsers(in, uperm)
	if err := pu.Validate(); err != nil {
		t.Fatal(err)
	}
	for tt, x := range s {
		y := model.NewAlloc(in.I, in.J)
		for i := 0; i < in.I; i++ {
			for j := 0; j < in.J; j++ {
				y.Set(i, uperm[j], x.At(i, j))
			}
		}
		mapped[tt] = y
	}
	if got := totalCost(t, pu, mapped); math.Abs(got-base) > 1e-12*(1+base) {
		t.Errorf("user-permuted cost %g != %g", got, base)
	}
}

func TestSplitUserPreservesHalvedSchedulesCost(t *testing.T) {
	in := conform.GenInstance(conform.GenConfig{Seed: 7, I: 3, J: 4, T: 3, ZeroSq: true})
	s := feasibleSchedule(in)
	base := totalCost(t, in, s)
	const j = 1
	split := conform.SplitUser(in, j)
	if err := split.Validate(); err != nil {
		t.Fatal(err)
	}
	if split.J != in.J+1 || split.Workload[j] != in.Workload[j]/2 ||
		split.Workload[in.J] != in.Workload[j]/2 {
		t.Fatalf("split shape: J=%d workloads %v", split.J, split.Workload)
	}
	mapped := make(model.Schedule, len(s))
	for tt, x := range s {
		y := model.NewAlloc(split.I, split.J)
		for i := 0; i < in.I; i++ {
			for q := 0; q < in.J; q++ {
				v := x.At(i, q)
				if q == j {
					y.Set(i, q, v/2)
					y.Set(i, in.J, v/2)
				} else {
					y.Set(i, q, v)
				}
			}
		}
		mapped[tt] = y
	}
	if got := totalCost(t, split, mapped); math.Abs(got-base) > 1e-12*(1+base) {
		t.Errorf("split-mapped cost %g != %g (ZeroSq)", got, base)
	}
}

// TestTransformsMapInit covers the pre-horizon allocation: every
// transform must carry Init through its own index/scale mapping, since a
// mismapped x_{·,·,0} silently corrupts the first slot's migration terms.
func TestTransformsMapInit(t *testing.T) {
	in := genInstance(t)
	init := feasibleSchedule(in)[0].Clone()
	in.Init = &init
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	if out := conform.ScaleLoad(in, 2); out.Init.At(1, 1) != 2*init.At(1, 1) {
		t.Errorf("ScaleLoad Init[1,1] = %g, want %g", out.Init.At(1, 1), 2*init.At(1, 1))
	}
	cperm := []int{1, 2, 0}
	if out := conform.PermuteClouds(in, cperm); out.Init.At(cperm[2], 1) != init.At(2, 1) {
		t.Error("PermuteClouds did not permute Init rows")
	}
	uperm := []int{1, 0, 3, 2}
	if out := conform.PermuteUsers(in, uperm); out.Init.At(1, uperm[2]) != init.At(1, 2) {
		t.Error("PermuteUsers did not permute Init columns")
	}
	sp := conform.SplitUser(in, 2)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.I; i++ {
		if sp.Init.At(i, 2) != init.At(i, 2)/2 || sp.Init.At(i, in.J) != init.At(i, 2)/2 {
			t.Errorf("SplitUser Init row %d: halves %g/%g, want %g split evenly",
				i, sp.Init.At(i, 2), sp.Init.At(i, in.J), init.At(i, 2))
		}
	}
}

// Transforms must deep-copy: mutating the output may never alias the
// input's backing arrays.
func TestTransformsDoNotAliasInput(t *testing.T) {
	in := genInstance(t)
	before := in.OpPrice[0][0]
	out := conform.ScalePrices(in, 2)
	out.OpPrice[0][0] = -999
	out.Capacity[0] = -999
	out.Attach[0][0] = -999
	if in.OpPrice[0][0] != before || in.Capacity[0] < 0 || in.Attach[0][0] < 0 {
		t.Error("ScalePrices aliases the input instance")
	}
}

func TestTransformPanics(t *testing.T) {
	in := genInstance(t)
	tests := []struct {
		name string
		fn   func()
	}{
		{"ScalePrices zero", func() { conform.ScalePrices(in, 0) }},
		{"ScaleLoad negative", func() { conform.ScaleLoad(in, -1) }},
		{"PermuteClouds short", func() { conform.PermuteClouds(in, []int{0}) }},
		{"PermuteClouds repeat", func() { conform.PermuteClouds(in, []int{0, 0, 2}) }},
		{"PermuteUsers out of range", func() { conform.PermuteUsers(in, []int{0, 1, 2, 9}) }},
		{"SplitUser out of range", func() { conform.SplitUser(in, in.J) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("no panic")
				}
			}()
			tt.fn()
		})
	}
}
