package conform

import (
	"fmt"

	"edgealloc/internal/model"
)

// This file is the metamorphic transform catalogue (DESIGN.md §8): each
// transform rewrites an instance so that the optimal cost changes in a
// provably predictable way, giving the test suite oracles that need no
// reference implementation. The catalogue:
//
//	ScalePrices(α):    every price scales by α  → OPT scales by exactly α.
//	ScaleLoad(α):      capacities, workloads, and Init scale by α; with
//	                   WSq = 0 the cost is linear in x and the feasible
//	                   sets biject via x ↦ αx → OPT scales by exactly α.
//	PermuteClouds(π):  index relabeling → OPT unchanged.
//	PermuteUsers(π):   index relabeling → OPT unchanged.
//	SplitUser(j):      user j becomes two users with λ_j/2 each and the
//	                   same mobility; with WSq = 0 any solution maps to a
//	                   split solution of equal cost by halving the column,
//	                   and merging a split solution never increases the
//	                   migration hinges → OPT unchanged. (With WSq > 0 the
//	                   per-user service-quality average is counted once
//	                   per user, so the split double-counts it.)
//
// Every transform returns a fresh deep-copied instance, never aliasing
// the input's slices, so transformed instances can be solved concurrently
// with the original.

// cloneInstance deep-copies every slice field of an instance.
func cloneInstance(in *model.Instance) *model.Instance {
	out := *in
	out.Capacity = append([]float64(nil), in.Capacity...)
	out.Workload = append([]float64(nil), in.Workload...)
	out.ReconfPrice = append([]float64(nil), in.ReconfPrice...)
	out.MigOutPrice = append([]float64(nil), in.MigOutPrice...)
	out.MigInPrice = append([]float64(nil), in.MigInPrice...)
	out.InterDelay = cloneMatrix(in.InterDelay)
	out.OpPrice = cloneMatrix(in.OpPrice)
	out.AccessDelay = cloneMatrix(in.AccessDelay)
	out.Attach = make([][]int, len(in.Attach))
	for t, row := range in.Attach {
		out.Attach[t] = append([]int(nil), row...)
	}
	if in.Init != nil {
		c := in.Init.Clone()
		out.Init = &c
	}
	return &out
}

func cloneMatrix(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for i, row := range m {
		out[i] = append([]float64(nil), row...)
	}
	return out
}

// ScalePrices multiplies every cost coefficient — operation,
// reconfiguration, migration prices, inter-cloud and access delays — by
// alpha > 0. The cost of any fixed schedule scales by exactly alpha, so
// the optimal cost does too and every optimizer's argmin is unchanged.
func ScalePrices(in *model.Instance, alpha float64) *model.Instance {
	if alpha <= 0 {
		panic(fmt.Sprintf("conform: ScalePrices alpha=%g must be positive", alpha))
	}
	out := cloneInstance(in)
	scaleSlice(out.ReconfPrice, alpha)
	scaleSlice(out.MigOutPrice, alpha)
	scaleSlice(out.MigInPrice, alpha)
	for _, row := range out.InterDelay {
		scaleSlice(row, alpha)
	}
	for _, row := range out.OpPrice {
		scaleSlice(row, alpha)
	}
	for _, row := range out.AccessDelay {
		scaleSlice(row, alpha)
	}
	return out
}

// ScaleLoad multiplies every capacity, workload, and the initial
// allocation by alpha > 0. The feasible sets biject via x ↦ αx; when
// WSq = 0 the objective is linear in x, so the bijection preserves cost
// ordering and the optimal cost scales by exactly alpha. (With WSq > 0
// the service-quality term x·d/λ is scale-invariant and only the other
// components scale; the exact-prediction tests therefore use ZeroSq
// instances.)
func ScaleLoad(in *model.Instance, alpha float64) *model.Instance {
	if alpha <= 0 {
		panic(fmt.Sprintf("conform: ScaleLoad alpha=%g must be positive", alpha))
	}
	out := cloneInstance(in)
	scaleSlice(out.Capacity, alpha)
	scaleSlice(out.Workload, alpha)
	if out.Init != nil {
		scaleSlice(out.Init.X, alpha)
	}
	return out
}

func scaleSlice(s []float64, alpha float64) {
	for k := range s {
		s[k] *= alpha
	}
}

// PermuteClouds relabels cloud i as perm[i]. perm must be a permutation
// of 0..I-1. The optimal cost is invariant under the relabeling.
func PermuteClouds(in *model.Instance, perm []int) *model.Instance {
	mustPermutation(perm, in.I, "PermuteClouds")
	out := cloneInstance(in)
	for i, p := range perm {
		out.Capacity[p] = in.Capacity[i]
		out.ReconfPrice[p] = in.ReconfPrice[i]
		out.MigOutPrice[p] = in.MigOutPrice[i]
		out.MigInPrice[p] = in.MigInPrice[i]
		for k, q := range perm {
			out.InterDelay[p][q] = in.InterDelay[i][k]
		}
	}
	for t := range in.OpPrice {
		for i, p := range perm {
			out.OpPrice[t][p] = in.OpPrice[t][i]
		}
		for j, a := range in.Attach[t] {
			out.Attach[t][j] = perm[a]
		}
	}
	if in.Init != nil {
		for i, p := range perm {
			for j := 0; j < in.J; j++ {
				out.Init.Set(p, j, in.Init.At(i, j))
			}
		}
	}
	return out
}

// PermuteUsers relabels user j as perm[j]. perm must be a permutation of
// 0..J-1. The optimal cost is invariant under the relabeling.
func PermuteUsers(in *model.Instance, perm []int) *model.Instance {
	mustPermutation(perm, in.J, "PermuteUsers")
	out := cloneInstance(in)
	for j, p := range perm {
		out.Workload[p] = in.Workload[j]
	}
	for t := range in.Attach {
		for j, p := range perm {
			out.Attach[t][p] = in.Attach[t][j]
			out.AccessDelay[t][p] = in.AccessDelay[t][j]
		}
	}
	if in.Init != nil {
		for i := 0; i < in.I; i++ {
			for j, p := range perm {
				out.Init.Set(i, p, in.Init.At(i, j))
			}
		}
	}
	return out
}

// SplitUser replaces user j with two users carrying λ_j/2 each, both
// following j's mobility trace; the split user's halves are appended at
// positions j and J (the original index keeps one half, the clone goes
// last). When WSq = 0 the optimal cost is unchanged: halving j's
// allocation column yields a split solution of identical cost (the op,
// reconfiguration, and migration terms are positively homogeneous in the
// column), and merging any split solution's two columns never increases
// the hinged terms. With WSq > 0 invariance breaks: the service-quality
// term charges each user its per-unit average delay d/λ_j plus an access
// constant, so two half-users are charged twice what one user was — the
// exact-prediction tests therefore use ZeroSq instances.
func SplitUser(in *model.Instance, j int) *model.Instance {
	if j < 0 || j >= in.J {
		panic(fmt.Sprintf("conform: SplitUser j=%d outside [0,%d)", j, in.J))
	}
	out := cloneInstance(in)
	out.J = in.J + 1
	out.Workload[j] = in.Workload[j] / 2
	out.Workload = append(out.Workload, in.Workload[j]/2)
	for t := range out.Attach {
		out.Attach[t] = append(out.Attach[t], in.Attach[t][j])
		out.AccessDelay[t] = append(out.AccessDelay[t], in.AccessDelay[t][j])
	}
	if in.Init != nil {
		split := model.NewAlloc(out.I, out.J)
		for i := 0; i < in.I; i++ {
			for q := 0; q < in.J; q++ {
				v := in.Init.At(i, q)
				if q == j {
					split.Set(i, q, v/2)
					split.Set(i, in.J, v/2)
				} else {
					split.Set(i, q, v)
				}
			}
		}
		out.Init = &split
	}
	return out
}

func mustPermutation(perm []int, n int, fn string) {
	if len(perm) != n {
		panic(fmt.Sprintf("conform: %s permutation has %d entries, want %d", fn, len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic(fmt.Sprintf("conform: %s: %v is not a permutation of 0..%d", fn, perm, n-1))
		}
		seen[p] = true
	}
}
