// Package conform is the paper-conformance oracle: one reusable checker
// that takes any (instance, schedule, solver diagnostics) triple and
// verifies every guarantee the paper proves about the pipeline's output —
// per-slot feasibility (Theorem 1), the validity of the dual certificate
// and the competitive-ratio bound r = 1 + γ|I| (Lemmas 2–6, Theorem 2),
// the Lemma-1 P0→P1 gap identity with its σ = Σ_i b_i^out·C_i bound, and
// basic numeric hygiene (no NaN/Inf, no negative allocations or costs).
//
// The oracle returns structured Violations instead of failing a test
// directly, so the same code path serves unit tests, Go fuzz targets, the
// metamorphic suite, benchmarks, and the production simulation harness
// (sim.Execute consults it on every run unless explicitly disabled).
package conform

import (
	"errors"
	"fmt"
	"log/slog"
	"math"
	"strings"

	"edgealloc/internal/model"
)

// Kind labels the guarantee a violation breaks.
type Kind string

const (
	// KindShape: the schedule's horizon or slot dimensions disagree with
	// the instance.
	KindShape Kind = "shape"
	// KindNumeric: a NaN or Inf appeared in an allocation or a derived
	// cost.
	KindNumeric Kind = "numeric"
	// KindNegative: an allocation entry is below zero beyond tolerance.
	KindNegative Kind = "negative"
	// KindDemand: a user is served less than its workload (Theorem 1,
	// demand side).
	KindDemand Kind = "demand"
	// KindCapacity: a cloud is loaded beyond its capacity (Theorem 1,
	// capacity side).
	KindCapacity Kind = "capacity"
	// KindGap: the Lemma-1 relation between the P0 and P1 objectives is
	// violated — either the exact telescoping identity
	// P1 − P0 = w_mg·Σ_i b_i^out Σ_j (x_{ij,T} − x_{ij,0}) or the bound
	// |P1 − P0| ≤ w_mg·σ.
	KindGap Kind = "lemma1-gap"
	// KindDualCert: the dual certificate's own feasibility residual
	// (Lemma 2's constraints (14a)–(14e)) exceeds tolerance.
	KindDualCert Kind = "dual-certificate"
	// KindLowerBound: a certified lower bound exceeds the achieved cost —
	// weak duality broken, the certificate is lying.
	KindLowerBound Kind = "lower-bound"
	// KindRatio: the run breaks Theorem 2's parameterized guarantee —
	// either r = 1 + γ|I| < 1 or achieved cost > r·(certified bound).
	KindRatio Kind = "competitive-ratio"
)

// Violation is one broken guarantee, locatable and machine-readable.
type Violation struct {
	Kind Kind
	// Slot is the offending time slot, or -1 for horizon-level checks.
	Slot int
	// Index is the offending user/cloud index, or -1 when not applicable.
	Index int
	// Got and Bound are the measured value and the limit it broke.
	Got, Bound float64
	// Detail is a human-readable one-liner.
	Detail string
}

func (v Violation) String() string {
	loc := ""
	if v.Slot >= 0 {
		loc = fmt.Sprintf(" slot=%d", v.Slot)
	}
	if v.Index >= 0 {
		loc += fmt.Sprintf(" index=%d", v.Index)
	}
	return fmt.Sprintf("[%s]%s %s (got %g, bound %g)", v.Kind, loc, v.Detail, v.Got, v.Bound)
}

// LogValue implements slog.LogValuer: a Violation logged through slog
// renders as structured fields (kind, slot, index, got, bound, detail)
// instead of one opaque string, so daemon log pipelines can filter and
// aggregate oracle findings by guarantee kind.
func (v Violation) LogValue() slog.Value {
	return slog.GroupValue(
		slog.String("kind", string(v.Kind)),
		slog.Int("slot", v.Slot),
		slog.Int("index", v.Index),
		slog.Float64("got", v.Got),
		slog.Float64("bound", v.Bound),
		slog.String("detail", v.Detail),
	)
}

// Diagnostics carries the solver-side evidence the oracle can cross-check
// against the realized schedule: the dual certificate's bounds and
// residual (core.Certificate in the production pipeline) and Theorem 2's
// parameterized ratio. The struct is deliberately solver-agnostic so the
// oracle depends only on the model layer.
type Diagnostics struct {
	// HasCertificate gates the certificate checks; the other fields are
	// ignored without it (RatioBound excepted, see below).
	HasCertificate bool
	// LowerBoundP0 and LowerBoundP1 are the certified lower bounds on
	// OPT(P0) and OPT(P1), both including the access-delay constant.
	LowerBoundP0, LowerBoundP1 float64
	// DualResidual is the worst violation of the dual constraints
	// (14a)–(14e) by the certificate's constructed point.
	DualResidual float64
	// NuCharge is the capacity-dual price Σ_t Σ_i C_i·ν_{i,t} ≥ 0 already
	// deducted from the lower bounds. The Theorem-2 comparison measures
	// the achieved cost against r·(LowerBoundP1 + NuCharge): the paper's
	// primal-dual chain bounds cost by r times the undeducted
	// stationarity value, while the deduction itself is bound slack from
	// capacity binding that the algorithm is not charged for.
	NuCharge float64
	// RatioBound is Theorem 2's r = 1 + γ|I| for the run's ε parameters;
	// 0 skips the ratio checks.
	RatioBound float64
}

// Options tunes the oracle's tolerances. Zero values take defaults.
type Options struct {
	// FeasTol is the absolute feasibility tolerance, scaled by
	// 1 + |constraint| per row (default 1e-4, the harness-wide tolerance
	// the first-order solvers meet with two orders of margin).
	FeasTol float64
	// CostTol is the relative tolerance on cost identities such as the
	// Lemma-1 gap (default 1e-6).
	CostTol float64
	// DualTol bounds the certificate's own feasibility residual
	// (default 1e-5; the construction is exact up to float round-off).
	DualTol float64
	// MaxViolations caps how many violations are collected before the
	// oracle stops looking (default 32); the count keeps pathological
	// inputs from producing megabyte error messages.
	MaxViolations int
}

func (o Options) withDefaults() Options {
	if o.FeasTol == 0 {
		o.FeasTol = 1e-4
	}
	if o.CostTol == 0 {
		o.CostTol = 1e-6
	}
	if o.DualTol == 0 {
		o.DualTol = 1e-5
	}
	if o.MaxViolations == 0 {
		o.MaxViolations = 32
	}
	return o
}

// Report is the oracle's structured outcome.
type Report struct {
	Violations []Violation
	// Truncated reports that MaxViolations was reached and later checks
	// were skipped.
	Truncated bool
	// BreakdownP0 and BreakdownP1 are the schedule's cost breakdowns under
	// the two objectives, computed as a side effect of the gap check and
	// exposed so callers need not re-evaluate. Valid only when the shape
	// checks passed.
	BreakdownP0, BreakdownP1 model.Breakdown
}

// OK reports a violation-free run.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Counts tallies the collected violations by guarantee kind — the shape
// the telemetry layer exports (one counter series per kind). Nil for a
// clean report.
func (r *Report) Counts() map[Kind]int {
	if r.OK() {
		return nil
	}
	counts := make(map[Kind]int)
	for _, v := range r.Violations {
		counts[v.Kind]++
	}
	return counts
}

// Log emits one structured warning line per collected violation to l
// (nil-safe on both receiver and logger), tagging each with the run
// label so concurrent runs stay distinguishable in daemon logs.
func (r *Report) Log(l *slog.Logger, run string) {
	if r == nil || l == nil {
		return
	}
	for _, v := range r.Violations {
		l.Warn("conformance violation", "run", run, "violation", v)
	}
	if r.Truncated {
		l.Warn("conformance report truncated", "run", run, "collected", len(r.Violations))
	}
}

// ErrNonConformant is wrapped by every error the oracle returns, so
// callers can errors.Is on conformance failures specifically.
var ErrNonConformant = errors.New("conform: guarantee violated")

// Err returns nil for a clean report, or an error wrapping
// ErrNonConformant that lists every collected violation.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d violation(s)", len(r.Violations))
	if r.Truncated {
		b.WriteString(" (truncated)")
	}
	for _, v := range r.Violations {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%w: %s", ErrNonConformant, b.String())
}

// checker accumulates violations up to the cap.
type checker struct {
	rep  *Report
	opts Options
	// capacityTight records whether any cloud runs at capacity (within
	// FeasTol) at the realized schedule. Where capacity binds, the
	// explicit rows added to P2 (DESIGN.md finding 1: Theorem 1's
	// feasibility claim has a gap) steer the solution away from the pure
	// regularized program the paper's primal-dual chain analyzes, so the
	// Theorem-2 cost comparison is only enforced on slack runs.
	capacityTight bool
}

func (c *checker) add(v Violation) bool {
	if len(c.rep.Violations) >= c.opts.MaxViolations {
		c.rep.Truncated = true
		return false
	}
	c.rep.Violations = append(c.rep.Violations, v)
	return true
}

func (c *checker) full() bool { return c.rep.Truncated }

// Check runs every applicable guarantee check of the paper against the
// realized schedule and the solver's diagnostics. diag may be nil when no
// certificate is available; the schedule-level checks always run.
func Check(in *model.Instance, s model.Schedule, diag *Diagnostics, opts Options) *Report {
	opts = opts.withDefaults()
	c := &checker{rep: &Report{}, opts: opts}

	if !c.checkShape(in, s) {
		// Dimensions are wrong: every later check would index out of
		// bounds, so the report carries the shape violations alone.
		return c.rep
	}
	c.checkSlots(in, s)
	c.checkGap(in, s)
	if diag != nil {
		c.checkCertificate(in, diag)
	}
	return c.rep
}

// checkShape verifies the horizon length and every slot's dimensions.
// It returns false when indexing into the schedule would be unsafe.
func (c *checker) checkShape(in *model.Instance, s model.Schedule) bool {
	ok := true
	if len(s) != in.T {
		c.add(Violation{Kind: KindShape, Slot: -1, Index: -1,
			Got: float64(len(s)), Bound: float64(in.T),
			Detail: "schedule horizon differs from instance"})
		ok = false
	}
	for t, x := range s {
		if x.I != in.I || x.J != in.J || len(x.X) != in.I*in.J {
			if !c.add(Violation{Kind: KindShape, Slot: t, Index: -1,
				Got: float64(len(x.X)), Bound: float64(in.I * in.J),
				Detail: fmt.Sprintf("slot allocation is %dx%d, want %dx%d", x.I, x.J, in.I, in.J)}) {
				return false
			}
			ok = false
		}
	}
	return ok
}

// checkSlots runs the per-slot Theorem-1 checks: numeric hygiene,
// nonnegativity, demand satisfaction, and capacity.
func (c *checker) checkSlots(in *model.Instance, s model.Schedule) {
	tol := c.opts.FeasTol
	served := make([]float64, in.J)
	used := make([]float64, in.I)
	for t, x := range s {
		if c.full() {
			return
		}
		for k, v := range x.X {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				if !c.add(Violation{Kind: KindNumeric, Slot: t, Index: k / in.J,
					Got: v, Detail: fmt.Sprintf("x[%d][%d] is not finite", k/in.J, k%in.J)}) {
					return
				}
				continue
			}
			if v < -tol {
				if !c.add(Violation{Kind: KindNegative, Slot: t, Index: k / in.J,
					Got: v, Bound: -tol,
					Detail: fmt.Sprintf("x[%d][%d] negative", k/in.J, k%in.J)}) {
					return
				}
			}
		}
		x.UserTotalsInto(served)
		for j, got := range served {
			if bound := in.Workload[j] - tol*(1+in.Workload[j]); got < bound || math.IsNaN(got) {
				if !c.add(Violation{Kind: KindDemand, Slot: t, Index: j,
					Got: got, Bound: in.Workload[j],
					Detail: "user served below workload (Theorem 1)"}) {
					return
				}
			}
		}
		x.CloudTotalsInto(used)
		for i, got := range used {
			if got >= in.Capacity[i]-tol*(1+in.Capacity[i]) {
				c.capacityTight = true
			}
			if bound := in.Capacity[i] + tol*(1+in.Capacity[i]); got > bound || math.IsNaN(got) {
				if !c.add(Violation{Kind: KindCapacity, Slot: t, Index: i,
					Got: got, Bound: in.Capacity[i],
					Detail: "cloud loaded beyond capacity (Theorem 1)"}) {
					return
				}
			}
		}
	}
}

// checkGap verifies Lemma 1 differentially: the P0 and P1 evaluations —
// two independent cost implementations — must satisfy the exact
// telescoping identity
//
//	P1 − P0 = w_mg·Σ_i b_i^out·Σ_j (x_{ij,T} − x_{ij,0}),
//
// and the gap must obey |P1 − P0| ≤ w_mg·σ with σ = Σ_i b_i^out·C_i
// (the Lemma's additive constant; the bound follows from per-slot
// capacity feasibility).
func (c *checker) checkGap(in *model.Instance, s model.Schedule) {
	b0, err := in.Evaluate(s)
	if err != nil {
		c.add(Violation{Kind: KindShape, Slot: -1, Index: -1, Detail: err.Error()})
		return
	}
	b1, err := in.EvaluateP1(s)
	if err != nil {
		c.add(Violation{Kind: KindShape, Slot: -1, Index: -1, Detail: err.Error()})
		return
	}
	c.rep.BreakdownP0, c.rep.BreakdownP1 = b0, b1

	for _, v := range []float64{b0.Op, b0.Sq, b0.Rc, b0.Mg, b1.Mg} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < -c.opts.CostTol {
			c.add(Violation{Kind: KindNumeric, Slot: -1, Index: -1, Got: v,
				Detail: "cost component not finite and nonnegative"})
			return
		}
	}

	t0, t1 := in.Total(b0), in.Total(b1)
	gap := t1 - t0
	// The identity's right-hand side, straight from the allocations.
	init := in.InitialAlloc()
	last := s[len(s)-1]
	want := 0.0
	for i := 0; i < in.I; i++ {
		d := 0.0
		for j := 0; j < in.J; j++ {
			d += last.At(i, j) - init.At(i, j)
		}
		want += in.MigOutPrice[i] * d
	}
	want *= in.WMg
	scale := 1 + math.Abs(t0) + math.Abs(t1)
	if math.Abs(gap-want) > c.opts.CostTol*scale {
		c.add(Violation{Kind: KindGap, Slot: -1, Index: -1, Got: gap, Bound: want,
			Detail: "P1−P0 gap disagrees with the Lemma-1 telescoping identity"})
	}
	sigma := in.WMg * in.Sigma()
	// Feasible schedules keep |Σ_j x_{ij}| ≤ C_i, so the identity implies
	// |gap| ≤ w_mg·σ; allow the feasibility tolerance on top.
	if bound := sigma + c.opts.FeasTol*scale; math.Abs(gap) > bound {
		c.add(Violation{Kind: KindGap, Slot: -1, Index: -1, Got: math.Abs(gap), Bound: sigma,
			Detail: "|P1−P0| exceeds the Lemma-1 bound w_mg·σ"})
	}
}

// checkCertificate validates the dual certificate against the achieved
// cost: its own residual must sit at round-off level (Lemma 2), both
// lower bounds must not exceed the corresponding achieved objectives
// (weak duality: ALG ≥ OPT ≥ bound), the P0/P1 bounds must differ by
// exactly the weighted Lemma-1 constant, and the achieved cost must stay
// within Theorem 2's r·(lower bound) whenever the ratio is supplied.
func (c *checker) checkCertificate(in *model.Instance, d *Diagnostics) {
	if d.RatioBound != 0 && d.RatioBound < 1 {
		c.add(Violation{Kind: KindRatio, Slot: -1, Index: -1, Got: d.RatioBound, Bound: 1,
			Detail: "Theorem-2 ratio r = 1 + γ|I| below 1"})
	}
	if !d.HasCertificate {
		return
	}
	for _, v := range []float64{d.LowerBoundP0, d.LowerBoundP1, d.DualResidual, d.NuCharge} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			c.add(Violation{Kind: KindNumeric, Slot: -1, Index: -1, Got: v,
				Detail: "certificate field not finite"})
			return
		}
	}
	if d.DualResidual > c.opts.DualTol {
		c.add(Violation{Kind: KindDualCert, Slot: -1, Index: -1,
			Got: d.DualResidual, Bound: c.opts.DualTol,
			Detail: "dual point violates constraints (14a)-(14e)"})
	}
	t0, t1 := in.Total(c.rep.BreakdownP0), in.Total(c.rep.BreakdownP1)
	if slack := c.opts.CostTol * (1 + math.Abs(t0)); d.LowerBoundP0 > t0+slack {
		c.add(Violation{Kind: KindLowerBound, Slot: -1, Index: -1,
			Got: d.LowerBoundP0, Bound: t0,
			Detail: "certified P0 lower bound exceeds achieved P0 cost"})
	}
	if slack := c.opts.CostTol * (1 + math.Abs(t1)); d.LowerBoundP1 > t1+slack {
		c.add(Violation{Kind: KindLowerBound, Slot: -1, Index: -1,
			Got: d.LowerBoundP1, Bound: t1,
			Detail: "certified P1 lower bound exceeds achieved P1 cost"})
	}
	// Lemma 1 on the bounds themselves: LB(P1) − LB(P0) = w_mg·σ by
	// construction of the gap-preserving transformation.
	sigma := in.WMg * in.Sigma()
	if gap := d.LowerBoundP1 - d.LowerBoundP0; math.Abs(gap-sigma) > c.opts.CostTol*(1+sigma) {
		c.add(Violation{Kind: KindGap, Slot: -1, Index: -1, Got: gap, Bound: sigma,
			Detail: "certificate's P0/P1 bounds do not differ by w_mg·σ"})
	}
	// Theorem 2 compares against the undeducted stationarity value
	// LB(P1) + NuCharge: the primal-dual chain (Lemmas 3–6) bounds the
	// cost by r times that value, while the ν deduction is certificate
	// slack from capacity binding, not part of the ratio guarantee. The
	// comparison is skipped entirely when capacity binds at the realized
	// schedule — there the explicit capacity rows (DESIGN.md finding 1)
	// move the solution off the pure regularized program the paper's
	// chain analyzes, and only the weaker cost ≤ r·OPT claim survives,
	// which a lower bound alone cannot falsify.
	if ref := d.LowerBoundP1 + d.NuCharge; d.RatioBound >= 1 && ref > 0 && !c.capacityTight {
		if limit := d.RatioBound * ref; t1 > limit*(1+c.opts.CostTol) {
			c.add(Violation{Kind: KindRatio, Slot: -1, Index: -1, Got: t1, Bound: limit,
				Detail: "achieved P1 cost exceeds r·(certified bound) (Theorem 2)"})
		}
	}
}
