package conform_test

import (
	"errors"
	"math"
	"strings"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
)

// genInstance is the suite's canonical small instance.
func genInstance(t *testing.T) *model.Instance {
	t.Helper()
	return conform.GenInstance(conform.GenConfig{Seed: 7, I: 3, J: 4, T: 3})
}

// feasibleSchedule serves every user fully on its attached cloud, spilling
// to other clouds in index order when capacity fills.
func feasibleSchedule(in *model.Instance) model.Schedule {
	s := make(model.Schedule, in.T)
	for t := range s {
		x := model.NewAlloc(in.I, in.J)
		free := append([]float64(nil), in.Capacity...)
		for j := 0; j < in.J; j++ {
			need := in.Workload[j]
			for i := in.Attach[t][j]; need > 0; i = (i + 1) % in.I {
				take := math.Min(need, free[i])
				x.Set(i, j, x.At(i, j)+take)
				free[i] -= take
				need -= take
			}
		}
		s[t] = x
	}
	return s
}

func TestCheckCleanSchedule(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	rep := conform.Check(in, s, nil, conform.Options{})
	if !rep.OK() {
		t.Fatalf("clean schedule flagged: %v", rep.Err())
	}
	if rep.Err() != nil {
		t.Fatal("Err() non-nil on clean report")
	}
	// The report's breakdowns must match the model's evaluations.
	b0, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total(rep.BreakdownP0) != in.Total(b0) {
		t.Errorf("BreakdownP0 total %g != Evaluate %g", in.Total(rep.BreakdownP0), in.Total(b0))
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	in := genInstance(t)
	tests := []struct {
		name   string
		mutate func(model.Schedule) model.Schedule
		want   conform.Kind
	}{
		{"short horizon", func(s model.Schedule) model.Schedule {
			return s[:len(s)-1]
		}, conform.KindShape},
		{"wrong slot shape", func(s model.Schedule) model.Schedule {
			s[1] = model.NewAlloc(in.I+1, in.J)
			return s
		}, conform.KindShape},
		{"nan entry", func(s model.Schedule) model.Schedule {
			s[0].Set(0, 0, math.NaN())
			return s
		}, conform.KindNumeric},
		{"inf entry", func(s model.Schedule) model.Schedule {
			s[0].Set(0, 0, math.Inf(1))
			return s
		}, conform.KindNumeric},
		{"negative entry", func(s model.Schedule) model.Schedule {
			s[2].Set(1, 0, -0.5)
			return s
		}, conform.KindNegative},
		{"demand shortfall", func(s model.Schedule) model.Schedule {
			for i := 0; i < in.I; i++ {
				s[1].Set(i, 2, 0)
			}
			return s
		}, conform.KindDemand},
		{"capacity overflow", func(s model.Schedule) model.Schedule {
			s[1].Set(0, 0, s[1].At(0, 0)+2*in.Capacity[0])
			return s
		}, conform.KindCapacity},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rep := conform.Check(in, tt.mutate(feasibleSchedule(in)), nil, conform.Options{})
			if rep.OK() {
				t.Fatal("violation not detected")
			}
			found := false
			for _, v := range rep.Violations {
				if v.Kind == tt.want {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in %v", tt.want, rep.Err())
			}
			if !errors.Is(rep.Err(), conform.ErrNonConformant) {
				t.Error("Err() does not wrap ErrNonConformant")
			}
		})
	}
}

// The capacity overflow also breaks the Lemma-1 |gap| ≤ w_mg·σ bound when
// the overload dwarfs σ; check the gap family fires too.
func TestCheckGapBound(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	// Park an absurd load on cloud 0 in the final slot: the identity
	// still holds, but the gap now exceeds σ (and capacity breaks, which
	// is what admits such a schedule's gap in the first place).
	huge := 100 * in.Sigma() / (in.MigOutPrice[0] + 1e-9)
	s[in.T-1].Set(0, 0, s[in.T-1].At(0, 0)+huge)
	rep := conform.Check(in, s, nil, conform.Options{})
	kinds := map[conform.Kind]bool{}
	for _, v := range rep.Violations {
		kinds[v.Kind] = true
	}
	if !kinds[conform.KindGap] {
		t.Errorf("gap bound not flagged: %v", rep.Err())
	}
	if !kinds[conform.KindCapacity] {
		t.Errorf("capacity not flagged: %v", rep.Err())
	}
}

func TestCheckCertificateDiagnostics(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	// Leave every cloud strictly slack: the Theorem-2 comparison is
	// enforced only on runs where capacity never binds.
	for i := range in.Capacity {
		in.Capacity[i] *= 10
	}
	b0, _ := in.Evaluate(s)
	b1, _ := in.EvaluateP1(s)
	t0, t1 := in.Total(b0), in.Total(b1)
	sigma := in.WMg * in.Sigma()

	good := conform.Diagnostics{
		HasCertificate: true,
		LowerBoundP0:   0.5 * t0,
		LowerBoundP1:   0.5*t0 + sigma,
		DualResidual:   1e-9,
		RatioBound:     1e6,
	}
	if rep := conform.Check(in, s, &good, conform.Options{}); !rep.OK() {
		t.Fatalf("valid diagnostics flagged: %v", rep.Err())
	}

	tests := []struct {
		name   string
		mutate func(conform.Diagnostics) conform.Diagnostics
		want   conform.Kind
	}{
		{"lower bound above cost", func(d conform.Diagnostics) conform.Diagnostics {
			d.LowerBoundP0 = 2 * t0
			d.LowerBoundP1 = 2*t0 + sigma
			return d
		}, conform.KindLowerBound},
		{"dual residual too large", func(d conform.Diagnostics) conform.Diagnostics {
			d.DualResidual = 1
			return d
		}, conform.KindDualCert},
		{"bounds break the sigma relation", func(d conform.Diagnostics) conform.Diagnostics {
			d.LowerBoundP1 = d.LowerBoundP0 + 2*sigma + 1
			return d
		}, conform.KindGap},
		{"ratio below one", func(d conform.Diagnostics) conform.Diagnostics {
			d.RatioBound = 0.5
			return d
		}, conform.KindRatio},
		{"cost exceeds ratio times bound", func(d conform.Diagnostics) conform.Diagnostics {
			d.RatioBound = 1.0000001
			d.LowerBoundP0 = t1 / 2
			d.LowerBoundP1 = t1 / 2
			return d
		}, conform.KindRatio},
		{"nan bound", func(d conform.Diagnostics) conform.Diagnostics {
			d.LowerBoundP0 = math.NaN()
			return d
		}, conform.KindNumeric},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.mutate(good)
			rep := conform.Check(in, s, &d, conform.Options{})
			found := false
			for _, v := range rep.Violations {
				if v.Kind == tt.want {
					found = true
				}
			}
			if !found {
				t.Errorf("no %s violation in %v", tt.want, rep.Err())
			}
		})
	}

	// The ν deduction is certificate slack, not ratio budget: a deducted
	// bound that alone would fail the Theorem-2 comparison must pass once
	// NuCharge restores the undeducted stationarity value.
	rescued := good
	rescued.RatioBound = 1.0000001
	rescued.LowerBoundP0 = t1 / 2
	rescued.LowerBoundP1 = t1/2 + sigma
	rescued.NuCharge = t1
	rep := conform.Check(in, s, &rescued, conform.Options{})
	for _, v := range rep.Violations {
		if v.Kind == conform.KindRatio {
			t.Errorf("NuCharge-adjusted ratio flagged: %v", v)
		}
	}
}

// Where capacity binds at the realized schedule, the explicit capacity
// rows move the solution off the pure regularized program the paper's
// primal-dual chain analyzes (DESIGN.md finding 1), so the Theorem-2
// cost comparison must be skipped rather than raise a false alarm.
func TestCheckRatioSkippedWhenCapacityBinds(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in) // attach-then-spill loads clouds to capacity
	b1, _ := in.EvaluateP1(s)
	t1 := in.Total(b1)
	sigma := in.WMg * in.Sigma()
	d := conform.Diagnostics{
		HasCertificate: true,
		LowerBoundP0:   t1 / 4,
		LowerBoundP1:   t1/4 + sigma,
		DualResidual:   1e-9,
		RatioBound:     1.0000001, // r·LB ≪ cost: would trip on a slack run
	}
	rep := conform.Check(in, s, &d, conform.Options{})
	for _, v := range rep.Violations {
		if v.Kind == conform.KindRatio {
			t.Errorf("ratio comparison not skipped on binding schedule: %v", v)
		}
	}
}

// A flood of bad entries must truncate at MaxViolations instead of
// producing an unbounded report.
func TestCheckTruncates(t *testing.T) {
	in := genInstance(t)
	s := feasibleSchedule(in)
	for t := range s {
		for k := range s[t].X {
			s[t].X[k] = math.NaN()
		}
	}
	rep := conform.Check(in, s, nil, conform.Options{MaxViolations: 5})
	if len(rep.Violations) != 5 || !rep.Truncated {
		t.Fatalf("got %d violations (truncated=%v), want 5 truncated",
			len(rep.Violations), rep.Truncated)
	}
	if !strings.Contains(rep.Err().Error(), "truncated") {
		t.Error("error does not mention truncation")
	}
}

func TestViolationString(t *testing.T) {
	v := conform.Violation{Kind: conform.KindDemand, Slot: 3, Index: 1,
		Got: 0.5, Bound: 1, Detail: "user served below workload (Theorem 1)"}
	s := v.String()
	for _, want := range []string{"demand", "slot=3", "index=1", "0.5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestGenInstanceDeterministicAndValid(t *testing.T) {
	a := conform.GenInstance(conform.GenConfig{Seed: 42, I: 100, J: -3, T: 0, Tight: true})
	b := conform.GenInstance(conform.GenConfig{Seed: 42, I: 100, J: -3, T: 0, Tight: true})
	if a.I != b.I || a.J != b.J || a.T != b.T {
		t.Fatalf("generator not deterministic: %dx%dx%d vs %dx%dx%d", a.I, a.J, a.T, b.I, b.J, b.T)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if a.I < 2 || a.I > 6 || a.J < 1 || a.J > 8 || a.T < 1 || a.T > 6 {
		t.Errorf("dimensions %dx%dx%d outside clamp ranges", a.I, a.J, a.T)
	}
	if z := conform.GenInstance(conform.GenConfig{Seed: 1, ZeroSq: true}); z.WSq != 0 {
		t.Errorf("ZeroSq instance has WSq=%g", z.WSq)
	}
}
