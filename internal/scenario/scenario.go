// Package scenario assembles complete problem instances from the
// substrate generators, following the experimental settings of §V-A:
// 15 edge clouds at Rome metro stations, delays proportional to
// geographic distance, capacity distributed proportionally to attachment
// frequency with total capacity 1.25× the total workload (80% target
// utilization), Gaussian operation prices with base inversely
// proportional to capacity, three ISP bandwidth clusters, and truncated
// Gaussian reconfiguration prices.
package scenario

import (
	"fmt"
	"math/rand"

	"edgealloc/internal/geo"
	"edgealloc/internal/mobility"
	"edgealloc/internal/model"
	"edgealloc/internal/pricing"
	"edgealloc/internal/workload"
)

// Config selects the scenario parameters. Zero values take the defaults
// noted on each field.
type Config struct {
	// Users is the number of mobile users (default 40; the paper used
	// ~300, which remains reachable via flags on the harness).
	Users int
	// Horizon is the number of time slots (default 30; paper: 60).
	Horizon int
	// WorkloadDist is one of "power", "uniform", "normal" (default
	// "power", the paper's primary case).
	WorkloadDist string
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// Mu is the weight of the dynamic costs relative to the static costs
	// (the paper's μ, Fig 4). Default 1.
	Mu float64
	// Utilization is the target system utilization; capacity totals
	// Λ/Utilization (default 0.8, i.e. capacity 1.25Λ).
	Utilization float64
	// OpScale scales operation prices (default 1).
	OpScale float64
	// MigScale scales the total (out+in) migration price mean (default 1).
	MigScale float64
	// ReconfMean is the mean reconfiguration price (default 1).
	ReconfMean float64
	// SqPricePerKm converts geographic distance to service-quality cost
	// (default 0.5).
	SqPricePerKm float64
	// PriceVolatility is the per-slot operation-price standard deviation
	// as a fraction of the base price (default 0.5, the paper's setting).
	PriceVolatility float64
	// TaxiSpeedKm is the taxi speed in km per slot for the Rome scenario
	// (default 0.5 ≈ 30 km/h of urban progress).
	TaxiSpeedKm float64
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 40
	}
	if c.Horizon == 0 {
		c.Horizon = 30
	}
	if c.WorkloadDist == "" {
		c.WorkloadDist = "power"
	}
	if c.Mu == 0 {
		c.Mu = 1
	}
	if c.Utilization == 0 {
		c.Utilization = 0.8
	}
	if c.OpScale == 0 {
		c.OpScale = 1
	}
	if c.MigScale == 0 {
		c.MigScale = 1
	}
	if c.ReconfMean == 0 {
		c.ReconfMean = 1
	}
	if c.SqPricePerKm == 0 {
		c.SqPricePerKm = 0.5
	}
	return c
}

// Rome builds the real-world-style scenario: taxis moving through central
// Rome attach to the nearest of the 15 metro-station edge clouds.
func Rome(cfg Config) (*model.Instance, *mobility.Trace, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sites := mobility.StationPoints()
	tr, err := mobility.Taxi(mobility.TaxiConfig{
		Users:          cfg.Users,
		Horizon:        cfg.Horizon,
		SpeedKmPerSlot: cfg.TaxiSpeedKm,
	}, sites, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: building taxi trace: %w", err)
	}
	in, err := assemble(cfg, sites, tr, rng)
	if err != nil {
		return nil, nil, err
	}
	return in, tr, nil
}

// RandomWalkRome builds the §V-D synthetic scenario: users ride the metro
// graph with a uniform stay-or-move random walk.
func RandomWalkRome(cfg Config) (*model.Instance, *mobility.Trace, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	sites := mobility.StationPoints()
	tr, err := mobility.RandomWalk(mobility.RomeMetroAdjacency(), cfg.Users, cfg.Horizon, rng)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: building random walk: %w", err)
	}
	in, err := assemble(cfg, sites, tr, rng)
	if err != nil {
		return nil, nil, err
	}
	return in, tr, nil
}

// assemble turns a mobility trace into a full instance per §V-A.
func assemble(cfg Config, sites []geo.Point, tr *mobility.Trace, rng *rand.Rand) (*model.Instance, error) {
	gen, err := workload.ByName(cfg.WorkloadDist)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	loads := workload.Sample(gen, cfg.Users, rng)
	total := 0.0
	for _, l := range loads {
		total += l
	}

	// Capacity ∝ attachment frequency with a 1% floor, total = Λ/util.
	nClouds := len(sites)
	freq := tr.AttachFrequency(nClouds)
	const floor = 0.01
	weightSum := 0.0
	for i := range freq {
		if freq[i] < floor {
			freq[i] = floor
		}
		weightSum += freq[i]
	}
	capTotal := total / cfg.Utilization
	capacity := make([]float64, nClouds)
	for i := range capacity {
		capacity[i] = capTotal * freq[i] / weightSum
	}

	// Delays from geography, scaled to cost units.
	inter := geo.DistanceMatrixKm(sites)
	for i := range inter {
		for k := range inter[i] {
			inter[i][k] *= cfg.SqPricePerKm
		}
	}
	access := make([][]float64, cfg.Horizon)
	for t := range access {
		row := make([]float64, cfg.Users)
		for j := range row {
			row[j] = tr.AccessKm[t][j] * cfg.SqPricePerKm
		}
		access[t] = row
	}

	out, inPrice := pricing.BandwidthPrices(nClouds, cfg.MigScale, rng)
	in := &model.Instance{
		I:           nClouds,
		J:           cfg.Users,
		T:           cfg.Horizon,
		Capacity:    capacity,
		InterDelay:  inter,
		Workload:    loads,
		OpPrice:     pricing.OpPrices(capacity, cfg.Horizon, cfg.OpScale, cfg.PriceVolatility, rng),
		ReconfPrice: pricing.ReconfPrices(nClouds, cfg.ReconfMean, cfg.ReconfMean/2, rng),
		MigOutPrice: out,
		MigInPrice:  inPrice,
		Attach:      tr.Attach,
		AccessDelay: access,
		WOp:         1,
		WSq:         1,
		WRc:         cfg.Mu,
		WMg:         cfg.Mu,
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: assembled instance invalid: %w", err)
	}
	return in, nil
}
