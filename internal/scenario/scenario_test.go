package scenario

import (
	"math"
	"testing"
)

func TestRomeBuildsValidInstance(t *testing.T) {
	in, tr, err := Rome(Config{Users: 25, Horizon: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if in.I != 15 || in.J != 25 || in.T != 20 {
		t.Fatalf("shape I=%d J=%d T=%d, want 15/25/20", in.I, in.J, in.T)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.ChurnRate() <= 0 {
		t.Error("taxi trace has zero churn")
	}
	// Capacity totals Λ/0.8 = 1.25Λ.
	capSum := 0.0
	for _, c := range in.Capacity {
		capSum += c
	}
	if want := in.TotalWorkload() * 1.25; math.Abs(capSum-want) > 1e-6*want {
		t.Errorf("capacity total %g, want %g (1.25Λ)", capSum, want)
	}
}

func TestRandomWalkRomeBuildsValidInstance(t *testing.T) {
	in, tr, err := RandomWalkRome(Config{Users: 30, Horizon: 25, Seed: 2, WorkloadDist: "uniform"})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.ChurnRate() < 0.3 {
		t.Errorf("random-walk churn %g suspiciously low", tr.ChurnRate())
	}
	// Random-walk users sit at stations: zero access delay.
	for t2 := range in.AccessDelay {
		for _, d := range in.AccessDelay[t2] {
			if d != 0 {
				t.Fatal("random-walk access delay must be zero")
			}
		}
	}
}

func TestScenarioDeterministicPerSeed(t *testing.T) {
	a, _, err := Rome(Config{Users: 10, Horizon: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Rome(Config{Users: 10, Horizon: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range a.OpPrice {
		for i := range a.OpPrice[t2] {
			if a.OpPrice[t2][i] != b.OpPrice[t2][i] {
				t.Fatal("same seed produced different op prices")
			}
		}
	}
	c, _, err := Rome(Config{Users: 10, Horizon: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for t2 := range a.OpPrice {
		for i := range a.OpPrice[t2] {
			if a.OpPrice[t2][i] != c.OpPrice[t2][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical op prices")
	}
}

func TestMuAppliesToDynamicWeights(t *testing.T) {
	in, _, err := Rome(Config{Users: 5, Horizon: 5, Seed: 3, Mu: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if in.WOp != 1 || in.WSq != 1 || in.WRc != 0.25 || in.WMg != 0.25 {
		t.Errorf("weights = %g/%g/%g/%g, want 1/1/0.25/0.25", in.WOp, in.WSq, in.WRc, in.WMg)
	}
}

func TestWorkloadDistributionSelection(t *testing.T) {
	for _, dist := range []string{"power", "uniform", "normal"} {
		if _, _, err := Rome(Config{Users: 8, Horizon: 5, Seed: 4, WorkloadDist: dist}); err != nil {
			t.Errorf("dist %q: %v", dist, err)
		}
	}
	if _, _, err := Rome(Config{Users: 8, Horizon: 5, WorkloadDist: "bogus"}); err == nil {
		t.Error("accepted unknown workload distribution")
	}
}

func TestCapacityFollowsAttachmentFrequency(t *testing.T) {
	in, tr, err := Rome(Config{Users: 60, Horizon: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	freq := tr.AttachFrequency(in.I)
	// The busiest cloud must receive at least as much capacity as the
	// (floored) least-attached one.
	iMax, iMin := 0, 0
	for i := range freq {
		if freq[i] > freq[iMax] {
			iMax = i
		}
		if freq[i] < freq[iMin] {
			iMin = i
		}
	}
	if in.Capacity[iMax] < in.Capacity[iMin] {
		t.Errorf("capacity not frequency-proportional: busiest %g < least %g",
			in.Capacity[iMax], in.Capacity[iMin])
	}
}
