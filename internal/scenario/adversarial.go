package scenario

import (
	"fmt"

	"edgealloc/internal/model"
)

// AdversarialConfig parameterizes PingPong, a worst-case-style instance
// family exploring the lower-bound question the paper leaves as future
// work ("The lower bounds on the competitive ratio will be explored as a
// future work", §IV Remark).
type AdversarialConfig struct {
	// Horizon is the number of slots (default 12).
	Horizon int
	// Spike is the factor by which the expensive cloud's operation price
	// exceeds the cheap one's each slot (default 3).
	Spike float64
	// Dynamic is the migration+reconfiguration price per unit moved
	// (default 1). The regime Dynamic ≈ Spike−1 is the hardest: moving
	// and staying cost nearly the same for one slot, so a myopic policy
	// cannot tell the bait from a real shift.
	Dynamic float64
}

// PingPong builds a two-cloud, one-user instance whose operation prices
// alternate between the clouds every slot: whichever cloud holds the
// workload becomes expensive next slot. Online policies are forced to
// either chase (paying dynamic costs every slot) or endure the spikes;
// the offline optimum pays at most one migration per price phase. The
// instance family stresses exactly the trade-off the regularization is
// designed for, and empirically probes how close the algorithm's ratio
// can be pushed toward the Theorem-2 bound.
func PingPong(cfg AdversarialConfig) (*model.Instance, error) {
	if cfg.Horizon == 0 {
		cfg.Horizon = 12
	}
	if cfg.Horizon < 2 {
		return nil, fmt.Errorf("scenario: adversarial horizon %d too short", cfg.Horizon)
	}
	if cfg.Spike == 0 {
		cfg.Spike = 3
	}
	if cfg.Spike <= 1 {
		return nil, fmt.Errorf("scenario: adversarial spike %g must exceed 1", cfg.Spike)
	}
	if cfg.Dynamic == 0 {
		cfg.Dynamic = 1
	}
	if cfg.Dynamic < 0 {
		return nil, fmt.Errorf("scenario: adversarial dynamic price %g negative", cfg.Dynamic)
	}

	in := &model.Instance{
		I:           2,
		J:           1,
		T:           cfg.Horizon,
		Capacity:    []float64{2, 2},
		InterDelay:  [][]float64{{0, 0.1}, {0.1, 0}},
		Workload:    []float64{1},
		ReconfPrice: []float64{cfg.Dynamic / 2, cfg.Dynamic / 2},
		MigOutPrice: []float64{cfg.Dynamic / 4, cfg.Dynamic / 4},
		MigInPrice:  []float64{cfg.Dynamic / 4, cfg.Dynamic / 4},
		WOp:         1, WSq: 1, WRc: 1, WMg: 1,
	}
	for t := 0; t < cfg.Horizon; t++ {
		prices := []float64{1, 1}
		prices[t%2] = cfg.Spike // alternate which cloud is expensive
		in.OpPrice = append(in.OpPrice, prices)
		in.Attach = append(in.Attach, []int{t % 2})
		in.AccessDelay = append(in.AccessDelay, []float64{0.2})
	}
	init := model.NewAlloc(2, 1)
	init.Set(1, 0, 1) // start on the cloud about to stay cheap in slot 0
	in.Init = &init
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("scenario: adversarial instance invalid: %w", err)
	}
	return in, nil
}
