package scenario

import (
	"testing"
)

func TestPingPongStructure(t *testing.T) {
	in, err := PingPong(AdversarialConfig{Horizon: 8, Spike: 4, Dynamic: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.I != 2 || in.J != 1 || in.T != 8 {
		t.Fatalf("shape %d/%d/%d", in.I, in.J, in.T)
	}
	for t2 := 0; t2 < in.T; t2++ {
		expensive := t2 % 2
		if in.OpPrice[t2][expensive] != 4 || in.OpPrice[t2][1-expensive] != 1 {
			t.Fatalf("slot %d prices %v, want spike on cloud %d", t2, in.OpPrice[t2], expensive)
		}
	}
}

func TestPingPongValidation(t *testing.T) {
	cases := []AdversarialConfig{
		{Horizon: 1},
		{Spike: 0.5},
		{Dynamic: -1},
	}
	for _, cfg := range cases {
		if _, err := PingPong(cfg); err == nil {
			t.Errorf("PingPong(%+v) accepted invalid config", cfg)
		}
	}
}
