package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/scenario"
)

// FuzzSnapshotRoundTrip throws arbitrary bytes at the session snapshot
// codec and checks the two invariants a restorable snapshot must hold:
//
//  1. Byte stability: encode → decode → encode is the identity on the
//     canonical encoding, so snapshots can be compared, content-hashed,
//     and shipped between replicas without drift.
//  2. Warm-state equivalence: the algorithm rebuilt by restoreSession
//     exports exactly the warm state the snapshot carried — nothing of
//     the iterate, the duals, or the per-slot dual record is lost or
//     invented on the way through the codec.
//
// Bytes that do not decode into a valid snapshot must be rejected with
// an error (never a panic); they are skipped.
func FuzzSnapshotRoundTrip(f *testing.F) {
	srv := New(Config{})
	f.Cleanup(func() { _ = srv.Close() })

	// Seed with real snapshots at several depths, including the
	// never-advanced slot-0 edge (corpusgen commits richer variants
	// under testdata/fuzz).
	in, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 3, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	for _, slots := range []int{0, 1, 3} {
		alg := core.NewOnlineApprox(in, core.Options{})
		for t := 0; t < slots; t++ {
			if _, err := alg.StepCtx(context.Background(), t); err != nil {
				f.Fatal(err)
			}
		}
		raw, err := json.Marshal(&Snapshot{
			Version:  snapshotVersion,
			ID:       "seed",
			Instance: in,
			State:    alg.ExportState(),
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte(`{"version":1,"id":"x"}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var snap Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			t.Skip()
		}
		sess, err := srv.restoreSession(&snap)
		if err != nil {
			// Invalid snapshots must fail closed; reaching here without a
			// panic is the property.
			t.Skip()
		}

		// (1) Canonical-encoding stability.
		b1, err := json.Marshal(&snap)
		if err != nil {
			t.Fatalf("encoding restorable snapshot: %v", err)
		}
		var snap2 Snapshot
		if err := json.Unmarshal(b1, &snap2); err != nil {
			t.Fatalf("decoding canonical encoding: %v", err)
		}
		b2, err := json.Marshal(&snap2)
		if err != nil {
			t.Fatalf("re-encoding: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode/decode/encode not byte-stable:\n%s\nvs\n%s", b1, b2)
		}

		// (2) Warm-state fidelity through restore.
		if msg := warmStatesEquiv(snap.State, sess.alg.ExportState()); msg != "" {
			t.Fatalf("restored warm state diverged: %s", msg)
		}

		// The restored session must also snapshot back to a restorable
		// document (closure under the round trip).
		if _, err := srv.restoreSession(sess.snapshot()); err != nil {
			t.Fatalf("re-snapshot of restored session not restorable: %v", err)
		}
	})
}

// warmStatesEquiv compares warm states semantically: float-for-float
// equality, with nil and empty slices identified (JSON does not
// distinguish an absent list from an empty one).
func warmStatesEquiv(a, b *core.WarmState) string {
	if a == nil || b == nil {
		if a != b {
			return "one state nil"
		}
		return ""
	}
	if a.Slot != b.Slot {
		return "slot differs"
	}
	if msg := rowsEquiv("schedule", a.Schedule, b.Schedule); msg != "" {
		return msg
	}
	if len(a.Duals) != len(b.Duals) {
		return "duals length differs"
	}
	for i := range a.Duals {
		if a.Duals[i] != b.Duals[i] {
			return "duals differ"
		}
	}
	if msg := rowsEquiv("thetas", a.Thetas, b.Thetas); msg != "" {
		return msg
	}
	if msg := rowsEquiv("rhos", a.Rhos, b.Rhos); msg != "" {
		return msg
	}
	return rowsEquiv("nus", a.Nus, b.Nus)
}

func rowsEquiv(name string, a, b [][]float64) string {
	if len(a) != len(b) {
		return name + " row count differs"
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return name + " row length differs"
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return name + " values differ"
			}
		}
	}
	return ""
}
