package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"edgealloc/internal/model"
)

// TestServeSoak is the race-detector soak of the serving tier: several
// client goroutines hammer overlapping sessions with slot-advances,
// snapshot requests, deletes, and re-creates while the TTL janitor
// concurrently evicts idle sessions to disk and a final drain shuts the
// server down mid-traffic. Its value is entirely under `go test -race`
// (`make soak`, the CI soak job): any locking mistake between the
// session bookkeeping mutex, the per-session solve mutex, the evicted
// flag, and the snapshot persistence path surfaces here as a race
// report or a non-retryable status.
//
// The iteration budget is deliberately small so the plain `make test`
// and `make race` sweeps stay fast; `make soak SOAK_ITERS=n` scales the
// wall-clock by running the test n times.
func TestServeSoak(t *testing.T) {
	in := testInstance(t, 4, 3, 1)

	// A fake clock advanced by the janitor goroutine below makes TTL
	// eviction fire constantly instead of once per real TTL.
	var clockMu sync.Mutex
	clock := time.Unix(0, 0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}

	srv, ts := newTestServer(t, Config{
		SnapshotDir:  t.TempDir(),
		Autosnapshot: true,
		SessionTTL:   time.Minute,
		now:          now,
	})

	const (
		workers     = 4
		sessionsPer = 2
		iters       = 60 // slot posts per worker before stopping
	)

	var wg, evictWg sync.WaitGroup
	var solved, evictRetries atomic.Uint64
	stop := make(chan struct{})

	// Janitor pressure: advance the clock past the TTL and evict in a
	// tight loop, so every slot post races an eviction attempt.
	evictWg.Add(1)
	go func() {
		defer evictWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			clockMu.Lock()
			clock = clock.Add(2 * time.Minute)
			clockMu.Unlock()
			srv.evictIdle(now())
			time.Sleep(time.Millisecond) // leave the solvers some CPU
		}
	}()

	// Client traffic: each worker owns a few session ids and loops
	// slot-advances over them, mixing in snapshots and delete/recreate.
	// A 410 (evicted mid-handler) is part of the contract: retrying the
	// same request must transparently restore from the disk snapshot.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			next := make([]int, sessionsPer)
			for k := 0; k < sessionsPer; k++ {
				createSoakSession(t, ts.URL, soakID(w, k), in)
			}
			for i := 0; i < iters; i++ {
				k := rng.Intn(sessionsPer)
				id := soakID(w, k)
				switch {
				case rng.Intn(10) == 0:
					// Snapshot under load.
					code, raw := doJSON(t, http.MethodPost,
						ts.URL+"/v1/sessions/"+id+"/snapshot", nil, nil)
					if code != http.StatusOK && code != http.StatusGone {
						t.Errorf("snapshot %s: status %d: %s", id, code, raw)
						return
					}
				case rng.Intn(10) == 0:
					// Delete and recreate from scratch.
					doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil)
					createSoakSession(t, ts.URL, id, in)
					next[k] = 0
				default:
					if next[k] >= in.T {
						doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil)
						createSoakSession(t, ts.URL, id, in)
						next[k] = 0
					}
					var resp slotResponse
					code, raw := doJSON(t, http.MethodPost,
						fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, id),
						map[string]any{"slot": next[k]}, &resp)
					switch code {
					case http.StatusOK:
						next[k]++
						solved.Add(1)
					case http.StatusGone:
						// Evicted between lookup and solve; the retry path
						// must restore from disk. Do not advance the slot.
						evictRetries.Add(1)
					case http.StatusTooManyRequests:
						// Queue full under the eviction storm; retry later.
					default:
						t.Errorf("slot %d on %s: status %d: %s", next[k], id, code, raw)
						return
					}
				}
			}
		}(w)
	}

	// Let the traffic run, then drain mid-flight: Shutdown must wait for
	// in-flight solves and stop the janitor without deadlocking against
	// the eviction loop.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatalf("soak wedged: workers did not finish")
	}
	close(stop)
	evictWg.Wait()

	if err := srv.Close(); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if solved.Load() == 0 {
		t.Fatalf("soak made no progress: 0 slot-advances")
	}
	t.Logf("soak: %d slot-advances, %d evict-retry (410) responses",
		solved.Load(), evictRetries.Load())
}

func soakID(w, k int) string { return fmt.Sprintf("soak-%d-%d", w, k) }

// createSoakSession creates (or re-creates) a session, tolerating the
// races inherent to the soak: a 409 means a concurrent restore-from-disk
// beat us to the id, which is fine — the session exists.
func createSoakSession(t *testing.T, base, id string, in *model.Instance) {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}
	code, raw := doJSON(t, http.MethodPost, base+"/v1/sessions",
		map[string]any{"id": id, "instance": json.RawMessage(buf.Bytes())}, nil)
	if code != http.StatusCreated && code != http.StatusConflict {
		t.Errorf("create %s: status %d: %s", id, code, raw)
	}
}
