package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/sim"
)

// testInstance builds a small but non-trivial Rome instance (15 clouds).
func testInstance(t *testing.T, users, horizon int, seed int64) *model.Instance {
	t.Helper()
	in, _, err := scenario.Rome(scenario.Config{Users: users, Horizon: horizon, Seed: seed})
	if err != nil {
		t.Fatalf("building instance: %v", err)
	}
	return in
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { _ = s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal request: %v", err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading response: %v", err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decoding response %q: %v", raw, err)
		}
	}
	return resp.StatusCode, raw
}

// createSession posts the instance (replay mode) and returns the id.
func createSession(t *testing.T, base string, in *model.Instance) string {
	t.Helper()
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}
	var resp createResponse
	code, raw := doJSON(t, http.MethodPost, base+"/v1/sessions",
		map[string]any{"instance": json.RawMessage(buf.Bytes())}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("create session: status %d: %s", code, raw)
	}
	return resp.ID
}

// driveSession posts every slot of the horizon and returns the
// per-slot responses.
func driveSession(t *testing.T, base, id string, horizon int) []slotResponse {
	t.Helper()
	out := make([]slotResponse, 0, horizon)
	for slot := 0; slot < horizon; slot++ {
		var resp slotResponse
		code, raw := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", base, id),
			map[string]any{"slot": slot}, &resp)
		if code != http.StatusOK {
			t.Fatalf("slot %d: status %d: %s", slot, code, raw)
		}
		out = append(out, resp)
	}
	return out
}

// fetchSchedule decodes the session's schedule through the model codec.
func fetchSchedule(t *testing.T, base, id string) model.Schedule {
	t.Helper()
	resp, err := http.Get(base + "/v1/sessions/" + id + "/schedule")
	if err != nil {
		t.Fatalf("get schedule: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get schedule: status %d", resp.StatusCode)
	}
	sched, err := model.ReadSchedule(resp.Body)
	if err != nil {
		t.Fatalf("decoding schedule: %v", err)
	}
	return sched
}

// reference runs the batch sim path on the instance.
func reference(t *testing.T, in *model.Instance) *sim.Run {
	t.Helper()
	run, err := sim.Execute(in, core.NewOnlineApprox(nil, core.Options{}))
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return run
}

func schedulesEqual(a, b model.Schedule) bool {
	if len(a) != len(b) {
		return false
	}
	for t := range a {
		if a[t].I != b[t].I || a[t].J != b[t].J || len(a[t].X) != len(b[t].X) {
			return false
		}
		for k := range a[t].X {
			if a[t].X[k] != b[t].X[k] {
				return false
			}
		}
	}
	return true
}

// TestConcurrentSessionsMatchBatchSim drives several sessions with
// distinct instances concurrently and requires every schedule to be
// byte-identical to the batch sim path on the same instance.
func TestConcurrentSessionsMatchBatchSim(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const horizon = 3
	seeds := []int64{1, 2, 3}
	// Instances and batch-sim references are computed on the test
	// goroutine; the goroutines below only drive the HTTP API.
	ins := make([]*model.Instance, len(seeds))
	wants := make([]*sim.Run, len(seeds))
	for k, seed := range seeds {
		ins[k] = testInstance(t, 5, horizon, seed)
		wants[k] = reference(t, ins[k])
	}
	var wg sync.WaitGroup
	for k, seed := range seeds {
		wg.Add(1)
		go func(k int, seed int64) {
			defer wg.Done()
			in, want := ins[k], wants[k]
			id := createSession(t, ts.URL, in)
			resps := driveSession(t, ts.URL, id, horizon)
			got := fetchSchedule(t, ts.URL, id)
			if !schedulesEqual(got, want.Schedule) {
				t.Errorf("seed %d: served schedule differs from batch sim schedule", seed)
			}
			last := resps[horizon-1]
			if !last.Done {
				t.Errorf("seed %d: final slot not marked done", seed)
			}
			if last.Conformance == nil || !last.Conformance.OK {
				t.Errorf("seed %d: conformance summary = %+v, want clean", seed, last.Conformance)
			}
			wantTotal := in.Total(want.Breakdown)
			if math.Abs(last.Cost.RunTotal-wantTotal) > 1e-9*(1+math.Abs(wantTotal)) {
				t.Errorf("seed %d: run total %g, batch sim total %g", seed, last.Cost.RunTotal, wantTotal)
			}
		}(k, seed)
	}
	wg.Wait()
}

// TestStreamingSessionMatchesReplay reveals slot data one post at a time
// (streaming mode) and requires the same schedule as the replay path.
func TestStreamingSessionMatchesReplay(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const horizon = 3
	in := testInstance(t, 4, horizon, 7)
	want := reference(t, in)

	skeleton := *in
	skeleton.T = 0
	skeleton.OpPrice, skeleton.Attach, skeleton.AccessDelay = nil, nil, nil
	raw, err := json.Marshal(&skeleton)
	if err != nil {
		t.Fatalf("marshal skeleton: %v", err)
	}
	var created createResponse
	code, body := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		map[string]any{"instance": json.RawMessage(raw), "horizon": horizon}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create streaming session: status %d: %s", code, body)
	}
	if !created.Streaming {
		t.Fatalf("session not marked streaming: %+v", created)
	}
	for slot := 0; slot < horizon; slot++ {
		var resp slotResponse
		code, body := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, created.ID),
			map[string]any{
				"slot":        slot,
				"opPrice":     in.OpPrice[slot],
				"attach":      in.Attach[slot],
				"accessDelay": in.AccessDelay[slot],
			}, &resp)
		if code != http.StatusOK {
			t.Fatalf("slot %d: status %d: %s", slot, code, body)
		}
	}
	got := fetchSchedule(t, ts.URL, created.ID)
	if !schedulesEqual(got, want.Schedule) {
		t.Error("streamed schedule differs from batch sim schedule")
	}
}

// TestOverloadSheds429 saturates the single worker slot with a blocked
// solve and requires (a) an immediate 429 for a second session and (b)
// that the shed session solves correctly afterwards — overload must not
// corrupt other sessions.
func TestOverloadSheds429(t *testing.T) {
	started := make(chan string, 1)
	releaseCh := make(chan struct{})
	var hookOnce sync.Once
	cfg := Config{
		Workers:    1,
		QueueDepth: -1, // no wait queue: excess requests shed immediately
		hookSolveStart: func(id string) {
			var block bool
			hookOnce.Do(func() { block = true })
			if block {
				started <- id
				<-releaseCh
			}
		},
	}
	s, ts := newTestServer(t, cfg)

	const horizon = 2
	inA := testInstance(t, 4, horizon, 11)
	inB := testInstance(t, 4, horizon, 12)
	wantB := reference(t, inB)
	idA := createSession(t, ts.URL, inA)
	idB := createSession(t, ts.URL, inB)

	aDone := make(chan int, 1)
	go func() {
		code, _ := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, idA), map[string]any{}, nil)
		aDone <- code
	}()
	select {
	case id := <-started:
		if id != idA {
			t.Fatalf("hook saw session %s, want %s", id, idA)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first solve never started")
	}

	code, _ := doJSON(t, http.MethodPost,
		fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, idB), map[string]any{}, nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("overloaded post: status %d, want 429", code)
	}
	if got := s.mRejected.With("queue-full").Value(); got < 1 {
		t.Errorf("rejected{queue-full} = %g, want >= 1", got)
	}

	close(releaseCh)
	if code := <-aDone; code != http.StatusOK {
		t.Fatalf("blocked session A solve: status %d", code)
	}

	// The shed session must still work and produce the reference result.
	driveSession(t, ts.URL, idB, horizon)
	if got := fetchSchedule(t, ts.URL, idB); !schedulesEqual(got, wantB.Schedule) {
		t.Error("session B schedule corrupted after overload shedding")
	}
}

// TestShutdownDrainsInFlight starts a solve, holds it at the hook, and
// verifies Shutdown (a) refuses new work with 503 while draining and
// (b) returns only after the in-flight slot completed successfully.
func TestShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	releaseCh := make(chan struct{})
	var hookOnce sync.Once
	cfg := Config{
		hookSolveStart: func(string) {
			hookOnce.Do(func() {
				close(started)
				<-releaseCh
			})
		},
	}
	s, ts := newTestServer(t, cfg)

	in := testInstance(t, 4, 2, 21)
	id := createSession(t, ts.URL, in)

	type result struct {
		code int
		resp slotResponse
	}
	solved := make(chan result, 1)
	go func() {
		var resp slotResponse
		code, _ := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, id), map[string]any{}, &resp)
		solved <- result{code, resp}
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Draining must reject new sessions with 503; poll until the flag is
	// visible (Shutdown sets it before waiting on the in-flight solve).
	deadline := time.Now().Add(10 * time.Second)
	for {
		code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
			map[string]any{"instance": json.RawMessage(`{}`)}, nil)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned before in-flight slot drained: %v", err)
	default:
	}

	close(releaseCh)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	res := <-solved
	if res.code != http.StatusOK {
		t.Fatalf("in-flight slot: status %d, want 200", res.code)
	}
	if res.resp.Slot != 0 || res.resp.Solve.Seconds <= 0 {
		t.Errorf("drained slot response malformed: %+v", res.resp)
	}
	// After drain completes, slot posts are refused.
	code, _ := doJSON(t, http.MethodPost,
		fmt.Sprintf("%s/v1/sessions/%s/slots", ts.URL, id), map[string]any{}, nil)
	if code != http.StatusServiceUnavailable {
		t.Errorf("post after shutdown: status %d, want 503", code)
	}
}

// TestMetricsMatchSolverDiagnostics drives one session and requires the
// /metrics endpoint's per-slot latency histogram and iteration counters
// to agree exactly with the diagnostics reported per response.
func TestMetricsMatchSolverDiagnostics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const horizon = 3
	in := testInstance(t, 4, horizon, 31)
	id := createSession(t, ts.URL, in)
	resps := driveSession(t, ts.URL, id, horizon)

	var wantSeconds float64
	var wantOuter, wantInner int
	for _, r := range resps {
		wantSeconds += r.Solve.Seconds
		wantOuter += r.Solve.OuterIterations
		wantInner += r.Solve.InnerIterations
	}

	var doc map[string]any
	code, raw := doJSON(t, http.MethodGet, ts.URL+"/metrics?format=json", nil, &doc)
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	num := func(key string) float64 {
		v, ok := doc[key].(float64)
		if !ok {
			t.Fatalf("metric %q missing or not a number in %s", key, raw)
		}
		return v
	}
	hist, ok := doc["edgealloc_solver_step_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("edgealloc_solver_step_seconds missing in %s", raw)
	}
	if got := hist["count"].(float64); got != horizon {
		t.Errorf("step histogram count = %g, want %d", got, horizon)
	}
	if got := hist["sum"].(float64); math.Abs(got-wantSeconds) > 1e-9*(1+wantSeconds) {
		t.Errorf("step histogram sum = %g, responses sum to %g", got, wantSeconds)
	}
	if got := num("edgealloc_solver_steps_total"); got != horizon {
		t.Errorf("steps_total = %g, want %d", got, horizon)
	}
	if got := num("edgealloc_solver_alm_outer_iterations_total"); got != float64(wantOuter) {
		t.Errorf("outer iterations = %g, responses sum to %d", got, wantOuter)
	}
	if got := num("edgealloc_solver_fista_iterations_total"); got != float64(wantInner) {
		t.Errorf("fista iterations = %g, responses sum to %d", got, wantInner)
	}
	// The exact entropy path memoizes per-element logs, so a warm solve
	// must have recorded both cache misses (cold slots) and hits.
	if got := num("edgealloc_solver_logcache_misses_total"); got <= 0 {
		t.Errorf("logcache misses = %g, want > 0 on the exact path", got)
	}
	if got := num("edgealloc_solver_logcache_hits_total"); got <= 0 {
		t.Errorf("logcache hits = %g, want > 0 on the exact path", got)
	}
	if got := num("edgealloc_serve_slots_total"); got != horizon {
		t.Errorf("serve slots_total = %g, want %d", got, horizon)
	}
	// Per-cloud utilization gauges exist and are sane.
	for i := 0; i < in.I; i++ {
		util := num(fmt.Sprintf("edgealloc_cloud_utilization.%d", i))
		if util < 0 || util > 1.001 {
			t.Errorf("cloud %d utilization %g outside [0, 1]", i, util)
		}
	}

	// The Prometheus rendering exposes the same series.
	code, text := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
	if code != http.StatusOK {
		t.Fatalf("metrics text: status %d", code)
	}
	for _, want := range []string{
		"# TYPE edgealloc_solver_step_seconds histogram",
		fmt.Sprintf("edgealloc_solver_steps_total %d", horizon),
		"edgealloc_cloud_utilization{cloud=\"0\"}",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestSessionAPIErrors covers the structured error paths.
func TestSessionAPIErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	in := testInstance(t, 3, 1, 41)
	id := createSession(t, ts.URL, in)

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id+"/schedule", nil, nil); code != http.StatusConflict {
		t.Errorf("schedule before any slot: status %d, want 409", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/slots",
		map[string]any{"slot": 5}, nil); code != http.StatusConflict {
		t.Errorf("out-of-order slot: status %d, want 409", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/slots",
		map[string]any{"opPrice": []float64{1}}, nil); code != http.StatusBadRequest {
		t.Errorf("short opPrice: status %d, want 400", code)
	}
	driveSession(t, ts.URL, id, 1)
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/"+id+"/slots",
		map[string]any{}, nil); code != http.StatusConflict {
		t.Errorf("post past horizon: status %d, want 409", code)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions",
		map[string]any{"instance": json.RawMessage(`{"I":1}`)}, nil); code != http.StatusBadRequest {
		t.Errorf("invalid instance: status %d, want 400", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Errorf("delete: status %d, want 204", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
		t.Errorf("status after delete: status %d, want 404", code)
	}
}

// TestSessionTTLEviction advances the injected clock past the TTL and
// requires idle sessions to be evicted while busy ones survive.
func TestSessionTTLEviction(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	s, ts := newTestServer(t, Config{SessionTTL: time.Minute, now: clock})

	in := testInstance(t, 3, 1, 51)
	idle := createSession(t, ts.URL, in)
	busy := createSession(t, ts.URL, in)

	clockMu.Lock()
	now = now.Add(2 * time.Minute)
	clockMu.Unlock()
	// Touch the busy session at the advanced clock; the idle one expires.
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+busy, nil, nil); code != http.StatusOK {
		t.Fatalf("touch busy session: status %d", code)
	}
	if got := s.evictIdle(clock()); got != 1 {
		t.Fatalf("evictIdle evicted %d sessions, want 1", got)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+idle, nil, nil); code != http.StatusNotFound {
		t.Errorf("idle session survived eviction: status %d", code)
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+busy, nil, nil); code != http.StatusOK {
		t.Errorf("busy session evicted: status %d", code)
	}
}

// TestSessionListCostsAndLimits exercises the bookkeeping endpoints and
// the create-side guards: listing, per-session costs, solver-option
// validation, the MaxSessions cap, and the liveness probe.
func TestSessionListCostsAndLimits(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxSessions: 2})
	if s.Registry() == nil {
		t.Fatal("Registry() returned nil")
	}
	in := testInstance(t, 2, 2, 11)

	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Errorf("healthz: status %d", code)
	}

	idA := createSession(t, ts.URL, in)
	idB := createSession(t, ts.URL, in)
	var list struct {
		Sessions []string `json:"sessions"`
	}
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions", nil, &list); code != http.StatusOK {
		t.Fatalf("list sessions: status %d: %s", code, raw)
	}
	if len(list.Sessions) != 2 {
		t.Errorf("listed %d sessions, want 2: %v", len(list.Sessions), list.Sessions)
	}

	// Third create trips the MaxSessions cap with the labeled rejection.
	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}
	req := map[string]any{"instance": json.RawMessage(buf.Bytes())}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", req, nil); code != http.StatusTooManyRequests {
		t.Errorf("create over session cap: status %d, want 429", code)
	}
	if got := s.mRejected.With("sessions-full").Value(); got < 1 {
		t.Errorf("sessions-full rejections = %g, want >= 1", got)
	}

	// Invalid bodies: missing instance, negative solver option.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Errorf("create without instance: status %d, want 400", code)
	}
	bad := map[string]any{
		"instance": json.RawMessage(buf.Bytes()),
		"options":  map[string]any{"epsilon1": -1.0},
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", bad, nil); code != http.StatusBadRequest {
		t.Errorf("create with negative option: status %d, want 400", code)
	}

	// Costs accumulate across slots and agree with the status total.
	resps := driveSession(t, ts.URL, idA, in.T)
	var costs costsResponse
	if code, raw := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+idA+"/costs", nil, &costs); code != http.StatusOK {
		t.Fatalf("get costs: status %d: %s", code, raw)
	}
	if costs.Slots != in.T {
		t.Errorf("costs.slots = %d, want %d", costs.Slots, in.T)
	}
	last := resps[len(resps)-1]
	if math.Abs(costs.WeightedTotal-last.Cost.RunTotal) > 1e-9*math.Abs(last.Cost.RunTotal) {
		t.Errorf("costs total %g != final slot running total %g", costs.WeightedTotal, last.Cost.RunTotal)
	}
	_ = idB
}

// TestFastMathSession drives one session with the per-session fastMath
// option and one on a daemon forced to fast math via Config, and
// requires both schedules to match a fast-math batch sim run exactly —
// the kernel tier is deterministic for a fixed instance, so the served
// path and the batch path must agree byte for byte.
func TestFastMathSession(t *testing.T) {
	const horizon = 3
	in := testInstance(t, 4, horizon, 17)
	want, err := sim.Execute(in, core.NewOnlineApprox(nil, core.Options{FastMath: true}))
	if err != nil {
		t.Fatalf("fast-math reference run: %v", err)
	}

	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}

	// Per-session opt-in on a default daemon.
	_, ts := newTestServer(t, Config{})
	var created createResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{
		"instance": json.RawMessage(buf.Bytes()),
		"options":  map[string]any{"fastMath": true},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create fast-math session: status %d: %s", code, raw)
	}
	driveSession(t, ts.URL, created.ID, horizon)
	if got := fetchSchedule(t, ts.URL, created.ID); !schedulesEqual(got, want.Schedule) {
		t.Error("per-session fastMath schedule differs from fast-math batch sim")
	}

	// Daemon-level default: plain create, fast math still applies.
	_, tsFM := newTestServer(t, Config{FastMath: true})
	id := createSession(t, tsFM.URL, in)
	driveSession(t, tsFM.URL, id, horizon)
	if got := fetchSchedule(t, tsFM.URL, id); !schedulesEqual(got, want.Schedule) {
		t.Error("Config.FastMath schedule differs from fast-math batch sim")
	}

	// The fast path costs stay within the documented 1e-8 agreement of
	// the exact path.
	exact := reference(t, in)
	wantTotal := in.Total(exact.Breakdown)
	gotTotal := in.Total(want.Breakdown)
	if math.Abs(gotTotal-wantTotal) > 1e-8*(1+math.Abs(wantTotal)) {
		t.Errorf("fast-math run total %g vs exact %g beyond 1e-8", gotTotal, wantTotal)
	}
}

// TestIncrementalSession drives one session with the per-session
// incremental option and one on a daemon forced incremental via Config,
// and requires both schedules to match an incremental batch sim run
// exactly — the incremental path is deterministic for a fixed instance.
// The solve diagnostics must surface the frozen-user accounting on the
// wire: with a loose gate, slots after the first hold every non-moving
// user frozen.
func TestIncrementalSession(t *testing.T) {
	const horizon = 3
	in := testInstance(t, 4, horizon, 17)
	iopts := core.Options{Incremental: true, IncrementalTol: 1e3}
	want, err := sim.Execute(in, core.NewOnlineApprox(nil, iopts))
	if err != nil {
		t.Fatalf("incremental reference run: %v", err)
	}

	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatalf("encoding instance: %v", err)
	}

	// Per-session opt-in on a default daemon.
	_, ts := newTestServer(t, Config{})
	var created createResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{
		"instance": json.RawMessage(buf.Bytes()),
		"options":  map[string]any{"incremental": true, "incrementalTol": 1e3},
	}, &created)
	if code != http.StatusCreated {
		t.Fatalf("create incremental session: status %d: %s", code, raw)
	}
	slots := driveSession(t, ts.URL, created.ID, horizon)
	if got := fetchSchedule(t, ts.URL, created.ID); !schedulesEqual(got, want.Schedule) {
		t.Error("per-session incremental schedule differs from incremental batch sim")
	}
	frozen := 0
	for _, sr := range slots {
		frozen += sr.Solve.FrozenUsers
	}
	if frozen == 0 {
		t.Error("no slot response reported frozen users despite the loose gate")
	}

	// Daemon-level default: plain create, incremental still applies.
	_, tsIn := newTestServer(t, Config{Incremental: true, IncrementalTol: 1e3})
	id := createSession(t, tsIn.URL, in)
	driveSession(t, tsIn.URL, id, horizon)
	if got := fetchSchedule(t, tsIn.URL, id); !schedulesEqual(got, want.Schedule) {
		t.Error("Config.Incremental schedule differs from incremental batch sim")
	}

	// A negative gate tolerance is rejected at create time.
	code, _ = doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", map[string]any{
		"instance": json.RawMessage(buf.Bytes()),
		"options":  map[string]any{"incremental": true, "incrementalTol": -1},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("negative incrementalTol: status %d, want 400", code)
	}
}
