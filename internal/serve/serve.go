// Package serve implements the edged serving daemon: a long-running HTTP
// server hosting many independent allocation sessions, each advancing
// slot by slot through the paper's online algorithm (core.OnlineApprox)
// as price/attachment updates arrive.
//
// The API is JSON over HTTP (bodies reuse the internal/model codecs):
//
//	POST   /v1/sessions                create a session from an instance
//	GET    /v1/sessions                list live sessions
//	GET    /v1/sessions/{id}           session status + last solver diag
//	DELETE /v1/sessions/{id}           evict a session
//	POST   /v1/sessions/{id}/slots     reveal slot t and solve it (P2 step)
//	GET    /v1/sessions/{id}/schedule  schedule so far (model.Schedule codec)
//	GET    /v1/sessions/{id}/costs     accumulated P0 cost breakdown
//	GET    /metrics                    telemetry (Prometheus text; ?format=json)
//	GET    /healthz                    liveness
//
// Robustness model: slot solves run on a bounded worker pool shared by
// all sessions, with a bounded wait queue on top — requests beyond
// Workers+QueueDepth (or waiting longer than AcquireWait) are rejected
// with 429 so overload degrades by shedding rather than by piling up
// goroutines. Each session solves at most one slot at a time and bounds
// its own queue (SessionQueue). Every solve runs under a per-request
// deadline (StepTimeout) whose context is polled between FISTA sweeps
// inside the solver, so a timed-out slot aborts promptly and leaves the
// session's warm state untouched — the same slot can simply be retried.
// Shutdown stops admitting work and drains in-flight solves. Idle
// sessions are evicted after SessionTTL.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"edgealloc/internal/telemetry"
)

// Config tunes the daemon. Zero values take the documented defaults.
type Config struct {
	// Workers bounds concurrently running slot solves across all sessions
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many solve requests may wait for a worker
	// slot beyond the ones running (default 4×Workers). Requests beyond
	// the bound are rejected with 429 immediately.
	QueueDepth int
	// AcquireWait bounds how long an admitted request waits for a worker
	// slot before it is rejected with 429 (default 10s).
	AcquireWait time.Duration
	// SessionQueue bounds the solve requests queued on one session,
	// including the running one (default 4); more return 429.
	SessionQueue int
	// MaxSessions bounds live sessions (default 256); more return 429.
	MaxSessions int
	// SessionTTL evicts sessions idle this long (default 15m).
	SessionTTL time.Duration
	// StepTimeout is the per-slot solve deadline (default 2m). The
	// deadline context is plumbed into the solver loop, so an expired
	// slot aborts between FISTA sweeps with the warm state intact.
	StepTimeout time.Duration
	// FastMath makes every session solve with the batch fast-math
	// entropy kernels (core.Options.FastMath); per-session options can
	// also enable it selectively. FastMathF32 additionally stores the
	// ratio scratch in float32 and implies FastMath.
	FastMath    bool
	FastMathF32 bool
	// Shards makes every session split its per-slot solve across this
	// many user shards under the consensus-ADMM coordinator
	// (core.Options.Shards); per-session options can also request a
	// (larger) shard count. 0 keeps the single-program path.
	Shards int
	// ShardWorkers lists shard-worker base URLs (cmd/edgeshard) to place
	// every sharded session's blocks on over RPC
	// (core.Options.ShardWorkers); empty solves all shards in-process.
	// Worker failures fold back to local solving, so a dead worker slows
	// sessions down without failing them.
	ShardWorkers []string
	// Incremental makes every session solve slots with the event-driven
	// incremental tier (core.Options.Incremental): only users whose
	// attachment changed since the previous slot are re-solved, with the
	// dual-feasibility gate re-admitting any frozen user it cannot
	// certify. IncrementalTol overrides the gate tolerance (0 = package
	// default). Per-session options can also enable it selectively.
	Incremental    bool
	IncrementalTol float64
	// SnapshotDir, when set, is where session snapshots persist:
	// explicit POST …/snapshot calls write there, TTL eviction saves the
	// warm state to disk instead of dropping it (a later request for the
	// session restores it transparently), and a restarted daemon
	// recovers every session found there. Empty disables persistence.
	SnapshotDir string
	// Autosnapshot persists a snapshot after every committed slot, so a
	// crash loses at most the in-flight solve. Requires SnapshotDir.
	Autosnapshot bool
	// Registry receives the daemon's metrics; a private registry is
	// created when nil.
	Registry *telemetry.Registry
	// Logger receives structured request/lifecycle logs (nil = silent).
	Logger *slog.Logger

	// now overrides time.Now in tests.
	now func() time.Time
	// hookSolveStart, when set, is invoked synchronously right before a
	// slot solve starts; tests use it to coordinate overload and drain
	// scenarios deterministically.
	hookSolveStart func(sessionID string)
	// hookPostLookup, when set, is invoked synchronously right after a
	// slot request resolves its session, before the solve is enqueued;
	// tests use it to interleave handlers with the TTL janitor.
	hookPostLookup func(sessionID string)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 && c.QueueDepth != -1 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.AcquireWait <= 0 {
		c.AcquireWait = 10 * time.Second
	}
	if c.SessionQueue <= 0 {
		c.SessionQueue = 4
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.StepTimeout <= 0 {
		c.StepTimeout = 2 * time.Minute
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// queueDepth returns the configured wait-queue bound (-1 encodes zero).
func (c Config) queueDepth() int64 {
	if c.QueueDepth == -1 {
		return 0
	}
	return int64(c.QueueDepth)
}

// Server hosts the sessions and implements the HTTP API.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	registry *telemetry.Registry
	solver   *telemetry.SolverMetrics
	log      *slog.Logger

	sem     chan struct{} // worker slots
	waiting atomic.Int64  // requests queued for a worker slot

	mu       sync.Mutex
	sessions map[string]*session
	nextID   uint64

	// drainMu gates admission against shutdown: handlers hold a read
	// lock while registered in inflight, Shutdown takes the write lock to
	// flip draining, so no solve can slip in after the drain decision.
	drainMu  sync.RWMutex
	draining bool
	inflight sync.WaitGroup

	janitorStop chan struct{}
	janitorDone chan struct{}

	// serve-level instruments (session lifecycle and load shedding).
	mSessionsActive *telemetry.Gauge
	mSessionsTotal  *telemetry.Counter
	mEvictedTotal   *telemetry.Counter
	mSlotsTotal     *telemetry.Counter
	mRejected       *telemetry.CounterVec
	mSnapshots      *telemetry.CounterVec
	mRestores       *telemetry.CounterVec
}

// New builds a server and starts its eviction janitor. Callers must
// Shutdown (or Close) it to stop the janitor.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(discardHandler{})
	}
	s := &Server{
		cfg:         cfg,
		mux:         http.NewServeMux(),
		registry:    reg,
		solver:      telemetry.NewSolverMetrics(reg),
		log:         log,
		sem:         make(chan struct{}, cfg.Workers),
		sessions:    map[string]*session{},
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
		mSessionsActive: reg.Gauge("edgealloc_serve_sessions_active",
			"Live allocation sessions."),
		mSessionsTotal: reg.Counter("edgealloc_serve_sessions_created_total",
			"Sessions created since start."),
		mEvictedTotal: reg.Counter("edgealloc_serve_sessions_evicted_total",
			"Sessions evicted by TTL or DELETE."),
		mSlotsTotal: reg.Counter("edgealloc_serve_slots_total",
			"Slots solved across all sessions."),
		mRejected: reg.CounterVec("edgealloc_serve_rejected_total",
			"Requests shed by backpressure, by reason.", "reason"),
		mSnapshots: reg.CounterVec("edgealloc_serve_snapshots_total",
			"Session snapshots taken, by trigger (request, auto, evict).", "reason"),
		mRestores: reg.CounterVec("edgealloc_serve_restores_total",
			"Sessions restored from snapshots, by source (request, disk, recovery).", "source"),
	}
	s.routes()
	if cfg.SnapshotDir != "" {
		if n := s.recoverSnapshots(); n > 0 {
			s.log.Info("crash recovery complete", "sessions", n)
		}
	}
	go s.janitor()
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	s.mux.HandleFunc("GET /v1/sessions", s.handleList)
	s.mux.HandleFunc("GET /v1/sessions/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDelete)
	s.mux.HandleFunc("POST /v1/sessions/{id}/slots", s.handlePostSlot)
	s.mux.HandleFunc("POST /v1/sessions/{id}/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("POST /v1/sessions/restore", s.handleRestore)
	s.mux.HandleFunc("GET /v1/sessions/{id}/schedule", s.handleSchedule)
	s.mux.HandleFunc("GET /v1/sessions/{id}/costs", s.handleCosts)
	s.mux.Handle("GET /metrics", s.registry.Handler())
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
}

// Handler returns the daemon's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry returns the registry the daemon records into.
func (s *Server) Registry() *telemetry.Registry { return s.registry }

// Shutdown stops admitting slot solves (503) and waits for every
// in-flight solve to drain, or for ctx to expire. The janitor is stopped
// either way; sessions stay readable (status/schedule/costs) until the
// process exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	alreadyDraining := s.draining
	s.draining = true
	s.drainMu.Unlock()
	if !alreadyDraining {
		close(s.janitorStop)
	}
	<-s.janitorDone

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.log.Info("shutdown complete: in-flight slots drained")
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown aborted with solves in flight: %w", ctx.Err())
	}
}

// Close is Shutdown with no drain deadline.
func (s *Server) Close() error { return s.Shutdown(context.Background()) }

// admit registers one unit of solve work against shutdown. The returned
// release must be called when the work finishes; ok is false when the
// server is draining.
func (s *Server) admit() (release func(), ok bool) {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	if s.draining {
		return nil, false
	}
	s.inflight.Add(1)
	return func() { s.inflight.Done() }, true
}

// acquireWorker claims a worker slot, waiting in the bounded queue. The
// returned status is 0 on success, or the HTTP status to shed with.
func (s *Server) acquireWorker(ctx context.Context) (release func(), status int, reason string) {
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, ""
	default:
	}
	if s.waiting.Add(1) > s.cfg.queueDepth() {
		s.waiting.Add(-1)
		return nil, http.StatusTooManyRequests, "queue-full"
	}
	defer s.waiting.Add(-1)
	timer := time.NewTimer(s.cfg.AcquireWait)
	defer timer.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, ""
	case <-timer.C:
		return nil, http.StatusTooManyRequests, "queue-wait"
	case <-ctx.Done():
		return nil, http.StatusServiceUnavailable, "client-gone"
	}
}

// janitor evicts idle sessions on a timer until Shutdown.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	interval := s.cfg.SessionTTL / 4
	if interval < time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s.evictIdle(s.cfg.now())
		case <-s.janitorStop:
			return
		}
	}
}

// evictIdle removes sessions whose last activity predates now−TTL.
// Sessions with queued work are never evicted. With SnapshotDir set the
// warm state is persisted to disk first (evict-to-snapshot), so a
// returning client resumes instead of restarting; without it the state
// is dropped, as before.
//
// Eviction must not race an in-flight slot solve: a handler can pass
// lookup before we run and block on stepMu behind the janitor. TryLock
// skips sessions whose stepMu is held (they are busy, hence not idle),
// and holding stepMu across persist-and-delete means any handler that
// was waiting observes the evicted flag and fails with 410 instead of
// solving into an orphan whose warm state just went to disk.
func (s *Server) evictIdle(now time.Time) int {
	cutoff := now.Add(-s.cfg.SessionTTL)
	s.mu.Lock()
	defer s.mu.Unlock()
	evicted := 0
	for id, sess := range s.sessions {
		if !sess.idleSince(cutoff) {
			continue
		}
		if !sess.stepMu.TryLock() {
			continue // solve in flight; it refreshes lastUsed anyway
		}
		if s.cfg.SnapshotDir != "" {
			if err := s.persistSnapshot(sess, "evict"); err != nil {
				// Keep the session rather than drop unsaved warm state.
				s.log.Error("evict-to-snapshot failed; keeping session",
					"session", id, "err", err)
				sess.stepMu.Unlock()
				continue
			}
		}
		sess.markEvicted()
		sess.stepMu.Unlock()
		delete(s.sessions, id)
		evicted++
		s.mEvictedTotal.Inc()
		s.log.Info("session evicted", "session", id, "reason", "ttl",
			"snapshotted", s.cfg.SnapshotDir != "")
	}
	s.mSessionsActive.Set(float64(len(s.sessions)))
	return evicted
}

// lookup finds a session by the request's {id} path value. A miss
// falls back to the session's persisted snapshot when SnapshotDir is
// configured, so TTL eviction (and a daemon restart) is transparent to
// returning clients.
func (s *Server) lookup(r *http.Request) (*session, string, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	s.mu.Unlock()
	if !ok {
		sess, ok = s.restoreFromDisk(id)
	}
	return sess, id, ok
}

// reject sheds a request: counts it, sets Retry-After, and writes the
// error body.
func (s *Server) reject(w http.ResponseWriter, status int, reason, detail string) {
	s.mRejected.With(reason).Inc()
	w.Header().Set("Retry-After", "1")
	writeError(w, status, detail)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the API's error shape.
func writeError(w http.ResponseWriter, status int, detail string) {
	writeJSON(w, status, map[string]string{"error": detail})
}

// discardHandler is a no-op slog handler for logger-less servers.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }
