package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"edgealloc/internal/model"
)

// snapshotSession hits the snapshot endpoint and returns the document.
func snapshotSession(t *testing.T, base, id string) *Snapshot {
	t.Helper()
	var snap Snapshot
	code, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/"+id+"/snapshot", nil, &snap)
	if code != http.StatusOK {
		t.Fatalf("snapshot %s: status %d: %s", id, code, raw)
	}
	return &snap
}

// restoreSessionHTTP posts the snapshot to the restore endpoint.
func restoreSessionHTTP(t *testing.T, base string, snap *Snapshot) createResponse {
	t.Helper()
	var resp createResponse
	code, raw := doJSON(t, http.MethodPost, base+"/v1/sessions/restore", snap, &resp)
	if code != http.StatusCreated {
		t.Fatalf("restore: status %d: %s", code, raw)
	}
	return resp
}

// driveSlots posts slots [from, to) of a replay session.
func driveSlots(t *testing.T, base, id string, from, to int) []slotResponse {
	t.Helper()
	out := make([]slotResponse, 0, to-from)
	for slot := from; slot < to; slot++ {
		var resp slotResponse
		code, raw := doJSON(t, http.MethodPost,
			fmt.Sprintf("%s/v1/sessions/%s/slots", base, id),
			map[string]any{"slot": slot}, &resp)
		if code != http.StatusOK {
			t.Fatalf("slot %d: status %d: %s", slot, code, raw)
		}
		out = append(out, resp)
	}
	return out
}

// TestSnapshotRestoreRoundTrip moves a half-run session to a second
// daemon through the snapshot/restore endpoints and requires the
// migrated continuation to match the uninterrupted run bitwise (the
// default solving path restores exactly).
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	in := testInstance(t, 12, 6, 3)
	_, tsA := newTestServer(t, Config{})
	_, tsB := newTestServer(t, Config{})

	id := createSession(t, tsA.URL, in)
	driveSlots(t, tsA.URL, id, 0, 3)
	snap := snapshotSession(t, tsA.URL, id)
	if snap.State == nil || snap.State.Slot != 3 {
		t.Fatalf("snapshot at slot %v, want 3", snap.State)
	}

	// The uninterrupted run continues on A; the migrated copy on B.
	restored := restoreSessionHTTP(t, tsB.URL, snap)
	if restored.ID != id || restored.Horizon != in.T {
		t.Fatalf("restore response %+v", restored)
	}
	respA := driveSlots(t, tsA.URL, id, 3, in.T)
	respB := driveSlots(t, tsB.URL, id, 3, in.T)
	for k := range respA {
		if respA[k].Cost != respB[k].Cost {
			t.Fatalf("slot %d: migrated cost %+v != %+v", respA[k].Slot, respB[k].Cost, respA[k].Cost)
		}
	}
	schedA := fetchSchedule(t, tsA.URL, id)
	schedB := fetchSchedule(t, tsB.URL, id)
	if !schedulesEqual(schedA, schedB) {
		t.Fatal("migrated schedule differs from uninterrupted run")
	}
	last := respB[len(respB)-1]
	if !last.Done || last.Conformance == nil || !last.Conformance.OK {
		t.Fatalf("migrated run did not finish conformance-clean: %+v", last.Conformance)
	}
}

// TestSnapshotRoundTripBytes pins the wire format: encode → decode →
// encode must be byte-stable (the fuzz target generalizes this).
func TestSnapshotRoundTripBytes(t *testing.T) {
	in := testInstance(t, 8, 4, 5)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, in)
	driveSlots(t, ts.URL, id, 0, 2)
	snap := snapshotSession(t, ts.URL, id)

	first, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(first, &decoded); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("snapshot JSON round trip is not byte-stable")
	}
}

// TestCreateWithClientID covers router-style named sessions.
func TestCreateWithClientID(t *testing.T) {
	in := testInstance(t, 8, 3, 7)
	_, ts := newTestServer(t, Config{})

	var buf bytes.Buffer
	if err := model.WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	body := map[string]any{"id": "user-42.trace", "instance": json.RawMessage(buf.Bytes())}
	var resp createResponse
	code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body, &resp)
	if code != http.StatusCreated || resp.ID != "user-42.trace" {
		t.Fatalf("create with id: status %d resp %+v: %s", code, resp, raw)
	}
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body, nil); code != http.StatusConflict {
		t.Fatalf("duplicate id: status %d, want 409", code)
	}
	for _, bad := range []string{"has/slash", ".hidden", "a b", string(make([]byte, 200))} {
		body["id"] = bad
		if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions", body, nil); code != http.StatusBadRequest {
			t.Fatalf("id %q: status %d, want 400", bad, code)
		}
	}
}

// TestRestoreRejectsBadSnapshots exercises the restore validation.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	in := testInstance(t, 8, 4, 9)
	_, ts := newTestServer(t, Config{})
	id := createSession(t, ts.URL, in)
	driveSlots(t, ts.URL, id, 0, 2)
	good := snapshotSession(t, ts.URL, id)

	mutate := func(f func(*Snapshot)) *Snapshot {
		raw, _ := json.Marshal(good)
		var snap Snapshot
		_ = json.Unmarshal(raw, &snap)
		f(&snap)
		return &snap
	}
	cases := map[string]*Snapshot{
		"bad-version":    mutate(func(s *Snapshot) { s.Version = 99 }),
		"no-instance":    mutate(func(s *Snapshot) { s.Instance = nil }),
		"no-state":       mutate(func(s *Snapshot) { s.State = nil }),
		"bad-id":         mutate(func(s *Snapshot) { s.ID = "../escape" }),
		"tampered-state": mutate(func(s *Snapshot) { s.State.Schedule[0][0] = -1 }),
		"slot-mismatch":  mutate(func(s *Snapshot) { s.State.Slot = 1 }),
		"bad-options":    mutate(func(s *Snapshot) { s.Options.Candidates = -1 }),
	}
	for name, snap := range cases {
		if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/restore", snap, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Restoring over a live session is a conflict, not a replacement.
	if code, _ := doJSON(t, http.MethodPost, ts.URL+"/v1/sessions/restore", good, nil); code != http.StatusConflict {
		t.Error("restore over live session accepted")
	}
}

// TestEvictToSnapshotAndDiskRestore drives the full disk lifecycle: TTL
// eviction persists the warm state, the next request transparently
// restores it, and the continuation matches the uninterrupted run
// bitwise. Before evict-to-snapshot, TTL eviction silently dropped the
// warm iterate and the session restarted from scratch.
func TestEvictToSnapshotAndDiskRestore(t *testing.T) {
	in := testInstance(t, 12, 6, 11)
	dir := t.TempDir()
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	srv, ts := newTestServer(t, Config{SnapshotDir: dir, SessionTTL: time.Minute, now: now})
	_, tsRef := newTestServer(t, Config{})

	id := createSession(t, ts.URL, in)
	ref := createSession(t, tsRef.URL, in)
	driveSlots(t, ts.URL, id, 0, 3)
	driveSlots(t, tsRef.URL, ref, 0, 3)

	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := srv.evictIdle(now()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	if _, err := os.Stat(filepath.Join(dir, id+snapExt)); err != nil {
		t.Fatalf("snapshot not persisted on eviction: %v", err)
	}
	srv.mu.Lock()
	_, live := srv.sessions[id]
	srv.mu.Unlock()
	if live {
		t.Fatal("evicted session still in memory")
	}

	// The next slot post restores from disk transparently.
	driveSlots(t, ts.URL, id, 3, in.T)
	driveSlots(t, tsRef.URL, ref, 3, in.T)
	if !schedulesEqual(fetchSchedule(t, ts.URL, id), fetchSchedule(t, tsRef.URL, ref)) {
		t.Fatal("restored continuation differs from uninterrupted run")
	}
}

// TestEvictionRaceGetsGoneNotOrphan is the regression test for the TTL
// eviction race: a slot request that resolved its session before the
// janitor evicted it must fail with 410 (and succeed on retry via the
// disk snapshot) instead of solving into the orphaned object — which is
// what happened before the evicted flag: the solve advanced warm state
// the server had already dropped, silently losing the slot.
func TestEvictionRaceGetsGoneNotOrphan(t *testing.T) {
	in := testInstance(t, 10, 4, 13)
	dir := t.TempDir()
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	looked := make(chan string)
	proceed := make(chan struct{})
	var hook func(string)
	hookMu := sync.Mutex{}
	cfg := Config{SnapshotDir: dir, SessionTTL: time.Minute, now: now,
		hookPostLookup: func(id string) {
			hookMu.Lock()
			h := hook
			hookMu.Unlock()
			if h != nil {
				h(id)
			}
		}}
	srv, ts := newTestServer(t, cfg)

	id := createSession(t, ts.URL, in)
	driveSlots(t, ts.URL, id, 0, 2)

	// Stall the next slot request between session lookup and the solve.
	hookMu.Lock()
	hook = func(sid string) {
		looked <- sid
		<-proceed
	}
	hookMu.Unlock()
	type result struct {
		code int
		raw  []byte
	}
	done := make(chan result)
	go func() {
		buf, _ := json.Marshal(map[string]any{"slot": 2})
		resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/slots", "application/json", bytes.NewReader(buf))
		if err != nil {
			done <- result{0, []byte(err.Error())}
			return
		}
		defer resp.Body.Close()
		done <- result{resp.StatusCode, nil}
	}()
	<-looked
	hookMu.Lock()
	hook = nil
	hookMu.Unlock()

	// The janitor fires while the handler is parked: idle past TTL, no
	// queued work, so the session evicts to disk.
	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := srv.evictIdle(now()); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	close(proceed)
	res := <-done
	if res.code != http.StatusGone {
		t.Fatalf("raced request: status %d, want 410: %s", res.code, res.raw)
	}

	// Retrying resumes from the snapshot with the warm state intact.
	driveSlots(t, ts.URL, id, 2, in.T)
	var status statusResponse
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, &status); code != http.StatusOK || !status.Done {
		t.Fatalf("restored session did not finish: %d %+v", code, status)
	}
}

// TestEvictionSkipsInFlightSolve pins the TryLock half of the race: a
// session whose solve is running is never evicted, even when its
// lastUsed timestamp has aged past the TTL.
func TestEvictionSkipsInFlightSolve(t *testing.T) {
	in := testInstance(t, 10, 3, 17)
	clock := struct {
		sync.Mutex
		t time.Time
	}{t: time.Unix(1000, 0)}
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	solving := make(chan struct{})
	finish := make(chan struct{})
	var once sync.Once
	srv, ts := newTestServer(t, Config{SnapshotDir: t.TempDir(), SessionTTL: time.Minute, now: now,
		hookSolveStart: func(string) {
			once.Do(func() {
				close(solving)
				<-finish
			})
		}})
	id := createSession(t, ts.URL, in)

	done := make(chan struct{})
	go func() {
		defer close(done)
		driveSlots(t, ts.URL, id, 0, 1)
	}()
	<-solving
	clock.Lock()
	clock.t = clock.t.Add(2 * time.Minute)
	clock.Unlock()
	if n := srv.evictIdle(now()); n != 0 {
		t.Fatalf("evicted %d sessions with a solve in flight, want 0", n)
	}
	close(finish)
	<-done
}

// TestCrashRecovery restarts the daemon over the same snapshot
// directory (autosnapshot persisting every slot) and requires the
// recovered sessions to finish with the uninterrupted run's schedule.
func TestCrashRecovery(t *testing.T) {
	in := testInstance(t, 12, 6, 19)
	dir := t.TempDir()

	// First daemon: drive half the horizon, then "crash" (no shutdown,
	// no snapshot call — only the autosnapshots survive).
	crashed, tsA := newTestServer(t, Config{SnapshotDir: dir, Autosnapshot: true})
	id := createSession(t, tsA.URL, in)
	driveSlots(t, tsA.URL, id, 0, 3)
	tsA.Close()
	_ = crashed.Close()

	_, tsRef := newTestServer(t, Config{})
	ref := createSession(t, tsRef.URL, in)
	driveSlots(t, tsRef.URL, ref, 0, in.T)

	// Second daemon over the same directory recovers the session.
	srv2, ts2 := newTestServer(t, Config{SnapshotDir: dir, Autosnapshot: true})
	var status statusResponse
	if code, raw := doJSON(t, http.MethodGet, ts2.URL+"/v1/sessions/"+id, nil, &status); code != http.StatusOK {
		t.Fatalf("recovered session not found: %d: %s", code, raw)
	}
	if status.NextSlot != 3 {
		t.Fatalf("recovered at slot %d, want 3", status.NextSlot)
	}
	driveSlots(t, ts2.URL, id, 3, in.T)
	if !schedulesEqual(fetchSchedule(t, ts2.URL, id), fetchSchedule(t, tsRef.URL, ref)) {
		t.Fatal("recovered continuation differs from uninterrupted run")
	}

	// Recovered server-generated ids must not collide with new ones.
	id2 := createSession(t, ts2.URL, in)
	if id2 == id {
		t.Fatalf("new session reused recovered id %s", id)
	}
	_ = srv2
}

// TestDeleteRemovesSnapshot: an explicit DELETE is an intentional
// discard — the disk snapshot goes too, so the session cannot
// resurrect through the lookup fallback.
func TestDeleteRemovesSnapshot(t *testing.T) {
	in := testInstance(t, 8, 3, 23)
	dir := t.TempDir()
	_, ts := newTestServer(t, Config{SnapshotDir: dir})
	id := createSession(t, ts.URL, in)
	driveSlots(t, ts.URL, id, 0, 1)
	snapshotSession(t, ts.URL, id)
	if _, err := os.Stat(filepath.Join(dir, id+snapExt)); err != nil {
		t.Fatal("snapshot endpoint did not persist with SnapshotDir set")
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("delete: status %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, id+snapExt)); !os.IsNotExist(err) {
		t.Fatal("snapshot survived DELETE")
	}
	if code, _ := doJSON(t, http.MethodGet, ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session still reachable: %d", code)
	}
}
