package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"edgealloc/internal/conform"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
)

// maxBodyBytes bounds request bodies; instances are the largest payload
// (time-major price/attachment arrays) and stay far below this.
const maxBodyBytes = 256 << 20

// session is one independent run of the online algorithm. Two locks
// split its state: mu guards the cheap bookkeeping handlers read, and
// stepMu serializes the slot solves (held across the whole solve, so a
// session processes one slot at a time while status/schedule/costs stay
// responsive).
type session struct {
	id  string
	srv *Server
	// inst and alg are touched only under stepMu after creation; the
	// solve writes streamed slot data into inst's time-major arrays.
	inst *model.Instance
	alg  *core.OnlineApprox
	// streaming means the instance was created from a skeleton plus a
	// horizon, so every posted slot must carry its own data.
	streaming bool
	// opts is the create request's solver configuration, kept so a
	// snapshot can rebuild the same algorithm on restore.
	opts solverOptions

	stepMu sync.Mutex

	mu     sync.Mutex
	queued int // solve requests enqueued, including the running one
	// evicted marks a session removed from the server's map while a
	// handler may still hold a reference to it: the handler must fail
	// with 410 instead of solving into (or snapshotting) an orphan whose
	// warm state the server has already persisted or dropped.
	evicted  bool
	lastUsed time.Time
	next     int // next slot to solve
	done     bool
	sched    model.Schedule // decisions so far (owned copies)
	costs    model.Breakdown
	total    float64 // weighted P0 cost so far
	lastDiag core.StepDiag
	summary  *conformSummary
}

// touch refreshes the TTL clock.
func (s *session) touch(now time.Time) {
	s.mu.Lock()
	s.lastUsed = now
	s.mu.Unlock()
}

// idleSince reports whether the session has no queued work and was last
// used before the cutoff.
func (s *session) idleSince(cutoff time.Time) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued == 0 && s.lastUsed.Before(cutoff)
}

// tryEnqueue claims a slot-solve queue position; false means the
// session's queue bound is hit.
func (s *session) tryEnqueue(limit int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.queued >= limit {
		return false
	}
	s.queued++
	return true
}

func (s *session) dequeue() {
	s.mu.Lock()
	s.queued--
	s.mu.Unlock()
}

// markEvicted flags the session as removed from the server's map.
func (s *session) markEvicted() {
	s.mu.Lock()
	s.evicted = true
	s.mu.Unlock()
}

// isEvicted reports whether the session was evicted after this handler
// looked it up.
func (s *session) isEvicted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.evicted
}

// --- wire types ---------------------------------------------------------

// solverOptions is the client-tunable subset of core.Options (plus the
// inner ALM tolerances). Zero values take the package defaults.
type solverOptions struct {
	Epsilon1     float64 `json:"epsilon1,omitempty"`
	Epsilon2     float64 `json:"epsilon2,omitempty"`
	Candidates   int     `json:"candidates,omitempty"`
	CandidateTol float64 `json:"candidateTol,omitempty"`
	// FastMath selects the batch fast-math entropy kernels for this
	// session (costs agree with the exact path to 1e-8); FastMathF32
	// additionally stores the ratio scratch in float32 and implies
	// FastMath. Both also turn on when the daemon runs with -fastmath.
	FastMath    bool `json:"fastMath,omitempty"`
	FastMathF32 bool `json:"fastMathF32,omitempty"`
	// Shards splits each slot's solve across this many user shards
	// coordinated by consensus ADMM (core.Options.Shards); 0 keeps the
	// single-program path. Also turns on when the daemon runs with
	// -shards. Composes with candidates and fastMath.
	Shards int `json:"shards,omitempty"`
	// Incremental turns on event-driven incremental slot solving
	// (core.Options.Incremental): only users whose attachment changed
	// since the previous slot are re-solved, with the dual-feasibility
	// gate re-admitting any frozen user it cannot certify.
	// IncrementalTol is the gate tolerance (0 = package default). Both
	// also turn on when the daemon runs with -incremental. Slot updates
	// arrive one at a time in streaming sessions, so the deltas stream
	// straight into the solve.
	Incremental    bool    `json:"incremental,omitempty"`
	IncrementalTol float64 `json:"incrementalTol,omitempty"`
	MaxOuter       int     `json:"maxOuter,omitempty"`
	InnerIters     int     `json:"innerIters,omitempty"`
	Workers        int     `json:"workers,omitempty"`
	FeasTol        float64 `json:"feasTol,omitempty"`
	ObjTol         float64 `json:"objTol,omitempty"`
	DualTol        float64 `json:"dualTol,omitempty"`
	Penalty        float64 `json:"penalty,omitempty"`
}

func (o solverOptions) validate() error {
	if o.Epsilon1 < 0 || o.Epsilon2 < 0 || o.Candidates < 0 || o.CandidateTol < 0 ||
		o.Shards < 0 || o.IncrementalTol < 0 || o.MaxOuter < 0 || o.InnerIters < 0 ||
		o.Workers < 0 || o.FeasTol < 0 || o.ObjTol < 0 || o.DualTol < 0 || o.Penalty < 0 {
		return errors.New("solver options must be nonnegative")
	}
	return nil
}

func (o solverOptions) coreOptions(srv *Server) core.Options {
	return core.Options{
		Epsilon1:       o.Epsilon1,
		Epsilon2:       o.Epsilon2,
		Candidates:     o.Candidates,
		CandidateTol:   o.CandidateTol,
		FastMath:       o.FastMath || srv.cfg.FastMath,
		FastMathF32:    o.FastMathF32 || srv.cfg.FastMathF32,
		Shards:         max(o.Shards, srv.cfg.Shards),
		ShardWorkers:   srv.cfg.ShardWorkers,
		Incremental:    o.Incremental || srv.cfg.Incremental,
		IncrementalTol: math.Max(o.IncrementalTol, srv.cfg.IncrementalTol),
		Solver: alm.Options{
			MaxOuter:   o.MaxOuter,
			InnerIters: o.InnerIters,
			Workers:    o.Workers,
			FeasTol:    o.FeasTol,
			ObjTol:     o.ObjTol,
			DualTol:    o.DualTol,
			Penalty:    o.Penalty,
		},
		Metrics: srv.solver,
	}
}

// createRequest creates a session. Instance is either a complete
// model.Instance (replay mode: all time-major data present up front) or
// a skeleton with T omitted plus Horizon set (streaming mode: every
// posted slot carries its own prices and attachments). ID, when set,
// names the session (path-safe [A-Za-z0-9._-], unique); router
// deployments use client ids so a session's placement is a pure
// function of its name.
type createRequest struct {
	ID       string          `json:"id,omitempty"`
	Instance json.RawMessage `json:"instance"`
	Horizon  int             `json:"horizon,omitempty"`
	Options  solverOptions   `json:"options,omitempty"`
}

type createResponse struct {
	ID        string `json:"id"`
	I         int    `json:"i"`
	J         int    `json:"j"`
	Horizon   int    `json:"horizon"`
	Streaming bool   `json:"streaming"`
}

// slotRequest reveals slot data and asks for the slot's solve. In
// replay mode all data fields are optional overrides; in streaming mode
// opPrice and attach are required (accessDelay defaults to zeros).
type slotRequest struct {
	// Slot, when set, must equal the next unsolved slot; it exists so
	// clients can detect lost ordering instead of silently advancing.
	Slot              *int      `json:"slot,omitempty"`
	OpPrice           []float64 `json:"opPrice,omitempty"`
	Attach            []int     `json:"attach,omitempty"`
	AccessDelay       []float64 `json:"accessDelay,omitempty"`
	IncludeAllocation bool      `json:"includeAllocation,omitempty"`
}

// solveDiag is core.StepDiag on the wire.
type solveDiag struct {
	Seconds         float64 `json:"seconds"`
	OuterIterations int     `json:"outerIterations"`
	InnerIterations int     `json:"innerIterations"`
	Converged       bool    `json:"converged"`
	CandidateRounds int     `json:"candidateRounds,omitempty"`
	CandidatePairs  int     `json:"candidateExpandedPairs,omitempty"`
	CandidateNNZ    int     `json:"candidateNNZ,omitempty"`
	ShardIterations int     `json:"shardIterations,omitempty"`
	ShardResidual   float64 `json:"shardResidual,omitempty"`
	FrozenUsers     int     `json:"frozenUsers,omitempty"`
	ReadmittedUsers int     `json:"readmittedUsers,omitempty"`
}

func diagDTO(d core.StepDiag) solveDiag {
	return solveDiag{
		Seconds:         d.Seconds,
		OuterIterations: d.Outer,
		InnerIterations: d.Inner,
		Converged:       d.Converged,
		CandidateRounds: d.CandRounds,
		CandidatePairs:  d.CandExpanded,
		CandidateNNZ:    d.CandNNZ,
		ShardIterations: d.ShardIters,
		ShardResidual:   d.ShardResidual,
		FrozenUsers:     d.FrozenUsers,
		ReadmittedUsers: d.ReadmittedUsers,
	}
}

// slotCost is the slot's unweighted component costs plus weighted
// totals (this slot and the run so far).
type slotCost struct {
	Op        float64 `json:"op"`
	Sq        float64 `json:"sq"`
	Rc        float64 `json:"rc"`
	Mg        float64 `json:"mg"`
	SlotTotal float64 `json:"slotTotal"`
	RunTotal  float64 `json:"runTotal"`
}

type slotResponse struct {
	Session     string          `json:"session"`
	Slot        int             `json:"slot"`
	Done        bool            `json:"done"`
	Cost        slotCost        `json:"cost"`
	Solve       solveDiag       `json:"solve"`
	Allocation  []float64       `json:"allocation,omitempty"`
	Conformance *conformSummary `json:"conformance,omitempty"`
}

// conformSummary is the oracle's verdict for a completed session.
type conformSummary struct {
	OK           bool           `json:"ok"`
	Violations   map[string]int `json:"violations,omitempty"`
	RatioBound   float64        `json:"ratioBound,omitempty"`
	LowerBoundP0 float64        `json:"lowerBoundP0,omitempty"`
}

type statusResponse struct {
	ID            string          `json:"id"`
	I             int             `json:"i"`
	J             int             `json:"j"`
	Horizon       int             `json:"horizon"`
	NextSlot      int             `json:"nextSlot"`
	Done          bool            `json:"done"`
	Streaming     bool            `json:"streaming"`
	WeightedTotal float64         `json:"weightedTotal"`
	LastSolve     *solveDiag      `json:"lastSolve,omitempty"`
	Conformance   *conformSummary `json:"conformance,omitempty"`
}

type costsResponse struct {
	Session       string   `json:"session"`
	Slots         int      `json:"slots"`
	Cost          slotCost `json:"cost"` // run-level: components + weighted total
	WeightedTotal float64  `json:"weightedTotal"`
}

// --- handlers -----------------------------------------------------------

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer release()

	var req createRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Instance) == 0 {
		writeError(w, http.StatusBadRequest, "missing instance")
		return
	}
	if err := req.Options.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.ID != "" {
		if err := validSessionID(req.ID); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	inst, streaming, err := buildInstance(req.Instance, req.Horizon)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	s.mu.Lock()
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		s.reject(w, http.StatusTooManyRequests, "sessions-full",
			fmt.Sprintf("session limit %d reached", s.cfg.MaxSessions))
		return
	}
	id := req.ID
	if id == "" {
		s.nextID++
		id = fmt.Sprintf("s-%d", s.nextID)
	} else if _, exists := s.sessions[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "session "+id+" already exists")
		return
	}
	sess := &session{
		id:        id,
		srv:       s,
		inst:      inst,
		alg:       core.NewOnlineApprox(inst, req.Options.coreOptions(s)),
		streaming: streaming,
		opts:      req.Options,
		lastUsed:  s.cfg.now(),
	}
	s.sessions[id] = sess
	s.mSessionsTotal.Inc()
	s.mSessionsActive.Set(float64(len(s.sessions)))
	s.mu.Unlock()

	s.log.Info("session created", "session", id,
		"clouds", inst.I, "users", inst.J, "horizon", inst.T, "streaming", streaming)
	writeJSON(w, http.StatusCreated, createResponse{
		ID: id, I: inst.I, J: inst.J, Horizon: inst.T, Streaming: streaming,
	})
}

// buildInstance decodes the create payload's instance. A payload with
// T present is replay mode and must validate as-is; a payload without T
// is a streaming skeleton whose time-major arrays are zero-filled over
// the given horizon.
func buildInstance(raw json.RawMessage, horizon int) (*model.Instance, bool, error) {
	var inst model.Instance
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&inst); err != nil {
		return nil, false, fmt.Errorf("decoding instance: %w", err)
	}
	streaming := inst.T == 0
	if streaming {
		if horizon <= 0 {
			return nil, false, errors.New("streaming instance (no T) requires horizon > 0")
		}
		if len(inst.OpPrice) != 0 || len(inst.Attach) != 0 || len(inst.AccessDelay) != 0 {
			return nil, false, errors.New("streaming instance must omit opPrice/attach/accessDelay")
		}
		inst.T = horizon
		inst.OpPrice = make([][]float64, horizon)
		inst.Attach = make([][]int, horizon)
		inst.AccessDelay = make([][]float64, horizon)
		for t := 0; t < horizon; t++ {
			inst.OpPrice[t] = make([]float64, inst.I)
			inst.Attach[t] = make([]int, inst.J)
			inst.AccessDelay[t] = make([]float64, inst.J)
		}
	} else if horizon != 0 && horizon != inst.T {
		return nil, false, fmt.Errorf("horizon %d conflicts with instance T=%d", horizon, inst.T)
	}
	if err := inst.Validate(); err != nil {
		return nil, false, err
	}
	return &inst, streaming, nil
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": ids})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	sess.touch(s.cfg.now())
	sess.mu.Lock()
	resp := statusResponse{
		ID:            sess.id,
		I:             sess.inst.I,
		J:             sess.inst.J,
		Horizon:       sess.inst.T,
		NextSlot:      sess.next,
		Done:          sess.done,
		Streaming:     sess.streaming,
		WeightedTotal: sess.total,
		Conformance:   sess.summary,
	}
	if sess.next > 0 {
		d := diagDTO(sess.lastDiag)
		resp.LastSolve = &d
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		s.mEvictedTotal.Inc()
	}
	s.mSessionsActive.Set(float64(len(s.sessions)))
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	sess.markEvicted()
	// DELETE is an intentional discard: drop the persisted snapshot too,
	// so the session cannot resurrect through the disk fallback.
	s.removeSnapshot(id)
	s.log.Info("session evicted", "session", id, "reason", "delete")
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	sess.touch(s.cfg.now())
	sess.mu.Lock()
	sched := sess.sched
	sess.mu.Unlock()
	if len(sched) == 0 {
		writeError(w, http.StatusConflict, "no slots solved yet")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := model.WriteSchedule(w, sched); err != nil {
		s.log.Error("encoding schedule", "session", id, "err", err)
	}
}

func (s *Server) handleCosts(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	sess.touch(s.cfg.now())
	sess.mu.Lock()
	resp := costsResponse{
		Session: sess.id,
		Slots:   sess.next,
		Cost: slotCost{
			Op: sess.costs.Op, Sq: sess.costs.Sq,
			Rc: sess.costs.Rc, Mg: sess.costs.Mg,
			RunTotal: sess.total,
		},
		WeightedTotal: sess.total,
	}
	sess.mu.Unlock()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePostSlot(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	if s.cfg.hookPostLookup != nil {
		s.cfg.hookPostLookup(id)
	}
	var req slotRequest
	if !decodeBody(w, r, &req) {
		return
	}

	release, admitted := s.admit()
	if !admitted {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer release()
	sess.touch(s.cfg.now())

	if !sess.tryEnqueue(s.cfg.SessionQueue) {
		s.reject(w, http.StatusTooManyRequests, "session-queue",
			fmt.Sprintf("session %s queue limit %d reached", id, s.cfg.SessionQueue))
		return
	}
	defer sess.dequeue()

	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()

	// The TTL janitor may have evicted the session (persisting its warm
	// state) between our lookup and taking stepMu; solving now would
	// advance an orphan the server no longer knows. 410 tells the client
	// to retry, which transparently restores from the snapshot.
	if sess.isEvicted() {
		writeError(w, http.StatusGone, "session evicted; retry to restore it from its snapshot")
		return
	}

	sess.mu.Lock()
	t, done := sess.next, sess.done
	sess.mu.Unlock()
	if done {
		writeError(w, http.StatusConflict, "session horizon complete")
		return
	}
	if req.Slot != nil && *req.Slot != t {
		writeError(w, http.StatusConflict,
			fmt.Sprintf("slot %d out of order, next is %d", *req.Slot, t))
		return
	}
	if err := sess.applySlotData(t, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	releaseWorker, status, reason := s.acquireWorker(r.Context())
	if status != 0 {
		s.reject(w, status, reason, "no solver capacity, retry later")
		return
	}
	defer releaseWorker()
	if s.cfg.hookSolveStart != nil {
		s.cfg.hookSolveStart(id)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.StepTimeout)
	defer cancel()
	x, err := sess.alg.StepCtx(ctx, t)
	if err != nil {
		status := http.StatusInternalServerError
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			status = http.StatusGatewayTimeout
		case errors.Is(err, context.Canceled):
			status = http.StatusServiceUnavailable
		}
		s.log.Warn("slot solve failed", "session", id, "slot", t, "err", err)
		writeError(w, status, err.Error())
		return
	}
	s.mSlotsTotal.Inc()

	resp := sess.recordSlot(t, x, s.cfg.now())
	if req.IncludeAllocation {
		resp.Allocation = x.X
	}
	if resp.Done {
		resp.Conformance = sess.finish()
	}
	if s.cfg.SnapshotDir != "" && s.cfg.Autosnapshot {
		if err := s.persistSnapshot(sess, "auto"); err != nil {
			s.log.Error("autosnapshot", "session", id, "slot", t, "err", err)
		}
	}
	d := sess.alg.LastStepDiag()
	s.log.Info("slot solved", "session", id, "slot", t,
		"seconds", d.Seconds, "outer", d.Outer, "inner", d.Inner, "converged", d.Converged)
	writeJSON(w, http.StatusOK, resp)
}

// applySlotData validates the revealed slot data and writes it into the
// instance's time-major arrays. Called under stepMu.
func (sess *session) applySlotData(t int, req *slotRequest) error {
	in := sess.inst
	if sess.streaming && (req.OpPrice == nil || req.Attach == nil) {
		return errors.New("streaming session requires opPrice and attach per slot")
	}
	if req.OpPrice != nil {
		if len(req.OpPrice) != in.I {
			return fmt.Errorf("len(opPrice)=%d, want %d", len(req.OpPrice), in.I)
		}
		for i, v := range req.OpPrice {
			if !(v >= 0) || math.IsInf(v, 0) {
				return fmt.Errorf("opPrice[%d]=%g must be finite and nonnegative", i, v)
			}
		}
	}
	if req.Attach != nil {
		if len(req.Attach) != in.J {
			return fmt.Errorf("len(attach)=%d, want %d", len(req.Attach), in.J)
		}
		for j, l := range req.Attach {
			if l < 0 || l >= in.I {
				return fmt.Errorf("attach[%d]=%d out of [0,%d)", j, l, in.I)
			}
		}
	}
	if req.AccessDelay != nil {
		if len(req.AccessDelay) != in.J {
			return fmt.Errorf("len(accessDelay)=%d, want %d", len(req.AccessDelay), in.J)
		}
		for j, v := range req.AccessDelay {
			if !(v >= 0) || math.IsInf(v, 0) {
				return fmt.Errorf("accessDelay[%d]=%g must be finite and nonnegative", j, v)
			}
		}
	}
	if req.OpPrice != nil {
		copy(in.OpPrice[t], req.OpPrice)
	}
	if req.Attach != nil {
		copy(in.Attach[t], req.Attach)
	}
	if req.AccessDelay != nil {
		copy(in.AccessDelay[t], req.AccessDelay)
	}
	return nil
}

// recordSlot folds the slot's decision into the session bookkeeping and
// builds the response. Called under stepMu; x is the owned decision
// returned by StepCtx.
func (sess *session) recordSlot(t int, x model.Alloc, now time.Time) *slotResponse {
	in := sess.inst
	prev := in.InitialAlloc()
	if t > 0 {
		prev = sess.sched[t-1]
	}
	op, sq := in.SlotStatic(t, x)
	rc, mg := in.SlotDynamic(prev, x)
	slotB := model.Breakdown{Op: op, Sq: sq, Rc: rc, Mg: mg}
	slotTotal := in.Total(slotB)

	sess.mu.Lock()
	sess.sched = append(sess.sched, x)
	sess.next = t + 1
	sess.done = sess.next == in.T
	sess.costs.Add(slotB)
	sess.total += slotTotal
	sess.lastDiag = sess.alg.LastStepDiag()
	sess.lastUsed = now
	resp := &slotResponse{
		Session: sess.id,
		Slot:    t,
		Done:    sess.done,
		Cost: slotCost{
			Op: op, Sq: sq, Rc: rc, Mg: mg,
			SlotTotal: slotTotal,
			RunTotal:  sess.total,
		},
		Solve: diagDTO(sess.lastDiag),
	}
	sess.mu.Unlock()
	return resp
}

// finish runs the paper-conformance oracle over the completed schedule,
// cross-checking the dual certificate and Theorem-2 ratio. Findings are
// recorded as metrics and structured log lines; the session itself stays
// queryable either way. Called under stepMu on the final slot.
func (sess *session) finish() *conformSummary {
	diag := &conform.Diagnostics{RatioBound: sess.alg.CompetitiveRatioBound()}
	if cert, err := sess.alg.Certificate(); err == nil {
		diag.HasCertificate = true
		diag.LowerBoundP0 = cert.LowerBoundP0()
		diag.LowerBoundP1 = cert.LowerBoundP1()
		diag.DualResidual = cert.Feasibility.Max()
		diag.NuCharge = cert.NuCharge
	}
	report := conform.Check(sess.inst, sess.sched, diag, conform.Options{})
	summary := &conformSummary{
		OK:           report.OK(),
		RatioBound:   diag.RatioBound,
		LowerBoundP0: diag.LowerBoundP0,
	}
	if counts := report.Counts(); counts != nil {
		summary.Violations = make(map[string]int, len(counts))
		for kind, n := range counts {
			summary.Violations[string(kind)] = n
			for k := 0; k < n; k++ {
				sess.srv.solver.CountViolation(string(kind))
			}
		}
		report.Log(sess.srv.log, "session "+sess.id)
	}
	sess.mu.Lock()
	sess.summary = summary
	sess.mu.Unlock()
	return summary
}
