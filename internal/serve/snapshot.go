package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
)

// snapshotVersion is the wire/disk format version of Snapshot. Bump it
// on incompatible changes; restore rejects unknown versions.
const snapshotVersion = 1

// snapExt is the on-disk suffix of persisted session snapshots.
const snapExt = ".snap.json"

// Snapshot is a session frozen between slots: the instance (with every
// streamed slot revealed so far), the solver options, the cost
// bookkeeping, and the algorithm's cross-slot warm state
// (core.WarmState — committed decisions, warm duals, and the per-slot
// dual record, so the certificate survives). Restoring it into a fresh
// daemon resumes the session at State.Slot with the warm iterate and
// multipliers intact: the default solving path continues bitwise
// identically, the reduced paths within their certified tolerance.
type Snapshot struct {
	Version   int             `json:"version"`
	ID        string          `json:"id"`
	Streaming bool            `json:"streaming"`
	Options   solverOptions   `json:"options"`
	Instance  *model.Instance `json:"instance"`
	Costs     model.Breakdown `json:"costs"`
	Total     float64         `json:"total"`
	LastDiag  core.StepDiag   `json:"lastDiag"`
	Summary   *conformSummary `json:"summary,omitempty"`
	State     *core.WarmState `json:"state"`
}

// snapshot freezes the session. The caller must hold stepMu (so no
// solve is mutating the instance or the algorithm); the result aliases
// the live instance, so it must be encoded before stepMu is released.
func (sess *session) snapshot() *Snapshot {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return &Snapshot{
		Version:   snapshotVersion,
		ID:        sess.id,
		Streaming: sess.streaming,
		Options:   sess.opts,
		Instance:  sess.inst,
		Costs:     sess.costs,
		Total:     sess.total,
		LastDiag:  sess.lastDiag,
		Summary:   sess.summary,
		State:     sess.alg.ExportState(),
	}
}

// restoreSession rebuilds a session from a snapshot. The returned
// session is not yet registered with the server.
func (s *Server) restoreSession(snap *Snapshot) (*session, error) {
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if err := validSessionID(snap.ID); err != nil {
		return nil, err
	}
	if snap.Instance == nil || snap.State == nil {
		return nil, errors.New("snapshot missing instance or state")
	}
	if err := snap.Options.validate(); err != nil {
		return nil, err
	}
	if err := snap.Instance.Validate(); err != nil {
		return nil, fmt.Errorf("snapshot instance: %w", err)
	}
	alg := core.NewOnlineApprox(snap.Instance, snap.Options.coreOptions(s))
	if err := alg.RestoreState(snap.State); err != nil {
		return nil, err
	}
	sess := &session{
		id:        snap.ID,
		srv:       s,
		inst:      snap.Instance,
		alg:       alg,
		streaming: snap.Streaming,
		opts:      snap.Options,
		lastUsed:  s.cfg.now(),
		next:      snap.State.Slot,
		done:      snap.State.Slot == snap.Instance.T,
		costs:     snap.Costs,
		total:     snap.Total,
		lastDiag:  snap.LastDiag,
		summary:   snap.Summary,
	}
	for _, row := range snap.State.Schedule {
		sess.sched = append(sess.sched, model.Alloc{
			I: snap.Instance.I, J: snap.Instance.J, X: row,
		})
	}
	return sess, nil
}

// register inserts a restored session, enforcing the session cap and id
// uniqueness. On an id collision the existing session wins and is
// returned with restored=false (concurrent restores of the same
// snapshot are idempotent).
func (s *Server) register(sess *session) (*session, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.sessions[sess.id]; ok {
		return cur, false, nil
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, false, fmt.Errorf("session limit %d reached", s.cfg.MaxSessions)
	}
	s.sessions[sess.id] = sess
	s.mSessionsTotal.Inc()
	s.mSessionsActive.Set(float64(len(s.sessions)))
	return sess, true, nil
}

// validSessionID accepts ids that are safe as path segments and
// snapshot file names.
func validSessionID(id string) error {
	if id == "" || len(id) > 128 {
		return fmt.Errorf("session id must be 1..128 characters")
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-' || r == '_' || r == '.':
		default:
			return fmt.Errorf("session id %q: only [A-Za-z0-9._-] allowed", id)
		}
	}
	if id[0] == '.' {
		return fmt.Errorf("session id %q must not start with a dot", id)
	}
	return nil
}

// snapshotPath is the session's on-disk snapshot location.
func (s *Server) snapshotPath(id string) string {
	return filepath.Join(s.cfg.SnapshotDir, id+snapExt)
}

// persistSnapshot writes the session's snapshot to SnapshotDir
// atomically (temp file + rename). The caller must hold stepMu.
func (s *Server) persistSnapshot(sess *session, reason string) error {
	raw, err := json.Marshal(sess.snapshot())
	if err != nil {
		return fmt.Errorf("encoding snapshot: %w", err)
	}
	path := s.snapshotPath(sess.id)
	tmp, err := os.CreateTemp(s.cfg.SnapshotDir, sess.id+".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.mSnapshots.With(reason).Inc()
	return nil
}

// removeSnapshot deletes the session's persisted snapshot, if any.
func (s *Server) removeSnapshot(id string) {
	if s.cfg.SnapshotDir == "" {
		return
	}
	if err := os.Remove(s.snapshotPath(id)); err != nil && !errors.Is(err, os.ErrNotExist) {
		s.log.Warn("removing snapshot", "session", id, "err", err)
	}
}

// restoreFromDisk loads and registers the session's persisted snapshot.
// Used when a request addresses a TTL-evicted (or pre-crash) session.
func (s *Server) restoreFromDisk(id string) (*session, bool) {
	if s.cfg.SnapshotDir == "" || validSessionID(id) != nil {
		return nil, false
	}
	raw, err := os.ReadFile(s.snapshotPath(id))
	if err != nil {
		return nil, false
	}
	var snap Snapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		s.log.Warn("decoding persisted snapshot", "session", id, "err", err)
		return nil, false
	}
	if snap.ID != id {
		s.log.Warn("persisted snapshot id mismatch", "session", id, "snapshot", snap.ID)
		return nil, false
	}
	sess, err := s.restoreSession(&snap)
	if err != nil {
		s.log.Warn("restoring persisted snapshot", "session", id, "err", err)
		return nil, false
	}
	cur, restored, err := s.register(sess)
	if err != nil {
		s.log.Warn("registering restored session", "session", id, "err", err)
		return nil, false
	}
	if restored {
		s.mRestores.With("disk").Inc()
		s.log.Info("session restored from disk", "session", id, "nextSlot", sess.next)
	}
	return cur, true
}

// recoverSnapshots restores every persisted session found in
// SnapshotDir — crash recovery on daemon restart. Unreadable snapshots
// are logged and skipped. Returns the number of sessions restored.
func (s *Server) recoverSnapshots() int {
	entries, err := os.ReadDir(s.cfg.SnapshotDir)
	if err != nil {
		s.log.Warn("scanning snapshot dir", "dir", s.cfg.SnapshotDir, "err", err)
		return 0
	}
	restored := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, snapExt) {
			continue
		}
		id := strings.TrimSuffix(name, snapExt)
		if validSessionID(id) != nil {
			continue
		}
		raw, err := os.ReadFile(filepath.Join(s.cfg.SnapshotDir, name))
		if err != nil {
			s.log.Warn("reading snapshot", "file", name, "err", err)
			continue
		}
		var snap Snapshot
		if err := json.Unmarshal(raw, &snap); err != nil {
			s.log.Warn("decoding snapshot", "file", name, "err", err)
			continue
		}
		if snap.ID != id {
			s.log.Warn("snapshot id mismatch", "file", name, "snapshot", snap.ID)
			continue
		}
		sess, err := s.restoreSession(&snap)
		if err != nil {
			s.log.Warn("recovering snapshot", "file", name, "err", err)
			continue
		}
		if _, ok, err := s.register(sess); err != nil || !ok {
			continue
		}
		// Server-generated ids are "s-N"; keep the counter ahead of every
		// recovered one so new sessions cannot collide.
		if n, err := strconv.ParseUint(strings.TrimPrefix(id, "s-"), 10, 64); err == nil {
			s.mu.Lock()
			if n > s.nextID {
				s.nextID = n
			}
			s.mu.Unlock()
		}
		s.mRestores.With("recovery").Inc()
		s.log.Info("session recovered", "session", id, "nextSlot", sess.next)
		restored++
	}
	return restored
}

// handleSnapshot (POST /v1/sessions/{id}/snapshot) freezes the session
// between slots and returns the snapshot document; when SnapshotDir is
// configured it is persisted too. Snapshots stay available while the
// server drains, so an orchestrator can save every session before
// stopping the process.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	sess, id, ok := s.lookup(r)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session "+id)
		return
	}
	sess.touch(s.cfg.now())
	sess.stepMu.Lock()
	defer sess.stepMu.Unlock()
	if sess.isEvicted() {
		writeError(w, http.StatusGone, "session evicted; restore it from its snapshot")
		return
	}
	if s.cfg.SnapshotDir != "" {
		if err := s.persistSnapshot(sess, "request"); err != nil {
			s.log.Error("persisting snapshot", "session", id, "err", err)
			writeError(w, http.StatusInternalServerError, "persisting snapshot: "+err.Error())
			return
		}
	} else {
		s.mSnapshots.With("request").Inc()
	}
	writeJSON(w, http.StatusOK, sess.snapshot())
}

// handleRestore (POST /v1/sessions/restore) recreates a session from a
// snapshot document. Restoring an id that is already live is a
// conflict; restoring one whose snapshot still sits on disk simply
// replaces the file on the next persist.
func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit()
	if !ok {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	defer release()

	var snap Snapshot
	if !decodeBody(w, r, &snap) {
		return
	}
	sess, err := s.restoreSession(&snap)
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid snapshot: "+err.Error())
		return
	}
	cur, restored, err := s.register(sess)
	if err != nil {
		s.reject(w, http.StatusTooManyRequests, "sessions-full", err.Error())
		return
	}
	if !restored {
		writeError(w, http.StatusConflict, "session "+cur.id+" already exists")
		return
	}
	s.mRestores.With("request").Inc()
	s.log.Info("session restored", "session", sess.id, "nextSlot", sess.next)
	writeJSON(w, http.StatusCreated, createResponse{
		ID: sess.id, I: sess.inst.I, J: sess.inst.J,
		Horizon: sess.inst.T, Streaming: sess.streaming,
	})
}
