// Package mobility provides the user-mobility substrates of the paper's
// evaluation: the 15 Rome metro stations hosting the edge clouds, the
// metro-line adjacency used by the random-walk model of §V-D, and a
// synthetic taxi mobility model standing in for the CRAWDAD Rome taxi
// dataset (see DESIGN.md §3 for the substitution argument).
package mobility

import "edgealloc/internal/geo"

// Station is one metro station hosting an edge cloud.
type Station struct {
	Name string
	Loc  geo.Point
}

// RomeStations are the 15 central Rome metro stations used as edge-cloud
// sites, with coordinates collected from the map (as the paper did
// manually on Google Maps). Indices are the cloud identifiers.
var RomeStations = []Station{
	{"Cornelia", geo.Point{Lat: 41.9024, Lon: 12.4289}},          // 0  (line A)
	{"Cipro", geo.Point{Lat: 41.9074, Lon: 12.4477}},             // 1  (line A)
	{"Ottaviano", geo.Point{Lat: 41.9098, Lon: 12.4589}},         // 2  (line A)
	{"Lepanto", geo.Point{Lat: 41.9096, Lon: 12.4703}},           // 3  (line A)
	{"Flaminio", geo.Point{Lat: 41.9109, Lon: 12.4766}},          // 4  (line A)
	{"Spagna", geo.Point{Lat: 41.9066, Lon: 12.4829}},            // 5  (line A)
	{"Barberini", geo.Point{Lat: 41.9038, Lon: 12.4886}},         // 6  (line A)
	{"Repubblica", geo.Point{Lat: 41.9031, Lon: 12.4956}},        // 7  (line A)
	{"Termini", geo.Point{Lat: 41.9009, Lon: 12.5012}},           // 8  (interchange A/B)
	{"Vittorio Emanuele", geo.Point{Lat: 41.8950, Lon: 12.5059}}, // 9  (line A)
	{"San Giovanni", geo.Point{Lat: 41.8860, Lon: 12.5093}},      // 10 (line A)
	{"Cavour", geo.Point{Lat: 41.8939, Lon: 12.4979}},            // 11 (line B)
	{"Colosseo", geo.Point{Lat: 41.8902, Lon: 12.4924}},          // 12 (line B)
	{"Circo Massimo", geo.Point{Lat: 41.8826, Lon: 12.4857}},     // 13 (line B)
	{"Piramide", geo.Point{Lat: 41.8765, Lon: 12.4814}},          // 14 (line B)
}

// RomeMetroAdjacency returns the neighbour lists of the metro graph:
// consecutive stations on line A (0..10) and line B
// (Termini 8 → Cavour 11 → Colosseo 12 → Circo Massimo 13 → Piramide 14),
// with Termini as the interchange.
func RomeMetroAdjacency() [][]int {
	edges := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {9, 10}, // line A
		{8, 11}, {11, 12}, {12, 13}, {13, 14}, // line B
	}
	adj := make([][]int, len(RomeStations))
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	return adj
}

// StationPoints returns the station coordinates in index order.
func StationPoints() []geo.Point {
	pts := make([]geo.Point, len(RomeStations))
	for i, s := range RomeStations {
		pts[i] = s.Loc
	}
	return pts
}
