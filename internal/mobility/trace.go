package mobility

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"edgealloc/internal/geo"
)

// Trace is a user-mobility record over a horizon: for every slot, which
// cloud each user attaches to and the access delay (user ↔ access point
// distance in km) experienced there.
type Trace struct {
	T, J int
	// Attach[t][j] is the cloud user j connects to in slot t.
	Attach [][]int
	// AccessKm[t][j] is the geographic distance to that cloud in km.
	AccessKm [][]float64
}

// ErrBadTraceConfig reports invalid generation parameters.
var ErrBadTraceConfig = errors.New("mobility: bad trace configuration")

// ChurnRate returns the fraction of (user, slot) transitions in which the
// user switched clouds — the mobility intensity the allocation dynamics
// respond to.
func (tr *Trace) ChurnRate() float64 {
	if tr.T < 2 || tr.J == 0 {
		return 0
	}
	switches := 0
	for t := 1; t < tr.T; t++ {
		for j := 0; j < tr.J; j++ {
			if tr.Attach[t][j] != tr.Attach[t-1][j] {
				switches++
			}
		}
	}
	return float64(switches) / float64((tr.T-1)*tr.J)
}

// AttachFrequency returns, for each cloud, the fraction of (user, slot)
// pairs attached to it. The paper distributes capacity proportionally to
// this frequency (§V-A).
func (tr *Trace) AttachFrequency(nClouds int) []float64 {
	freq := make([]float64, nClouds)
	for t := 0; t < tr.T; t++ {
		for j := 0; j < tr.J; j++ {
			freq[tr.Attach[t][j]]++
		}
	}
	total := float64(tr.T * tr.J)
	for i := range freq {
		freq[i] /= total
	}
	return freq
}

// RandomWalk generates the §V-D synthetic mobility pattern: each user
// starts at a uniformly random station and, in every slot, either stays
// or moves to one of the adjacent stations, all with equal probability
// (e.g. three neighbours → 25% each, 25% stay). Access delay is zero
// because users are at the stations themselves.
func RandomWalk(adj [][]int, users, horizon int, rng *rand.Rand) (*Trace, error) {
	if users <= 0 || horizon <= 0 || len(adj) == 0 {
		return nil, fmt.Errorf("%w: users=%d horizon=%d stations=%d",
			ErrBadTraceConfig, users, horizon, len(adj))
	}
	tr := &Trace{T: horizon, J: users}
	pos := make([]int, users)
	for j := range pos {
		pos[j] = rng.Intn(len(adj))
	}
	for t := 0; t < horizon; t++ {
		att := make([]int, users)
		acc := make([]float64, users)
		for j := 0; j < users; j++ {
			if t > 0 {
				// Choose uniformly among {stay} ∪ neighbours.
				k := rng.Intn(len(adj[pos[j]]) + 1)
				if k > 0 {
					pos[j] = adj[pos[j]][k-1]
				}
			}
			att[j] = pos[j]
		}
		tr.Attach = append(tr.Attach, att)
		tr.AccessKm = append(tr.AccessKm, acc)
	}
	return tr, nil
}

// ChurnConfig parameterizes the controlled-churn synthetic trace: a
// mobility pattern whose per-slot switching intensity is an exact input
// rather than an emergent property, which is what the incremental
// solving tier's churn-proportional claims are measured against.
type ChurnConfig struct {
	// Users is the number of users, Horizon the number of slots.
	Users, Horizon int
	// Stations is the number of attachment points (clouds). Rate > 0
	// requires at least two, or no user could ever switch.
	Stations int
	// Rate is the fraction of users that switch attachment at every slot
	// transition, in [0, 1]. Exactly ⌈Rate·Users⌉ users move per slot —
	// a rotating window, so every user eventually moves at any Rate > 0
	// — and each mover lands on a uniformly random *different* station,
	// making Trace.ChurnRate reproduce Rate exactly (up to the ceiling).
	Rate float64
}

// Churn generates a trace with exactly controlled attachment churn:
// slot 0 attaches every user uniformly at random; every later slot
// re-attaches the next ⌈Rate·Users⌉ users in a rotating window and
// keeps everyone else in place. Access delay is zero, as in RandomWalk.
func Churn(cfg ChurnConfig, rng *rand.Rand) (*Trace, error) {
	if cfg.Users <= 0 || cfg.Horizon <= 0 || cfg.Stations <= 0 ||
		cfg.Rate < 0 || cfg.Rate > 1 || (cfg.Rate > 0 && cfg.Stations < 2) {
		return nil, fmt.Errorf("%w: users=%d horizon=%d stations=%d rate=%g",
			ErrBadTraceConfig, cfg.Users, cfg.Horizon, cfg.Stations, cfg.Rate)
	}
	movers := int(math.Ceil(cfg.Rate * float64(cfg.Users)))
	tr := &Trace{T: cfg.Horizon, J: cfg.Users}
	for t := 0; t < cfg.Horizon; t++ {
		att := make([]int, cfg.Users)
		acc := make([]float64, cfg.Users)
		if t == 0 {
			for j := range att {
				att[j] = rng.Intn(cfg.Stations)
			}
		} else {
			copy(att, tr.Attach[t-1])
			for m := 0; m < movers; m++ {
				j := ((t-1)*movers + m) % cfg.Users
				next := rng.Intn(cfg.Stations - 1)
				if next >= att[j] {
					next++ // uniform over stations ≠ current
				}
				att[j] = next
			}
		}
		tr.Attach = append(tr.Attach, att)
		tr.AccessKm = append(tr.AccessKm, acc)
	}
	return tr, nil
}

// TaxiConfig parameterizes the synthetic taxi model that stands in for
// the CRAWDAD Rome taxi dataset.
type TaxiConfig struct {
	// Users is the number of taxis (paper: around 300).
	Users int
	// Horizon is the number of one-minute slots (paper: 60 per case).
	Horizon int
	// SpeedKmPerSlot is the distance a taxi covers per slot; the default
	// 0.5 km/min ≈ 30 km/h matches urban traffic and yields an
	// attachment churn of ≈0.2 switches per user-minute, enough mobility
	// to expose the greedy policy's migration chasing (Fig 2's story).
	SpeedKmPerSlot float64
	// SpreadKm is the radius around the station centroid within which
	// waypoints are drawn (default: 1.5× the maximum station spread).
	SpreadKm float64
}

// Taxi generates a waypoint-mobility trace: every taxi starts near a
// random station, drives toward a random waypoint at roughly constant
// speed with Gaussian jitter, picks a new waypoint on arrival, and always
// attaches to the nearest station. The churn this produces is moderate —
// a few percent of taxis switch clouds per minute — which is the property
// of the real dataset that drives the paper's dynamics (DESIGN.md §3).
func Taxi(cfg TaxiConfig, sites []geo.Point, rng *rand.Rand) (*Trace, error) {
	if cfg.Users <= 0 || cfg.Horizon <= 0 || len(sites) == 0 {
		return nil, fmt.Errorf("%w: users=%d horizon=%d sites=%d",
			ErrBadTraceConfig, cfg.Users, cfg.Horizon, len(sites))
	}
	speed := cfg.SpeedKmPerSlot
	if speed <= 0 {
		speed = 0.5
	}

	// City frame: centroid and extent of the sites.
	var cLat, cLon float64
	for _, s := range sites {
		cLat += s.Lat
		cLon += s.Lon
	}
	center := geo.Point{Lat: cLat / float64(len(sites)), Lon: cLon / float64(len(sites))}
	maxR := 0.0
	for _, s := range sites {
		if d := geo.DistanceKm(center, s); d > maxR {
			maxR = d
		}
	}
	spread := cfg.SpreadKm
	if spread <= 0 {
		spread = 1.5 * maxR
	}
	// Degrees per km in the two axes at this latitude (city-scale flat
	// approximation).
	latPerKm := 1.0 / 110.574
	lonPerKm := 1.0 / (111.320 * cosDeg(center.Lat))

	randomPoint := func() geo.Point {
		// Uniform in a disc of radius spread around the center.
		for {
			dx := (2*rng.Float64() - 1) * spread
			dy := (2*rng.Float64() - 1) * spread
			if dx*dx+dy*dy <= spread*spread {
				return geo.Point{
					Lat: center.Lat + dy*latPerKm,
					Lon: center.Lon + dx*lonPerKm,
				}
			}
		}
	}

	pos := make([]geo.Point, cfg.Users)
	dst := make([]geo.Point, cfg.Users)
	for j := range pos {
		// Start near a random station with ~300 m scatter.
		s := sites[rng.Intn(len(sites))]
		pos[j] = geo.Point{
			Lat: s.Lat + 0.3*rng.NormFloat64()*latPerKm,
			Lon: s.Lon + 0.3*rng.NormFloat64()*lonPerKm,
		}
		dst[j] = randomPoint()
	}

	tr := &Trace{T: cfg.Horizon, J: cfg.Users}
	for t := 0; t < cfg.Horizon; t++ {
		att := make([]int, cfg.Users)
		acc := make([]float64, cfg.Users)
		for j := 0; j < cfg.Users; j++ {
			if t > 0 {
				remain := geo.DistanceKm(pos[j], dst[j])
				// Per-slot speed jitter: ±30%.
				step := speed * (1 + 0.3*rng.NormFloat64())
				if step < 0 {
					step = 0
				}
				if remain <= step {
					pos[j] = dst[j]
					dst[j] = randomPoint()
				} else {
					pos[j] = geo.Interpolate(pos[j], dst[j], step/remain)
				}
			}
			idx, d := geo.Nearest(pos[j], sites)
			att[j] = idx
			acc[j] = d
		}
		tr.Attach = append(tr.Attach, att)
		tr.AccessKm = append(tr.AccessKm, acc)
	}
	return tr, nil
}

func cosDeg(deg float64) float64 {
	return math.Cos(deg * math.Pi / 180)
}
