package mobility

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/geo"
)

func TestRomeStationsAndGraph(t *testing.T) {
	if len(RomeStations) != 15 {
		t.Fatalf("got %d stations, want 15 (paper §V-A)", len(RomeStations))
	}
	adj := RomeMetroAdjacency()
	if len(adj) != 15 {
		t.Fatalf("adjacency size %d, want 15", len(adj))
	}
	// Graph is undirected and connected.
	for u, ns := range adj {
		if len(ns) == 0 {
			t.Errorf("station %d (%s) isolated", u, RomeStations[u].Name)
		}
		for _, v := range ns {
			back := false
			for _, w := range adj[v] {
				if w == u {
					back = true
				}
			}
			if !back {
				t.Errorf("edge %d->%d not symmetric", u, v)
			}
		}
	}
	seen := make([]bool, len(adj))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("station %d (%s) unreachable from Cornelia", i, RomeStations[i].Name)
		}
	}
	// Termini is the A/B interchange: degree 3 (Repubblica, Vittorio, Cavour).
	if len(adj[8]) != 3 {
		t.Errorf("Termini degree %d, want 3", len(adj[8]))
	}
	// All stations within ~10 km of each other (central Rome).
	pts := StationPoints()
	for i := range pts {
		for k := range pts {
			if d := geo.DistanceKm(pts[i], pts[k]); d > 10 {
				t.Errorf("stations %d-%d are %g km apart — not central Rome", i, k, d)
			}
		}
	}
}

func TestRandomWalkBasics(t *testing.T) {
	adj := RomeMetroAdjacency()
	tr, err := RandomWalk(adj, 50, 40, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.T != 40 || tr.J != 50 {
		t.Fatalf("shape %dx%d, want 40x50", tr.T, tr.J)
	}
	for t2 := 0; t2 < tr.T; t2++ {
		for j := 0; j < tr.J; j++ {
			if a := tr.Attach[t2][j]; a < 0 || a >= len(adj) {
				t.Fatalf("attach out of range: %d", a)
			}
			if tr.AccessKm[t2][j] != 0 {
				t.Fatal("random-walk users are at stations; access delay must be 0")
			}
			// Moves only along edges (or stays).
			if t2 > 0 {
				prev, cur := tr.Attach[t2-1][j], tr.Attach[t2][j]
				if prev != cur {
					onEdge := false
					for _, v := range adj[prev] {
						if v == cur {
							onEdge = true
						}
					}
					if !onEdge {
						t.Fatalf("user %d teleported %d -> %d", j, prev, cur)
					}
				}
			}
		}
	}
	// The walk must actually move users around.
	if c := tr.ChurnRate(); c < 0.3 || c > 0.95 {
		t.Errorf("churn rate %g outside the plausible random-walk band", c)
	}
}

func TestRandomWalkRejectsBadConfig(t *testing.T) {
	adj := RomeMetroAdjacency()
	rng := rand.New(rand.NewSource(1))
	for _, args := range [][2]int{{0, 10}, {10, 0}} {
		if _, err := RandomWalk(adj, args[0], args[1], rng); !errors.Is(err, ErrBadTraceConfig) {
			t.Errorf("RandomWalk(%v) error = %v, want ErrBadTraceConfig", args, err)
		}
	}
	if _, err := RandomWalk(nil, 5, 5, rng); !errors.Is(err, ErrBadTraceConfig) {
		t.Error("RandomWalk accepted empty graph")
	}
}

func TestTaxiTraceProperties(t *testing.T) {
	sites := StationPoints()
	tr, err := Taxi(TaxiConfig{Users: 120, Horizon: 60}, sites, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.T != 60 || tr.J != 120 {
		t.Fatalf("shape %dx%d, want 60x120", tr.T, tr.J)
	}
	for t2 := 0; t2 < tr.T; t2++ {
		for j := 0; j < tr.J; j++ {
			if a := tr.Attach[t2][j]; a < 0 || a >= len(sites) {
				t.Fatalf("attach out of range: %d", a)
			}
			if d := tr.AccessKm[t2][j]; d < 0 || d > 25 {
				t.Fatalf("implausible access distance %g km", d)
			}
		}
	}
	// Moderate churn: taxis move continuously, so some switching happens
	// every minute, but far less than the random walk's.
	churn := tr.ChurnRate()
	if churn <= 0.005 || churn > 0.5 {
		t.Errorf("taxi churn %g outside the moderate band (0.005, 0.5]", churn)
	}
	// Every cloud should see some attachment overall (frequency-based
	// capacity planning needs this signal).
	freq := tr.AttachFrequency(len(sites))
	sum := 0.0
	nonzero := 0
	for _, f := range freq {
		sum += f
		if f > 0 {
			nonzero++
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("frequencies sum to %g, want 1", sum)
	}
	if nonzero < len(sites)/2 {
		t.Errorf("only %d of %d clouds ever attached", nonzero, len(sites))
	}
}

func TestTaxiRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sites := StationPoints()
	if _, err := Taxi(TaxiConfig{Users: 0, Horizon: 5}, sites, rng); !errors.Is(err, ErrBadTraceConfig) {
		t.Error("Taxi accepted zero users")
	}
	if _, err := Taxi(TaxiConfig{Users: 5, Horizon: 0}, sites, rng); !errors.Is(err, ErrBadTraceConfig) {
		t.Error("Taxi accepted zero horizon")
	}
	if _, err := Taxi(TaxiConfig{Users: 5, Horizon: 5}, nil, rng); !errors.Is(err, ErrBadTraceConfig) {
		t.Error("Taxi accepted no sites")
	}
}

func TestTraceDeterministicWithSeed(t *testing.T) {
	sites := StationPoints()
	a, err := Taxi(TaxiConfig{Users: 20, Horizon: 30}, sites, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Taxi(TaxiConfig{Users: 20, Horizon: 30}, sites, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range a.Attach {
		for j := range a.Attach[t2] {
			if a.Attach[t2][j] != b.Attach[t2][j] {
				t.Fatal("same seed produced different traces")
			}
		}
	}
}

func TestChurnRateEdgeCases(t *testing.T) {
	tr := &Trace{T: 1, J: 3, Attach: [][]int{{0, 1, 2}}}
	if c := tr.ChurnRate(); c != 0 {
		t.Errorf("single-slot churn = %g, want 0", c)
	}
	tr2 := &Trace{T: 2, J: 2, Attach: [][]int{{0, 1}, {1, 1}}}
	if c := tr2.ChurnRate(); c != 0.5 {
		t.Errorf("churn = %g, want 0.5", c)
	}
}

func TestChurnTraceExactRate(t *testing.T) {
	for _, rate := range []float64{0, 0.05, 0.25, 1} {
		rng := rand.New(rand.NewSource(3))
		tr, err := Churn(ChurnConfig{Users: 40, Horizon: 20, Stations: 6, Rate: rate}, rng)
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		// Every mover lands on a different station, so the measured churn
		// is exactly ⌈rate·J⌉/J.
		want := math.Ceil(rate*40) / 40
		if got := tr.ChurnRate(); got != want {
			t.Errorf("rate %g: measured churn %g, want exactly %g", rate, got, want)
		}
		for tt := range tr.AccessKm {
			for j, d := range tr.AccessKm[tt] {
				if d != 0 {
					t.Fatalf("slot %d user %d: access %g, want 0", tt, j, d)
				}
			}
		}
	}
}

func TestChurnRejectsBadConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	bad := []ChurnConfig{
		{Users: 0, Horizon: 5, Stations: 3, Rate: 0.1},
		{Users: 5, Horizon: 0, Stations: 3, Rate: 0.1},
		{Users: 5, Horizon: 5, Stations: 0, Rate: 0},
		{Users: 5, Horizon: 5, Stations: 1, Rate: 0.1}, // no second station to move to
		{Users: 5, Horizon: 5, Stations: 3, Rate: -0.1},
		{Users: 5, Horizon: 5, Stations: 3, Rate: 1.01},
	}
	for _, cfg := range bad {
		if _, err := Churn(cfg, rng); !errors.Is(err, ErrBadTraceConfig) {
			t.Errorf("Churn(%+v) err = %v, want ErrBadTraceConfig", cfg, err)
		}
	}
}
