package numkernel

import (
	"math"
	"math/rand"
	"testing"
)

// relOrUlpErr returns the relative error of got against want, treating
// differences of a few ulps of want as zero-equivalent via the relative
// measure (want must be finite and nonzero for a meaningful answer).
func relErr(got, want float64) float64 {
	if got == want {
		return 0
	}
	d := math.Abs(got - want)
	if want == 0 {
		return d
	}
	return d / math.Abs(want)
}

// sameSpecial reports whether got matches want where want is a special
// value: NaN matches NaN, otherwise the bits must agree exactly.
func sameSpecial(got, want float64) bool {
	if math.IsNaN(want) {
		return math.IsNaN(got)
	}
	return math.Float64bits(got) == math.Float64bits(want)
}

// logDomain draws positive finite operands that exercise every exponent
// and the cancellation-prone neighborhood of 1.
func logDomain(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		switch i % 4 {
		case 0: // broad log-uniform sweep
			xs[i] = math.Exp(1400*rng.Float64() - 700)
		case 1: // near 1 from both sides
			xs[i] = 1 + (rng.Float64()-0.5)*1e-3
		case 2: // within one ulp-ish of 1
			xs[i] = 1 + (rng.Float64()-0.5)*1e-12
		default: // solver-typical ratios
			xs[i] = 0.1 + 10*rng.Float64()
		}
	}
	return xs
}

func TestLogBatchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := logDomain(rng, 4096)
	got := make([]float64, len(xs))
	LogBatch(got, xs)
	for i, x := range xs {
		want := math.Log(x)
		if e := relErr(got[i], want); e > 1e-12 {
			t.Fatalf("LogBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestLogBatchSpecials(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), -1, -math.MaxFloat64,
		math.Inf(1), math.Inf(-1), math.NaN(),
		math.SmallestNonzeroFloat64,              // smallest subnormal
		math.Float64frombits(0x000fffffffffffff), // largest subnormal
		math.Float64frombits(0x0010000000000000), // smallest normal
		math.MaxFloat64, 1, 2, 0.5, math.Sqrt2, math.Sqrt2 / 2,
		math.Nextafter(1, 0), math.Nextafter(1, 2),
	}
	got := make([]float64, len(xs))
	LogBatch(got, xs)
	for i, x := range xs {
		want := math.Log(x)
		if math.IsInf(want, 0) || math.IsNaN(want) || want == 0 {
			if !sameSpecial(got[i], want) {
				t.Errorf("LogBatch(%g) = %g, want %g", x, got[i], want)
			}
			continue
		}
		if e := relErr(got[i], want); e > 1e-12 {
			t.Errorf("LogBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
	// log(1) must be exactly zero: the entropy fast path relies on
	// ratio-1 elements contributing exactly nothing.
	one := []float64{1}
	LogBatch(one, one)
	if one[0] != 0 {
		t.Errorf("LogBatch(1) = %g, want exactly 0", one[0])
	}
}

func TestLog1pBatchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 4096)
	for i := range xs {
		switch i % 4 {
		case 0:
			xs[i] = math.Exp(40*rng.Float64()-20) - 1 // spans (-1, e^20)
		case 1:
			xs[i] = (rng.Float64() - 0.5) * 1e-8 // tiny, sign-mixed
		case 2:
			xs[i] = -1 + rng.Float64()*1e-3 // near the pole
		default:
			xs[i] = rng.Float64() * 1e300 // huge
		}
	}
	got := make([]float64, len(xs))
	Log1pBatch(got, xs)
	for i, x := range xs {
		want := math.Log1p(x)
		if e := relErr(got[i], want); e > 1e-12 {
			t.Fatalf("Log1pBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestLog1pBatchSpecials(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), -1, -1.5, math.Inf(1), math.Inf(-1),
		math.NaN(), math.SmallestNonzeroFloat64, -math.SmallestNonzeroFloat64,
		math.MaxFloat64, 1e-300, -1e-300,
	}
	got := make([]float64, len(xs))
	Log1pBatch(got, xs)
	for i, x := range xs {
		want := math.Log1p(x)
		if math.IsInf(want, 0) || math.IsNaN(want) || want == 0 || math.Abs(want) < 1e-290 {
			// Specials and sub-tiny results must match the stdlib exactly
			// (for |x| below any rounding, log1p(x) = x).
			if !sameSpecial(got[i], want) {
				t.Errorf("Log1pBatch(%g) = %g, want %g", x, got[i], want)
			}
			continue
		}
		if e := relErr(got[i], want); e > 1e-12 {
			t.Errorf("Log1pBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestExpBatchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 4096)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = (rng.Float64() - 0.5) * 1400 // full finite-result range
		case 1:
			xs[i] = (rng.Float64() - 0.5) * 2 // near zero
		default:
			xs[i] = (rng.Float64() - 0.5) * 60 // softplus-typical
		}
	}
	got := make([]float64, len(xs))
	ExpBatch(got, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if e := relErr(got[i], want); e > 1e-12 {
			t.Fatalf("ExpBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestExpBatchSpecials(t *testing.T) {
	xs := []float64{
		0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.NaN(),
		710, -746, 709.782712893383973096, -745.133219101941108420,
		1000, -1000, math.MaxFloat64, -math.MaxFloat64,
		math.SmallestNonzeroFloat64,
	}
	got := make([]float64, len(xs))
	ExpBatch(got, xs)
	for i, x := range xs {
		want := math.Exp(x)
		if math.IsInf(want, 0) || math.IsNaN(want) || want == 0 || want == 1 {
			if !sameSpecial(got[i], want) {
				t.Errorf("ExpBatch(%g) = %g, want %g", x, got[i], want)
			}
			continue
		}
		if e := relErr(got[i], want); e > 1e-12 {
			t.Errorf("ExpBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
	// Subnormal results (deep underflow still above the flush point).
	deep := []float64{-709, -740, -744}
	got = make([]float64, len(deep))
	ExpBatch(got, deep)
	for i, x := range deep {
		want := math.Exp(x)
		if e := relErr(got[i], want); e > 1e-9 {
			// Subnormal results lose precision to the format itself; 1e-9
			// still proves the two-stage scaling is wired correctly.
			t.Errorf("ExpBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestLogBatch32Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float32, 4096)
	for i := range xs {
		switch i % 3 {
		case 0:
			xs[i] = float32(math.Exp(170*rng.Float64() - 85))
		case 1:
			xs[i] = 1 + (rng.Float32()-0.5)*1e-2
		default:
			xs[i] = 0.1 + 10*rng.Float32()
		}
	}
	got := make([]float32, len(xs))
	LogBatch32(got, xs)
	for i, x := range xs {
		want := math.Log(float64(x))
		if e := relErr(float64(got[i]), want); e > 1e-6 {
			t.Fatalf("LogBatch32(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}

func TestLogBatch32Specials(t *testing.T) {
	xs := []float32{
		0, float32(math.Copysign(0, -1)), -1,
		float32(math.Inf(1)), float32(math.Inf(-1)), float32(math.NaN()),
		math.SmallestNonzeroFloat32, math.MaxFloat32, 1,
	}
	got := make([]float32, len(xs))
	LogBatch32(got, xs)
	for i, x := range xs {
		want := math.Log(float64(x))
		switch {
		case math.IsNaN(want):
			if !math.IsNaN(float64(got[i])) {
				t.Errorf("LogBatch32(%g) = %g, want NaN", x, got[i])
			}
		case math.IsInf(want, 0) || want == 0:
			if float64(got[i]) != want {
				t.Errorf("LogBatch32(%g) = %g, want %g", x, got[i], want)
			}
		default:
			if e := relErr(float64(got[i]), want); e > 1e-6 {
				t.Errorf("LogBatch32(%g) = %g, want %g (rel %g)", x, got[i], want, e)
			}
		}
	}
}

// TestBatchAliasing pins the documented in-place contract: dst == src
// must produce the same results as disjoint buffers.
func TestBatchAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := logDomain(rng, 257)
	want := make([]float64, len(xs))
	LogBatch(want, xs)
	inPlace := append([]float64(nil), xs...)
	LogBatch(inPlace, inPlace)
	for i := range want {
		if math.Float64bits(inPlace[i]) != math.Float64bits(want[i]) {
			t.Fatalf("LogBatch aliasing mismatch at %d: %g vs %g", i, inPlace[i], want[i])
		}
	}

	es := make([]float64, len(xs))
	for i := range es {
		es[i] = (rng.Float64() - 0.5) * 100
	}
	wantE := make([]float64, len(es))
	ExpBatch(wantE, es)
	inPlaceE := append([]float64(nil), es...)
	ExpBatch(inPlaceE, inPlaceE)
	for i := range wantE {
		if math.Float64bits(inPlaceE[i]) != math.Float64bits(wantE[i]) {
			t.Fatalf("ExpBatch aliasing mismatch at %d", i)
		}
	}
}

func TestBatchLengthMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"LogBatch":   func() { LogBatch(make([]float64, 2), make([]float64, 3)) },
		"Log1pBatch": func() { Log1pBatch(make([]float64, 2), make([]float64, 3)) },
		"ExpBatch":   func() { ExpBatch(make([]float64, 2), make([]float64, 3)) },
		"LogBatch32": func() { LogBatch32(make([]float32, 2), make([]float32, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: length mismatch did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestLogBatchExhaustiveExponents walks one operand per binade (plus the
// subnormal range), so the branch-free exponent extraction is checked at
// every power-of-two boundary.
func TestLogBatchExhaustiveExponents(t *testing.T) {
	var xs []float64
	for e := -1074; e <= 1023; e++ {
		x := math.Ldexp(1, e)
		xs = append(xs, x, math.Nextafter(x, math.Inf(1)), math.Nextafter(x, 0))
	}
	got := make([]float64, len(xs))
	LogBatch(got, xs)
	for i, x := range xs {
		if x <= 0 {
			continue
		}
		want := math.Log(x)
		if want == 0 {
			if got[i] != 0 {
				t.Fatalf("LogBatch(%g) = %g, want 0", x, got[i])
			}
			continue
		}
		if e := relErr(got[i], want); e > 1e-12 {
			t.Fatalf("LogBatch(%g) = %g, want %g (rel %g)", x, got[i], want, e)
		}
	}
}
