// Package numkernel provides the batch ("vectorized") fast-math kernels
// behind core.Options.FastMath: slice-at-a-time natural log, log1p, and
// exp with documented accuracy, plus a float32 storage tier for
// bandwidth-bound scratch vectors.
//
// Why batch kernels beat per-element math.Log in the solver hot loop:
// the entropy passes of P2's objective evaluate one logarithm per packed
// variable per FISTA evaluation, and at production sizes (J ≥ 5000) the
// per-call overhead of math.Log — the function call itself plus its
// special-case branch ladder — rivals the arithmetic. The kernels here
// inline one branch-free range reduction and polynomial per loop
// iteration, keeping the pipeline full of independent element work, and
// fall back to the stdlib only on the rare operands (non-positive,
// subnormal, ±Inf, NaN) that need the ladder.
//
// # Accuracy contract
//
// LogBatch, Log1pBatch, and ExpBatch are accurate to ≤ 1e-12 relative
// error on every finite operand in their natural domains (measured worst
// cases are a few ulp, ~2e-16; the documented budget leaves two orders
// of headroom and is what callers may rely on). Special values follow
// the stdlib exactly — the kernels route subnormal, zero, negative,
// infinite, and NaN operands to math.Log / math.Log1p / math.Exp, so
// LogBatch(0) = -Inf, LogBatch(x<0) = NaN, ExpBatch(+Inf) = +Inf, and so
// on, bit for bit. The float32 tier (LogBatch32) is accurate to ≤ 1e-6
// relative in float32, again with stdlib-identical special values.
//
// FuzzFastMathVsStdlib (fuzz_test.go) differentially checks every kernel
// against its stdlib counterpart over the full bit space, and the seed
// corpus (cmd/corpusgen) pins the boundary operands: powers of two,
// values adjacent to 1, subnormals, and the exp over/underflow edges.
package numkernel

import "math"

const (
	ln2Hi = 6.93147180369123816490e-01
	ln2Lo = 1.90821492927058770002e-10
)

// sqrt2Over2Bits is the bit pattern of √2/2. Subtracting it from a
// positive normal float's bits and shifting yields the exponent k of the
// decomposition x = 2^k · m with m ∈ [√2/2, √2) — a branch-free
// mantissa centering that avoids the cancellation a [1, 2) reduction
// suffers just below powers of two (there, |log x| ≥ ln√2 whenever
// k ≠ 0, so the k·ln2 term never cancels against log m).
const sqrt2Over2Bits = 0x3fe6a09e667f3bcd

// The log kernel is table-based: m's top bits select one of 129 buckets
// of width 1/128 covering [√2/2, √2), each storing a center c as (1/c,
// log c); then log m = log c + log1p(r) with r = m·(1/c) − 1, |r| ≤
// 1/128, evaluated by a degree-6 Taylor polynomial (truncation ≤ r⁷/7,
// relative ~3e-14 at the widest r). Unlike the FDLIBM s-transform the
// reduction needs no division, which is what the per-element throughput
// of the batch loop is bound by. The two buckets adjacent to m = 1 pin
// c = 1 exactly, so near 1 the result is log1p(m−1) with r exact and no
// log c cancellation — relative accuracy holds all the way into the
// last ulp of 1 (and log(1) = 0 exactly).
//
// logTabBase is the bucket index of m = √2/2: index bits are the
// exponent's lowest bit and the top 7 mantissa bits, so [√2/2, √2)
// spans indices 53..181.
const logTabBase = 53

var logTab = buildLogTab()

func buildLogTab() [129][2]float64 {
	var tab [129][2]float64
	for j := range tab {
		i := j + logTabBase
		var c float64
		switch {
		case i == 127 || i == 128:
			c = 1 // exactness around m = 1 (see above)
		case i < 128:
			c = 0.5 + float64(2*i+1)/512
		default:
			c = 1 + float64(2*(i-128)+1)/256
		}
		tab[j][0] = 1 / c
		tab[j][1] = math.Log(c)
	}
	return tab
}

// logSlow reports whether x needs the stdlib's special-case ladder:
// non-positive (including -0), subnormal, ±Inf, or NaN. Exponent 0 is
// zero/subnormal; exponent 0x7ff is Inf/NaN; the sign bit covers every
// negative and -0.
func logSlow(bits uint64) bool {
	exp := (bits >> 52) & 0x7ff
	return exp == 0 || exp == 0x7ff || bits>>63 != 0
}

// logReduced evaluates log on a positive normal float given its bits,
// using the branch-free √2-centered reduction and the bucket table.
func logReduced(bits uint64) float64 {
	e := int64(bits-sqrt2Over2Bits) >> 52
	mbits := bits - uint64(e)<<52
	m := math.Float64frombits(mbits)
	ent := &logTab[(mbits>>45)&0xff-logTabBase]
	r := m*ent[0] - 1
	p := r * (1 + r*(-0.5+r*(1.0/3+r*(-0.25+r*(0.2+r*(-1.0/6))))))
	k := float64(e)
	return k*ln2Hi + ((p + ent[1]) + k*ln2Lo)
}

// LogBatch writes ln(src[i]) into dst[i] for every element. dst and src
// must have equal length; dst may alias src (the kernel is elementwise).
// Accuracy and special-value behavior are documented in the package
// comment.
func LogBatch(dst, src []float64) {
	if len(dst) != len(src) {
		panic("numkernel: LogBatch length mismatch")
	}
	for i, x := range src {
		bits := math.Float64bits(x)
		if logSlow(bits) {
			dst[i] = math.Log(x)
			continue
		}
		dst[i] = logReduced(bits)
	}
}

// Log1pBatch writes ln(1+src[i]) into dst[i] for every element, keeping
// full relative accuracy for src[i] near zero. dst and src must have
// equal length; dst may alias src.
//
// The kernel uses the classic exact-correction identity: with u = 1+x
// rounded, ln(1+x) = ln(u) · x/(u-1), which repairs the rounding of the
// addition to ~1 ulp composite error (u-1 is exact by Sterbenz whenever
// it matters). u == 1 means x is below half an ulp of 1 and ln(1+x) = x
// to full precision.
func Log1pBatch(dst, src []float64) {
	if len(dst) != len(src) {
		panic("numkernel: Log1pBatch length mismatch")
	}
	for i, x := range src {
		u := 1 + x
		ubits := math.Float64bits(u)
		if logSlow(ubits) || x != x || x > math.MaxFloat64/2 {
			// u ≤ 0 (x ≤ -1), x NaN, or u overflowed: stdlib semantics.
			dst[i] = math.Log1p(x)
			continue
		}
		if u == 1 {
			dst[i] = x
			continue
		}
		dst[i] = logReduced(ubits) * (x / (u - 1))
	}
}

// Coefficients of the FDLIBM exp kernel: on the reduced range
// |r| ≤ ½ln2, exp(r) = 1 + r + r²·P(r²)-style rational form accurate to
// 2^-59 (see math.Exp).
const (
	expP1 = 1.66666666666666657415e-01
	expP2 = -2.77777777770155933842e-03
	expP3 = 6.61375632143793436117e-05
	expP4 = -1.65339022054652515390e-06
	expP5 = 4.13813679705723846039e-08

	log2E = 1.44269504088896338700e+00

	// Beyond these the result over/underflows through the stdlib path.
	expOverflow  = 709.782712893383973096
	expUnderflow = -745.133219101941108420
)

// ExpBatch writes e^src[i] into dst[i] for every element. dst and src
// must have equal length; dst may alias src. Overflow saturates to +Inf
// and underflow to 0 exactly as math.Exp; NaN propagates.
func ExpBatch(dst, src []float64) {
	if len(dst) != len(src) {
		panic("numkernel: ExpBatch length mismatch")
	}
	for i, x := range src {
		if !(x > expUnderflow && x < expOverflow) {
			// Over/underflow, ±Inf, NaN, and the exact boundary operands:
			// stdlib semantics.
			dst[i] = math.Exp(x)
			continue
		}
		// Argument reduction: x = k·ln2 + r with |r| ≤ ½ln2. The two-term
		// ln2 split keeps r accurate to the last bit for |k| up to 2^20.
		k := math.Floor(x*log2E + 0.5)
		hi := x - k*ln2Hi
		lo := k * ln2Lo
		r := hi - lo
		t := r * r
		c := r - t*(expP1+t*(expP2+t*(expP3+t*(expP4+t*expP5))))
		y := 1 - ((lo - (r*c)/(2-c)) - hi)
		// Scale by 2^k. |k| ≤ 1075 here; split the exponent injection in
		// two so k < -1022 (subnormal results) stays representable.
		ki := int64(k)
		if ki >= -1021 {
			dst[i] = y * math.Float64frombits(uint64(1023+ki)<<52)
		} else {
			dst[i] = y * math.Float64frombits(uint64(1023+ki+54)<<52) * 0x1p-54
		}
	}
}

// Float32 tier ----------------------------------------------------------

// LogBatch32 is the float32 storage tier of LogBatch: float32 in,
// float32 out, with the arithmetic carried in float64 registers through
// the same table kernel (widening float32→float64 is exact), so the
// result is accurate to ≤ 1e-6 relative in float32. It exists for
// J-wide scratch vectors whose cost is memory bandwidth, not
// arithmetic — float32 storage halves the bytes moved per evaluation.
// dst and src must have equal length; dst may alias src. Subnormal,
// zero, negative, infinite, and NaN elements follow math.Log through a
// float32 round.
func LogBatch32(dst, src []float32) {
	if len(dst) != len(src) {
		panic("numkernel: LogBatch32 length mismatch")
	}
	for i, x := range src {
		b32 := math.Float32bits(x)
		exp := (b32 >> 23) & 0xff
		if exp == 0 || exp == 0xff || b32>>31 != 0 {
			dst[i] = float32(math.Log(float64(x)))
			continue
		}
		dst[i] = float32(logReduced(math.Float64bits(float64(x))))
	}
}
