package core

import (
	"encoding/json"
	"math"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
)

// stateTestInstance is a small generated instance with genuine mobility
// and capacity pressure across every solving path.
func stateTestInstance(seed int64) *model.Instance {
	return conform.GenInstance(conform.GenConfig{Seed: seed, I: 4, J: 6, T: 5})
}

// roundtripState JSON-encodes and decodes an exported state, modelling
// the snapshot wire trip.
func roundtripState(t *testing.T, st *WarmState) *WarmState {
	t.Helper()
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("encoding state: %v", err)
	}
	var out WarmState
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("decoding state: %v", err)
	}
	return &out
}

// TestRestoreMatchesUninterrupted holds the restored continuation to the
// uninterrupted run on every solving path: byte-identical decisions on
// the single-program paths (the warm state is the entire cross-slot
// input of Step), and slot-coupled P2 cost within the path's certified
// tolerance of the dense reference on the paths that rebuild internal
// warm state after a restore — the same coupled measure the
// candidate/shard/incremental equivalence tests use, with the same
// ultra-tight budgets.
func TestRestoreMatchesUninterrupted(t *testing.T) {
	ultra := ultraTightOpts()
	// tol == 0 means the two runs must be bitwise identical. The sharded
	// path gets a 1e-7 bound: its coordination loop terminates on consensus
	// residuals, and the residual-to-objective mapping is warm-start
	// dependent, so two solves with different (but both certified) warm
	// histories agree with the dense optimum only to ~1e-8 scale, not
	// strictly within it. The serve-layer chaos test pins 1e-8 on the
	// exact default path.
	// cuts limits which snapshot points a case exercises (nil = every
	// cut 0..T). The sharded case is restricted to a mid-run cut: its
	// ultra-tight coordination budget costs seconds per slot, and the
	// other cuts exercise no shard-specific restore machinery beyond what
	// the mid-run cut already covers.
	cases := []struct {
		name string
		opts Options
		tol  float64
		cuts []int
	}{
		{"default", Options{}, 0, nil},
		{"dense-rows", Options{DenseRows: true}, 0, nil},
		{"candidates", Options{Candidates: 2, Solver: ultra}, 1e-8, nil},
		{"incremental", Options{Incremental: true, IncrementalTol: 1e-9, Solver: ultra}, 1e-8, nil},
		{"shards", shardTestOpts(2), 1e-7, []int{2}},
		{"fastmath", Options{FastMath: true}, 0, nil},
	}
	// Seed 10 keeps every inexact path inside the certified 1e-8 coupled
	// ball with margin; a few generator seeds land the shard coordination
	// right at the tolerance boundary and would make this test flaky.
	in := stateTestInstance(10)
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// The inexact paths rebuild internal warm state after a restore,
			// so the uninterrupted and restored continuations are independent
			// solves: each lands within the certified 1e-8 of the per-slot
			// optimum, and comparing them to each other would honestly bound
			// at 2e-8. Hold both to the established coupledPathGaps guarantee
			// instead — per-slot P2 cost within 1e-8 of the dense ultra-tight
			// reference, with every run re-coupled to the reference decision
			// each slot so the trajectory is the one the guarantee is
			// certified on. Full warm-state fidelity (the carried prev
			// included) is proven bitwise by the exact paths.
			var xd [][]float64
			if tc.tol > 0 {
				d := NewOnlineApprox(in, Options{Solver: ultra})
				for s := 0; s < in.T; s++ {
					x, err := d.Step(s)
					if err != nil {
						t.Fatalf("dense reference slot %d: %v", s, err)
					}
					xd = append(xd, append([]float64(nil), x.X...))
				}
			}
			cuts := tc.cuts
			if cuts == nil {
				for c := 0; c <= in.T; c++ {
					cuts = append(cuts, c)
				}
			}
			for _, cut := range cuts {
				a := NewOnlineApprox(in, tc.opts)
				for s := 0; s < cut; s++ {
					if _, err := a.Step(s); err != nil {
						t.Fatalf("cut %d: pre-cut slot %d: %v", cut, s, err)
					}
					if tc.tol > 0 {
						copy(a.prevBuf, xd[s])
					}
				}
				b := NewOnlineApprox(in, tc.opts)
				if err := b.RestoreState(roundtripState(t, a.ExportState())); err != nil {
					t.Fatalf("cut %d: restore: %v", cut, err)
				}
				if tc.tol > 0 && cut > 0 {
					copy(b.prevBuf, xd[cut-1])
				}
				for s := cut; s < in.T; s++ {
					prevX := append([]float64(nil), a.prev.X...)
					xa, err := a.Step(s)
					if err != nil {
						t.Fatalf("cut %d: uninterrupted slot %d: %v", cut, s, err)
					}
					xb, err := b.Step(s)
					if err != nil {
						t.Fatalf("cut %d: restored slot %d: %v", cut, s, err)
					}
					if tc.tol == 0 {
						for k := range xa.X {
							if xa.X[k] != xb.X[k] {
								t.Fatalf("cut %d: slot %d entry %d differs: %g != %g",
									cut, s, k, xa.X[k], xb.X[k])
							}
						}
						continue
					}
					obj := newP2Objective(in, s,
						model.Alloc{I: in.I, J: in.J, X: prevX},
						a.opts.Epsilon1, a.opts.Epsilon2)
					fd := obj.Eval(xd[s], nil)
					if gap := math.Abs(obj.Eval(xa.X, nil)-fd) / (1 + math.Abs(fd)); gap > tc.tol {
						t.Fatalf("cut %d: slot %d uninterrupted P2 gap %g > %g", cut, s, gap, tc.tol)
					}
					if gap := math.Abs(obj.Eval(xb.X, nil)-fd) / (1 + math.Abs(fd)); gap > tc.tol {
						t.Fatalf("cut %d: slot %d restored P2 gap %g > %g", cut, s, gap, tc.tol)
					}
					// Re-couple so later slots measure per-slot agreement, not
					// accumulated drift.
					copy(a.prevBuf, xd[s])
					copy(b.prevBuf, xd[s])
				}
				if sched := b.Schedule(); len(sched) != in.T {
					t.Fatalf("cut %d: restored run committed %d slots, want %d", cut, len(sched), in.T)
				}
			}
		})
	}
}

// TestRestorePreservesDualRecord requires the certificate machinery to
// survive a mid-run snapshot: the restored run's conformance report must
// be clean, like the uninterrupted run's.
func TestRestorePreservesDualRecord(t *testing.T) {
	in := stateTestInstance(13)
	cut := in.T / 2

	first := NewOnlineApprox(in, Options{})
	for s := 0; s < cut; s++ {
		if _, err := first.Step(s); err != nil {
			t.Fatal(err)
		}
	}
	second := NewOnlineApprox(in, Options{})
	if err := second.RestoreState(first.ExportState()); err != nil {
		t.Fatal(err)
	}
	sched, err := second.Run()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := second.Certificate()
	if err != nil {
		t.Fatalf("certificate after restore: %v", err)
	}
	diag := &conform.Diagnostics{
		HasCertificate: true,
		LowerBoundP0:   cert.LowerBoundP0(),
		LowerBoundP1:   cert.LowerBoundP1(),
		DualResidual:   cert.Feasibility.Max(),
		NuCharge:       cert.NuCharge,
		RatioBound:     second.CompetitiveRatioBound(),
	}
	if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
		t.Fatalf("restored run fails conformance: %v", rep.Err())
	}
}

// TestExportStateIsDeepCopy mutates the algorithm after an export and
// requires the snapshot to stay frozen.
func TestExportStateIsDeepCopy(t *testing.T) {
	in := stateTestInstance(3)
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Step(0); err != nil {
		t.Fatal(err)
	}
	st := alg.ExportState()
	want := append([]float64(nil), st.Schedule[0]...)
	if _, err := alg.Step(1); err != nil {
		t.Fatal(err)
	}
	for k := range want {
		if st.Schedule[0][k] != want[k] {
			t.Fatalf("export aliased live state at entry %d", k)
		}
	}
}

// TestRestoreStateValidation exercises the rejection paths.
func TestRestoreStateValidation(t *testing.T) {
	in := stateTestInstance(5)
	donor := NewOnlineApprox(in, Options{})
	if _, err := donor.Step(0); err != nil {
		t.Fatal(err)
	}
	good := donor.ExportState()

	mutate := func(f func(*WarmState)) *WarmState {
		raw, _ := json.Marshal(good)
		var st WarmState
		_ = json.Unmarshal(raw, &st)
		f(&st)
		return &st
	}
	cases := map[string]*WarmState{
		"slot-out-of-range":  mutate(func(s *WarmState) { s.Slot = in.T + 1 }),
		"slot-mismatch":      mutate(func(s *WarmState) { s.Slot = 2 }),
		"short-row":          mutate(func(s *WarmState) { s.Schedule[0] = s.Schedule[0][:3] }),
		"negative-flow":      mutate(func(s *WarmState) { s.Schedule[0][0] = -1 }),
		"nan-flow":           mutate(func(s *WarmState) { s.Schedule[0][0] = math.NaN() }),
		"bad-duals":          mutate(func(s *WarmState) { s.Duals = s.Duals[:1] }),
		"inf-dual":           mutate(func(s *WarmState) { s.Duals[0] = math.Inf(1) }),
		"missing-thetas":     mutate(func(s *WarmState) { s.Thetas = nil }),
		"short-rho-row":      mutate(func(s *WarmState) { s.Rhos[0] = s.Rhos[0][:1] }),
		"nonfinite-nu-entry": mutate(func(s *WarmState) { s.Nus[0][0] = math.Inf(-1) }),
	}
	for name, st := range cases {
		if err := NewOnlineApprox(in, Options{}).RestoreState(st); err == nil {
			t.Errorf("%s: restore accepted invalid state", name)
		}
	}

	fresh := NewOnlineApprox(in, Options{})
	if err := fresh.RestoreState(good); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
	if err := fresh.RestoreState(good); err == nil {
		t.Error("second restore into a used algorithm accepted")
	}
	used := NewOnlineApprox(in, Options{})
	if _, err := used.Step(0); err != nil {
		t.Fatal(err)
	}
	if err := used.RestoreState(good); err == nil {
		t.Error("restore into a stepped algorithm accepted")
	}
}
