package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/telemetry"
)

// TestFastMathMatchesExactSmallInstances is the cost-agreement property
// of the batch-kernel tier: on random small instances solved ultra-tight,
// the FastMath schedule must match the exact schedule's P2 objective to
// 1e-8 relative, slot-coupled, on both the dense and the candidate-set
// paths. The bound is the same one the candidate-set certification work
// carries: it measures kernel error plus the difference of two solver
// convergence errors, and ≤1e-12-per-operation kernels leave the solver
// term dominant.
func TestFastMathMatchesExactSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 8; trial++ {
		in := smallRandomInstance(rng)
		ref := Options{Solver: ultraTightOpts()}
		fast := Options{Solver: ultraTightOpts(), FastMath: true}
		for s, gap := range coupledPathGaps(t, in, ref, fast) {
			if gap > 1e-8 {
				t.Errorf("trial %d slot %d: dense fastmath gap %.3e > 1e-8", trial, s, gap)
			}
		}
		refC := Options{Solver: ultraTightOpts(), Candidates: 2}
		fastC := Options{Solver: ultraTightOpts(), Candidates: 2, FastMath: true}
		for s, gap := range coupledPathGaps(t, in, refC, fastC) {
			if gap > 1e-8 {
				t.Errorf("trial %d slot %d: candidate fastmath gap %.3e > 1e-8", trial, s, gap)
			}
		}
	}
}

// TestFastMathF32MatchesExact holds the float32 storage tier to 1e-5
// slot-coupled cost agreement: per-operation log error grows to the
// float32 budget (≤1e-6), and the convex objective turns first-order
// gradient noise into a second-order cost perturbation, so the schedule
// cost stays well inside 1e-5.
func TestFastMathF32MatchesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 6; trial++ {
		in := smallRandomInstance(rng)
		ref := Options{Solver: ultraTightOpts()}
		fast := Options{Solver: ultraTightOpts(), FastMathF32: true}
		for s, gap := range coupledPathGaps(t, in, ref, fast) {
			if gap > 1e-5 {
				t.Errorf("trial %d slot %d: dense f32 gap %.3e > 1e-5", trial, s, gap)
			}
		}
		refC := Options{Solver: ultraTightOpts(), Candidates: 2}
		fastC := Options{Solver: ultraTightOpts(), Candidates: 2, FastMathF32: true}
		for s, gap := range coupledPathGaps(t, in, refC, fastC) {
			if gap > 1e-5 {
				t.Errorf("trial %d slot %d: candidate f32 gap %.3e > 1e-5", trial, s, gap)
			}
		}
	}
}

// TestFastMathConformance runs the full paper-conformance oracle on a
// FastMath schedule: Theorem-1 feasibility, the Lemma-1 identity, dual
// certificate validity, weak duality, and the Theorem-2 ratio must all
// hold on the fast path exactly as they do on the exact path.
func TestFastMathConformance(t *testing.T) {
	for _, opts := range []Options{
		{Solver: tightOpts(), FastMath: true},
		{Solver: tightOpts(), Candidates: 2, FastMath: true},
		{Solver: tightOpts(), FastMathF32: true},
	} {
		in := conform.GenInstance(conform.GenConfig{Seed: 11, I: 4, J: 6, T: 4})
		alg := NewOnlineApprox(in, opts)
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		cert, err := alg.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		diag := &conform.Diagnostics{
			HasCertificate: true,
			LowerBoundP0:   cert.LowerBoundP0(),
			LowerBoundP1:   cert.LowerBoundP1(),
			DualResidual:   cert.Feasibility.Max(),
			NuCharge:       cert.NuCharge,
			RatioBound:     alg.CompetitiveRatioBound(),
		}
		if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
			t.Fatalf("candidates=%d f32=%v: %v", opts.Candidates, opts.FastMathF32, rep.Err())
		}
	}
}

// TestFastMathDeterministicAcrossWorkers pins the fast tier's own
// reproducibility: FastMath changes results relative to the exact path,
// but for a fixed configuration the schedule must stay byte-identical
// for any worker count (per-row partials still reduce in index order).
func TestFastMathDeterministicAcrossWorkers(t *testing.T) {
	defer func(g int) { evalParGrain = g }(evalParGrain)
	evalParGrain = 1
	in := conform.GenInstance(conform.GenConfig{Seed: 5, I: 4, J: 5, T: 3})
	run := func(workers int) []float64 {
		opts := Options{Solver: tightOpts(), FastMath: true}
		opts.Solver.Workers = workers
		sched, err := NewOnlineApprox(in, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		var flat []float64
		for _, a := range sched {
			flat = append(flat, a.X...)
		}
		return flat
	}
	base := run(1)
	for _, w := range []int{2, 4} {
		got := run(w)
		for k := range base {
			if math.Float64bits(got[k]) != math.Float64bits(base[k]) {
				t.Fatalf("workers=%d: decision differs at %d: %g vs %g", w, k, got[k], base[k])
			}
		}
	}
}

// TestLogCacheCounters checks the observability satellite: the exact
// path must report memo-cache activity through StepDiag and the
// telemetry bundle, and the fast path — which has no cache — must report
// zero on the same instance.
func TestLogCacheCounters(t *testing.T) {
	in := conform.GenInstance(conform.GenConfig{Seed: 3, I: 3, J: 4, T: 3})

	reg := telemetry.NewRegistry()
	m := telemetry.NewSolverMetrics(reg)
	exact := NewOnlineApprox(in, Options{Solver: tightOpts(), Metrics: m})
	if _, err := exact.Run(); err != nil {
		t.Fatal(err)
	}
	d := exact.LastStepDiag()
	if d.LogCacheMisses == 0 {
		t.Error("exact path: LogCacheMisses = 0, want > 0")
	}
	if d.LogCacheHits == 0 {
		t.Error("exact path: LogCacheHits = 0, want > 0 (converged evals repeat arguments)")
	}
	if m.LogMisses.Value() == 0 || m.LogHits.Value() == 0 {
		t.Errorf("telemetry counters hits=%v misses=%v, want both > 0",
			m.LogHits.Value(), m.LogMisses.Value())
	}

	for _, cand := range []int{0, 2} {
		fast := NewOnlineApprox(in, Options{Solver: tightOpts(), FastMath: true, Candidates: cand})
		if _, err := fast.Run(); err != nil {
			t.Fatal(err)
		}
		if d := fast.LastStepDiag(); d.LogCacheHits != 0 || d.LogCacheMisses != 0 {
			t.Errorf("candidates=%d fast path: cache counters %d/%d, want 0/0",
				cand, d.LogCacheHits, d.LogCacheMisses)
		}
	}

	// The candidate path's counters flow through the packed objective.
	sparse := NewOnlineApprox(in, Options{Solver: tightOpts(), Candidates: 2})
	if _, err := sparse.Run(); err != nil {
		t.Fatal(err)
	}
	if d := sparse.LastStepDiag(); d.LogCacheMisses == 0 {
		t.Error("sparse exact path: LogCacheMisses = 0, want > 0")
	}
}

// TestFastMathParallelMatchesSerial runs the dense fast path with the
// parallel grain forced down, so par.Ranges evaluation covers the
// batch-kernel rows too.
func TestFastMathParallelMatchesSerial(t *testing.T) {
	defer func(g int) { evalParGrain = g }(evalParGrain)
	in := conform.GenInstance(conform.GenConfig{Seed: 9, I: 5, J: 6, T: 3})

	evalParGrain = 4096
	opts := Options{Solver: tightOpts(), FastMath: true}
	serial, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatal(err)
	}

	evalParGrain = 1
	opts.Solver.Workers = 4
	par, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatal(err)
	}
	for s := range serial {
		for k := range serial[s].X {
			if math.Float64bits(serial[s].X[k]) != math.Float64bits(par[s].X[k]) {
				t.Fatalf("slot %d var %d: parallel fast path diverged", s, k)
			}
		}
	}
}
