package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

// TestP2ObjectiveGradient checks the analytic gradient of the P2
// objective against central finite differences at random interior points.
func TestP2ObjectiveGradient(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	prev := model.NewAlloc(in.I, in.J)
	for k := range prev.X {
		prev.X[k] = rng.Float64()
	}
	obj := newP2Objective(in, 1, prev, 0.7, 1.3)

	n := in.I * in.J
	x := make([]float64, n)
	for k := range x {
		x[k] = 0.05 + rng.Float64()
	}
	grad := make([]float64, n)
	obj.Eval(x, grad)

	const h = 1e-6
	for trial := 0; trial < 25; trial++ {
		k := rng.Intn(n)
		orig := x[k]
		x[k] = orig + h
		fp := obj.Eval(x, nil)
		x[k] = orig - h
		fm := obj.Eval(x, nil)
		x[k] = orig
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-grad[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("grad[%d] = %g, finite difference %g", k, grad[k], fd)
		}
	}
}

// TestP2ObjectiveMinimumAtPrevWithoutStaticCost verifies that with zero
// static coefficients the regularizers alone are minimized exactly at the
// previous allocation (the no-change point).
func TestP2ObjectiveMinimumAtPrevWithoutStaticCost(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 2, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	prev := model.NewAlloc(in.I, in.J)
	rng := rand.New(rand.NewSource(24))
	for k := range prev.X {
		prev.X[k] = 0.2 + rng.Float64()
	}
	obj := newP2Objective(in, 0, prev, 1, 1)
	for k := range obj.coef {
		obj.coef[k] = 0
	}
	fPrev := obj.Eval(prev.X, nil)
	for trial := 0; trial < 50; trial++ {
		x := append([]float64(nil), prev.X...)
		for k := range x {
			x[k] = math.Max(0, x[k]+0.3*rng.NormFloat64())
		}
		if f := obj.Eval(x, nil); f < fPrev-1e-10 {
			t.Fatalf("objective %g below value at prev %g — regularizer not centered", f, fPrev)
		}
	}
}

// TestRepairTopsUpDeficits exercises both repair branches.
func TestRepairTopsUpDeficits(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 2, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	x := model.NewAlloc(in.I, in.J)
	// User 0: slightly under-served; user 1: all zeros; user 2: negative
	// round-off plus full service.
	x.Set(0, 0, in.Workload[0]*0.999)
	x.Set(0, 2, in.Workload[2])
	x.Set(1, 2, -1e-9)
	repair(in, x, make([]float64, in.J))
	served := x.UserTotals()
	for j := 0; j < in.J; j++ {
		if served[j] < in.Workload[j]-1e-9 {
			t.Errorf("user %d still under-served: %g < %g", j, served[j], in.Workload[j])
		}
	}
	for k, v := range x.X {
		if v < 0 {
			t.Errorf("x[%d] = %g negative after repair", k, v)
		}
	}
}
