// Package core implements the paper's primary contribution: the
// regularization-based online resource-allocation algorithm (§III) and its
// competitive-analysis machinery (§IV).
//
// At the start of every slot t the algorithm observes the current prices
// and user locations, takes the previous slot's decision x*_{·,·,t-1} as
// input, and optimally solves the convex program P2, whose objective is
// the slot's static cost plus two relative-entropy regularizers standing
// in for the reconfiguration and migration hinges:
//
//	Σ_ij a~_{ij,t}·x_ij
//	+ Σ_i  (c_i/η_i)  ((X_i +ε₁) ln((X_i +ε₁)/(X'_i +ε₁)) − X_i)
//	+ Σ_ij (b_i/τ_ij) ((x_ij+ε₂) ln((x_ij+ε₂)/(x'_ij+ε₂)) − x_ij)
//
// with X_i = Σ_j x_ij, η_i = ln(1+C_i/ε₁), τ_ij = ln(1+λ_j/ε₂) and
// b_i = b_i^out + b_i^in. The per-slot optima form a feasible solution of
// the original problem (Theorem 1) with competitive ratio 1 + γ|I|
// (Theorem 2). The ALM solver also returns the dual multipliers θ', ρ' of
// the demand and complement-capacity rows, from which a per-run lower
// bound on the offline optimum is certified (see certificate.go).
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
	"edgealloc/internal/solver/par"
	"edgealloc/internal/solver/transport"
	"edgealloc/internal/telemetry"
)

// Options tunes the online algorithm.
type Options struct {
	// Epsilon1 and Epsilon2 are the paper's ε₁ and ε₂ regularization
	// parameters (both default 1; Fig 4 sweeps them jointly).
	Epsilon1, Epsilon2 float64
	// Solver passes tolerances to the per-slot ALM solve. Zero values use
	// the package defaults tuned for the experiments. Solver.Workers also
	// bounds the intra-evaluation parallelism of P2's objective; results
	// are byte-identical for any value.
	Solver alm.Options
	// DenseRows switches P2's constraints to the generic sparse-row
	// reference path (p2Constraints) instead of the structured group-sum
	// kernel (p2Groups). The dense complement rows cost O(I²·J) per
	// Lagrangian evaluation versus O(I·J) structured; the option exists
	// for the structured-vs-dense property tests and the before/after
	// scaling benchmarks.
	DenseRows bool
	// Candidates > 0 enables the certified candidate-set solving path:
	// each slot, user j's variables are restricted to its Candidates
	// nearest clouds (by inter-cloud delay from the slot's attachment)
	// plus every cloud carrying flow from the previous slot, and the
	// reduced optimum is certified equal to the full P2 optimum by a
	// dual-feasibility pricing pass that re-admits mispriced pairs and
	// re-solves warm (see sparse.go). 0 solves the full dense variable
	// space directly. Takes precedence over DenseRows.
	Candidates int
	// Shards > 0 enables the user-sharded dual-decomposition path: the J
	// users are split into Shards contiguous shards, each solving its
	// reduced P2 (static + migration + demand rows over its own users, on
	// its own ragged candidate set and ALM/FISTA workspace) in parallel,
	// while a sharing-ADMM coordination loop on the per-cloud totals
	// (internal/solver/shard) carries the reconfiguration regularizer and
	// the complement/capacity rows and certifies the assembled schedule
	// primal-feasible and dual-consistent (see shard.go and DESIGN.md
	// §7e). 0 keeps the single-program paths bitwise unchanged. Composes
	// with Candidates and FastMath; Solver.Workers bounds the number of
	// concurrently solving shards, and results are byte-identical for any
	// worker count. Takes precedence over DenseRows.
	Shards int
	// ShardRho is the coordination loop's ADMM consensus penalty,
	// ShardMaxIters its iteration cap, and ShardPrimalTol/ShardDualTol
	// its consensus-residual and price-movement tolerances. Zero values
	// take the internal/solver/shard defaults (4, 60, 1e-8, 1e-6); only
	// meaningful with Shards > 0.
	ShardRho       float64
	ShardMaxIters  int
	ShardPrimalTol float64
	ShardDualTol   float64
	// ShardWorkers lists shard-worker base URLs (cmd/edgeshard instances,
	// e.g. "http://127.0.0.1:9711"). When non-empty and Shards > 0, each
	// shard block is placed on a worker round-robin and its consensus
	// x-steps run there over the shardrpc protocol, with the in-process
	// block kept as a warm mirror: worker failures retry with backoff,
	// worker restarts are replayed from the mirror's last round state, and
	// a worker that stays unreachable folds its blocks back into local
	// solving, so a run never fails because a worker died. Workers run the
	// identical solve code, so a clean-path distributed run is bitwise
	// equal to the in-process run. Empty (the default) keeps every solve
	// in-process and the sharded path bitwise unchanged.
	ShardWorkers []string
	// ShardRPCTimeout bounds one worker HTTP attempt and ShardRPCRetries
	// is the number of re-attempts after a retryable failure. Zero values
	// take the shardrpc defaults (30s, 2); negative retries disable
	// retrying. Only meaningful with ShardWorkers.
	ShardRPCTimeout time.Duration
	ShardRPCRetries int
	// CandidateTol is the reduced-cost tolerance of the pricing pass,
	// relative to 1 + |static coefficient| per pair (default 1e-7):
	// pruned pairs priced below −CandidateTol·(1+|ā_ij|) rejoin the
	// problem. Only meaningful with Candidates > 0.
	CandidateTol float64
	// Incremental enables event-driven incremental slot solving: at each
	// slot boundary the per-user delta is detected (attachment changed
	// versus the previous slot) and only the affected users' blocks are
	// re-solved, while unaffected users are held frozen at their carried
	// decision x'_{·j}. Every frozen user is then certified by a dual-
	// feasibility gate — the KKT stationarity of its column under the
	// solved slot's multipliers — and any violator is re-admitted to the
	// active set with the solve resuming warm, so the committed slot
	// matches the full per-slot optimum to the gate tolerance and stays
	// Theorem-1 feasible (frozen columns carry the previous feasible
	// decision; the reduced program solves under the residual capacities).
	// Composes with Candidates (frozen users drop out of the ragged
	// program entirely; without Candidates the active users solve over
	// all I clouds) and with Shards (blocks whose whole user range is
	// untouched skip their solve, gated the same way). Off by default;
	// false leaves every existing path bitwise unchanged.
	Incremental bool
	// IncrementalTol is the dual-feasibility tolerance of the freeze gate,
	// relative to 1 + |static coefficient| per pair (default 1e-7): a
	// frozen user is re-admitted when a support pair of its carried column
	// sits more than IncrementalTol·(1+|ā_ij|) above the column's minimum
	// reduced gradient, or below −IncrementalTol·(1+|ā_ij|). Smaller
	// values pin the incremental path tighter to the full solve at the
	// cost of more re-admissions under price drift. Only meaningful with
	// Incremental.
	IncrementalTol float64
	// FastMath routes the entropy hot loop through the batch kernels of
	// internal/numkernel: the per-variable migration logs are computed a
	// row at a time (ratio gather → LogBatch → accumulate) with the
	// denominator reciprocals precomputed once per slot, instead of the
	// default per-element divide + math.Log + memo cache. Each kernel
	// operation is within 1e-12 relative of the stdlib, and end-to-end
	// schedule costs agree with the exact path to 1e-8 (pinned by
	// property tests and the conformance oracle); the trade is bitwise
	// reproducibility against the default path. Off by default.
	FastMath bool
	// FastMathF32 additionally stores the J-wide ratio and reciprocal
	// scratch vectors of the fast path in float32, halving the memory
	// bandwidth of the entropy passes at large J; the accumulation stays
	// float64. Log accuracy drops to the float32 tier (≤1e-6 relative
	// per operation). Implies FastMath.
	FastMathF32 bool
	// Metrics optionally records per-slot solver telemetry (solve latency,
	// ALM/FISTA iteration counts, candidate-set expansion work, per-cloud
	// utilization) into the shared instrument bundle. Nil records nothing;
	// recording never changes results.
	Metrics *telemetry.SolverMetrics
}

func (o Options) withDefaults() Options {
	if o.Epsilon1 <= 0 {
		o.Epsilon1 = 1
	}
	if o.Epsilon2 <= 0 {
		o.Epsilon2 = 1
	}
	if o.Solver.MaxOuter == 0 {
		o.Solver.MaxOuter = 60
	}
	if o.Solver.InnerIters == 0 {
		o.Solver.InnerIters = 900
	}
	if o.Solver.FeasTol == 0 {
		o.Solver.FeasTol = 1e-7
	}
	if o.Solver.Penalty == 0 {
		o.Solver.Penalty = 2
	}
	if o.CandidateTol <= 0 {
		o.CandidateTol = 1e-7
	}
	if o.IncrementalTol <= 0 {
		o.IncrementalTol = 1e-7
	}
	if o.FastMathF32 {
		o.FastMath = true
	}
	return o
}

// OnlineApprox runs the paper's online algorithm over an instance,
// recording per-slot decisions and dual multipliers.
//
// Each OnlineApprox owns its solver workspace and per-instance caches, so
// distinct instances may run concurrently; a single OnlineApprox must not
// be shared between goroutines.
type OnlineApprox struct {
	inst *model.Instance
	opts Options

	prev      model.Alloc // x*_{·,·,t-1}
	warmDuals []float64
	slot      int

	schedule model.Schedule
	// Thetas[t][j] and Rhos[t][i] are the optimal multipliers θ'_{j,t}
	// and ρ'_{i,t} of P2's demand and complement-capacity constraints.
	// Nus[t][i] are the multipliers of the explicit capacity rows (zero
	// wherever the paper's Theorem-1 claim holds).
	thetas [][]float64
	rhos   [][]float64
	nus    [][]float64

	// Per-instance caches, lazily built on the first Step: P2's constraint
	// geometry and the objective's entropy constants are slot-independent,
	// and the ALM workspace makes repeated Step calls allocation-free in
	// the solver hot path. prevBuf backs prev across slots, userTot is the
	// repair scratch, and thetaBuf/rhoBuf/nuBuf back the per-slot dual
	// records, so steady-state Step allocates only the decision it returns.
	cons     []alm.Constraint
	groups   *alm.Groups
	lower    []float64
	sparse   *sparseState
	shrd     *shardState
	obj      *p2Objective
	prob     alm.Problem
	ws       alm.Workspace
	prevBuf  []float64
	userTot  []float64
	thetaBuf []float64
	rhoBuf   []float64
	nuBuf    []float64

	// dualsBuf owns the warm-start multipliers between slots. The solver's
	// Result.Duals alias workspace memory that a later (possibly cancelled)
	// solve scribbles over, so the accepted duals are copied out here: a
	// Step aborted by context cancellation then leaves the warm state of
	// the next Step exactly as the last successful slot wrote it.
	dualsBuf []float64
	// cloudTot is the utilization scratch of the telemetry hook, allocated
	// on first use so metric-free runs pay nothing.
	cloudTot []float64
	lastDiag StepDiag
}

// StepDiag describes the solver work of the most recent successful Step:
// the per-slot numbers the telemetry layer exports and the serving
// daemon returns to clients.
type StepDiag struct {
	// Slot is the slot the diagnostics describe.
	Slot int
	// Seconds is the wall-clock duration of the P2 solve (including
	// candidate expansion rounds, excluding schedule bookkeeping).
	Seconds float64
	// Outer and Inner are the ALM multiplier updates and FISTA iterations
	// spent on the slot, summed over candidate expansion rounds.
	Outer, Inner int
	// Converged reports whether the final ALM solve met its tolerances.
	Converged bool
	// CandRounds, CandExpanded, and CandNNZ describe the candidate-set
	// path (zero when Options.Candidates is off): reduced solves, pairs
	// re-admitted by pricing, and the certified solve's packed size.
	CandRounds, CandExpanded, CandNNZ int
	// ShardIters, ShardResidual, and ShardMaxSeconds describe the sharded
	// coordination path (zero when Options.Shards is off): outer dual-
	// ascent iterations spent on the slot, the final max consensus/
	// capacity residual, and the slowest shard's cumulative solve time.
	ShardIters      int
	ShardResidual   float64
	ShardMaxSeconds float64
	// LogCacheHits and LogCacheMisses count the slot's migration-log
	// memo-cache outcomes on the exact evaluation path (hits are logs
	// reused without recomputation; the zero-flow skip is counted by
	// neither). Both are zero under Options.FastMath, which replaces the
	// cache with batch kernels.
	LogCacheHits, LogCacheMisses int64
	// FrozenUsers and ReadmittedUsers describe the incremental path (zero
	// when Options.Incremental is off): users held at their carried
	// decision when the slot was committed, and users the soundness gate
	// re-admitted to the active set during the slot.
	FrozenUsers, ReadmittedUsers int
}

// NewOnlineApprox prepares a run over a validated instance. A nil
// instance is allowed for an algorithm object that will only be used
// through Solve (which binds the instance passed to it); Step and Run
// require a non-nil instance.
func NewOnlineApprox(inst *model.Instance, opts Options) *OnlineApprox {
	o := &OnlineApprox{
		inst: inst,
		opts: opts.withDefaults(),
	}
	if inst != nil {
		o.prev = inst.InitialAlloc()
	}
	return o
}

// Name identifies the algorithm in experiment output.
func (o *OnlineApprox) Name() string { return "online-approx" }

// Step solves P2 for slot t (which must be the next unprocessed slot) and
// returns the allocation decision.
func (o *OnlineApprox) Step(t int) (model.Alloc, error) {
	return o.StepCtx(context.Background(), t)
}

// StepCtx is Step with cooperative cancellation: the context is polled
// between FISTA sweeps inside the per-slot solve, so a cancelled or
// timed-out ctx aborts the slot promptly with an error wrapping
// ctx.Err(). A cancelled Step leaves the algorithm state exactly as the
// previous successful slot left it — the previous decision, the warm-
// start multipliers, and the slot counter are untouched — so the same
// slot can be retried (and produces the same decision an uncancelled run
// would have).
func (o *OnlineApprox) StepCtx(ctx context.Context, t int) (model.Alloc, error) {
	if ctx != nil && ctx.Done() == nil {
		// Never-cancellable context (Background/TODO): skip polling so the
		// solver hot loop stays branch-for-branch identical to Step.
		ctx = nil
	}
	if t != o.slot {
		return model.Alloc{}, fmt.Errorf("core: Step(%d) out of order, expected %d", t, o.slot)
	}
	in := o.inst
	o.ensureInit(in)
	o.obj.bind(in, t, o.prev)

	solveStart := time.Now()
	var statsBefore SparseStats
	if o.sparse != nil {
		statsBefore = o.sparse.stats
	}
	var shardBefore ShardStats
	if o.shrd != nil {
		shardBefore = o.shrd.stats
	}
	var res *alm.Result
	var xSrc []float64
	if o.shrd != nil {
		r, xd, err := o.solveShard(ctx, t)
		if err != nil {
			return model.Alloc{}, fmt.Errorf("core: slot %d: %w", t, err)
		}
		res, xSrc = r, xd
	} else if o.sparse != nil {
		r, xd, err := o.solveSparse(ctx, t)
		if err != nil {
			return model.Alloc{}, fmt.Errorf("core: slot %d: %w", t, err)
		}
		res, xSrc = r, xd
	} else {
		o.prob = alm.Problem{
			Obj:    o.obj,
			N:      in.I * in.J,
			Lower:  o.lower,
			Cons:   o.cons,
			Groups: o.groups,
		}
		sopts := o.opts.Solver
		sopts.Workspace = &o.ws
		sopts.Ctx = ctx
		sopts.WarmX = o.prev.X
		if t == 0 && allZero(o.prev.X) {
			// From the formal model's x_{·,·,0} = 0 every complement-capacity
			// row starts violated by the full Λ−C_i, and the penalty pushes
			// the entire allocation upward before the demand duals settle,
			// which can leave an over-allocated (capacity-violating) point.
			// Starting from any demand-tight feasible point — the slot's
			// static-cost transportation optimum — avoids that regime
			// entirely; Theorem 1 then keeps every later slot feasible.
			if warm, err := feasibleWarmStart(in, t); err == nil {
				sopts.WarmX = warm
			}
		}
		if o.warmDuals != nil {
			sopts.WarmDuals = o.warmDuals
		}
		r, err := alm.Solve(&o.prob, sopts)
		if err != nil {
			return model.Alloc{}, fmt.Errorf("core: slot %d: %w", t, err)
		}
		res, xSrc = r, r.X
	}

	solveSeconds := time.Since(solveStart).Seconds()

	// res.X/res.Duals alias the workspace (and the sparse path's dense
	// scatter aliases its scratch); copy the decision out before the next
	// Step overwrites them.
	x := model.Alloc{I: in.I, J: in.J, X: append([]float64(nil), xSrc...)}
	repair(in, x, o.userTot)

	copy(o.prevBuf, x.X)
	if o.dualsBuf == nil {
		o.dualsBuf = make([]float64, len(res.Duals))
	}
	copy(o.dualsBuf, res.Duals)
	o.warmDuals = o.dualsBuf
	o.schedule = append(o.schedule, x)
	theta := o.thetaBuf[t*in.J : (t+1)*in.J]
	copy(theta, res.Duals[:in.J])
	rho := o.rhoBuf[t*in.I : (t+1)*in.I]
	copy(rho, res.Duals[in.J:in.J+in.I])
	nu := o.nuBuf[t*in.I : (t+1)*in.I]
	copy(nu, res.Duals[in.J+in.I:in.J+2*in.I])
	o.thetas = append(o.thetas, theta)
	o.rhos = append(o.rhos, rho)
	o.nus = append(o.nus, nu)

	o.lastDiag = StepDiag{
		Slot:      t,
		Seconds:   solveSeconds,
		Outer:     res.Outer,
		Inner:     res.InnerIters,
		Converged: res.Converged,
	}
	switch {
	case o.shrd != nil:
		d := &o.lastDiag
		s := o.shrd.stats
		d.CandRounds = s.Rounds - shardBefore.Rounds
		d.CandExpanded = s.Expanded - shardBefore.Expanded
		d.CandNNZ = s.FinalNNZ
		d.ShardIters = s.CoordIters - shardBefore.CoordIters
		d.ShardResidual = s.MaxResidual
		d.ShardMaxSeconds = s.MaxSeconds
		d.FrozenUsers = s.Frozen - shardBefore.Frozen
		d.ReadmittedUsers = s.Readmitted - shardBefore.Readmitted
		for _, b := range o.shrd.blocks {
			h, m := b.obj.logCacheTotals()
			d.LogCacheHits += h
			d.LogCacheMisses += m
		}
	case o.sparse != nil:
		d := &o.lastDiag
		s := o.sparse.stats
		// The sparse result reports the final round only; the stats deltas
		// cover every expansion round of the slot.
		d.Outer = s.OuterIters - statsBefore.OuterIters
		d.Inner = s.InnerIters - statsBefore.InnerIters
		d.CandRounds = s.Rounds - statsBefore.Rounds
		d.CandExpanded = s.Expanded - statsBefore.Expanded
		d.CandNNZ = s.FinalNNZ
		d.FrozenUsers = s.Frozen - statsBefore.Frozen
		d.ReadmittedUsers = s.Readmitted - statsBefore.Readmitted
		d.LogCacheHits, d.LogCacheMisses = o.sparse.obj.logCacheTotals()
	default:
		o.lastDiag.LogCacheHits, o.lastDiag.LogCacheMisses = o.obj.logCacheTotals()
	}
	if m := o.opts.Metrics; m != nil {
		d := o.lastDiag
		m.ObserveStep(d.Seconds, d.Outer, d.Inner, d.Converged)
		m.ObserveLogCache(d.LogCacheHits, d.LogCacheMisses)
		if o.sparse != nil || o.shrd != nil {
			m.ObserveCandidates(d.CandRounds, d.CandExpanded, d.CandNNZ)
		}
		if o.shrd != nil {
			m.ObserveShards(d.ShardIters, d.ShardResidual, o.shrd.blockSecs)
		}
		if o.opts.Incremental {
			m.ObserveIncremental(d.FrozenUsers, d.ReadmittedUsers, d.Seconds)
		}
		if o.cloudTot == nil {
			o.cloudTot = make([]float64, in.I)
		}
		x.CloudTotalsInto(o.cloudTot)
		for i := 0; i < in.I; i++ {
			m.SetCloudUtilization(i, o.cloudTot[i]/in.Capacity[i])
		}
	}

	o.slot++
	return x, nil
}

// ensureInit lazily builds the per-instance caches on the first Step (or
// on RestoreState): P2's constraint geometry and the objective's entropy
// constants are slot-independent, and the ALM workspace makes repeated
// Step calls allocation-free in the solver hot path.
func (o *OnlineApprox) ensureInit(in *model.Instance) {
	if o.obj != nil {
		return
	}
	o.obj = newP2ObjectiveConst(in, o.opts.Epsilon1, o.opts.Epsilon2)
	o.obj.workers = o.opts.Solver.Workers
	if o.opts.FastMath {
		o.obj.enableFast(o.opts.FastMathF32)
	}
	switch {
	case o.opts.Shards > 0:
		o.initShard(in)
	case o.opts.Candidates > 0 || o.opts.Incremental:
		o.initSparse(in)
	case o.opts.DenseRows:
		o.cons = p2Constraints(in, 0)
		o.lower = make([]float64, in.I*in.J)
	default:
		o.groups = p2Groups(in)
		o.lower = make([]float64, in.I*in.J)
	}
	o.prevBuf = make([]float64, in.I*in.J)
	copy(o.prevBuf, o.prev.X)
	o.prev = model.Alloc{I: in.I, J: in.J, X: o.prevBuf}
	o.userTot = make([]float64, in.J)
	o.thetaBuf = make([]float64, in.T*in.J)
	o.rhoBuf = make([]float64, in.T*in.I)
	o.nuBuf = make([]float64, in.T*in.I)
	o.schedule = make(model.Schedule, 0, in.T)
	o.thetas = make([][]float64, 0, in.T)
	o.rhos = make([][]float64, 0, in.T)
	o.nus = make([][]float64, 0, in.T)
}

// LastStepDiag returns the solver diagnostics of the most recent
// successful Step (the zero value before any slot has been solved).
func (o *OnlineApprox) LastStepDiag() StepDiag { return o.lastDiag }

// Run executes all remaining slots and returns the full schedule.
func (o *OnlineApprox) Run() (model.Schedule, error) {
	for t := o.slot; t < o.inst.T; t++ {
		if _, err := o.Step(t); err != nil {
			return nil, err
		}
	}
	return o.schedule, nil
}

// Solve runs the algorithm on a fresh state over the whole instance. It
// is the entry point used by the simulator.
func (o *OnlineApprox) Solve(in *model.Instance) (model.Schedule, error) {
	fresh := NewOnlineApprox(in, o.opts)
	s, err := fresh.Run()
	if err != nil {
		return nil, err
	}
	// Keep the dual record available for certification.
	*o = *fresh
	return s, nil
}

// Duals returns the recorded per-slot multipliers (θ, ρ) for the slots
// processed so far. The returned slices alias internal state and must not
// be modified.
func (o *OnlineApprox) Duals() (thetas, rhos [][]float64) { return o.thetas, o.rhos }

// Schedule returns the decisions made so far.
func (o *OnlineApprox) Schedule() model.Schedule { return o.schedule }

// p2Constraints builds P2's rows: demand Σ_i x_ij ≥ λ_j for every user,
// the paper's complement-capacity rows Σ_{k≠i} Σ_j x_kj ≥ (Λ − C_i)⁺ for
// every cloud, and finally explicit capacity rows Σ_j x_ij ≤ C_i.
//
// The capacity rows are not in the paper's P2: Theorem 1 claims the
// complement rows alone keep the optimum within capacity. That claim has
// a gap — when one cloud is much cheaper than the rest, P2's exact
// optimum over-serves demand, parks the complement-row padding on other
// clouds, and pushes the cheap cloud beyond C_i (observed on our
// instances; see DESIGN.md). The explicit rows restore the evidently
// intended feasibility; where the paper's claim does hold they bind only
// where the complement rows bind and change nothing.
func p2Constraints(in *model.Instance, t int) []alm.Constraint {
	_ = t // constraint geometry is slot-independent; kept for clarity
	nI, nJ := in.I, in.J
	cons := make([]alm.Constraint, 0, nJ+2*nI)
	for j := 0; j < nJ; j++ {
		idx := make([]int, nI)
		coef := make([]float64, nI)
		for i := 0; i < nI; i++ {
			idx[i] = i*nJ + j
			coef[i] = 1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: in.Workload[j]})
	}
	lambda := in.TotalWorkload()
	for i := 0; i < nI; i++ {
		rhs := lambda - in.Capacity[i]
		if rhs < 0 {
			rhs = 0
		}
		idx := make([]int, 0, (nI-1)*nJ)
		coef := make([]float64, 0, (nI-1)*nJ)
		for k := 0; k < nI; k++ {
			if k == i {
				continue
			}
			for j := 0; j < nJ; j++ {
				idx = append(idx, k*nJ+j)
				coef = append(coef, 1)
			}
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: rhs})
	}
	for i := 0; i < nI; i++ {
		idx := make([]int, nJ)
		coef := make([]float64, nJ)
		for j := 0; j < nJ; j++ {
			idx[j] = i*nJ + j
			coef[j] = -1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: -in.Capacity[i]})
	}
	return cons
}

// p2Groups builds the same rows as p2Constraints in structured group-sum
// form: demand rows are per-user column sums, the complement rows are the
// grid total minus one cloud's row sum, and the capacity rows are negated
// cloud row sums. Row order (demand, complement, capacity) matches
// p2Constraints exactly, so the dual layout consumed by the certificate
// (θ' then ρ' then ν') is unchanged.
func p2Groups(in *model.Instance) *alm.Groups {
	nI, nJ := in.I, in.J
	rows := make([]alm.GroupRow, 0, nJ+2*nI)
	for j := 0; j < nJ; j++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupUserSum, Index: j, RHS: in.Workload[j]})
	}
	lambda := in.TotalWorkload()
	for i := 0; i < nI; i++ {
		rhs := lambda - in.Capacity[i]
		if rhs < 0 {
			rhs = 0
		}
		rows = append(rows, alm.GroupRow{Kind: alm.GroupComplement, Index: i, RHS: rhs})
	}
	for i := 0; i < nI; i++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupCloudSumNeg, Index: i, RHS: -in.Capacity[i]})
	}
	return &alm.Groups{I: nI, J: nJ, Blocks: 1, Rows: rows}
}

// evalParGrain is the minimum number of variables per worker before
// p2Objective.Eval goes parallel; tests shrink it to exercise the
// parallel path on small instances. The objective costs several
// transcendental calls per variable (log for the entropy terms, exp
// inside the softplus), so a few thousand variables already amortize a
// goroutine handoff.
var evalParGrain = 4096

// p2Objective evaluates P2's objective and gradient. Rows (clouds) are
// independent, so Eval blocks them over a bounded worker pool when
// workers > 1 and the instance is large enough; per-row partial values
// land in rowF and reduce in row order, keeping the result byte-identical
// for any worker count.
type p2Objective struct {
	nI, nJ  int
	coef    []float64 // weighted static coefficients (I×J)
	prev    []float64 // x'_{ij}
	prevTot []float64 // X'_i
	rcFac   []float64 // wRc·c_i/η_i per cloud
	mgFac   []float64 // wMg·b_i/τ_ij per (i,j)
	eps1    float64
	eps2    float64
	workers int

	rowF []float64 // per-cloud partial objective values

	// hitRow/missRow count per-cloud log-cache outcomes; per-row slots
	// keep the counting race-free and deterministic under the parallel
	// evaluation path, exactly like rowF. bind resets them each slot.
	hitRow  []int64
	missRow []int64

	// Fast-math tier (Options.FastMath): fast selects the batch-kernel
	// evaluation path, invDen holds the per-slot reciprocals
	// 1/(x'_{ij}+ε₂) and ratio is the row-sliced log scratch. The *32
	// pair replaces invDen/ratio under Options.FastMathF32. The exact
	// path leaves all of these nil.
	fast     bool
	invDen   []float64
	ratio    []float64
	invDen32 []float32
	ratio32  []float32

	// lastNum/lastLg2 memoize the migration-term log per variable: the
	// solver evaluates the objective thousands of times per slot, and late
	// in a solve most entries are static across evaluations (converged, or
	// clipped at the zero bound while x'_{ij} ≠ 0), so their log argument
	// repeats exactly. The cache stores the argument and the math.Log
	// result it produced, making reuse bitwise identical to recomputation;
	// bind invalidates it (the denominator changes with x'). Each entry is
	// only touched by the evaluation of its own cloud row, so the parallel
	// path stays race-free and deterministic.
	lastNum []float64
	lastLg2 []float64
}

var _ fista.Objective = (*p2Objective)(nil)

// newP2ObjectiveConst computes the slot-independent constants of P2's
// objective — the entropy scale factors η_i and τ_ij of the paper — once
// per (instance, ε) pair. bind attaches the per-slot state.
func newP2ObjectiveConst(in *model.Instance, eps1, eps2 float64) *p2Objective {
	o := &p2Objective{
		nI:      in.I,
		nJ:      in.J,
		coef:    make([]float64, in.I*in.J),
		prevTot: make([]float64, in.I),
		rcFac:   make([]float64, in.I),
		mgFac:   make([]float64, in.I*in.J),
		eps1:    eps1,
		eps2:    eps2,
		rowF:    make([]float64, in.I),
		hitRow:  make([]int64, in.I),
		missRow: make([]int64, in.I),
		lastNum: make([]float64, in.I*in.J),
		lastLg2: make([]float64, in.I*in.J),
	}
	for i := 0; i < in.I; i++ {
		eta := math.Log1p(in.Capacity[i] / eps1)
		o.rcFac[i] = in.WRc * in.ReconfPrice[i] / eta
		b := in.WMg * (in.MigOutPrice[i] + in.MigInPrice[i])
		for j := 0; j < in.J; j++ {
			tau := math.Log1p(in.Workload[j] / eps2)
			o.mgFac[i*in.J+j] = b / tau
		}
	}
	return o
}

// enableFast switches the objective onto the batch-kernel path
// (Options.FastMath), allocating the reciprocal and ratio scratch in the
// requested storage width. Call before the first bind.
func (o *p2Objective) enableFast(f32 bool) {
	o.fast = true
	if f32 {
		o.invDen32 = make([]float32, o.nI*o.nJ)
		o.ratio32 = make([]float32, o.nI*o.nJ)
		return
	}
	o.invDen = make([]float64, o.nI*o.nJ)
	o.ratio = make([]float64, o.nI*o.nJ)
}

// bind points the objective at slot t's prices and the previous decision,
// reusing the cached buffers.
func (o *p2Objective) bind(in *model.Instance, t int, prev model.Alloc) {
	in.StaticCoeffInto(t, o.coef)
	o.prev = prev.X
	prev.CloudTotalsInto(o.prevTot)
	if o.fast {
		// The fast path divides once per slot here instead of once per
		// element per evaluation; the memo cache is unused.
		if o.invDen32 != nil {
			entropyInvDen32(o.invDen32, o.prev, o.eps2)
		} else {
			entropyInvDen(o.invDen, o.prev, o.eps2)
		}
	} else {
		for k := range o.lastNum {
			o.lastNum[k] = math.NaN() // never equal: invalidate the log cache
		}
	}
	for i := range o.hitRow {
		o.hitRow[i] = 0
		o.missRow[i] = 0
	}
}

// logCacheTotals sums the per-row cache counters accumulated since the
// last bind.
func (o *p2Objective) logCacheTotals() (hits, misses int64) {
	for i := range o.hitRow {
		hits += o.hitRow[i]
		misses += o.missRow[i]
	}
	return hits, misses
}

func newP2Objective(in *model.Instance, t int, prev model.Alloc, eps1, eps2 float64) *p2Objective {
	o := newP2ObjectiveConst(in, eps1, eps2)
	o.bind(in, t, prev)
	return o
}

// Eval implements fista.Objective.
func (o *p2Objective) Eval(x, grad []float64) float64 {
	if w := par.Bound(o.workers, o.nI*o.nJ, evalParGrain); w <= 1 {
		// Closure-free serial path: Eval runs thousands of times per
		// Step, and a closure handed to par.Ranges escapes (it may be
		// launched on goroutines), costing one heap allocation per call.
		o.evalRows(x, grad, 0, o.nI)
	} else {
		par.Ranges(w, o.nI, func(lo, hi int) { o.evalRows(x, grad, lo, hi) })
	}
	f := 0.0
	for _, v := range o.rowF {
		f += v
	}
	return f
}

// evalRows evaluates cloud rows [lo, hi) into rowF.
func (o *p2Objective) evalRows(x, grad []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		o.rowF[i] = o.evalRow(i, x, grad)
	}
}

// evalRow computes cloud i's slice of the objective and gradient: the
// reconfiguration regularizer on the cloud total plus the static and
// migration terms of the row's (i, j) pairs. Rows touch disjoint state.
// The element loop is duplicated for the gradient and value-only cases
// (FISTA's backtracking trials are value-only) so neither pays the other's
// per-element branch, with the row slices hoisted for bounds-check
// elimination.
func (o *p2Objective) evalRow(i int, x, grad []float64) float64 {
	if o.fast {
		return o.evalRowFast(i, x, grad)
	}
	base := i * o.nJ
	row := x[base : base+o.nJ]
	coef := o.coef[base : base+o.nJ]
	prev := o.prev[base : base+o.nJ]
	mgFac := o.mgFac[base : base+o.nJ]
	// Migration regularizer per (cloud, user). Most variables sit where
	// the iterate equals the previous decision (typically both at the zero
	// bound: a user is served by few clouds), making the ratio exactly 1
	// and the log exactly 0 — skipping the division and math.Log there is
	// bitwise identical and removes the transcendental cost from the
	// (i, j) pairs that carry no flow. The term-by-term loops live in
	// entropy.go, shared with the packed candidate-set path.
	lastNum := o.lastNum[base : base+o.nJ]
	lastLg2 := o.lastLg2[base : base+o.nJ]
	if grad == nil {
		// Value-only evaluation (a FISTA backtracking trial): the cloud
		// total feeds only the reconfiguration term, so it is accumulated
		// alongside the element terms in a single pass and the
		// reconfiguration regularizer is added at the end.
		s, f, hits, misses := entropyRowValue(row, coef, prev, mgFac, lastNum, lastLg2, o.eps2)
		o.hitRow[i] += hits
		o.missRow[i] += misses
		lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
		return f + o.rcFac[i]*((s+o.eps1)*lg-s)
	}
	s := 0.0
	for _, v := range row {
		s += v
	}
	// Reconfiguration regularizer on the cloud total.
	lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
	f := o.rcFac[i] * ((s+o.eps1)*lg - s)
	f, hits, misses := entropyRowGrad(row, coef, prev, mgFac, lastNum, lastLg2,
		grad[base:base+o.nJ], o.eps2, f, o.rcFac[i]*lg)
	o.hitRow[i] += hits
	o.missRow[i] += misses
	return f
}

// evalRowFast is evalRow on the batch-kernel tier (Options.FastMath):
// one fused sum+gather pass, one in-place batch log over the row, one
// accumulation pass. See entropy.go for the tier's accuracy contract.
func (o *p2Objective) evalRowFast(i int, x, grad []float64) float64 {
	base := i * o.nJ
	row := x[base : base+o.nJ]
	coef := o.coef[base : base+o.nJ]
	mgFac := o.mgFac[base : base+o.nJ]
	if o.ratio32 != nil {
		ratio := o.ratio32[base : base+o.nJ]
		s := entropyRatioPass32(row, o.invDen32[base:base+o.nJ], ratio, o.eps2)
		logBatch32(ratio, ratio)
		lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
		if grad == nil {
			f := entropyFastValue32(row, coef, mgFac, ratio, o.eps2)
			return f + o.rcFac[i]*((s+o.eps1)*lg-s)
		}
		f := o.rcFac[i] * ((s+o.eps1)*lg - s)
		return entropyFastGrad32(row, coef, mgFac, ratio,
			grad[base:base+o.nJ], o.eps2, f, o.rcFac[i]*lg)
	}
	ratio := o.ratio[base : base+o.nJ]
	s := entropyRatioPass(row, o.invDen[base:base+o.nJ], ratio, o.eps2)
	logBatch(ratio, ratio)
	lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
	if grad == nil {
		f := entropyFastValue(row, coef, mgFac, ratio, o.eps2)
		return f + o.rcFac[i]*((s+o.eps1)*lg-s)
	}
	f := o.rcFac[i] * ((s+o.eps1)*lg - s)
	return entropyFastGrad(row, coef, mgFac, ratio,
		grad[base:base+o.nJ], o.eps2, f, o.rcFac[i]*lg)
}

// repair clips negative round-off and tops up any marginally under-served
// user on its attached cloud so that downstream feasibility checks with
// tight tolerances pass. The adjustments are on the order of the solver
// tolerance (≤1e-6 relative) and do not affect measured costs. served is
// a length-J scratch buffer.
func repair(in *model.Instance, x model.Alloc, served []float64) {
	for k, v := range x.X {
		if v < 0 {
			x.X[k] = 0
		}
	}
	x.UserTotalsInto(served)
	for j := 0; j < in.J; j++ {
		if deficit := in.Workload[j] - served[j]; deficit > 0 {
			// Scale the user's column up proportionally; fall back to the
			// cheapest-by-index cloud when the column is all zero.
			if served[j] > 0 {
				f := in.Workload[j] / served[j]
				for i := 0; i < in.I; i++ {
					x.Set(i, j, x.At(i, j)*f)
				}
			} else {
				x.Set(0, j, in.Workload[j])
			}
		}
	}
}

// allZero reports whether every entry of v is zero.
func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// feasibleWarmStart returns the slot's static-cost transportation optimum,
// a demand-tight point satisfying all of P2's constraints.
func feasibleWarmStart(in *model.Instance, t int) ([]float64, error) {
	cost := make([][]float64, in.I)
	coef := in.StaticCoeff(t)
	for i := range cost {
		cost[i] = coef[i*in.J : (i+1)*in.J]
	}
	sol, err := transport.Solve(&transport.Problem{
		Cost:   cost,
		Supply: in.Capacity,
		Demand: in.Workload,
	})
	if err != nil {
		return nil, err
	}
	warm := make([]float64, in.I*in.J)
	for i := 0; i < in.I; i++ {
		copy(warm[i*in.J:(i+1)*in.J], sol.Flow[i])
	}
	return warm, nil
}

// CompetitiveRatioBound returns Theorem 2's certified ratio r = 1 + γ|I|
// for the bound instance under the run's ε parameters, or 0 when no
// instance is bound yet. It implements the harness's RatioBounder
// interface so the conformance oracle can check the achieved cost
// against the certificate.
func (o *OnlineApprox) CompetitiveRatioBound() float64 {
	if o.inst == nil {
		return 0
	}
	return RatioBound(o.inst, o.opts.Epsilon1, o.opts.Epsilon2)
}

// RatioBound returns the paper's parameterized competitive ratio
// r = 1 + γ|I| with
// γ = max_i{(C_i+ε₁)ln(1+C_i/ε₁), (C_i+ε₂)ln(1+C_i/ε₂)} (Theorem 2).
func RatioBound(in *model.Instance, eps1, eps2 float64) float64 {
	gamma := 0.0
	for _, c := range in.Capacity {
		if v := (c + eps1) * math.Log1p(c/eps1); v > gamma {
			gamma = v
		}
		if v := (c + eps2) * math.Log1p(c/eps2); v > gamma {
			gamma = v
		}
	}
	return 1 + gamma*float64(in.I)
}
