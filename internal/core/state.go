package core

import (
	"errors"
	"fmt"
	"math"

	"edgealloc/internal/model"
)

// WarmState is the serializable cross-slot state of an OnlineApprox run:
// everything a fresh algorithm object needs to resume the online
// algorithm at the next unsolved slot as if it had solved the previous
// ones itself. The committed decisions double as the warm iterate — the
// slot-t solve warm-starts from x*_{·,·,t-1}, which is exactly
// Schedule[t-1] (post-repair) — and Duals carries the last accepted ALM
// multipliers in the full [θ | ρ | ν] layout for the dense warm start.
// The per-slot dual records (Thetas, Rhos, Nus) preserve the dual
// certificate and the conformance oracle across a restore.
//
// Path-internal warm state (the candidate builder's sets, the sharded
// coordinator's per-block duals, the incremental tier's committed gate
// duals) is deliberately not captured: each path rebuilds it from the
// carried decision, and the incremental delta detector treats the first
// post-restore slot as having no committed predecessor, so it re-solves
// every user — a full, certified solve — before resuming delta-driven
// slots. Restored runs therefore match uninterrupted runs to the solver
// tolerance (pinned to 1e-8 by the serve-layer tests), not bitwise.
type WarmState struct {
	// Slot is the next unsolved slot; len(Schedule) committed decisions
	// precede it.
	Slot int `json:"slot"`
	// Schedule holds the committed decisions, one dense row-major I×J
	// matrix per solved slot.
	Schedule [][]float64 `json:"schedule"`
	// Duals is the warm-start multiplier vector of the last successful
	// slot in the full [θ (J) | ρ (I) | ν (I)] layout, or nil before the
	// first slot.
	Duals []float64 `json:"duals,omitempty"`
	// Thetas, Rhos, and Nus are the per-slot optimal multipliers of P2's
	// demand, complement-capacity, and explicit capacity rows (one row per
	// solved slot; lengths J, I, I).
	Thetas [][]float64 `json:"thetas"`
	Rhos   [][]float64 `json:"rhos"`
	Nus    [][]float64 `json:"nus"`
}

// ExportState deep-copies the algorithm's cross-slot state. The snapshot
// is independent of the algorithm object: later Steps do not mutate it.
func (o *OnlineApprox) ExportState() *WarmState {
	st := &WarmState{Slot: o.slot}
	st.Schedule = make([][]float64, len(o.schedule))
	for t, x := range o.schedule {
		st.Schedule[t] = append([]float64(nil), x.X...)
	}
	if o.warmDuals != nil {
		st.Duals = append([]float64(nil), o.warmDuals...)
	}
	st.Thetas = copyRows(o.thetas)
	st.Rhos = copyRows(o.rhos)
	st.Nus = copyRows(o.nus)
	return st
}

func copyRows(rows [][]float64) [][]float64 {
	out := make([][]float64, len(rows))
	for k, r := range rows {
		out[k] = append([]float64(nil), r...)
	}
	return out
}

// RestoreState loads an exported state into a freshly constructed
// algorithm (same instance shape and options as the exporting run).
// After a successful restore the next Step must be for slot st.Slot; a
// used algorithm object refuses to restore.
func (o *OnlineApprox) RestoreState(st *WarmState) error {
	in := o.inst
	if in == nil {
		return errors.New("core: RestoreState requires an instance-bound algorithm")
	}
	if o.obj != nil || o.slot != 0 {
		return errors.New("core: RestoreState on a used algorithm object")
	}
	if err := st.validate(in); err != nil {
		return err
	}
	o.ensureInit(in)
	nI, nJ := in.I, in.J
	for t, row := range st.Schedule {
		x := model.Alloc{I: nI, J: nJ, X: append([]float64(nil), row...)}
		o.schedule = append(o.schedule, x)
		theta := o.thetaBuf[t*nJ : (t+1)*nJ]
		copy(theta, st.Thetas[t])
		rho := o.rhoBuf[t*nI : (t+1)*nI]
		copy(rho, st.Rhos[t])
		nu := o.nuBuf[t*nI : (t+1)*nI]
		copy(nu, st.Nus[t])
		o.thetas = append(o.thetas, theta)
		o.rhos = append(o.rhos, rho)
		o.nus = append(o.nus, nu)
	}
	if st.Slot > 0 {
		copy(o.prevBuf, st.Schedule[st.Slot-1])
	}
	if st.Duals != nil {
		o.dualsBuf = append([]float64(nil), st.Duals...)
		o.warmDuals = o.dualsBuf
	}
	o.slot = st.Slot
	return nil
}

// validate checks the state's shape and values against the instance, so
// a corrupted or mismatched snapshot fails the restore instead of
// poisoning the warm solver state.
func (st *WarmState) validate(in *model.Instance) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("core: invalid warm state: %s", fmt.Sprintf(format, args...))
	}
	if st.Slot < 0 || st.Slot > in.T {
		return fail("slot %d outside [0, %d]", st.Slot, in.T)
	}
	if len(st.Schedule) != st.Slot {
		return fail("%d committed slots, want %d", len(st.Schedule), st.Slot)
	}
	for t, row := range st.Schedule {
		if len(row) != in.I*in.J {
			return fail("schedule slot %d has %d entries, want %d", t, len(row), in.I*in.J)
		}
		for k, v := range row {
			if !(v >= 0) || math.IsInf(v, 0) {
				return fail("schedule slot %d entry %d = %g must be finite and nonnegative", t, k, v)
			}
		}
	}
	if st.Duals != nil && len(st.Duals) != in.J+2*in.I {
		return fail("%d warm duals, want %d", len(st.Duals), in.J+2*in.I)
	}
	for k, v := range st.Duals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fail("warm dual %d = %g not finite", k, v)
		}
	}
	for name, rows := range map[string][][]float64{"thetas": st.Thetas, "rhos": st.Rhos, "nus": st.Nus} {
		want := in.I
		if name == "thetas" {
			want = in.J
		}
		if len(rows) != st.Slot {
			return fail("%d %s rows, want %d", len(rows), name, st.Slot)
		}
		for t, r := range rows {
			if len(r) != want {
				return fail("%s[%d] has %d entries, want %d", name, t, len(r), want)
			}
			for k, v := range r {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					return fail("%s[%d][%d] = %g not finite", name, t, k, v)
				}
			}
		}
	}
	return nil
}
