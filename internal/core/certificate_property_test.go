package core

import (
	"testing"

	"edgealloc/internal/baseline"
	"edgealloc/internal/scenario"
)

// TestCertificateNeverExceedsExactOptimum sweeps seeds and both scenario
// families, asserting on every run that the certified lower bound stays
// below the exact LP optimum of P0 and of the transformed P1 — the weak
// duality guarantee the certificate is built on. (testing/quick is not
// used here because each trial costs a full solve; a fixed seed sweep
// keeps the runtime bounded while still varying prices, traces, and
// workloads.)
func TestCertificateNeverExceedsExactOptimum(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-solve sweep")
	}
	for seed := int64(101); seed <= 106; seed++ {
		for _, family := range []string{"rome", "walk"} {
			cfg := scenario.Config{Users: 4, Horizon: 4, Seed: seed}
			in, _, err := scenario.Rome(cfg)
			if family == "walk" {
				in, _, err = scenario.RandomWalkRome(cfg)
			}
			if err != nil {
				t.Fatal(err)
			}
			alg := NewOnlineApprox(in, Options{})
			sched, err := alg.Run()
			if err != nil {
				t.Fatalf("%s/%d: %v", family, seed, err)
			}
			cert, err := alg.Certificate()
			if err != nil {
				t.Fatalf("%s/%d: %v", family, seed, err)
			}
			if v := cert.Feasibility.Max(); v > 1e-5 {
				t.Errorf("%s/%d: dual residual %g (construction should be exact up to solver precision)", family, seed, v)
			}
			_, opt, err := baseline.ExactOffline(in)
			if err != nil {
				t.Fatalf("%s/%d: %v", family, seed, err)
			}
			slack := 1e-6 * (1 + opt)
			if cert.LowerBoundP0() > opt+slack {
				t.Errorf("%s/%d: certified %g exceeds exact optimum %g",
					family, seed, cert.LowerBoundP0(), opt)
			}
			b, err := in.Evaluate(sched)
			if err != nil {
				t.Fatal(err)
			}
			if total := in.Total(b); total < opt-slack {
				t.Errorf("%s/%d: online %g beat the offline optimum %g", family, seed, total, opt)
			}
		}
	}
}
