package core

import (
	"errors"
	"math"
	"testing"

	"edgealloc/internal/baseline"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

const feasTol = 1e-5

func totalOf(t *testing.T, in *model.Instance, s model.Schedule) float64 {
	t.Helper()
	b, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	return in.Total(b)
}

func runApprox(t *testing.T, in *model.Instance, opts Options) (*OnlineApprox, model.Schedule) {
	t.Helper()
	alg := NewOnlineApprox(in, opts)
	s, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, feasTol); err != nil {
		t.Fatalf("approx schedule infeasible: %v", err)
	}
	return alg, s
}

func TestOnlineApproxBeatsGreedyOnFig1a(t *testing.T) {
	// The paper's headline anecdote: greedy pays 11.5 on example (a),
	// the optimum is 9.6, and the regularized algorithm lands near the
	// optimum because its migration entropy resists the price bait.
	in := model.ToyExampleA()
	_, s := runApprox(t, in, Options{})
	got := totalOf(t, in, s)
	if got >= 11.4 {
		t.Errorf("approx on (a) = %g — no better than greedy's 11.5", got)
	}
	if got < 9.6-1e-9 {
		t.Errorf("approx on (a) = %g below the offline optimum 9.6 (impossible)", got)
	}
}

func TestOnlineApproxNearOptimalOnFig1b(t *testing.T) {
	in := model.ToyExampleB()
	_, s := runApprox(t, in, Options{})
	got := totalOf(t, in, s)
	if got < 9.5-1e-9 {
		t.Errorf("approx on (b) = %g below the offline optimum 9.5", got)
	}
	if got > 11.3 {
		t.Errorf("approx on (b) = %g — worse than greedy's conservative 11.3", got)
	}
}

func TestOnlineApproxFeasibleOnRomeScenario(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 12, Horizon: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, s := runApprox(t, in, Options{})
	// Theorem 1: capacity respected even though P2 uses complement rows.
	for t2, x := range s {
		for i, load := range x.CloudTotals() {
			if load > in.Capacity[i]*(1+1e-4) {
				t.Errorf("slot %d cloud %d: load %g > capacity %g (Theorem 1 violated)",
					t2, i, load, in.Capacity[i])
			}
		}
	}
}

func TestOnlineApproxWithinRatioBoundOfOffline(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 5, Horizon: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, s := runApprox(t, in, Options{})
	algCost := totalOf(t, in, s)
	_, opt, err := baseline.ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	if algCost < opt-1e-6 {
		t.Fatalf("online cost %g below offline optimum %g", algCost, opt)
	}
	bound := RatioBound(in, 1, 1)
	if algCost > bound*opt {
		t.Errorf("online cost %g exceeds r·OPT = %g·%g (Theorem 2)", algCost, bound, opt)
	}
	// And empirically it should be far closer than the loose bound.
	if ratio := algCost / opt; ratio > 2.0 {
		t.Errorf("empirical ratio %g implausibly large for this scale", ratio)
	}
}

func TestStepOutOfOrder(t *testing.T) {
	in := model.ToyExampleA()
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Step(1); err == nil {
		t.Fatal("Step(1) accepted before Step(0)")
	}
	if _, err := alg.Step(0); err != nil {
		t.Fatal(err)
	}
	if _, err := alg.Step(0); err == nil {
		t.Fatal("Step(0) accepted twice")
	}
}

func TestCertificateRequiresCompleteRun(t *testing.T) {
	in := model.ToyExampleA()
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Certificate(); !errors.Is(err, ErrIncompleteRun) {
		t.Fatalf("err = %v, want ErrIncompleteRun", err)
	}
}

func TestCertificateBoundsOfflineOptimum(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	alg, s := runApprox(t, in, Options{})
	cert, err := alg.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	offSched, opt, err := baseline.ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	// Weak duality: D (plus the access constant) lower-bounds OPT(P1),
	// which is itself at most P1 evaluated at any feasible schedule.
	p1, err := in.EvaluateP1(offSched)
	if err != nil {
		t.Fatal(err)
	}
	slack := 1e-3 * (1 + math.Abs(in.Total(p1)))
	if cert.LowerBoundP1() > in.Total(p1)+slack {
		t.Errorf("certificate %g exceeds P1 at the offline schedule %g",
			cert.LowerBoundP1(), in.Total(p1))
	}
	// And the P0 bound must sit below the exact P0 optimum.
	if cert.LowerBoundP0() > opt+slack {
		t.Errorf("certified P0 bound %g exceeds exact optimum %g", cert.LowerBoundP0(), opt)
	}
	// The algorithm's own cost must exceed the bound (sanity).
	if algCost := totalOf(t, in, s); algCost < cert.LowerBoundP0()-slack {
		t.Errorf("algorithm cost %g below its own certified bound %g",
			algCost, cert.LowerBoundP0())
	}
}

func TestCertificateDualFeasibilitySmall(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 6, Horizon: 6, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	alg, _ := runApprox(t, in, Options{})
	cert, err := alg.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	// Lemma 2 holds exactly at KKT points; numerically we ask for small
	// violations relative to the price scale (~1).
	if v := cert.Feasibility.Max(); v > 0.05 {
		t.Errorf("dual feasibility violation %g too large (%+v)", v, cert.Feasibility)
	}
	if cert.D <= 0 {
		t.Errorf("certificate D = %g, want positive", cert.D)
	}
}

func TestRatioBoundMonotoneDecreasingInEpsilon(t *testing.T) {
	in := model.ToyExampleA()
	prev := math.Inf(1)
	for _, eps := range []float64{1e-3, 1e-1, 1, 10, 1e3} {
		r := RatioBound(in, eps, eps)
		if r <= 1 {
			t.Fatalf("RatioBound(%g) = %g, want > 1", eps, r)
		}
		if r > prev+1e-9 {
			t.Errorf("RatioBound not decreasing at eps=%g: %g > %g", eps, r, prev)
		}
		prev = r
	}
}

func TestSolveResetsState(t *testing.T) {
	in := model.ToyExampleA()
	alg := NewOnlineApprox(in, Options{})
	s1, err := alg.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := alg.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	for t2 := range s1 {
		for k := range s1[t2].X {
			if math.Abs(s1[t2].X[k]-s2[t2].X[k]) > 1e-9 {
				t.Fatal("Solve is not reproducible on repeated calls")
			}
		}
	}
}

func TestEpsilonAffectsDecisions(t *testing.T) {
	// Large ε flattens the regularizer (less inertia); tiny ε makes the
	// algorithm sticky. The two settings should produce different totals
	// on example (a).
	in := model.ToyExampleA()
	_, sTiny := runApprox(t, in, Options{Epsilon1: 1e-3, Epsilon2: 1e-3})
	_, sBig := runApprox(t, in, Options{Epsilon1: 1e3, Epsilon2: 1e3})
	cTiny := totalOf(t, in, sTiny)
	cBig := totalOf(t, in, sBig)
	if math.Abs(cTiny-cBig) < 1e-6 {
		t.Errorf("ε had no effect: %g vs %g", cTiny, cBig)
	}
}
