package core

import (
	"context"
	"fmt"
	"math"
	"os"
	"sync/atomic"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/shard"
	"edgealloc/internal/solver/shardrpc"
)

// This file implements the user-sharded solving layer of the online
// algorithm (Options.Shards; DESIGN.md §7e). The J users are split into S
// contiguous shards, each solving its own reduced P2 — static cost,
// migration regularizer, and demand rows over its users only, on its own
// ragged candidate set, with its own ALM/FISTA workspace — in parallel,
// while the internal/solver/shard coordinator runs a sharing-ADMM loop on
// the per-cloud totals that carries the reconfiguration regularizer and
// the complement/capacity rows. The coordination prices play the role the
// capacity multipliers play in the monolithic solve; on convergence the
// shard demand duals assemble into θ' and the coordinator's consensus
// subproblem supplies ρ' and ν' in the standard dual layout, so the
// certificate and conformance machinery consume the assembled result
// exactly as they consume the monolithic one.
//
// Candidate sets (Options.Candidates) compose per shard: each shard seeds
// its users' nearest-cloud sets plus carryover support, and after the
// coordination loop converges the same KKT pricing pass as sparse.go
// re-admits mispriced pruned pairs — using the assembled θ/ρ/ν — and the
// coordination resumes warm until no pair prices negative.
type shardState struct {
	parts  []shard.Range
	blocks []*shardBlock
	coord  *shard.Coordinator
	// remotes[si] is the RPC transport placing block si on a shard worker
	// (Options.ShardWorkers; nil when solving in-process). remoteDead
	// tracks fold transitions for the stats counter.
	remotes    []*shardrpc.RemoteBlock
	remoteDead []bool
	// nearest[a] lists the Options.Candidates clouds closest to cloud a;
	// nil when Candidates is off, in which case allClouds admits the full
	// variable space of every shard.
	nearest   [][]int
	allClouds []int
	duals     []float64 // assembled [θ(J) | ρ(I) | ν(I)]
	xDense    []float64 // dense scatter of the assembled decision
	blockSecs []float64 // per-shard solve seconds of the current slot
	rcln      []float64 // per-cloud reconfiguration gradient at the optimum
	restTot   []float64 // per-cloud totals scratch for restoreCapacity
	incrBase  []float64 // per-cloud gradient scratch of the freeze gate
	// committed reports that at least one slot committed its warm state,
	// so the carried duals and decision are trustworthy freeze inputs
	// (Options.Incremental).
	committed bool
	stats     ShardStats
	res       alm.Result // result view over the assembled duals
}

// ShardStats counts the work of the sharded path for observability;
// retrieve with OnlineApprox.ShardStats.
type ShardStats struct {
	// Slots is the number of slots solved on the sharded path.
	Slots int
	// Rounds is the total number of coordination runs; Rounds − Slots is
	// the number of candidate-expansion re-runs the pricing pass caused.
	Rounds int
	// CoordIters is the total number of coordination (outer dual-ascent)
	// iterations across all slots.
	CoordIters int
	// Expanded is the total number of (i, j) pairs re-admitted by pricing.
	Expanded int
	// FinalNNZ is Σ over shards of the packed size of the most recent
	// certified solve.
	FinalNNZ int
	// BlockOuter/BlockInner sum the shard subproblems' ALM outer and FISTA
	// inner iterations; ZOuter/ZInner count the consensus subproblem's.
	BlockOuter, BlockInner int
	ZOuter, ZInner         int
	// MaxResidual is the final consensus/capacity residual of the most
	// recent slot, and MaxSeconds the slowest shard's cumulative solve
	// time on that slot.
	MaxResidual float64
	MaxSeconds  float64
	// Restored is the total mass moved by the capacity restoration pass
	// across all slots — materially nonzero only when a coordination loop
	// exhausted ShardMaxIters above ShardPrimalTol.
	Restored float64
	// Frozen is the total number of users whose shard skipped its block
	// solves (Options.Incremental; zero otherwise), and Readmitted the
	// total number of users the freeze gate thawed back in.
	Frozen     int
	Readmitted int
	// RemoteFallbacks counts remote blocks folded back into local solving
	// (Options.ShardWorkers; zero otherwise). A folded block re-probes its
	// worker at the next few slot boundaries, so one flapping worker can
	// contribute several folds.
	RemoteFallbacks int
}

// ShardStats returns the sharded-path work counters (zero value when the
// sharded path is disabled).
func (o *OnlineApprox) ShardStats() ShardStats {
	if o.shrd == nil {
		return ShardStats{}
	}
	return o.shrd.stats
}

// initShard builds the per-instance sharded state: the user partition,
// one block per shard, and the coordinator holding the consensus problem.
func (o *OnlineApprox) initShard(in *model.Instance) {
	parts := shard.Partition(in.J, o.opts.Shards)
	s := &shardState{
		parts:     parts,
		blocks:    make([]*shardBlock, len(parts)),
		duals:     make([]float64, in.J+2*in.I),
		xDense:    make([]float64, in.I*in.J),
		blockSecs: make([]float64, len(parts)),
		rcln:      make([]float64, in.I),
		restTot:   make([]float64, in.I),
		incrBase:  make([]float64, in.I),
	}
	if o.opts.Candidates > 0 {
		s.nearest = model.NearestClouds(in.InterDelay, o.opts.Candidates)
	} else {
		s.allClouds = make([]int, in.I)
		for i := range s.allClouds {
			s.allClouds[i] = i
		}
	}
	sopts := o.opts.Solver
	sopts.Workers = 0 // shards solve serially inside; parallelism is across shards
	ifaces := make([]shard.Block, len(parts))
	for si, rng := range parts {
		nJ := rng.Len()
		b := &shardBlock{
			st:        s,
			rng:       rng,
			nJ:        nJ,
			builder:   model.NewCandidateBuilder(in.I, nJ),
			xLocal:    make([]float64, in.I*nJ),
			thetaIter: make([]float64, nJ),
			thetaWarm: make([]float64, nJ),
			demand:    in.Workload[rng.Lo:rng.Hi],
			served:    make([]float64, nJ),
			sopts:     sopts,
		}
		rows := make([]alm.GroupRow, nJ)
		for jl := 0; jl < nJ; jl++ {
			rows[jl] = alm.GroupRow{Kind: alm.GroupUserSum, Index: jl, RHS: in.Workload[rng.Lo+jl]}
		}
		b.groups = alm.Groups{I: in.I, J: nJ, Blocks: 1, Rows: rows}
		b.obj = p2ShardObjective{
			nI:     in.I,
			eps2:   o.opts.Epsilon2,
			fast:   o.opts.FastMath,
			fast32: o.opts.FastMathF32,
		}
		s.blocks[si] = b
		ifaces[si] = b
	}
	if workers := o.opts.ShardWorkers; len(workers) > 0 {
		copts := shardrpc.ClientOptions{
			Timeout: o.opts.ShardRPCTimeout,
			Retries: o.opts.ShardRPCRetries,
			Metrics: o.opts.Metrics,
		}
		clients := make([]*shardrpc.Client, len(workers))
		for w, base := range workers {
			clients[w] = shardrpc.NewClient(base, copts)
		}
		// Block IDs must be unique across every coordinator a worker may
		// serve concurrently (several edged replicas, several harness
		// runs), so they carry the process ID and a per-process run
		// counter.
		run := shardRunSeq.Add(1)
		s.remotes = make([]*shardrpc.RemoteBlock, len(parts))
		s.remoteDead = make([]bool, len(parts))
		for si := range parts {
			id := fmt.Sprintf("p%d-r%d-s%d", os.Getpid(), run, si)
			s.remotes[si] = shardrpc.NewRemoteBlock(clients[si%len(clients)], id, s.blocks[si])
			ifaces[si] = s.remotes[si]
		}
	}
	lambda := in.TotalWorkload()
	complRHS := make([]float64, in.I)
	for i := 0; i < in.I; i++ {
		if rhs := lambda - in.Capacity[i]; rhs > 0 {
			complRHS[i] = rhs
		}
	}
	s.coord = shard.NewCoordinator(in.I, ifaces, shard.Coupling{
		RcFac:    o.obj.rcFac,
		PrevTot:  o.obj.prevTot, // rebound in place by o.obj.bind each slot
		Eps1:     o.opts.Epsilon1,
		Capacity: in.Capacity,
		ComplRHS: complRHS,
	}, shard.Options{
		Rho:       o.opts.ShardRho,
		MaxIters:  o.opts.ShardMaxIters,
		PrimalTol: o.opts.ShardPrimalTol,
		DualTol:   o.opts.ShardDualTol,
		Workers:   o.opts.Solver.Workers,
		Solver:    zStepOptions(o.opts.Solver),
	})
	o.shrd = s
}

// shardRunSeq disambiguates the remote-block IDs of coordinators living
// in the same process (see initShard).
var shardRunSeq atomic.Uint64

// zStepOptions derives the coordinator's consensus z-step budget from the
// block budget. The z-step is an I-dimensional program (one variable per
// cloud) — orders of magnitude cheaper than any block solve — and the
// assembled schedule's feasibility rests on its accuracy, so it always
// gets at least the shard package's tight default budget even when the
// blocks run under a throughput-tuned (low-iteration) budget.
func zStepOptions(blk alm.Options) alm.Options {
	z := blk
	z.Workers = 0
	if z.MaxOuter < 40 {
		z.MaxOuter = 40
	}
	if z.InnerIters < 300 {
		z.InnerIters = 300
	}
	if z.FeasTol <= 0 || z.FeasTol > 1e-9 {
		z.FeasTol = 1e-9
	}
	if z.DualTol <= 0 || z.DualTol > 1e-7 {
		z.DualTol = 1e-7
	}
	return z
}

// solveShard runs slot t's sharded solve: per-shard candidate seeding and
// packed binds, the coordination loop, and (with Candidates on) the KKT
// pricing pass over pruned pairs until certified. It returns a result
// whose duals are the assembled [θ | ρ | ν] and the dense scatter of the
// assembled decision; both alias shard scratch, valid until the next call.
func (o *OnlineApprox) solveShard(ctx context.Context, t int) (*alm.Result, []float64, error) {
	in, s := o.inst, o.shrd

	warmDense := o.prev.X
	if t == 0 && allZero(o.prev.X) {
		// Same regime as the monolithic paths: from x_{·,·,0} = 0 start all
		// shards at the slot's demand-tight transportation optimum.
		if warm, err := feasibleWarmStart(in, t); err == nil {
			warmDense = warm
		}
	}
	for _, b := range s.blocks {
		// Incremental freezing (Options.Incremental): a shard whose whole
		// user range kept its attachment holds the carried decision and
		// skips its block solves, certified by the gate below. beginSlot
		// still runs so a mid-slot thaw re-enters with a valid bind.
		b.frozen = o.opts.Incremental && t > 0 && s.committed && blockUntouched(in, t, b.rng)
		b.beginSlot(o, warmDense, t, ctx)
	}
	for _, rb := range s.remotes {
		rb.BeginSlot(t, ctx)
	}
	s.coord.BeginSlot()
	for i := range s.blockSecs {
		s.blockSecs[i] = 0
	}

	var cres *shard.Result
	blockOuter, blockInner, zOuter, zInner := 0, 0, 0, 0
	coordIters := 0
	for {
		s.stats.Rounds++
		r, err := s.coord.Solve(ctx)
		if err != nil {
			return nil, nil, err
		}
		cres = r
		coordIters += r.Iters
		blockOuter += r.BlockOuter
		blockInner += r.BlockInner
		zOuter += r.ZOuter
		zInner += r.ZInner
		for i, sec := range r.BlockSeconds {
			s.blockSecs[i] += sec
		}
		// Pull remote post-round state into the mirrors before anything
		// below reads block iterates or duals. A block that failed to sync
		// reverts to its round-start state, so its contribution to the
		// assembled result must be re-derived: lost > 0 forces another
		// coordination round (bounded — a repeatedly failing block folds
		// back to local solving, after which its sync is trivially clean).
		lost := s.syncRemotes()
		thawed := 0
		if o.opts.Incremental {
			if !r.Converged {
				// An unconverged coordination certifies nothing: thaw every
				// frozen shard and resume.
				thawed = s.thawFrozen()
			} else {
				thawed = o.gateFrozenShard(r)
			}
		}
		added := 0
		if o.opts.Candidates > 0 {
			added = o.priceAndExpandShard(r)
		}
		if thawed == 0 && added == 0 && lost == 0 {
			break
		}
		s.stats.Expanded += added
		s.stats.Readmitted += thawed
		for si, b := range s.blocks {
			if b.dirty {
				b.rebind(o)
				if s.remotes != nil {
					// The candidate relayout changed the packed geometry;
					// the worker's copy is invalid until re-pushed.
					s.remotes[si].Invalidate()
				}
			}
		}
	}

	// Assemble the decision and the standard dual layout.
	for k := range s.xDense {
		s.xDense[k] = 0
	}
	nnz := 0
	for _, b := range s.blocks {
		b.scatterInto(s.xDense, in.J)
		copy(s.duals[b.rng.Lo:b.rng.Hi], b.thetaIter)
		nnz += b.cand.NNZ()
	}
	copy(s.duals[in.J:in.J+in.I], cres.RhoDuals)
	copy(s.duals[in.J+in.I:in.J+2*in.I], cres.NuDuals)
	s.stats.Restored += s.restoreCapacity(in)

	// Commit the warm state only now: a slot aborted above leaves the
	// coordinator prices and shard duals exactly as the last successful
	// slot wrote them, matching StepCtx's cancellation contract.
	s.coord.CommitSlot()
	for _, rb := range s.remotes {
		rb.Commit()
	}
	s.committed = true
	maxSec := 0.0
	for i, b := range s.blocks {
		copy(b.thetaWarm, b.thetaIter)
		if s.blockSecs[i] > maxSec {
			maxSec = s.blockSecs[i]
		}
		if b.frozen {
			s.stats.Frozen += b.nJ
		}
	}

	s.stats.Slots++
	s.stats.CoordIters += coordIters
	s.stats.BlockOuter += blockOuter
	s.stats.BlockInner += blockInner
	s.stats.ZOuter += zOuter
	s.stats.ZInner += zInner
	s.stats.FinalNNZ = nnz
	s.stats.MaxResidual = cres.MaxResidual
	s.stats.MaxSeconds = maxSec

	s.res = alm.Result{
		Duals:      s.duals,
		Outer:      blockOuter + zOuter,
		InnerIters: blockInner + zInner,
		Converged:  cres.Converged,
	}
	return &s.res, s.xDense, nil
}

// blockUntouched reports whether every user in rng kept its attachment
// from slot t−1 to t — the per-shard delta test of the incremental tier.
// Attachment is the only per-user slot input of P2 (see incremental.go),
// so an untouched block's subproblem differs from the previous slot's
// only through the coordination prices, which the gate certifies.
func blockUntouched(in *model.Instance, t int, rng shard.Range) bool {
	for j := rng.Lo; j < rng.Hi; j++ {
		if in.Attach[t][j] != in.Attach[t-1][j] {
			return false
		}
	}
	return true
}

// syncRemotes pulls every remote block's post-round state into its
// mirror (no-op in-process), returning the number of blocks whose sync
// failed — their mirrors hold round-start state, so the caller must run
// another coordination round before assembling the result. It also
// moves fold transitions into the stats counter.
func (s *shardState) syncRemotes() int {
	lost := 0
	for si, rb := range s.remotes {
		if err := rb.SyncState(); err != nil {
			lost++
		}
		if rb.Dead() {
			if !s.remoteDead[si] {
				s.remoteDead[si] = true
				s.stats.RemoteFallbacks++
			}
		} else {
			s.remoteDead[si] = false
		}
	}
	return lost
}

// thawFrozen re-admits every frozen shard, restoring its committed
// demand duals, and returns the number of users thawed.
func (s *shardState) thawFrozen() int {
	n := 0
	for _, b := range s.blocks {
		if b.frozen {
			copy(b.thetaIter, b.thetaWarm)
			b.frozen = false
			n += b.nJ
		}
	}
	return n
}

// gateFrozenShard certifies every frozen shard's carried decision
// against the coordination result — the same per-column KKT test as
// gateFrozen (incremental.go), with ρ/ν from the consensus subproblem
// and the reconfiguration gradient at the assembled totals. A violating
// user thaws its whole shard (restoring the committed θ warm start);
// certified users take θ_j = max(0, min_i g_ij) so the assembled dual
// record embeds the full program's KKT point. Returns users thawed.
func (o *OnlineApprox) gateFrozenShard(r *shard.Result) int {
	in, s := o.inst, o.shrd
	nI, nJ := in.I, in.J
	any := false
	for _, b := range s.blocks {
		if b.frozen {
			any = true
			break
		}
	}
	if !any {
		return 0
	}
	eps1 := o.opts.Epsilon1
	for i := 0; i < nI; i++ {
		s.rcln[i] = o.obj.rcFac[i] * math.Log((r.Totals[i]+eps1)/(o.obj.prevTot[i]+eps1))
	}
	rho, nu := r.RhoDuals, r.NuDuals
	rhoSum := 0.0
	for _, v := range rho {
		rhoSum += v
	}
	base := s.incrBase
	for i := 0; i < nI; i++ {
		base[i] = s.rcln[i] - (rhoSum - rho[i]) + nu[i]
	}
	tol := o.opts.IncrementalTol
	thawed := 0
	for _, b := range s.blocks {
		if !b.frozen {
			continue
		}
		viol := false
	users:
		for jl := 0; jl < b.nJ; jl++ {
			j := b.rng.Lo + jl
			aMin := math.Inf(1)
			for i := 0; i < nI; i++ {
				if g := o.obj.coef[i*nJ+j] + base[i]; g < aMin {
					aMin = g
				}
			}
			for i := 0; i < nI; i++ {
				d := i*nJ + j
				if o.obj.prev[d] <= 0 {
					continue
				}
				c := o.obj.coef[d]
				g := c + base[i]
				sc := tol * (1 + math.Abs(c))
				if g-aMin > sc || g < -sc {
					viol = true
					break users
				}
			}
			if aMin > 0 {
				b.thetaIter[jl] = aMin
			} else {
				b.thetaIter[jl] = 0
			}
		}
		if viol {
			copy(b.thetaIter, b.thetaWarm)
			b.frozen = false
			thawed += b.nJ
		}
	}
	return thawed
}

// restoreCapacity projects the assembled schedule onto exact capacity
// feasibility, returning the total mass moved. When the coordination loop
// exhausts ShardMaxIters above ShardPrimalTol (inevitable when the block
// budget's feasibility noise exceeds the requested consensus tolerance),
// the assembled totals can exceed the consensus point's capacity-feasible
// totals by up to the final residual; left alone, that residual leaks
// into a Theorem-1 capacity violation on tight instances. Because
// projectDemand makes every demand row exact, Σ_i X_i equals the total
// workload, so the complement rows are equivalent to the capacity rows
// and restoring capacity alone restores full Theorem-1 feasibility. Each
// over-capacity cloud's row is scaled onto its capacity and every user's
// shaved mass moves to clouds with slack (lowest index first, keeping the
// user's demand row exact); deposits never push a cloud past capacity, so
// one pass in cloud order terminates with every total at or under
// capacity whenever aggregate slack exists. If the instance itself is
// over-subscribed the remainder is returned to its origin — demand stays
// exact and the conformance oracle reports the genuine infeasibility. On
// a converged slot the pass moves at most roundoff-level mass; it is
// deterministic and allocation-free either way.
func (s *shardState) restoreCapacity(in *model.Instance) float64 {
	nJ := in.J
	tot := s.restTot
	for i := 0; i < in.I; i++ {
		t := 0.0
		for _, v := range s.xDense[i*nJ : (i+1)*nJ] {
			t += v
		}
		tot[i] = t
	}
	moved := 0.0
	for i := 0; i < in.I; i++ {
		capi := in.Capacity[i]
		if tot[i] <= capi {
			continue
		}
		f := capi / tot[i]
		row := s.xDense[i*nJ : (i+1)*nJ]
		returned := 0.0
		for j, v := range row {
			if v <= 0 {
				continue
			}
			shave := v * (1 - f)
			row[j] = v * f
			for k := 0; k < in.I && shave > 0; k++ {
				if k == i || tot[k] >= in.Capacity[k] {
					continue
				}
				d := in.Capacity[k] - tot[k]
				if d > shave {
					d = shave
				}
				s.xDense[k*nJ+j] += d
				tot[k] += d
				moved += d
				shave -= d
			}
			if shave > 0 {
				row[j] += shave
				returned += shave
			}
		}
		tot[i] = capi + returned
	}
	return moved
}

// priceAndExpandShard is the sharded pricing pass: the same KKT
// stationarity test as priceAndExpand, evaluated with the assembled duals
// — θ from each user's owning shard, ρ/ν from the consensus subproblem —
// and the reconfiguration gradient at the assembled totals. Violated
// pruned pairs join their shard's candidate set and mark it for rebind.
func (o *OnlineApprox) priceAndExpandShard(r *shard.Result) int {
	in, s := o.inst, o.shrd
	nI, nJ := in.I, in.J
	eps1 := o.opts.Epsilon1
	for i := 0; i < nI; i++ {
		s.rcln[i] = o.obj.rcFac[i] * math.Log((r.Totals[i]+eps1)/(o.obj.prevTot[i]+eps1))
	}
	rho := r.RhoDuals
	nu := r.NuDuals
	rhoSum := 0.0
	for _, v := range rho {
		rhoSum += v
	}
	tol := o.opts.CandidateTol
	added := 0
	for _, b := range s.blocks {
		if b.frozen {
			// The gate certifies frozen users over all I clouds, which
			// subsumes this pass; an admitted pair would never be solved.
			continue
		}
		for i := 0; i < nI; i++ {
			row := o.obj.coef[i*nJ+b.rng.Lo : i*nJ+b.rng.Hi]
			base := s.rcln[i] - (rhoSum - rho[i]) + nu[i]
			for jl, c := range row {
				if b.builder.Contains(i, jl) {
					continue
				}
				if c+base-b.thetaIter[jl] < -tol*(1+math.Abs(c)) {
					b.builder.Add(i, jl)
					added++
					b.dirty = true
				}
			}
		}
	}
	return added
}

// shardBlock is one shard's local subproblem: its users' slice of P2 over
// a ragged candidate set, solved by ALM with only the demand rows (the
// coupling rows live in the coordinator). It implements shard.Block.
type shardBlock struct {
	st  *shardState
	rng shard.Range
	nJ  int

	builder *model.CandidateBuilder
	cand    model.CandidateSet
	groups  alm.Groups
	obj     p2ShardObjective
	ws      alm.Workspace
	sopts   alm.Options

	lower []float64 // packed zeros, grown on demand
	warm  []float64 // packed iterate: warm start in, solution out
	// xLocal is the block's I×nJ dense image, the bridge across candidate
	// relayouts: the slot's warm start scatters in, rebinds gather out.
	xLocal []float64
	// thetaIter are the working demand duals (θ'_j for the block's users,
	// warm across coordination iterations and pricing rounds); thetaWarm
	// is the committed copy promoted only on slot success.
	thetaIter []float64
	thetaWarm []float64
	// demand is the block users' workload slice (aliases in.Workload);
	// served is per-user scratch for the demand projection after each
	// block solve.
	demand []float64
	served []float64
	dirty  bool
	// frozen holds this slot's incremental freeze decision: the block's
	// users all kept their attachment and the gate has not thawed it, so
	// Solve skips the ALM solve and reports the carried totals.
	frozen bool
}

var _ shard.Block = (*shardBlock)(nil)

// beginSlot seeds the block for slot t: the local warm image from the
// global warm point, the candidate sets (nearest clouds by attachment
// plus warm support, or the full grid when candidates are off), the
// packed bind, and the working duals from the committed warm duals.
func (b *shardBlock) beginSlot(o *OnlineApprox, warmDense []float64, t int, ctx context.Context) {
	in, s := o.inst, o.shrd
	nJ := in.J
	for i := 0; i < in.I; i++ {
		copy(b.xLocal[i*b.nJ:(i+1)*b.nJ], warmDense[i*nJ+b.rng.Lo:i*nJ+b.rng.Hi])
	}
	b.builder.Reset()
	for jl := 0; jl < b.nJ; jl++ {
		if s.nearest != nil {
			b.builder.AddUserSet(jl, s.nearest[in.Attach[t][b.rng.Lo+jl]])
		} else {
			b.builder.AddUserSet(jl, s.allClouds)
		}
	}
	b.builder.AddSupport(b.xLocal)
	b.builder.Build(&b.cand)
	b.bind(o)
	copy(b.thetaIter, b.thetaWarm)
	b.obj.hits, b.obj.misses = 0, 0
	b.sopts.Ctx = ctx
	b.dirty = false
}

// rebind relayouts the block after a candidate expansion: the current
// packed solution scatters into the local dense image, the builder
// rebuilds the CSR, and the packed buffers regather. The demand-dual
// dimension is per-user, so thetaIter carries over unchanged.
func (b *shardBlock) rebind(o *OnlineApprox) {
	for k := range b.xLocal {
		b.xLocal[k] = 0
	}
	for i := 0; i < b.obj.nI; i++ {
		base := i * b.nJ
		for k := b.cand.RowPtr[i]; k < b.cand.RowPtr[i+1]; k++ {
			b.xLocal[base+b.cand.Cols[k]] = b.warm[k]
		}
	}
	b.builder.Build(&b.cand)
	b.bind(o)
	b.dirty = false
}

// bind sizes the packed buffers for the current candidate set and gathers
// the slot's coefficients, previous decision, migration factors, and warm
// start from the dense objective state and the local dense image
// (mirroring bindSparse, restricted to the block's user columns).
func (b *shardBlock) bind(o *OnlineApprox) {
	in := o.inst
	do := o.obj
	so := &b.obj
	nnz := b.cand.NNZ()
	so.rowPtr, so.cols = b.cand.RowPtr, b.cand.Cols
	so.coef = growFloats(so.coef, nnz)
	so.prev = growFloats(so.prev, nnz)
	so.mgFac = growFloats(so.mgFac, nnz)
	b.lower = growFloats(b.lower, nnz) // stays all-zero
	b.warm = growFloats(b.warm, nnz)
	switch {
	case !so.fast:
		so.lastNum = growFloats(so.lastNum, nnz)
		so.lastLg2 = growFloats(so.lastLg2, nnz)
	case so.fast32:
		so.invDen32 = growFloats32(so.invDen32, nnz)
		so.ratio32 = growFloats32(so.ratio32, nnz)
	default:
		so.invDen = growFloats(so.invDen, nnz)
		so.ratio = growFloats(so.ratio, nnz)
	}
	nJ := in.J
	for i := 0; i < in.I; i++ {
		base := i*nJ + b.rng.Lo
		lbase := i * b.nJ
		for k := b.cand.RowPtr[i]; k < b.cand.RowPtr[i+1]; k++ {
			jl := b.cand.Cols[k]
			so.coef[k] = do.coef[base+jl]
			so.prev[k] = do.prev[base+jl]
			so.mgFac[k] = do.mgFac[base+jl]
			b.warm[k] = b.xLocal[lbase+jl]
			if !so.fast {
				so.lastNum[k] = math.NaN() // invalidate the log cache
			}
		}
	}
	if so.fast {
		if so.fast32 {
			entropyInvDen32(so.invDen32, so.prev, so.eps2)
		} else {
			entropyInvDen(so.invDen, so.prev, so.eps2)
		}
	}
	b.groups.RowPtr, b.groups.Cols = b.cand.RowPtr, b.cand.Cols
}

// Solve implements shard.Block: one warm ALM solve of the block's demand-
// constrained subproblem under the coordinator's consensus penalty.
func (b *shardBlock) Solve(rho float64, target, totals []float64) (int, int, error) {
	if b.frozen {
		// Frozen shard: the carried decision (the slot's warm start, which
		// is the previous post-repair decision restricted to the block) is
		// held fixed; only its totals feed the coordination.
		b.totalsInto(totals, b.warm[:b.cand.NNZ()])
		return 0, 0, nil
	}
	nnz := b.cand.NNZ()
	b.obj.rho = rho
	b.obj.target = target
	prob := alm.Problem{Obj: &b.obj, N: nnz, Lower: b.lower[:nnz], Groups: &b.groups}
	sopts := b.sopts
	sopts.Workspace = &b.ws
	sopts.WarmX = b.warm[:nnz]
	sopts.WarmDuals = b.thetaIter
	res, err := alm.Solve(&prob, sopts)
	if err != nil {
		return 0, 0, err
	}
	copy(b.warm[:nnz], res.X)
	copy(b.thetaIter, res.Duals)
	b.projectDemand()
	b.totalsInto(totals, b.warm[:nnz])
	return res.Outer, res.InnerIters, nil
}

// projectDemand rescales every local user's column so its demand row
// holds exactly. Under a throughput-tuned (low-iteration) block budget
// the ALM solve can leave ~1e-3-relative demand shortfalls; the model
// layer's serve-all repair would then scale columns up AFTER the
// coordination loop certified its residual, silently pushing cloud loads
// past capacity. Projecting here instead keeps the repair a no-op on the
// sharded path, so the coordination primal residual is an honest bound
// on the assembled schedule's relative capacity violation. At tight
// budgets the demand rows already hold to ~1e-10 and the projection is a
// no-op up to floating-point roundoff.
func (b *shardBlock) projectDemand() {
	packedProjectDemand(b.warm[:b.cand.NNZ()], b.cand.Cols, b.demand, b.served)
}

// packedProjectDemand is projectDemand on a packed point: negatives clip
// to zero, then every user column scales onto its demand. served is
// per-user scratch. Shared with the worker-side ShardHost so the remote
// solve is operation-for-operation the local one.
func packedProjectDemand(x []float64, cols []int, demand, served []float64) {
	for jl := range served {
		served[jl] = 0
	}
	for k, v := range x {
		if v < 0 {
			x[k], v = 0, 0
		}
		served[cols[k]] += v
	}
	for jl, s := range served {
		if s > 0 {
			served[jl] = demand[jl] / s
		} else {
			served[jl] = 1
		}
	}
	for k := range x {
		x[k] *= served[cols[k]]
	}
}

// WarmTotalsInto implements shard.Block.
func (b *shardBlock) WarmTotalsInto(totals []float64) {
	b.totalsInto(totals, b.warm[:b.cand.NNZ()])
}

// totalsInto writes the packed point's per-cloud totals.
func (b *shardBlock) totalsInto(tot, x []float64) {
	for i := 0; i < b.obj.nI; i++ {
		s := 0.0
		for _, v := range x[b.cand.RowPtr[i]:b.cand.RowPtr[i+1]] {
			s += v
		}
		tot[i] = s
	}
}

// packedTotalsInto writes a packed point's per-cloud totals (the free
// form of totalsInto, shared with the worker-side ShardHost).
func packedTotalsInto(tot, x []float64, rowPtr []int) {
	for i := 0; i+1 < len(rowPtr); i++ {
		s := 0.0
		for _, v := range x[rowPtr[i]:rowPtr[i+1]] {
			s += v
		}
		tot[i] = s
	}
}

// Frozen implements shardrpc.Mirror: frozen blocks skip their solves
// entirely, so the transport keeps them off the network.
func (b *shardBlock) Frozen() bool { return b.frozen }

// Spec implements shardrpc.Mirror: a deep copy of the block's current
// bind and warm state under the given wire identity. Called at spec
// pushes — once per (slot, relayout, worker restart) — so the copies are
// off every hot path.
func (b *shardBlock) Spec(id string, slot, gen int) *shardrpc.BlockSpec {
	nnz := b.cand.NNZ()
	so := &b.obj
	return &shardrpc.BlockSpec{
		ID:         id,
		Slot:       slot,
		Gen:        gen,
		NI:         so.nI,
		NJ:         b.nJ,
		Eps2:       so.eps2,
		FastMath:   so.fast && !so.fast32,
		FastMath32: so.fast32,
		RowPtr:     append([]int(nil), b.cand.RowPtr...),
		Cols:       append([]int(nil), b.cand.Cols[:nnz]...),
		Coef:       append([]float64(nil), so.coef[:nnz]...),
		Prev:       append([]float64(nil), so.prev[:nnz]...),
		MgFac:      append([]float64(nil), so.mgFac[:nnz]...),
		Warm:       append([]float64(nil), b.warm[:nnz]...),
		Theta:      append([]float64(nil), b.thetaIter...),
		Demand:     append([]float64(nil), b.demand...),
		Solver: shardrpc.SolverOptions{
			MaxOuter:      b.sopts.MaxOuter,
			InnerIters:    b.sopts.InnerIters,
			Penalty:       b.sopts.Penalty,
			PenaltyGrowth: b.sopts.PenaltyGrowth,
			FeasTol:       b.sopts.FeasTol,
			ObjTol:        b.sopts.ObjTol,
			DualTol:       b.sopts.DualTol,
		},
	}
}

// SetState implements shardrpc.Mirror: the worker's post-round iterate
// and demand duals overwrite the mirror's warm state.
func (b *shardBlock) SetState(x, theta []float64) error {
	nnz := b.cand.NNZ()
	if len(x) != nnz || len(theta) != b.nJ {
		return fmt.Errorf("core: shard state size mismatch: got %d vars and %d duals, want %d and %d",
			len(x), len(theta), nnz, b.nJ)
	}
	copy(b.warm[:nnz], x)
	copy(b.thetaIter, theta)
	return nil
}

var _ shardrpc.Mirror = (*shardBlock)(nil)

// scatterInto writes the packed solution into the global dense image.
func (b *shardBlock) scatterInto(dense []float64, nJ int) {
	for i := 0; i < b.obj.nI; i++ {
		base := i*nJ + b.rng.Lo
		for k := b.cand.RowPtr[i]; k < b.cand.RowPtr[i+1]; k++ {
			dense[base+b.cand.Cols[k]] = b.warm[k]
		}
	}
}

// p2ShardObjective evaluates a shard's slice of P2 plus the coordinator's
// consensus penalty over the packed candidate layout: the static and
// migration terms of the kept pairs — term-for-term the same kernels as
// p2SparseObjective — with the reconfiguration regularizer replaced by
// (ρ/2)·Σ_i (X_i − target_i)², whose gradient enters every element of
// cloud row i as ρ·(X_i − target_i) exactly where the monolithic path
// adds the reconfiguration gradient. Shards evaluate serially: the
// parallelism of the sharded path is across shards, not within one.
type p2ShardObjective struct {
	nI     int
	rowPtr []int
	cols   []int

	coef  []float64 // packed weighted static coefficients
	prev  []float64 // packed x'_{ij}
	mgFac []float64 // packed wMg·b_i/τ_ij

	eps2   float64
	rho    float64   // consensus penalty, set per Solve
	target []float64 // per-cloud targets, set per Solve

	// hits/misses count log-cache outcomes on the exact path; plain
	// scalars suffice because the block evaluates single-threaded.
	hits, misses int64

	// Fast-math tier (see p2Objective): packed reciprocals and log
	// scratch, refilled by bind each relayout.
	fast     bool
	fast32   bool
	invDen   []float64
	ratio    []float64
	invDen32 []float32
	ratio32  []float32

	lastNum []float64 // packed log-cache keys (see p2Objective)
	lastLg2 []float64
}

// Eval implements fista.Objective.
func (o *p2ShardObjective) Eval(x, grad []float64) float64 {
	f := 0.0
	for i := 0; i < o.nI; i++ {
		f += o.evalRow(i, x, grad)
	}
	return f
}

// evalRow computes cloud i's slice of the block objective and gradient.
// See p2SparseObjective.evalRow; only the cloud-total term differs.
func (o *p2ShardObjective) evalRow(i int, x, grad []float64) float64 {
	if o.fast {
		return o.evalRowFast(i, x, grad)
	}
	lo, hi := o.rowPtr[i], o.rowPtr[i+1]
	row := x[lo:hi]
	coef := o.coef[lo:hi]
	prev := o.prev[lo:hi]
	mgFac := o.mgFac[lo:hi]
	lastNum := o.lastNum[lo:hi]
	lastLg2 := o.lastLg2[lo:hi]
	if grad == nil {
		s, f, hits, misses := entropyRowValue(row, coef, prev, mgFac, lastNum, lastLg2, o.eps2)
		o.hits += hits
		o.misses += misses
		d := s - o.target[i]
		return f + 0.5*o.rho*d*d
	}
	s := 0.0
	for _, v := range row {
		s += v
	}
	d := s - o.target[i]
	f := 0.5 * o.rho * d * d
	f, hits, misses := entropyRowGrad(row, coef, prev, mgFac, lastNum, lastLg2,
		grad[lo:hi], o.eps2, f, o.rho*d)
	o.hits += hits
	o.misses += misses
	return f
}

// evalRowFast is evalRow on the batch-kernel tier; see
// p2SparseObjective.evalRowFast.
func (o *p2ShardObjective) evalRowFast(i int, x, grad []float64) float64 {
	lo, hi := o.rowPtr[i], o.rowPtr[i+1]
	row := x[lo:hi]
	coef := o.coef[lo:hi]
	mgFac := o.mgFac[lo:hi]
	if o.fast32 {
		ratio := o.ratio32[lo:hi]
		s := entropyRatioPass32(row, o.invDen32[lo:hi], ratio, o.eps2)
		logBatch32(ratio, ratio)
		d := s - o.target[i]
		if grad == nil {
			f := entropyFastValue32(row, coef, mgFac, ratio, o.eps2)
			return f + 0.5*o.rho*d*d
		}
		f := 0.5 * o.rho * d * d
		return entropyFastGrad32(row, coef, mgFac, ratio,
			grad[lo:hi], o.eps2, f, o.rho*d)
	}
	ratio := o.ratio[lo:hi]
	s := entropyRatioPass(row, o.invDen[lo:hi], ratio, o.eps2)
	logBatch(ratio, ratio)
	d := s - o.target[i]
	if grad == nil {
		f := entropyFastValue(row, coef, mgFac, ratio, o.eps2)
		return f + 0.5*o.rho*d*d
	}
	f := 0.5 * o.rho * d * d
	return entropyFastGrad(row, coef, mgFac, ratio,
		grad[lo:hi], o.eps2, f, o.rho*d)
}

// logCacheTotals returns the cache counters accumulated since beginSlot.
func (o *p2ShardObjective) logCacheTotals() (hits, misses int64) {
	return o.hits, o.misses
}
