package core

import (
	"testing"

	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

// TestTheorem1GapWithoutCapacityRows documents the reproduction finding
// recorded in DESIGN.md §3b: solving P2 exactly as printed in the paper —
// demand rows plus complement-capacity rows only — can yield an optimum
// that exceeds some cloud's capacity, contradicting Theorem 1's
// feasibility claim. The test solves slot 0 of a scenario both ways and
// asserts (a) the literal P2 optimum is strictly cheaper than the
// capacity-constrained one (so the violation is not a solver artifact)
// and (b) it indeed breaches capacity.
func TestTheorem1GapWithoutCapacityRows(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 12, Horizon: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	o := NewOnlineApprox(in, Options{})
	obj := newP2Objective(in, 0, o.prev, o.opts.Epsilon1, o.opts.Epsilon2)
	warm, err := feasibleWarmStart(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	all := p2Constraints(in, 0)
	literal := all[:in.J+in.I] // the paper's rows only (demand + complement)

	solve := func(cons []alm.Constraint) *alm.Result {
		res, err := alm.Solve(&alm.Problem{
			Obj: obj, N: in.I * in.J,
			Lower: make([]float64, in.I*in.J),
			Cons:  cons,
		}, alm.Options{MaxOuter: 80, InnerIters: 1200, FeasTol: 1e-7, Penalty: 2, WarmX: warm})
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxViolation > 1e-5 {
			t.Fatalf("solver left violation %g", res.MaxViolation)
		}
		return res
	}

	lit := solve(literal)
	capped := solve(all)

	if lit.Objective >= capped.Objective-1e-3 {
		t.Skip("this seed no longer separates the two optima; the gap needs a cheap, small cloud")
	}

	// The strictly cheaper literal optimum must be the capacity violator.
	overload := 0.0
	for i := 0; i < in.I; i++ {
		load := 0.0
		for j := 0; j < in.J; j++ {
			load += lit.X[i*in.J+j]
		}
		if v := load - in.Capacity[i]; v > overload {
			overload = v
		}
	}
	if overload < 1e-3 {
		t.Fatalf("literal P2 optimum cheaper by %g yet within capacity — unexpected",
			capped.Objective-lit.Objective)
	}
	t.Logf("Theorem-1 gap reproduced: literal optimum %.4f < capped %.4f, worst overload %.4f",
		lit.Objective, capped.Objective, overload)
}
