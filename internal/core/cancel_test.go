package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"edgealloc/internal/model"
)

// countdownCtx is a context whose Err flips to context.Canceled after n
// polls. The solver polls Err between FISTA sweeps, so the flip lands at
// an exact, reproducible point mid-solve — no timing races.
type countdownCtx struct {
	calls, n int
	done     chan struct{}
}

func newCountdownCtx(n int) *countdownCtx {
	return &countdownCtx{n: n, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	c.calls++
	if c.calls > c.n {
		return context.Canceled
	}
	return nil
}

// referenceSchedule runs a fresh, never-cancelled algorithm over the
// instance.
func referenceSchedule(t *testing.T, in *model.Instance, opts Options) model.Schedule {
	t.Helper()
	sched, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return sched
}

func allocsEqual(a, b model.Alloc) bool {
	if a.I != b.I || a.J != b.J || len(a.X) != len(b.X) {
		return false
	}
	for k := range a.X {
		if a.X[k] != b.X[k] {
			return false
		}
	}
	return true
}

// testCancellation drives one algorithm through a horizon, injecting
// cancelled solves before each slot past the first, and requires (a)
// every cancelled StepCtx to return a wrapped context.Canceled promptly
// and (b) the eventually-completed schedule to match the uncancelled
// reference bitwise — i.e. cancellation never perturbs the warm state.
func testCancellation(t *testing.T, in *model.Instance, opts Options) {
	t.Helper()
	want := referenceSchedule(t, in, opts)

	alg := NewOnlineApprox(in, opts)
	for slot := 0; slot < in.T; slot++ {
		if slot > 0 {
			// An already-cancelled context must abort before any work.
			cancelled, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := alg.StepCtx(cancelled, slot); !errors.Is(err, context.Canceled) {
				t.Fatalf("slot %d pre-cancelled: err = %v, want context.Canceled", slot, err)
			}
			// Mid-solve aborts at several poll depths: each must error and
			// leave the state retryable.
			for _, polls := range []int{1, 3, 7} {
				start := time.Now()
				_, err := alg.StepCtx(newCountdownCtx(polls), slot)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("slot %d cancel after %d polls: err = %v, want context.Canceled",
						slot, polls, err)
				}
				if elapsed := time.Since(start); elapsed > 10*time.Second {
					t.Fatalf("slot %d cancel after %d polls took %v, want prompt abort",
						slot, polls, elapsed)
				}
			}
			diag := alg.LastStepDiag()
			if diag.Slot != slot-1 {
				t.Fatalf("slot %d: diagnostics advanced to slot %d despite cancellation",
					slot, diag.Slot)
			}
		}
		got, err := alg.StepCtx(context.Background(), slot)
		if err != nil {
			t.Fatalf("slot %d after cancellations: %v", slot, err)
		}
		if !allocsEqual(got, want[slot]) {
			t.Errorf("slot %d decision differs from uncancelled reference after cancelled attempts", slot)
		}
	}
}

// TestStepCtxCancellationDense exercises the default dense path.
func TestStepCtxCancellationDense(t *testing.T) {
	in := smallRandomInstance(rand.New(rand.NewSource(9)))
	testCancellation(t, in, Options{})
}

// TestStepCtxCancellationCandidates exercises the candidate-set path,
// whose per-slot solve spans pricing-expansion rounds.
func TestStepCtxCancellationCandidates(t *testing.T) {
	in := smallRandomInstance(rand.New(rand.NewSource(17)))
	testCancellation(t, in, Options{Candidates: 2})
}

// TestStepCtxOutOfOrderAfterCancel verifies the slot counter does not
// advance on a cancelled solve: the next slot is still the aborted one.
func TestStepCtxOutOfOrderAfterCancel(t *testing.T) {
	in := smallRandomInstance(rand.New(rand.NewSource(23)))
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Step(0); err != nil {
		t.Fatalf("slot 0: %v", err)
	}
	if _, err := alg.StepCtx(newCountdownCtx(1), 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled slot 1: err = %v, want context.Canceled", err)
	}
	if _, err := alg.Step(2); err == nil {
		t.Fatal("Step(2) succeeded after cancelled slot 1, want out-of-order error")
	}
	if _, err := alg.Step(1); err != nil {
		t.Fatalf("retrying slot 1: %v", err)
	}
}
