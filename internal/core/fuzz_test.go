package core

import (
	"math/rand"
	"testing"

	"edgealloc/internal/conform"
)

// This file holds the differential fuzz targets of the conformance
// harness. The fuzzers mutate the scalar knobs of conform.GenConfig — a
// seed, clamped dimensions, and regime bits — so every input is a valid
// instance by construction and the search budget goes into exploring
// price/mobility/capacity regimes rather than rediscovering Validate.
// Seed corpora live under testdata/fuzz; `make fuzz` runs each target
// for FUZZTIME, and plain `go test` replays the committed seeds.

// span maps a fuzzed int into [lo, hi]; identical to the conform
// generator's clamp, re-derived here to pre-shape dimensions below the
// generator's own ceilings where ultra-tight solves would be too slow.
func span(v, lo, hi int) int {
	n := hi - lo + 1
	m := (v - lo) % n
	if m < 0 {
		m += n
	}
	return lo + m
}

// FuzzOnlineStep runs the full online algorithm on a generated instance
// and holds the result to every guarantee the oracle knows: Theorem-1
// feasibility, the Lemma-1 gap identity and bound, dual-certificate
// validity (Lemma 2), weak duality, and the Theorem-2 ratio.
func FuzzOnlineStep(f *testing.F) {
	f.Add(int64(1), 3, 4, 3, false, false)
	f.Add(int64(7), 2, 1, 1, true, false)
	f.Add(int64(20140212), 6, 8, 4, false, true)
	f.Fuzz(func(t *testing.T, seed int64, nI, nJ, nT int, tight, zeroSq bool) {
		in := conform.GenInstance(conform.GenConfig{
			Seed: seed, I: nI, J: nJ, T: nT, Tight: tight, ZeroSq: zeroSq})
		alg := NewOnlineApprox(in, Options{Solver: tightOpts()})
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		cert, err := alg.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		diag := &conform.Diagnostics{
			HasCertificate: true,
			LowerBoundP0:   cert.LowerBoundP0(),
			LowerBoundP1:   cert.LowerBoundP1(),
			DualResidual:   cert.Feasibility.Max(),
			NuCharge:       cert.NuCharge,
			RatioBound:     alg.CompetitiveRatioBound(),
		}
		if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
			t.Fatal(rep.Err())
		}
	})
}

// FuzzCandidateVsDense is the certified-equality property under fuzzed
// regimes: with the candidate-set size the fuzzer picks (down to the
// most aggressive K = 1), every slot-coupled reduced solve must match
// the dense solve's P2 objective to 1e-6 relative. The deterministic
// metamorphic suite holds its curated instances to 1e-8; fuzzed
// instances get headroom because the bound measures the difference of
// two independent ALM convergence errors, whose tail over arbitrary
// instance conditioning reaches ~1e-7 (seed-tolerance-edge,
// seed-conditioning-tail). A wrongly pruned pair moves the objective
// orders of magnitude more than that, so the bound still detects every
// path divergence.
func FuzzCandidateVsDense(f *testing.F) {
	f.Add(int64(41), 3, 3, 2, 1)
	f.Add(int64(11), 2, 5, 3, 2)
	f.Add(int64(97), 4, 1, 1, 3)
	f.Fuzz(func(t *testing.T, seed int64, nI, nJ, nT, k int) {
		// Dimensions stay below the generator's ceilings: the ultra-tight
		// tolerances the 1e-8 claim needs only converge on small programs.
		in := conform.GenInstance(conform.GenConfig{
			Seed: seed, I: span(nI, 2, 4), J: span(nJ, 1, 5), T: span(nT, 1, 3)})
		for tt, d := range coupledSlotGaps(t, in, span(k, 1, in.I), ultraTightOpts()) {
			if d > 1e-6 {
				t.Errorf("slot %d (I=%d J=%d): P2 objective rel gap %g > 1e-6",
					tt, in.I, in.J, d)
			}
		}
	})
}

// FuzzShardVsDense is the sharded-path certified-equality property under
// fuzzed regimes: for any shard count the fuzzer picks (including S = 1
// and S > J, which clamps to one user per shard), every slot-coupled
// assembled solve must match the dense solve's P2 objective to 1e-6
// relative — the same fuzz-headroom rationale as FuzzCandidateVsDense,
// with the coordination loop run to a 1e-10 consensus residual. A
// price-coordination bug (wrong target split, stale consensus duals, a
// block assembled out of order) moves the objective far beyond that.
func FuzzShardVsDense(f *testing.F) {
	f.Add(int64(41), 3, 3, 2, 2)
	f.Add(int64(11), 2, 5, 3, 4)
	f.Add(int64(97), 4, 1, 1, 1)
	f.Fuzz(func(t *testing.T, seed int64, nI, nJ, nT, s int) {
		in := conform.GenInstance(conform.GenConfig{
			Seed: seed, I: span(nI, 2, 4), J: span(nJ, 1, 5), T: span(nT, 1, 3)})
		gaps := coupledPathGaps(t, in,
			Options{Solver: ultraTightOpts()}, shardTestOpts(span(s, 1, in.J+2)))
		for tt, d := range gaps {
			if d > 1e-6 {
				t.Errorf("slot %d (I=%d J=%d): P2 objective rel gap %g > 1e-6",
					tt, in.I, in.J, d)
			}
		}
	})
}

// FuzzIncrementalVsFull is the incremental tier's differential fuzz:
// under fuzzed regimes and churn rates — the attachment traces are
// rewritten so exactly ⌈churn·J⌉ users move per slot, spanning the 0%
// all-frozen and 100% nothing-frozen edges — every slot-coupled
// delta-driven solve must match the full solve's P2 objective to 1e-6
// relative (fuzz headroom as above; the deterministic suite pins 1e-8).
// A gate that wrongly certifies a frozen user moves the objective far
// beyond that, so the bound detects every soundness failure.
func FuzzIncrementalVsFull(f *testing.F) {
	f.Add(int64(41), 3, 3, 2, 0)
	f.Add(int64(11), 2, 5, 3, 35)
	f.Add(int64(97), 4, 4, 3, 100)
	f.Fuzz(func(t *testing.T, seed int64, nI, nJ, nT, churnPct int) {
		in := conform.GenInstance(conform.GenConfig{
			Seed: seed, I: span(nI, 2, 4), J: span(nJ, 1, 5), T: span(nT, 1, 3)})
		churn := float64(span(churnPct, 0, 100)) / 100
		withChurn(in, churn, rand.New(rand.NewSource(seed^0x5eed)))
		gaps := coupledPathGaps(t, in, Options{Solver: ultraTightOpts()}, incrTightOpts())
		for tt, d := range gaps {
			if d > 1e-6 {
				t.Errorf("slot %d (I=%d J=%d churn=%g): P2 objective rel gap %g > 1e-6",
					tt, in.I, in.J, churn, d)
			}
		}
	})
}

// FuzzStructuredVsDenseRows pits the structured group-sum constraint
// kernel against the generic sparse-row reference path on the same
// slot-coupled criterion (1e-6 under fuzzing, as above).
func FuzzStructuredVsDenseRows(f *testing.F) {
	f.Add(int64(13), 3, 4, 2)
	f.Add(int64(5), 2, 1, 3)
	f.Add(int64(77), 4, 5, 1)
	f.Fuzz(func(t *testing.T, seed int64, nI, nJ, nT int) {
		in := conform.GenInstance(conform.GenConfig{
			Seed: seed, I: span(nI, 2, 4), J: span(nJ, 1, 5), T: span(nT, 1, 3)})
		ultra := ultraTightOpts()
		gaps := coupledPathGaps(t, in,
			Options{DenseRows: true, Solver: ultra}, Options{Solver: ultra})
		for tt, d := range gaps {
			if d > 1e-6 {
				t.Errorf("slot %d (I=%d J=%d): P2 objective rel gap %g > 1e-6",
					tt, in.I, in.J, d)
			}
		}
	})
}
