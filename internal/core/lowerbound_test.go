package core

import (
	"testing"

	"edgealloc/internal/baseline"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

// TestPingPongEmpiricalRatio probes the future-work question of §IV's
// Remark with the adversarial price-alternation family: the measured
// ratio must stay within Theorem 2's parameterized bound, and the family
// must actually stress the algorithm (ratio bounded away from 1) — an
// empirical lower-bound probe on the analysis.
func TestPingPongEmpiricalRatio(t *testing.T) {
	worst := 1.0
	for _, cfg := range []scenario.AdversarialConfig{
		{Horizon: 8, Spike: 2, Dynamic: 1},
		{Horizon: 8, Spike: 3, Dynamic: 2},
		{Horizon: 12, Spike: 5, Dynamic: 4},
	} {
		in, err := scenario.PingPong(cfg)
		if err != nil {
			t.Fatal(err)
		}
		alg := NewOnlineApprox(in, Options{})
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		if err := in.CheckFeasible(sched, 1e-5); err != nil {
			t.Fatal(err)
		}
		b, err := in.Evaluate(sched)
		if err != nil {
			t.Fatal(err)
		}
		_, opt, err := baseline.ExactOffline(in)
		if err != nil {
			t.Fatal(err)
		}
		ratio := in.Total(b) / opt
		if ratio < 1-1e-9 {
			t.Fatalf("spike=%g: ratio %g below 1", cfg.Spike, ratio)
		}
		if bound := RatioBound(in, 1, 1); ratio > bound {
			t.Errorf("spike=%g: ratio %g exceeds Theorem-2 bound %g", cfg.Spike, ratio, bound)
		}
		if ratio > worst {
			worst = ratio
		}
	}
	if worst < 1.01 {
		t.Errorf("adversarial family too easy: worst ratio %g — no stress on the algorithm", worst)
	}
	t.Logf("empirical lower-bound probe: worst observed ratio %.4f", worst)
}

// TestPingPongGreedyChases confirms the family traps the myopic policy
// more than the regularized one on at least one configuration, mirroring
// the Fig-1 anecdotes at longer horizons.
func TestPingPongGreedyChases(t *testing.T) {
	in, err := scenario.PingPong(scenario.AdversarialConfig{Horizon: 10, Spike: 3, Dynamic: 1.8})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := (&baseline.Greedy{}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	bG, err := in.Evaluate(greedy)
	if err != nil {
		t.Fatal(err)
	}
	alg := NewOnlineApprox(in, Options{})
	sched, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	bA, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total(bA) > in.Total(bG)*1.05 {
		t.Errorf("approx %g much worse than greedy %g on the ping-pong family",
			in.Total(bA), in.Total(bG))
	}
	t.Logf("ping-pong horizon 10: approx %.3f vs greedy %.3f", in.Total(bA), in.Total(bG))
}

// TestPingPongOfflinePaysOncePerPhase sanity-checks the family's
// structure: the exact offline schedule should not exceed the cost of the
// trivial stay-forever policy.
func TestPingPongOfflinePaysOncePerPhase(t *testing.T) {
	in, err := scenario.PingPong(scenario.AdversarialConfig{Horizon: 8, Spike: 3, Dynamic: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, opt, err := baseline.ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	stay := make(model.Schedule, in.T)
	for t2 := range stay {
		x := model.NewAlloc(in.I, in.J)
		x.Set(1, 0, 1)
		stay[t2] = x
	}
	b, err := in.Evaluate(stay)
	if err != nil {
		t.Fatal(err)
	}
	if opt > in.Total(b)+1e-9 {
		t.Errorf("offline optimum %g worse than stay-forever %g", opt, in.Total(b))
	}
}
