package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/baseline"
	"edgealloc/internal/conform"
	"edgealloc/internal/model"
)

// This file is the metamorphic half of the conformance harness (DESIGN.md
// §8): each conform transform changes the offline optimum in a provably
// predictable way, so baseline.ExactOffline becomes its own oracle — no
// reference implementation needed. The fast paths (candidate sets,
// structured kernels) are then held to the same 1e-8 slot-coupled
// agreement on transformed instances as on the originals, so a transform
// can never push an optimization outside its certified envelope.

// exactOpt solves the instance to LP optimality with the dense simplex.
func exactOpt(t *testing.T, in *model.Instance) float64 {
	t.Helper()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	_, opt, err := baseline.ExactOffline(in)
	if err != nil {
		t.Fatal(err)
	}
	return opt
}

func relGap(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(b))
}

// TestMetamorphicScalePricesExact: multiplying every price by α scales
// the optimal cost by exactly α, for any weight regime.
func TestMetamorphicScalePricesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	for trial := 0; trial < 3; trial++ {
		in := smallRandomInstance(rng)
		opt := exactOpt(t, in)
		const alpha = 2.5
		scaled := exactOpt(t, conform.ScalePrices(in, alpha))
		if d := relGap(scaled, alpha*opt); d > 1e-8 {
			t.Errorf("trial %d: OPT(α·prices) = %g, want α·OPT = %g (rel %g)",
				trial, scaled, alpha*opt, d)
		}
	}
}

// TestMetamorphicScaleLoadExact: with WSq = 0 the cost is linear in the
// allocation and x ↦ αx bijects the feasible sets, so scaling capacities,
// workloads, and Init by α scales the optimum by exactly α.
func TestMetamorphicScaleLoadExact(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	for trial := 0; trial < 3; trial++ {
		in := smallRandomInstance(rng)
		in.WSq = 0
		opt := exactOpt(t, in)
		const alpha = 1.75
		scaled := exactOpt(t, conform.ScaleLoad(in, alpha))
		if d := relGap(scaled, alpha*opt); d > 1e-8 {
			t.Errorf("trial %d: OPT(α·load) = %g, want α·OPT = %g (rel %g)",
				trial, scaled, alpha*opt, d)
		}
	}
}

// TestMetamorphicPermutationsExact: relabeling clouds or users leaves the
// optimum untouched.
func TestMetamorphicPermutationsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 2; trial++ {
		in := smallRandomInstance(rng)
		opt := exactOpt(t, in)
		pc := exactOpt(t, conform.PermuteClouds(in, rng.Perm(in.I)))
		if d := relGap(pc, opt); d > 1e-8 {
			t.Errorf("trial %d: OPT(π·clouds) = %g, want %g (rel %g)", trial, pc, opt, d)
		}
		pu := exactOpt(t, conform.PermuteUsers(in, rng.Perm(in.J)))
		if d := relGap(pu, opt); d > 1e-8 {
			t.Errorf("trial %d: OPT(π·users) = %g, want %g (rel %g)", trial, pu, opt, d)
		}
	}
}

// TestMetamorphicSplitUserExact: splitting a user into two half-workload
// users following the same trace preserves the optimum when WSq = 0 (the
// load-proportional cost terms are positively homogeneous per column; the
// per-user service-quality average would double, hence the regime).
func TestMetamorphicSplitUserExact(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	for trial := 0; trial < 3; trial++ {
		in := smallRandomInstance(rng)
		in.WSq = 0
		opt := exactOpt(t, in)
		split := exactOpt(t, conform.SplitUser(in, rng.Intn(in.J)))
		if d := relGap(split, opt); d > 1e-8 {
			t.Errorf("trial %d: OPT(split) = %g, want %g (rel %g)", trial, split, opt, d)
		}
	}
}

// coupledPathGaps generalizes coupledSlotGaps to any pair of solver
// configurations: both run over the instance with the cross-slot drift
// removed (after each slot the alternative path continues from the
// reference decision), and the per-slot relative P2-objective gap between
// the two decisions is measured under an independently built objective.
func coupledPathGaps(t *testing.T, in *model.Instance, ref, alt Options) []float64 {
	t.Helper()
	a := NewOnlineApprox(in, ref)
	b := NewOnlineApprox(in, alt)
	gaps := make([]float64, 0, in.T)
	for tt := 0; tt < in.T; tt++ {
		prevX := append([]float64(nil), a.prev.X...)
		xa, err := a.Step(tt)
		if err != nil {
			t.Fatal(err)
		}
		xb, err := b.Step(tt)
		if err != nil {
			t.Fatal(err)
		}
		obj := newP2Objective(in, tt,
			model.Alloc{I: in.I, J: in.J, X: prevX},
			a.opts.Epsilon1, a.opts.Epsilon2)
		fa := obj.Eval(xa.X, nil)
		fb := obj.Eval(xb.X, nil)
		gaps = append(gaps, math.Abs(fb-fa)/(1+math.Abs(fa)))
		copy(b.prevBuf, xa.X)
	}
	return gaps
}

// TestMetamorphicFastPathsAgree holds every fast path to the certified
// 1e-8 slot-coupled agreement on *transformed* instances: aggressive
// candidate pruning (Candidates = 1) against the dense solve, and the
// structured group-sum kernel against the generic dense-row reference.
func TestMetamorphicFastPathsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	base := smallRandomInstance(rng)
	transforms := []struct {
		name string
		in   *model.Instance
	}{
		{"scale-prices", conform.ScalePrices(base, 3)},
		{"scale-load", conform.ScaleLoad(base, 0.5)},
		{"permute-clouds", conform.PermuteClouds(base, rng.Perm(base.I))},
		{"permute-users", conform.PermuteUsers(base, rng.Perm(base.J))},
		{"split-user", conform.SplitUser(base, rng.Intn(base.J))},
	}
	for _, tr := range transforms {
		t.Run(tr.name, func(t *testing.T) {
			if err := tr.in.Validate(); err != nil {
				t.Fatal(err)
			}
			for tt, d := range coupledSlotGaps(t, tr.in, 1, ultraTightOpts()) {
				if d > 1e-8 {
					t.Errorf("candidate path slot %d: P2 rel gap %g > 1e-8", tt, d)
				}
			}
			ultra := ultraTightOpts()
			gaps := coupledPathGaps(t, tr.in,
				Options{DenseRows: true, Solver: ultra}, Options{Solver: ultra})
			for tt, d := range gaps {
				if d > 1e-8 {
					t.Errorf("structured kernel slot %d: P2 rel gap %g > 1e-8", tt, d)
				}
			}
		})
	}
}

// TestMetamorphicOnlineConformance closes the loop with the oracle: the
// online algorithm's runs on transformed instances must pass the full
// conformance check, certificate included.
func TestMetamorphicOnlineConformance(t *testing.T) {
	rng := rand.New(rand.NewSource(306))
	base := smallRandomInstance(rng)
	for _, in := range []*model.Instance{
		conform.ScalePrices(base, 2),
		conform.PermuteUsers(base, rng.Perm(base.J)),
		conform.SplitUser(base, 0),
	} {
		alg := NewOnlineApprox(in, Options{Solver: tightOpts()})
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		cert, err := alg.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		diag := &conform.Diagnostics{
			HasCertificate: true,
			LowerBoundP0:   cert.LowerBoundP0(),
			LowerBoundP1:   cert.LowerBoundP1(),
			DualResidual:   cert.Feasibility.Max(),
			NuCharge:       cert.NuCharge,
			RatioBound:     alg.CompetitiveRatioBound(),
		}
		if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
			t.Error(rep.Err())
		}
	}
}
