package core

import (
	"errors"
	"math"

	"edgealloc/internal/model"
)

// Certificate is a per-run lower bound on the offline optimum, built from
// the dual solution S_D of §IV. The dual program D of the relaxation P3
// has objective
//
//	D = Σ_t Σ_j λ_j θ_{j,t} + Σ_t Σ_i (Λ−C_i)⁺ ρ_{i,t},
//
// and any feasible dual point lower-bounds OPT(P1) by weak duality
// (Lemma 2 + the P3 relaxation), hence OPT(P0) ≥ D − σ (Lemma 1).
// Dividing the algorithm's achieved cost by the bound certifies its
// empirical competitive ratio without ever solving the offline problem.
//
// Rather than trusting the numerical multipliers of the per-slot solver —
// which are ambiguous here because the explicit capacity rows added to P2
// (see p2Constraints) are linearly dependent with the complement rows at
// demand-tight points — the certificate constructs duals directly from
// P2's stationarity at the realized solution:
//
//	g_{ij,t} = ā_{ij,t} + (ĉ_i/η_i)·ln((X_{i,t}+ε₁)/(X_{i,t-1}+ε₁))
//	                    + (b̂_i/τ_ij)·ln((x_{ij,t}+ε₂)/(x_{ij,t-1}+ε₂))
//	ν_{i,t} = (−min_j g_{ij,t})⁺,   θ_{j,t} = min_i (g_{ij,t} + ν_{i,t}),
//	ρ_{i,t} = 0,   D = Σ_t [Σ_j λ_j θ_{j,t} − Σ_i C_i ν_{i,t}].
//
// With the paper's α/β mappings the telescoped differences satisfy
// α_{t+1}−α_t + β_{t+1}−β_t = ā_{ij,t} − g_{ij,t} exactly, so constraint
// (14a) reduces to θ_{j,t} ≤ g_{ij,t} + ν_{i,t}, which holds by
// construction: the point is dual-feasible up to float round-off
// regardless of how accurately P2 was solved. The ν_{i,t} are the duals
// of the explicit capacity rows Σ_j x_{ij,t} ≤ C_i: when a binding cloud
// makes min_j g_{ij,t} negative (stationarity pushes its reduced costs
// below zero), no θ ≥ 0 alone satisfies (14a), so ν lifts every row of
// that cloud into feasibility and D is charged the exact price C_i·ν_{i,t}.
// The resulting bound is sound for any Theorem-1-feasible x:
//
//	f(x) ≥ Σ g·x + const = Σ (g+ν)·x − Σ_i ν_i Σ_j x_{ij} + const
//	     ≥ Σ_j θ_j·λ_j − Σ_i ν_i C_i + const.
//
// When no capacity binds, ν = 0 and θ = min_i g ≥ 0 is the exact dual
// optimum of the slot (the clouds run at 80% utilization in the paper's
// setting, so the ν charge is usually zero or small).
type Certificate struct {
	// D is the dual objective: a certified lower bound on OPT(P1) in
	// weighted cost units, excluding the access-delay constant.
	D float64
	// SigmaWeighted is w_mg·σ = w_mg·Σ_i b_i^out·C_i, the Lemma-1 constant
	// separating P0 and P1 optima.
	SigmaWeighted float64
	// AccessConstant is Σ_t Σ_j w_sq·d(j, l_{j,t}), the decision-independent
	// part of the service-quality cost, which the dual programs omit
	// (Lemma 5 drops it explicitly). It is added back when bounding the
	// full objectives.
	AccessConstant float64
	// NuCharge is Σ_t Σ_i C_i·ν_{i,t} ≥ 0, the capacity-dual price already
	// deducted from D. D + NuCharge = Σ_t Σ_j λ_j θ_{j,t} is the
	// undeducted stationarity value — the quantity the paper's
	// primal-dual analysis (Lemmas 3–6) bounds the achieved cost against,
	// so Theorem-2 cross-checks must compare with D + NuCharge, not D:
	// the deduction is bound slack from capacity binding, not a claim the
	// algorithm's cost stays within r of.
	NuCharge float64
	// Feasibility reports the residual violation of the dual constraints
	// by the constructed point; by construction all entries are at float
	// round-off level.
	Feasibility Feasibility
}

// Feasibility is the worst violation of each dual-constraint family by
// the constructed S_D, in absolute weighted-cost units.
type Feasibility struct {
	// DualRow is constraint (14a), the column constraint of the x variables.
	DualRow float64
	// AlphaBound is (14b): α_{i,t} ≤ w_rc·c_i.
	AlphaBound float64
	// BetaBound is (14c): β_{i,j,t} ≤ w_mg·b_i.
	BetaBound float64
	// Negativity is (14d)/(14e): all of α, β, θ, ν, ρ ≥ 0 (θ and ν are
	// nonnegative by construction; α and β are measured).
	Negativity float64
}

// Max returns the largest violation across all families.
func (f Feasibility) Max() float64 {
	return math.Max(math.Max(f.DualRow, f.AlphaBound), math.Max(f.BetaBound, f.Negativity))
}

// ErrIncompleteRun reports a certificate request before the horizon was
// fully processed.
var ErrIncompleteRun = errors.New("core: certificate requires a completed run")

// LowerBoundP1 returns the certified lower bound on OPT(P1) including the
// decision-independent access-delay constant.
func (c *Certificate) LowerBoundP1() float64 { return c.D + c.AccessConstant }

// LowerBoundP0 returns the certified lower bound on OPT(P0):
// OPT(P0) ≥ OPT(P1) − σ ≥ D − σ (both sides including the access constant).
func (c *Certificate) LowerBoundP0() float64 {
	return c.D + c.AccessConstant - c.SigmaWeighted
}

// Certificate builds the dual certificate from a completed run.
//
// The β mapping uses (λ_j+ε₂) rather than the paper's printed (C_i+ε₂) in
// the numerator: the telescoped differences β_{t+1}−β_t — the only form
// entering constraint (14a) — are identical under both choices, while the
// bound β ≤ w_mg·b_i of (14c) only holds with λ_j (the paper's own Lemma-2
// derivation for (14c) silently uses the λ_j form; see DESIGN.md).
//
// The construction reads only the realized schedule, never the solver's
// multipliers, so it is indifferent to how each slot was solved: the
// candidate-set path (Options.Candidates > 0) produces the same certified
// bound as the dense path because its pricing loop makes the reduced
// optimum the full optimum — the pruned pairs sit at zero exactly as the
// dense solve leaves them, and the g_{ij,t} stationarity values the
// certificate derives from the schedule are unchanged. No lifting of the
// reduced duals is needed.
func (o *OnlineApprox) Certificate() (*Certificate, error) {
	in := o.inst
	if o.slot != in.T {
		return nil, ErrIncompleteRun
	}
	eps1, eps2 := o.opts.Epsilon1, o.opts.Epsilon2

	cert := &Certificate{SigmaWeighted: in.WMg * in.Sigma()}
	for t := 0; t < in.T; t++ {
		for j := 0; j < in.J; j++ {
			cert.AccessConstant += in.WSq * in.AccessDelay[t][j]
		}
	}

	// Allocations and cloud totals for t = 0..T (0 = initial state).
	allocs := make([]model.Alloc, in.T+1)
	allocs[0] = in.InitialAlloc()
	totals := make([][]float64, in.T+1)
	totals[0] = allocs[0].CloudTotals()
	for t := 0; t < in.T; t++ {
		allocs[t+1] = o.schedule[t]
		totals[t+1] = o.schedule[t].CloudTotals()
	}

	rcFac := make([]float64, in.I)  // ĉ_i/η_i
	mgFacI := make([]float64, in.I) // b̂_i (divided by τ_ij per user below)
	for i := 0; i < in.I; i++ {
		rcFac[i] = in.WRc * in.ReconfPrice[i] / math.Log1p(in.Capacity[i]/eps1)
		mgFacI[i] = in.WMg * (in.MigOutPrice[i] + in.MigInPrice[i])
	}
	tau := make([]float64, in.J)
	for j := 0; j < in.J; j++ {
		tau[j] = math.Log1p(in.Workload[j] / eps2)
	}

	alpha := func(i, t int) float64 { // paper's α_{i,t}, valid for t in 1..T+1
		return rcFac[i] * math.Log((in.Capacity[i]+eps1)/(totals[t-1][i]+eps1))
	}
	beta := func(i, j, t int) float64 { // β_{i,j,t} (λ_j-numerator form)
		return mgFacI[i] / tau[j] *
			math.Log((in.Workload[j]+eps2)/(allocs[t-1].At(i, j)+eps2))
	}

	thetas := make([][]float64, in.T)
	nus := make([][]float64, in.T)
	g := make([]float64, in.I*in.J)
	for t := 1; t <= in.T; t++ {
		coef := in.StaticCoeff(t - 1)
		nu := make([]float64, in.I)
		for i := 0; i < in.I; i++ {
			rcln := rcFac[i] * math.Log((totals[t][i]+eps1)/(totals[t-1][i]+eps1))
			minRow := math.Inf(1)
			for j := 0; j < in.J; j++ {
				mgln := mgFacI[i] / tau[j] *
					math.Log((allocs[t].At(i, j)+eps2)/(allocs[t-1].At(i, j)+eps2))
				gij := coef[i*in.J+j] + rcln + mgln
				g[i*in.J+j] = gij
				if gij < minRow {
					minRow = gij
				}
			}
			if minRow < 0 { // capacity binds: lift cloud i's rows, pay C_i·ν_i
				nu[i] = -minRow
				cert.D -= in.Capacity[i] * nu[i]
				cert.NuCharge += in.Capacity[i] * nu[i]
			}
		}
		theta := make([]float64, in.J)
		for j := 0; j < in.J; j++ {
			m := math.Inf(1)
			for i := 0; i < in.I; i++ {
				if v := g[i*in.J+j] + nu[i]; v < m {
					m = v
				}
			}
			theta[j] = m // ≥ 0: every cloud's lifted row is nonnegative
			cert.D += in.Workload[j] * theta[j]
		}
		thetas[t-1] = theta
		nus[t-1] = nu
	}

	// Verify S_D feasibility (Lemma 2) — a pure identity check here, but
	// kept as a guard against regressions in the mappings.
	for t := 1; t <= in.T; t++ {
		coef := in.StaticCoeff(t - 1)
		for i := 0; i < in.I; i++ {
			a := alpha(i, t)
			if v := a - in.WRc*in.ReconfPrice[i]; v > cert.Feasibility.AlphaBound {
				cert.Feasibility.AlphaBound = v
			}
			if a < -cert.Feasibility.Negativity {
				cert.Feasibility.Negativity = -a
			}
			da := alpha(i, t+1) - a
			for j := 0; j < in.J; j++ {
				bt := beta(i, j, t)
				if v := bt - mgFacI[i]; v > cert.Feasibility.BetaBound {
					cert.Feasibility.BetaBound = v
				}
				if bt < -cert.Feasibility.Negativity {
					cert.Feasibility.Negativity = -bt
				}
				db := beta(i, j, t+1) - bt
				lhs := -coef[i*in.J+j] + da + db + thetas[t-1][j] - nus[t-1][i]
				if lhs > cert.Feasibility.DualRow {
					cert.Feasibility.DualRow = lhs
				}
			}
		}
	}
	return cert, nil
}
