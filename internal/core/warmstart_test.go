package core

import (
	"math"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

// TestFeasibleWarmStartIsDemandTightAndWithinCapacity pins the
// transportation warm start itself: the point Step falls back to at a
// zero-allocation t = 0 must serve every user exactly and respect every
// capacity, or the fallback would start ALM in the same over-penalized
// regime it exists to avoid.
func TestFeasibleWarmStartIsDemandTightAndWithinCapacity(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 12, Horizon: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := feasibleWarmStart(in, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < in.J; j++ {
		served := 0.0
		for i := 0; i < in.I; i++ {
			served += warm[i*in.J+j]
		}
		if d := math.Abs(served - in.Workload[j]); d > 1e-8*(1+in.Workload[j]) {
			t.Errorf("user %d served %g, want demand-tight %g", j, served, in.Workload[j])
		}
	}
	for i := 0; i < in.I; i++ {
		tot := 0.0
		for j := 0; j < in.J; j++ {
			tot += warm[i*in.J+j]
		}
		if tot > in.Capacity[i]*(1+1e-9) {
			t.Errorf("cloud %d loaded %g over capacity %g", i, tot, in.Capacity[i])
		}
	}
}

// TestStepZeroAllZeroPrevFallback exercises the t == 0 all-zero-previous
// branch on both solving paths. With no Init the formal model starts
// from x_{·,·,0} = 0, Step must take the transportation fallback, and
// the resulting slot decision must be feasible; on the candidate path
// the fallback's support must additionally have been admitted into the
// candidate sets or the warm point would not even be representable.
func TestStepZeroAllZeroPrevFallback(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 10, Horizon: 1, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	if in.Init != nil && !allZero(in.Init.X) {
		t.Fatal("scenario unexpectedly ships a nonzero initial allocation")
	}
	for _, candidates := range []int{0, 2} {
		alg := NewOnlineApprox(in, Options{Candidates: candidates})
		if !allZero(alg.prev.X) {
			t.Fatalf("candidates=%d: previous decision not all-zero at t=0", candidates)
		}
		x, err := alg.Step(0)
		if err != nil {
			t.Fatalf("candidates=%d: %v", candidates, err)
		}
		if err := in.CheckFeasible(model.Schedule{x}, feasTol); err != nil {
			t.Errorf("candidates=%d: slot-0 decision infeasible: %v", candidates, err)
		}
		if candidates > 0 {
			warm, err := feasibleWarmStart(in, 0)
			if err != nil {
				t.Fatal(err)
			}
			s := alg.sparse
			for k, v := range warm {
				if v != 0 && !s.builder.Contains(k/in.J, k%in.J) {
					t.Errorf("warm-start support (%d,%d) missing from candidate set",
						k/in.J, k%in.J)
				}
			}
		}
	}
}

// TestOnlineApproxReuseAcrossInstances guards the per-instance caches
// (prevBuf, warmDuals, the ALM workspace, the sparse state) against
// leaking between runs: Solve on one algorithm object across two
// differently-shaped instances must reproduce, bit for bit, what fresh
// algorithm objects compute — on the dense and the candidate path.
func TestOnlineApproxReuseAcrossInstances(t *testing.T) {
	inA, _, err := scenario.Rome(scenario.Config{Users: 6, Horizon: 3, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	inB, _, err := scenario.Rome(scenario.Config{Users: 9, Horizon: 4, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for _, candidates := range []int{0, 2} {
		opts := Options{Candidates: candidates}
		shared := NewOnlineApprox(nil, opts)
		gotA, err := shared.Solve(inA)
		if err != nil {
			t.Fatalf("candidates=%d: %v", candidates, err)
		}
		gotB, err := shared.Solve(inB)
		if err != nil {
			t.Fatalf("candidates=%d: %v", candidates, err)
		}
		wantA, err := NewOnlineApprox(inA, opts).Solve(inA)
		if err != nil {
			t.Fatal(err)
		}
		wantB, err := NewOnlineApprox(inB, opts).Solve(inB)
		if err != nil {
			t.Fatal(err)
		}
		compare := func(name string, got, want model.Schedule) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("candidates=%d %s: %d slots, want %d", candidates, name, len(got), len(want))
			}
			for tt := range want {
				for k := range want[tt].X {
					if got[tt].X[k] != want[tt].X[k] {
						t.Fatalf("candidates=%d %s slot %d: x[%d] = %v reused vs %v fresh",
							candidates, name, tt, k, got[tt].X[k], want[tt].X[k])
					}
				}
			}
		}
		compare("A", gotA, wantA)
		compare("B", gotB, wantB)
		// The dual record left on the shared object must be instance B's.
		thetas, _ := shared.Duals()
		if len(thetas) != inB.T || len(thetas[0]) != inB.J {
			t.Errorf("candidates=%d: stale dual record %dx%d, want %dx%d",
				candidates, len(thetas), len(thetas[0]), inB.T, inB.J)
		}
	}
}
