package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

// shardTestOpts returns sharded-path options tight enough that the
// assembled optimum lands in the same ~1e-9 tolerance ball as the
// unsharded ultra-tight solve: the coordination loop runs to a 1e-10
// consensus residual with the block and z-solves at ultraTightOpts.
func shardTestOpts(shards int) Options {
	return Options{
		Solver:         ultraTightOpts(),
		Shards:         shards,
		ShardMaxIters:  400,
		ShardPrimalTol: 1e-10,
		ShardDualTol:   1e-9,
	}
}

// TestShardMatchesDenseSmallInstances is the certified-equality property
// test of the sharded path: over random instances and shard counts, every
// slot's assembled sharded decision must match the unsharded dense
// solve's P2 cost to 1e-8 relative (cross-slot drift removed by coupling
// the sharded path to the dense decisions).
func TestShardMatchesDenseSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		in := smallRandomInstance(rng)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		shards := 1 + rng.Intn(in.J+2) // includes S > J (clamped)
		ultra := ultraTightOpts()
		gaps := coupledPathGaps(t, in, Options{Solver: ultra}, shardTestOpts(shards))
		for tt, d := range gaps {
			if d > 1e-8 {
				t.Errorf("trial %d (S=%d, I=%d, J=%d): slot %d P2 rel gap %g > 1e-8",
					trial, shards, in.I, in.J, tt, d)
			}
		}
	}
}

// TestShardWithCandidatesMatchesDense composes the two reductions: the
// sharded coordination loop with per-shard certified candidate sets must
// still land in the dense optimum's tolerance ball (the per-shard pricing
// pass re-admits anything the seeds miss).
func TestShardWithCandidatesMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 4; trial++ {
		in := smallRandomInstance(rng)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		opts := shardTestOpts(1 + rng.Intn(3))
		opts.Candidates = 2
		gaps := coupledPathGaps(t, in, Options{Solver: ultraTightOpts()}, opts)
		for tt, d := range gaps {
			if d > 1e-8 {
				t.Errorf("trial %d (S=%d, I=%d, J=%d): slot %d P2 rel gap %g > 1e-8",
					trial, opts.Shards, in.I, in.J, tt, d)
			}
		}
	}
}

// TestShardDeterministicForAnyWorkers pins the parallelism contract:
// with the shard count fixed, the full-horizon schedule must be
// byte-identical for every Solver.Workers value (shards solve
// concurrently but their totals reduce in shard index order), and — run
// to run — for the same worker count.
func TestShardDeterministicForAnyWorkers(t *testing.T) {
	oldEval := evalParGrain
	evalParGrain = 1
	defer func() { evalParGrain = oldEval }()

	in, _, err := scenario.Rome(scenario.Config{Users: 10, Horizon: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) model.Schedule {
		opts := Options{Shards: 3, Candidates: 3,
			Solver: alm.Options{Workers: workers}}
		s, err := NewOnlineApprox(in, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := run(1)
	again := run(1)
	for tt := range base {
		if !allocsEqual(base[tt], again[tt]) {
			t.Fatalf("slot %d: two serial runs differ", tt)
		}
	}
	for _, w := range []int{2, 4, 7} {
		got := run(w)
		for tt := range base {
			for k := range base[tt].X {
				if got[tt].X[k] != base[tt].X[k] {
					t.Fatalf("workers=%d slot %d: x[%d] = %v != serial %v",
						w, tt, k, got[tt].X[k], base[tt].X[k])
				}
			}
		}
	}
}

// TestShardCountDeterministicRerun requires run-to-run byte-identity at
// every shard count, including S = 1 (one block plus coordination) and
// an S larger than J (clamped to one user per shard).
func TestShardCountDeterministicRerun(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 6, Horizon: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 5, 64} {
		run := func() model.Schedule {
			sched, err := NewOnlineApprox(in, Options{Shards: s}).Run()
			if err != nil {
				t.Fatal(err)
			}
			return sched
		}
		a, b := run(), run()
		for tt := range a {
			if !allocsEqual(a[tt], b[tt]) {
				t.Fatalf("S=%d slot %d: reruns differ", s, tt)
			}
		}
	}
}

// TestShardFullRunFeasibleAndCertified runs the sharded path uncoupled
// over a full horizon and requires everything the dense path guarantees:
// Theorem-1 feasibility via the conformance oracle, a valid
// competitive-ratio certificate, and end-to-end cost agreement with the
// dense run (loosened to 1e-4 by warm-start drift chaining through
// uncoupled slots).
func TestShardFullRunFeasibleAndCertified(t *testing.T) {
	for _, opts := range []Options{
		shardTestOpts(2),
		func() Options { o := shardTestOpts(3); o.Candidates = 2; return o }(),
	} {
		in := conform.GenInstance(conform.GenConfig{Seed: 11, I: 4, J: 6, T: 4})
		alg := NewOnlineApprox(in, opts)
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		st := alg.ShardStats()
		if st.Slots != in.T || st.CoordIters < in.T {
			t.Errorf("S=%d: implausible shard stats %+v", opts.Shards, st)
		}
		cert, err := alg.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		diag := &conform.Diagnostics{
			HasCertificate: true,
			LowerBoundP0:   cert.LowerBoundP0(),
			LowerBoundP1:   cert.LowerBoundP1(),
			DualResidual:   cert.Feasibility.Max(),
			NuCharge:       cert.NuCharge,
			RatioBound:     alg.CompetitiveRatioBound(),
		}
		if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
			t.Fatalf("S=%d candidates=%d: %v", opts.Shards, opts.Candidates, rep.Err())
		}

		dense := NewOnlineApprox(in, Options{Solver: ultraTightOpts()})
		ds, err := dense.Run()
		if err != nil {
			t.Fatal(err)
		}
		scost := totalOf(t, in, sched)
		dcost := totalOf(t, in, ds)
		if d := math.Abs(scost-dcost) / (1 + math.Abs(dcost)); d > 1e-4 {
			t.Errorf("S=%d: total cost %g sharded vs %g dense (rel %g)",
				opts.Shards, scost, dcost, d)
		}
	}
}

// TestStepCtxCancellationShards extends the cancellation contract to the
// sharded path: aborted coordination loops must leave the committed warm
// state (block iterates, consensus duals, candidate support) exactly as
// the previous successful slot wrote it.
func TestStepCtxCancellationShards(t *testing.T) {
	in := smallRandomInstance(rand.New(rand.NewSource(41)))
	testCancellation(t, in, Options{Shards: 2})
	testCancellation(t, in, Options{Shards: 3, Candidates: 2})
}
