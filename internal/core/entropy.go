package core

import (
	"math"

	"edgealloc/internal/numkernel"
)

// This file holds the per-row entropy kernels shared by the dense
// (p2Objective) and candidate-set (p2SparseObjective) evaluation paths.
// Both objectives slice their state down to flat per-cloud-row views, so
// one set of helpers serves the contiguous I×J layout and the packed CSR
// layout alike, and the fast-math tier has a single integration point.
//
// Two tiers:
//
//   - The exact tier (entropyRowValue / entropyRowGrad) is the default
//     and reproduces the historical inner loops operation for operation —
//     same zero-flow log skip, same per-variable log memoization — so
//     its results are bitwise identical to the pre-refactor code. It
//     additionally counts cache hits and misses (plain integer adds on
//     loop-local variables; results are unaffected).
//
//   - The fast tier (entropyRatioPass + numkernel.LogBatch +
//     entropyFastValue / entropyFastGrad, behind Options.FastMath)
//     replaces the per-element divide, log call, and memo-cache traffic
//     with two branch-free passes around one batch log: pass one fuses
//     the row sum with gathering ratio[k] = (x_k+ε₂)·invDen[k] (invDen
//     precomputed once per slot from the fixed x'), the batch kernel
//     logs the whole row in place, and pass two accumulates the
//     objective (and gradient) from the logs. Each operation is within
//     1e-12 relative of the exact tier; end-to-end cost agreement is
//     pinned to 1e-8 by the property tests in fastmath_test.go. The
//     *32 variants are the float32 storage tier: ratio scratch and
//     invDen live in float32, halving the memory bandwidth of the
//     J-wide streams while the accumulation stays in float64.

// entropyRowValue runs the value-only static+migration pass over one
// cloud row, returning the row sum s, the accumulated objective terms f,
// and the log-memo cache hits/misses. lastNum/lastLg2 are the row's memo
// slices and are updated in place.
func entropyRowValue(row, coef, prev, mgFac, lastNum, lastLg2 []float64, eps2 float64) (s, f float64, hits, misses int64) {
	for j, v := range row {
		s += v
		f += coef[j] * v
		num, den := v+eps2, prev[j]+eps2
		var lg2 float64
		if num != den {
			if num == lastNum[j] {
				lg2 = lastLg2[j]
				hits++
			} else {
				lg2 = math.Log(num / den)
				lastNum[j] = num
				lastLg2[j] = lg2
				misses++
			}
		}
		f += mgFac[j] * (num*lg2 - v)
	}
	return s, f, hits, misses
}

// entropyRowGrad runs the gradient pass over one cloud row: f continues
// the caller's accumulator (seeded with the reconfiguration term so the
// addition order matches the historical loop exactly), rc is the row's
// reconfiguration gradient, and g receives the per-variable gradient.
func entropyRowGrad(row, coef, prev, mgFac, lastNum, lastLg2, g []float64, eps2, f, rc float64) (fOut float64, hits, misses int64) {
	for j, v := range row {
		f += coef[j] * v
		num, den := v+eps2, prev[j]+eps2
		var lg2 float64
		if num != den {
			if num == lastNum[j] {
				lg2 = lastLg2[j]
				hits++
			} else {
				lg2 = math.Log(num / den)
				lastNum[j] = num
				lastLg2[j] = lg2
				misses++
			}
		}
		f += mgFac[j] * (num*lg2 - v)
		g[j] = coef[j] + rc + mgFac[j]*lg2
	}
	return f, hits, misses
}

// Fast tier --------------------------------------------------------------

// entropyRatioPass fuses the row sum with the ratio gather:
// ratio[j] = (row[j]+ε₂)·invDen[j], returning Σ row. The caller follows
// with numkernel.LogBatch(ratio, ratio).
func entropyRatioPass(row, invDen, ratio []float64, eps2 float64) float64 {
	s := 0.0
	for j, v := range row {
		s += v
		ratio[j] = (v + eps2) * invDen[j]
	}
	return s
}

// entropyFastValue accumulates the static and migration terms from the
// batch-computed logs lg2.
func entropyFastValue(row, coef, mgFac, lg2 []float64, eps2 float64) float64 {
	f := 0.0
	for j, v := range row {
		f += coef[j]*v + mgFac[j]*((v+eps2)*lg2[j]-v)
	}
	return f
}

// entropyFastGrad accumulates the static and migration terms from the
// batch-computed logs lg2 into the caller-seeded f and writes the
// per-variable gradient.
func entropyFastGrad(row, coef, mgFac, lg2, g []float64, eps2, f, rc float64) float64 {
	for j, v := range row {
		l := lg2[j]
		f += coef[j]*v + mgFac[j]*((v+eps2)*l-v)
		g[j] = coef[j] + rc + mgFac[j]*l
	}
	return f
}

// Float32 storage tier ---------------------------------------------------

// entropyRatioPass32 is entropyRatioPass with the ratio scratch and
// invDen in float32; the ratio product itself is carried in float32 (its
// rounding is far below the tier's 1e-6 log budget).
func entropyRatioPass32(row []float64, invDen, ratio []float32, eps2 float64) float64 {
	s := 0.0
	for j, v := range row {
		s += v
		ratio[j] = float32(v+eps2) * invDen[j]
	}
	return s
}

// entropyFastValue32 is entropyFastValue reading float32 logs.
func entropyFastValue32(row, coef, mgFac []float64, lg2 []float32, eps2 float64) float64 {
	f := 0.0
	for j, v := range row {
		f += coef[j]*v + mgFac[j]*((v+eps2)*float64(lg2[j])-v)
	}
	return f
}

// entropyFastGrad32 is entropyFastGrad reading float32 logs.
func entropyFastGrad32(row, coef, mgFac []float64, lg2 []float32, g []float64, eps2, f, rc float64) float64 {
	for j, v := range row {
		l := float64(lg2[j])
		f += coef[j]*v + mgFac[j]*((v+eps2)*l-v)
		g[j] = coef[j] + rc + mgFac[j]*l
	}
	return f
}

// entropyInvDen fills invDen[j] = 1/(prev[j]+ε₂), the per-slot constant
// the fast tier's ratio pass multiplies by instead of dividing per
// element per evaluation.
func entropyInvDen(invDen, prev []float64, eps2 float64) {
	for j, p := range prev {
		invDen[j] = 1 / (p + eps2)
	}
}

// entropyInvDen32 is entropyInvDen for the float32 storage tier (the
// division stays in float64; only the store narrows).
func entropyInvDen32(invDen []float32, prev []float64, eps2 float64) {
	for j, p := range prev {
		invDen[j] = float32(1 / (p + eps2))
	}
}

// logBatch and logBatch32 re-export the kernels so the objective files
// depend on this single integration point.
func logBatch(dst, src []float64)   { numkernel.LogBatch(dst, src) }
func logBatch32(dst, src []float32) { numkernel.LogBatch32(dst, src) }
