package core

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
)

// Proximal is an ablation of the paper's central design choice: it keeps
// the per-slot structure of the online algorithm but replaces the
// relative-entropy regularizers with quadratic movement penalties,
//
//	Σ_i (w_rc·c_i/2σ)(X_i − X'_i)² + Σ_ij (w_mg·b_i/2σ)(x_ij − x'_ij)²,
//
// the "smoothed online convex optimization" style of the related work the
// paper builds on (Jiao et al. [8], Lin et al. [7]). Entropy regularizers
// admit the multiplicative-update analysis behind Theorem 2; quadratic
// ones do not, and the ablation measures what that buys empirically.
type Proximal struct {
	// Sigma is the movement scale σ (default 1); larger values penalize
	// movement less.
	Sigma float64
	// Solver overrides the per-slot ALM options (zero = defaults).
	Solver alm.Options
}

// Name identifies the algorithm in experiment output.
func (p *Proximal) Name() string { return "online-proximal" }

// Solve runs the proximal policy over the instance.
func (p *Proximal) Solve(in *model.Instance) (model.Schedule, error) {
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 1
	}
	sopts := p.Solver
	if sopts.MaxOuter == 0 {
		sopts.MaxOuter = 50
	}
	if sopts.InnerIters == 0 {
		sopts.InnerIters = 700
	}
	if sopts.FeasTol == 0 {
		sopts.FeasTol = 1e-7
	}
	if sopts.Penalty == 0 {
		sopts.Penalty = 2
	}

	// Demand and explicit capacity rows (the complement rows exist for
	// the entropy analysis; the proximal ablation has no such analysis).
	cons := make([]alm.Constraint, 0, in.J+in.I)
	for j := 0; j < in.J; j++ {
		idx := make([]int, in.I)
		coef := make([]float64, in.I)
		for i := 0; i < in.I; i++ {
			idx[i] = i*in.J + j
			coef[i] = 1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: in.Workload[j]})
	}
	for i := 0; i < in.I; i++ {
		idx := make([]int, in.J)
		coef := make([]float64, in.J)
		for j := 0; j < in.J; j++ {
			idx[j] = i*in.J + j
			coef[j] = -1
		}
		cons = append(cons, alm.Constraint{Idx: idx, Coeffs: coef, RHS: -in.Capacity[i]})
	}

	// The quadratic factors are slot-independent; build the objective once
	// and rebind the per-slot state, sharing one solver workspace across
	// the horizon so repeated slots allocate nothing in the hot path.
	obj := &proximalObjective{
		nI:      in.I,
		nJ:      in.J,
		coef:    make([]float64, in.I*in.J),
		prevTot: make([]float64, in.I),
		rcFac:   make([]float64, in.I),
		mgFac:   make([]float64, in.I),
		tot:     make([]float64, in.I),
	}
	for i := 0; i < in.I; i++ {
		obj.rcFac[i] = in.WRc * in.ReconfPrice[i] / sigma
		obj.mgFac[i] = in.WMg * (in.MigOutPrice[i] + in.MigInPrice[i]) / sigma
	}
	lower := make([]float64, in.I*in.J)
	served := make([]float64, in.J)
	var ws alm.Workspace

	prev := in.InitialAlloc()
	sched := make(model.Schedule, 0, in.T)
	var warmDuals []float64
	for t := 0; t < in.T; t++ {
		in.StaticCoeffInto(t, obj.coef)
		obj.prev = prev.X
		prev.CloudTotalsInto(obj.prevTot)
		opts := sopts
		opts.Workspace = &ws
		opts.WarmX = prev.X
		opts.WarmDuals = warmDuals
		res, err := alm.Solve(&alm.Problem{
			Obj: obj, N: in.I * in.J,
			Lower: lower,
			Cons:  cons,
		}, opts)
		if err != nil {
			return nil, fmt.Errorf("core: proximal slot %d: %w", t, err)
		}
		// res.X aliases the workspace; copy before retaining.
		x := model.Alloc{I: in.I, J: in.J, X: append([]float64(nil), res.X...)}
		repair(in, x, served)
		sched = append(sched, x)
		prev = x
		warmDuals = res.Duals
	}
	return sched, nil
}

// proximalObjective is the quadratic-movement slot objective.
type proximalObjective struct {
	nI, nJ  int
	coef    []float64
	prev    []float64
	prevTot []float64
	rcFac   []float64 // w_rc·c_i/σ
	mgFac   []float64 // w_mg·b_i/σ
	tot     []float64 // scratch
}

var _ fista.Objective = (*proximalObjective)(nil)

// Eval implements fista.Objective.
func (o *proximalObjective) Eval(x, grad []float64) float64 {
	f := 0.0
	for i := 0; i < o.nI; i++ {
		s := 0.0
		row := x[i*o.nJ : (i+1)*o.nJ]
		for _, v := range row {
			s += v
		}
		o.tot[i] = s
	}
	for i := 0; i < o.nI; i++ {
		d := o.tot[i] - o.prevTot[i]
		f += o.rcFac[i] / 2 * d * d
		rcGrad := o.rcFac[i] * d
		base := i * o.nJ
		for j := 0; j < o.nJ; j++ {
			k := base + j
			v := x[k]
			dv := v - o.prev[k]
			f += o.coef[k]*v + o.mgFac[i]/2*dv*dv
			if grad != nil {
				grad[k] = o.coef[k] + rcGrad + o.mgFac[i]*dv
			}
		}
	}
	return f
}
