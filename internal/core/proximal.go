package core

import (
	"fmt"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
)

// Proximal is an ablation of the paper's central design choice: it keeps
// the per-slot structure of the online algorithm but replaces the
// relative-entropy regularizers with quadratic movement penalties,
//
//	Σ_i (w_rc·c_i/2σ)(X_i − X'_i)² + Σ_ij (w_mg·b_i/2σ)(x_ij − x'_ij)²,
//
// the "smoothed online convex optimization" style of the related work the
// paper builds on (Jiao et al. [8], Lin et al. [7]). Entropy regularizers
// admit the multiplicative-update analysis behind Theorem 2; quadratic
// ones do not, and the ablation measures what that buys empirically.
//
// A Proximal caches its constraint rows, objective buffers, and solver
// workspace across Solve calls (rebinding the per-instance values each
// time), so it must not be shared between goroutines.
type Proximal struct {
	// Sigma is the movement scale σ (default 1); larger values penalize
	// movement less.
	Sigma float64
	// Solver overrides the per-slot ALM options (zero = defaults).
	Solver alm.Options

	// Cached per-shape state, lazily (re)built when the instance shape
	// changes and refreshed (RHS, prices) on every call.
	obj    *proximalObjective
	groups *alm.Groups
	lower  []float64
	served []float64
	ws     alm.Workspace
}

// Name identifies the algorithm in experiment output.
func (p *Proximal) Name() string { return "online-proximal" }

// prepare sizes (or resizes) the cached state for in's shape and
// refreshes every instance-dependent value: constraint right-hand sides
// and the quadratic movement factors.
func (p *Proximal) prepare(in *model.Instance, sigma float64) {
	if p.obj == nil || p.obj.nI != in.I || p.obj.nJ != in.J {
		p.obj = &proximalObjective{
			nI:      in.I,
			nJ:      in.J,
			coef:    make([]float64, in.I*in.J),
			prevTot: make([]float64, in.I),
			rcFac:   make([]float64, in.I),
			mgFac:   make([]float64, in.I),
			tot:     make([]float64, in.I),
		}
		p.groups = slotDemandCapacityGroups(in)
		p.lower = make([]float64, in.I*in.J)
		p.served = make([]float64, in.J)
	}
	// Demand and explicit capacity rows (the complement rows exist for
	// the entropy analysis; the proximal ablation has no such analysis).
	// Refresh RHS in place: a same-shaped instance may still carry
	// different workloads and capacities.
	refreshSlotDemandCapacityRHS(p.groups, in)
	for i := 0; i < in.I; i++ {
		p.obj.rcFac[i] = in.WRc * in.ReconfPrice[i] / sigma
		p.obj.mgFac[i] = in.WMg * (in.MigOutPrice[i] + in.MigInPrice[i]) / sigma
	}
}

// slotDemandCapacityGroups builds the structured demand rows Σ_i x_ij ≥
// λ_j followed by capacity rows −Σ_j x_ij ≥ −C_i for one slot block.
func slotDemandCapacityGroups(in *model.Instance) *alm.Groups {
	rows := make([]alm.GroupRow, 0, in.J+in.I)
	for j := 0; j < in.J; j++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupUserSum, Index: j, RHS: in.Workload[j]})
	}
	for i := 0; i < in.I; i++ {
		rows = append(rows, alm.GroupRow{Kind: alm.GroupCloudSumNeg, Index: i, RHS: -in.Capacity[i]})
	}
	return &alm.Groups{I: in.I, J: in.J, Blocks: 1, Rows: rows}
}

// refreshSlotDemandCapacityRHS rewrites the right-hand sides of rows
// built by slotDemandCapacityGroups for the given instance.
func refreshSlotDemandCapacityRHS(g *alm.Groups, in *model.Instance) {
	for j := 0; j < in.J; j++ {
		g.Rows[j].RHS = in.Workload[j]
	}
	for i := 0; i < in.I; i++ {
		g.Rows[in.J+i].RHS = -in.Capacity[i]
	}
}

// Solve runs the proximal policy over the instance.
func (p *Proximal) Solve(in *model.Instance) (model.Schedule, error) {
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 1
	}
	sopts := p.Solver
	if sopts.MaxOuter == 0 {
		sopts.MaxOuter = 50
	}
	if sopts.InnerIters == 0 {
		sopts.InnerIters = 700
	}
	if sopts.FeasTol == 0 {
		sopts.FeasTol = 1e-7
	}
	if sopts.Penalty == 0 {
		sopts.Penalty = 2
	}

	p.prepare(in, sigma)
	obj := p.obj

	prev := in.InitialAlloc()
	sched := make(model.Schedule, 0, in.T)
	var warmDuals []float64
	for t := 0; t < in.T; t++ {
		in.StaticCoeffInto(t, obj.coef)
		obj.prev = prev.X
		prev.CloudTotalsInto(obj.prevTot)
		opts := sopts
		opts.Workspace = &p.ws
		opts.WarmX = prev.X
		opts.WarmDuals = warmDuals
		res, err := alm.Solve(&alm.Problem{
			Obj: obj, N: in.I * in.J,
			Lower:  p.lower,
			Groups: p.groups,
		}, opts)
		if err != nil {
			return nil, fmt.Errorf("core: proximal slot %d: %w", t, err)
		}
		// res.X aliases the workspace; copy before retaining.
		x := model.Alloc{I: in.I, J: in.J, X: append([]float64(nil), res.X...)}
		repair(in, x, p.served)
		sched = append(sched, x)
		prev = x
		warmDuals = res.Duals
	}
	return sched, nil
}

// proximalObjective is the quadratic-movement slot objective.
type proximalObjective struct {
	nI, nJ  int
	coef    []float64
	prev    []float64
	prevTot []float64
	rcFac   []float64 // w_rc·c_i/σ
	mgFac   []float64 // w_mg·b_i/σ
	tot     []float64 // scratch
}

var _ fista.Objective = (*proximalObjective)(nil)

// Eval implements fista.Objective.
func (o *proximalObjective) Eval(x, grad []float64) float64 {
	f := 0.0
	for i := 0; i < o.nI; i++ {
		s := 0.0
		row := x[i*o.nJ : (i+1)*o.nJ]
		for _, v := range row {
			s += v
		}
		o.tot[i] = s
	}
	for i := 0; i < o.nI; i++ {
		d := o.tot[i] - o.prevTot[i]
		f += o.rcFac[i] / 2 * d * d
		rcGrad := o.rcFac[i] * d
		base := i * o.nJ
		for j := 0; j < o.nJ; j++ {
			k := base + j
			v := x[k]
			dv := v - o.prev[k]
			f += o.coef[k]*v + o.mgFac[i]/2*dv*dv
			if grad != nil {
				grad[k] = o.coef[k] + rcGrad + o.mgFac[i]*dv
			}
		}
	}
	return f
}
