package core

import (
	"math"
	"testing"

	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

// TestStructuredMatchesDenseRows runs the full online algorithm with the
// structured group-sum kernel and with the dense sparse-row reference on
// the same instance and requires the per-slot decisions, total costs, and
// the certified lower bounds to agree.
//
// Two effects bound how tight this end-to-end comparison can be. First,
// inner solves are inexact, so the two arithmetic paths land at slightly
// different points inside the solver's tolerance ball, and the drift
// chains through warm starts and prevTot across slots (slot 0 agrees to
// ~1e-9; later slots to ~1e-3 scaled). Second, P2's rows are linearly
// dependent — complement row i equals the sum of all demand rows plus
// capacity row i, since Σ_{k≠i} m_k = M − m_i — so the optimal dual set
// is a face, not a point, and raw multiplier vectors legitimately differ
// between the paths even where X agrees to round-off. The duals are
// therefore compared through their consumer, the competitive-ratio
// certificate, whose lower bound is invariant on the optimal face; exact
// per-evaluation kernel agreement (1e-10) and converged-dual agreement on
// cold-started solves are pinned by the property tests in
// internal/solver/alm.
func TestStructuredMatchesDenseRows(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 8, Horizon: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tight per-slot solves keep the warm-start chains from drifting
	// apart within the solver's slack.
	opts := alm.Options{MaxOuter: 200, InnerIters: 2000,
		FeasTol: 1e-9, DualTol: 1e-7, ObjTol: 1e-11}
	run := func(dense bool) *OnlineApprox {
		alg := NewOnlineApprox(in, Options{DenseRows: dense, Solver: opts})
		if _, err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		return alg
	}
	structured := run(false)
	dense := run(true)

	ss, ds := structured.Schedule(), dense.Schedule()
	for tt := range ss {
		for k := range ss[tt].X {
			if d := math.Abs(ss[tt].X[k] - ds[tt].X[k]); d > 5e-3*(1+math.Abs(ds[tt].X[k])) {
				t.Errorf("slot %d: x[%d] = %g structured vs %g dense", tt, k, ss[tt].X[k], ds[tt].X[k])
			}
		}
	}
	sb, err := in.Evaluate(ss)
	if err != nil {
		t.Fatal(err)
	}
	db, err := in.Evaluate(ds)
	if err != nil {
		t.Fatal(err)
	}
	st, dt := in.Total(sb), in.Total(db)
	if d := math.Abs(st-dt) / (1 + math.Abs(dt)); d > 1e-5 {
		t.Errorf("total cost %g structured vs %g dense", st, dt)
	}

	sCert, err := structured.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	dCert, err := dense.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if v := sCert.Feasibility.Max(); v > 1e-6 {
		t.Errorf("structured dual feasibility violation %g", v)
	}
	if v := dCert.Feasibility.Max(); v > 1e-6 {
		t.Errorf("dense dual feasibility violation %g", v)
	}
	slb, dlb := sCert.LowerBoundP1(), dCert.LowerBoundP1()
	if d := math.Abs(slb-dlb) / (1 + math.Abs(dlb)); d > 1e-3 {
		t.Errorf("certified lower bound %g structured vs %g dense", slb, dlb)
	}
}

// TestStructuredCertificateStillValid checks the dual-certificate
// machinery consumes structured-path duals as well as it did dense ones:
// the certified lower bound must stay positive, below the online cost,
// and the constructed dual point must stay feasible to round-off.
func TestStructuredCertificateStillValid(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 8, Horizon: 5, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	alg := NewOnlineApprox(in, Options{})
	sched, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	online := in.Total(b)
	cert, err := alg.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if lb := cert.LowerBoundP1(); lb <= 0 {
		t.Errorf("certified lower bound %g, want positive", lb)
	} else if lb > online*(1+1e-9) {
		t.Errorf("certified lower bound %g exceeds online cost %g", lb, online)
	}
	if v := cert.Feasibility.Max(); v > 1e-6 {
		t.Errorf("dual feasibility violation %g, want round-off level", v)
	}
}

// TestStepWorkersByteIdentical pins the intra-evaluation parallelism
// discipline at the algorithm level: with the gating grain forced down so
// the objective rows actually fan out, the full online run must produce
// bitwise-identical decisions and duals for any Solver.Workers value.
func TestStepWorkersByteIdentical(t *testing.T) {
	oldEval := evalParGrain
	evalParGrain = 1
	defer func() { evalParGrain = oldEval }()

	in, _, err := scenario.Rome(scenario.Config{Users: 10, Horizon: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *OnlineApprox {
		alg := NewOnlineApprox(in, Options{Solver: alm.Options{Workers: workers}})
		if _, err := alg.Run(); err != nil {
			t.Fatal(err)
		}
		return alg
	}
	base := run(1)
	bs := base.Schedule()
	bTheta, bRho := base.Duals()
	for _, w := range []int{2, 4, 7} {
		got := run(w)
		gs := got.Schedule()
		for tt := range bs {
			for k := range bs[tt].X {
				if gs[tt].X[k] != bs[tt].X[k] {
					t.Fatalf("workers=%d slot %d: x[%d] = %v != serial %v",
						w, tt, k, gs[tt].X[k], bs[tt].X[k])
				}
			}
		}
		gTheta, gRho := got.Duals()
		for tt := range bTheta {
			for j := range bTheta[tt] {
				if gTheta[tt][j] != bTheta[tt][j] {
					t.Fatalf("workers=%d slot %d: theta[%d] differs", w, tt, j)
				}
			}
			for i := range bRho[tt] {
				if gRho[tt][i] != bRho[tt][i] {
					t.Fatalf("workers=%d slot %d: rho[%d] differs", w, tt, i)
				}
			}
		}
	}
}
