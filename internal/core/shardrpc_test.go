package core

import (
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
	"edgealloc/internal/solver/shardrpc"
)

// newTestWorker starts an in-process shard worker: the production
// ShardHost behind the production HTTP server, on a loopback listener.
func newTestWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(shardrpc.NewServer(NewShardHost()))
	t.Cleanup(srv.Close)
	return srv
}

// distInstance is the shared test instance: small enough that the
// ultra-tight stack solves P2 to ~1e-9, big enough that a 3-shard split
// is nondegenerate.
func distInstance() *model.Instance {
	return conform.GenInstance(conform.GenConfig{Seed: 11, I: 4, J: 6, T: 4})
}

// TestDistributedMatchesInProcessBitwise pins the transport's core
// promise: with healthy workers, placing the shard blocks behind the RPC
// boundary changes nothing — the schedule is byte-identical to the same
// options solved in process, across the composing tiers (candidates,
// fast-math).
func TestDistributedMatchesInProcessBitwise(t *testing.T) {
	in := distInstance()
	cases := []struct {
		name string
		opts Options
	}{
		{"shards", Options{Shards: 3}},
		{"one shard", Options{Shards: 1}},
		{"more shards than workers", Options{Shards: 5}},
		{"with candidates", Options{Shards: 3, Candidates: 2}},
		{"with fastmath", Options{Shards: 2, FastMath: true}},
		{"with fastmath32", Options{Shards: 2, FastMathF32: true}},
	}
	workers := []string{newTestWorker(t).URL, newTestWorker(t).URL}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			local, err := NewOnlineApprox(in, tc.opts).Run()
			if err != nil {
				t.Fatal(err)
			}
			dopts := tc.opts
			dopts.ShardWorkers = workers
			alg := NewOnlineApprox(in, dopts)
			dist, err := alg.Run()
			if err != nil {
				t.Fatal(err)
			}
			for tt := range local {
				if !allocsEqual(local[tt], dist[tt]) {
					t.Fatalf("slot %d: distributed schedule differs from in-process", tt)
				}
			}
			if st := alg.ShardStats(); st.RemoteFallbacks != 0 {
				t.Fatalf("healthy workers folded %d blocks", st.RemoteFallbacks)
			}
		})
	}
}

// chaosWorker is a worker whose hosted state can be wiped mid-run: every
// restartEvery-th solve request is preceded by swapping in a fresh
// ShardHost, which is exactly what a killed-and-restarted edgeshard
// process looks like to the coordinator (same address, empty state).
func chaosWorker(t *testing.T, restartEvery int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var handler atomic.Value
	handler.Store(shardrpc.NewServer(NewShardHost()))
	var solves, restarts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasSuffix(r.URL.Path, "/solve") && solves.Add(1)%restartEvery == 0 {
			restarts.Add(1)
			handler.Store(shardrpc.NewServer(NewShardHost()))
		}
		handler.Load().(*shardrpc.Server).ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)
	return srv, &restarts
}

// TestDistributedWorkerRestartMatchesReference is the chaos conformance
// test: workers that keep losing all hosted state mid-run (restarts
// strike between solves, between rounds, and across slot boundaries)
// must leave the run feasible and within 1e-8 of the uninterrupted
// in-process reference — a restart costs at most one coordination round,
// which the convergence gates re-derive.
func TestDistributedWorkerRestartMatchesReference(t *testing.T) {
	in := distInstance()
	opts := shardTestOpts(3)
	ref, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatal(err)
	}

	w1, restarts1 := chaosWorker(t, 17)
	w2, restarts2 := chaosWorker(t, 29)
	dopts := opts
	dopts.ShardWorkers = []string{w1.URL, w2.URL}
	alg := NewOnlineApprox(in, dopts)
	dist, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if restarts1.Load()+restarts2.Load() == 0 {
		t.Fatal("chaos workers never restarted; the test exercised nothing")
	}

	if rep := conform.Check(in, dist, nil, conform.Options{}); !rep.OK() {
		t.Fatalf("chaos run broke feasibility: %v", rep.Err())
	}
	rc, dc := totalOf(t, in, ref), totalOf(t, in, dist)
	if d := math.Abs(rc-dc) / (1 + math.Abs(rc)); d > 1e-8 {
		t.Fatalf("chaos run cost %g vs reference %g (rel %g > 1e-8)", dc, rc, d)
	}
}

// TestDistributedDeadWorkersFoldToLocal pins graceful degradation: when
// workers are unreachable from the start, every block folds back to the
// in-process mirror and the run completes byte-identical to the purely
// local sharded solve, with the folds visible in ShardStats.
func TestDistributedDeadWorkersFoldToLocal(t *testing.T) {
	in := distInstance()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from the first dial

	opts := Options{Shards: 3}
	local, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("all workers dead", func(t *testing.T) {
		dopts := opts
		dopts.ShardWorkers = []string{dead.URL}
		dopts.ShardRPCRetries = -1
		alg := NewOnlineApprox(in, dopts)
		dist, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		for tt := range local {
			if !allocsEqual(local[tt], dist[tt]) {
				t.Fatalf("slot %d: folded schedule differs from in-process", tt)
			}
		}
		if st := alg.ShardStats(); st.RemoteFallbacks == 0 {
			t.Fatal("dead workers produced no recorded fallbacks")
		}
	})

	t.Run("one dead one live", func(t *testing.T) {
		dopts := opts
		dopts.ShardWorkers = []string{dead.URL, newTestWorker(t).URL}
		dopts.ShardRPCRetries = -1
		alg := NewOnlineApprox(in, dopts)
		dist, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		for tt := range local {
			if !allocsEqual(local[tt], dist[tt]) {
				t.Fatalf("slot %d: mixed-pool schedule differs from in-process", tt)
			}
		}
		if st := alg.ShardStats(); st.RemoteFallbacks == 0 {
			t.Fatal("the dead worker's blocks did not fold")
		}
	})
}

// TestDistSoak is the harness entry point of scripts/dist_soak.sh: it
// runs only when DIST_SOAK_WORKERS names externally launched edgeshard
// workers (which the script kills and restarts throughout the run) and
// requires the distributed solve to stay feasible and within 1e-8 of the
// in-process reference no matter what the chaos loop does to the pool.
func TestDistSoak(t *testing.T) {
	env := os.Getenv("DIST_SOAK_WORKERS")
	if env == "" {
		t.Skip("set DIST_SOAK_WORKERS=http://host:port,... (see scripts/dist_soak.sh)")
	}
	var workers []string
	for _, w := range strings.Split(env, ",") {
		if w = strings.TrimSpace(w); w != "" {
			workers = append(workers, w)
		}
	}
	in := conform.GenInstance(conform.GenConfig{Seed: 7, I: 5, J: 16, T: 8})
	opts := shardTestOpts(4)
	ref, err := NewOnlineApprox(in, opts).Run()
	if err != nil {
		t.Fatal(err)
	}

	dopts := opts
	dopts.ShardWorkers = workers
	dopts.ShardRPCTimeout = 5 * time.Second
	alg := NewOnlineApprox(in, dopts)
	start := time.Now()
	dist, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := alg.ShardStats()
	t.Logf("soak: %d workers, %v, stats %+v", len(workers), time.Since(start).Round(time.Millisecond), st)

	if rep := conform.Check(in, dist, nil, conform.Options{}); !rep.OK() {
		t.Fatalf("soak run broke feasibility: %v", rep.Err())
	}
	rc, dc := totalOf(t, in, ref), totalOf(t, in, dist)
	if d := math.Abs(rc-dc) / (1 + math.Abs(rc)); d > 1e-8 {
		t.Fatalf("soak run cost %g vs reference %g (rel %g > 1e-8)", dc, rc, d)
	}
}
