package core

// Ablation benchmarks for the design choices called out in DESIGN.md:
// warm-starting the per-slot ALM from the previous slot's primal/dual
// pair, and the effect of the regularization strength ε on solve effort.

import (
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

func benchInstance(b *testing.B) *model.Instance {
	b.Helper()
	in, _, err := scenario.Rome(scenario.Config{Users: 20, Horizon: 6, Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// BenchmarkP2SlotWarmStart measures a mid-horizon slot solve with the
// previous slot's solution and duals as the starting point (the
// production path).
func BenchmarkP2SlotWarmStart(b *testing.B) {
	in := benchInstance(b)
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Step(0); err != nil {
		b.Fatal(err)
	}
	prev := alg.prev.Clone()
	duals := append([]float64(nil), alg.warmDuals...)
	obj := newP2Objective(in, 1, prev, 1, 1)
	prob := &alm.Problem{
		Obj: obj, N: in.I * in.J,
		Lower: make([]float64, in.I*in.J),
		Cons:  p2Constraints(in, 1),
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := alm.Solve(prob, alm.Options{
			MaxOuter: 60, InnerIters: 900, FeasTol: 1e-7, Penalty: 2,
			WarmX: prev.X, WarmDuals: duals,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InnerIters), "inner-iters")
	}
}

// BenchmarkP2SlotColdStart solves the same slot from scratch — the
// ablated variant the warm start is measured against.
func BenchmarkP2SlotColdStart(b *testing.B) {
	in := benchInstance(b)
	alg := NewOnlineApprox(in, Options{})
	if _, err := alg.Step(0); err != nil {
		b.Fatal(err)
	}
	prev := alg.prev.Clone()
	obj := newP2Objective(in, 1, prev, 1, 1)
	prob := &alm.Problem{
		Obj: obj, N: in.I * in.J,
		Lower: make([]float64, in.I*in.J),
		Cons:  p2Constraints(in, 1),
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := alm.Solve(prob, alm.Options{
			MaxOuter: 60, InnerIters: 900, FeasTol: 1e-7, Penalty: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.InnerIters), "inner-iters")
	}
}

// BenchmarkP2SlotEpsilon sweeps ε: smaller ε sharpens the entropy wall
// near zero and typically costs inner iterations.
func BenchmarkP2SlotEpsilon(b *testing.B) {
	in := benchInstance(b)
	for _, eps := range []float64{1e-2, 1, 1e2} {
		b.Run(formatEps(eps), func(b *testing.B) {
			for n := 0; n < b.N; n++ {
				alg := NewOnlineApprox(in, Options{Epsilon1: eps, Epsilon2: eps})
				if _, err := alg.Step(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func formatEps(eps float64) string {
	switch {
	case eps < 0.1:
		return "eps=0.01"
	case eps < 10:
		return "eps=1"
	default:
		return "eps=100"
	}
}
