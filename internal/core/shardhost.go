package core

import (
	"math"
	"sync"
	"time"

	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/shardrpc"
)

// hostBlockTTL bounds how long a hosted block outlives its last RPC. A
// coordinator that vanishes mid-run (crashed edgesim, dropped edged
// session) would otherwise leak its blocks in the worker forever; the
// protocol needs no worker-side state across slots — every slot starts
// with a full begin-slot push — so eviction can never lose anything a
// re-push cannot replace.
const hostBlockTTL = 15 * time.Minute

// ShardHost is the worker-side implementation of shardrpc.Host: it keeps
// the blocks pushed by coordinators and runs their consensus x-steps
// with exactly the in-process block-solve code path (same objective,
// same ALM budget, same demand projection), so a remote solve is bitwise
// identical to the local solve it replaces. cmd/edgeshard serves it over
// HTTP.
//
// Blocks are independent: distinct blocks solve concurrently (the
// coordinator fans its shards out in parallel), while calls on one block
// serialize on its own mutex.
type ShardHost struct {
	mu     sync.Mutex
	blocks map[string]*hostedBlock
}

var _ shardrpc.Host = (*ShardHost)(nil)

// NewShardHost returns an empty host.
func NewShardHost() *ShardHost {
	return &ShardHost{blocks: make(map[string]*hostedBlock)}
}

// hostedBlock is one coordinator-pushed shard block: the packed
// objective state of shardBlock, rebuilt from a BlockSpec instead of
// bound from a dense instance.
type hostedBlock struct {
	mu        sync.Mutex
	slot, gen int
	touched   time.Time

	obj    p2ShardObjective
	groups alm.Groups
	lower  []float64
	warm   []float64
	theta  []float64
	demand []float64
	served []float64
	ws     alm.Workspace
	sopts  alm.Options
}

// BeginSlot implements shardrpc.Host.
func (h *ShardHost) BeginSlot(spec *shardrpc.BlockSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	now := time.Now()
	h.mu.Lock()
	h.evictIdle(now)
	b := h.blocks[spec.ID]
	if b == nil {
		b = &hostedBlock{}
		h.blocks[spec.ID] = b
	}
	h.mu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.load(spec, now)
	return nil
}

// Solve implements shardrpc.Host.
func (h *ShardHost) Solve(req *shardrpc.SolveRequest) (*shardrpc.SolveResponse, error) {
	b, err := h.get(req.ID, req.Slot, req.Gen)
	if err != nil {
		return nil, err
	}
	defer b.mu.Unlock()
	if len(req.Target) != b.obj.nI {
		return nil, &shardrpc.Error{Code: shardrpc.CodeBadRequest,
			Msg: "target length does not match the block's cloud count"}
	}
	nnz := len(b.warm)
	totals := make([]float64, b.obj.nI)
	if nnz == 0 {
		return &shardrpc.SolveResponse{Totals: totals}, nil
	}
	b.obj.rho = req.Rho
	b.obj.target = req.Target
	prob := alm.Problem{Obj: &b.obj, N: nnz, Lower: b.lower, Groups: &b.groups}
	sopts := b.sopts
	sopts.Workspace = &b.ws
	sopts.WarmX = b.warm
	sopts.WarmDuals = b.theta
	res, err := alm.Solve(&prob, sopts)
	if err != nil {
		return nil, &shardrpc.Error{Code: shardrpc.CodeInternal, Msg: err.Error()}
	}
	copy(b.warm, res.X)
	copy(b.theta, res.Duals)
	packedProjectDemand(b.warm, b.obj.cols, b.demand, b.served)
	packedTotalsInto(totals, b.warm, b.obj.rowPtr)
	return &shardrpc.SolveResponse{Totals: totals, Outer: res.Outer, Inner: res.InnerIters}, nil
}

// State implements shardrpc.Host.
func (h *ShardHost) State(req *shardrpc.StateRequest) (*shardrpc.StateResponse, error) {
	b, err := h.get(req.ID, req.Slot, req.Gen)
	if err != nil {
		return nil, err
	}
	defer b.mu.Unlock()
	return &shardrpc.StateResponse{
		X:     append([]float64(nil), b.warm...),
		Theta: append([]float64(nil), b.theta...),
	}, nil
}

// Commit implements shardrpc.Host. The slot boundary carries no worker
// state — the next begin-slot replaces everything — so commit is a
// liveness touch only.
func (h *ShardHost) Commit(req *shardrpc.CommitRequest) error {
	b, err := h.get(req.ID, req.Slot, -1)
	if err != nil {
		return err
	}
	b.mu.Unlock()
	return nil
}

// Blocks reports how many blocks the host currently holds.
func (h *ShardHost) Blocks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.blocks)
}

// get returns the locked block hosting (id, slot, gen), or an
// unknown-block error the client answers with a spec re-push. gen < 0
// skips the generation check (commit).
func (h *ShardHost) get(id string, slot, gen int) (*hostedBlock, error) {
	h.mu.Lock()
	b := h.blocks[id]
	h.mu.Unlock()
	if b == nil {
		return nil, &shardrpc.Error{Code: shardrpc.CodeUnknownBlock, Msg: "block " + id + " not hosted"}
	}
	b.mu.Lock()
	if b.slot != slot || (gen >= 0 && b.gen != gen) {
		b.mu.Unlock()
		return nil, &shardrpc.Error{Code: shardrpc.CodeUnknownBlock,
			Msg: "block " + id + " holds a different slot or generation"}
	}
	b.touched = time.Now()
	return b, nil
}

// evictIdle drops blocks idle past hostBlockTTL; h.mu must be held.
func (h *ShardHost) evictIdle(now time.Time) {
	for id, b := range h.blocks {
		if now.Sub(b.touched) > hostBlockTTL {
			delete(h.blocks, id)
		}
	}
}

// load rebuilds the block from a spec, retaining the spec's slices. The
// construction mirrors shardBlock.bind exactly: the same objective
// fields, the same scratch, the same demand rows.
func (b *hostedBlock) load(spec *shardrpc.BlockSpec, now time.Time) {
	b.slot, b.gen = spec.Slot, spec.Gen
	b.touched = now
	nnz := len(spec.Cols)
	scratch := b.obj // keep the grown scratch slices across reloads
	b.obj = p2ShardObjective{
		nI:     spec.NI,
		rowPtr: spec.RowPtr,
		cols:   spec.Cols,
		coef:   spec.Coef,
		prev:   spec.Prev,
		mgFac:  spec.MgFac,
		eps2:   spec.Eps2,
		fast:   spec.FastMath || spec.FastMath32,
		fast32: spec.FastMath32,
	}
	so := &b.obj
	switch {
	case !so.fast:
		so.lastNum = growFloats(scratch.lastNum, nnz)
		so.lastLg2 = growFloats(scratch.lastLg2, nnz)
		for k := range so.lastNum {
			so.lastNum[k] = math.NaN() // invalidate the log cache
		}
	case so.fast32:
		so.invDen32 = growFloats32(scratch.invDen32, nnz)
		so.ratio32 = growFloats32(scratch.ratio32, nnz)
		entropyInvDen32(so.invDen32, so.prev, so.eps2)
	default:
		so.invDen = growFloats(scratch.invDen, nnz)
		so.ratio = growFloats(scratch.ratio, nnz)
		entropyInvDen(so.invDen, so.prev, so.eps2)
	}
	rows := make([]alm.GroupRow, spec.NJ)
	for jl := 0; jl < spec.NJ; jl++ {
		rows[jl] = alm.GroupRow{Kind: alm.GroupUserSum, Index: jl, RHS: spec.Demand[jl]}
	}
	b.groups = alm.Groups{I: spec.NI, J: spec.NJ, Blocks: 1, Rows: rows,
		RowPtr: spec.RowPtr, Cols: spec.Cols}
	// growFloats zero-fills fresh tail capacity and lower is never
	// written, so it stays the all-zero bound vector.
	b.lower = growFloats(b.lower, nnz)
	b.warm = append(b.warm[:0], spec.Warm...)
	b.theta = append(b.theta[:0], spec.Theta...)
	b.demand = spec.Demand
	b.served = growFloats(b.served, spec.NJ)
	b.sopts = alm.Options{
		MaxOuter:      spec.Solver.MaxOuter,
		InnerIters:    spec.Solver.InnerIters,
		Penalty:       spec.Solver.Penalty,
		PenaltyGrowth: spec.Solver.PenaltyGrowth,
		FeasTol:       spec.Solver.FeasTol,
		ObjTol:        spec.Solver.ObjTol,
		DualTol:       spec.Solver.DualTol,
	}
}
