package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

// tightOpts are per-slot solver tolerances tight enough that two
// arithmetic paths solving the same convex program land in the same
// tolerance ball (see structured_test.go for the drift discussion).
// Tightening further is counterproductive: past ~1e-9 the outer loop
// stops converging within MaxOuter and the returned duals degrade.
func tightOpts() alm.Options {
	return alm.Options{MaxOuter: 200, InnerIters: 2000,
		FeasTol: 1e-9, DualTol: 1e-7, ObjTol: 1e-11}
}

// ultraTightOpts push the solver to ~1e-9 relative optimality. Only
// small instances converge under these within MaxOuter; Rome-sized
// solves hit the iteration cap and their duals degrade, which is why
// the Rome tests use tightOpts instead.
func ultraTightOpts() alm.Options {
	return alm.Options{MaxOuter: 400, InnerIters: 8000,
		FeasTol: 1e-10, DualTol: 1e-9, ObjTol: 1e-13}
}

// smallRandomInstance builds a random instance small enough (I ≤ 5,
// J ≤ 5) that the ALM/FISTA stack solves P2 to ~1e-9 relative
// optimality, which is what lets the certified-equality property be
// checked at 1e-8 rather than at the ~1e-6 plateau of Rome-sized solves.
func smallRandomInstance(rng *rand.Rand) *model.Instance {
	nI := 3 + rng.Intn(3)
	nJ := 2 + rng.Intn(4)
	T := 3
	in := &model.Instance{
		I: nI, J: nJ, T: T,
		WOp: 1, WSq: 1, WRc: 1, WMg: 1,
	}
	for i := 0; i < nI; i++ {
		in.Capacity = append(in.Capacity, 2+4*rng.Float64())
		in.ReconfPrice = append(in.ReconfPrice, 0.5+rng.Float64())
		in.MigOutPrice = append(in.MigOutPrice, 0.3+0.4*rng.Float64())
		in.MigInPrice = append(in.MigInPrice, 0.3+0.4*rng.Float64())
	}
	in.InterDelay = make([][]float64, nI)
	for i := range in.InterDelay {
		in.InterDelay[i] = make([]float64, nI)
	}
	for i := 0; i < nI; i++ {
		for k := i + 1; k < nI; k++ {
			d := 0.5 + 3*rng.Float64()
			in.InterDelay[i][k] = d
			in.InterDelay[k][i] = d
		}
	}
	for j := 0; j < nJ; j++ {
		in.Workload = append(in.Workload, 0.3+rng.Float64())
	}
	for t := 0; t < T; t++ {
		op := make([]float64, nI)
		for i := range op {
			op[i] = 0.5 + 3*rng.Float64()
		}
		attach := make([]int, nJ)
		acc := make([]float64, nJ)
		for j := range attach {
			attach[j] = rng.Intn(nI)
			acc[j] = rng.Float64()
		}
		in.OpPrice = append(in.OpPrice, op)
		in.Attach = append(in.Attach, attach)
		in.AccessDelay = append(in.AccessDelay, acc)
	}
	return in
}

// coupledSlotGaps runs the dense and candidate-set paths over the same
// instance with the cross-slot drift removed: after each slot the sparse
// algorithm's previous-decision buffer is overwritten with the dense
// decision, so both paths solve the *identical* P2 program at every
// slot. It returns the per-slot relative P2-objective gap between the
// two decisions, measured under an independently constructed objective.
func coupledSlotGaps(t *testing.T, in *model.Instance, candidates int, sopts alm.Options) []float64 {
	t.Helper()
	dense := NewOnlineApprox(in, Options{Solver: sopts})
	sparse := NewOnlineApprox(in, Options{Solver: sopts, Candidates: candidates})
	gaps := make([]float64, 0, in.T)
	for tt := 0; tt < in.T; tt++ {
		prevX := append([]float64(nil), dense.prev.X...)
		xd, err := dense.Step(tt)
		if err != nil {
			t.Fatal(err)
		}
		xs, err := sparse.Step(tt)
		if err != nil {
			t.Fatal(err)
		}
		obj := newP2Objective(in, tt,
			model.Alloc{I: in.I, J: in.J, X: prevX},
			sparse.opts.Epsilon1, sparse.opts.Epsilon2)
		fd := obj.Eval(xd.X, nil)
		fs := obj.Eval(xs.X, nil)
		gaps = append(gaps, math.Abs(fs-fd)/(1+math.Abs(fd)))
		// Couple the next slot: both paths continue from the dense decision.
		copy(sparse.prevBuf, xd.X)
	}
	if st := sparse.SparseStats(); st.Slots != in.T {
		t.Errorf("sparse stats: %d slots, want %d", st.Slots, in.T)
	}
	return gaps
}

// TestSparseMatchesDenseSmallInstances is the certified-equality
// property test of the candidate-set path: over random instances with
// the most aggressive pruning (Candidates = 1, so candidate sets are as
// wrong as the seed can make them and the pricing pass carries the whole
// burden), every slot's reduced solve must match the dense solve's P2
// cost to 1e-8 relative.
func TestSparseMatchesDenseSmallInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		in := smallRandomInstance(rng)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		for tt, d := range coupledSlotGaps(t, in, 1, ultraTightOpts()) {
			if d > 1e-8 {
				t.Errorf("trial %d slot %d (I=%d J=%d): P2 objective rel gap %g > 1e-8",
					trial, tt, in.I, in.J, d)
			}
		}
	}
}

// TestSparseMatchesDenseSlotCoupledRome is the same coupled comparison
// on a Rome mobility instance. At this size the ALM/FISTA stack itself
// plateaus around 1e-6 absolute optimality (two *dense* solves from
// different warm starts differ by as much), so the threshold is the
// solver's slack, not the reduction's: with the full candidate set the
// packed path reproduces the dense solve bit-for-bit, and the
// 1e-8-level certified-equality claim is pinned by
// TestSparseMatchesDenseSmallInstances where the solver can reach it.
func TestSparseMatchesDenseSlotCoupledRome(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 8, Horizon: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for tt, d := range coupledSlotGaps(t, in, 2, tightOpts()) {
		if d > 5e-7 {
			t.Errorf("slot %d: P2 objective rel gap %g > 5e-7", tt, d)
		}
	}
}

// TestSparseFullRunFeasibleAndCertified runs the candidate-set path
// uncoupled over a full horizon and requires everything the dense path
// guarantees: Theorem-1 feasibility of the schedule, a valid
// competitive-ratio certificate (dual-feasible to round-off, positive,
// below the online cost, and within the parameterized ratio bound), and
// end-to-end cost agreement with the dense run (loosened to 1e-4 by the
// warm-start drift chaining through five uncoupled slots).
func TestSparseFullRunFeasibleAndCertified(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 8, Horizon: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	sparse := NewOnlineApprox(in, Options{Solver: tightOpts(), Candidates: 2})
	ss, err := sparse.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(ss, feasTol); err != nil {
		t.Fatalf("sparse schedule infeasible: %v", err)
	}
	st := sparse.SparseStats()
	if st.FinalNNZ >= in.I*in.J {
		t.Errorf("candidate path never pruned: nnz %d of %d", st.FinalNNZ, in.I*in.J)
	}
	dense := NewOnlineApprox(in, Options{Solver: tightOpts()})
	ds, err := dense.Run()
	if err != nil {
		t.Fatal(err)
	}
	scost := totalOf(t, in, ss)
	dcost := totalOf(t, in, ds)
	if d := math.Abs(scost-dcost) / (1 + math.Abs(dcost)); d > 1e-4 {
		t.Errorf("total cost %g sparse vs %g dense (rel %g)", scost, dcost, d)
	}

	cert, err := sparse.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	if v := cert.Feasibility.Max(); v > 1e-6 {
		t.Errorf("dual feasibility violation %g, want round-off level", v)
	}
	lb := cert.LowerBoundP1()
	if lb <= 0 {
		t.Errorf("certified lower bound %g, want positive", lb)
	}
	if lb > scost*(1+1e-9) {
		t.Errorf("certified lower bound %g exceeds online cost %g", lb, scost)
	}
	if r := RatioBound(in, sparse.opts.Epsilon1, sparse.opts.Epsilon2); scost > r*lb {
		t.Errorf("online cost %g above ratio bound %g × lower bound %g", scost, r, lb)
	}
}

// expansionInstance is a three-cloud, one-user instance built to defeat
// the candidate seed: the user stays attached to cloud 0 (whose only
// nearest-1 cloud is itself) and the workload starts there, so with
// Candidates = 1 slot 1's seed is K = {0}. Slot 1 then spikes cloud 0's
// operation price so hard that the true optimum migrates to cloud 2 —
// reachable only through the dual-feasibility pricing pass.
func expansionInstance() *model.Instance {
	in := &model.Instance{
		I:           3,
		J:           1,
		T:           2,
		Capacity:    []float64{4, 4, 4},
		InterDelay:  [][]float64{{0, 1, 2}, {1, 0, 1}, {2, 1, 0}},
		Workload:    []float64{1},
		ReconfPrice: []float64{1, 1, 1},
		MigOutPrice: []float64{0.5, 0.5, 0.5},
		MigInPrice:  []float64{0.5, 0.5, 0.5},
		WOp:         1, WSq: 1, WRc: 1, WMg: 1,
		OpPrice:     [][]float64{{1, 1.5, 2}, {60, 30, 1}},
		Attach:      [][]int{{0}, {0}},
		AccessDelay: [][]float64{{1}, {1}},
	}
	init := model.NewAlloc(3, 1)
	init.Set(0, 0, 1)
	in.Init = &init
	return in
}

// TestSparseForcedExpansion pins the expansion loop itself: on a seed
// that provably excludes the optimal cloud, the pricing pass must admit
// it (Expanded > 0, with at least one re-solve round) and the certified
// result must still match the dense solve.
func TestSparseForcedExpansion(t *testing.T) {
	in := expansionInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sparse := NewOnlineApprox(in, Options{Solver: tightOpts(), Candidates: 1})
	ss, err := sparse.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := sparse.SparseStats()
	if st.Expanded == 0 {
		t.Errorf("pricing pass admitted no pairs; expansion loop untested (stats %+v)", st)
	}
	if st.Rounds <= st.Slots {
		t.Errorf("no re-solve rounds recorded (stats %+v)", st)
	}
	dense := NewOnlineApprox(in, Options{Solver: tightOpts()})
	ds, err := dense.Run()
	if err != nil {
		t.Fatal(err)
	}
	for tt := range ds {
		for k := range ds[tt].X {
			if d := math.Abs(ss[tt].X[k] - ds[tt].X[k]); d > 1e-5 {
				t.Errorf("slot %d: x[%d] = %g sparse vs %g dense", tt, k, ss[tt].X[k], ds[tt].X[k])
			}
		}
	}
	// The spike must actually have moved the workload off cloud 0, or the
	// instance stopped exercising what it claims to.
	if ds[1].At(2, 0) < 0.5 {
		t.Fatalf("dense optimum kept workload on spiked cloud (x = %v); fix the instance", ds[1].X)
	}
}

// TestSparseWorkersByteIdentical extends the determinism contract to the
// ragged objective: with the gating grain forced down, the candidate-set
// run must be bitwise-identical for any Solver.Workers value.
func TestSparseWorkersByteIdentical(t *testing.T) {
	oldEval := evalParGrain
	evalParGrain = 1
	defer func() { evalParGrain = oldEval }()

	in, _, err := scenario.Rome(scenario.Config{Users: 10, Horizon: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) model.Schedule {
		alg := NewOnlineApprox(in, Options{Candidates: 3,
			Solver: alm.Options{Workers: workers}})
		s, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := run(1)
	for _, w := range []int{2, 4, 7} {
		got := run(w)
		for tt := range base {
			for k := range base[tt].X {
				if got[tt].X[k] != base[tt].X[k] {
					t.Fatalf("workers=%d slot %d: x[%d] = %v != serial %v",
						w, tt, k, got[tt].X[k], base[tt].X[k])
				}
			}
		}
	}
}

// TestSparseFullCandidateSetMatchesDenseExactly pins the layout
// equivalence underlying everything above: with Candidates = I nothing
// is pruned, the packed CSR layout enumerates the grid in dense order,
// and the candidate path must reproduce the dense path bit-for-bit.
func TestSparseFullCandidateSetMatchesDenseExactly(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 6, Horizon: 3, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	dense := NewOnlineApprox(in, Options{})
	ds, err := dense.Run()
	if err != nil {
		t.Fatal(err)
	}
	sparse := NewOnlineApprox(in, Options{Candidates: in.I})
	ss, err := sparse.Run()
	if err != nil {
		t.Fatal(err)
	}
	if st := sparse.SparseStats(); st.Expanded != 0 || st.Rounds != in.T {
		t.Errorf("full candidate set expanded: stats %+v", st)
	}
	for tt := range ds {
		for k := range ds[tt].X {
			if ss[tt].X[k] != ds[tt].X[k] {
				t.Fatalf("slot %d: x[%d] = %v sparse != %v dense", tt, k, ss[tt].X[k], ds[tt].X[k])
			}
		}
	}
}
