package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

func TestProximalFeasibleAndReasonable(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 8, Horizon: 6, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	p := &Proximal{}
	s, err := p.Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(s, 1e-5); err != nil {
		t.Fatal(err)
	}
	b, err := in.Evaluate(s)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity envelope: no worse than 3x the entropy variant on the same
	// instance (the ablation should be in the same league).
	alg := NewOnlineApprox(in, Options{})
	sa, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	ba, err := in.Evaluate(sa)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total(b) > 3*in.Total(ba) {
		t.Errorf("proximal %g wildly worse than entropy %g", in.Total(b), in.Total(ba))
	}
}

func TestProximalSigmaControlsInertia(t *testing.T) {
	// Small σ = heavy movement penalty: the schedule should migrate less
	// (lower migration cost) than with large σ.
	in, _, err := scenario.Rome(scenario.Config{Users: 6, Horizon: 8, Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	sticky, err := (&Proximal{Sigma: 0.05}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := (&Proximal{Sigma: 50}).Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	bSticky, err := in.Evaluate(sticky)
	if err != nil {
		t.Fatal(err)
	}
	bLoose, err := in.Evaluate(loose)
	if err != nil {
		t.Fatal(err)
	}
	if bSticky.Mg > bLoose.Mg+1e-9 {
		t.Errorf("sticky σ migrated more (%g) than loose σ (%g)", bSticky.Mg, bLoose.Mg)
	}
}

func TestProximalObjectiveGradient(t *testing.T) {
	in, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 2, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(54))
	prev := model.NewAlloc(in.I, in.J)
	for k := range prev.X {
		prev.X[k] = rng.Float64()
	}
	obj := &proximalObjective{
		nI:      in.I,
		nJ:      in.J,
		coef:    in.StaticCoeff(0),
		prev:    prev.X,
		prevTot: prev.CloudTotals(),
		rcFac:   make([]float64, in.I),
		mgFac:   make([]float64, in.I),
		tot:     make([]float64, in.I),
	}
	for i := 0; i < in.I; i++ {
		obj.rcFac[i] = in.ReconfPrice[i]
		obj.mgFac[i] = in.MigOutPrice[i] + in.MigInPrice[i]
	}
	n := in.I * in.J
	x := make([]float64, n)
	for k := range x {
		x[k] = rng.Float64()
	}
	grad := make([]float64, n)
	obj.Eval(x, grad)
	const h = 1e-6
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(n)
		orig := x[k]
		x[k] = orig + h
		fp := obj.Eval(x, nil)
		x[k] = orig - h
		fm := obj.Eval(x, nil)
		x[k] = orig
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-grad[k]) > 1e-4*(1+math.Abs(fd)) {
			t.Fatalf("grad[%d] = %g, finite difference %g", k, grad[k], fd)
		}
	}
}
