package core

import (
	"context"
	"math"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/par"
)

// This file implements the candidate-set (active-set) solving layer of
// the online algorithm. P2 is posed over the full I×J grid, but its cost
// geometry — service-quality delay d(l_{j,t}, i) plus migration
// penalties — puts almost all of each user's mass on a handful of clouds
// near its attachment, so at the optimum the vast majority of variables
// sit at the zero bound. With Options.Candidates = k the per-slot solve
// is restricted to the ragged space K_j = {k clouds nearest l_{j,t}} ∪
// {clouds with x'_{ij} > 0}: Σ_j |K_j| variables instead of I·J, and
// every FISTA iteration inside the ALM loop drops proportionally.
//
// The reduction is certified, not heuristic. Because every carryover
// cloud stays in K_j, a pruned pair has x'_{ij} = 0, so its migration
// regularizer vanishes at x_{ij} = 0 and the reduced objective equals
// the full objective on the embedded point (x_K, 0). After each reduced
// solve the converged ALM multipliers (θ'_j demand, ρ'_i complement,
// ν'_i capacity — the same S_D machinery the competitive-ratio
// certificate consumes) price every pruned pair:
//
//	redcost(i, j) = ā_{ij,t} + (ĉ_i/η_i)·ln((X_i+ε₁)/(X'_i+ε₁))
//	                − θ'_j − (Σ_k ρ'_k − ρ'_i) + ν'_i,
//
// the KKT stationarity residual of x_{ij} at its lower bound. If every
// pruned pair prices nonnegative, the embedded point satisfies the full
// problem's KKT system with the reduced duals — it IS the full optimum
// (to the solver's own dual accuracy, the same caveat the dense solve
// carries). Mispriced pairs join K_j and the solve resumes warm, on the
// union index set, with the multipliers carried over unchanged (the dual
// dimension never changes: rows are per-user and per-cloud, not
// per-variable). Sets only grow, so the loop terminates — in the worst
// case at the dense grid, which costs what the dense solve always cost.
type sparseState struct {
	builder *model.CandidateBuilder
	cand    model.CandidateSet
	// nearest[a] lists the Options.Candidates clouds closest to cloud a
	// by inter-cloud delay; users are seeded with nearest[l_{j,t}].
	nearest [][]int
	groups  *alm.Groups
	obj     *p2SparseObjective
	lower   []float64 // packed zeros (lower bound), grown on demand
	warm    []float64 // packed warm start, grown on demand
	xDense  []float64 // dense scatter of the latest reduced solution
	rcln    []float64 // per-cloud reconfiguration gradient at the optimum
	stats   SparseStats
	// incr holds the event-driven incremental state (Options.Incremental);
	// nil on the plain candidate path. See incremental.go.
	incr *incrState
}

// SparseStats counts the work of the candidate-set path for
// observability; retrieve with OnlineApprox.SparseStats.
type SparseStats struct {
	// Slots is the number of slots solved on the candidate path.
	Slots int
	// Rounds is the total number of reduced solves; Rounds − Slots is the
	// number of expansion re-solves the pricing pass triggered.
	Rounds int
	// Expanded is the total number of (i, j) pairs re-admitted by pricing.
	Expanded int
	// FinalNNZ is Σ_j |K_j| of the most recent certified solve.
	FinalNNZ int
	// InnerIters is the total number of FISTA iterations across all
	// reduced solves — the per-pair work multiplier the reduction divides.
	InnerIters int
	// OuterIters is the total number of ALM multiplier updates across all
	// reduced solves.
	OuterIters int
	// Frozen is the total number of users held at their carried decision
	// across committed slots (Options.Incremental; zero otherwise).
	Frozen int
	// Readmitted is the total number of frozen users the soundness gate
	// re-admitted to the active set (Options.Incremental; zero otherwise).
	Readmitted int
}

// SparseStats returns the candidate-set work counters (zero value when
// the candidate path is disabled).
func (o *OnlineApprox) SparseStats() SparseStats {
	if o.sparse == nil {
		return SparseStats{}
	}
	return o.sparse.stats
}

// initSparse builds the per-instance candidate-set state. The structured
// rows are the same demand/complement/capacity rows as the dense path
// (p2Groups) — only the variable layout differs, so the dual record and
// the certificate machinery are untouched.
func (o *OnlineApprox) initSparse(in *model.Instance) {
	// Incremental without Candidates still routes through the ragged
	// layer (frozen users must drop out of the program); the active users
	// then solve over all I clouds, so the reduction itself prunes
	// nothing and no pricing pass runs.
	k := o.opts.Candidates
	if k <= 0 {
		k = in.I
	}
	o.sparse = &sparseState{
		builder: model.NewCandidateBuilder(in.I, in.J),
		nearest: model.NearestClouds(in.InterDelay, k),
		groups:  p2Groups(in),
		obj: &p2SparseObjective{
			nI:      in.I,
			eps1:    o.opts.Epsilon1,
			eps2:    o.opts.Epsilon2,
			workers: o.opts.Solver.Workers,
			fast:    o.opts.FastMath,
			fast32:  o.opts.FastMathF32,
			rowF:    make([]float64, in.I),
			hitRow:  make([]int64, in.I),
			missRow: make([]int64, in.I),
		},
		xDense: make([]float64, in.I*in.J),
		rcln:   make([]float64, in.I),
	}
	if o.opts.Incremental {
		o.sparse.incr = newIncrState(in)
	}
}

// solveSparse runs slot t's certified reduced solve: seed candidate sets,
// solve, price, expand until dual-feasible. It returns the converged ALM
// result (duals in the standard θ, ρ, ν layout) and the dense scatter of
// the decision; the returned slice aliases sparse scratch and is only
// valid until the next call.
func (o *OnlineApprox) solveSparse(ctx context.Context, t int) (*alm.Result, []float64, error) {
	if o.sparse.incr != nil {
		return o.solveIncremental(ctx, t)
	}
	in, s := o.inst, o.sparse

	// Seed: per-user nearest clouds plus the support of the warm-start
	// point. The warm start is the previous decision — whose support is
	// exactly the carryover set that keeps migration terms exact — except
	// at a zero-allocation t = 0, where it is the slot's transportation
	// optimum (see feasibleWarmStart) and its support must be admitted
	// for the warm point to be representable.
	s.builder.Reset()
	for j := 0; j < in.J; j++ {
		s.builder.AddUserSet(j, s.nearest[in.Attach[t][j]])
	}
	warmDense := o.prev.X
	if t == 0 && allZero(o.prev.X) {
		if warm, err := feasibleWarmStart(in, t); err == nil {
			warmDense = warm
		}
	}
	s.builder.AddSupport(warmDense)
	s.builder.Build(&s.cand)

	for i := range s.obj.hitRow {
		s.obj.hitRow[i] = 0
		s.obj.missRow[i] = 0
	}

	sopts := o.opts.Solver
	sopts.Workspace = &o.ws
	sopts.Ctx = ctx
	if o.warmDuals != nil {
		sopts.WarmDuals = o.warmDuals
	}
	for {
		s.stats.Rounds++
		nnz := s.cand.NNZ()
		o.bindSparse(warmDense)
		o.prob = alm.Problem{
			Obj:    s.obj,
			N:      nnz,
			Lower:  s.lower[:nnz],
			Groups: s.groups,
		}
		sopts.WarmX = s.warm[:nnz]
		res, err := alm.Solve(&o.prob, sopts)
		if err != nil {
			return nil, nil, err
		}
		s.stats.InnerIters += res.InnerIters
		s.stats.OuterIters += res.Outer
		// Scatter before pricing: the dense image is both the expansion
		// warm start and, on certification, the slot's decision.
		s.scatter(res.X)
		added := o.priceAndExpand(res)
		if added == 0 {
			s.stats.Slots++
			s.stats.FinalNNZ = nnz
			return res, s.xDense, nil
		}
		s.stats.Expanded += added
		s.builder.Build(&s.cand)
		warmDense = s.xDense
		sopts.WarmDuals = res.Duals
	}
}

// bindSparse sizes the packed buffers for the current candidate set and
// gathers the slot's coefficients, previous decision, migration factors,
// and warm start from the dense objective state (which Step has already
// bound for the slot). Per-cloud constants are shared by aliasing.
func (o *OnlineApprox) bindSparse(warmDense []float64) {
	in, s := o.inst, o.sparse
	so, do := s.obj, o.obj
	nnz := s.cand.NNZ()
	so.rowPtr, so.cols = s.cand.RowPtr, s.cand.Cols
	so.coef = growFloats(so.coef, nnz)
	so.prev = growFloats(so.prev, nnz)
	so.mgFac = growFloats(so.mgFac, nnz)
	s.lower = growFloats(s.lower, nnz) // stays all-zero
	s.warm = growFloats(s.warm, nnz)
	switch {
	case !so.fast:
		so.lastNum = growFloats(so.lastNum, nnz)
		so.lastLg2 = growFloats(so.lastLg2, nnz)
	case so.fast32:
		so.invDen32 = growFloats32(so.invDen32, nnz)
		so.ratio32 = growFloats32(so.ratio32, nnz)
	default:
		so.invDen = growFloats(so.invDen, nnz)
		so.ratio = growFloats(so.ratio, nnz)
	}
	so.rcFac, so.prevTot = do.rcFac, do.prevTot
	nJ := in.J
	for i := 0; i < in.I; i++ {
		base := i * nJ
		for k := s.cand.RowPtr[i]; k < s.cand.RowPtr[i+1]; k++ {
			d := base + s.cand.Cols[k]
			so.coef[k] = do.coef[d]
			so.prev[k] = do.prev[d]
			so.mgFac[k] = do.mgFac[d]
			s.warm[k] = warmDense[d]
			if !so.fast {
				so.lastNum[k] = math.NaN() // invalidate the log cache
			}
		}
	}
	// The fast tier divides once per bind; evaluations then multiply.
	if so.fast {
		if so.fast32 {
			entropyInvDen32(so.invDen32, so.prev, so.eps2)
		} else {
			entropyInvDen(so.invDen, so.prev, so.eps2)
		}
	}
	s.groups.RowPtr, s.groups.Cols = s.cand.RowPtr, s.cand.Cols
}

// scatter writes the packed reduced solution into the dense image,
// zeroing every pruned pair.
func (s *sparseState) scatter(x []float64) {
	for k := range s.xDense {
		s.xDense[k] = 0
	}
	nJ := s.cand.J
	for i := 0; i+1 < len(s.cand.RowPtr); i++ {
		base := i * nJ
		for k := s.cand.RowPtr[i]; k < s.cand.RowPtr[i+1]; k++ {
			s.xDense[base+s.cand.Cols[k]] = x[k]
		}
	}
}

// priceAndExpand checks dual feasibility (KKT stationarity at the zero
// bound) on every pruned pair using the converged multipliers and admits
// the violated ones into the candidate sets, returning how many were
// added. Pruned pairs have x'_{ij} = 0 by the carryover rule, so their
// migration gradient at zero vanishes and the reduced cost needs only
// the static coefficient, the reconfiguration gradient, and the row
// multipliers.
func (o *OnlineApprox) priceAndExpand(res *alm.Result) int {
	in, s := o.inst, o.sparse
	nI, nJ := in.I, in.J
	eps1 := o.opts.Epsilon1
	for i := 0; i < nI; i++ {
		tot := 0.0
		for _, v := range res.X[s.cand.RowPtr[i]:s.cand.RowPtr[i+1]] {
			tot += v
		}
		s.rcln[i] = o.obj.rcFac[i] * math.Log((tot+eps1)/(o.obj.prevTot[i]+eps1))
	}
	theta := res.Duals[:nJ]
	rho := res.Duals[nJ : nJ+nI]
	nu := res.Duals[nJ+nI : nJ+2*nI]
	rhoSum := 0.0
	for _, v := range rho {
		rhoSum += v
	}
	tol := o.opts.CandidateTol
	added := 0
	for i := 0; i < nI; i++ {
		row := o.obj.coef[i*nJ : (i+1)*nJ]
		// Demand row j contributes −θ_j, complement rows i'≠i contribute
		// −(Σρ − ρ_i), and the negated capacity row i contributes +ν_i.
		base := s.rcln[i] - (rhoSum - rho[i]) + nu[i]
		for j, c := range row {
			if s.builder.Contains(i, j) {
				continue
			}
			if c+base-theta[j] < -tol*(1+math.Abs(c)) {
				s.builder.Add(i, j)
				added++
			}
		}
	}
	return added
}

// growFloats returns s resized to n, reusing capacity and otherwise
// reallocating with headroom so expansion rounds settle quickly.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]float64, n, n+n/2)
	copy(out, s[:cap(s)])
	return out
}

// p2SparseObjective evaluates P2's objective and gradient over a ragged
// candidate set, with the variable vector in the packed cloud-major CSR
// layout of model.CandidateSet. The math per kept pair is identical to
// p2Objective.evalRow — same static, migration, and reconfiguration
// terms, same zero-flow log skip and log memoization — applied to
// gathered per-variable constants; pruned pairs contribute exactly
// nothing, which is their true contribution at x = 0 given carryover.
type p2SparseObjective struct {
	nI     int
	rowPtr []int
	cols   []int

	coef  []float64 // packed weighted static coefficients
	prev  []float64 // packed x'_{ij}
	mgFac []float64 // packed wMg·b_i/τ_ij

	rcFac   []float64 // per cloud, aliases the dense objective's
	prevTot []float64 // per cloud, aliases the dense objective's

	// totOff, when non-nil, offsets each cloud's total inside the
	// reconfiguration regularizer by the flow its frozen users carry
	// (Options.Incremental): the reduced program sees X_i = A_i + F_i
	// with only the active part A_i as variables. Nil on the plain
	// candidate path, where the evaluation is bitwise unchanged.
	totOff []float64

	eps1, eps2 float64
	workers    int

	rowF []float64 // per-cloud partial objective values

	// hitRow/missRow count per-cloud log-cache outcomes (see p2Objective);
	// solveSparse resets them per slot so they accumulate across the
	// slot's expansion rounds.
	hitRow  []int64
	missRow []int64

	// Fast-math tier (see p2Objective): packed reciprocals and log
	// scratch, refilled by bindSparse each expansion round. fast32
	// selects the float32 storage width.
	fast     bool
	fast32   bool
	invDen   []float64
	ratio    []float64
	invDen32 []float32
	ratio32  []float32

	lastNum []float64 // packed log-cache keys (see p2Objective)
	lastLg2 []float64
}

// logCacheTotals sums the per-row cache counters accumulated since the
// start of the slot.
func (o *p2SparseObjective) logCacheTotals() (hits, misses int64) {
	for i := range o.hitRow {
		hits += o.hitRow[i]
		misses += o.missRow[i]
	}
	return hits, misses
}

// Eval implements fista.Objective. Cloud rows are independent exactly as
// in the dense objective, so they fan out over the same bounded pool
// with per-row partials reduced in index order (byte-identical for any
// worker count).
func (o *p2SparseObjective) Eval(x, grad []float64) float64 {
	if w := par.Bound(o.workers, len(x), evalParGrain); w <= 1 {
		o.evalRows(x, grad, 0, o.nI)
	} else {
		par.Ranges(w, o.nI, func(lo, hi int) { o.evalRows(x, grad, lo, hi) })
	}
	f := 0.0
	for _, v := range o.rowF {
		f += v
	}
	return f
}

// evalRows evaluates ragged cloud rows [lo, hi) into rowF.
func (o *p2SparseObjective) evalRows(x, grad []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		o.rowF[i] = o.evalRow(i, x, grad)
	}
}

// evalRow computes cloud i's slice of the objective and gradient over
// its kept pairs. See p2Objective.evalRow for the term-by-term
// derivation; the loops differ only in indexing through the packed
// layout.
func (o *p2SparseObjective) evalRow(i int, x, grad []float64) float64 {
	if o.fast {
		return o.evalRowFast(i, x, grad)
	}
	lo, hi := o.rowPtr[i], o.rowPtr[i+1]
	row := x[lo:hi]
	coef := o.coef[lo:hi]
	prev := o.prev[lo:hi]
	mgFac := o.mgFac[lo:hi]
	lastNum := o.lastNum[lo:hi]
	lastLg2 := o.lastLg2[lo:hi]
	if grad == nil {
		s, f, hits, misses := entropyRowValue(row, coef, prev, mgFac, lastNum, lastLg2, o.eps2)
		o.hitRow[i] += hits
		o.missRow[i] += misses
		if o.totOff != nil {
			s += o.totOff[i]
		}
		lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
		return f + o.rcFac[i]*((s+o.eps1)*lg-s)
	}
	s := 0.0
	for _, v := range row {
		s += v
	}
	if o.totOff != nil {
		s += o.totOff[i]
	}
	lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
	f := o.rcFac[i] * ((s+o.eps1)*lg - s)
	f, hits, misses := entropyRowGrad(row, coef, prev, mgFac, lastNum, lastLg2,
		grad[lo:hi], o.eps2, f, o.rcFac[i]*lg)
	o.hitRow[i] += hits
	o.missRow[i] += misses
	return f
}

// evalRowFast is evalRow on the batch-kernel tier over the packed
// layout; see p2Objective.evalRowFast and entropy.go.
func (o *p2SparseObjective) evalRowFast(i int, x, grad []float64) float64 {
	lo, hi := o.rowPtr[i], o.rowPtr[i+1]
	row := x[lo:hi]
	coef := o.coef[lo:hi]
	mgFac := o.mgFac[lo:hi]
	if o.fast32 {
		ratio := o.ratio32[lo:hi]
		s := entropyRatioPass32(row, o.invDen32[lo:hi], ratio, o.eps2)
		logBatch32(ratio, ratio)
		if o.totOff != nil {
			s += o.totOff[i]
		}
		lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
		if grad == nil {
			f := entropyFastValue32(row, coef, mgFac, ratio, o.eps2)
			return f + o.rcFac[i]*((s+o.eps1)*lg-s)
		}
		f := o.rcFac[i] * ((s+o.eps1)*lg - s)
		return entropyFastGrad32(row, coef, mgFac, ratio,
			grad[lo:hi], o.eps2, f, o.rcFac[i]*lg)
	}
	ratio := o.ratio[lo:hi]
	s := entropyRatioPass(row, o.invDen[lo:hi], ratio, o.eps2)
	logBatch(ratio, ratio)
	if o.totOff != nil {
		s += o.totOff[i]
	}
	lg := math.Log((s + o.eps1) / (o.prevTot[i] + o.eps1))
	if grad == nil {
		f := entropyFastValue(row, coef, mgFac, ratio, o.eps2)
		return f + o.rcFac[i]*((s+o.eps1)*lg-s)
	}
	f := o.rcFac[i] * ((s+o.eps1)*lg - s)
	return entropyFastGrad(row, coef, mgFac, ratio,
		grad[lo:hi], o.eps2, f, o.rcFac[i]*lg)
}

// growFloats32 is growFloats for the float32 storage tier.
func growFloats32(s []float32, n int) []float32 {
	if cap(s) >= n {
		return s[:n]
	}
	out := make([]float32, n, n+n/2)
	copy(out, s[:cap(s)])
	return out
}
