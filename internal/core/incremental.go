package core

import (
	"context"
	"math"

	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
)

// This file implements event-driven incremental slot solving
// (Options.Incremental). Between consecutive slots typically only a
// fraction of users change attachment while prices drift smoothly, so
// the slot-t optimum differs from the carried decision x' only on the
// affected users' columns. The incremental tier makes the per-slot cost
// proportional to that churn instead of to J:
//
//  1. Delta detection. User j is active in slot t when its attachment
//     changed (l_{j,t} ≠ l_{j,t-1}) or there is no committed slot to
//     carry from (t = 0, or the first slot after construction). Everyone
//     else starts frozen at x_{·j} = x'_{·j}. Attachment is the only
//     per-user input of P2 that varies with t — the static coefficient
//     ā_{ij,t} = w_op·p_{i,t} + w_sq·d(l_{j,t},i)/λ_j moves per-cloud
//     with prices and per-user only through l_{j,t}, and workloads are
//     slot-independent — so global price drift is handled entirely by
//     the gate in step 3 rather than by the detector.
//
//  2. Reduced solve. The active users solve their ragged candidate
//     program (sparse.go) with the frozen flow folded into the
//     constants: each cloud's complement/capacity RHS drops by the flow
//     its frozen users carry, and the reconfiguration regularizer sees
//     X_i = A_i + F_i through p2SparseObjective.totOff, where A_i is
//     the active (variable) part and F_i the frozen offset. Frozen
//     demand rows are exactly satisfied by construction (x' is
//     post-repair), so they leave the program entirely and the dual
//     dimension shrinks to |active| + 2I.
//
//  3. Soundness gate. A frozen column is optimal for the full P2 iff it
//     satisfies KKT stationarity under the solved slot's multipliers.
//     At x_{·j} = x'_{·j} the migration gradient vanishes (the ratio is
//     exactly 1), so the reduced gradient of pair (i, j) is
//
//     g_ij = ā_{ij,t} + (ĉ_i/η_i)·ln((X_i+ε₁)/(X'_i+ε₁))
//     − (Σ_k ρ'_k − ρ'_i) + ν'_i,
//
//     and the ≥-demand row admits a dual θ_j ≥ 0 with g_ij = θ_j on the
//     support and g_ij ≥ θ_j off it exactly when every support pair
//     sits at the column minimum min_i g_ij and that minimum is ≥ 0.
//     The gate tests both at IncrementalTol (relative per pair, like
//     the pricing pass): violators are re-admitted to the active set
//     with their carryover support seeded, the reduced program is
//     rebuilt, and the solve resumes warm until a round changes
//     nothing. Certified frozen users take θ_j = max(0, min_i g_ij).
//
// Active sets only grow within a slot, so the loop terminates — in the
// worst case (100% churn, or a gate round that thaws everyone) at the
// plain candidate path's program. The gate runs on the duals the
// bounded solve produced, converged or not, with the relative tolerance
// absorbing budget-level dual noise — the exact stance the pricing pass
// takes with CandidateTol. Feasibility is unconditional at any
// tolerance: frozen columns carry the previous feasible decision, the
// reduced program solves under the residual capacities, and the
// model-layer repair still runs on the assembled slot, so Theorem 1's
// chain is intact.
// Only optimality rests on the gate, degrading gracefully with
// IncrementalTol exactly as pricing does with CandidateTol.
type incrState struct {
	lambda float64 // Λ = Σ_j λ_j, for the complement-row RHS

	active  []bool // user j re-solves this slot
	actList []int  // ascending active users; demand row p is actList[p]

	frozenTot []float64 // F_i: per-cloud flow carried by frozen users
	base      []float64 // per-cloud gradient term shared by gate and pricing

	rows   []alm.GroupRow // reduced rows: active demand + complement + capacity
	groups alm.Groups

	// Committed warm duals of the last successful slot, and the working
	// copies a slot mutates. Committing only on success keeps a cancelled
	// Step retryable, like the sharded path's thetaWarm protocol.
	haveWarm  bool
	thetaFull []float64 // per-user demand duals (J)
	thetaWork []float64
	rhoNu     []float64 // [ρ | ν] (2I)
	rhoNuWork []float64
	warmDuals []float64 // reduced-layout gather scratch

	duals []float64 // assembled full [θ | ρ | ν] returned to Step
	res   alm.Result
}

func newIncrState(in *model.Instance) *incrState {
	ic := &incrState{
		lambda:    in.TotalWorkload(),
		active:    make([]bool, in.J),
		actList:   make([]int, 0, in.J),
		frozenTot: make([]float64, in.I),
		base:      make([]float64, in.I),
		rows:      make([]alm.GroupRow, 0, in.J+2*in.I),
		thetaFull: make([]float64, in.J),
		thetaWork: make([]float64, in.J),
		rhoNu:     make([]float64, 2*in.I),
		rhoNuWork: make([]float64, 2*in.I),
		duals:     make([]float64, in.J+2*in.I),
	}
	ic.groups = alm.Groups{I: in.I, J: in.J, Blocks: 1}
	return ic
}

// solveIncremental runs slot t's delta-driven solve: detect the per-user
// delta, solve the active users' reduced program, and gate every frozen
// column, re-admitting violators until a round certifies. Result layout
// and lifetime match solveSparse.
func (o *OnlineApprox) solveIncremental(ctx context.Context, t int) (*alm.Result, []float64, error) {
	in, s := o.inst, o.sparse
	ic := s.incr
	nI, nJ := in.I, in.J

	for j := 0; j < nJ; j++ {
		ic.active[j] = t == 0 || !ic.haveWarm || in.Attach[t][j] != in.Attach[t-1][j]
	}

	warmDense := o.prev.X
	if t == 0 && allZero(o.prev.X) {
		if warm, err := feasibleWarmStart(in, t); err == nil {
			warmDense = warm
		}
	}

	// Seed the active users' candidate sets: nearest clouds plus the warm
	// point's support (frozen users have no variables, so AddSupport's
	// dense sweep is replaced by an active-only scan).
	s.builder.Reset()
	for j := 0; j < nJ; j++ {
		if ic.active[j] {
			s.builder.AddUserSet(j, s.nearest[in.Attach[t][j]])
		}
	}
	for i := 0; i < nI; i++ {
		base := i * nJ
		for j := 0; j < nJ; j++ {
			if ic.active[j] && warmDense[base+j] != 0 {
				s.builder.Add(i, j)
			}
		}
	}
	s.builder.Build(&s.cand)
	ic.rebuildRows(in, o.prev.X)

	for i := range s.obj.hitRow {
		s.obj.hitRow[i] = 0
		s.obj.missRow[i] = 0
	}
	copy(ic.thetaWork, ic.thetaFull)
	copy(ic.rhoNuWork, ic.rhoNu)

	sopts := o.opts.Solver
	sopts.Workspace = &o.ws
	sopts.Ctx = ctx

	readmittedSlot := 0
	var res *alm.Result
	for {
		nAct := len(ic.actList)
		nnz := s.cand.NNZ()
		if nAct > 0 {
			s.stats.Rounds++
			o.bindSparse(warmDense)
			s.obj.totOff = nil
			if nAct < nJ {
				s.obj.totOff = ic.frozenTot
			}
			ic.groups.RowPtr, ic.groups.Cols = s.cand.RowPtr, s.cand.Cols
			o.prob = alm.Problem{
				Obj:    s.obj,
				N:      nnz,
				Lower:  s.lower[:nnz],
				Groups: &ic.groups,
			}
			sopts.WarmX = s.warm[:nnz]
			sopts.WarmDuals = nil
			if ic.haveWarm {
				sopts.WarmDuals = ic.gatherWarmDuals(nI)
			}
			r, err := alm.Solve(&o.prob, sopts)
			if err != nil {
				s.obj.totOff = nil
				return nil, nil, err
			}
			res = r
			s.stats.InnerIters += r.InnerIters
			s.stats.OuterIters += r.Outer
			for p, j := range ic.actList {
				ic.thetaWork[j] = r.Duals[p]
			}
			copy(ic.rhoNuWork, r.Duals[nAct:nAct+2*nI])
			// Dense image: frozen columns carry the previous decision —
			// active users' off-candidate entries were zero there — and
			// the candidate entries take the packed solution.
			copy(s.xDense, o.prev.X)
			for i := 0; i < nI; i++ {
				base := i * nJ
				for k := s.cand.RowPtr[i]; k < s.cand.RowPtr[i+1]; k++ {
					s.xDense[base+s.cand.Cols[k]] = r.X[k]
				}
			}
		} else {
			// Every user is frozen: there is no program to solve. Gate the
			// carried decision at the committed prices; any violation
			// re-enters the loop with a nonempty active set.
			res = nil
			copy(s.xDense, o.prev.X)
		}
		rho := ic.rhoNuWork[:nI]
		nu := ic.rhoNuWork[nI : 2*nI]

		eps1 := o.opts.Epsilon1
		for i := 0; i < nI; i++ {
			tot := ic.frozenTot[i]
			if res != nil {
				for _, v := range res.X[s.cand.RowPtr[i]:s.cand.RowPtr[i+1]] {
					tot += v
				}
			}
			s.rcln[i] = o.obj.rcFac[i] * math.Log((tot+eps1)/(o.obj.prevTot[i]+eps1))
		}
		rhoSum := 0.0
		for _, v := range rho {
			rhoSum += v
		}
		for i := 0; i < nI; i++ {
			ic.base[i] = s.rcln[i] - (rhoSum - rho[i]) + nu[i]
		}

		added := o.priceActive()
		readmitted := 0
		if nAct < nJ {
			// The gate runs on the duals the solve produced whether or not
			// the bounded budget flagged convergence — the same stance the
			// pricing pass takes with CandidateTol: under a deployment
			// budget the duals carry penalty-scaled noise and the relative
			// tolerance is what absorbs it, while under the converged
			// budgets of the property tests the gate is exact. Re-admitting
			// the world on a budget-capped solve would turn every slot into
			// a full re-solve and defeat the tier.
			readmitted = o.gateFrozen(t)
		}
		if added == 0 && readmitted == 0 {
			s.stats.Slots++
			s.stats.FinalNNZ = nnz
			s.stats.Frozen += nJ - nAct
			s.stats.Readmitted += readmittedSlot
			break
		}
		s.stats.Expanded += added
		readmittedSlot += readmitted
		if readmitted > 0 {
			ic.rebuildRows(in, o.prev.X)
		}
		s.builder.Build(&s.cand)
		warmDense = s.xDense
	}
	s.obj.totOff = nil

	// Commit the slot's duals as the next slot's warm start and assemble
	// the full [θ | ρ | ν] layout the dual record, the certificate, and
	// the conformance oracle consume. Frozen users carry the gate's
	// θ_j = max(0, min_i g_ij), the embedded KKT multiplier.
	copy(ic.thetaFull, ic.thetaWork)
	copy(ic.rhoNu, ic.rhoNuWork)
	ic.haveWarm = true
	copy(ic.duals[:nJ], ic.thetaWork)
	copy(ic.duals[nJ:], ic.rhoNuWork)
	ic.res = alm.Result{Duals: ic.duals, Converged: true}
	if res != nil {
		ic.res.X = res.X
		ic.res.Objective = res.Objective
		ic.res.MaxViolation = res.MaxViolation
		ic.res.Outer = res.Outer
		ic.res.InnerIters = res.InnerIters
		ic.res.Converged = res.Converged
	}
	return &ic.res, s.xDense, nil
}

// rebuildRows recomputes the active list, the frozen per-cloud flow, and
// the reduced row set from the current activity flags. Row order (active
// demand ascending, complement, capacity) mirrors p2Groups, so the
// reduced dual layout is the full layout with frozen demand rows
// deleted.
func (ic *incrState) rebuildRows(in *model.Instance, prev []float64) {
	nI, nJ := in.I, in.J
	ic.actList = ic.actList[:0]
	for j := 0; j < nJ; j++ {
		if ic.active[j] {
			ic.actList = append(ic.actList, j)
		}
	}
	for i := 0; i < nI; i++ {
		ic.frozenTot[i] = 0
	}
	if len(ic.actList) < nJ {
		for i := 0; i < nI; i++ {
			base := i * nJ
			s := 0.0
			for j := 0; j < nJ; j++ {
				if !ic.active[j] {
					s += prev[base+j]
				}
			}
			ic.frozenTot[i] = s
		}
	}
	ic.rows = ic.rows[:0]
	for _, j := range ic.actList {
		ic.rows = append(ic.rows, alm.GroupRow{Kind: alm.GroupUserSum, Index: j, RHS: in.Workload[j]})
	}
	frozenSum := 0.0
	for _, v := range ic.frozenTot {
		frozenSum += v
	}
	for i := 0; i < nI; i++ {
		rhs := ic.lambda - in.Capacity[i]
		if rhs < 0 {
			rhs = 0
		}
		// Frozen flow on clouds k ≠ i already serves part of the
		// complement requirement; a negative residual is a row that can
		// never bind.
		ic.rows = append(ic.rows, alm.GroupRow{Kind: alm.GroupComplement, Index: i,
			RHS: rhs - (frozenSum - ic.frozenTot[i])})
	}
	for i := 0; i < nI; i++ {
		rhs := in.Capacity[i] - ic.frozenTot[i]
		if rhs < 0 {
			// Carried round-off may graze C_i; never demand negative
			// active flow.
			rhs = 0
		}
		ic.rows = append(ic.rows, alm.GroupRow{Kind: alm.GroupCloudSumNeg, Index: i, RHS: -rhs})
	}
	ic.groups.Rows = ic.rows
}

// gatherWarmDuals packs the working duals into the reduced layout
// (active demand rows in actList order, then ρ, then ν).
func (ic *incrState) gatherWarmDuals(nI int) []float64 {
	n := len(ic.actList) + 2*nI
	ic.warmDuals = growFloats(ic.warmDuals, n)
	for p, j := range ic.actList {
		ic.warmDuals[p] = ic.thetaWork[j]
	}
	copy(ic.warmDuals[len(ic.actList):n], ic.rhoNuWork)
	return ic.warmDuals[:n]
}

// priceActive is the pricing pass of priceAndExpand restricted to the
// active users (frozen users are certified by the gate instead, whose
// test over all I clouds subsumes candidate bookkeeping for them).
func (o *OnlineApprox) priceActive() int {
	in, s := o.inst, o.sparse
	ic := s.incr
	nI, nJ := in.I, in.J
	tol := o.opts.CandidateTol
	added := 0
	for i := 0; i < nI; i++ {
		row := o.obj.coef[i*nJ : (i+1)*nJ]
		base := ic.base[i]
		for _, j := range ic.actList {
			if s.builder.Contains(i, j) {
				continue
			}
			c := row[j]
			if c+base-ic.thetaWork[j] < -tol*(1+math.Abs(c)) {
				s.builder.Add(i, j)
				added++
			}
		}
	}
	return added
}

// gateFrozen certifies every frozen column against the current
// multipliers (see the KKT derivation in the file comment), re-admitting
// violators and recording the certified columns' demand duals. It
// returns the number of users re-admitted.
func (o *OnlineApprox) gateFrozen(t int) int {
	in, s := o.inst, o.sparse
	ic := s.incr
	nI, nJ := in.I, in.J
	tol := o.opts.IncrementalTol
	readmitted := 0
	for j := 0; j < nJ; j++ {
		if ic.active[j] {
			continue
		}
		aMin := math.Inf(1)
		for i := 0; i < nI; i++ {
			if g := o.obj.coef[i*nJ+j] + ic.base[i]; g < aMin {
				aMin = g
			}
		}
		viol := false
		for i := 0; i < nI; i++ {
			d := i*nJ + j
			if o.prev.X[d] <= 0 {
				continue
			}
			c := o.obj.coef[d]
			g := c + ic.base[i]
			sc := tol * (1 + math.Abs(c))
			if g-aMin > sc || g < -sc {
				viol = true
				break
			}
		}
		if viol {
			o.readmitUser(t, j)
			readmitted++
		} else if aMin > 0 {
			ic.thetaWork[j] = aMin
		} else {
			ic.thetaWork[j] = 0
		}
	}
	return readmitted
}

// readmitUser moves frozen user j into the active set and seeds its
// candidate pairs (nearest clouds plus carryover support). Its demand
// row re-enters warm at the θ already in thetaWork — the committed
// value, or the gate's estimate from the round that thawed it.
func (o *OnlineApprox) readmitUser(t, j int) {
	in, s := o.inst, o.sparse
	s.incr.active[j] = true
	s.builder.AddUserSet(j, s.nearest[in.Attach[t][j]])
	nJ := in.J
	for i := 0; i < in.I; i++ {
		if o.prev.X[i*nJ+j] != 0 {
			s.builder.Add(i, j)
		}
	}
}
