package core

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
)

// incrTightOpts returns the incremental tier pinned to the certified
// envelope: the soundness gate runs at 1e-9 relative, so a frozen user
// survives only when its carried column is KKT-stationary to solver
// precision and the incremental decision lands in the same tolerance
// ball as the full re-solve.
func incrTightOpts() Options {
	return Options{Solver: ultraTightOpts(), Incremental: true, IncrementalTol: 1e-9}
}

// withChurn rewrites the instance's mobility so that exactly
// ⌈churn·J⌉ users re-attach at every slot t ≥ 1 (a rotating window, so
// every user eventually moves at churn > 0) and everyone else keeps the
// previous slot's attachment. churn = 0 pins every trace flat; churn = 1
// re-attaches everyone. Prices keep whatever per-slot values the base
// generator drew, so the soundness gate — not the delta detector — is
// what keeps frozen users honest under price drift.
func withChurn(in *model.Instance, churn float64, rng *rand.Rand) {
	movers := int(math.Ceil(churn * float64(in.J)))
	for t := 1; t < in.T; t++ {
		copy(in.Attach[t], in.Attach[t-1])
		for m := 0; m < movers; m++ {
			j := ((t-1)*movers + m) % in.J
			in.Attach[t][j] = rng.Intn(in.I)
		}
	}
}

// flattenPrices pins every slot's operation prices (and access delays)
// to slot 0's, removing all per-slot drift: with churn 0 the program
// becomes slot-stationary and the carried decision converges to its
// regularized fixed point.
func flattenPrices(in *model.Instance) {
	for t := 1; t < in.T; t++ {
		copy(in.OpPrice[t], in.OpPrice[0])
		copy(in.AccessDelay[t], in.AccessDelay[0])
	}
}

// TestIncrementalMatchesFullAcrossChurn is the certified-equality
// property of the incremental tier: at every churn rate — including the
// 0% edge where everything freezes and the 100% edge where nothing does
// — the slot-coupled incremental decision must match the full solve's
// P2 cost to 1e-8 relative. Prices re-draw every slot, so at low churn
// the gate must re-admit whoever the drift actually moved.
func TestIncrementalMatchesFullAcrossChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(811))
	for _, churn := range []float64{0, 0.25, 1} {
		for trial := 0; trial < 6; trial++ {
			in := smallRandomInstance(rng)
			withChurn(in, churn, rng)
			if err := in.Validate(); err != nil {
				t.Fatal(err)
			}
			gaps := coupledPathGaps(t, in, Options{Solver: ultraTightOpts()}, incrTightOpts())
			for tt, d := range gaps {
				if d > 1e-8 {
					t.Errorf("churn=%g trial %d slot %d (I=%d J=%d): P2 rel gap %g > 1e-8",
						churn, trial, tt, in.I, in.J, d)
				}
			}
		}
	}
}

// TestIncrementalStationaryFreezes pins the point of the tier: on a
// slot-stationary instance (0% churn, flat prices) the carried decision
// reaches its regularized fixed point within a couple of slots, after
// which the gate certifies whole slots without a single reduced solve.
// The run must still be Theorem-1 feasible and match the plain
// candidate path's total cost.
func TestIncrementalStationaryFreezes(t *testing.T) {
	rng := rand.New(rand.NewSource(829))
	in := smallRandomInstance(rng)
	in.T = 8
	for len(in.OpPrice) < in.T {
		in.OpPrice = append(in.OpPrice, append([]float64(nil), in.OpPrice[0]...))
		in.Attach = append(in.Attach, append([]int(nil), in.Attach[0]...))
		in.AccessDelay = append(in.AccessDelay, append([]float64(nil), in.AccessDelay[0]...))
	}
	withChurn(in, 0, rng)
	flattenPrices(in)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}

	incr := NewOnlineApprox(in, Options{Solver: tightOpts(), Incremental: true, IncrementalTol: 1e-3})
	sched, err := incr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(sched, feasTol); err != nil {
		t.Fatalf("incremental schedule infeasible: %v", err)
	}
	st := incr.SparseStats()
	if st.Frozen == 0 {
		t.Errorf("stationary instance froze no users (stats %+v)", st)
	}
	// Late slots must certify entirely from the carried decision: total
	// frozen user-slots should approach (T-1)·J as the fixed point locks.
	if st.Frozen < in.J {
		t.Errorf("only %d frozen user-slots over %d stationary slots of %d users",
			st.Frozen, in.T-1, in.J)
	}

	full := NewOnlineApprox(in, Options{Solver: tightOpts()})
	fs, err := full.Run()
	if err != nil {
		t.Fatal(err)
	}
	ic := totalOf(t, in, sched)
	fc := totalOf(t, in, fs)
	if d := math.Abs(ic-fc) / (1 + math.Abs(fc)); d > 1e-3 {
		t.Errorf("total cost %g incremental vs %g full (rel %g) at gate tol 1e-3", ic, fc, d)
	}
}

// TestIncrementalForcedReadmission pins the gate itself: on the
// expansion instance the user never changes attachment — the delta
// detector sees nothing — but slot 1 spikes the attached cloud's price
// so hard that the true optimum migrates. Only a gate violation can
// re-admit the frozen user, and the result must still match the dense
// solve.
func TestIncrementalForcedReadmission(t *testing.T) {
	in := expansionInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	incr := NewOnlineApprox(in, Options{Solver: tightOpts(), Incremental: true, IncrementalTol: 1e-9})
	is, err := incr.Run()
	if err != nil {
		t.Fatal(err)
	}
	st := incr.SparseStats()
	if st.Readmitted == 0 {
		t.Errorf("gate re-admitted no users; soundness path untested (stats %+v)", st)
	}
	dense := NewOnlineApprox(in, Options{Solver: tightOpts()})
	ds, err := dense.Run()
	if err != nil {
		t.Fatal(err)
	}
	for tt := range ds {
		for k := range ds[tt].X {
			if d := math.Abs(is[tt].X[k] - ds[tt].X[k]); d > 1e-5 {
				t.Errorf("slot %d: x[%d] = %g incremental vs %g dense", tt, k, is[tt].X[k], ds[tt].X[k])
			}
		}
	}
}

// TestIncrementalConformAcrossChurn closes the loop with the oracle: the
// incremental path's full runs at every churn rate must pass the
// conformance check, competitive-ratio certificate included — the
// assembled [θ | ρ | ν] duals of gated slots are real dual points, not
// bookkeeping.
func TestIncrementalConformAcrossChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(857))
	for _, churn := range []float64{0, 0.5, 1} {
		in := smallRandomInstance(rng)
		withChurn(in, churn, rng)
		if err := in.Validate(); err != nil {
			t.Fatal(err)
		}
		alg := NewOnlineApprox(in, Options{Solver: tightOpts(), Incremental: true, IncrementalTol: 1e-9})
		sched, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		cert, err := alg.Certificate()
		if err != nil {
			t.Fatal(err)
		}
		diag := &conform.Diagnostics{
			HasCertificate: true,
			LowerBoundP0:   cert.LowerBoundP0(),
			LowerBoundP1:   cert.LowerBoundP1(),
			DualResidual:   cert.Feasibility.Max(),
			NuCharge:       cert.NuCharge,
			RatioBound:     alg.CompetitiveRatioBound(),
		}
		if rep := conform.Check(in, sched, diag, conform.Options{}); !rep.OK() {
			t.Errorf("churn=%g: %v", churn, rep.Err())
		}
	}
}

// TestIncrementalWorkersByteIdentical extends the determinism contract
// to the incremental tier: with the gating grain forced down, the run
// must be bitwise-identical for any Solver.Workers value.
func TestIncrementalWorkersByteIdentical(t *testing.T) {
	oldEval := evalParGrain
	evalParGrain = 1
	defer func() { evalParGrain = oldEval }()

	in, _, err := scenario.Rome(scenario.Config{Users: 10, Horizon: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) model.Schedule {
		alg := NewOnlineApprox(in, Options{Candidates: 3, Incremental: true,
			Solver: alm.Options{Workers: workers}})
		s, err := alg.Run()
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	base := run(1)
	for _, w := range []int{2, 4, 7} {
		got := run(w)
		for tt := range base {
			for k := range base[tt].X {
				if got[tt].X[k] != base[tt].X[k] {
					t.Fatalf("workers=%d slot %d: x[%d] = %v != serial %v",
						w, tt, k, got[tt].X[k], base[tt].X[k])
				}
			}
		}
	}
}

// TestIncrementalShardCompose composes the tier with the sharded path:
// for every shard count the block-frozen incremental solve must land in
// the dense optimum's tolerance ball (slot-coupled, 1e-8), and
// repeating a configuration must reproduce it bitwise.
func TestIncrementalShardCompose(t *testing.T) {
	rng := rand.New(rand.NewSource(877))
	in := smallRandomInstance(rng)
	withChurn(in, 0.3, rng)
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		opts := shardTestOpts(shards)
		opts.Incremental = true
		opts.IncrementalTol = 1e-9
		gaps := coupledPathGaps(t, in, Options{Solver: ultraTightOpts()}, opts)
		for tt, d := range gaps {
			if d > 1e-8 {
				t.Errorf("S=%d slot %d (I=%d J=%d): P2 rel gap %g > 1e-8",
					shards, tt, in.I, in.J, d)
			}
		}
		a, err := NewOnlineApprox(in, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewOnlineApprox(in, opts).Run()
		if err != nil {
			t.Fatal(err)
		}
		for tt := range a {
			if !allocsEqual(a[tt], b[tt]) {
				t.Fatalf("S=%d slot %d: repeated incremental sharded run differs bitwise", shards, tt)
			}
		}
	}
}

// TestIncrementalShardFreezesBlocks pins block-level freezing: with the
// churn confined to the first half of the user range, the second
// shard's block stays untouched and must be held frozen on a
// slot-stationary tail (flat prices, loose gate), skipping its block
// solves entirely while the run stays feasible.
func TestIncrementalShardFreezesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(883))
	var in *model.Instance
	for in == nil || in.J < 4 {
		in = smallRandomInstance(rng)
	}
	in.T = 8
	for len(in.OpPrice) < in.T {
		in.OpPrice = append(in.OpPrice, append([]float64(nil), in.OpPrice[0]...))
		in.Attach = append(in.Attach, append([]int(nil), in.Attach[0]...))
		in.AccessDelay = append(in.AccessDelay, append([]float64(nil), in.AccessDelay[0]...))
	}
	flattenPrices(in)
	// Churn only within the first half of the user range; the second
	// shard's block sees identical attachments every slot.
	half := in.J / 2
	for t2 := 1; t2 < in.T; t2++ {
		copy(in.Attach[t2], in.Attach[t2-1])
		in.Attach[t2][(t2-1)%half] = rng.Intn(in.I)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := shardTestOpts(2)
	opts.Incremental = true
	opts.IncrementalTol = 1e-3
	alg := NewOnlineApprox(in, opts)
	sched, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := in.CheckFeasible(sched, feasTol); err != nil {
		t.Fatalf("block-frozen schedule infeasible: %v", err)
	}
	if st := alg.ShardStats(); st.Frozen == 0 {
		t.Errorf("untouched block never froze (stats %+v)", st)
	}
}

// TestStepCtxCancellationIncremental extends the cancellation contract
// to the incremental tier: aborted solves must leave the warm-dual and
// frozen-set state retryable, with the eventual schedule bitwise equal
// to the uncancelled reference.
func TestStepCtxCancellationIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	in := smallRandomInstance(rng)
	withChurn(in, 0.3, rng)
	testCancellation(t, in, Options{Incremental: true, IncrementalTol: 1e-9})
}
