package perf

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadJSON parses a benchmark dump previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("perf: parse benchmark JSON: %w", err)
	}
	return recs, nil
}

// DiffRow compares one kernel's current measurement against a baseline.
type DiffRow struct {
	Name       string
	BaseNs     float64 // 0 when the kernel is new (absent from the baseline)
	CurNs      float64
	Delta      float64 // (cur-base)/base; 0 when BaseNs is 0
	BaseAllocs int64   // allocs/op recorded in the baseline
	CurAllocs  int64
	HasBase    bool
}

// AllocRegression reports whether the row's allocs/op grew past the
// gate: more than a quarter over the baseline, with a slack floor of 2
// allocations so near-zero baselines (the steady-state Step path runs at
// ~1 alloc/op) don't fail on measurement jitter. Timing noise on a busy
// host moves ns/op, not allocation counts, so this gate is the sharper
// of the two.
func (r DiffRow) AllocRegression() bool {
	if !r.HasBase {
		return false
	}
	slack := r.BaseAllocs / 4
	if slack < 2 {
		slack = 2
	}
	return r.CurAllocs > r.BaseAllocs+slack
}

// Diff matches current records against baseline records by name, in
// current order. Kernels absent from the baseline appear with HasBase
// false; baseline kernels no longer measured are dropped (renames and
// retired kernels should not fail a regression gate).
func Diff(base, cur []Record) []DiffRow {
	byName := make(map[string]Record, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	rows := make([]DiffRow, 0, len(cur))
	for _, r := range cur {
		row := DiffRow{Name: r.Name, CurNs: r.NsPerOp, CurAllocs: r.AllocsPerOp}
		if b, ok := byName[r.Name]; ok && b.NsPerOp > 0 {
			row.BaseNs = b.NsPerOp
			row.Delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			row.BaseAllocs = b.AllocsPerOp
			row.HasBase = true
		}
		rows = append(rows, row)
	}
	return rows
}

// MissingBaselines returns the names of kernels measured now but absent
// from the baseline dump. A new kernel silently skipping the regression
// gate is how a perf claim goes unrecorded, so callers (edgebench
// -benchdiff, make bench-diff) fail loudly on a non-empty result and
// direct the author to regenerate the baseline with -benchjson.
func MissingBaselines(rows []DiffRow) []string {
	var names []string
	for _, r := range rows {
		if !r.HasBase {
			names = append(names, r.Name)
		}
	}
	return names
}

// MissingRecords returns the names of defined kernels absent from the
// baseline dump. The everyday gate run re-measures the base kernels
// only, so MissingBaselines alone would never notice a scale-tier
// kernel (StepScale/StepShard/StepDist/…) whose baseline was never
// recorded; this check makes the committed trajectory's completeness
// itself part of the gate, independent of what re-ran.
func MissingRecords(base []Record, specs []Spec) []string {
	have := make(map[string]bool, len(base))
	for _, r := range base {
		have[r.Name] = true
	}
	var names []string
	for _, s := range specs {
		if !have[s.Name] {
			names = append(names, s.Name)
		}
	}
	return names
}

// Regressions returns the rows that fail the gate: ns/op grew by more
// than threshold (0.25 = +25%) relative to the baseline, or allocs/op
// grew past the AllocRegression bound.
func Regressions(rows []DiffRow, threshold float64) []DiffRow {
	var out []DiffRow
	for _, r := range rows {
		if r.HasBase && (r.Delta > threshold || r.AllocRegression()) {
			out = append(out, r)
		}
	}
	return out
}

// WriteDiffTable renders the comparison as a human-readable table.
func WriteDiffTable(w io.Writer, rows []DiffRow) {
	fmt.Fprintf(w, "%-32s %14s %14s %9s %12s %11s\n",
		"benchmark", "base ns/op", "cur ns/op", "delta", "base allocs", "cur allocs")
	for _, r := range rows {
		if !r.HasBase {
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s %12s %11d\n",
				r.Name, "-", r.CurNs, "new", "-", r.CurAllocs)
			continue
		}
		mark := ""
		if r.AllocRegression() {
			mark = " !"
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+8.1f%% %12d %11d%s\n",
			r.Name, r.BaseNs, r.CurNs, 100*r.Delta, r.BaseAllocs, r.CurAllocs, mark)
	}
}
