package perf

import (
	"encoding/json"
	"fmt"
	"io"
)

// ReadJSON parses a benchmark dump previously written by WriteJSON.
func ReadJSON(r io.Reader) ([]Record, error) {
	var recs []Record
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return nil, fmt.Errorf("perf: parse benchmark JSON: %w", err)
	}
	return recs, nil
}

// DiffRow compares one kernel's current measurement against a baseline.
type DiffRow struct {
	Name    string
	BaseNs  float64 // 0 when the kernel is new (absent from the baseline)
	CurNs   float64
	Delta   float64 // (cur-base)/base; 0 when BaseNs is 0
	HasBase bool
}

// Diff matches current records against baseline records by name, in
// current order. Kernels absent from the baseline appear with HasBase
// false; baseline kernels no longer measured are dropped (renames and
// retired kernels should not fail a regression gate).
func Diff(base, cur []Record) []DiffRow {
	byName := make(map[string]Record, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	rows := make([]DiffRow, 0, len(cur))
	for _, r := range cur {
		row := DiffRow{Name: r.Name, CurNs: r.NsPerOp}
		if b, ok := byName[r.Name]; ok && b.NsPerOp > 0 {
			row.BaseNs = b.NsPerOp
			row.Delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
			row.HasBase = true
		}
		rows = append(rows, row)
	}
	return rows
}

// Regressions returns the rows whose ns/op grew by more than threshold
// (0.25 = +25%) relative to the baseline.
func Regressions(rows []DiffRow, threshold float64) []DiffRow {
	var out []DiffRow
	for _, r := range rows {
		if r.HasBase && r.Delta > threshold {
			out = append(out, r)
		}
	}
	return out
}

// WriteDiffTable renders the comparison as a human-readable table.
func WriteDiffTable(w io.Writer, rows []DiffRow) {
	fmt.Fprintf(w, "%-32s %14s %14s %9s\n", "benchmark", "base ns/op", "cur ns/op", "delta")
	for _, r := range rows {
		if !r.HasBase {
			fmt.Fprintf(w, "%-32s %14s %14.0f %9s\n", r.Name, "-", r.CurNs, "new")
			continue
		}
		fmt.Fprintf(w, "%-32s %14.0f %14.0f %+8.1f%%\n", r.Name, r.BaseNs, r.CurNs, 100*r.Delta)
	}
}
