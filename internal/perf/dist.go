package perf

import (
	"fmt"
	"net/http/httptest"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/solver/shardrpc"
)

// The distributed tier measures what moving the shard blocks behind the
// shardrpc transport (cmd/edgeshard workers) costs relative to solving
// the same blocks in process. Each grid point runs as a matched pair:
//
//   - "inproc": the sharded coordination loop with every block local —
//     numerically identical to the StepShard kernel at the same (size, S),
//     re-recorded here so the pair stays self-contained under bench-diff.
//   - "rpc": the same options with the blocks placed on distWorkers
//     loopback worker processes (the production ShardHost behind the
//     production HTTP server). The rpc/inproc ratio is the transport's
//     end-to-end overhead: JSON codec, loopback HTTP, and the per-round
//     state sync. The schedule is byte-identical between the two variants
//     (the parity tests in internal/core pin this), so the pair differs
//     only in where the block solves run.
//
// Workers here are in-process goroutines on the same host, so the rpc
// numbers measure protocol overhead, not network latency or the
// multi-host speedup a real pool provides.

// distWorkers is the worker-pool size of the "rpc" variants — matching
// the three-worker topology the CI dist-soak job runs; blocks are placed
// round-robin, so S > distWorkers shares workers like a real deployment.
const distWorkers = 3

// StepDist returns the distributed-coordination kernel at one scaling
// point and shard count; remote selects the "rpc" variant.
func StepDist(size ScaleSize, s int, remote bool) func(*testing.B) {
	return func(b *testing.B) {
		in, err := SyntheticInstance(size.I, size.J, scaleHorizon, scaleSeed)
		if err != nil {
			b.Fatal(err)
		}
		opts := shardOptions(s)
		if remote {
			workers := make([]string, distWorkers)
			for w := range workers {
				srv := httptest.NewServer(shardrpc.NewServer(core.NewShardHost()))
				defer srv.Close()
				workers[w] = srv.URL
			}
			opts.ShardWorkers = workers
		}
		stepPasses(b, in, opts)
	}
}

// DistSpecName names one distributed-coordination kernel; variant is
// "inproc" or "rpc".
func DistSpecName(size ScaleSize, variant string) string {
	return fmt.Sprintf("StepDist/I=%d,J=%d/%s", size.I, size.J, variant)
}

// DistSpecs lists the distributed tier: the flagship grid point at S = 4
// and the J = 20000 headroom point at S = 8, each as an inproc/rpc pair.
func DistSpecs() []Spec {
	var specs []Spec
	for _, p := range []struct {
		size ScaleSize
		s    int
	}{
		{ScaleSize{I: 50, J: 5000}, 4},
		{ScaleSize{I: 50, J: 20000}, 8},
	} {
		specs = append(specs,
			Spec{Name: DistSpecName(p.size, "inproc"), Bench: StepDist(p.size, p.s, false)},
			Spec{Name: DistSpecName(p.size, "rpc"), Bench: StepDist(p.size, p.s, true)},
		)
	}
	return specs
}
