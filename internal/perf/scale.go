package perf

import (
	"fmt"
	"math/rand"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/solver/alm"
)

// The scaling tier measures how the per-slot Step cost grows with the
// problem dimensions. The Rome scenario fixes I = 15 clouds, so the tier
// runs on synthetic instances with a configurable cloud count; the solver
// options are bounded (fixed outer/inner iteration budgets, loose
// tolerances) so the kernels measure per-iteration throughput rather than
// convergence luck at a particular size.

// scaleHorizon is the slot count of every scaling instance; the kernels
// time slots 2..T-1 with slots 0 and 1 primed off the clock.
const scaleHorizon = 6

// scaleSeed fixes the synthetic-instance generator.
const scaleSeed = 20140212

// scaleCandidates is the per-user candidate-set size of the certified
// candidate-set ("group") scaling kernels: the k nearest clouds to each
// slot's attachment, expanded on demand by the dual-feasibility pricing
// pass. Four of fifty clouds keeps the ragged variable space at ~1/9 of
// dense at the largest grid point (seeds plus carryover support) while
// the delay-dominant geometry makes genuine expansions rare; measured
// against the unpruned path this configuration prices zero expansion
// rounds at every steady-state slot.
const scaleCandidates = 4

// scaleCandidateTol loosens the pricing tolerance to match the bounded
// solver budget: scaleOptions converges duals only to DualTol = 1e-2 and
// caps the solve at 12x200 iterations, so the duals handed to the pricing
// pass carry penalty-scaled noise well above their converged values. A
// tight gate chases that noise — at tolerances below ~0.5 the pass
// admits thousands of spuriously priced pairs per slot and each
// admission costs a full warm re-solve, which is slower than dense. At
// 1.0 the pass still catches gross violations (a pair whose reduced cost
// says it beats the candidate set by more than the dual noise floor)
// while ignoring noise. The property tests in internal/core pin
// exactness under converged duals; the scaling tier measures throughput
// at the budget a deployment would actually run.
const scaleCandidateTol = 1.0

// The sharded-tier configuration: the coordination loop runs the same
// certified candidate path inside each shard, so the shard kernels keep
// scaleCandidates/scaleCandidateTol and replace the single bounded solve
// with S per-shard solves under a per-coordination-iteration budget.
const (
	// scaleShardBlockOuter/Inner bound each shard's ALM solve per
	// coordination iteration. The coordination loop re-enters every block
	// warm, so the per-iteration budget is deliberately small: total work
	// per slot is (iterations run) x (block budget), and the early-exit
	// test below stops the loop as soon as the assembled totals are
	// capacity-safe.
	scaleShardBlockOuter = 3
	scaleShardBlockInner = 60
	// scaleShardRho is the ADMM consensus penalty. Larger values converge
	// the consensus residual faster per iteration at these sizes (16 beats
	// 8 beats 4 on the synthetic grid), which matters more than the
	// slightly stiffer per-block subproblems it induces.
	scaleShardRho = 16
	// scaleShardIters caps coordination iterations per slot; steady-state
	// slots exit after 1-2 under the tolerances below.
	scaleShardIters = 12
	// scaleShardPrimalTol is the consensus-residual exit test, set just
	// under the 1e-4 relative feasibility tolerance the conformance
	// oracle and the simulation harness check: the primal residual bounds
	// the assembled schedule's relative capacity violation, so meeting it
	// certifies the committed slot. scaleShardDualTol matches the bounded
	// block budget — under inexact block solves the consensus point
	// jitters at the budget floor, and a tight dual test would read that
	// jitter as permanent non-convergence (the property tests in
	// internal/core pin sharded-vs-unsharded equality under tight
	// budgets; the scaling tier measures deployment-budget throughput).
	scaleShardPrimalTol = 1e-4
	scaleShardDualTol   = 5e-2
)

// ScaleSize is one (I, J) point of the scaling grid. Dense marks the
// sizes where the O(I²·J) sparse-row reference is also benchmarked; at
// the larger sizes a single dense solve takes tens of seconds, so the
// dense column is omitted there (recorded as such in EXPERIMENTS.md, not
// silently dropped). Exact marks the sizes where the unpruned structured
// group path — every (i, j) variable, no candidate sets — is also
// benchmarked as the reduction's reference; at J = 5000 a full exact
// pass costs minutes, so only the pruned path runs there.
type ScaleSize struct {
	I, J  int
	Dense bool
	Exact bool
}

// ScaleSizes returns the scaling grid in reporting order.
func ScaleSizes() []ScaleSize {
	return []ScaleSize{
		{I: 10, J: 200, Dense: true, Exact: true},
		{I: 10, J: 1000, Dense: false, Exact: true},
		{I: 10, J: 5000, Dense: false, Exact: false},
		{I: 25, J: 200, Dense: true, Exact: true},
		{I: 25, J: 1000, Dense: true, Exact: true},
		{I: 25, J: 5000, Dense: false, Exact: false},
		{I: 50, J: 200, Dense: false, Exact: true},
		{I: 50, J: 1000, Dense: false, Exact: true},
		{I: 50, J: 5000, Dense: false, Exact: false},
	}
}

// SyntheticInstance builds a deterministic random instance with I clouds,
// J users, and T slots: clouds on a plane with distance-derived
// inter-cloud delays, capacities sized ~1.6x the mean load, volatile
// operation prices, and users re-attaching in a random walk. It exists so
// the scaling benchmarks can sweep the cloud count, which the
// trace-derived Rome scenario fixes.
func SyntheticInstance(I, J, T int, seed int64) (*model.Instance, error) {
	rng := rand.New(rand.NewSource(seed))
	in := &model.Instance{
		I: I, J: J, T: T,
		WOp: 1, WSq: 1, WRc: 1, WMg: 1,
	}

	// Cloud sites on a 100x100 km plane.
	xs := make([]float64, I)
	ys := make([]float64, I)
	for i := 0; i < I; i++ {
		xs[i] = 100 * rng.Float64()
		ys[i] = 100 * rng.Float64()
	}
	in.InterDelay = make([][]float64, I)
	for i := 0; i < I; i++ {
		in.InterDelay[i] = make([]float64, I)
	}
	for i := 0; i < I; i++ {
		for k := i + 1; k < I; k++ {
			dx, dy := xs[i]-xs[k], ys[i]-ys[k]
			// Quadratic-in-distance delay, ~[0, 8]: several times the
			// operation-price spread, so serving a user far from its
			// attachment is clearly uneconomical — the delay-dominant
			// geometry of the paper's metro scenario. With delays
			// comparable to the price spread the entropy regularizers
			// smear every user over most clouds, a solution structure no
			// deployment exhibits.
			d := 0.04 * (dx*dx + dy*dy) / 100
			in.InterDelay[i][k] = d
			in.InterDelay[k][i] = d
		}
	}

	in.Workload = make([]float64, J)
	total := 0.0
	for j := 0; j < J; j++ {
		in.Workload[j] = 0.5 + 2*rng.Float64()
		total += in.Workload[j]
	}
	in.Capacity = make([]float64, I)
	for i := 0; i < I; i++ {
		in.Capacity[i] = total / float64(I) * (1.2 + 0.8*rng.Float64())
	}

	in.ReconfPrice = make([]float64, I)
	in.MigOutPrice = make([]float64, I)
	in.MigInPrice = make([]float64, I)
	for i := 0; i < I; i++ {
		in.ReconfPrice[i] = 0.5 + rng.Float64()
		in.MigOutPrice[i] = 0.2 + 0.6*rng.Float64()
		in.MigInPrice[i] = 0.2 + 0.6*rng.Float64()
	}

	in.OpPrice = make([][]float64, T)
	for t := 0; t < T; t++ {
		in.OpPrice[t] = make([]float64, I)
		for i := 0; i < I; i++ {
			in.OpPrice[t][i] = 0.5 + rng.Float64()
		}
	}

	in.Attach = make([][]int, T)
	in.AccessDelay = make([][]float64, T)
	for t := 0; t < T; t++ {
		in.Attach[t] = make([]int, J)
		in.AccessDelay[t] = make([]float64, J)
	}
	for j := 0; j < J; j++ {
		at := rng.Intn(I)
		for t := 0; t < T; t++ {
			if t > 0 && rng.Float64() < 0.3 {
				at = rng.Intn(I)
			}
			in.Attach[t][j] = at
			in.AccessDelay[t][j] = 0.5 * rng.Float64()
		}
	}

	// Pre-horizon allocation: each user placed whole on its slot-0
	// attached cloud while capacity lasts, spilling to the nearest cloud
	// (by inter-cloud delay) with room — sparse like a real steady-state
	// placement, so most (i, j) pairs carry no flow, exactly as in the
	// trace-driven scenarios. A nonzero Init models a deployment already
	// mid-stream and lets slot 0 warm-start like every later slot; from
	// the formal model's zero allocation, slot 0 would instead solve a
	// full transportation problem for its warm start, which costs
	// minutes at the largest grid sizes and is not what the scaling tier
	// measures.
	free := make([]float64, I)
	copy(free, in.Capacity)
	init := model.NewAlloc(I, J)
	for j := 0; j < J; j++ {
		need := in.Workload[j]
		at := in.Attach[0][j]
		for need > 0 {
			// The attached cloud if it has room, else the nearest one
			// that does.
			best := -1
			if free[at] > 0 {
				best = at
			} else {
				for i := 0; i < I; i++ {
					if free[i] > 0 && (best < 0 || in.InterDelay[at][i] < in.InterDelay[at][best]) {
						best = i
					}
				}
			}
			amt := need
			if amt > free[best] {
				amt = free[best]
			}
			init.X[best*J+j] += amt
			free[best] -= amt
			need -= amt
		}
	}
	in.Init = &init

	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("perf: synthetic instance I=%d J=%d T=%d: %w", I, J, T, err)
	}
	return in, nil
}

// scaleOptions is the bounded per-slot solver budget shared by every
// scaling kernel: identical for the group and dense paths so the ratio
// between them isolates the constraint-kernel cost. Workers stays at the
// serial default so recorded numbers are comparable across machines
// (results are byte-identical for any value; raise Solver.Workers on a
// multi-core host to engage the parallel objective).
func scaleOptions() core.Options {
	return core.Options{Solver: alm.Options{
		MaxOuter: 12, InnerIters: 200,
		FeasTol: 1e-5, DualTol: 1e-2, ObjTol: 1e-8, Penalty: 2,
	}}
}

// stepPasses is the shared measurement loop of every scaling kernel:
// warm Step calls on the synthetic instance, exactly like
// OnlineApproxStep but with the chosen dimensions and solving path. One
// op is a full pass over the steady-state slots 2..T-1; slots 0 and 1
// run off the clock before each pass — slot 0 builds the caches and slot
// 1 absorbs the adjustment away from the synthetic pre-horizon
// placement. Averaging a whole pass into each op keeps the recorded
// number from hinging on whichever single slot a one-shot measurement
// happens to land on: per-slot costs vary ~2-3x with how quickly that
// slot's solve converges.
func stepPasses(b *testing.B, in *model.Instance, opts core.Options) {
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		b.StopTimer()
		alg := core.NewOnlineApprox(in, opts)
		for t := 0; t < 2; t++ {
			if _, err := alg.Step(t); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		for t := 2; t < in.T; t++ {
			if _, err := alg.Step(t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// StepScale returns the benchmark kernel for one scaling point and
// variant:
//
//   - "group": the production configuration — structured group-sum
//     kernels over dual-certified per-user candidate sets
//     (Candidates = scaleCandidates). This is the path a deployment runs,
//     so it keeps the headline name.
//   - "exact": the same structured kernels over the full I·J variable
//     space (no pruning) — the reduction's semantic reference, benched
//     where affordable (Exact sizes).
//   - "dense": the O(I²·J) sparse-row reference (DenseRows), benched
//     where tractable (Dense sizes).
//   - "fast": the production configuration with the batch-kernel tier
//     (core.Options.FastMath) — same candidate sets, entropy logs through
//     internal/numkernel. The fast/group ratio is the kernel tier's
//     end-to-end win.
//   - "fast32": "fast" with the float32 ratio/reciprocal storage tier
//     (core.Options.FastMathF32), benched at the flagship size where the
//     bandwidth saving is measurable.
func StepScale(size ScaleSize, variant string) func(*testing.B) {
	return func(b *testing.B) {
		in, err := SyntheticInstance(size.I, size.J, scaleHorizon, scaleSeed)
		if err != nil {
			b.Fatal(err)
		}
		opts := scaleOptions()
		switch variant {
		case "group":
			opts.Candidates = scaleCandidates
			opts.CandidateTol = scaleCandidateTol
		case "exact":
			// Structured kernels over the unpruned variable space.
		case "dense":
			opts.DenseRows = true
		case "fast":
			opts.Candidates = scaleCandidates
			opts.CandidateTol = scaleCandidateTol
			opts.FastMath = true
		case "fast32":
			opts.Candidates = scaleCandidates
			opts.CandidateTol = scaleCandidateTol
			opts.FastMathF32 = true
		default:
			b.Fatalf("perf: unknown scaling variant %q", variant)
		}
		stepPasses(b, in, opts)
	}
}

// StepSparse returns the candidate-size sweep kernel: the certified
// candidate path at one (I, J) point with an explicit per-user set size
// k, isolating how per-slot cost scales with the active-set width. The
// k = scaleCandidates column coincides with the "group" kernel at the
// same size by construction.
func StepSparse(size ScaleSize, k int) func(*testing.B) {
	return func(b *testing.B) {
		in, err := SyntheticInstance(size.I, size.J, scaleHorizon, scaleSeed)
		if err != nil {
			b.Fatal(err)
		}
		opts := scaleOptions()
		opts.Candidates = k
		opts.CandidateTol = scaleCandidateTol
		stepPasses(b, in, opts)
	}
}

// StepShard returns the user-sharded coordination kernel at one scaling
// point: the certified candidate path split across s shards under the
// sharing-ADMM coordinator (core.Options.Shards), with Solver.Workers = s
// so shards solve concurrently on a multi-core host. Results are
// byte-identical for any worker count (the determinism tests in
// internal/core pin this), so the recorded numbers differ across
// machines only in wall-clock, like every other kernel.
func StepShard(size ScaleSize, s int) func(*testing.B) {
	return func(b *testing.B) {
		in, err := SyntheticInstance(size.I, size.J, scaleHorizon, scaleSeed)
		if err != nil {
			b.Fatal(err)
		}
		stepPasses(b, in, shardOptions(s))
	}
}

// shardOptions is the sharded-tier solver configuration at shard count s.
func shardOptions(s int) core.Options {
	opts := scaleOptions()
	opts.Candidates = scaleCandidates
	opts.CandidateTol = scaleCandidateTol
	opts.Shards = s
	opts.Solver.MaxOuter = scaleShardBlockOuter
	opts.Solver.InnerIters = scaleShardBlockInner
	opts.Solver.Workers = s
	opts.ShardRho = scaleShardRho
	opts.ShardMaxIters = scaleShardIters
	opts.ShardPrimalTol = scaleShardPrimalTol
	opts.ShardDualTol = scaleShardDualTol
	return opts
}

// ScaleSpecName names the kernel for one scaling point and variant
// ("group", "exact", or "dense").
func ScaleSpecName(size ScaleSize, variant string) string {
	return fmt.Sprintf("StepScale/I=%d,J=%d/%s", size.I, size.J, variant)
}

// SparseSpecName names one candidate-size sweep kernel.
func SparseSpecName(size ScaleSize, k int) string {
	return fmt.Sprintf("StepSparse/I=%d,J=%d/k=%d", size.I, size.J, k)
}

// ShardSpecName names one sharded-coordination kernel.
func ShardSpecName(size ScaleSize, s int) string {
	return fmt.Sprintf("StepShard/I=%d,J=%d/S=%d", size.I, size.J, s)
}

// ScaleSpecs lists the scaling-tier kernels: the certified candidate
// path and its batch-kernel ("fast") variant at every grid point, the
// unpruned exact reference where affordable, the dense sparse-row
// reference where tractable, and the float32 storage tier at the
// flagship size.
func ScaleSpecs() []Spec {
	var specs []Spec
	for _, size := range ScaleSizes() {
		specs = append(specs, Spec{Name: ScaleSpecName(size, "group"), Bench: StepScale(size, "group")})
		specs = append(specs, Spec{Name: ScaleSpecName(size, "fast"), Bench: StepScale(size, "fast")})
		if size.I == 50 && size.J == 5000 {
			specs = append(specs, Spec{Name: ScaleSpecName(size, "fast32"), Bench: StepScale(size, "fast32")})
		}
		if size.Exact {
			specs = append(specs, Spec{Name: ScaleSpecName(size, "exact"), Bench: StepScale(size, "exact")})
		}
		if size.Dense {
			specs = append(specs, Spec{Name: ScaleSpecName(size, "dense"), Bench: StepScale(size, "dense")})
		}
	}
	return specs
}

// SparseSpecs lists the candidate-size sweep at the flagship grid point,
// bracketing the production scaleCandidates setting.
func SparseSpecs() []Spec {
	size := ScaleSize{I: 50, J: 5000}
	var specs []Spec
	for _, k := range []int{2, 4, 8} {
		specs = append(specs, Spec{Name: SparseSpecName(size, k), Bench: StepSparse(size, k)})
	}
	return specs
}

// ShardSpecs lists the sharded-coordination tier: the shard-count sweep
// at the flagship grid point (S=1 isolates the coordination overhead
// against the "group" kernel at the same size), plus a J=20000 headroom
// point the monolithic path cannot reach in comparable time.
func ShardSpecs() []Spec {
	flagship := ScaleSize{I: 50, J: 5000}
	var specs []Spec
	for _, s := range []int{1, 2, 4, 8} {
		specs = append(specs, Spec{Name: ShardSpecName(flagship, s), Bench: StepShard(flagship, s)})
	}
	headroom := ScaleSize{I: 50, J: 20000}
	specs = append(specs, Spec{Name: ShardSpecName(headroom, 8), Bench: StepShard(headroom, 8)})
	return specs
}
