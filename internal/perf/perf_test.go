package perf

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// The solver microbenchmarks of the performance trajectory. Run with
//
//	go test -bench=. -benchmem ./internal/perf/
//
// or dump machine-readable numbers with `edgebench -benchjson`.

func BenchmarkFISTASolve(b *testing.B)       { FISTASolve(b) }
func BenchmarkALMSolve(b *testing.B)         { ALMSolve(b) }
func BenchmarkOnlineApproxStep(b *testing.B) { OnlineApproxStep(b) }

// BenchmarkStepScale exposes the scaling tier to `go test -bench`; use
// -bench 'StepScale/I=25,J=1000' to pick one grid point. The tier takes
// tens of minutes end to end, so -short skips it.
func BenchmarkStepScale(b *testing.B) {
	if testing.Short() {
		b.Skip("scaling tier takes tens of minutes; skipped under -short")
	}
	for _, s := range ScaleSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepScale/"), s.Bench)
	}
}

// BenchmarkNumKernel exposes the fast-math kernel family; use
// -bench 'NumKernel/LogBatch$' to pick one kernel.
func BenchmarkNumKernel(b *testing.B) {
	for _, s := range NumKernelSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "NumKernel/"), s.Bench)
	}
}

// BenchmarkStepSparse exposes the candidate-size sweep; use
// -bench 'StepSparse/I=50,J=5000/k=8' to pick one width.
func BenchmarkStepSparse(b *testing.B) {
	if testing.Short() {
		b.Skip("candidate sweep runs at the flagship size; skipped under -short")
	}
	for _, s := range SparseSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepSparse/"), s.Bench)
	}
}

// BenchmarkStepShard exposes the sharded-coordination tier; use
// -bench 'StepShard/I=50,J=5000/S=4' to pick one shard count.
func BenchmarkStepShard(b *testing.B) {
	if testing.Short() {
		b.Skip("sharded tier runs at the flagship and headroom sizes; skipped under -short")
	}
	for _, s := range ShardSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepShard/"), s.Bench)
	}
}

// BenchmarkStepDist exposes the distributed-coordination tier; use
// -bench 'StepDist/I=50,J=5000/rpc' to pick one variant.
func BenchmarkStepDist(b *testing.B) {
	if testing.Short() {
		b.Skip("distributed tier runs at the flagship and headroom sizes; skipped under -short")
	}
	for _, s := range DistSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepDist/"), s.Bench)
	}
}

// BenchmarkStepChurn exposes the churn tier; use
// -bench 'StepChurn/I=50,J=5000/c=5%/incr' to pick one point.
func BenchmarkStepChurn(b *testing.B) {
	if testing.Short() {
		b.Skip("churn tier runs at the flagship size; skipped under -short")
	}
	for _, s := range ChurnSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepChurn/"), s.Bench)
	}
}

func TestSpecsAreNamedAndRunnable(t *testing.T) {
	base := 3 + len(NumKernelSpecs())
	if n := len(Specs(false)); n != base {
		t.Fatalf("Specs(false) = %d kernels, want the %d base kernels", n, base)
	}
	specs := Specs(true)
	want := base + len(ScaleSpecs()) + len(SparseSpecs()) + len(ShardSpecs()) + len(DistSpecs()) + len(ChurnSpecs())
	if len(specs) != want {
		t.Fatalf("Specs(true) = %d kernels, want %d", len(specs), want)
	}
	seen := make(map[string]bool, len(specs))
	for _, s := range specs {
		if s.Name == "" || s.Bench == nil {
			t.Errorf("spec %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %q", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestDiffFlagsRegressionsOnly(t *testing.T) {
	base := []Record{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
		{Name: "AllocSmall", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "AllocBig", NsPerOp: 100, AllocsPerOp: 100},
		{Name: "AllocOK", NsPerOp: 100, AllocsPerOp: 100},
	}
	cur := []Record{
		{Name: "A", NsPerOp: 130}, // +30%: regression at the 25% gate
		{Name: "B", NsPerOp: 120}, // +20%: within the gate
		{Name: "New", NsPerOp: 50},
		{Name: "AllocSmall", NsPerOp: 100, AllocsPerOp: 3}, // within the 2-alloc floor
		{Name: "AllocBig", NsPerOp: 100, AllocsPerOp: 130}, // +30 allocs: past base/4
		{Name: "AllocOK", NsPerOp: 100, AllocsPerOp: 120},  // +20 allocs: within base/4
	}
	rows := Diff(base, cur)
	if len(rows) != 6 {
		t.Fatalf("Diff returned %d rows, want 6 (retired kernels dropped)", len(rows))
	}
	if rows[2].HasBase {
		t.Errorf("new kernel %q should have no baseline", rows[2].Name)
	}
	regs := Regressions(rows, 0.25)
	if len(regs) != 2 || regs[0].Name != "A" || regs[1].Name != "AllocBig" {
		t.Fatalf("Regressions = %+v, want exactly kernels A and AllocBig", regs)
	}
	if missing := MissingBaselines(rows); len(missing) != 1 || missing[0] != "New" {
		t.Fatalf("MissingBaselines = %v, want exactly [New]", missing)
	}
	var buf bytes.Buffer
	WriteDiffTable(&buf, rows)
	for _, want := range []string{"A", "new", "+30.0%", "cur allocs"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("diff table missing %q:\n%s", want, buf.String())
		}
	}
}

// TestMissingRecordsGatesTrajectoryCompleteness pins the gate that
// catches a bench tier whose baselines were never recorded: the
// everyday bench-diff run re-measures the base kernels only, so the
// committed dump must carry a record for every defined kernel.
func TestMissingRecordsGatesTrajectoryCompleteness(t *testing.T) {
	specs := Specs(true)
	base := make([]Record, 0, len(specs))
	for _, s := range specs {
		base = append(base, Record{Name: s.Name, NsPerOp: 1})
	}
	if missing := MissingRecords(base, specs); len(missing) != 0 {
		t.Fatalf("complete trajectory flagged: %v", missing)
	}
	// Drop the StepDist pair: exactly those names must surface.
	var pruned []Record
	for _, r := range base {
		if !strings.HasPrefix(r.Name, "StepDist/") {
			pruned = append(pruned, r)
		}
	}
	missing := MissingRecords(pruned, specs)
	if len(missing) != len(DistSpecs()) {
		t.Fatalf("MissingRecords = %v, want the %d StepDist kernels", missing, len(DistSpecs()))
	}
	for _, name := range missing {
		if !strings.HasPrefix(name, "StepDist/") {
			t.Fatalf("unexpected missing kernel %q", name)
		}
	}
}

func TestReadJSONRoundTrips(t *testing.T) {
	recs := []Record{{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Errorf("ReadJSON round trip = %+v, want %+v", back, recs)
	}
}

func TestSyntheticInstanceDeterministic(t *testing.T) {
	a, err := SyntheticInstance(7, 30, 4, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticInstance(7, 30, 4, 123)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < a.T; t0++ {
		for j := range a.Attach[t0] {
			if a.Attach[t0][j] != b.Attach[t0][j] {
				t.Fatalf("Attach[%d][%d] differs between identical seeds", t0, j)
			}
		}
	}
	for i := range a.Capacity {
		if a.Capacity[i] != b.Capacity[i] {
			t.Fatalf("Capacity[%d] differs between identical seeds", i)
		}
	}
	if a.Init == nil {
		t.Fatal("synthetic instance must carry a pre-horizon allocation")
	}
}

func TestChurnInstanceExactRate(t *testing.T) {
	for _, churn := range []float64{0, 0.05, 0.2, 1} {
		in, err := ChurnInstance(6, 40, 5, churn, 99)
		if err != nil {
			t.Fatalf("churn %g: %v", churn, err)
		}
		movers := int(math.Ceil(churn * 40))
		for tt := 1; tt < in.T; tt++ {
			switched := 0
			for j := 0; j < in.J; j++ {
				if in.Attach[tt][j] != in.Attach[tt-1][j] {
					switched++
				}
			}
			// Movers may re-draw their current cloud, so switches are at
			// most the mover count — and at churn 0 exactly zero.
			if switched > movers {
				t.Errorf("churn %g slot %d: %d switches > %d movers", churn, tt, switched, movers)
			}
			if churn == 0 && switched != 0 {
				t.Errorf("zero churn slot %d: %d switches", tt, switched)
			}
		}
		// Prices drift, never jump: ±2% per slot.
		for tt := 1; tt < in.T; tt++ {
			for i := 0; i < in.I; i++ {
				r := in.OpPrice[tt][i] / in.OpPrice[tt-1][i]
				if r < 0.98-1e-12 || r > 1.02+1e-12 {
					t.Errorf("slot %d cloud %d: price ratio %g outside ±2%%", tt, i, r)
				}
			}
		}
	}
	if _, err := ChurnInstance(3, 5, 3, 1.5, 1); err == nil {
		t.Error("ChurnInstance accepted churn > 1")
	}
	a, err := ChurnInstance(5, 20, 4, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChurnInstance(5, 20, 4, 0.1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for tt := range a.Attach {
		for j := range a.Attach[tt] {
			if a.Attach[tt][j] != b.Attach[tt][j] {
				t.Fatalf("Attach[%d][%d] differs between identical seeds", tt, j)
			}
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	recs := []Record{{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Errorf("round trip = %+v, want %+v", back, recs)
	}
	if !strings.Contains(buf.String(), "allocs_per_op") {
		t.Errorf("JSON missing allocs_per_op key: %s", buf.String())
	}
}
