package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The solver microbenchmarks of the performance trajectory. Run with
//
//	go test -bench=. -benchmem ./internal/perf/
//
// or dump machine-readable numbers with `edgebench -benchjson`.

func BenchmarkFISTASolve(b *testing.B)       { FISTASolve(b) }
func BenchmarkALMSolve(b *testing.B)         { ALMSolve(b) }
func BenchmarkOnlineApproxStep(b *testing.B) { OnlineApproxStep(b) }

func TestSpecsAreNamedAndRunnable(t *testing.T) {
	specs := Specs()
	if len(specs) != 3 {
		t.Fatalf("Specs() = %d kernels, want 3", len(specs))
	}
	for _, s := range specs {
		if s.Name == "" || s.Bench == nil {
			t.Errorf("spec %+v incomplete", s)
		}
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	recs := []Record{{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Errorf("round trip = %+v, want %+v", back, recs)
	}
	if !strings.Contains(buf.String(), "allocs_per_op") {
		t.Errorf("JSON missing allocs_per_op key: %s", buf.String())
	}
}
