package perf

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// The solver microbenchmarks of the performance trajectory. Run with
//
//	go test -bench=. -benchmem ./internal/perf/
//
// or dump machine-readable numbers with `edgebench -benchjson`.

func BenchmarkFISTASolve(b *testing.B)       { FISTASolve(b) }
func BenchmarkALMSolve(b *testing.B)         { ALMSolve(b) }
func BenchmarkOnlineApproxStep(b *testing.B) { OnlineApproxStep(b) }

// BenchmarkStepScale exposes the scaling tier to `go test -bench`; use
// -bench 'StepScale/I=25,J=1000' to pick one grid point.
func BenchmarkStepScale(b *testing.B) {
	for _, s := range ScaleSpecs() {
		b.Run(strings.TrimPrefix(s.Name, "StepScale/"), s.Bench)
	}
}

func TestSpecsAreNamedAndRunnable(t *testing.T) {
	specs := Specs()
	want := 3 + len(ScaleSpecs())
	if len(specs) != want {
		t.Fatalf("Specs() = %d kernels, want %d", len(specs), want)
	}
	for _, s := range specs {
		if s.Name == "" || s.Bench == nil {
			t.Errorf("spec %+v incomplete", s)
		}
	}
}

func TestDiffFlagsRegressionsOnly(t *testing.T) {
	base := []Record{
		{Name: "A", NsPerOp: 100},
		{Name: "B", NsPerOp: 100},
		{Name: "Gone", NsPerOp: 100},
	}
	cur := []Record{
		{Name: "A", NsPerOp: 130}, // +30%: regression at the 25% gate
		{Name: "B", NsPerOp: 120}, // +20%: within the gate
		{Name: "New", NsPerOp: 50},
	}
	rows := Diff(base, cur)
	if len(rows) != 3 {
		t.Fatalf("Diff returned %d rows, want 3 (retired kernels dropped)", len(rows))
	}
	if rows[2].HasBase {
		t.Errorf("new kernel %q should have no baseline", rows[2].Name)
	}
	regs := Regressions(rows, 0.25)
	if len(regs) != 1 || regs[0].Name != "A" {
		t.Fatalf("Regressions = %+v, want exactly kernel A", regs)
	}
	var buf bytes.Buffer
	WriteDiffTable(&buf, rows)
	for _, want := range []string{"A", "new", "+30.0%"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("diff table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestReadJSONRoundTrips(t *testing.T) {
	recs := []Record{{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Errorf("ReadJSON round trip = %+v, want %+v", back, recs)
	}
}

func TestSyntheticInstanceDeterministic(t *testing.T) {
	a, err := SyntheticInstance(7, 30, 4, 123)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SyntheticInstance(7, 30, 4, 123)
	if err != nil {
		t.Fatal(err)
	}
	for t0 := 0; t0 < a.T; t0++ {
		for j := range a.Attach[t0] {
			if a.Attach[t0][j] != b.Attach[t0][j] {
				t.Fatalf("Attach[%d][%d] differs between identical seeds", t0, j)
			}
		}
	}
	for i := range a.Capacity {
		if a.Capacity[i] != b.Capacity[i] {
			t.Fatalf("Capacity[%d] differs between identical seeds", i)
		}
	}
	if a.Init == nil {
		t.Fatal("synthetic instance must carry a pre-horizon allocation")
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	recs := []Record{{Name: "X", Iterations: 3, NsPerOp: 1.5, AllocsPerOp: 2, BytesPerOp: 64}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	var back []Record
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0] != recs[0] {
		t.Errorf("round trip = %+v, want %+v", back, recs)
	}
	if !strings.Contains(buf.String(), "allocs_per_op") {
		t.Errorf("JSON missing allocs_per_op key: %s", buf.String())
	}
}
