package perf

import (
	"fmt"
	"math"
	"math/rand"

	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
)

// The churn tier measures the event-driven incremental path
// (core.Options.Incremental) against the best non-incremental
// configuration as a function of mobility intensity. SyntheticInstance
// is the wrong workload for this question: it re-draws every operation
// price and re-attaches ~30% of users per slot, so no deployment-shaped
// stability exists for the incremental tier to exploit. ChurnInstance
// keeps the same geometry but makes the churn rate an exact input and
// lets prices drift smoothly, which is how a real slot sequence behaves
// (the Rome taxi trace churns a few percent per minute over
// slowly-moving spot prices).

// churnRates is the mobility sweep: the paper-realistic low end, the
// taxi-trace band, heavy mobility, and the 100% edge where the
// incremental tier degenerates to the plain candidate path and its
// detection/gate overhead is all that remains.
var churnRates = []float64{0.01, 0.05, 0.2, 1}

// churnIncrementalTol is the soundness-gate tolerance of the churn
// kernels, loosened for the same reason as scaleCandidateTol: under the
// bounded scaleOptions budget the duals carry penalty-scaled noise far
// above their converged values, and a tight gate reads that noise as
// violations, re-admitting (and re-solving) users the optimum never
// moves. The property tests in internal/core pin 1e-8 incremental-vs-
// full equality under converged duals; the churn tier measures
// throughput at the budget a deployment would run.
const churnIncrementalTol = 1.0

// The reduced-solve budget of the incremental variant. The reduced
// program re-enters warm from the previous slot's duals with only the
// churned users' blocks live, so a small iteration cap suffices; the
// exit is residual-driven at the same 1e-4 capacity bar the sharded
// coordinator uses (scaleShardPrimalTol), with the dual/objective tests
// loosened so reaching that bar actually terminates the outer loop
// instead of running the caps out. At ≤5% churn this budget holds every
// slot inside the 1e-4 bar; at ≥20% churn the reduced program is
// effectively full-sized and the caps leave capacity residuals of
// ~1e-4–3e-3 relative — the degeneration edge recorded in
// EXPERIMENTS.md, where the sharded path is the right configuration.
const (
	churnIncrOuter   = 4
	churnIncrInner   = 100
	churnIncrFeasTol = 1e-4
	churnIncrDualTol = 5e-2
	churnIncrObjTol  = 1e-2
)

// ChurnInstance builds the controlled-churn synthetic instance: the
// SyntheticInstance geometry (plane-derived delays, ~1.6x-mean
// capacities, sparse greedy pre-horizon placement) with two differences.
// Operation prices follow a ±2% multiplicative per-slot random walk
// instead of being re-drawn, and attachments move in an exact rotating
// window — ⌈churn·J⌉ users re-attach per slot, everyone else stays —
// so the measured mobility equals the churn parameter by construction.
func ChurnInstance(I, J, T int, churn float64, seed int64) (*model.Instance, error) {
	if churn < 0 || churn > 1 {
		return nil, fmt.Errorf("perf: churn %g outside [0, 1]", churn)
	}
	in, err := SyntheticInstance(I, J, T, seed)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed + 1))

	for t := 1; t < T; t++ {
		for i := 0; i < I; i++ {
			in.OpPrice[t][i] = in.OpPrice[t-1][i] * (1 + 0.02*(2*rng.Float64()-1))
		}
	}

	movers := int(math.Ceil(churn * float64(J)))
	for j := 0; j < J; j++ {
		in.AccessDelay[0][j] = 0.5 * rng.Float64()
	}
	for t := 1; t < T; t++ {
		copy(in.Attach[t], in.Attach[t-1])
		copy(in.AccessDelay[t], in.AccessDelay[t-1])
		for m := 0; m < movers; m++ {
			j := ((t-1)*movers + m) % J
			in.Attach[t][j] = rng.Intn(I)
			in.AccessDelay[t][j] = 0.5 * rng.Float64()
		}
	}

	// The greedy pre-horizon placement keyed on slot-0 attachments is
	// unchanged and Validate re-checks the rewritten trace.
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("perf: churn instance I=%d J=%d T=%d churn=%g: %w", I, J, T, churn, err)
	}
	return in, nil
}

// StepChurn returns the benchmark kernel for one churn rate and variant:
//
//   - "full": the best non-incremental configuration at this size — the
//     sharded candidate path at S = 4 (shardOptions), the fastest
//     recorded StepShard point on the flagship grid. Its cost is flat in
//     the churn rate, which is the point of comparison.
//   - "incr": the event-driven incremental tier over the same certified
//     candidate sets (Candidates = scaleCandidates), gated at
//     churnIncrementalTol. Its cost tracks the churn rate: at 1% only
//     ⌈0.01·J⌉ users' blocks are re-solved per slot, at 100% every slot
//     is a plain candidate-path solve plus detection overhead.
func StepChurn(size ScaleSize, churn float64, variant string) func(*testing.B) {
	return func(b *testing.B) {
		in, err := ChurnInstance(size.I, size.J, scaleHorizon, churn, scaleSeed)
		if err != nil {
			b.Fatal(err)
		}
		var opts core.Options
		switch variant {
		case "full":
			opts = shardOptions(4)
		case "incr":
			opts = scaleOptions()
			opts.Solver.MaxOuter = churnIncrOuter
			opts.Solver.InnerIters = churnIncrInner
			opts.Solver.FeasTol = churnIncrFeasTol
			opts.Solver.DualTol = churnIncrDualTol
			opts.Solver.ObjTol = churnIncrObjTol
			opts.Candidates = scaleCandidates
			opts.CandidateTol = scaleCandidateTol
			opts.Incremental = true
			opts.IncrementalTol = churnIncrementalTol
		default:
			b.Fatalf("perf: unknown churn variant %q", variant)
		}
		stepPasses(b, in, opts)
	}
}

// ChurnSpecName names one churn-tier kernel.
func ChurnSpecName(size ScaleSize, churn float64, variant string) string {
	return fmt.Sprintf("StepChurn/I=%d,J=%d/c=%g%%/%s", size.I, size.J, churn*100, variant)
}

// ChurnSpecs lists the churn tier: full-vs-incremental at the flagship
// grid point across the mobility sweep.
func ChurnSpecs() []Spec {
	size := ScaleSize{I: 50, J: 5000}
	var specs []Spec
	for _, churn := range churnRates {
		for _, variant := range []string{"full", "incr"} {
			specs = append(specs, Spec{
				Name:  ChurnSpecName(size, churn, variant),
				Bench: StepChurn(size, churn, variant),
			})
		}
	}
	return specs
}
