package perf

// Tuning probe for the sharded scaling tier: per-slot timings,
// coordination iteration counts, residuals, and an end-of-run
// feasibility check, with every knob overridable from the
// environment. Run with
//
//	SHARD_PROBE=1 go test -run TestShardProbe -v ./internal/perf/
//
// and steer with PROBE_I/PROBE_J/PROBE_S, PROBE_BLK_OUTER/
// PROBE_BLK_INNER (block solver budget), PROBE_RHO/PROBE_COORD/
// PROBE_PTOL/PROBE_DTOL (coordination), and PROBE_SKIP_GROUP=1 to
// drop the single-program reference run. Defaults mirror the
// committed StepShard tier (scaleShard* constants), so a bare run
// reproduces the recorded configuration.

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
)

func probeEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		n, err := strconv.Atoi(v)
		if err == nil {
			return n
		}
	}
	return def
}

func probeEnvFloat(name string, def float64) float64 {
	if v := os.Getenv(name); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err == nil {
			return f
		}
	}
	return def
}

func TestShardProbe(t *testing.T) {
	if os.Getenv("SHARD_PROBE") == "" {
		t.Skip("set SHARD_PROBE=1 to run the tuning probe")
	}
	I := probeEnvInt("PROBE_I", 50)
	J := probeEnvInt("PROBE_J", 1000)
	in, err := SyntheticInstance(I, J, scaleHorizon, scaleSeed)
	if err != nil {
		t.Fatal(err)
	}

	run := func(name string, opts core.Options) {
		alg := core.NewOnlineApprox(in, opts)
		sched := make(model.Schedule, 0, in.T)
		var steady time.Duration
		for tt := 0; tt < in.T; tt++ {
			start := time.Now()
			x, err := alg.Step(tt)
			el := time.Since(start)
			if err != nil {
				t.Fatal(err)
			}
			if tt >= 2 {
				steady += el
			}
			sched = append(sched, x)
			d := alg.LastStepDiag()
			fmt.Printf("%-10s slot %d: %7.3fs outer=%4d inner=%6d conv=%v coord=%d resid=%.2e rounds=%d nnz=%d\n",
				name, tt, el.Seconds(), d.Outer, d.Inner, d.Converged,
				d.ShardIters, d.ShardResidual, d.CandRounds, d.CandNNZ)
		}
		b, err := in.Evaluate(sched)
		if err != nil {
			t.Fatal(err)
		}
		feas := "ok"
		if err := in.CheckFeasible(sched, 1e-4); err != nil {
			feas = err.Error()
		}
		fmt.Printf("%-10s steady=%7.3fs cost=%.6f feas=%s\n\n", name, steady.Seconds(), in.Total(b), feas)
	}

	if os.Getenv("PROBE_SKIP_GROUP") == "" {
		g := scaleOptions()
		g.Candidates = scaleCandidates
		g.CandidateTol = scaleCandidateTol
		run("group", g)
	}

	S := probeEnvInt("PROBE_S", 4)
	sh := shardOptions(S)
	sh.Solver.MaxOuter = probeEnvInt("PROBE_BLK_OUTER", scaleShardBlockOuter)
	sh.Solver.InnerIters = probeEnvInt("PROBE_BLK_INNER", scaleShardBlockInner)
	sh.ShardRho = probeEnvFloat("PROBE_RHO", scaleShardRho)
	sh.ShardMaxIters = probeEnvInt("PROBE_COORD", scaleShardIters)
	sh.ShardPrimalTol = probeEnvFloat("PROBE_PTOL", scaleShardPrimalTol)
	sh.ShardDualTol = probeEnvFloat("PROBE_DTOL", scaleShardDualTol)
	run(fmt.Sprintf("shard S=%d", S), sh)
}
