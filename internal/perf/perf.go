// Package perf defines the solver microbenchmark kernels shared by the
// `go test -bench` benchmarks (perf_test.go) and the machine-readable
// dump behind `edgebench -benchjson` (BENCH_solver.json). Keeping the
// kernels in one place guarantees the numbers recorded in EXPERIMENTS.md
// and the JSON trajectory come from the exact code the benchmarks run.
package perf

import (
	"encoding/json"
	"fmt"
	"io"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/solver/alm"
	"edgealloc/internal/solver/fista"
)

// fistaDim is the variable count of the FISTA kernel — the I·J of a
// 15-cloud, 40-user slot problem.
const fistaDim = 600

// quadObjective is a strongly convex separable quadratic
// Σ c_k (x_k − a_k)², the cheapest representative objective: with
// near-free Evals, per-call allocation overhead dominates the
// measurement, which is exactly what these kernels track.
type quadObjective struct {
	c, a []float64
}

func (q *quadObjective) Eval(x, grad []float64) float64 {
	f := 0.0
	for k := range x {
		d := x[k] - q.a[k]
		f += q.c[k] * d * d
		if grad != nil {
			grad[k] = 2 * q.c[k] * d
		}
	}
	return f
}

var _ fista.Objective = (*quadObjective)(nil)

func newQuad(n int) (*quadObjective, []float64) {
	q := &quadObjective{c: make([]float64, n), a: make([]float64, n)}
	for k := 0; k < n; k++ {
		// Deterministic, irregular coefficients; no RNG needed.
		q.c[k] = 1 + float64(k%7)/3
		q.a[k] = float64((k*2689+13)%100) / 25
	}
	return q, make([]float64, n)
}

// FISTASolve is the BenchmarkFISTASolve kernel: repeated box-constrained
// minimizations of a fixed quadratic reusing one workspace.
func FISTASolve(b *testing.B) {
	q, lower := newQuad(fistaDim)
	x0 := make([]float64, fistaDim)
	var ws fista.Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := fista.Minimize(q, x0, fista.Options{
			MaxIters: 200, Lower: lower, Workspace: &ws,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.F < 0 {
			b.Fatal("negative quadratic")
		}
	}
}

// ALMSolve is the BenchmarkALMSolve kernel: repeated constrained solves
// of a quadratic under demand-style GE rows, reusing one workspace and
// warm-starting from the previous solution like the per-slot loops do.
func ALMSolve(b *testing.B) {
	const n, rows = fistaDim, 40
	q, lower := newQuad(n)
	cons := make([]alm.Constraint, rows)
	per := n / rows
	for r := 0; r < rows; r++ {
		idx := make([]int, per)
		coef := make([]float64, per)
		for k := 0; k < per; k++ {
			idx[k] = r*per + k
			coef[k] = 1
		}
		cons[r] = alm.Constraint{Idx: idx, Coeffs: coef, RHS: float64(per) * 2.5}
	}
	prob := &alm.Problem{Obj: q, N: n, Lower: lower, Cons: cons}
	opts := alm.Options{MaxOuter: 20, InnerIters: 300, FeasTol: 1e-6}
	var ws alm.Workspace
	opts.Workspace = &ws
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := alm.Solve(prob, opts)
		if err != nil {
			b.Fatal(err)
		}
		opts.WarmX = res.X
		opts.WarmDuals = res.Duals
	}
}

// stepInstance builds the fixed Rome instance behind OnlineApproxStep.
func stepInstance(b testing.TB) *model.Instance {
	in, _, err := scenario.Rome(scenario.Config{Users: 20, Horizon: 8, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

// OnlineApproxStep is the BenchmarkOnlineApproxStep kernel: repeated
// per-slot Step calls of the paper's algorithm — the steady-state hot
// path of an online deployment. Slot 0 (which builds the per-instance
// caches and solves a transportation problem for its warm start) runs
// off the clock, as does the per-horizon re-creation of the algorithm
// object, so per-op numbers measure warm Step itself.
func OnlineApproxStep(b *testing.B) {
	in := stepInstance(b)
	opts := core.Options{Solver: alm.Options{MaxOuter: 30, InnerIters: 400,
		FeasTol: 1e-6, DualTol: 1e-3, ObjTol: 1e-7, Penalty: 2}}
	prime := func() *core.OnlineApprox {
		alg := core.NewOnlineApprox(in, opts)
		if _, err := alg.Step(0); err != nil {
			b.Fatal(err)
		}
		return alg
	}
	alg := prime()
	t := 1
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if t == in.T {
			b.StopTimer()
			alg = prime()
			t = 1
			b.StartTimer()
		}
		if _, err := alg.Step(t); err != nil {
			b.Fatal(err)
		}
		t++
	}
}

// Spec names one benchmark kernel.
type Spec struct {
	Name  string
	Bench func(*testing.B)
}

// Specs lists the solver microbenchmarks in reporting order: the base
// kernels, and — when includeScale is set — the scaling tier and the
// candidate-size sweep (scale.go), which together take tens of minutes
// and are therefore opt-in (edgebench -scale, non-short `go test
// -bench`).
func Specs(includeScale bool) []Spec {
	specs := []Spec{
		{"FISTASolve", FISTASolve},
		{"ALMSolve", ALMSolve},
		{"OnlineApproxStep", OnlineApproxStep},
	}
	specs = append(specs, NumKernelSpecs()...)
	if includeScale {
		specs = append(specs, ScaleSpecs()...)
		specs = append(specs, SparseSpecs()...)
		specs = append(specs, ShardSpecs()...)
		specs = append(specs, DistSpecs()...)
		specs = append(specs, ChurnSpecs()...)
	}
	return specs
}

// Record is one benchmark measurement in the machine-readable dump.
type Record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// RunAll executes every kernel through testing.Benchmark and collects
// the per-op statistics; includeScale selects whether the scaling tier
// runs (see Specs).
func RunAll(includeScale bool) []Record {
	specs := Specs(includeScale)
	recs := make([]Record, 0, len(specs))
	for _, s := range specs {
		r := testing.Benchmark(s.Bench)
		recs = append(recs, Record{
			Name:        s.Name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	return recs
}

// WriteJSON renders records as indented JSON, one object per kernel.
func WriteJSON(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(recs)
}

// WriteTable renders records as a human-readable summary.
func WriteTable(w io.Writer, recs []Record) {
	fmt.Fprintf(w, "%-20s %14s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range recs {
		fmt.Fprintf(w, "%-20s %14.0f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
}
