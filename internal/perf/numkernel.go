package perf

import (
	"math"
	"math/rand"
	"testing"

	"edgealloc/internal/numkernel"
)

// The NumKernel family measures the batch fast-math kernels behind
// core.Options.FastMath in isolation, over one cache-resident buffer of
// solver-typical operands. NumKernel/LogStdlib is the per-element
// math.Log loop the batch kernel replaces, so LogStdlib/LogBatch is the
// raw per-element win before any solver-level effects (reciprocal
// precompute, cache-traffic elimination) stack on top.

// numKernelLen is the element count of every NumKernel buffer: a J-row
// of the flagship scaling size, comfortably L1/L2-resident so the
// kernels measure arithmetic throughput, not memory.
const numKernelLen = 4096

// numKernelOperands draws solver-typical log operands: migration ratios
// (x+ε₂)/(x'+ε₂) concentrate within a few decades of 1.
func numKernelOperands() []float64 {
	rng := rand.New(rand.NewSource(scaleSeed))
	xs := make([]float64, numKernelLen)
	for i := range xs {
		xs[i] = math.Exp(6 * (rng.Float64() - 0.5))
	}
	return xs
}

// NumKernelLogBatch benches numkernel.LogBatch.
func NumKernelLogBatch(b *testing.B) {
	xs := numKernelOperands()
	dst := make([]float64, numKernelLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		numkernel.LogBatch(dst, xs)
	}
}

// NumKernelLogStdlib benches the scalar math.Log loop LogBatch replaces.
func NumKernelLogStdlib(b *testing.B) {
	xs := numKernelOperands()
	dst := make([]float64, numKernelLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		for i, x := range xs {
			dst[i] = math.Log(x)
		}
	}
}

// NumKernelLog1pBatch benches numkernel.Log1pBatch on near-zero operands.
func NumKernelLog1pBatch(b *testing.B) {
	xs := numKernelOperands()
	for i := range xs {
		xs[i] -= 1 // spans (-1, e^3-1), centered near 0
	}
	dst := make([]float64, numKernelLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		numkernel.Log1pBatch(dst, xs)
	}
}

// NumKernelExpBatch benches numkernel.ExpBatch on softplus-typical
// operands.
func NumKernelExpBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(scaleSeed))
	xs := make([]float64, numKernelLen)
	for i := range xs {
		xs[i] = 60 * (rng.Float64() - 0.5)
	}
	dst := make([]float64, numKernelLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		numkernel.ExpBatch(dst, xs)
	}
}

// NumKernelLogBatch32 benches the float32 storage tier.
func NumKernelLogBatch32(b *testing.B) {
	xs64 := numKernelOperands()
	xs := make([]float32, numKernelLen)
	for i, v := range xs64 {
		xs[i] = float32(v)
	}
	dst := make([]float32, numKernelLen)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		numkernel.LogBatch32(dst, xs)
	}
}

// NumKernelSpecs lists the fast-math kernel microbenchmarks.
func NumKernelSpecs() []Spec {
	return []Spec{
		{"NumKernel/LogBatch", NumKernelLogBatch},
		{"NumKernel/LogStdlib", NumKernelLogStdlib},
		{"NumKernel/Log1pBatch", NumKernelLog1pBatch},
		{"NumKernel/ExpBatch", NumKernelExpBatch},
		{"NumKernel/LogBatch32", NumKernelLogBatch32},
	}
}
