package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-7) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Errorf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %g, want 2.5", got)
	}
	// Re-registering the same shape returns the same instrument.
	if r.Counter("c_total", "help") != c {
		t.Error("re-registered counter is a different instance")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); got != 56.05 {
		t.Errorf("sum = %g, want 56.05", got)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE h_seconds histogram",
		`h_seconds_bucket{le="0.1"} 1`,
		`h_seconds_bucket{le="1"} 3`,
		`h_seconds_bucket{le="10"} 4`,
		`h_seconds_bucket{le="+Inf"} 5`,
		"h_seconds_sum 56.05",
		"h_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestLabeledFamilies(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("reqs_total", "help", "code")
	v.With("200").Add(3)
	v.With("429").Inc()
	if v.With("200") != v.With("200") {
		t.Error("With returns distinct instances for one label value")
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`reqs_total{code="200"} 3`,
		`reqs_total{code="429"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestShapeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "help")
}

func TestHandlerFormats(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help").Add(2)
	r.GaugeVec("u", "help", "cloud").With("0").Set(0.5)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default content type %q, want text/plain", ct)
	}
	if !strings.Contains(rec.Body.String(), "c_total 2") {
		t.Errorf("prometheus body missing counter:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics?format=json", nil))
	var doc map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("json body: %v", err)
	}
	if got := doc["c_total"]; got != 2.0 {
		t.Errorf("json c_total = %v, want 2", got)
	}
	if got := doc["u.0"]; got != 0.5 {
		t.Errorf("json u.0 = %v, want 0.5", got)
	}
}

func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	h := r.Histogram("h", "help", nil)
	v := r.CounterVec("l_total", "help", "k")
	var wg sync.WaitGroup
	const workers, each = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < each; k++ {
				c.Inc()
				h.Observe(0.01)
				v.With("a").Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*each {
		t.Errorf("counter = %g, want %d", got, workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if got := v.With("a").Value(); got != workers*each {
		t.Errorf("labeled counter = %g, want %d", got, workers*each)
	}
}

func TestSolverMetricsNilSafe(t *testing.T) {
	var m *SolverMetrics
	// Every hook must be a no-op on the nil bundle.
	m.ObserveStep(0.1, 2, 30, true)
	m.ObserveCandidates(1, 2, 3)
	m.SetCloudUtilization(0, 0.5)
	m.CountViolation("capacity")
	m.ObserveRun(1.5)
}

func TestSolverMetricsRecords(t *testing.T) {
	r := NewRegistry()
	m := NewSolverMetrics(r)
	m.ObserveStep(0.1, 2, 30, true)
	m.ObserveStep(0.2, 3, 40, false)
	m.ObserveCandidates(2, 5, 17)
	m.SetCloudUtilization(1, 0.75)
	m.CountViolation("capacity")
	m.ObserveRun(1.5)

	if got := m.Steps.Value(); got != 2 {
		t.Errorf("steps = %g, want 2", got)
	}
	if got := m.NonConverged.Value(); got != 1 {
		t.Errorf("nonconverged = %g, want 1", got)
	}
	if got := m.OuterIters.Value(); got != 5 {
		t.Errorf("outer = %g, want 5", got)
	}
	if got := m.InnerIters.Value(); got != 70 {
		t.Errorf("inner = %g, want 70", got)
	}
	if got := m.CandNNZ.Value(); got != 17 {
		t.Errorf("nnz = %g, want 17", got)
	}
	if got := m.CloudUtil.With("1").Value(); got != 0.75 {
		t.Errorf("utilization = %g, want 0.75", got)
	}
	if got := m.ConformViol.With("capacity").Value(); got != 1 {
		t.Errorf("violations = %g, want 1", got)
	}
	if got := m.SimRuns.Value(); got != 1 {
		t.Errorf("sim runs = %g, want 1", got)
	}
	// Recompute the expected sum with runtime float adds (the untyped
	// constant 0.1+0.2 folds at higher precision and differs in the last
	// bit from the histogram's sequential accumulation).
	secs := []float64{0.1, 0.2}
	want := 0.0
	for _, s := range secs {
		want += s
	}
	if got := m.StepLatency.Sum(); got != want {
		t.Errorf("latency sum = %g, want %g", got, want)
	}
}
