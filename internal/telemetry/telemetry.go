// Package telemetry is the runtime observability layer shared by the
// serving daemon (cmd/edged) and the batch CLIs: lock-light counters,
// gauges, and histograms collected in a Registry and exposed in both
// Prometheus text format and an expvar-style JSON document.
//
// The package is deliberately dependency-free (stdlib only) and cheap on
// the hot path: counters and gauges are single atomic words, histogram
// observations touch one atomic bucket plus an atomic sum, and nothing
// allocates after instrument creation. Solver code records through the
// nil-safe SolverMetrics bundle (solver.go), so an unconfigured pipeline
// pays only a nil check per event.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// atomicFloat is a float64 with atomic load/store/add via its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (a *atomicFloat) Load() float64 { return math.Float64frombits(a.bits.Load()) }

func (a *atomicFloat) Store(v float64) { a.bits.Store(math.Float64bits(v)) }

// Add accumulates v with a compare-and-swap loop (floats have no atomic
// add primitive).
func (a *atomicFloat) Add(v float64) {
	for {
		old := a.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if a.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing value.
type Counter struct{ v atomicFloat }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add accumulates v; negative deltas are ignored to keep the counter
// monotone (a counter that can go down is a gauge).
func (c *Counter) Add(v float64) {
	if v > 0 {
		c.v.Add(v)
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct{ v atomicFloat }

// Set replaces the current value.
func (g *Gauge) Set(v float64) { g.v.Store(v) }

// Add accumulates a (possibly negative) delta.
func (g *Gauge) Add(v float64) { g.v.Add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution with a running sum and count,
// exposed in Prometheus cumulative-bucket form.
type Histogram struct {
	bounds []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomicFloat
	count  atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≲20) and the first buckets are
	// the hot ones for latencies, so this beats a binary search in practice.
	for k, ub := range h.bounds {
		if v <= ub {
			h.counts[k].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Load() }

// DefBuckets covers solve latencies from sub-millisecond to a minute.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// kind tags a family's instrument type for exposition.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// family is one named metric with zero or one label dimension. Unlabeled
// instruments live in series[""].
type family struct {
	name, help string
	kind       kind
	label      string    // label key, "" for unlabeled families
	buckets    []float64 // histogram families only

	mu     sync.Mutex
	series map[string]any // label value -> *Counter | *Gauge | *Histogram
}

// get returns the series for one label value, creating it on first use.
func (f *family) get(labelValue string) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[labelValue]; ok {
		return s
	}
	var s any
	switch f.kind {
	case kindCounter:
		s = &Counter{}
	case kindGauge:
		s = &Gauge{}
	case kindHistogram:
		s = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)),
		}
	}
	f.series[labelValue] = s
	return s
}

// sortedValues returns the label values in deterministic order.
func (f *family) sortedValues() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	vals := make([]string, 0, len(f.series))
	for v := range f.series {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// Registry collects metric families and renders them. The zero value is
// not usable; construct with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	ordered  []*family
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// register returns the named family, creating it with the given shape or
// panicking on a shape conflict — re-registering a name as a different
// kind is a programming error no caller can meaningfully handle.
func (r *Registry) register(name, help string, k kind, label string, buckets []float64) *family {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || f.label != label {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s(label=%q), was %s(label=%q)",
				name, k, label, f.kind, f.label))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k, label: label,
		buckets: buckets, series: map[string]any{}}
	r.families[name] = f
	r.ordered = append(r.ordered, f)
	return f
}

// Counter registers (or fetches) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, "", nil).get("").(*Counter)
}

// Gauge registers (or fetches) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, "", nil).get("").(*Gauge)
}

// Histogram registers (or fetches) an unlabeled histogram; nil buckets
// take DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, "", buckets).get("").(*Histogram)
}

// CounterVec registers a counter family with one label dimension.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, label, nil)}
}

// GaugeVec registers a gauge family with one label dimension.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, label, nil)}
}

// CounterVec is a counter family keyed by one label value.
type CounterVec struct{ f *family }

// With returns the counter for one label value, creating it on first use.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).(*Counter) }

// GaugeVec is a gauge family keyed by one label value.
type GaugeVec struct{ f *family }

// With returns the gauge for one label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).(*Gauge) }

// snapshot returns the families in registration order.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*family(nil), r.ordered...)
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4), with deterministic family and label ordering.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	for _, f := range r.snapshot() {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, lv := range f.sortedValues() {
			sel := ""
			if f.label != "" {
				sel = fmt.Sprintf("{%s=%q}", f.label, lv)
			}
			switch s := f.get(lv).(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sel, formatFloat(s.Value()))
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sel, formatFloat(s.Value()))
			case *Histogram:
				writePromHistogram(&b, f, sel, s)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writePromHistogram renders one histogram series: cumulative buckets,
// the implicit +Inf bucket, then sum and count.
func writePromHistogram(b *strings.Builder, f *family, sel string, h *Histogram) {
	// The bucket label composes with the family label, so build the
	// le-selector accordingly.
	leSel := func(le string) string {
		if sel == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return sel[:len(sel)-1] + fmt.Sprintf(",le=%q}", le)
	}
	cum := uint64(0)
	for k, ub := range h.bounds {
		cum += h.counts[k].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, leSel(formatFloat(ub)), cum)
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, leSel("+Inf"), h.Count())
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, sel, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, sel, h.Count())
}

// formatFloat renders a metric value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteJSON renders every family as one flat expvar-style JSON object:
// counters and gauges map name (plus ".label" for labeled series) to the
// value; histograms map to {count, sum, buckets}.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := map[string]any{}
	for _, f := range r.snapshot() {
		for _, lv := range f.sortedValues() {
			key := f.name
			if f.label != "" {
				key = f.name + "." + lv
			}
			switch s := f.get(lv).(type) {
			case *Counter:
				doc[key] = s.Value()
			case *Gauge:
				doc[key] = s.Value()
			case *Histogram:
				buckets := map[string]uint64{}
				cum := uint64(0)
				for k, ub := range s.bounds {
					cum += s.counts[k].Load()
					buckets[formatFloat(ub)] = cum
				}
				buckets["+Inf"] = s.Count()
				doc[key] = map[string]any{
					"count": s.Count(), "sum": s.Sum(), "buckets": buckets,
				}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// Handler serves the registry: Prometheus text by default, the JSON
// document with ?format=json (or an Accept header preferring JSON).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" ||
			strings.Contains(req.Header.Get("Accept"), "application/json") {
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
