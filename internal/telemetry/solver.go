package telemetry

import "strconv"

// SolverMetrics is the canonical instrument bundle for the allocation
// pipeline. Both the serving daemon (internal/serve) and the batch CLIs
// (edgesim, edgebench) build it from the same constructor, so a scrape of
// either reports the same metric names (documented in DESIGN.md §9):
//
//	edgealloc_solver_step_seconds              histogram  per-slot P2 solve latency
//	edgealloc_solver_steps_total               counter    slots solved
//	edgealloc_solver_steps_nonconverged_total  counter    slots where ALM hit MaxOuter
//	edgealloc_solver_alm_outer_iterations_total    counter  ALM multiplier updates
//	edgealloc_solver_fista_iterations_total        counter  inner FISTA iterations
//	edgealloc_solver_candidate_rounds_total        counter  candidate-set solves (≥1/slot)
//	edgealloc_solver_candidate_expanded_pairs_total counter pairs re-admitted by pricing
//	edgealloc_solver_candidate_nnz                 gauge    Σ_j|K_j| of the last certified solve
//	edgealloc_solver_logcache_hits_total           counter  migration-log memo-cache hits (exact path)
//	edgealloc_solver_logcache_misses_total         counter  migration-log memo-cache misses (exact path)
//	edgealloc_solver_shard_outer_iterations_total  counter  shard coordination (dual-ascent) iterations
//	edgealloc_solver_shard_max_residual            gauge    final consensus/capacity residual of the last slot
//	edgealloc_solver_shard_solve_seconds           histogram per-shard cumulative solve time per slot
//	edgealloc_solver_shardrpc_calls_total          counter  shard-RPC attempts (per HTTP attempt, retries included)
//	edgealloc_solver_shardrpc_retries_total        counter  shard-RPC re-attempts after a retryable failure
//	edgealloc_solver_shardrpc_bytes_total          counter  shard-RPC request+response body bytes
//	edgealloc_solver_shardrpc_seconds_total        counter  cumulative shard-RPC wall time
//	edgealloc_solver_shardrpc_fallbacks_total      counter  remote blocks folded back into local solving
//	edgealloc_solver_incr_frozen_users             counter  users held at their carried decision (incremental path)
//	edgealloc_solver_incr_readmitted_users         counter  frozen users re-admitted by the soundness gate
//	edgealloc_solver_incr_solve_seconds            histogram per-slot solve latency of incremental slots
//	edgealloc_cloud_utilization{cloud=i}           gauge    Σ_j x_{i,j,t}/C_i at the last solved slot
//	edgealloc_conform_violations_total{kind=k}     counter  oracle findings by guarantee kind
//	edgealloc_sim_runs_total                       counter  completed harness runs
//	edgealloc_sim_solve_seconds                    histogram full-horizon Solve latency
//
// All methods are nil-safe: a nil *SolverMetrics records nothing, so the
// hot paths hook unconditionally and pay one pointer test when telemetry
// is off.
type SolverMetrics struct {
	StepLatency  *Histogram
	Steps        *Counter
	NonConverged *Counter
	OuterIters   *Counter
	InnerIters   *Counter
	CandRounds   *Counter
	CandExpanded *Counter
	CandNNZ      *Gauge
	LogHits      *Counter
	LogMisses    *Counter
	ShardIters   *Counter
	ShardResid   *Gauge
	ShardSolve   *Histogram
	RPCCalls     *Counter
	RPCRetries   *Counter
	RPCBytes     *Counter
	RPCSeconds   *Counter
	RPCFallbacks *Counter
	IncrFrozen   *Counter
	IncrReadmit  *Counter
	IncrSolve    *Histogram
	CloudUtil    *GaugeVec
	ConformViol  *CounterVec
	SimRuns      *Counter
	SimSolveHist *Histogram
}

// NewSolverMetrics registers the bundle on r.
func NewSolverMetrics(r *Registry) *SolverMetrics {
	return &SolverMetrics{
		StepLatency: r.Histogram("edgealloc_solver_step_seconds",
			"Per-slot P2 solve latency in seconds.", nil),
		Steps: r.Counter("edgealloc_solver_steps_total",
			"Slots solved by the online algorithm."),
		NonConverged: r.Counter("edgealloc_solver_steps_nonconverged_total",
			"Slots whose ALM solve stopped at the outer-iteration cap."),
		OuterIters: r.Counter("edgealloc_solver_alm_outer_iterations_total",
			"ALM outer (multiplier-update) iterations."),
		InnerIters: r.Counter("edgealloc_solver_fista_iterations_total",
			"Inner FISTA iterations across all subproblems."),
		CandRounds: r.Counter("edgealloc_solver_candidate_rounds_total",
			"Candidate-set reduced solves (rounds beyond one per slot are pricing expansions)."),
		CandExpanded: r.Counter("edgealloc_solver_candidate_expanded_pairs_total",
			"(cloud,user) pairs re-admitted by the dual pricing pass."),
		CandNNZ: r.Gauge("edgealloc_solver_candidate_nnz",
			"Packed variable count of the most recent certified candidate solve."),
		LogHits: r.Counter("edgealloc_solver_logcache_hits_total",
			"Migration-entropy log memo-cache hits on the exact evaluation path (zero under FastMath)."),
		LogMisses: r.Counter("edgealloc_solver_logcache_misses_total",
			"Migration-entropy log memo-cache misses (fresh math.Log calls) on the exact evaluation path."),
		ShardIters: r.Counter("edgealloc_solver_shard_outer_iterations_total",
			"Shard-coordination outer dual-ascent iterations (zero when sharding is off)."),
		ShardResid: r.Gauge("edgealloc_solver_shard_max_residual",
			"Final max consensus/capacity residual of the most recent sharded slot."),
		ShardSolve: r.Histogram("edgealloc_solver_shard_solve_seconds",
			"Per-shard cumulative subproblem solve time within one slot, in seconds.", nil),
		RPCCalls: r.Counter("edgealloc_solver_shardrpc_calls_total",
			"Shard-RPC HTTP attempts (retries counted individually; zero without -shard-workers)."),
		RPCRetries: r.Counter("edgealloc_solver_shardrpc_retries_total",
			"Shard-RPC re-attempts after a retryable failure (timeouts, transport errors, 5xx)."),
		RPCBytes: r.Counter("edgealloc_solver_shardrpc_bytes_total",
			"Shard-RPC request and response body bytes."),
		RPCSeconds: r.Counter("edgealloc_solver_shardrpc_seconds_total",
			"Cumulative wall time spent in shard-RPC calls, in seconds."),
		RPCFallbacks: r.Counter("edgealloc_solver_shardrpc_fallbacks_total",
			"Remote shard blocks folded back into local solving after exhausted retries."),
		IncrFrozen: r.Counter("edgealloc_solver_incr_frozen_users",
			"Users held at their carried decision by the incremental path (zero when incremental solving is off)."),
		IncrReadmit: r.Counter("edgealloc_solver_incr_readmitted_users",
			"Frozen users re-admitted to the active set by the dual-feasibility soundness gate."),
		IncrSolve: r.Histogram("edgealloc_solver_incr_solve_seconds",
			"Per-slot solve latency of incremental-path slots, in seconds.", nil),
		CloudUtil: r.GaugeVec("edgealloc_cloud_utilization",
			"Per-cloud utilization sum_j x_ij / C_i at the most recent solved slot.", "cloud"),
		ConformViol: r.CounterVec("edgealloc_conform_violations_total",
			"Paper-conformance oracle findings by guarantee kind.", "kind"),
		SimRuns: r.Counter("edgealloc_sim_runs_total",
			"Completed simulation-harness runs."),
		SimSolveHist: r.Histogram("edgealloc_sim_solve_seconds",
			"Full-horizon Solve latency of harness runs in seconds.", nil),
	}
}

// ObserveStep records one per-slot solve: latency, iteration counts, and
// convergence.
func (m *SolverMetrics) ObserveStep(seconds float64, outer, inner int, converged bool) {
	if m == nil {
		return
	}
	m.StepLatency.Observe(seconds)
	m.Steps.Inc()
	m.OuterIters.Add(float64(outer))
	m.InnerIters.Add(float64(inner))
	if !converged {
		m.NonConverged.Inc()
	}
}

// ObserveCandidates records the candidate-set work of one slot.
func (m *SolverMetrics) ObserveCandidates(rounds, expandedPairs, finalNNZ int) {
	if m == nil {
		return
	}
	m.CandRounds.Add(float64(rounds))
	m.CandExpanded.Add(float64(expandedPairs))
	m.CandNNZ.Set(float64(finalNNZ))
}

// ObserveShards records one sharded slot's coordination work: outer
// dual-ascent iterations, the final consensus/capacity residual, and each
// shard's cumulative solve time.
func (m *SolverMetrics) ObserveShards(iters int, maxResidual float64, blockSeconds []float64) {
	if m == nil {
		return
	}
	m.ShardIters.Add(float64(iters))
	m.ShardResid.Set(maxResidual)
	for _, s := range blockSeconds {
		m.ShardSolve.Observe(s)
	}
}

// ObserveShardRPCAttempt records one shard-RPC HTTP attempt: its wall
// time, the body bytes moved, and whether it was a retry.
func (m *SolverMetrics) ObserveShardRPCAttempt(seconds float64, bytes int64, retry bool) {
	if m == nil {
		return
	}
	m.RPCCalls.Inc()
	m.RPCBytes.Add(float64(bytes))
	m.RPCSeconds.Add(seconds)
	if retry {
		m.RPCRetries.Inc()
	}
}

// CountShardRPCFallback tallies one remote block folded back into local
// solving.
func (m *SolverMetrics) CountShardRPCFallback() {
	if m == nil {
		return
	}
	m.RPCFallbacks.Inc()
}

// ObserveIncremental records one incremental-path slot: users held
// frozen when the slot committed, users the soundness gate re-admitted,
// and the slot's solve latency.
func (m *SolverMetrics) ObserveIncremental(frozen, readmitted int, seconds float64) {
	if m == nil {
		return
	}
	m.IncrFrozen.Add(float64(frozen))
	m.IncrReadmit.Add(float64(readmitted))
	m.IncrSolve.Observe(seconds)
}

// ObserveLogCache records one slot's migration-log memo-cache outcomes
// on the exact evaluation path (both zero under FastMath, whose batch
// kernels bypass the cache).
func (m *SolverMetrics) ObserveLogCache(hits, misses int64) {
	if m == nil {
		return
	}
	m.LogHits.Add(float64(hits))
	m.LogMisses.Add(float64(misses))
}

// SetCloudUtilization records cloud i's utilization at the latest slot.
func (m *SolverMetrics) SetCloudUtilization(cloud int, util float64) {
	if m == nil {
		return
	}
	m.CloudUtil.With(strconv.Itoa(cloud)).Set(util)
}

// CountViolation tallies one conformance-oracle finding of the given kind.
func (m *SolverMetrics) CountViolation(kind string) {
	if m == nil {
		return
	}
	m.ConformViol.With(kind).Inc()
}

// ObserveRun records one completed harness run.
func (m *SolverMetrics) ObserveRun(solveSeconds float64) {
	if m == nil {
		return
	}
	m.SimRuns.Inc()
	m.SimSolveHist.Observe(solveSeconds)
}
