package pricing

import (
	"math"
	"math/rand"
	"testing"
)

func TestOpPricesShapeAndPositivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	capacity := []float64{10, 20, 40}
	p := OpPrices(capacity, 30, 1, 0, rng)
	if len(p) != 30 {
		t.Fatalf("len = %d, want 30", len(p))
	}
	for t2, row := range p {
		if len(row) != 3 {
			t.Fatalf("slot %d width %d, want 3", t2, len(row))
		}
		for i, v := range row {
			if v <= 0 {
				t.Fatalf("price[%d][%d] = %g not positive", t2, i, v)
			}
		}
	}
}

func TestOpPricesInverselyProportionalToCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	capacity := []float64{10, 40} // 4x capacity -> ~1/4 base price
	p := OpPrices(capacity, 4000, 1, 0, rng)
	var m0, m1 float64
	for _, row := range p {
		m0 += row[0]
		m1 += row[1]
	}
	ratio := m0 / m1
	if ratio < 3 || ratio > 5 {
		t.Errorf("mean price ratio = %g, want ≈4 (economy of scale)", ratio)
	}
}

func TestOpPricesVaryOverTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := OpPrices([]float64{10}, 50, 1, 0, rng)
	distinct := map[float64]bool{}
	for _, row := range p {
		distinct[row[0]] = true
	}
	if len(distinct) < 40 {
		t.Errorf("only %d distinct prices in 50 slots — not time-varying", len(distinct))
	}
}

func TestBandwidthPricesClustersAndScale(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	out, in := BandwidthPrices(9, 2, rng)
	if len(out) != 9 || len(in) != 9 {
		t.Fatalf("lengths %d/%d, want 9/9", len(out), len(in))
	}
	sum := 0.0
	for i := range out {
		if out[i] != in[i] {
			t.Errorf("cloud %d: out %g != in %g (symmetric split expected)", i, out[i], in[i])
		}
		if out[i] <= 0 {
			t.Errorf("cloud %d: nonpositive price", i)
		}
		sum += out[i] + in[i]
	}
	// Mean of b_out+b_in across clouds must equal scale (rates normalized).
	if mean := sum / 9; math.Abs(mean-2) > 1e-9 {
		t.Errorf("mean total migration price = %g, want 2", mean)
	}
	// Exactly three distinct totals (the three ISP clusters).
	distinct := map[float64]bool{}
	for i := range out {
		distinct[math.Round((out[i]+in[i])*1e9)/1e9] = true
	}
	if len(distinct) != 3 {
		t.Errorf("%d distinct cluster prices, want 3", len(distinct))
	}
}

func TestBandwidthPricesRatios(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	out, in := BandwidthPrices(3, 1, rng)
	totals := []float64{out[0] + in[0], out[1] + in[1], out[2] + in[2]}
	// Sort-independent check: the three totals must be proportional to the
	// ISP rates {2.49, 4.86, 1.25} up to permutation.
	wantRatios := map[float64]bool{}
	mean := (2.49 + 4.86 + 1.25) / 3
	for _, r := range ISPRates {
		wantRatios[math.Round(r/mean*1e9)/1e9] = true
	}
	for _, tot := range totals {
		if !wantRatios[math.Round(tot*1e9)/1e9] {
			t.Errorf("total %g is not one of the normalized ISP rates", tot)
		}
	}
}

func TestReconfPricesPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := ReconfPrices(500, 1, 2, rng) // large std forces negative draws
	for i, v := range p {
		if v <= 0 {
			t.Fatalf("price[%d] = %g, want positive (negative tail cut)", i, v)
		}
	}
}

func TestDefaultsKickIn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if p := OpPrices([]float64{5}, 1, 0, 0, rng); p[0][0] <= 0 {
		t.Error("OpPrices default scale failed")
	}
	if out, _ := BandwidthPrices(2, 0, rng); out[0] <= 0 {
		t.Error("BandwidthPrices default scale failed")
	}
	if p := ReconfPrices(1, 0, 0, rng); p[0] <= 0 {
		t.Error("ReconfPrices defaults failed")
	}
}
