// Package pricing generates the price processes of the paper's evaluation
// (§V-A):
//
//   - operation prices: a per-cloud base price inversely proportional to
//     capacity (economy of scale), with the real-time price drawn each slot
//     from a Gaussian with that base as mean and half the base as standard
//     deviation;
//   - bandwidth (migration) prices: three ISP clusters with the relative
//     flat-rate ratios of Tiscali Italia, Vodafone Italia and
//     Infostrada-Wind (2.49 : 4.86 : 1.25 €/Mbps·month);
//   - reconfiguration prices: static per-cloud values from a Gaussian with
//     the negative tail cut.
package pricing

import (
	"math"
	"math/rand"
)

// ISPRates are the per-month flat rates (euro per Mbps) of the three
// Internet providers the paper assigns to edge-cloud clusters. Only their
// ratios matter.
var ISPRates = [3]float64{2.49, 4.86, 1.25}

const minPrice = 1e-3

// OpPrices generates the T×I operation-price matrix. The base price of
// cloud i is scale·mean(capacity)/capacity[i], and the slot price is
// Gaussian(base, stdRatio·base) truncated below at a small positive
// floor. The paper's setting is stdRatio = 0.5 (standard deviation half
// the base), which a stdRatio of 0 selects.
func OpPrices(capacity []float64, horizon int, scale, stdRatio float64, rng *rand.Rand) [][]float64 {
	if scale <= 0 {
		scale = 1
	}
	if stdRatio <= 0 {
		stdRatio = 0.5
	}
	meanCap := 0.0
	for _, c := range capacity {
		meanCap += c
	}
	meanCap /= float64(len(capacity))
	base := make([]float64, len(capacity))
	for i, c := range capacity {
		base[i] = scale * meanCap / c
	}
	prices := make([][]float64, horizon)
	for t := range prices {
		row := make([]float64, len(capacity))
		for i, b := range base {
			row[i] = math.Max(minPrice, b+stdRatio*b*rng.NormFloat64())
		}
		prices[t] = row
	}
	return prices
}

// BandwidthPrices assigns each cloud to one of the three ISP clusters
// round-robin and returns the outgoing and incoming unit migration prices.
// The cluster rates are normalized so their mean is scale, then split
// evenly between the two ends of a migration (b_i^out = b_i^in), matching
// the paper's symmetric per-end accounting.
func BandwidthPrices(nClouds int, scale float64, rng *rand.Rand) (out, in []float64) {
	if scale <= 0 {
		scale = 1
	}
	mean := (ISPRates[0] + ISPRates[1] + ISPRates[2]) / 3
	out = make([]float64, nClouds)
	in = make([]float64, nClouds)
	perm := rng.Perm(nClouds) // random cluster assignment, stable ratios
	for k, i := range perm {
		rate := ISPRates[k%3] / mean * scale
		out[i] = rate / 2
		in[i] = rate / 2
	}
	return out, in
}

// ReconfPrices draws static per-cloud reconfiguration prices from a
// Gaussian(mean, std) with the negative tail cut at a small positive
// floor, per the paper's setting.
func ReconfPrices(nClouds int, mean, std float64, rng *rand.Rand) []float64 {
	if mean <= 0 {
		mean = 1
	}
	if std <= 0 {
		std = mean / 2
	}
	prices := make([]float64, nClouds)
	for i := range prices {
		prices[i] = math.Max(minPrice, mean+std*rng.NormFloat64())
	}
	return prices
}
