package model

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomInstanceAndSchedule builds a small random instance plus a random
// feasible-shape schedule for invariant checks.
func randomInstanceAndSchedule(rng *rand.Rand) (*Instance, Schedule) {
	nI := 2 + rng.Intn(3)
	nJ := 1 + rng.Intn(3)
	tt := 2 + rng.Intn(5)
	in := &Instance{
		I: nI, J: nJ, T: tt,
		Capacity:    make([]float64, nI),
		InterDelay:  make([][]float64, nI),
		Workload:    make([]float64, nJ),
		ReconfPrice: make([]float64, nI),
		MigOutPrice: make([]float64, nI),
		MigInPrice:  make([]float64, nI),
		WOp:         0.5 + rng.Float64(),
		WSq:         0.5 + rng.Float64(),
		WRc:         0.5 + rng.Float64(),
		WMg:         0.5 + rng.Float64(),
	}
	for i := 0; i < nI; i++ {
		in.Capacity[i] = 5 + 5*rng.Float64()
		in.ReconfPrice[i] = rng.Float64()
		in.MigOutPrice[i] = rng.Float64()
		in.MigInPrice[i] = rng.Float64()
		in.InterDelay[i] = make([]float64, nI)
	}
	for i := 0; i < nI; i++ {
		for k := i + 1; k < nI; k++ {
			d := rng.Float64()
			in.InterDelay[i][k] = d
			in.InterDelay[k][i] = d
		}
	}
	for j := 0; j < nJ; j++ {
		in.Workload[j] = 1 + float64(rng.Intn(3))
	}
	sched := make(Schedule, tt)
	for t := 0; t < tt; t++ {
		in.OpPrice = append(in.OpPrice, randomRow(nI, rng))
		att := make([]int, nJ)
		acc := make([]float64, nJ)
		for j := range att {
			att[j] = rng.Intn(nI)
			acc[j] = rng.Float64()
		}
		in.Attach = append(in.Attach, att)
		in.AccessDelay = append(in.AccessDelay, acc)
		x := NewAlloc(nI, nJ)
		for k := range x.X {
			x.X[k] = 2 * rng.Float64()
		}
		sched[t] = x
	}
	return in, sched
}

func randomRow(n int, rng *rand.Rand) []float64 {
	row := make([]float64, n)
	for i := range row {
		row[i] = rng.Float64()
	}
	return row
}

// TestWindowDecompositionInvariant: splitting the horizon into two
// windows chained through their boundary allocation must reproduce the
// full-horizon cost exactly — the invariant receding-horizon policies
// (baseline.Lookahead) rely on.
func TestWindowDecompositionInvariant(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(71))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, sched := randomInstanceAndSchedule(rng)
		if err := in.Validate(); err != nil {
			return false
		}
		full, err := in.Evaluate(sched)
		if err != nil {
			return false
		}
		cut := 1 + rng.Intn(in.T-1)
		w1, err := in.Window(0, cut, in.InitialAlloc())
		if err != nil {
			return false
		}
		b1, err := w1.Evaluate(sched[:cut])
		if err != nil {
			return false
		}
		w2, err := in.Window(cut, in.T-cut, sched[cut-1])
		if err != nil {
			return false
		}
		b2, err := w2.Evaluate(sched[cut:])
		if err != nil {
			return false
		}
		sum := in.Total(b1) + in.Total(b2)
		return math.Abs(sum-in.Total(full)) <= 1e-9*(1+math.Abs(in.Total(full)))
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestEvaluateMatchesSlotSums: Evaluate must equal the sum of the
// per-slot static and transition costs it is defined from.
func TestEvaluateMatchesSlotSums(t *testing.T) {
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(72))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, sched := randomInstanceAndSchedule(rng)
		b, err := in.Evaluate(sched)
		if err != nil {
			return false
		}
		var manual Breakdown
		prev := in.InitialAlloc()
		for t := 0; t < in.T; t++ {
			op, sq := in.SlotStatic(t, sched[t])
			rc, mg := in.SlotDynamic(prev, sched[t])
			manual.Add(Breakdown{Op: op, Sq: sq, Rc: rc, Mg: mg})
			prev = sched[t]
		}
		return math.Abs(in.Total(b)-in.Total(manual)) <= 1e-9*(1+math.Abs(in.Total(b)))
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationNeverNegative: both P0 and P1 dynamic costs are
// nonnegative for any pair of allocations.
func TestMigrationNeverNegative(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(73))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in, sched := randomInstanceAndSchedule(rng)
		for t := 1; t < in.T; t++ {
			rc, mg := in.SlotDynamic(sched[t-1], sched[t])
			rc1, mg1 := in.SlotDynamicP1(sched[t-1], sched[t])
			if rc < 0 || mg < 0 || rc1 < 0 || mg1 < 0 {
				return false
			}
			// Identical reconfiguration under both accountings.
			if math.Abs(rc-rc1) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}
