package model

import (
	"math/rand"
	"testing"
)

func TestNearestCloudsSelectsByDelayWithIndexTies(t *testing.T) {
	delay := [][]float64{
		{0, 3, 1, 2},
		{3, 0, 1, 1},
		{1, 1, 0, 5},
		{2, 1, 5, 0},
	}
	near := NearestClouds(delay, 2)
	want := [][]int{
		{0, 2}, // own (0) then delay-1 cloud 2
		{1, 2}, // own (1); clouds 2 and 3 tie at delay 1 — lower index wins
		{0, 2}, // own (2); clouds 0 and 1 tie at delay 1 — lower index wins
		{1, 3}, // own (3) then delay-1 cloud 1
	}
	for a := range want {
		if len(near[a]) != len(want[a]) {
			t.Fatalf("row %d: got %v, want %v", a, near[a], want[a])
		}
		for k := range want[a] {
			if near[a][k] != want[a][k] {
				t.Errorf("row %d: got %v, want %v", a, near[a], want[a])
				break
			}
		}
	}
}

func TestNearestCloudsClampsK(t *testing.T) {
	delay := [][]float64{{0, 1}, {1, 0}}
	for _, k := range []int{0, 1, 5} {
		near := NearestClouds(delay, k)
		wantLen := k
		if wantLen < 1 {
			wantLen = 1
		}
		if wantLen > 2 {
			wantLen = 2
		}
		for a := range near {
			if len(near[a]) != wantLen {
				t.Errorf("k=%d row %d: %d clouds, want %d", k, a, len(near[a]), wantLen)
			}
		}
	}
}

// TestNearestCloudsEdgeCases tables the degenerate shapes of the
// candidate seed: k at or past both ends of [1, I], duplicate-delay
// geometries, and the self-inclusion invariant when zero-delay ties with
// lower indices would otherwise crowd a cloud out of its own row.
func TestNearestCloudsEdgeCases(t *testing.T) {
	tests := []struct {
		name  string
		delay [][]float64
		k     int
		want  [][]int
	}{
		{
			name:  "k beyond I returns every cloud",
			delay: [][]float64{{0, 2}, {2, 0}},
			k:     7,
			want:  [][]int{{0, 1}, {0, 1}},
		},
		{
			name:  "k zero clamps to one",
			delay: [][]float64{{0, 2, 3}, {2, 0, 1}, {3, 1, 0}},
			k:     0,
			want:  [][]int{{0}, {1}, {2}},
		},
		{
			name:  "k negative clamps to one",
			delay: [][]float64{{0, 1}, {1, 0}},
			k:     -4,
			want:  [][]int{{0}, {1}},
		},
		{
			name: "zero-delay ties keep self in the row",
			// Co-located clouds: every pairwise delay is zero, so row 2's
			// top-1 by (delay, index) would be cloud 0 — the invariant
			// displaces it for 2 itself.
			delay: [][]float64{{0, 0, 0}, {0, 0, 0}, {0, 0, 0}},
			k:     1,
			want:  [][]int{{0}, {1}, {2}},
		},
		{
			name: "partial zero tie displaces farthest pick only",
			// Row 2 ties with clouds 0 and 1 at zero; with k=2 the seed
			// keeps the lower-index tie 0 and yields the second slot to 2.
			delay: [][]float64{{0, 5, 0}, {5, 0, 0}, {0, 0, 0}},
			k:     2,
			want:  [][]int{{0, 2}, {1, 2}, {0, 2}},
		},
		{
			name:  "single cloud",
			delay: [][]float64{{0}},
			k:     3,
			want:  [][]int{{0}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := NearestClouds(tt.delay, tt.k)
			for a := range tt.want {
				if len(got[a]) != len(tt.want[a]) {
					t.Fatalf("row %d: got %v, want %v", a, got[a], tt.want[a])
				}
				hasSelf := false
				for k := range tt.want[a] {
					if got[a][k] != tt.want[a][k] {
						t.Errorf("row %d: got %v, want %v", a, got[a], tt.want[a])
						break
					}
					if got[a][k] == a {
						hasSelf = true
					}
				}
				if !hasSelf {
					t.Errorf("row %d = %v does not contain cloud %d itself", a, got[a], a)
				}
			}
		})
	}
}

// TestCandidateBuilderCSRMatchesBitmap cross-checks the CSR emission
// against the membership bitmap on random add patterns, including reuse
// of the destination across Reset cycles and incremental adds between
// Build calls (the expansion-loop usage).
func TestCandidateBuilderCSRMatchesBitmap(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const I, J = 6, 11
	b := NewCandidateBuilder(I, J)
	var cs CandidateSet
	for trial := 0; trial < 50; trial++ {
		b.Reset()
		ref := make(map[[2]int]bool)
		add := func(i, j int) {
			b.Add(i, j)
			ref[[2]int{i, j}] = true
		}
		for n := rng.Intn(25); n > 0; n-- {
			add(rng.Intn(I), rng.Intn(J))
		}
		check := func() {
			t.Helper()
			b.Build(&cs)
			if cs.NNZ() != len(ref) {
				t.Fatalf("trial %d: NNZ %d, want %d", trial, cs.NNZ(), len(ref))
			}
			if cs.RowPtr[0] != 0 || cs.RowPtr[I] != cs.NNZ() {
				t.Fatalf("trial %d: RowPtr ends %d..%d, want 0..%d",
					trial, cs.RowPtr[0], cs.RowPtr[I], cs.NNZ())
			}
			for i := 0; i < I; i++ {
				cols := cs.Cols[cs.RowPtr[i]:cs.RowPtr[i+1]]
				for k, j := range cols {
					if k > 0 && cols[k-1] >= j {
						t.Fatalf("trial %d: row %d columns not strictly ascending: %v", trial, i, cols)
					}
					if !ref[[2]int{i, j}] {
						t.Fatalf("trial %d: CSR has (%d,%d) not in reference", trial, i, j)
					}
					if !b.Contains(i, j) {
						t.Fatalf("trial %d: Contains(%d,%d) false after Add", trial, i, j)
					}
				}
			}
		}
		check()
		// Incremental adds after a Build must accumulate (expansion loop).
		for n := rng.Intn(10); n > 0; n-- {
			add(rng.Intn(I), rng.Intn(J))
		}
		check()
	}
}

func TestCandidateBuilderAddSupportAndUserSet(t *testing.T) {
	const I, J = 3, 4
	b := NewCandidateBuilder(I, J)
	x := make([]float64, I*J)
	x[1*J+2] = 0.5
	x[2*J+0] = 1e-12 // any nonzero counts: carryover must stay exact
	b.AddSupport(x)
	b.AddUserSet(3, []int{0, 2})
	var cs CandidateSet
	b.Build(&cs)
	want := map[[2]int]bool{{1, 2}: true, {2, 0}: true, {0, 3}: true, {2, 3}: true}
	if cs.NNZ() != len(want) {
		t.Fatalf("NNZ %d, want %d", cs.NNZ(), len(want))
	}
	for i := 0; i < I; i++ {
		for _, j := range cs.Cols[cs.RowPtr[i]:cs.RowPtr[i+1]] {
			if !want[[2]int{i, j}] {
				t.Errorf("unexpected candidate (%d,%d)", i, j)
			}
		}
	}
}
