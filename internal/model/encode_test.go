package model

import (
	"bytes"
	"strings"
	"testing"
)

func TestInstanceRoundTrip(t *testing.T) {
	in := ToyExampleA()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.I != in.I || got.J != in.J || got.T != in.T {
		t.Fatalf("shape %d/%d/%d, want %d/%d/%d", got.I, got.J, got.T, in.I, in.J, in.T)
	}
	if got.OpPrice[1][0] != 2.1 {
		t.Errorf("OpPrice lost: %v", got.OpPrice)
	}
	if got.Init == nil || got.Init.At(ToyCloudA, 0) != 1 {
		t.Error("Init allocation lost in round trip")
	}
	// Costs must be identical through the round trip.
	sched := ToyStay(in, ToyCloudA)
	b1, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total(b1) != got.Total(b2) {
		t.Errorf("cost changed through round trip: %g != %g", in.Total(b1), got.Total(b2))
	}
}

func TestWriteInstanceRejectsInvalid(t *testing.T) {
	in := ToyExampleA()
	in.Workload[0] = -1
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err == nil {
		t.Fatal("WriteInstance accepted an invalid instance")
	}
}

func TestReadInstanceRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"not json",
		`{"I": 1}`,                     // invalid instance
		`{"Bogus": 1, "I": 1, "J": 1}`, // unknown field
	} {
		if _, err := ReadInstance(strings.NewReader(in)); err == nil {
			t.Errorf("ReadInstance accepted %q", in)
		}
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	in := ToyExampleA()
	s := ToyFollow(in)
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSchedule(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(s) {
		t.Fatalf("slots = %d, want %d", len(got), len(s))
	}
	for t2 := range s {
		for k := range s[t2].X {
			if got[t2].X[k] != s[t2].X[k] {
				t.Fatalf("slot %d differs", t2)
			}
		}
	}
}

func TestScheduleEncodeErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, nil); err == nil {
		t.Error("WriteSchedule accepted empty schedule")
	}
	ragged := Schedule{NewAlloc(2, 2), NewAlloc(3, 2)}
	if err := WriteSchedule(&buf, ragged); err == nil {
		t.Error("WriteSchedule accepted ragged schedule")
	}
	for _, in := range []string{
		`{"I":0,"J":2,"Slots":[[1,2]]}`,
		`{"I":2,"J":2,"Slots":[[1,2,3]]}`,
		`{"I":2,"J":2,"Slots":[]}`,
	} {
		if _, err := ReadSchedule(strings.NewReader(in)); err == nil {
			t.Errorf("ReadSchedule accepted %q", in)
		}
	}
}
