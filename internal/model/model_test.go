package model

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// smallInstance builds a minimal valid instance for mutation tests.
func smallInstance() *Instance {
	return &Instance{
		I: 2, J: 2, T: 2,
		Capacity:    []float64{3, 3},
		InterDelay:  [][]float64{{0, 1}, {1, 0}},
		Workload:    []float64{1, 2},
		OpPrice:     [][]float64{{1, 2}, {2, 1}},
		ReconfPrice: []float64{0.5, 0.5},
		MigOutPrice: []float64{0.1, 0.2},
		MigInPrice:  []float64{0.3, 0.4},
		Attach:      [][]int{{0, 1}, {1, 1}},
		AccessDelay: [][]float64{{0.1, 0.2}, {0.3, 0.4}},
		WOp:         1, WSq: 1, WRc: 1, WMg: 1,
	}
}

func TestValidateAcceptsGoodInstance(t *testing.T) {
	if err := smallInstance().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, toy := range []*Instance{ToyExampleA(), ToyExampleB()} {
		if err := toy.Validate(); err != nil {
			t.Fatalf("toy Validate: %v", err)
		}
	}
}

func TestValidateRejectsBadInstances(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Instance)
		want   string
	}{
		{"zero I", func(in *Instance) { in.I = 0 }, "dimensions"},
		{"negative weight", func(in *Instance) { in.WMg = -1 }, "weights"},
		{"capacity len", func(in *Instance) { in.Capacity = in.Capacity[:1] }, "Capacity"},
		{"capacity zero", func(in *Instance) { in.Capacity[0] = 0 }, "Capacity[0]"},
		{"delay diag", func(in *Instance) { in.InterDelay[1][1] = 2 }, "diagonal"},
		{"delay negative", func(in *Instance) { in.InterDelay[0][1] = -1 }, "negative"},
		{"workload zero", func(in *Instance) { in.Workload[1] = 0 }, "Workload"},
		{"reconf len", func(in *Instance) { in.ReconfPrice = nil }, "ReconfPrice"},
		{"mig negative", func(in *Instance) { in.MigInPrice[0] = -0.1 }, "MigInPrice"},
		{"op price rows", func(in *Instance) { in.OpPrice = in.OpPrice[:1] }, "time-major"},
		{"op price negative", func(in *Instance) { in.OpPrice[1][0] = -1 }, "OpPrice"},
		{"attach range", func(in *Instance) { in.Attach[0][0] = 7 }, "out of"},
		{"access negative", func(in *Instance) { in.AccessDelay[1][1] = -2 }, "AccessDelay"},
		{"capacity below workload", func(in *Instance) {
			in.Capacity = []float64{1, 1}
		}, "total capacity"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := smallInstance()
			tt.mutate(in)
			err := in.Validate()
			if err == nil {
				t.Fatal("Validate accepted bad instance")
			}
			if !errors.Is(err, ErrInvalidInstance) {
				t.Errorf("error %v does not wrap ErrInvalidInstance", err)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not mention %q", err, tt.want)
			}
		})
	}
}

func TestAllocAccessors(t *testing.T) {
	a := NewAlloc(2, 3)
	a.Set(1, 2, 5)
	a.Set(0, 0, 1)
	if a.At(1, 2) != 5 || a.At(0, 0) != 1 || a.At(0, 1) != 0 {
		t.Fatalf("accessors broken: %v", a.X)
	}
	ct := a.CloudTotals()
	if ct[0] != 1 || ct[1] != 5 {
		t.Errorf("CloudTotals = %v, want [1 5]", ct)
	}
	ut := a.UserTotals()
	if ut[0] != 1 || ut[1] != 0 || ut[2] != 5 {
		t.Errorf("UserTotals = %v, want [1 0 5]", ut)
	}
	c := a.Clone()
	c.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestFig1ExampleACosts(t *testing.T) {
	in := ToyExampleA()
	// Greedy trajectory: follow the user A -> B -> A. Paper: 11.5.
	follow, err := in.Evaluate(ToyFollow(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Total(follow); math.Abs(got-11.5) > 1e-9 {
		t.Errorf("follow-user total = %g, want 11.5", got)
	}
	// Optimal trajectory: stay at A. Paper: 9.6.
	stay, err := in.Evaluate(ToyStay(in, ToyCloudA))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Total(stay); math.Abs(got-9.6) > 1e-9 {
		t.Errorf("stay-at-A total = %g, want 9.6", got)
	}
}

func TestFig1ExampleBCosts(t *testing.T) {
	in := ToyExampleB()
	// Greedy trajectory: stay at A. Paper: 11.3.
	stay, err := in.Evaluate(ToyStay(in, ToyCloudA))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Total(stay); math.Abs(got-11.3) > 1e-9 {
		t.Errorf("stay-at-A total = %g, want 11.3", got)
	}
	// Optimal trajectory: migrate to B in slot 2. Paper: 9.5.
	mig, err := in.Evaluate(ToyMigrateOnce(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Total(mig); math.Abs(got-9.5) > 1e-9 {
		t.Errorf("migrate-once total = %g, want 9.5", got)
	}
}

func TestSlotDynamicDirections(t *testing.T) {
	in := smallInstance()
	prev := NewAlloc(2, 2)
	prev.Set(0, 0, 2)
	cur := NewAlloc(2, 2)
	cur.Set(1, 0, 2) // user 0 moved entirely from cloud 0 to cloud 1
	rc, mg := in.SlotDynamic(prev, cur)
	// Reconfiguration only at cloud 1 (increase of 2): 0.5*2 = 1.
	if math.Abs(rc-1) > 1e-12 {
		t.Errorf("rc = %g, want 1", rc)
	}
	// Migration: out of cloud 0 (2 units * 0.1) + into cloud 1 (2 * 0.4).
	if want := 2*0.1 + 2*0.4; math.Abs(mg-want) > 1e-12 {
		t.Errorf("mg = %g, want %g", mg, want)
	}
	// P1 variant: only incoming at b = out+in of cloud 1: 2*(0.2+0.4).
	_, mgP1 := in.SlotDynamicP1(prev, cur)
	if want := 2 * 0.6; math.Abs(mgP1-want) > 1e-12 {
		t.Errorf("mgP1 = %g, want %g", mgP1, want)
	}
}

func TestEvaluateLengthMismatch(t *testing.T) {
	in := smallInstance()
	if _, err := in.Evaluate(make(Schedule, 1)); err == nil {
		t.Error("Evaluate accepted short schedule")
	}
	if _, err := in.EvaluateP1(make(Schedule, 3)); err == nil {
		t.Error("EvaluateP1 accepted long schedule")
	}
}

func TestCheckFeasible(t *testing.T) {
	in := smallInstance()
	good := make(Schedule, in.T)
	for t2 := range good {
		x := NewAlloc(in.I, in.J)
		x.Set(0, 0, 1) // user 0 demand 1
		x.Set(1, 1, 2) // user 1 demand 2
		good[t2] = x
	}
	if err := in.CheckFeasible(good, 1e-9); err != nil {
		t.Fatalf("CheckFeasible rejected a feasible schedule: %v", err)
	}

	under := make(Schedule, in.T)
	for t2 := range under {
		x := NewAlloc(in.I, in.J)
		x.Set(0, 0, 0.5)
		x.Set(1, 1, 2)
		under[t2] = x
	}
	if err := in.CheckFeasible(under, 1e-9); err == nil {
		t.Error("CheckFeasible accepted under-served demand")
	}

	over := make(Schedule, in.T)
	for t2 := range over {
		x := NewAlloc(in.I, in.J)
		x.Set(0, 0, 1)
		x.Set(0, 1, 2.5) // cloud 0 load 3.5 > capacity 3
		over[t2] = x
	}
	if err := in.CheckFeasible(over, 1e-9); err == nil {
		t.Error("CheckFeasible accepted over-capacity cloud")
	}

	neg := make(Schedule, in.T)
	for t2 := range neg {
		x := NewAlloc(in.I, in.J)
		x.Set(0, 0, 1.5)
		x.Set(1, 0, -0.5)
		x.Set(1, 1, 2)
		neg[t2] = x
	}
	if err := in.CheckFeasible(neg, 1e-9); err == nil {
		t.Error("CheckFeasible accepted negative allocation")
	}
}

func TestStaticCoeffMatchesSlotStatic(t *testing.T) {
	// For any allocation x, Σ coeff·x must equal WOp·op + WSq·(sq − access
	// constant), the x-dependent part of the weighted static cost.
	in := smallInstance()
	in.WOp, in.WSq = 2, 3
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		x := NewAlloc(in.I, in.J)
		for k := range x.X {
			x.X[k] = rng.Float64()
		}
		for t2 := 0; t2 < in.T; t2++ {
			coeff := in.StaticCoeff(t2)
			viaCoeff := 0.0
			for k, c := range coeff {
				viaCoeff += c * x.X[k]
			}
			op, sq := in.SlotStatic(t2, x)
			accessConst := 0.0
			for j := 0; j < in.J; j++ {
				accessConst += in.AccessDelay[t2][j]
			}
			direct := in.WOp*op + in.WSq*(sq-accessConst)
			if math.Abs(viaCoeff-direct) > 1e-9 {
				t.Fatalf("slot %d: coeff path %g != direct %g", t2, viaCoeff, direct)
			}
		}
	}
}

// TestLemma1TransformationBound property-tests Lemma 1: for any schedule,
// P1 ≤ P0 + σ with σ = Σ_i b_i^out·C_i (comparing only the migration
// parts, as the other cost components are identical by construction).
func TestLemma1TransformationBound(t *testing.T) {
	cfg := &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(2))}
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := smallInstance()
		// Randomize prices so the bound is exercised broadly.
		for i := 0; i < in.I; i++ {
			in.MigOutPrice[i] = rng.Float64()
			in.MigInPrice[i] = rng.Float64()
		}
		tt := 1 + rng.Intn(6)
		in.T = tt
		in.OpPrice = in.OpPrice[:0]
		in.Attach = in.Attach[:0]
		in.AccessDelay = in.AccessDelay[:0]
		sched := make(Schedule, tt)
		for t2 := 0; t2 < tt; t2++ {
			in.OpPrice = append(in.OpPrice, []float64{rng.Float64(), rng.Float64()})
			in.Attach = append(in.Attach, []int{rng.Intn(2), rng.Intn(2)})
			in.AccessDelay = append(in.AccessDelay, []float64{rng.Float64(), rng.Float64()})
			x := NewAlloc(in.I, in.J)
			for k := range x.X {
				// Any nonnegative allocation within capacity: the lemma's
				// proof needs only |Σz_in − Σz_out| ≤ C_i, which holds
				// whenever x stays within capacity.
				x.X[k] = 1.5 * rng.Float64()
			}
			sched[t2] = x
		}
		p0, err := in.Evaluate(sched)
		if err != nil {
			return false
		}
		p1, err := in.EvaluateP1(sched)
		if err != nil {
			return false
		}
		return in.Total(p1) <= in.Total(p0)+in.Sigma()+1e-9
	}
	if err := quick.Check(property, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInitialAllocDefaultsToZero(t *testing.T) {
	in := smallInstance()
	init := in.InitialAlloc()
	for _, v := range init.X {
		if v != 0 {
			t.Fatal("nil Init must yield the zero allocation")
		}
	}
	// And with Init set, the first slot's dynamic cost changes.
	sched := make(Schedule, in.T)
	for t2 := range sched {
		x := NewAlloc(in.I, in.J)
		x.Set(0, 0, 1)
		x.Set(1, 1, 2)
		sched[t2] = x
	}
	zeroInit, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	warm := sched[0].Clone()
	in.Init = &warm
	warmInit, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if in.Total(warmInit) >= in.Total(zeroInit) {
		t.Errorf("warm init total %g should be below zero-init total %g",
			in.Total(warmInit), in.Total(zeroInit))
	}
}

func TestTotalAppliesWeights(t *testing.T) {
	in := smallInstance()
	in.WOp, in.WSq, in.WRc, in.WMg = 2, 3, 5, 7
	b := Breakdown{Op: 1, Sq: 10, Rc: 100, Mg: 1000}
	if got, want := in.Total(b), 2.0+30+500+7000; got != want {
		t.Errorf("Total = %g, want %g", got, want)
	}
	if b.Static() != 11 || b.Dynamic() != 1100 {
		t.Errorf("Static/Dynamic = %g/%g, want 11/1100", b.Static(), b.Dynamic())
	}
}
