package model

// This file holds the two-cloud, three-slot instances of the paper's
// Figure 1. They are used by unit tests to pin the cost accounting and the
// online-greedy / offline-optimal behaviour to the paper's literal numbers
// (11.5 vs 9.6 for example (a), 11.3 vs 9.5 for example (b)), and by the
// quickstart example as a minimal demonstration.

// Clouds of the toy examples.
const (
	ToyCloudA = 0
	ToyCloudB = 1
)

// toyBase builds the shared structure of both Fig-1 examples: two clouds
// with inter-cloud delay 1, one unit-workload user with access delay 1.5,
// reconfiguration price 1, and total migration price 1 (0.5 at each end).
// The workload starts at cloud A before the horizon, matching the figure's
// accounting which charges no dynamic cost in the first slot.
func toyBase(attach []int, opPriceA, opPriceB []float64) *Instance {
	tt := len(attach)
	in := &Instance{
		I:           2,
		J:           1,
		T:           tt,
		Capacity:    []float64{2, 2},
		InterDelay:  [][]float64{{0, 1}, {1, 0}},
		Workload:    []float64{1},
		ReconfPrice: []float64{1, 1},
		MigOutPrice: []float64{0.5, 0.5},
		MigInPrice:  []float64{0.5, 0.5},
		WOp:         1, WSq: 1, WRc: 1, WMg: 1,
	}
	for t := 0; t < tt; t++ {
		in.OpPrice = append(in.OpPrice, []float64{opPriceA[t], opPriceB[t]})
		in.Attach = append(in.Attach, []int{attach[t]})
		in.AccessDelay = append(in.AccessDelay, []float64{1.5})
	}
	init := NewAlloc(2, 1)
	init.Set(ToyCloudA, 0, 1)
	in.Init = &init
	return in
}

// ToyExampleA is Figure 1(a): the user visits A, B, A while the operation
// price spikes to 2.1 at whichever cloud is remote from the user (A in
// slot 2, B in slot 3). The greedy policy chases the user both ways
// (total cost 11.5); the optimum keeps the workload at A (total cost 9.6).
func ToyExampleA() *Instance {
	return toyBase([]int{ToyCloudA, ToyCloudB, ToyCloudA},
		[]float64{1, 2.1, 1}, []float64{1, 1, 2.1})
}

// ToyExampleB is Figure 1(b): the user moves to B and stays while cloud
// A's price rises only to 1.9. The greedy policy is too conservative and
// never migrates (total cost 11.3); the optimum migrates in slot 2 (total
// cost 9.5).
func ToyExampleB() *Instance {
	return toyBase([]int{ToyCloudA, ToyCloudB, ToyCloudB},
		[]float64{1, 1.9, 1.9}, []float64{1, 1, 1})
}

// ToyStay returns the schedule keeping the single unit of workload on the
// given cloud in every slot of a toy instance.
func ToyStay(in *Instance, cloud int) Schedule {
	s := make(Schedule, in.T)
	for t := range s {
		x := NewAlloc(in.I, in.J)
		x.Set(cloud, 0, 1)
		s[t] = x
	}
	return s
}

// ToyFollow returns the schedule that places the workload on the cloud the
// user is attached to in every slot.
func ToyFollow(in *Instance) Schedule {
	s := make(Schedule, in.T)
	for t := range s {
		x := NewAlloc(in.I, in.J)
		x.Set(in.Attach[t][0], 0, 1)
		s[t] = x
	}
	return s
}

// ToyMigrateOnce returns the schedule that keeps the workload at A for the
// first slot and at B afterwards (the optimum of example (b)).
func ToyMigrateOnce(in *Instance) Schedule {
	s := make(Schedule, in.T)
	for t := range s {
		x := NewAlloc(in.I, in.J)
		if t == 0 {
			x.Set(ToyCloudA, 0, 1)
		} else {
			x.Set(ToyCloudB, 0, 1)
		}
		s[t] = x
	}
	return s
}
