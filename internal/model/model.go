// Package model defines the edge-cloud system model of the paper: the
// time-slotted instance data (clouds, users, prices, mobility), the
// allocation variables x_{i,j,t}, and the four cost components
// (operation, service quality, reconfiguration, migration) making up the
// objectives P0 and P1 of §II.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Instance is one complete problem instance over a horizon of T slots.
// All slices are indexed as documented; time-major fields have length T.
type Instance struct {
	I int // number of edge clouds
	J int // number of users
	T int // number of time slots

	// Capacity is C_i, the resource capacity of each cloud (len I).
	Capacity []float64
	// InterDelay is d(i,i'), the inter-cloud network delay (I×I, zero
	// diagonal, symmetric in all our scenarios although not required).
	InterDelay [][]float64
	// Workload is λ_j, each user's total workload (len J, all > 0).
	Workload []float64

	// OpPrice is a_{i,t}: OpPrice[t][i] (T×I), arbitrary over time.
	OpPrice [][]float64
	// ReconfPrice is c_i, the unit cost of increasing a cloud's total
	// allocation (len I).
	ReconfPrice []float64
	// MigOutPrice and MigInPrice are b_i^out and b_i^in, the unit
	// migration costs at the outgoing and incoming end (len I each).
	MigOutPrice []float64
	MigInPrice  []float64

	// Attach is l_{j,t}: Attach[t][j] is the cloud the user connects to
	// (T×J, values in [0, I)).
	Attach [][]int
	// AccessDelay is d(j, l_{j,t}): AccessDelay[t][j] (T×J), the constant
	// part of the service-quality cost.
	AccessDelay [][]float64

	// Weights of the four costs in the total objective. The paper's μ
	// (Fig 4) is the common dynamic weight WRc = WMg with WOp = WSq = 1.
	WOp, WSq, WRc, WMg float64

	// Init is the allocation in force before the first slot (the paper's
	// x_{i,j,0}). Nil means the zero allocation of the formal model, in
	// which case the first slot pays full reconfiguration and incoming
	// migration for its placement. The Fig-1 examples set Init to the
	// natural starting placement so that their literal cost numbers are
	// reproduced.
	Init *Alloc
}

// InitialAlloc returns a copy of the pre-horizon allocation x_{·,·,0}.
func (in *Instance) InitialAlloc() Alloc {
	if in.Init == nil {
		return NewAlloc(in.I, in.J)
	}
	return in.Init.Clone()
}

// ErrInvalidInstance reports malformed instance data.
var ErrInvalidInstance = errors.New("model: invalid instance")

// Validate checks dimensions and value ranges. Algorithms assume a
// validated instance.
func (in *Instance) Validate() error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrInvalidInstance, fmt.Sprintf(format, args...))
	}
	if in.I <= 0 || in.J <= 0 || in.T <= 0 {
		return fail("dimensions I=%d J=%d T=%d must be positive", in.I, in.J, in.T)
	}
	if in.WOp < 0 || in.WSq < 0 || in.WRc < 0 || in.WMg < 0 {
		return fail("weights must be nonnegative")
	}
	if len(in.Capacity) != in.I {
		return fail("len(Capacity)=%d, want I=%d", len(in.Capacity), in.I)
	}
	for i, c := range in.Capacity {
		if c <= 0 {
			return fail("Capacity[%d]=%g must be positive", i, c)
		}
	}
	if len(in.InterDelay) != in.I {
		return fail("len(InterDelay)=%d, want I=%d", len(in.InterDelay), in.I)
	}
	for i, row := range in.InterDelay {
		if len(row) != in.I {
			return fail("len(InterDelay[%d])=%d, want I=%d", i, len(row), in.I)
		}
		if row[i] != 0 {
			return fail("InterDelay[%d][%d]=%g, want 0 diagonal", i, i, row[i])
		}
		for k, d := range row {
			if d < 0 {
				return fail("InterDelay[%d][%d]=%g negative", i, k, d)
			}
		}
	}
	if len(in.Workload) != in.J {
		return fail("len(Workload)=%d, want J=%d", len(in.Workload), in.J)
	}
	for j, l := range in.Workload {
		if l <= 0 {
			return fail("Workload[%d]=%g must be positive", j, l)
		}
	}
	for name, s := range map[string][]float64{
		"ReconfPrice": in.ReconfPrice, "MigOutPrice": in.MigOutPrice, "MigInPrice": in.MigInPrice,
	} {
		if len(s) != in.I {
			return fail("len(%s)=%d, want I=%d", name, len(s), in.I)
		}
		for i, v := range s {
			if v < 0 {
				return fail("%s[%d]=%g negative", name, i, v)
			}
		}
	}
	if len(in.OpPrice) != in.T || len(in.Attach) != in.T || len(in.AccessDelay) != in.T {
		return fail("time-major lengths OpPrice=%d Attach=%d AccessDelay=%d, want T=%d",
			len(in.OpPrice), len(in.Attach), len(in.AccessDelay), in.T)
	}
	for t := 0; t < in.T; t++ {
		if len(in.OpPrice[t]) != in.I {
			return fail("len(OpPrice[%d])=%d, want I=%d", t, len(in.OpPrice[t]), in.I)
		}
		for i, a := range in.OpPrice[t] {
			if a < 0 {
				return fail("OpPrice[%d][%d]=%g negative", t, i, a)
			}
		}
		if len(in.Attach[t]) != in.J || len(in.AccessDelay[t]) != in.J {
			return fail("slot %d: len(Attach)=%d len(AccessDelay)=%d, want J=%d",
				t, len(in.Attach[t]), len(in.AccessDelay[t]), in.J)
		}
		for j, l := range in.Attach[t] {
			if l < 0 || l >= in.I {
				return fail("Attach[%d][%d]=%d out of [0,%d)", t, j, l, in.I)
			}
			if in.AccessDelay[t][j] < 0 {
				return fail("AccessDelay[%d][%d]=%g negative", t, j, in.AccessDelay[t][j])
			}
		}
	}
	// Reject non-finite numeric data anywhere: NaN and ±Inf slip through
	// the sign checks above (every comparison against NaN is false), yet
	// they poison every downstream solve and cannot be JSON-encoded.
	for _, f := range []struct {
		name string
		vals []float64
	}{
		{"Weights", []float64{in.WOp, in.WSq, in.WRc, in.WMg}},
		{"Capacity", in.Capacity},
		{"Workload", in.Workload},
		{"ReconfPrice", in.ReconfPrice},
		{"MigOutPrice", in.MigOutPrice},
		{"MigInPrice", in.MigInPrice},
	} {
		if k := firstNonFinite(f.vals); k >= 0 {
			return fail("%s[%d]=%g not finite", f.name, k, f.vals[k])
		}
	}
	for i, row := range in.InterDelay {
		if k := firstNonFinite(row); k >= 0 {
			return fail("InterDelay[%d][%d]=%g not finite", i, k, row[k])
		}
	}
	for t := 0; t < in.T; t++ {
		if k := firstNonFinite(in.OpPrice[t]); k >= 0 {
			return fail("OpPrice[%d][%d]=%g not finite", t, k, in.OpPrice[t][k])
		}
		if k := firstNonFinite(in.AccessDelay[t]); k >= 0 {
			return fail("AccessDelay[%d][%d]=%g not finite", t, k, in.AccessDelay[t][k])
		}
	}
	// The pre-horizon allocation, when present, must have the instance's
	// shape and be a valid (nonnegative, finite) allocation.
	if in.Init != nil {
		if in.Init.I != in.I || in.Init.J != in.J || len(in.Init.X) != in.I*in.J {
			return fail("Init allocation is %dx%d (%d entries), want %dx%d",
				in.Init.I, in.Init.J, len(in.Init.X), in.I, in.J)
		}
		for k, v := range in.Init.X {
			if !(v >= 0) || math.IsInf(v, 0) {
				return fail("Init.X[%d]=%g must be finite and nonnegative", k, v)
			}
		}
	}
	// Capacity must admit a feasible allocation in every slot.
	total := 0.0
	for _, l := range in.Workload {
		total += l
	}
	capSum := 0.0
	for _, c := range in.Capacity {
		capSum += c
	}
	if capSum < total {
		return fail("total capacity %g below total workload %g", capSum, total)
	}
	return nil
}

// firstNonFinite returns the index of the first NaN or ±Inf entry, or -1.
func firstNonFinite(vals []float64) int {
	for k, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return k
		}
	}
	return -1
}

// TotalWorkload returns Λ = Σ_j λ_j.
func (in *Instance) TotalWorkload() float64 {
	s := 0.0
	for _, l := range in.Workload {
		s += l
	}
	return s
}

// Sigma returns σ = Σ_i b_i^out·C_i, the additive constant of the
// gap-preserving transformation P0 → P1 (Lemma 1).
func (in *Instance) Sigma() float64 {
	s := 0.0
	for i := range in.Capacity {
		s += in.MigOutPrice[i] * in.Capacity[i]
	}
	return s
}

// Alloc is one slot's allocation matrix x[i][j], stored row-major.
type Alloc struct {
	I, J int
	X    []float64 // len I*J, X[i*J+j] = x_{i,j}
}

// NewAlloc returns a zero allocation of the given shape.
func NewAlloc(i, j int) Alloc {
	return Alloc{I: i, J: j, X: make([]float64, i*j)}
}

// At returns x_{i,j}.
func (a Alloc) At(i, j int) float64 { return a.X[i*a.J+j] }

// Set assigns x_{i,j}.
func (a Alloc) Set(i, j int, v float64) { a.X[i*a.J+j] = v }

// Clone returns a deep copy.
func (a Alloc) Clone() Alloc {
	return Alloc{I: a.I, J: a.J, X: append([]float64(nil), a.X...)}
}

// CloudTotals returns x_i = Σ_j x_{i,j} for every cloud.
func (a Alloc) CloudTotals() []float64 {
	tot := make([]float64, a.I)
	a.CloudTotalsInto(tot)
	return tot
}

// CloudTotalsInto writes Σ_j x_{i,j} for every cloud into dst, which must
// have length I. It exists so per-slot hot paths can reuse one buffer.
func (a Alloc) CloudTotalsInto(dst []float64) {
	for i := 0; i < a.I; i++ {
		s := 0.0
		row := a.X[i*a.J : (i+1)*a.J]
		for _, v := range row {
			s += v
		}
		dst[i] = s
	}
}

// UserTotals returns Σ_i x_{i,j} for every user.
func (a Alloc) UserTotals() []float64 {
	tot := make([]float64, a.J)
	a.UserTotalsInto(tot)
	return tot
}

// UserTotalsInto writes Σ_i x_{i,j} for every user into dst, which must
// have length J. It exists so per-slot hot paths can reuse one buffer.
func (a Alloc) UserTotalsInto(dst []float64) {
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < a.I; i++ {
		row := a.X[i*a.J : (i+1)*a.J]
		for j, v := range row {
			dst[j] += v
		}
	}
}

// Schedule is an allocation for every slot of the horizon.
type Schedule []Alloc

// Breakdown is the unweighted value of each cost component.
type Breakdown struct {
	Op, Sq, Rc, Mg float64
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Op += o.Op
	b.Sq += o.Sq
	b.Rc += o.Rc
	b.Mg += o.Mg
}

// Static returns the static part Op + Sq (unweighted).
func (b Breakdown) Static() float64 { return b.Op + b.Sq }

// Dynamic returns the dynamic part Rc + Mg (unweighted).
func (b Breakdown) Dynamic() float64 { return b.Rc + b.Mg }

// Total applies the instance weights: WOp·Op + WSq·Sq + WRc·Rc + WMg·Mg.
func (in *Instance) Total(b Breakdown) float64 {
	return in.WOp*b.Op + in.WSq*b.Sq + in.WRc*b.Rc + in.WMg*b.Mg
}

// hinge is (x)⁺.
func hinge(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}

// SlotStatic returns the unweighted operation and service-quality costs of
// allocation x in slot t.
func (in *Instance) SlotStatic(t int, x Alloc) (op, sq float64) {
	for j := 0; j < in.J; j++ {
		sq += in.AccessDelay[t][j]
	}
	for i := 0; i < in.I; i++ {
		a := in.OpPrice[t][i]
		row := x.X[i*in.J : (i+1)*in.J]
		for j, v := range row {
			op += a * v
			sq += v * in.InterDelay[in.Attach[t][j]][i] / in.Workload[j]
		}
	}
	return op, sq
}

// SlotDynamic returns the unweighted reconfiguration and migration costs
// (P0 form, both directions) of the transition prev → cur. prev may be the
// zero allocation for the first slot (x_{i,j,0} = 0 per the paper).
func (in *Instance) SlotDynamic(prev, cur Alloc) (rc, mg float64) {
	for i := 0; i < in.I; i++ {
		pRow := prev.X[i*in.J : (i+1)*in.J]
		cRow := cur.X[i*in.J : (i+1)*in.J]
		var pTot, cTot, zin, zout float64
		for j := range cRow {
			pTot += pRow[j]
			cTot += cRow[j]
			zin += hinge(cRow[j] - pRow[j])
			zout += hinge(pRow[j] - cRow[j])
		}
		rc += in.ReconfPrice[i] * hinge(cTot-pTot)
		mg += in.MigOutPrice[i]*zout + in.MigInPrice[i]*zin
	}
	return rc, mg
}

// SlotDynamicP1 returns the reconfiguration cost and the one-directional
// migration cost of the transformed problem P1, where migration is charged
// only on incoming workload at price b_i = b_i^out + b_i^in.
func (in *Instance) SlotDynamicP1(prev, cur Alloc) (rc, mg float64) {
	for i := 0; i < in.I; i++ {
		pRow := prev.X[i*in.J : (i+1)*in.J]
		cRow := cur.X[i*in.J : (i+1)*in.J]
		var pTot, cTot, zin float64
		for j := range cRow {
			pTot += pRow[j]
			cTot += cRow[j]
			zin += hinge(cRow[j] - pRow[j])
		}
		rc += in.ReconfPrice[i] * hinge(cTot-pTot)
		mg += (in.MigOutPrice[i] + in.MigInPrice[i]) * zin
	}
	return rc, mg
}

// Evaluate computes the unweighted cost breakdown of a full schedule under
// the original objective P0.
func (in *Instance) Evaluate(s Schedule) (Breakdown, error) {
	if len(s) != in.T {
		return Breakdown{}, fmt.Errorf("%w: schedule has %d slots, want %d",
			ErrInvalidInstance, len(s), in.T)
	}
	var b Breakdown
	prev := in.InitialAlloc()
	for t := 0; t < in.T; t++ {
		op, sq := in.SlotStatic(t, s[t])
		rc, mg := in.SlotDynamic(prev, s[t])
		b.Add(Breakdown{Op: op, Sq: sq, Rc: rc, Mg: mg})
		prev = s[t]
	}
	return b, nil
}

// EvaluateP1 computes the cost breakdown under the transformed objective
// P1 (Mg holds the one-directional migration cost).
func (in *Instance) EvaluateP1(s Schedule) (Breakdown, error) {
	if len(s) != in.T {
		return Breakdown{}, fmt.Errorf("%w: schedule has %d slots, want %d",
			ErrInvalidInstance, len(s), in.T)
	}
	var b Breakdown
	prev := in.InitialAlloc()
	for t := 0; t < in.T; t++ {
		op, sq := in.SlotStatic(t, s[t])
		rc, mg := in.SlotDynamicP1(prev, s[t])
		b.Add(Breakdown{Op: op, Sq: sq, Rc: rc, Mg: mg})
		prev = s[t]
	}
	return b, nil
}

// CheckFeasible verifies demand, capacity, and nonnegativity of a schedule
// within tolerance tol (absolute, scaled by the constraint magnitude).
func (in *Instance) CheckFeasible(s Schedule, tol float64) error {
	if len(s) != in.T {
		return fmt.Errorf("%w: schedule has %d slots, want %d", ErrInvalidInstance, len(s), in.T)
	}
	for t, x := range s {
		if x.I != in.I || x.J != in.J || len(x.X) != in.I*in.J {
			return fmt.Errorf("%w: slot %d allocation has shape %dx%d, want %dx%d",
				ErrInvalidInstance, t, x.I, x.J, in.I, in.J)
		}
		for k, v := range x.X {
			if v < -tol || math.IsNaN(v) {
				return fmt.Errorf("slot %d: x[%d][%d] = %g negative", t, k/in.J, k%in.J, v)
			}
		}
		for j, served := range x.UserTotals() {
			if served < in.Workload[j]-tol*(1+in.Workload[j]) {
				return fmt.Errorf("slot %d: user %d served %g < demand %g",
					t, j, served, in.Workload[j])
			}
		}
		for i, used := range x.CloudTotals() {
			if used > in.Capacity[i]+tol*(1+in.Capacity[i]) {
				return fmt.Errorf("slot %d: cloud %d load %g > capacity %g",
					t, i, used, in.Capacity[i])
			}
		}
	}
	return nil
}

// Window returns a sub-instance covering slots [t0, t0+n) with the given
// allocation as its pre-horizon state. Slice fields are shared with the
// receiver (not copied); callers must not mutate them. Window is the
// building block of lookahead (model-predictive) policies.
func (in *Instance) Window(t0, n int, init Alloc) (*Instance, error) {
	if t0 < 0 || n <= 0 || t0+n > in.T {
		return nil, fmt.Errorf("%w: window [%d,%d) outside horizon %d",
			ErrInvalidInstance, t0, t0+n, in.T)
	}
	w := *in
	w.T = n
	w.OpPrice = in.OpPrice[t0 : t0+n]
	w.Attach = in.Attach[t0 : t0+n]
	w.AccessDelay = in.AccessDelay[t0 : t0+n]
	w.Init = &init
	return &w, nil
}

// StaticCoeff returns the weighted per-unit static cost of placing user
// j's workload on cloud i in slot t:
//
//	WOp·a_{i,t} + WSq·d(l_{j,t}, i)/λ_j,
//
// as a row-major I×J matrix. This is the exact objective of the atomistic
// per-slot subproblems and the linear part of P2.
func (in *Instance) StaticCoeff(t int) []float64 {
	c := make([]float64, in.I*in.J)
	in.StaticCoeffInto(t, c)
	return c
}

// StaticCoeffInto writes the slot-t static coefficients into dst, which
// must have length I·J. It exists so per-slot hot paths can reuse one
// buffer across a horizon.
func (in *Instance) StaticCoeffInto(t int, dst []float64) {
	for i := 0; i < in.I; i++ {
		for j := 0; j < in.J; j++ {
			dst[i*in.J+j] = in.WOp*in.OpPrice[t][i] +
				in.WSq*in.InterDelay[in.Attach[t][j]][i]/in.Workload[j]
		}
	}
}
