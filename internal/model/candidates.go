package model

import "sort"

// This file defines the ragged candidate-set index used by the sparse
// (candidate-set) solving layer of the online algorithm. The per-slot
// program P2 is posed over the full I×J allocation grid, but its cost
// geometry — service-quality delay d(l_{j,t}, i) plus migration
// penalties — concentrates each user's mass on a handful of clouds near
// its attachment point. A CandidateSet names, for every user j, the
// subset K_j ⊆ I of clouds the solver keeps as variables; everything
// outside K_j is pinned at zero and certified optimal afterwards through
// the dual multipliers (see internal/core/sparse.go).

// CandidateSet is a ragged subset of an I×J allocation grid in
// cloud-major CSR form: the variables of cloud i occupy positions
// RowPtr[i]..RowPtr[i+1] of the packed vector, and Cols[k] is the user
// served by packed variable k. Users appear in ascending order within
// each cloud row, so a packed vector enumerates the grid in the same
// (i, j) order as the dense row-major layout with the pruned pairs
// removed.
type CandidateSet struct {
	I, J   int
	RowPtr []int // len I+1, nondecreasing, RowPtr[0] = 0
	Cols   []int // len NNZ, user of each packed variable
}

// NNZ returns the number of packed variables Σ_j |K_j|.
func (c *CandidateSet) NNZ() int { return len(c.Cols) }

// NearestClouds returns, for every cloud a, the min(k, I) clouds with the
// smallest delay[a][i], ties broken toward the lower cloud index, listed
// in ascending index order. Row a always contains a itself: its delay is
// the zero diagonal, and when zero-delay ties with lower indices would
// crowd it out of the top k, the farthest selected cloud is displaced to
// keep the documented invariant. Values of k outside [1, I] are clamped.
// The attachment cloud of a user changes per slot but the delay matrix
// does not, so callers compute this table once per instance and look rows
// up by attachment.
func NearestClouds(delay [][]float64, k int) [][]int {
	nI := len(delay)
	if k > nI {
		k = nI
	}
	if k < 1 {
		k = 1
	}
	order := make([]int, nI)
	out := make([][]int, nI)
	for a := 0; a < nI; a++ {
		for i := range order {
			order[i] = i
		}
		row := delay[a]
		sort.SliceStable(order, func(x, y int) bool {
			if row[order[x]] != row[order[y]] {
				return row[order[x]] < row[order[y]]
			}
			return order[x] < order[y]
		})
		sel := append([]int(nil), order[:k]...)
		hasSelf := false
		for _, i := range sel {
			if i == a {
				hasSelf = true
				break
			}
		}
		if !hasSelf {
			// Zero-delay ties with lower indices filled the row; the last
			// entry of sel is the farthest (worst) pick, so it yields.
			sel[len(sel)-1] = a
		}
		sort.Ints(sel)
		out[a] = sel
	}
	return out
}

// CandidateBuilder accumulates (cloud, user) memberships for one slot and
// emits them as a CandidateSet. All buffers are reused across Reset
// cycles, so the steady-state per-slot cost is O(I·J) scans with no
// allocation; membership adds are idempotent. A builder must not be
// shared between goroutines.
type CandidateBuilder struct {
	nI, nJ int
	member []bool // I×J row-major membership bitmap
	counts []int  // per-cloud row sizes, reused by Build
}

// NewCandidateBuilder returns a builder for an I×J grid.
func NewCandidateBuilder(I, J int) *CandidateBuilder {
	return &CandidateBuilder{
		nI:     I,
		nJ:     J,
		member: make([]bool, I*J),
		counts: make([]int, I+1),
	}
}

// Reset clears every membership.
func (b *CandidateBuilder) Reset() {
	for k := range b.member {
		b.member[k] = false
	}
}

// Add marks (cloud i, user j) as a candidate.
func (b *CandidateBuilder) Add(i, j int) { b.member[i*b.nJ+j] = true }

// Contains reports whether (cloud i, user j) is currently a candidate.
func (b *CandidateBuilder) Contains(i, j int) bool { return b.member[i*b.nJ+j] }

// AddUserSet marks every cloud of the slice as a candidate for user j.
func (b *CandidateBuilder) AddUserSet(j int, clouds []int) {
	for _, i := range clouds {
		b.member[i*b.nJ+j] = true
	}
}

// AddSupport marks every (i, j) whose entry of the dense row-major vector
// x is nonzero. Passing the previous slot's decision keeps the
// reconfiguration and migration terms of P2 exact on the reduced space:
// a pair with x'_{ij} > 0 outside K_j would silently turn its migration
// hinge into a constant, so carryover pairs must stay in.
func (b *CandidateBuilder) AddSupport(x []float64) {
	for k, v := range x {
		if v != 0 {
			b.member[k] = true
		}
	}
}

// Build emits the current memberships into dst, reusing dst's slices when
// they have capacity. The builder's memberships are retained, so callers
// can Add more pairs (the expansion loop of the certified solver) and
// Build again.
func (b *CandidateBuilder) Build(dst *CandidateSet) {
	nI, nJ := b.nI, b.nJ
	counts := b.counts
	for i := range counts {
		counts[i] = 0
	}
	nnz := 0
	for i := 0; i < nI; i++ {
		row := b.member[i*nJ : (i+1)*nJ]
		c := 0
		for _, m := range row {
			if m {
				c++
			}
		}
		counts[i+1] = c
		nnz += c
	}
	dst.I, dst.J = nI, nJ
	if cap(dst.RowPtr) < nI+1 {
		dst.RowPtr = make([]int, nI+1)
	}
	dst.RowPtr = dst.RowPtr[:nI+1]
	dst.RowPtr[0] = 0
	for i := 0; i < nI; i++ {
		dst.RowPtr[i+1] = dst.RowPtr[i] + counts[i+1]
	}
	if cap(dst.Cols) < nnz {
		dst.Cols = make([]int, nnz)
	}
	dst.Cols = dst.Cols[:nnz]
	for i := 0; i < nI; i++ {
		row := b.member[i*nJ : (i+1)*nJ]
		at := dst.RowPtr[i]
		for j, m := range row {
			if m {
				dst.Cols[at] = j
				at++
			}
		}
	}
}
