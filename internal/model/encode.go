package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// This file provides JSON persistence for instances and schedules, so
// that scenarios generated once (e.g. by cmd/tracegen + scenario
// builders) can be archived, diffed, and replayed across runs and
// machines — the reproducibility workflow the evaluation section relies
// on.

// WriteInstance encodes the instance as indented JSON.
func WriteInstance(w io.Writer, in *Instance) error {
	if err := in.Validate(); err != nil {
		return fmt.Errorf("model: refusing to write invalid instance: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(in); err != nil {
		return fmt.Errorf("model: encoding instance: %w", err)
	}
	return nil
}

// ReadInstance decodes and validates an instance.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding instance: %w", err)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return &in, nil
}

// scheduleDTO is the wire form of a schedule: shape plus slot matrices.
type scheduleDTO struct {
	I, J  int
	Slots [][]float64
}

// WriteSchedule encodes a schedule as JSON.
func WriteSchedule(w io.Writer, s Schedule) error {
	if len(s) == 0 {
		return fmt.Errorf("model: refusing to write empty schedule")
	}
	dto := scheduleDTO{I: s[0].I, J: s[0].J}
	for t, x := range s {
		if x.I != dto.I || x.J != dto.J || len(x.X) != dto.I*dto.J {
			return fmt.Errorf("model: slot %d has shape %dx%d, want %dx%d",
				t, x.I, x.J, dto.I, dto.J)
		}
		dto.Slots = append(dto.Slots, x.X)
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(dto); err != nil {
		return fmt.Errorf("model: encoding schedule: %w", err)
	}
	return nil
}

// ReadSchedule decodes a schedule.
func ReadSchedule(r io.Reader) (Schedule, error) {
	var dto scheduleDTO
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dto); err != nil {
		return nil, fmt.Errorf("model: decoding schedule: %w", err)
	}
	if dto.I <= 0 || dto.J <= 0 {
		return nil, fmt.Errorf("model: schedule shape %dx%d invalid", dto.I, dto.J)
	}
	s := make(Schedule, 0, len(dto.Slots))
	for t, xs := range dto.Slots {
		if len(xs) != dto.I*dto.J {
			return nil, fmt.Errorf("model: slot %d has %d entries, want %d",
				t, len(xs), dto.I*dto.J)
		}
		s = append(s, Alloc{I: dto.I, J: dto.J, X: xs})
	}
	if len(s) == 0 {
		return nil, fmt.Errorf("model: schedule has no slots")
	}
	return s, nil
}
