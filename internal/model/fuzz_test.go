package model

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzInstanceDecode feeds arbitrary bytes to the instance decoder and
// holds the codec to its contract: whatever ReadInstance accepts must
// re-encode (Validate admits no value json.Marshal rejects, NaN/Inf
// included) and survive a decode round-trip unchanged. Seed corpus files
// under testdata/fuzz include real encoded instances — toy, generated,
// and Rome-derived — alongside adversarial fragments.
func FuzzInstanceDecode(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteInstance(&buf, ToyExampleA()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte(`{"I":1,"J":1,"T":1}`))
	f.Add([]byte(`{"I":1e999}`))
	f.Add([]byte(`{"Workload":[null]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := ReadInstance(bytes.NewReader(data))
		if err != nil {
			return // rejected input: nothing to hold it to
		}
		var out bytes.Buffer
		if err := WriteInstance(&out, in); err != nil {
			t.Fatalf("accepted instance failed to re-encode: %v", err)
		}
		back, err := ReadInstance(&out)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !reflect.DeepEqual(in, back) {
			t.Fatalf("round-trip changed the instance:\n got %+v\nwant %+v", back, in)
		}
	})
}
