package edgealloc

// One benchmark per figure of the paper's evaluation section. Each runs a
// reduced-scale reproduction (this is a 1-CPU laptop-class harness; the
// authors used a 512 GB Xeon server) and reports the headline quantity of
// the figure as a custom metric, so `go test -bench=.` regenerates every
// figure's series. cmd/edgesim prints the full row/series tables and
// EXPERIMENTS.md records paper-vs-measured at larger scales.

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
)

func benchParams() ExperimentParams {
	return ExperimentParams{Users: 6, Horizon: 5, Reps: 1, Cases: 2, Seed: 20140212}
}

// reportCells emits every (row, cell) ratio as a benchmark metric.
func reportCells(b *testing.B, res *ExperimentResult, metric string, filter func(label string) bool) {
	b.Helper()
	count, sum := 0, 0.0
	for _, row := range res.Rows {
		if filter != nil && !filter(row.Label) {
			continue
		}
		for _, c := range row.Cells {
			if c.Name == metric {
				sum += c.Stats.Mean
				count++
			}
		}
	}
	if count > 0 {
		b.ReportMetric(sum/float64(count), metric+"-ratio")
	}
}

// BenchmarkFig1Examples regenerates the Figure 1 toy numbers (greedy 11.5
// and 11.3 vs optima 9.6 and 9.5).
func BenchmarkFig1Examples(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := ReproduceFigure("1", ExperimentParams{})
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			ga, _ := res.Cell("example-a", "online-greedy")
			oa, _ := res.Cell("example-a", "offline-opt")
			b.ReportMetric(ga.Stats.Mean, "greedy-a-total")
			b.ReportMetric(oa.Stats.Mean, "optimal-a-total")
		}
	}
}

// BenchmarkFig2RealWorldPower regenerates Figure 2: competitive ratios of
// the atomistic and holistic groups on the Rome taxi scenario with
// power-law workloads.
func BenchmarkFig2RealWorldPower(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := ReproduceFigure("2", benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			reportCells(b, res, "online-approx", nil)
			reportCells(b, res, "online-greedy", nil)
			reportCells(b, res, "stat-opt", nil)
		}
	}
}

// BenchmarkFig3UniformNormal regenerates Figure 3: the same comparison
// under uniform and normal workload distributions.
func BenchmarkFig3UniformNormal(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := ReproduceFigure("3", benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			reportCells(b, res, "online-approx", func(l string) bool {
				return strings.HasPrefix(l, "uniform")
			})
			reportCells(b, res, "online-greedy", func(l string) bool {
				return strings.HasPrefix(l, "normal")
			})
		}
	}
}

// BenchmarkFig4EpsilonMu regenerates Figure 4: sensitivity of the ratio
// to ε = ε₁ = ε₂ and to the dynamic/static weight μ.
func BenchmarkFig4EpsilonMu(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := ReproduceFigure("4", benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			reportCells(b, res, "online-approx", func(l string) bool {
				return strings.HasPrefix(l, "eps=")
			})
		}
	}
}

// BenchmarkFig5RandomWalk regenerates Figure 5: random-walk mobility with
// a growing user population.
func BenchmarkFig5RandomWalk(b *testing.B) {
	for n := 0; n < b.N; n++ {
		res, err := ReproduceFigure("5", benchParams())
		if err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			reportCells(b, res, "online-approx", nil)
			reportCells(b, res, "online-greedy", nil)
		}
	}
}

// BenchmarkFig2ByWorkers measures the wall-clock effect of the parallel
// experiment engine on one figure reproduction: the same Figure-2 grid at
// 1 worker (the sequential order) and at one worker per CPU. Output rows
// are bit-identical across worker counts (see the determinism regression
// test in internal/experiments); on a multi-core host the many-worker
// variant's ns/op drops near-linearly until the grid runs out of tasks.
func BenchmarkFig2ByWorkers(b *testing.B) {
	counts := []int{1, runtime.GOMAXPROCS(0)}
	if counts[1] == 1 {
		counts = counts[:1] // single-CPU host: nothing to compare against
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p := benchParams()
			p.Workers = w
			for n := 0; n < b.N; n++ {
				if _, err := ReproduceFigure("2", p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkOnlineApproxSlot measures the per-slot decision latency of the
// paper's algorithm at a moderate scale — the quantity that matters for
// online deployment.
func BenchmarkOnlineApproxSlot(b *testing.B) {
	in, _, err := RomeScenario(ScenarioConfig{Users: 30, Horizon: 4, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		alg := NewOnlineApproxFor(in, ApproxOptions{})
		if _, err := alg.Step(0); err != nil {
			b.Fatal(err)
		}
	}
}
