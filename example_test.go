package edgealloc_test

import (
	"fmt"
	"log"

	"edgealloc"
)

// The Figure-1(a) instance: the offline optimum keeps the workload at
// cloud A for 9.6 total, while the myopic greedy policy pays 11.5.
func ExampleExactOffline() {
	in := edgealloc.ToyExampleA()
	_, opt, err := edgealloc.ExactOffline(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offline optimum: %.1f\n", opt)
	// Output:
	// offline optimum: 9.6
}

// Running the online-greedy baseline on Figure 1(a) reproduces the
// paper's trap value.
func ExampleExecute() {
	in := edgealloc.ToyExampleA()
	run, err := edgealloc.Execute(in, edgealloc.NewOnlineGreedy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("online-greedy: %.1f\n", run.Total)
	// Output:
	// online-greedy: 11.5
}

// Slot-by-slot use of the paper's algorithm, with the dual certificate
// bounding how far from optimal the run can possibly be.
func ExampleOnlineApproxAlg_Certificate() {
	in := edgealloc.ToyExampleB()
	alg := edgealloc.NewOnlineApproxFor(in, edgealloc.ApproxOptions{})
	sched, err := alg.Run()
	if err != nil {
		log.Fatal(err)
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		log.Fatal(err)
	}
	cert, err := alg.Certificate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("achieved %.1f, certified optimum >= %.1f\n",
		in.Total(b), cert.LowerBoundP0())
	// Output:
	// achieved 10.3, certified optimum >= 7.1
}

// Theorem 2's parameterized bound for the toy system.
func ExampleRatioBound() {
	in := edgealloc.ToyExampleA()
	fmt.Printf("r = %.1f\n", edgealloc.RatioBound(in, 1, 1))
	// Output:
	// r = 7.6
}
