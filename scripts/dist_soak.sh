#!/usr/bin/env bash
# Distributed-shard soak: launch real edgeshard worker processes, point
# the race-instrumented TestDistSoak at them, and kill -9 / restart
# workers the whole time. The test drives full horizons through the
# distributed coordinator and pins the result against the in-process
# reference (conformance-clean, cost within 1e-8), so this certifies the
# failure-handling paths — replay-on-restart, fold-to-local, rejoin —
# under the race detector with genuine process death, not simulated
# handler swaps.
#
#   scripts/dist_soak.sh            # 3 workers, chaos every 3s
#   DIST_SOAK_LOG=soak.log scripts/dist_soak.sh
#
# Tunables (env): DIST_SOAK_PORT_BASE (default 19471), DIST_SOAK_KILL_EVERY
# (seconds between kills, default 3), DIST_SOAK_TIMEOUT (go test -timeout,
# default 15m).
set -u

WORKERS=3
PORT_BASE="${DIST_SOAK_PORT_BASE:-19471}"
KILL_EVERY="${DIST_SOAK_KILL_EVERY:-3}"
TEST_TIMEOUT="${DIST_SOAK_TIMEOUT:-15m}"
LOG="${DIST_SOAK_LOG:-dist-soak.log}"

cd "$(dirname "$0")/.."

BIN_DIR="$(mktemp -d)"
PIDS=()
CHAOS_PID=""

cleanup() {
    [ -n "$CHAOS_PID" ] && kill "$CHAOS_PID" 2>/dev/null
    for pid in "${PIDS[@]:-}"; do
        [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null
    done
    wait 2>/dev/null
    rm -rf "$BIN_DIR"
}
trap cleanup EXIT INT TERM

log() { echo "dist-soak: $*" | tee -a "$LOG"; }

: > "$LOG"
log "building cmd/edgeshard"
if ! go build -o "$BIN_DIR/edgeshard" ./cmd/edgeshard >>"$LOG" 2>&1; then
    log "FAIL: edgeshard build"
    exit 1
fi

port_of() { echo $((PORT_BASE + $1)); }

start_worker() { # start_worker <index>
    local port
    port="$(port_of "$1")"
    "$BIN_DIR/edgeshard" -addr "127.0.0.1:$port" -drain-wait 1s >>"$LOG" 2>&1 &
    PIDS[$1]=$!
}

wait_healthy() { # wait_healthy <index> — bounded probe of /healthz
    local port deadline
    port="$(port_of "$1")"
    deadline=$((SECONDS + 30))
    while [ "$SECONDS" -lt "$deadline" ]; do
        if curl -fsS -m 2 "http://127.0.0.1:$port/healthz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.2
    done
    log "FAIL: worker $1 (port $port) never became healthy"
    return 1
}

URLS=""
for i in $(seq 0 $((WORKERS - 1))); do
    start_worker "$i"
    wait_healthy "$i" || exit 1
    URLS="${URLS:+$URLS,}http://127.0.0.1:$(port_of "$i")"
done
log "workers healthy: $URLS"

# Chaos: forever kill -9 one worker round-robin, pause, restart it on the
# same port. Restarts land mid-horizon, so the coordinator exercises the
# dead-worker fold, the probe path, and the spec replay on rejoin.
chaos() {
    local victim=0 port
    while true; do
        sleep "$KILL_EVERY"
        port="$(port_of "$victim")"
        kill -9 "${PIDS[$victim]}" 2>/dev/null
        echo "dist-soak: chaos killed worker $victim (port $port)" >>"$LOG"
        sleep 1
        "$BIN_DIR/edgeshard" -addr "127.0.0.1:$port" -drain-wait 1s >>"$LOG" 2>&1 &
        PIDS[$victim]=$!
        victim=$(((victim + 1) % WORKERS))
    done
}
chaos &
CHAOS_PID=$!

log "running TestDistSoak under -race (timeout $TEST_TIMEOUT, kill every ${KILL_EVERY}s)"
DIST_SOAK_WORKERS="$URLS" go test -race -count=1 -timeout "$TEST_TIMEOUT" \
    -run '^TestDistSoak$' -v ./internal/core/ 2>&1 | tee -a "$LOG"
status=${PIPESTATUS[0]}

if [ "$status" -ne 0 ]; then
    log "FAIL (exit $status); full log in $LOG"
else
    log "PASS"
fi
exit "$status"
