#!/bin/sh
# Per-package coverage gate for the guarantee-bearing packages (`make
# cover`). Floors sit a few points under the measured values recorded in
# DESIGN.md §8, so genuine regressions trip the gate while refactors have
# headroom. Raise a floor when a package's coverage durably improves.
set -eu

cd "$(dirname "$0")/.."

# package floor%
floors='
internal/core 95
internal/conform 90
internal/model 90
internal/numkernel 95
internal/sim 90
internal/solver/alm 90
internal/solver/fista 95
internal/solver/par 95
internal/solver/simplex 90
internal/solver/smooth 95
internal/solver/transport 95
internal/serve 80
internal/telemetry 90
'

status=0
echo "$floors" | while read -r pkg floor; do
    [ -z "$pkg" ] && continue
    line="$(go test -cover "./$pkg/" | tail -1)"
    pct="$(echo "$line" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p')"
    if [ -z "$pct" ]; then
        echo "FAIL  $pkg: no coverage figure in: $line"
        exit 1
    fi
    ok="$(awk -v p="$pct" -v f="$floor" 'BEGIN { print (p >= f) ? 1 : 0 }')"
    if [ "$ok" = 1 ]; then
        echo "ok    $pkg: ${pct}% >= ${floor}%"
    else
        echo "FAIL  $pkg: ${pct}% < floor ${floor}%"
        exit 1
    fi
done || status=1

exit $status
