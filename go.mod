module edgealloc

go 1.22
