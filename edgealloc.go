// Package edgealloc is a Go implementation of online resource allocation
// for mobile users in distributed edge clouds, reproducing the algorithm
// and evaluation of
//
//	Wang, Jiao, Li, Mühlhäuser — "Online Resource Allocation for
//	Arbitrary User Mobility in Distributed Edge Clouds", ICDCS 2017.
//
// The library models a time-slotted system of edge clouds serving mobile
// users under four costs (operation, service quality, reconfiguration,
// migration) and provides:
//
//   - the paper's regularization-based online algorithm with the
//     parameterized competitive ratio r = 1 + γ|I| (NewOnlineApprox),
//     including a per-run dual certificate lower-bounding the offline
//     optimum;
//   - the full §V-B baseline roster: online-greedy, perf-opt, oper-opt,
//     stat-opt, a never-adapting static policy, and the offline optimum;
//   - scenario builders for the Rome-metro taxi setting and the §V-D
//     random-walk setting, with the §V-A price processes;
//   - a simulation harness and reproduction drivers for every figure of
//     the paper's evaluation.
//
// # Quick start
//
//	in, _, err := edgealloc.RomeScenario(edgealloc.ScenarioConfig{
//		Users: 40, Horizon: 30, Seed: 1,
//	})
//	if err != nil { ... }
//	run, err := edgealloc.Execute(in, edgealloc.NewOnlineApprox(edgealloc.ApproxOptions{}))
//	if err != nil { ... }
//	fmt.Println(run.Total, run.Breakdown)
//
// All heavy numerical machinery (two-phase simplex, augmented-Lagrangian
// and FISTA solvers, a transportation solver) is hand-rolled on the
// standard library; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package edgealloc

import (
	"io"

	"edgealloc/internal/baseline"
	"edgealloc/internal/core"
	"edgealloc/internal/experiments"
	"edgealloc/internal/mobility"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/sim"
)

// Core model types.
type (
	// Instance is a complete problem instance over a horizon (see the
	// field documentation for the paper's notation).
	Instance = model.Instance
	// Alloc is one slot's allocation matrix x[i][j].
	Alloc = model.Alloc
	// Schedule is an allocation per slot.
	Schedule = model.Schedule
	// Breakdown holds the four unweighted cost components.
	Breakdown = model.Breakdown
	// Trace is a user-mobility record (attachments + access distances).
	Trace = mobility.Trace
	// ScenarioConfig parameterizes the scenario builders.
	ScenarioConfig = scenario.Config
)

// Algorithm types.
type (
	// Algorithm is any allocation policy runnable by Execute.
	Algorithm = sim.Algorithm
	// Run is the outcome of one execution: schedule, costs, timing.
	Run = sim.Run
	// Stats summarizes repeated measurements.
	Stats = sim.Stats
	// ApproxOptions tunes the paper's online algorithm (ε₁, ε₂, solver).
	ApproxOptions = core.Options
	// OnlineApproxAlg exposes the paper's algorithm including Step-wise
	// execution and the dual Certificate.
	OnlineApproxAlg = core.OnlineApprox
	// Certificate is a certified lower bound on the offline optimum.
	Certificate = core.Certificate
)

// Experiment types.
type (
	// ExperimentParams scales a figure reproduction.
	ExperimentParams = experiments.Params
	// ExperimentResult is a reproduced figure as labeled rows.
	ExperimentResult = experiments.Result
)

// NewOnlineApprox returns the paper's regularization-based online
// algorithm (§III) for use with Execute. The zero options use ε₁ = ε₂ = 1.
func NewOnlineApprox(opts ApproxOptions) *OnlineApproxAlg {
	return core.NewOnlineApprox(nil, opts)
}

// NewOnlineApproxFor binds the algorithm to an instance for slot-by-slot
// execution (Step/Run) and certification (Certificate).
func NewOnlineApproxFor(in *Instance, opts ApproxOptions) *OnlineApproxAlg {
	return core.NewOnlineApprox(in, opts)
}

// NewOnlineGreedy returns the per-slot one-shot optimizer of §V-B.
func NewOnlineGreedy() Algorithm { return &baseline.Greedy{} }

// NewOfflineOpt returns the full-knowledge offline optimizer used to
// normalize empirical competitive ratios.
func NewOfflineOpt() Algorithm { return &baseline.Offline{} }

// NewPerfOpt returns the atomistic service-quality-only optimizer.
func NewPerfOpt() Algorithm { return &baseline.Atomistic{Kind: baseline.PerfOpt} }

// NewOperOpt returns the atomistic operation-cost-only optimizer.
func NewOperOpt() Algorithm { return &baseline.Atomistic{Kind: baseline.OperOpt} }

// NewStatOpt returns the atomistic total-static-cost optimizer.
func NewStatOpt() Algorithm { return &baseline.Atomistic{Kind: baseline.StatOpt} }

// NewStatic returns the never-adapting policy: the stat-opt allocation of
// the first slot held for the whole horizon.
func NewStatic() Algorithm { return &baseline.Static{} }

// NewLookahead returns the model-predictive baseline that assumes the
// next window slots are known, commits the first slot, and rolls forward
// (window ≤ 0 selects the default 3). Window 1 behaves like greedy;
// window T is offline-opt.
func NewLookahead(window int) Algorithm { return &baseline.Lookahead{Window: window} }

// NewProximal returns the quadratic-movement-penalty ablation of the
// paper's algorithm (smoothed-OCO style; sigma ≤ 0 selects the default 1).
func NewProximal(sigma float64) Algorithm { return &core.Proximal{Sigma: sigma} }

// Execute runs an algorithm on a validated instance, verifies that the
// produced schedule is feasible, and evaluates the true weighted cost.
func Execute(in *Instance, alg Algorithm) (*Run, error) {
	return sim.Execute(in, alg)
}

// ExactOffline solves the full-horizon problem exactly as an LP with the
// built-in simplex solver. Use only on small instances (T·I·J up to a few
// hundred variables); it exists as ground truth for tests and toys.
func ExactOffline(in *Instance) (Schedule, float64, error) {
	return baseline.ExactOffline(in)
}

// RomeScenario builds the §V-A real-world-style scenario: synthetic taxis
// in central Rome attaching to 15 metro-station edge clouds.
func RomeScenario(cfg ScenarioConfig) (*Instance, *Trace, error) {
	return scenario.Rome(cfg)
}

// RandomWalkScenario builds the §V-D synthetic scenario: users walk the
// metro graph with uniform stay-or-move steps.
func RandomWalkScenario(cfg ScenarioConfig) (*Instance, *Trace, error) {
	return scenario.RandomWalkRome(cfg)
}

// PingPongScenario builds the adversarial price-alternation family used
// to probe lower bounds on the competitive ratio (the future work of the
// paper's §IV Remark).
func PingPongScenario(cfg scenario.AdversarialConfig) (*Instance, error) {
	return scenario.PingPong(cfg)
}

// AdversarialConfig parameterizes PingPongScenario.
type AdversarialConfig = scenario.AdversarialConfig

// WriteInstance persists an instance as JSON for archival and replay.
func WriteInstance(w io.Writer, in *Instance) error { return model.WriteInstance(w, in) }

// ReadInstance decodes and validates a JSON instance.
func ReadInstance(r io.Reader) (*Instance, error) { return model.ReadInstance(r) }

// WriteSchedule persists a schedule as JSON.
func WriteSchedule(w io.Writer, s Schedule) error { return model.WriteSchedule(w, s) }

// ReadSchedule decodes a JSON schedule.
func ReadSchedule(r io.Reader) (Schedule, error) { return model.ReadSchedule(r) }

// ToyExampleA returns the Figure 1(a) instance (greedy too aggressive:
// 11.5 vs the optimal 9.6).
func ToyExampleA() *Instance { return model.ToyExampleA() }

// ToyExampleB returns the Figure 1(b) instance (greedy too conservative:
// 11.3 vs the optimal 9.5).
func ToyExampleB() *Instance { return model.ToyExampleB() }

// RatioBound returns the paper's parameterized competitive ratio
// r = 1 + γ|I| of Theorem 2 for the given instance and ε parameters.
func RatioBound(in *Instance, eps1, eps2 float64) float64 {
	return core.RatioBound(in, eps1, eps2)
}

// ReproduceFigure runs the reproduction harness for one of the paper's
// figures ("1".."5" or "fig1".."fig5") at the given scale.
func ReproduceFigure(name string, p ExperimentParams) (*ExperimentResult, error) {
	return experiments.ByName(name, p)
}
