package edgealloc

import (
	"bytes"
	"testing"
)

func TestPublicAPIExtensions(t *testing.T) {
	in, err := PingPongScenario(AdversarialConfig{Horizon: 6, Spike: 3, Dynamic: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{NewLookahead(2), NewProximal(1)} {
		run, err := Execute(in, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if run.Total <= 0 {
			t.Errorf("%s: total %g", alg.Name(), run.Total)
		}
	}
}

func TestPublicAPIPersistence(t *testing.T) {
	in := ToyExampleA()
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	run, err := Execute(got, NewStatOpt())
	if err != nil {
		t.Fatal(err)
	}
	var sbuf bytes.Buffer
	if err := WriteSchedule(&sbuf, run.Schedule); err != nil {
		t.Fatal(err)
	}
	sched, err := ReadSchedule(&sbuf)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := got.Evaluate(run.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := got.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	if got.Total(b1) != got.Total(b2) {
		t.Errorf("cost changed through schedule round trip: %g != %g",
			got.Total(b1), got.Total(b2))
	}
}

func TestReproduceFigureAcceptsFigPrefix(t *testing.T) {
	res, err := ReproduceFigure("fig1", ExperimentParams{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Figure != "Fig 1" {
		t.Errorf("Figure = %q", res.Figure)
	}
}
