// Command edgesim reproduces the figures of the paper's evaluation
// section: it builds the §V-A scenarios, runs the atomistic and holistic
// algorithm groups, normalizes by the offline optimum, and prints the
// rows/series of the requested figure.
//
// Usage:
//
//	edgesim -fig 2                      # Figure 2 at the default scale
//	edgesim -fig all -users 25 -reps 3  # everything, bigger
//	edgesim -fig 4 -horizon 16 -mu 1    # parameter-impact figure
//	edgesim -fig 2 -cpuprofile cpu.prof # profile the run
//
// The defaults are laptop-scale; the paper's full scale is
// -users 300 -horizon 60 -reps 5 (budget hours of CPU for the offline
// denominators at that size).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"edgealloc/internal/experiments"
	"edgealloc/internal/prof"
	"edgealloc/internal/scenario"
	"edgealloc/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, executes the
// requested figures, and writes tables to stdout and errors to stderr,
// returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("edgesim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig        = fs.String("fig", "all", "figure to reproduce: 1..5 or 'all'")
		users      = fs.Int("users", 15, "number of mobile users J")
		horizon    = fs.Int("horizon", 12, "number of time slots T")
		reps       = fs.Int("reps", 2, "independent repetitions per case")
		cases      = fs.Int("cases", 3, "test cases (hours) for figures 2-3")
		seed       = fs.Int64("seed", 20140212, "base random seed")
		workers    = fs.Int("workers", 0, "concurrent (case, rep, algorithm) runs (0 = all CPUs); results are identical for any value")
		candidates = fs.Int("candidates", 0, "per-user candidate-set size for the paper's algorithm (0 = full variable space; any value is certified equal to the full solve)")
		fastmath   = fs.Bool("fastmath", false, "evaluate the paper algorithm's entropy terms with the batch fast-math kernels (costs agree with the exact path to 1e-8; not bitwise-reproducible against it)")
		fastmath32 = fs.Bool("fastmath32", false, "with the fast-math kernels, store the ratio scratch in float32 (implies -fastmath)")
		shards     = fs.Int("shards", 0, "split the paper algorithm's per-slot solve across this many user shards coordinated by consensus ADMM (0 = single program; composes with -candidates and -fastmath)")
		shardWkrs  = fs.String("shard-workers", "", "comma-separated shard-worker base URLs (cmd/edgeshard, e.g. http://127.0.0.1:9711,http://127.0.0.1:9712) to place the shard blocks on over RPC; dead workers fold back to local solving (requires -shards)")
		incr       = fs.Bool("incremental", false, "solve the paper algorithm's slots incrementally: re-solve only users whose attachment changed, gated by dual feasibility (composes with -candidates, -fastmath, and -shards)")
		incrTol    = fs.Float64("incremental-tol", 0, "relative dual-feasibility tolerance of the incremental gate (0 = package default)")
		noconform  = fs.Bool("noconform", false, "disable the paper-conformance oracle on every run (it is on by default)")
		dist       = fs.String("dist", "", "workload distribution override (power|uniform|normal)")
		mu         = fs.Float64("mu", 0, "dynamic/static weight ratio μ (0 = default 1)")
		mig        = fs.Float64("migscale", 0, "migration price scale (0 = default 1)")
		reconf     = fs.Float64("reconf", 0, "mean reconfiguration price (0 = default 1)")
		sqPrice    = fs.Float64("sqprice", 0, "service-quality price per km (0 = default)")
		vol        = fs.Float64("vol", 0, "op-price volatility (std/base, 0 = default 0.5)")
		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = fs.String("memprofile", "", "write a heap profile to this file on exit")
		metricsOut = fs.String("metrics", "", "write solver telemetry (Prometheus text format) to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		// The FlagSet has already reported the problem on stderr.
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "edgesim: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(stderr, "edgesim: %v\n", err)
		return 1
	}
	defer stopProf()

	// The batch engine records into the same instrument bundle the
	// serving daemon exposes, so a -metrics dump and an edged scrape show
	// identical metric names.
	var registry *telemetry.Registry
	var solverMetrics *telemetry.SolverMetrics
	if *metricsOut != "" {
		registry = telemetry.NewRegistry()
		solverMetrics = telemetry.NewSolverMetrics(registry)
	}

	p := experiments.Params{
		Users:           *users,
		Horizon:         *horizon,
		Reps:            *reps,
		Cases:           *cases,
		Seed:            *seed,
		Workers:         *workers,
		Candidates:      *candidates,
		Shards:          *shards,
		ShardWorkers:    splitCSV(*shardWkrs),
		FastMath:        *fastmath,
		FastMathF32:     *fastmath32,
		Incremental:     *incr,
		IncrementalTol:  *incrTol,
		SkipConformance: *noconform,
		Scenario: scenario.Config{
			WorkloadDist:    *dist,
			Mu:              *mu,
			MigScale:        *mig,
			ReconfMean:      *reconf,
			SqPricePerKm:    *sqPrice,
			PriceVolatility: *vol,
		},
		Metrics: solverMetrics,
	}

	figures := []string{*fig}
	if *fig == "all" {
		figures = []string{"1", "2", "3", "4", "5"}
	}
	var claimSources []*experiments.Result
	for _, f := range figures {
		start := time.Now()
		res, err := experiments.ByName(f, p)
		if err != nil {
			fmt.Fprintf(stderr, "edgesim: %v\n", err)
			return 1
		}
		res.WriteTable(stdout)
		fmt.Fprintf(stdout, "   (%s in %v)\n\n", res.Figure, time.Since(start).Round(time.Millisecond))
		if f == "2" || f == "3" {
			claimSources = append(claimSources, res)
		}
	}
	if len(claimSources) > 0 {
		fmt.Fprintf(stdout, "== headline claims ==\n   %s\n", experiments.SummarizeClaims(claimSources...))
	}
	if registry != nil {
		if err := dumpMetrics(*metricsOut, registry); err != nil {
			fmt.Fprintf(stderr, "edgesim: %v\n", err)
			return 1
		}
	}
	return 0
}

// dumpMetrics writes the run's telemetry in Prometheus text format.
func dumpMetrics(path string, r *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := r.WritePrometheus(f); err != nil {
		f.Close()
		return fmt.Errorf("writing metrics: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("writing metrics: %w", err)
	}
	return nil
}

// splitCSV splits a comma-separated flag value into its non-empty,
// whitespace-trimmed items (nil for an empty value).
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
