package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
		errs string // substring required on stderr
	}{
		{"bad flag", []string{"-nope"}, 2, "-nope"},
		{"non-numeric users", []string{"-users", "lots"}, 2, "invalid"},
		{"extra args", []string{"2"}, 2, "unexpected arguments"},
		{"unknown figure", []string{"-fig", "9"}, 1, "9"},
		{"bad profile path", []string{"-fig", "1", "-cpuprofile", "/no/such/dir/cpu.prof"}, 1, "cpu.prof"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tt.args, &stdout, &stderr); got != tt.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tt.args, got, tt.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.errs) {
				t.Errorf("stderr %q missing %q", stderr.String(), tt.errs)
			}
		})
	}
}

// TestRunFigure1 is the cheapest full figure: two toy examples, offline
// vs online, no scenario generation.
func TestRunFigure1(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-fig", "1"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	if out := stdout.String(); !strings.Contains(out, "Fig 1") {
		t.Errorf("output %q does not announce Fig 1", out)
	}
}

// TestRunMetricsDump checks that -metrics writes a Prometheus text dump
// carrying the per-slot solver series recorded during the run.
func TestRunMetricsDump(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-fig", "1", "-metrics", path}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading metrics dump: %v", err)
	}
	out := string(raw)
	for _, want := range []string{
		"# TYPE edgealloc_solver_step_seconds histogram",
		"edgealloc_solver_steps_total",
		"edgealloc_sim_runs_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics dump missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "edgealloc_solver_steps_total 0\n") {
		t.Error("metrics dump recorded zero solver steps; Params.Metrics not plumbed to the algorithm")
	}
	if code := run([]string{"-fig", "1", "-metrics", "/no/such/dir/m.prom"}, &stdout, &stderr); code != 1 {
		t.Errorf("bad metrics path: exit %d, want 1", code)
	}
}

// TestRunFigure2Plumbing drives a tiny Figure-2 run end to end with the
// worker pool, the candidate-set path, and the conformance oracle all
// engaged, checking the flag plumbing reaches the experiment engine.
func TestRunFigure2Plumbing(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 2 solves offline denominators")
	}
	args := []string{"-fig", "2", "-users", "4", "-horizon", "2", "-reps", "1",
		"-cases", "1", "-workers", "2", "-candidates", "2"}
	var stdout, stderr bytes.Buffer
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"Fig 2", "headline claims"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The same run with the oracle disabled must agree: -noconform only
	// removes checking, never changes results.
	var stdout2, stderr2 bytes.Buffer
	if got := run(append(args, "-noconform"), &stdout2, &stderr2); got != 0 {
		t.Fatalf("-noconform exit %d, stderr %q", got, stderr2.String())
	}
	strip := func(s string) string {
		// Drop the timing lines; they differ run to run.
		var keep []string
		for _, l := range strings.Split(s, "\n") {
			if !strings.Contains(l, " in ") {
				keep = append(keep, l)
			}
		}
		return strings.Join(keep, "\n")
	}
	if strip(stdout.String()) != strip(stdout2.String()) {
		t.Errorf("-noconform changed the results:\n--- with oracle\n%s\n--- without\n%s",
			stdout.String(), stdout2.String())
	}
}
