package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
		errs string // substring required on stderr
	}{
		{"bad flag", []string{"-nope"}, 2, "-nope"},
		{"non-duration ttl", []string{"-session-ttl", "soon"}, 2, "invalid"},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:99999"}, 1, "listener failed"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if got := run(tt.args, &stderr); got != tt.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tt.args, got, tt.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.errs) {
				t.Errorf("stderr %q missing %q", stderr.String(), tt.errs)
			}
		})
	}
}
