// Command edged is the serving daemon: it hosts many independent online
// allocation sessions over HTTP, advancing each one slot by slot through
// the paper's regularization-based algorithm as prices and user
// locations are revealed, and exposes solver telemetry for scraping.
// See internal/serve for the API and DESIGN.md §9 for the architecture.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgealloc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw io.Writer) int {
	fs := flag.NewFlagSet("edged", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr        = fs.String("addr", "127.0.0.1:8080", "listen address")
		workers     = fs.Int("workers", 0, "max concurrent slot solves (0 = GOMAXPROCS)")
		queue       = fs.Int("queue", 0, "max solve requests waiting for a worker (0 = 4x workers)")
		sessionQ    = fs.Int("session-queue", 4, "max solve requests queued on one session")
		maxSessions = fs.Int("max-sessions", 256, "max live sessions")
		sessionTTL  = fs.Duration("session-ttl", 15*time.Minute, "evict sessions idle this long")
		stepTimeout = fs.Duration("step-timeout", 2*time.Minute, "per-slot solve deadline")
		drainWait   = fs.Duration("drain-wait", 30*time.Second, "shutdown grace for in-flight slots")
		fastmath    = fs.Bool("fastmath", false, "solve every session with the batch fast-math entropy kernels (costs agree with the exact path to 1e-8)")
		fastmath32  = fs.Bool("fastmath32", false, "with the fast-math kernels, store the ratio scratch in float32 (implies -fastmath)")
		shards      = fs.Int("shards", 0, "split every session's per-slot solve across this many user shards coordinated by consensus ADMM (0 = single program)")
		shardWkrs   = fs.String("shard-workers", "", "comma-separated shard-worker base URLs (cmd/edgeshard) to place every sharded session's blocks on over RPC; dead workers fold back to local solving (requires -shards)")
		incremental = fs.Bool("incremental", false, "solve every session's slots incrementally: re-solve only users whose attachment changed, gated by dual feasibility")
		incrTol     = fs.Float64("incremental-tol", 0, "relative dual-feasibility tolerance of the incremental gate (0 = package default)")
		snapDir     = fs.String("snapshot-dir", "", "persist session snapshots here: TTL eviction saves warm state to disk and a restarted daemon recovers every session found (empty = no persistence)")
		autosnap    = fs.Bool("autosnapshot", false, "persist a snapshot after every committed slot (crash loses at most the in-flight solve; requires -snapshot-dir)")
		logJSON     = fs.Bool("log-json", false, "emit JSON logs instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var handler slog.Handler = slog.NewTextHandler(errw, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(errw, nil)
	}
	log := slog.New(handler)

	srv := serve.New(serve.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		SessionQueue:   *sessionQ,
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		StepTimeout:    *stepTimeout,
		FastMath:       *fastmath,
		FastMathF32:    *fastmath32,
		Shards:         *shards,
		ShardWorkers:   splitCSV(*shardWkrs),
		Incremental:    *incremental,
		IncrementalTol: *incrTol,
		SnapshotDir:    *snapDir,
		Autosnapshot:   *autosnap,
		Logger:         log,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("edged listening", "addr", *addr)

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	log.Info("shutting down: draining in-flight slots", "grace", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	code := 0
	if err := srv.Shutdown(drainCtx); err != nil {
		log.Error("drain incomplete", "err", err)
		code = 1
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(errw, "http shutdown:", err)
		code = 1
	}
	return code
}

// splitCSV splits a comma-separated flag value into its non-empty,
// whitespace-trimmed items (nil for an empty value).
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
